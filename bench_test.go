// Benchmarks: one per paper table and figure. Each benchmark regenerates
// its artifact at reduced (smoke) fidelity so `go test -bench=.` touches
// every experiment path; use cmd/hirise-bench for publication fidelity.
package hirise_test

import (
	"testing"

	"github.com/reprolab/hirise"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := hirise.QuickExperimentOpts()
	opts.Warmup, opts.Measure = 500, 2000
	for i := 0; i < b.N; i++ {
		tb, err := hirise.RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Paper Table I: 2D vs 3D folded implementation cost.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Paper Table IV: channel-multiplicity implementation cost.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Paper Table V: arbitration variants.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Paper Table VI: 64-core application workloads.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// Paper Fig 9(a): frequency vs radix.
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }

// Paper Fig 9(b): frequency vs stacked layers.
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }

// Paper Fig 9(c): energy per transaction vs radix.
func BenchmarkFig9c(b *testing.B) { benchExperiment(b, "fig9c") }

// Paper Fig 10: latency vs load under uniform random traffic.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Paper Fig 11(a): per-input hotspot latency.
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }

// Paper Fig 11(b): throughput vs load for arbitration schemes.
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }

// Paper Fig 11(c): adversarial per-input throughput.
func BenchmarkFig11c(b *testing.B) { benchExperiment(b, "fig11c") }

// Paper Fig 12: TSV pitch sensitivity.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Paper §VI-B pathological corner case.
func BenchmarkCornerCase(b *testing.B) { benchExperiment(b, "corner") }

// Paper §VI-E topology discussion.
func BenchmarkDiscussion(b *testing.B) { benchExperiment(b, "discussion") }

// Validation experiments beyond the paper's figures.
func BenchmarkTable4CI(b *testing.B)     { benchExperiment(b, "table4-ci") }
func BenchmarkTable6Detail(b *testing.B) { benchExperiment(b, "table6-detail") }
func BenchmarkTable6Addr(b *testing.B)   { benchExperiment(b, "table6-addr") }
func BenchmarkCacheMPKI(b *testing.B)    { benchExperiment(b, "cache-mpki") }
func BenchmarkLocality(b *testing.B)     { benchExperiment(b, "locality") }
func BenchmarkBreakdown(b *testing.B)    { benchExperiment(b, "breakdown") }
func BenchmarkKilocore(b *testing.B)     { benchExperiment(b, "kilocore") }

// Ablations beyond the paper.
func BenchmarkAblateClasses(b *testing.B) { benchExperiment(b, "ablate-classes") }
func BenchmarkAblateAlloc(b *testing.B)   { benchExperiment(b, "ablate-alloc") }
func BenchmarkAblateVCs(b *testing.B)     { benchExperiment(b, "ablate-vcs") }
func BenchmarkAblateBursty(b *testing.B)  { benchExperiment(b, "ablate-bursty") }
func BenchmarkAblateISLIP(b *testing.B)   { benchExperiment(b, "ablate-islip") }
func BenchmarkAblateQoS(b *testing.B)     { benchExperiment(b, "ablate-qos") }
func BenchmarkAblatePktLen(b *testing.B)  { benchExperiment(b, "ablate-pktlen") }

// Component microbenchmarks: the hot paths of the reproduction.

func BenchmarkHiRiseArbitrationCycle(b *testing.B) {
	sw, err := hirise.New(hirise.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	req := make([]int, 64)
	for i := range req {
		req[i] = (i * 13) % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range sw.Arbitrate(req) {
			sw.Release(g.In)
		}
	}
}

func Benchmark2DArbitrationCycle(b *testing.B) {
	sw := hirise.New2D(64)
	req := make([]int, 64)
	for i := range req {
		req[i] = (i * 13) % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range sw.Arbitrate(req) {
			sw.Release(g.In)
		}
	}
}

func BenchmarkSimulatedCycleUniform(b *testing.B) {
	sw, err := hirise.New(hirise.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cycles := int64(b.N)
	if cycles < 100 {
		cycles = 100
	}
	b.ResetTimer()
	_, err = hirise.Simulate(hirise.SimConfig{
		Switch:  sw,
		Traffic: hirise.UniformTraffic{Radix: 64},
		Load:    0.2,
		Warmup:  1, Measure: cycles,
	})
	if err != nil {
		b.Fatal(err)
	}
}
