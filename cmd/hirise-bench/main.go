// Command hirise-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hirise-bench -list
//	hirise-bench -run table4
//	hirise-bench -run fig10,fig11a
//	hirise-bench -run all [-quick] [-parallel N] [-seed N] [-warmup N] [-measure N]
//
// Each experiment prints as an aligned text table; figure experiments
// print their series as columns (one row per x-axis point), ready for
// plotting. Fidelity defaults to the EXPERIMENTS.md settings; -quick
// trades accuracy for speed.
//
// Experiments, and the simulations inside each experiment, run
// concurrently on up to -parallel workers. Every simulation derives its
// seed from the experiment ID and its position in the sweep — never from
// scheduling — so stdout is byte-identical at every -parallel value.
// Per-experiment timings go to stderr.
//
// -json FILE additionally writes every table as one machine-readable
// JSON array (stable field layout, byte-deterministic) regardless of
// -format; -cpuprofile/-memprofile/-exectrace/-runmetrics profile the
// bench process itself, and -heartbeat prints progress to stderr.
//
// -store DIR caches each experiment's rendered output in a
// content-addressed result store: reruns with the same id, fidelity,
// model version, and format replay from the cache byte-identically
// instead of resimulating.
//
// -perf FILE runs the arbitration hot-kernel microbenchmarks (switch
// arbitration loops, bit-level cross-point columns, end-to-end uniform
// simulations) and writes the measurements as JSON; -perf-baseline
// embeds a previous run for before/after comparison. The schema is
// documented in EXPERIMENTS.md. -perf-check NEW BASELINE compares two
// such files and exits non-zero on regression: any allocs/op increase
// fails outright, while ns/op slowdowns beyond -perf-tolerance fail
// unless -perf-warn-only downgrades them to warnings.
//
// -pgo-profile FILE runs a representative slice of the simulator's hot
// paths (both campaign arms, the Hi-Rise CLRG model, a saturated fabric
// run) under the CPU profiler and writes a pprof profile suitable for
// profile-guided optimization; committed as cmd/hirise-bench/default.pgo
// it feeds `go build -pgo=auto`.
//
// -converge-stop lets every simulation end early once the MSER
// steady-state detector converges on its delivered-packet rate. Output
// stays deterministic but differs from full-length runs; the -store key
// records the flag, so the two variants never share cache entries.
//
// SIGINT/SIGTERM cancels the run: simulations stop within one sweep
// point, the experiments that already finished are still flushed in id
// order, and partially-written -json and profile side files are
// removed before the process exits non-zero.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/reprolab/hirise"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/store"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs, or \"all\"")
		list     = flag.Bool("list", false, "list available experiments and exit")
		quick    = flag.Bool("quick", false, "reduced fidelity for a fast smoke run")
		seed     = flag.Uint64("seed", 0, "override random seed (the engine remaps 0 to 1)")
		warmup   = flag.Int64("warmup", 0, "override warmup cycles (0 keeps the built-in default)")
		measure  = flag.Int64("measure", 0, "override measurement cycles (0 keeps the built-in default)")
		format   = flag.String("format", "text", "output format: text | csv | json")
		plotIt   = flag.Bool("plot", false, "draw figure experiments as ASCII charts (text format only)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent experiments and simulations per experiment; 1 forces serial. Output is byte-identical at any value")
		jsonOut  = flag.String("json", "", "also write the tables as one JSON array to this file, regardless of -format")
		storeDir = flag.String("store", "",
			"cache rendered experiment results in this directory (content-addressed by id, fidelity, model version, and format)")

		perfOut = flag.String("perf", "",
			"run the arbitration hot-kernel microbenchmarks and write them as JSON to this file (schema in EXPERIMENTS.md), then exit")
		perfBase = flag.String("perf-baseline", "",
			"embed a previous -perf run from this file as the baseline for before/after comparison")
		perfCheck = flag.Bool("perf-check", false,
			"compare two -perf JSON files (args: NEW BASELINE) and exit non-zero on regression, then exit")
		perfTol = flag.Float64("perf-tolerance", 0.25,
			"fractional ns/op slowdown -perf-check tolerates before flagging (allocs/op increases always fail)")
		perfWarnOnly = flag.Bool("perf-warn-only", false,
			"-perf-check reports ns/op regressions as warnings instead of failing (allocs/op increases still fail)")
		pgoOut = flag.String("pgo-profile", "",
			"run a representative hot-path workload under the CPU profiler and write a PGO profile (default.pgo) to this file, then exit")

		convStop = flag.Bool("converge-stop", false,
			"let each simulation stop early once its delivered-packet rate reaches steady state (MSER); results stay deterministic but differ from full-length runs, and the store key records the flag")

		// Host-side profiling of the bench process itself.
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
		runmetrics = flag.String("runmetrics", "", "write a runtime/metrics JSON snapshot to this file at exit")
		heartbeat  = flag.Duration("heartbeat", 0, "print progress to stderr at this interval (0 = off)")
	)
	flag.Parse()

	if *list {
		for _, id := range hirise.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *perfCheck {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: hirise-bench -perf-check NEW BASELINE")
			os.Exit(2)
		}
		if err := runPerfCheck(os.Stdout, flag.Arg(0), flag.Arg(1), *perfTol, *perfWarnOnly); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfOut != "" {
		if err := runPerf(*perfOut, *perfBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *pgoOut != "" {
		if err := runPGOProfile(*pgoOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *perfBase != "" {
		fmt.Fprintln(os.Stderr, "-perf-baseline requires -perf")
		os.Exit(2)
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want text, csv, or json)\n", *format)
		os.Exit(2)
	}

	opts := hirise.DefaultExperimentOpts()
	if *quick {
		opts = hirise.QuickExperimentOpts()
	}
	// Apply an override whenever its flag appeared on the command line, so
	// explicit zeroes reach the engine too. The engine treats zero as
	// "unset" (sim.Config.Defaults remaps Seed 0 to 1 and restores the
	// fidelity's windows), so an explicit zero selects the default — say
	// so rather than silently ignoring the flag.
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "seed":
			opts.Seed = *seed
			if *seed == 0 {
				fmt.Fprintln(os.Stderr, "note: -seed 0 means unset and is remapped to 1 by the simulator")
			}
		case "warmup":
			opts.Warmup = *warmup
			if *warmup == 0 {
				fmt.Fprintln(os.Stderr, "note: -warmup 0 means unset and falls back to the publication default, even with -quick")
			}
		case "measure":
			opts.Measure = *measure
			if *measure == 0 {
				fmt.Fprintln(os.Stderr, "note: -measure 0 means unset and falls back to the publication default, even with -quick")
			}
		}
	})
	opts.Workers = *parallel
	opts.ConvergeStop = *convStop

	ids, err := resolveIDs(*run, hirise.Experiments())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintf(os.Stderr, "valid ids: %s\n", strings.Join(hirise.Experiments(), ", "))
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir, store.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// SIGINT/SIGTERM cancels ctx; the simulators poll it between cycles
	// and the pool skips pending sweep points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProfiles, err := hirise.StartProfiles(hirise.ProfileConfig{
		CPUProfile: *cpuprofile, MemProfile: *memprofile,
		ExecTrace: *exectrace, RuntimeMetrics: *runmetrics,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var jsonW io.Writer
	var jsonF *os.File
	if *jsonOut != "" {
		jsonF, err = os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		jsonW = jsonF
	}

	err = runExperiments(ctx, st, os.Stdout, os.Stderr, jsonW, ids, opts, *format, *plotIt, *heartbeat)
	if jsonF != nil {
		if cerr := jsonF.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if errors.Is(err, context.Canceled) {
		// Completed experiments were already flushed in id order; the
		// side files stop mid-write on cancellation, so remove them
		// rather than leave truncated artifacts behind.
		removePartials(os.Stderr, *jsonOut, *cpuprofile, *memprofile, *exectrace, *runmetrics)
		fmt.Fprintln(os.Stderr, "hirise-bench: interrupted")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// removePartials deletes the side files an interrupted run may have
// left half-written (missing files are fine).
func removePartials(errw io.Writer, paths ...string) {
	for _, p := range paths {
		if p == "" {
			continue
		}
		if err := os.Remove(p); err == nil {
			fmt.Fprintf(errw, "removed partial %s\n", p)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(errw, "removing partial %s: %v\n", p, err)
		}
	}
}

// resolveIDs expands and validates the -run specification against the
// experiment registry before anything runs, so an unknown id aborts with
// a clean usage error instead of stopping mid-run with partial output.
// Empty elements are skipped and duplicates collapse to their first
// occurrence. The spec "all" expands to every experiment.
func resolveIDs(spec string, valid []string) ([]string, error) {
	if strings.TrimSpace(spec) == "all" {
		return valid, nil
	}
	known := make(map[string]bool, len(valid))
	for _, id := range valid {
		known[id] = true
	}
	var ids []string
	seen := make(map[string]bool)
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" || seen[id] {
			continue
		}
		if !known[id] {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no experiment ids in %q", spec)
	}
	return ids, nil
}

// runExperiments runs the experiments on at most opts.Workers
// concurrent workers, each rendering into a private buffer, and writes
// the buffers to w strictly in id order — streaming each one as soon as
// it and all of its predecessors are ready, so long runs show progress
// while concurrent runs still write exactly the bytes serial runs
// write. Per-experiment timings go to errw alongside the corresponding
// output; hb > 0 also writes a progress heartbeat to errw. When jsonW
// is non-nil, every table is additionally serialized there as one JSON
// array in id order after all experiments finish. On failure the
// outputs preceding the first failing id have been written (matching
// what a serial run would have printed) and that id's error is
// returned.
func runExperiments(ctx context.Context, st *store.Store, w, errw, jsonW io.Writer, ids []string, opts hirise.ExperimentOpts, format string, plotIt bool, hb time.Duration) error {
	type rendered struct {
		out    []byte
		tb     *hirise.ExperimentTable
		dur    time.Duration
		cached bool
		err    error
	}
	done := make([]chan rendered, len(ids))
	for i := range done {
		done[i] = make(chan rendered, 1)
	}
	var completed atomic.Int64
	stopHB := hirise.Heartbeat(errw, hb, func() string {
		return fmt.Sprintf("%d/%d experiments done", completed.Load(), len(ids))
	})
	defer stopHB()
	go pool.Do(len(ids), opts.Workers, func(i int) {
		start := time.Now()
		var buf bytes.Buffer
		tb, cached, err := renderOne(ctx, st, &buf, ids[i], opts, format, plotIt)
		completed.Add(1)
		done[i] <- rendered{out: buf.Bytes(), tb: tb, dur: time.Since(start), cached: cached, err: err}
	})
	tables := make([]*hirise.ExperimentTable, 0, len(ids))
	for i := range ids {
		r := <-done[i]
		if r.err != nil {
			return r.err
		}
		w.Write(r.out)
		tables = append(tables, r.tb)
		note := ""
		if r.cached {
			note = ", cached"
		}
		fmt.Fprintf(errw, "(%s took %.1fs%s)\n", ids[i], r.dur.Seconds(), note)
	}
	if jsonW != nil {
		enc := json.NewEncoder(jsonW)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	return nil
}

// cachedRender is the store envelope for one rendered experiment: the
// exact output bytes plus the table itself, so -json replay needs no
// resimulation either.
type cachedRender struct {
	Out   []byte                  `json:"out"`
	Table *hirise.ExperimentTable `json:"table"`
}

// renderOne renders one experiment, through the store when one is
// configured. The key covers everything that shapes the output —
// experiment id, fidelity (hirise.ExperimentCacheKey), model version,
// format, and plotting — and deliberately not Workers, since output is
// byte-identical at any parallelism.
func renderOne(ctx context.Context, st *store.Store, buf *bytes.Buffer, id string, opts hirise.ExperimentOpts, format string, plotIt bool) (*hirise.ExperimentTable, bool, error) {
	if st == nil {
		tb, err := renderFresh(ctx, buf, id, opts, format, plotIt)
		return tb, false, err
	}
	key, err := st.KeyOf("bench", struct {
		ID     string                    `json:"id"`
		Opts   hirise.ExperimentCacheKey `json:"opts"`
		Format string                    `json:"format"`
		Plot   bool                      `json:"plot"`
	}{id, opts.CacheKey(), format, plotIt})
	if err != nil {
		return nil, false, err
	}
	data, hit, err := st.GetOrCompute(ctx, key, func(cctx context.Context) ([]byte, error) {
		var b bytes.Buffer
		tb, err := renderFresh(cctx, &b, id, opts, format, plotIt)
		if err != nil {
			return nil, err
		}
		return json.Marshal(cachedRender{Out: b.Bytes(), Table: tb})
	})
	if err != nil {
		return nil, false, err
	}
	var env cachedRender
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false, fmt.Errorf("%s: decoding stored result: %w", id, err)
	}
	buf.Write(env.Out)
	return env.Table, hit, nil
}

func renderFresh(ctx context.Context, buf *bytes.Buffer, id string, opts hirise.ExperimentOpts, format string, plotIt bool) (*hirise.ExperimentTable, error) {
	tb, err := hirise.RunExperimentCtx(ctx, id, opts)
	if err != nil {
		return nil, err
	}
	switch format {
	case "csv":
		return tb, tb.WriteCSV(buf)
	case "json":
		return tb, tb.WriteJSON(buf)
	}
	tb.Fprint(buf)
	if plotIt {
		ok, err := tb.RenderPlot(buf, 72, 20)
		if err != nil {
			return nil, err
		}
		if ok {
			fmt.Fprintln(buf)
		}
	}
	return tb, nil
}
