// Command hirise-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hirise-bench -list
//	hirise-bench -run table4
//	hirise-bench -run fig10,fig11a
//	hirise-bench -run all [-quick] [-seed N] [-warmup N] [-measure N]
//
// Each experiment prints as an aligned text table; figure experiments
// print their series as columns (one row per x-axis point), ready for
// plotting. Fidelity defaults to the EXPERIMENTS.md settings; -quick
// trades accuracy for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/reprolab/hirise"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs, or \"all\"")
		list    = flag.Bool("list", false, "list available experiments and exit")
		quick   = flag.Bool("quick", false, "reduced fidelity for a fast smoke run")
		seed    = flag.Uint64("seed", 0, "override random seed")
		warmup  = flag.Int64("warmup", 0, "override warmup cycles")
		measure = flag.Int64("measure", 0, "override measurement cycles")
		format  = flag.String("format", "text", "output format: text | csv | json")
		plotIt  = flag.Bool("plot", false, "draw figure experiments as ASCII charts (text format only)")
	)
	flag.Parse()

	if *list {
		for _, id := range hirise.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := hirise.DefaultExperimentOpts()
	if *quick {
		opts = hirise.QuickExperimentOpts()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *warmup != 0 {
		opts.Warmup = *warmup
	}
	if *measure != 0 {
		opts.Measure = *measure
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = hirise.Experiments()
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tb, err := hirise.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			tb.Fprint(os.Stdout)
			if *plotIt {
				if ok, perr := tb.RenderPlot(os.Stdout, 72, 20); ok && perr != nil {
					err = perr
				} else if ok {
					fmt.Println()
				}
			}
			fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
		case "csv":
			err = tb.WriteCSV(os.Stdout)
		case "json":
			err = tb.WriteJSON(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
