package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/reprolab/hirise"
	"github.com/reprolab/hirise/internal/store"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestResolveIDs(t *testing.T) {
	valid := []string{"table1", "table4", "fig10"}
	cases := []struct {
		spec string
		want []string
		ok   bool
	}{
		{"all", valid, true},
		{" all ", valid, true},
		{"table4", []string{"table4"}, true},
		{"fig10,table1", []string{"fig10", "table1"}, true},
		{"table4,table4,table4", []string{"table4"}, true},
		{" table4 , ,fig10,", []string{"table4", "fig10"}, true},
		{"nope", nil, false},
		{"table4,nope", nil, false},
		{"", nil, false},
		{",,", nil, false},
	}
	for _, c := range cases {
		got, err := resolveIDs(c.spec, valid)
		if c.ok != (err == nil) {
			t.Errorf("resolveIDs(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("resolveIDs(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestResolveIDsValidatesBeforeRunning(t *testing.T) {
	// The whole point of up-front validation: a spec mixing good and bad
	// ids must fail as a unit, not start the good ones.
	if _, err := resolveIDs("table4,bogus", []string{"table4"}); err == nil {
		t.Fatal("want error for spec with one unknown id")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the unknown id", err)
	}
}

func fastOpts(workers int) hirise.ExperimentOpts {
	o := hirise.QuickExperimentOpts()
	o.Warmup, o.Measure = 500, 2000
	o.Workers = workers
	return o
}

// TestJSONGoldenFile pins the -json side output's exact bytes for the
// purely analytic experiments (no simulation, no randomness), so the
// machine-readable schema can't drift silently under consumers. Update
// with `go test ./cmd/hirise-bench -run JSONGolden -update`.
func TestJSONGoldenFile(t *testing.T) {
	ids := []string{"fig9a", "fig12"}
	var out, timings, js bytes.Buffer
	if err := runExperiments(context.Background(), nil, &out, &timings, &js, ids, fastOpts(2), "text", false, 0); err != nil {
		t.Fatal(err)
	}
	got := js.Bytes()
	path := filepath.Join("testdata", "json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/hirise-bench -run JSONGolden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestStoreReplayIsByteIdentical checks the -store contract: a second
// identical run replays from the cache, and both stdout and the -json
// side output are byte-identical to an uncached run.
func TestStoreReplayIsByteIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"fig9a", "fig12"}
	render := func(s *store.Store) (stdout, js []byte, timings string) {
		t.Helper()
		var out, tl, j bytes.Buffer
		if err := runExperiments(context.Background(), s, &out, &tl, &j, ids, fastOpts(2), "text", false, 0); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), j.Bytes(), tl.String()
	}
	uncachedOut, uncachedJS, _ := render(nil)
	firstOut, firstJS, firstTL := render(st)
	if strings.Contains(firstTL, "cached") {
		t.Fatalf("first store run claims cache hits:\n%s", firstTL)
	}
	secondOut, secondJS, secondTL := render(st)
	if got := strings.Count(secondTL, "cached"); got != len(ids) {
		t.Fatalf("second run: %d cached markers for %d ids:\n%s", got, len(ids), secondTL)
	}
	if !bytes.Equal(firstOut, secondOut) || !bytes.Equal(uncachedOut, secondOut) {
		t.Error("stdout differs between uncached, computed, and replayed runs")
	}
	if !bytes.Equal(firstJS, secondJS) || !bytes.Equal(uncachedJS, secondJS) {
		t.Error("-json output differs between uncached, computed, and replayed runs")
	}
}

// TestRunExperimentsWorkerCountInvariance checks the CLI's end-to-end
// guarantee: the bytes written to stdout for a multi-experiment run are
// identical at every -parallel value, in every output format.
func TestRunExperimentsWorkerCountInvariance(t *testing.T) {
	ids := []string{"table1", "fig9a", "corner", "cache-mpki"}
	render := func(workers int, format string) []byte {
		t.Helper()
		var out, timings bytes.Buffer
		if err := runExperiments(context.Background(), nil, &out, &timings, nil, ids, fastOpts(workers), format, format == "text", 0); err != nil {
			t.Fatalf("%s workers=%d: %v", format, workers, err)
		}
		if got := strings.Count(timings.String(), "took"); got != len(ids) {
			t.Fatalf("%s workers=%d: %d timing lines for %d ids", format, workers, got, len(ids))
		}
		return out.Bytes()
	}
	for _, format := range []string{"text", "csv", "json"} {
		serial := render(1, format)
		if len(serial) == 0 {
			t.Fatalf("%s: empty serial output", format)
		}
		for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
			if got := render(w, format); !bytes.Equal(serial, got) {
				t.Errorf("%s: workers=%d stdout differs from serial", format, w)
			}
		}
	}
}
