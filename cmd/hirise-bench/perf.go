package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/fabric"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
	"github.com/reprolab/hirise/internal/xpoint"
)

// perfSchema identifies the BENCH_PR4.json layout; bump on breaking
// changes. The format is documented in EXPERIMENTS.md.
const perfSchema = "hirise-bench-perf/v1"

// perfResult is one microbenchmark measurement.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// perfFile is the -perf output document. Baseline, when present, is a
// previous run (passed via -perf-baseline) echoed verbatim so one file
// carries the before/after pair.
type perfFile struct {
	Schema     string       `json:"schema"`
	Benchmarks []perfResult `json:"benchmarks"`
	Baseline   []perfResult `json:"baseline,omitempty"`
}

// perfSuite lists the hot-kernel microbenchmarks -perf runs: the two
// switch models' arbitration hot loops at radix 64 and 128, the
// bit-level cross-point columns, and the end-to-end uniform-traffic
// simulations. These are the same workloads as the testing benchmarks
// in internal/core, internal/crossbar, internal/xpoint, and
// internal/sim, so numbers are comparable with `go test -bench`.
func perfSuite() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"core/ArbitrateHotLoop/radix=64", perfCore(64)},
		{"core/ArbitrateHotLoop/radix=128", perfCore(128)},
		{"crossbar/ArbitrateHotLoop/radix=64", perfCrossbar(64)},
		{"crossbar/ArbitrateHotLoop/radix=128", perfCrossbar(128)},
		{"xpoint/ColumnArbitrate/n=64", perfColumn(64)},
		{"xpoint/ColumnArbitrate/n=128", perfColumn(128)},
		{"xpoint/CLRGColumnArbitrate/n=13", perfCLRGColumn()},
		{"sched/ISLIP2Schedule/n=64", perfSched(sched.NewISLIP(64, 2), 64)},
		{"sched/ISLIP2Schedule/n=128", perfSched(sched.NewISLIP(128, 2), 128)},
		{"sched/WavefrontSchedule/n=64", perfSched(sched.NewWavefront(64), 64)},
		{"sched/WavefrontSchedule/n=128", perfSched(sched.NewWavefront(128), 128)},
		{"sched/MWMSchedule/n=32", perfSched(sched.NewMWM(32), 32)},
		{"sim/Uniform2D/radix=64", perfSim(func() sim.Switch { return crossbar.New(64) })},
		{"sim/UniformHiRiseCLRG/radix=64", perfSim(func() sim.Switch {
			sw, err := core.New(topo.Default64())
			if err != nil {
				panic(err)
			}
			return sw
		})},
		{"fabric/DragonflySaturation/routers=72", perfFabric()},
	}
}

// Campaign-throughput benchmarks: one op is a table4-ci-shaped campaign
// of campaignPoints points, each point campaignReplicates replicates of
// a radix-64 LRG crossbar under saturated uniform traffic (the Table IV
// operating point). The seq arm runs every replicate as its own
// sim.Run with a fresh switch — the pre-batching campaign path — while
// the batched arm drives each point through a recycled sim.Batch. The
// perf gate holds the batched arm to at least twice the sequential
// arm's throughput at every worker count (see campaignRatioFloor).
//
// Unlike the hot-kernel suite, the four arms are NOT measured as
// isolated testing.Benchmark runs: the gated quantity is their ratio,
// and on a shared machine minutes of drift between two isolated runs
// lands entirely on one arm. measureCampaigns instead times the arms
// round-robin — every round exposes every arm to the same machine
// state, so drift cancels out of the ratio.
const (
	campaignPoints     = 4
	campaignReplicates = 4
	campaignRounds     = 8
)

func campaignCfg() sim.Config {
	return sim.Config{
		Traffic: traffic.Uniform{Radix: 64},
		Load:    1.0, Warmup: 500, Measure: 2000,
	}
}

func campaignSeeds(point int) []uint64 {
	seeds := make([]uint64, campaignReplicates)
	for rep := range seeds {
		seeds[rep] = pool.SeedFor(9, uint64(point), uint64(rep))
	}
	return seeds
}

// campaignSeqOp runs one sequential campaign on the given worker
// count: every replicate is its own sim.Run with a fresh switch.
func campaignSeqOp(workers int) error {
	cfg := campaignCfg()
	var firstErr error
	pool.Do(campaignPoints, workers, func(point int) {
		for _, seed := range campaignSeeds(point) {
			c := cfg
			c.Switch = crossbar.New(64)
			c.Seed = seed
			if _, err := sim.Run(c); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// campaignBatchedArm returns a closure running one batched campaign;
// workers draw recycled Batches from a shared pool, the per-worker
// arena-reuse pattern of the experiment drivers.
func campaignBatchedArm(workers int) func() error {
	cfg := campaignCfg()
	batches := sync.Pool{New: func() any {
		return sim.NewBatch(func() sim.Switch { return crossbar.New(64) }, nil)
	}}
	return func() error {
		var firstErr error
		pool.Do(campaignPoints, workers, func(point int) {
			bt := batches.Get().(*sim.Batch)
			if _, err := bt.Run(cfg, campaignSeeds(point)); err != nil && firstErr == nil {
				firstErr = err
			}
			batches.Put(bt)
		})
		return firstErr
	}
}

// measureCampaigns times the four campaign arms over campaignRounds
// interleaved rounds (after one untimed warmup round that also fills
// the batched arms' arena pools) and returns one perfResult per arm,
// in suite order. Allocations are read from runtime.MemStats around
// each timed op.
func measureCampaigns() ([]perfResult, error) {
	n := runtime.GOMAXPROCS(0)
	arms := []struct {
		name string
		op   func() error
	}{
		{"campaign/PointsPerSec/seq/parallel=1", func() error { return campaignSeqOp(1) }},
		{"campaign/PointsPerSec/batched/parallel=1", campaignBatchedArm(1)},
		{"campaign/PointsPerSec/seq/parallel=N", func() error { return campaignSeqOp(n) }},
		{"campaign/PointsPerSec/batched/parallel=N", campaignBatchedArm(n)},
	}
	elapsed := make([]time.Duration, len(arms))
	allocs := make([]uint64, len(arms))
	bytesA := make([]uint64, len(arms))
	for round := -1; round < campaignRounds; round++ {
		for i, arm := range arms {
			// Collect before each timed slot so one arm's garbage (the
			// sequential arm allocates per replicate) is never collected
			// on another arm's clock — the same isolation testing.B
			// applies between benchmarks.
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			err := arm.op()
			d := time.Since(start)
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arm.name, err)
			}
			if round < 0 {
				continue // warmup round: untimed
			}
			elapsed[i] += d
			allocs[i] += after.Mallocs - before.Mallocs
			bytesA[i] += after.TotalAlloc - before.TotalAlloc
		}
	}
	out := make([]perfResult, len(arms))
	for i, arm := range arms {
		out[i] = perfResult{
			Name:        arm.name,
			NsPerOp:     float64(elapsed[i].Nanoseconds()) / campaignRounds,
			AllocsPerOp: int64(allocs[i] / campaignRounds),
			BytesPerOp:  int64(bytesA[i] / campaignRounds),
			Iterations:  campaignRounds,
		}
	}
	return out, nil
}

// perfFabric benchmarks one saturated steady-state fabric simulation per
// op: a 72-router dragonfly (9 groups x 8 routers, 144 cores) under
// fully-backlogged uniform traffic, 200 warmup + 800 measured cycles.
// This is the multi-switch routing/credit hot loop end to end — route
// computation, VC-band credit scans, arbitration, and link transfers at
// every router every cycle.
func perfFabric() func(b *testing.B) {
	return func(b *testing.B) {
		d := fabric.Dragonfly{Groups: 9, GroupSize: 8, GlobalPorts: 1, Conc: 2, Lanes: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fabric.Run(fabric.Config{
				Topo: d, Routing: fabric.Minimal,
				Traffic: traffic.Uniform{Radix: d.Nodes() * d.Conc},
				Load:    1.0, Warmup: 200, Measure: 800,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// perfCore benchmarks 16 Hi-Rise arbitration cycles per op under
// rotating contention (every input requests a random output; grants
// release every 4 cycles), mirroring internal/core's hot-loop bench.
func perfCore(radix int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := topo.Default64()
		cfg.Radix = radix
		sw, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		workload := perfArbWorkload(sw, radix)
		workload(64) // warm up: grow the grants buffer once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workload(16)
		}
	}
}

// perfCrossbar benchmarks one fully-loaded 2D arbitration cycle per op
// with immediate release, mirroring internal/crossbar's hot-loop bench
// (note the unit difference: one cycle per op, not 16).
func perfCrossbar(radix int) func(b *testing.B) {
	return func(b *testing.B) {
		sw := crossbar.New(radix)
		src := prng.New(7)
		req := make([]int, radix)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range req {
				req[j] = src.Intn(radix)
			}
			for _, g := range sw.Arbitrate(req) {
				sw.Release(g.In)
			}
		}
	}
}

type perfSwitch interface {
	Arbitrate(req []int) []topo.Grant
	Release(in int)
}

func perfArbWorkload(sw perfSwitch, radix int) func(cycles int) {
	src := prng.New(7)
	req := make([]int, radix)
	holding := make([]int, 0, radix)
	return func(cycles int) {
		for c := 0; c < cycles; c++ {
			for i := range req {
				req[i] = src.Intn(radix)
			}
			for _, g := range sw.Arbitrate(req) {
				holding = append(holding, g.In)
			}
			if c%4 == 3 {
				for _, in := range holding {
					sw.Release(in)
				}
				holding = holding[:0]
			}
		}
	}
}

func perfColumn(n int) func(b *testing.B) {
	return func(b *testing.B) {
		c := xpoint.NewColumn(n)
		r := bitvec.New(n)
		for i := 0; i < n; i += 2 {
			r.Set(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Arbitrate(r)
		}
	}
}

func perfCLRGColumn() func(b *testing.B) {
	return func(b *testing.B) {
		c := xpoint.NewCLRGColumn(13, 64, 3)
		r := bitvec.New(13)
		inputOf := make([]int, 13)
		for i := 0; i < 13; i++ {
			if i%2 == 0 {
				r.Set(i)
			}
			inputOf[i] = i * 4
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Arbitrate(r, inputOf)
		}
	}
}

// perfSched benchmarks one crossbar matching per op over a fixed ~25%
// dense request matrix with queue-length weights, mirroring the
// steady-state Schedule benchmarks in internal/sched (schedulers are
// stateful, so pointer rotation is part of the measured work).
func perfSched(s sched.Scheduler, n int) func(b *testing.B) {
	return func(b *testing.B) {
		src := prng.New(7)
		req := make([]bitvec.Vec, n)
		qlen := make([]int32, n*n)
		match := make([]int, n)
		for i := range req {
			req[i] = bitvec.New(n)
			for o := 0; o < n; o++ {
				if src.Bernoulli(0.25) {
					req[i].Set(o)
					qlen[i*n+o] = int32(1 + src.Intn(8))
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Schedule(req, qlen, match)
		}
	}
}

// perfSim benchmarks one full simulation per op: 500 warmup + 2000
// measured cycles of uniform traffic at 20% load, matching the sim
// package's end-to-end benchmarks. The simulation runs through a warmed
// width-1 sim.Batch, so after the untimed first run recycles its arena
// the steady state is allocation-free — the perf gate pins both models
// at 0 allocs/op.
func perfSim(mk func() sim.Switch) func(b *testing.B) {
	return func(b *testing.B) {
		bt := sim.NewBatch(mk, nil)
		cfg := sim.Config{
			Traffic: traffic.Uniform{Radix: 64},
			Load:    0.2, Warmup: 500, Measure: 2000,
		}
		seeds := []uint64{1}
		if _, err := bt.Run(cfg, seeds); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bt.Run(cfg, seeds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// loadPerfFile reads and schema-checks one -perf JSON document.
func loadPerfFile(path string) (perfFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return perfFile{}, fmt.Errorf("perf file: %w", err)
	}
	var pf perfFile
	if err := json.Unmarshal(raw, &pf); err != nil {
		return perfFile{}, fmt.Errorf("perf file %s: %w", path, err)
	}
	if pf.Schema != perfSchema {
		return perfFile{}, fmt.Errorf("perf file %s: schema %q, want %q", path, pf.Schema, perfSchema)
	}
	return pf, nil
}

// runPerf executes the microbenchmark suite, prints a summary table to
// stdout (with speedups when a baseline is given), and writes the JSON
// document to outPath. baselinePath, when non-empty, names a previous
// -perf output whose benchmarks are embedded as the baseline.
func runPerf(outPath, baselinePath string) error {
	var baseline []perfResult
	if baselinePath != "" {
		prev, err := loadPerfFile(baselinePath)
		if err != nil {
			return fmt.Errorf("perf baseline: %w", err)
		}
		baseline = prev.Benchmarks
	}
	baseNs := make(map[string]float64, len(baseline))
	for _, r := range baseline {
		baseNs[r.Name] = r.NsPerOp
	}

	doc := perfFile{Schema: perfSchema, Baseline: baseline}
	row := func(pr perfResult) {
		speedup := "-"
		if prev, ok := baseNs[pr.Name]; ok && pr.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", prev/pr.NsPerOp)
		}
		fmt.Printf("%-42s %15.1f %12d %10s\n", pr.Name, pr.NsPerOp, pr.AllocsPerOp, speedup)
	}
	fmt.Printf("%-42s %15s %12s %10s\n", "benchmark", "ns/op", "allocs/op", "vs base")
	for _, bench := range perfSuite() {
		res := testing.Benchmark(bench.fn)
		pr := perfResult{
			Name:        bench.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		doc.Benchmarks = append(doc.Benchmarks, pr)
		row(pr)
	}
	campaigns, err := measureCampaigns()
	if err != nil {
		return err
	}
	for _, pr := range campaigns {
		doc.Benchmarks = append(doc.Benchmarks, pr)
		row(pr)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return fmt.Errorf("perf output: %w", err)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
