package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/fabric"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
	"github.com/reprolab/hirise/internal/xpoint"
)

// perfSchema identifies the BENCH_PR4.json layout; bump on breaking
// changes. The format is documented in EXPERIMENTS.md.
const perfSchema = "hirise-bench-perf/v1"

// perfResult is one microbenchmark measurement.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// perfFile is the -perf output document. Baseline, when present, is a
// previous run (passed via -perf-baseline) echoed verbatim so one file
// carries the before/after pair.
type perfFile struct {
	Schema     string       `json:"schema"`
	Benchmarks []perfResult `json:"benchmarks"`
	Baseline   []perfResult `json:"baseline,omitempty"`
}

// perfSuite lists the hot-kernel microbenchmarks -perf runs: the two
// switch models' arbitration hot loops at radix 64 and 128, the
// bit-level cross-point columns, and the end-to-end uniform-traffic
// simulations. These are the same workloads as the testing benchmarks
// in internal/core, internal/crossbar, internal/xpoint, and
// internal/sim, so numbers are comparable with `go test -bench`.
func perfSuite() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"core/ArbitrateHotLoop/radix=64", perfCore(64)},
		{"core/ArbitrateHotLoop/radix=128", perfCore(128)},
		{"crossbar/ArbitrateHotLoop/radix=64", perfCrossbar(64)},
		{"crossbar/ArbitrateHotLoop/radix=128", perfCrossbar(128)},
		{"xpoint/ColumnArbitrate/n=64", perfColumn(64)},
		{"xpoint/ColumnArbitrate/n=128", perfColumn(128)},
		{"xpoint/CLRGColumnArbitrate/n=13", perfCLRGColumn()},
		{"sched/ISLIP2Schedule/n=64", perfSched(sched.NewISLIP(64, 2), 64)},
		{"sched/ISLIP2Schedule/n=128", perfSched(sched.NewISLIP(128, 2), 128)},
		{"sched/WavefrontSchedule/n=64", perfSched(sched.NewWavefront(64), 64)},
		{"sched/WavefrontSchedule/n=128", perfSched(sched.NewWavefront(128), 128)},
		{"sched/MWMSchedule/n=32", perfSched(sched.NewMWM(32), 32)},
		{"sim/Uniform2D/radix=64", perfSim(func() sim.Switch { return crossbar.New(64) })},
		{"sim/UniformHiRiseCLRG/radix=64", perfSim(func() sim.Switch {
			sw, err := core.New(topo.Default64())
			if err != nil {
				panic(err)
			}
			return sw
		})},
		{"fabric/DragonflySaturation/routers=72", perfFabric()},
	}
}

// perfFabric benchmarks one saturated steady-state fabric simulation per
// op: a 72-router dragonfly (9 groups x 8 routers, 144 cores) under
// fully-backlogged uniform traffic, 200 warmup + 800 measured cycles.
// This is the multi-switch routing/credit hot loop end to end — route
// computation, VC-band credit scans, arbitration, and link transfers at
// every router every cycle.
func perfFabric() func(b *testing.B) {
	return func(b *testing.B) {
		d := fabric.Dragonfly{Groups: 9, GroupSize: 8, GlobalPorts: 1, Conc: 2, Lanes: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fabric.Run(fabric.Config{
				Topo: d, Routing: fabric.Minimal,
				Traffic: traffic.Uniform{Radix: d.Nodes() * d.Conc},
				Load:    1.0, Warmup: 200, Measure: 800,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// perfCore benchmarks 16 Hi-Rise arbitration cycles per op under
// rotating contention (every input requests a random output; grants
// release every 4 cycles), mirroring internal/core's hot-loop bench.
func perfCore(radix int) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := topo.Default64()
		cfg.Radix = radix
		sw, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		workload := perfArbWorkload(sw, radix)
		workload(64) // warm up: grow the grants buffer once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			workload(16)
		}
	}
}

// perfCrossbar benchmarks one fully-loaded 2D arbitration cycle per op
// with immediate release, mirroring internal/crossbar's hot-loop bench
// (note the unit difference: one cycle per op, not 16).
func perfCrossbar(radix int) func(b *testing.B) {
	return func(b *testing.B) {
		sw := crossbar.New(radix)
		src := prng.New(7)
		req := make([]int, radix)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range req {
				req[j] = src.Intn(radix)
			}
			for _, g := range sw.Arbitrate(req) {
				sw.Release(g.In)
			}
		}
	}
}

type perfSwitch interface {
	Arbitrate(req []int) []topo.Grant
	Release(in int)
}

func perfArbWorkload(sw perfSwitch, radix int) func(cycles int) {
	src := prng.New(7)
	req := make([]int, radix)
	holding := make([]int, 0, radix)
	return func(cycles int) {
		for c := 0; c < cycles; c++ {
			for i := range req {
				req[i] = src.Intn(radix)
			}
			for _, g := range sw.Arbitrate(req) {
				holding = append(holding, g.In)
			}
			if c%4 == 3 {
				for _, in := range holding {
					sw.Release(in)
				}
				holding = holding[:0]
			}
		}
	}
}

func perfColumn(n int) func(b *testing.B) {
	return func(b *testing.B) {
		c := xpoint.NewColumn(n)
		r := bitvec.New(n)
		for i := 0; i < n; i += 2 {
			r.Set(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Arbitrate(r)
		}
	}
}

func perfCLRGColumn() func(b *testing.B) {
	return func(b *testing.B) {
		c := xpoint.NewCLRGColumn(13, 64, 3)
		r := bitvec.New(13)
		inputOf := make([]int, 13)
		for i := 0; i < 13; i++ {
			if i%2 == 0 {
				r.Set(i)
			}
			inputOf[i] = i * 4
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Arbitrate(r, inputOf)
		}
	}
}

// perfSched benchmarks one crossbar matching per op over a fixed ~25%
// dense request matrix with queue-length weights, mirroring the
// steady-state Schedule benchmarks in internal/sched (schedulers are
// stateful, so pointer rotation is part of the measured work).
func perfSched(s sched.Scheduler, n int) func(b *testing.B) {
	return func(b *testing.B) {
		src := prng.New(7)
		req := make([]bitvec.Vec, n)
		qlen := make([]int32, n*n)
		match := make([]int, n)
		for i := range req {
			req[i] = bitvec.New(n)
			for o := 0; o < n; o++ {
				if src.Bernoulli(0.25) {
					req[i].Set(o)
					qlen[i*n+o] = int32(1 + src.Intn(8))
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Schedule(req, qlen, match)
		}
	}
}

// perfSim benchmarks one full simulation per op: 500 warmup + 2000
// measured cycles of uniform traffic at 20% load, matching the sim
// package's end-to-end benchmarks.
func perfSim(mk func() sim.Switch) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(sim.Config{
				Switch:  mk(),
				Traffic: traffic.Uniform{Radix: 64},
				Load:    0.2, Warmup: 500, Measure: 2000,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// loadPerfFile reads and schema-checks one -perf JSON document.
func loadPerfFile(path string) (perfFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return perfFile{}, fmt.Errorf("perf file: %w", err)
	}
	var pf perfFile
	if err := json.Unmarshal(raw, &pf); err != nil {
		return perfFile{}, fmt.Errorf("perf file %s: %w", path, err)
	}
	if pf.Schema != perfSchema {
		return perfFile{}, fmt.Errorf("perf file %s: schema %q, want %q", path, pf.Schema, perfSchema)
	}
	return pf, nil
}

// runPerf executes the microbenchmark suite, prints a summary table to
// stdout (with speedups when a baseline is given), and writes the JSON
// document to outPath. baselinePath, when non-empty, names a previous
// -perf output whose benchmarks are embedded as the baseline.
func runPerf(outPath, baselinePath string) error {
	var baseline []perfResult
	if baselinePath != "" {
		prev, err := loadPerfFile(baselinePath)
		if err != nil {
			return fmt.Errorf("perf baseline: %w", err)
		}
		baseline = prev.Benchmarks
	}
	baseNs := make(map[string]float64, len(baseline))
	for _, r := range baseline {
		baseNs[r.Name] = r.NsPerOp
	}

	doc := perfFile{Schema: perfSchema, Baseline: baseline}
	fmt.Printf("%-40s %15s %12s %10s\n", "benchmark", "ns/op", "allocs/op", "vs base")
	for _, bench := range perfSuite() {
		res := testing.Benchmark(bench.fn)
		pr := perfResult{
			Name:        bench.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		doc.Benchmarks = append(doc.Benchmarks, pr)
		speedup := "-"
		if prev, ok := baseNs[pr.Name]; ok && pr.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", prev/pr.NsPerOp)
		}
		fmt.Printf("%-40s %15.1f %12d %10s\n", pr.Name, pr.NsPerOp, pr.AllocsPerOp, speedup)
	}

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return fmt.Errorf("perf output: %w", err)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
