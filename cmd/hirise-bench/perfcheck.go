package main

import (
	"fmt"
	"io"
)

// perfDelta is one benchmark's new-vs-baseline comparison.
type perfDelta struct {
	name       string
	kind       string // "ok" | "soft" | "hard" | "missing" | "new"
	reason     string
	curNs      float64
	baseNs     float64
	curAllocs  int64
	baseAllocs int64
}

// comparePerf matches cur against base by benchmark name and classifies
// every pair. Allocation counts are exact, so any allocs/op increase is
// a hard regression; ns/op is noisy, so only a slowdown beyond tol
// (fractional, e.g. 0.25 = 25%) counts, and then only as a soft
// regression. A benchmark present in the baseline but missing from the
// new run is hard too — a silently dropped benchmark would blind the
// gate. Benchmarks new to cur are reported informationally.
func comparePerf(cur, base []perfResult, tol float64) []perfDelta {
	curBy := make(map[string]perfResult, len(cur))
	for _, r := range cur {
		curBy[r.Name] = r
	}
	deltas := make([]perfDelta, 0, len(base)+len(cur))
	for _, b := range base {
		c, ok := curBy[b.Name]
		if !ok {
			deltas = append(deltas, perfDelta{
				name: b.Name, kind: "missing",
				reason:     "benchmark present in baseline but absent from new run",
				baseNs:     b.NsPerOp,
				baseAllocs: b.AllocsPerOp,
			})
			continue
		}
		delete(curBy, b.Name)
		d := perfDelta{
			name: b.Name, kind: "ok",
			curNs: c.NsPerOp, baseNs: b.NsPerOp,
			curAllocs: c.AllocsPerOp, baseAllocs: b.AllocsPerOp,
		}
		switch {
		case c.AllocsPerOp > b.AllocsPerOp:
			d.kind = "hard"
			d.reason = fmt.Sprintf("allocs/op %d -> %d", b.AllocsPerOp, c.AllocsPerOp)
		case b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol):
			d.kind = "soft"
			d.reason = fmt.Sprintf("ns/op %.1f -> %.1f (+%.0f%%, tolerance %.0f%%)",
				b.NsPerOp, c.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, tol*100)
		}
		deltas = append(deltas, d)
	}
	// Anything left in curBy is new; keep cur's order for determinism.
	for _, c := range cur {
		if _, ok := curBy[c.Name]; ok {
			deltas = append(deltas, perfDelta{
				name: c.Name, kind: "new",
				reason:    "benchmark absent from baseline",
				curNs:     c.NsPerOp,
				curAllocs: c.AllocsPerOp,
			})
		}
	}
	return deltas
}

// campaignRatioFloor is the batched-over-sequential campaign speedup
// the gate demands: the lockstep batch engine earns its complexity only
// while it at least halves campaign wall-clock, at every worker count.
// Both arms come from the same -perf invocation and are timed in
// interleaved rounds (see measureCampaigns), so machine drift is
// largely common-mode; campaignRatioSlack covers what noise remains on
// fresh runs.
const campaignRatioFloor = 2.0

// campaignRatioSlack is the measurement-noise band under the floor: a
// fresh run landing inside [floor·(1−slack), floor) is a soft failure —
// blocking by default, tolerated under -perf-warn-only exactly like a
// noisy ns/op sample — while a ratio below the band is hard evidence
// the batching advantage regressed and fails regardless. The committed
// baseline file is generated with the strict check, so the pinned claim
// itself always clears the full floor.
const campaignRatioSlack = 0.10

// campaignRatioDeltas evaluates the batched-vs-sequential campaign
// throughput rule within one perf file. Files from before the campaign
// benchmarks existed (no campaign/ entries at all) pass vacuously; a
// file with half of a seq/batched pair fails hard, since a silently
// dropped arm would blind the ratio gate.
func campaignRatioDeltas(cur []perfResult) []perfDelta {
	by := make(map[string]perfResult, len(cur))
	for _, r := range cur {
		by[r.Name] = r
	}
	var deltas []perfDelta
	for _, par := range []string{"1", "N"} {
		seq, okSeq := by["campaign/PointsPerSec/seq/parallel="+par]
		bat, okBat := by["campaign/PointsPerSec/batched/parallel="+par]
		if !okSeq && !okBat {
			continue
		}
		d := perfDelta{
			name: "campaign/ratio/parallel=" + par, kind: "ok",
			curNs: bat.NsPerOp, baseNs: seq.NsPerOp,
		}
		switch {
		case !okSeq || !okBat:
			d.kind = "hard"
			d.reason = "campaign seq/batched pair incomplete in new run"
		case bat.NsPerOp <= 0 || seq.NsPerOp <= 0:
			d.kind = "hard"
			d.reason = "campaign benchmark with non-positive ns/op"
		case bat.NsPerOp*campaignRatioFloor*(1-campaignRatioSlack) > seq.NsPerOp:
			d.kind = "hard"
			d.reason = fmt.Sprintf("batched campaign only %.2fx over sequential, floor %.1fx",
				seq.NsPerOp/bat.NsPerOp, campaignRatioFloor)
		case bat.NsPerOp*campaignRatioFloor > seq.NsPerOp:
			d.kind = "soft"
			d.reason = fmt.Sprintf("batched campaign %.2fx over sequential, inside the noise band under the %.1fx floor",
				seq.NsPerOp/bat.NsPerOp, campaignRatioFloor)
		default:
			d.reason = fmt.Sprintf("batched campaign %.2fx over sequential (floor %.1fx)",
				seq.NsPerOp/bat.NsPerOp, campaignRatioFloor)
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// runPerfCheck loads two -perf JSON files, compares NEW against
// BASELINE, prints a verdict table to w, and returns an error when the
// gate fails: always on hard regressions (allocs/op growth, missing
// benchmarks, a batched campaign arm below campaignRatioFloor), and on
// soft ns/op regressions too unless warnOnly.
func runPerfCheck(w io.Writer, newPath, basePath string, tol float64, warnOnly bool) error {
	if tol < 0 {
		return fmt.Errorf("perf-check: tolerance %v must be >= 0", tol)
	}
	cur, err := loadPerfFile(newPath)
	if err != nil {
		return fmt.Errorf("perf-check new: %w", err)
	}
	base, err := loadPerfFile(basePath)
	if err != nil {
		return fmt.Errorf("perf-check baseline: %w", err)
	}
	deltas := comparePerf(cur.Benchmarks, base.Benchmarks, tol)
	deltas = append(deltas, campaignRatioDeltas(cur.Benchmarks)...)

	var hard, soft int
	fmt.Fprintf(w, "%-40s %-8s %s\n", "benchmark", "verdict", "detail")
	for _, d := range deltas {
		verdict, detail := "ok", ""
		switch d.kind {
		case "hard", "missing":
			hard++
			verdict, detail = "FAIL", d.reason
		case "soft":
			soft++
			verdict, detail = "slow", d.reason
			if warnOnly {
				verdict = "warn"
			}
		case "new":
			verdict, detail = "new", d.reason
		default:
			detail = d.reason
			if detail == "" && d.baseNs > 0 && d.curNs > 0 {
				detail = fmt.Sprintf("ns/op %.1f -> %.1f", d.baseNs, d.curNs)
			}
		}
		fmt.Fprintf(w, "%-40s %-8s %s\n", d.name, verdict, detail)
	}

	switch {
	case hard > 0 && soft > 0:
		return fmt.Errorf("perf-check: %d hard regression(s) and %d ns/op regression(s) vs %s", hard, soft, basePath)
	case hard > 0:
		return fmt.Errorf("perf-check: %d hard regression(s) vs %s", hard, basePath)
	case soft > 0 && !warnOnly:
		return fmt.Errorf("perf-check: %d ns/op regression(s) beyond %.0f%% vs %s (use -perf-warn-only to downgrade)",
			soft, tol*100, basePath)
	case soft > 0:
		fmt.Fprintf(w, "perf-check: %d ns/op regression(s) beyond %.0f%% (warn-only)\n", soft, tol*100)
	default:
		fmt.Fprintf(w, "perf-check: no regressions vs %s\n", basePath)
	}
	return nil
}
