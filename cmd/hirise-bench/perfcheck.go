package main

import (
	"fmt"
	"io"
)

// perfDelta is one benchmark's new-vs-baseline comparison.
type perfDelta struct {
	name       string
	kind       string // "ok" | "soft" | "hard" | "missing" | "new"
	reason     string
	curNs      float64
	baseNs     float64
	curAllocs  int64
	baseAllocs int64
}

// comparePerf matches cur against base by benchmark name and classifies
// every pair. Allocation counts are exact, so any allocs/op increase is
// a hard regression; ns/op is noisy, so only a slowdown beyond tol
// (fractional, e.g. 0.25 = 25%) counts, and then only as a soft
// regression. A benchmark present in the baseline but missing from the
// new run is hard too — a silently dropped benchmark would blind the
// gate. Benchmarks new to cur are reported informationally.
func comparePerf(cur, base []perfResult, tol float64) []perfDelta {
	curBy := make(map[string]perfResult, len(cur))
	for _, r := range cur {
		curBy[r.Name] = r
	}
	deltas := make([]perfDelta, 0, len(base)+len(cur))
	for _, b := range base {
		c, ok := curBy[b.Name]
		if !ok {
			deltas = append(deltas, perfDelta{
				name: b.Name, kind: "missing",
				reason:     "benchmark present in baseline but absent from new run",
				baseNs:     b.NsPerOp,
				baseAllocs: b.AllocsPerOp,
			})
			continue
		}
		delete(curBy, b.Name)
		d := perfDelta{
			name: b.Name, kind: "ok",
			curNs: c.NsPerOp, baseNs: b.NsPerOp,
			curAllocs: c.AllocsPerOp, baseAllocs: b.AllocsPerOp,
		}
		switch {
		case c.AllocsPerOp > b.AllocsPerOp:
			d.kind = "hard"
			d.reason = fmt.Sprintf("allocs/op %d -> %d", b.AllocsPerOp, c.AllocsPerOp)
		case b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol):
			d.kind = "soft"
			d.reason = fmt.Sprintf("ns/op %.1f -> %.1f (+%.0f%%, tolerance %.0f%%)",
				b.NsPerOp, c.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, tol*100)
		}
		deltas = append(deltas, d)
	}
	// Anything left in curBy is new; keep cur's order for determinism.
	for _, c := range cur {
		if _, ok := curBy[c.Name]; ok {
			deltas = append(deltas, perfDelta{
				name: c.Name, kind: "new",
				reason:    "benchmark absent from baseline",
				curNs:     c.NsPerOp,
				curAllocs: c.AllocsPerOp,
			})
		}
	}
	return deltas
}

// runPerfCheck loads two -perf JSON files, compares NEW against
// BASELINE, prints a verdict table to w, and returns an error when the
// gate fails: always on hard regressions (allocs/op growth, missing
// benchmarks), and on soft ns/op regressions too unless warnOnly.
func runPerfCheck(w io.Writer, newPath, basePath string, tol float64, warnOnly bool) error {
	if tol < 0 {
		return fmt.Errorf("perf-check: tolerance %v must be >= 0", tol)
	}
	cur, err := loadPerfFile(newPath)
	if err != nil {
		return fmt.Errorf("perf-check new: %w", err)
	}
	base, err := loadPerfFile(basePath)
	if err != nil {
		return fmt.Errorf("perf-check baseline: %w", err)
	}
	deltas := comparePerf(cur.Benchmarks, base.Benchmarks, tol)

	var hard, soft int
	fmt.Fprintf(w, "%-40s %-8s %s\n", "benchmark", "verdict", "detail")
	for _, d := range deltas {
		verdict, detail := "ok", ""
		switch d.kind {
		case "hard", "missing":
			hard++
			verdict, detail = "FAIL", d.reason
		case "soft":
			soft++
			verdict, detail = "slow", d.reason
			if warnOnly {
				verdict = "warn"
			}
		case "new":
			verdict, detail = "new", d.reason
		default:
			if d.baseNs > 0 && d.curNs > 0 {
				detail = fmt.Sprintf("ns/op %.1f -> %.1f", d.baseNs, d.curNs)
			}
		}
		fmt.Fprintf(w, "%-40s %-8s %s\n", d.name, verdict, detail)
	}

	switch {
	case hard > 0 && soft > 0:
		return fmt.Errorf("perf-check: %d hard regression(s) and %d ns/op regression(s) vs %s", hard, soft, basePath)
	case hard > 0:
		return fmt.Errorf("perf-check: %d hard regression(s) vs %s", hard, basePath)
	case soft > 0 && !warnOnly:
		return fmt.Errorf("perf-check: %d ns/op regression(s) beyond %.0f%% vs %s (use -perf-warn-only to downgrade)",
			soft, tol*100, basePath)
	case soft > 0:
		fmt.Fprintf(w, "perf-check: %d ns/op regression(s) beyond %.0f%% (warn-only)\n", soft, tol*100)
	default:
		fmt.Fprintf(w, "perf-check: no regressions vs %s\n", basePath)
	}
	return nil
}
