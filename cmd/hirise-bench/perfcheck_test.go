package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writePerfFile(t *testing.T, name string, pf perfFile) string {
	t.Helper()
	raw, err := json.Marshal(pf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func kinds(deltas []perfDelta) map[string]string {
	m := make(map[string]string, len(deltas))
	for _, d := range deltas {
		m[d.name] = d.kind
	}
	return m
}

func TestComparePerfClassification(t *testing.T) {
	base := []perfResult{
		{Name: "fast", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "slow", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "leaky", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "noisy", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "dropped", NsPerOp: 100, AllocsPerOp: 0},
	}
	cur := []perfResult{
		{Name: "fast", NsPerOp: 80, AllocsPerOp: 0},   // improvement
		{Name: "slow", NsPerOp: 200, AllocsPerOp: 0},  // 2x: soft regression
		{Name: "leaky", NsPerOp: 90, AllocsPerOp: 3},  // faster but allocates more: hard
		{Name: "noisy", NsPerOp: 120, AllocsPerOp: 0}, // +20%: inside 25% tolerance
		{Name: "added", NsPerOp: 50, AllocsPerOp: 0},  // new benchmark
	}
	got := kinds(comparePerf(cur, base, 0.25))
	want := map[string]string{
		"fast": "ok", "slow": "soft", "leaky": "hard",
		"noisy": "ok", "dropped": "missing", "added": "new",
	}
	for name, k := range want {
		if got[name] != k {
			t.Errorf("%s: kind = %q, want %q", name, got[name], k)
		}
	}
	// Zero tolerance promotes any slowdown to a soft regression.
	if got := kinds(comparePerf(cur, base, 0)); got["noisy"] != "soft" {
		t.Errorf("tolerance 0: noisy kind = %q, want soft", got["noisy"])
	}
}

// TestRunPerfCheckFlagsSyntheticRegression is the sentinel's acceptance
// test: a synthetic regression between two -perf files must fail the
// gate, with -perf-warn-only downgrading ns/op (but never allocs/op)
// failures.
func TestRunPerfCheckFlagsSyntheticRegression(t *testing.T) {
	basePath := writePerfFile(t, "base.json", perfFile{
		Schema: perfSchema,
		Benchmarks: []perfResult{
			{Name: "kernel", NsPerOp: 100, AllocsPerOp: 0, Iterations: 1000},
			{Name: "sim", NsPerOp: 5000, AllocsPerOp: 40, Iterations: 100},
		},
	})
	softPath := writePerfFile(t, "soft.json", perfFile{
		Schema: perfSchema,
		Benchmarks: []perfResult{
			{Name: "kernel", NsPerOp: 180, AllocsPerOp: 0, Iterations: 1000}, // +80% ns/op
			{Name: "sim", NsPerOp: 5000, AllocsPerOp: 40, Iterations: 100},
		},
	})
	hardPath := writePerfFile(t, "hard.json", perfFile{
		Schema: perfSchema,
		Benchmarks: []perfResult{
			{Name: "kernel", NsPerOp: 100, AllocsPerOp: 1, Iterations: 1000}, // new allocation
			{Name: "sim", NsPerOp: 5000, AllocsPerOp: 40, Iterations: 100},
		},
	})

	var out bytes.Buffer
	if err := runPerfCheck(&out, basePath, basePath, 0.25, false); err != nil {
		t.Fatalf("identical files: %v", err)
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("identical files: output missing all-clear:\n%s", out.String())
	}

	if err := runPerfCheck(&out, softPath, basePath, 0.25, false); err == nil {
		t.Fatal("ns/op regression beyond tolerance: want gate failure")
	}
	out.Reset()
	if err := runPerfCheck(&out, softPath, basePath, 0.25, true); err != nil {
		t.Fatalf("warn-only must tolerate ns/op regressions: %v", err)
	}
	if !strings.Contains(out.String(), "warn") {
		t.Errorf("warn-only output missing warning:\n%s", out.String())
	}

	// allocs/op growth fails even under -perf-warn-only.
	for _, warnOnly := range []bool{false, true} {
		err := runPerfCheck(&out, hardPath, basePath, 0.25, warnOnly)
		if err == nil {
			t.Fatalf("allocs/op regression (warnOnly=%v): want gate failure", warnOnly)
		}
		if !strings.Contains(err.Error(), "hard regression") {
			t.Errorf("warnOnly=%v: error %q does not mention hard regression", warnOnly, err)
		}
	}
}

// TestCampaignRatioRule pins the batched-campaign throughput gate: a
// batched arm below the noise band under campaignRatioFloor fails hard
// within a single perf file, a ratio inside the band is a soft failure
// (warn-only tolerates it, strict mode does not), an incomplete
// seq/batched pair fails hard, and files from before the campaign
// benchmarks pass vacuously.
func TestCampaignRatioRule(t *testing.T) {
	seq := func(ns float64) perfResult {
		return perfResult{Name: "campaign/PointsPerSec/seq/parallel=1", NsPerOp: ns}
	}
	bat := func(ns float64) perfResult {
		return perfResult{Name: "campaign/PointsPerSec/batched/parallel=1", NsPerOp: ns}
	}
	cases := []struct {
		name string
		cur  []perfResult
		want string // "" = no delta emitted
	}{
		{"no campaign benchmarks", []perfResult{{Name: "kernel", NsPerOp: 10}}, ""},
		{"ratio above floor", []perfResult{seq(100), bat(40)}, "ok"},
		{"ratio exactly at floor", []perfResult{seq(100), bat(50)}, "ok"},
		{"ratio in noise band", []perfResult{seq(100), bat(52)}, "soft"},
		{"ratio below noise band", []perfResult{seq(100), bat(60)}, "hard"},
		{"batched arm missing", []perfResult{seq(100)}, "hard"},
		{"sequential arm missing", []perfResult{bat(40)}, "hard"},
		{"zero ns/op", []perfResult{seq(0), bat(0)}, "hard"},
	}
	for _, tc := range cases {
		deltas := campaignRatioDeltas(tc.cur)
		if tc.want == "" {
			if len(deltas) != 0 {
				t.Errorf("%s: got %d deltas, want none", tc.name, len(deltas))
			}
			continue
		}
		if len(deltas) != 1 {
			t.Errorf("%s: got %d deltas, want 1", tc.name, len(deltas))
			continue
		}
		if deltas[0].kind != tc.want {
			t.Errorf("%s: kind = %q (%s), want %q", tc.name, deltas[0].kind, deltas[0].reason, tc.want)
		}
	}

	// The rule is per worker count: a failing parallel=N pair fails the
	// gate even when the parallel=1 pair is healthy.
	deltas := campaignRatioDeltas([]perfResult{
		seq(100), bat(40),
		{Name: "campaign/PointsPerSec/seq/parallel=N", NsPerOp: 100},
		{Name: "campaign/PointsPerSec/batched/parallel=N", NsPerOp: 90},
	})
	if len(deltas) != 2 || deltas[0].kind != "ok" || deltas[1].kind != "hard" {
		t.Errorf("per-worker-count rule: deltas = %+v", deltas)
	}

	// And it feeds the gate: a ratio below the noise band fails
	// runPerfCheck even against itself and even warn-only (the ratio
	// needs no baseline), while a ratio inside the band fails strict
	// mode but passes warn-only — the same treatment as noisy ns/op.
	slow := writePerfFile(t, "ratio.json", perfFile{
		Schema:     perfSchema,
		Benchmarks: []perfResult{seq(100), bat(60)},
	})
	var out bytes.Buffer
	if err := runPerfCheck(&out, slow, slow, 0.25, true); err == nil {
		t.Error("below-band campaign ratio: want gate failure even with warn-only")
	}
	band := writePerfFile(t, "band.json", perfFile{
		Schema:     perfSchema,
		Benchmarks: []perfResult{seq(100), bat(52)},
	})
	if err := runPerfCheck(&out, band, band, 0.25, false); err == nil {
		t.Error("in-band campaign ratio: want strict gate failure")
	}
	out.Reset()
	if err := runPerfCheck(&out, band, band, 0.25, true); err != nil {
		t.Errorf("in-band campaign ratio under warn-only: %v", err)
	}
	if !strings.Contains(out.String(), "warn") {
		t.Errorf("warn-only in-band output missing warning:\n%s", out.String())
	}
}

func TestRunPerfCheckRejectsBadInputs(t *testing.T) {
	good := writePerfFile(t, "good.json", perfFile{
		Schema:     perfSchema,
		Benchmarks: []perfResult{{Name: "kernel", NsPerOp: 100}},
	})
	badSchema := writePerfFile(t, "bad.json", perfFile{
		Schema:     "some-other-schema/v9",
		Benchmarks: []perfResult{{Name: "kernel", NsPerOp: 100}},
	})
	var out bytes.Buffer
	if err := runPerfCheck(&out, badSchema, good, 0.25, false); err == nil {
		t.Error("want error for wrong schema in new file")
	}
	if err := runPerfCheck(&out, good, badSchema, 0.25, false); err == nil {
		t.Error("want error for wrong schema in baseline file")
	}
	if err := runPerfCheck(&out, good, filepath.Join(t.TempDir(), "absent.json"), 0.25, false); err == nil {
		t.Error("want error for missing baseline file")
	}
	if err := runPerfCheck(&out, good, good, -1, false); err == nil {
		t.Error("want error for negative tolerance")
	}
}
