package main

import (
	"fmt"
	"os"
	"runtime/pprof"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/fabric"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// runPGOProfile executes a representative slice of the simulator's hot
// paths under the CPU profiler and writes the pprof profile to path.
// Committing the output as cmd/hirise-bench/default.pgo lets `go build
// -pgo=auto` (the toolchain default) profile-guide every later build of
// this command; regenerate it with `hirise-bench -pgo-profile
// cmd/hirise-bench/default.pgo` after significant hot-loop changes.
//
// The workload mirrors where campaign wall-clock actually goes, so the
// compiler optimizes for the same mix CI and users run: the batched and
// sequential campaign arms on the stock LRG crossbar (the fused lean
// loop and sim.Run's phase loop), the Hi-Rise CLRG switch through the
// batch engine's generic backend (core.Arbitrate), and one saturated
// dragonfly fabric run (routing, credits, and VC arbitration).
func runPGOProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pgo profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("pgo profile: %w", err)
	}
	workErr := pgoWorkload()
	pprof.StopCPUProfile()
	if cerr := f.Close(); cerr != nil && workErr == nil {
		workErr = cerr
	}
	if workErr != nil {
		return fmt.Errorf("pgo profile: %w", workErr)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func pgoWorkload() error {
	cfg := campaignCfg()

	// Batched campaign arm: the fused lean loop, arena recycled across
	// points.
	bt := sim.NewBatch(func() sim.Switch { return crossbar.New(64) }, nil)
	for round := 0; round < 3; round++ {
		for point := 0; point < campaignPoints; point++ {
			if _, err := bt.Run(cfg, campaignSeeds(point)); err != nil {
				return err
			}
		}
	}

	// Sequential campaign arm: sim.Run's phase loop with a fresh switch
	// per replicate.
	for point := 0; point < campaignPoints; point++ {
		for _, seed := range campaignSeeds(point) {
			c := cfg
			c.Switch = crossbar.New(64)
			c.Seed = seed
			if _, err := sim.Run(c); err != nil {
				return err
			}
		}
	}

	// Hi-Rise CLRG through the batch engine's generic backend.
	hb := sim.NewBatch(func() sim.Switch {
		sw, err := core.New(topo.Default64())
		if err != nil {
			panic(err)
		}
		return sw
	}, nil)
	for point := 0; point < campaignPoints; point++ {
		if _, err := hb.Run(cfg, campaignSeeds(point)); err != nil {
			return err
		}
	}

	// Saturated dragonfly fabric: the multi-switch hot loop.
	d := fabric.Dragonfly{Groups: 9, GroupSize: 8, GlobalPorts: 1, Conc: 2, Lanes: 1}
	_, err := fabric.Run(fabric.Config{
		Topo: d, Routing: fabric.Minimal,
		Traffic: traffic.Uniform{Radix: d.Nodes() * d.Conc},
		Load:    1.0, Warmup: 200, Measure: 800,
	})
	return err
}
