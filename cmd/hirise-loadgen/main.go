// Command hirise-loadgen drives one or more hirise-served daemons with
// a seeded, open-loop, bursty workload and audits the outcome: every
// request must reach a terminal state, 429 backpressure is honored via
// Retry-After, transport failures fail over to the next target, and
// repeated specs are checked for byte-identical artifacts. It is the
// measurement half of the cluster's chaos drills.
//
// Usage:
//
//	hirise-loadgen -targets http://n1:8080,http://n2:8080 \
//	    -requests 500 -rate 100 -keyspace 24 -seed 7
//
// The interarrival gaps are bounded-Pareto distributed (shape -alpha,
// truncated at -burst-cap times the minimum gap) and normalized so the
// mean offered rate is exactly -rate. Latency quantiles are measured
// from each request's scheduled arrival, so queueing under overload is
// charged to the cluster rather than hidden by client slowdown.
//
// The exit status is 0 only for a clean run: zero lost requests, zero
// failed jobs, zero byte mismatches.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/reprolab/hirise/internal/loadgen"
)

func main() {
	var (
		targets  = flag.String("targets", "http://127.0.0.1:8080", "comma-separated base URLs of hirise-served daemons")
		requests = flag.Int("requests", 100, "total requests to fire")
		rate     = flag.Float64("rate", 50, "mean offered load, requests/second")
		alpha    = flag.Float64("alpha", 1.5, "Pareto shape of the interarrival gaps (>1; smaller = burstier)")
		burstCap = flag.Float64("burst-cap", 50, "interarrival truncation, multiples of the minimum gap")
		keyspace = flag.Int("keyspace", 16, "number of distinct job specs to draw from")
		radix    = flag.Int("radix", 8, "switch radix of the generated load sweeps")
		seed     = flag.Uint64("seed", 1, "schedule PRNG seed; equal seeds replay the identical workload")
		timeout  = flag.Duration("request-timeout", 30*time.Second, "per-request terminal-state deadline")
		resub    = flag.Int("max-resubmits", 8, "per-request failover budget across targets")
		verify   = flag.Bool("verify", true, "check repeated specs for byte-identical artifacts")
		jsonOut  = flag.Bool("json", false, "emit the full report as JSON on stdout")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "hirise-loadgen: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Targets:        strings.Split(*targets, ","),
		Requests:       *requests,
		Rate:           *rate,
		Alpha:          *alpha,
		BurstCap:       *burstCap,
		Keyspace:       *keyspace,
		Radix:          *radix,
		Seed:           *seed,
		RequestTimeout: *timeout,
		MaxResubmits:   *resub,
		SkipVerify:     !*verify,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hirise-loadgen: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "hirise-loadgen: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("requests  %d at %.1f/s offered (%.1f/s achieved) over %.2fs\n",
			rep.Requests, rep.OfferedRate, rep.AchievedRate, rep.ElapsedSeconds)
		fmt.Printf("terminal  done %d (cache %d, peer %d, computed %d)  failed %d  cancelled %d  timeout %d  lost %d\n",
			rep.Done, rep.CacheHits, rep.PeerHits, rep.Computed,
			rep.Failed, rep.Cancelled, rep.TimedOut, rep.Lost)
		fmt.Printf("pressure  429s %d (%.1fs honored)  resubmits %d  mismatched %d\n",
			rep.Rejected429, rep.RetryAfterWaitSeconds, rep.Resubmits, rep.Mismatched)
		fmt.Printf("latency   mean %.3fs  p50 %.3fs  p90 %.3fs  p99 %.3fs  max %.3fs\n",
			rep.Latency.Mean, rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
	}
	if !rep.Clean() {
		fmt.Fprintln(os.Stderr, "hirise-loadgen: run NOT clean (lost, failed, or mismatched requests)")
		os.Exit(1)
	}
}
