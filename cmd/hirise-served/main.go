// Command hirise-served runs the experiment job service: an HTTP API
// over the deterministic simulation engine, backed by the
// content-addressed result store.
//
// Usage:
//
//	hirise-served -addr :8080 -store /var/cache/hirise
//
// Submit jobs with POST /jobs, watch them with GET /jobs/{id} and the
// NDJSON stream at GET /jobs/{id}/events, fetch bodies from GET
// /jobs/{id}/result, and cancel with DELETE /jobs/{id}. Identical
// submissions are served from the store byte-identically; concurrent
// identical submissions share one computation. Running jobs expose a
// windowed progress time series at GET /jobs/{id}/telemetry. /healthz
// and /metrics expose liveness and Prometheus-format counters.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting
// requests, queued and running jobs finish (or, past -drain-timeout,
// are cancelled at the simulators' next cycle check), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/reprolab/hirise/internal/serve"
	"github.com/reprolab/hirise/internal/store"
	"github.com/reprolab/hirise/internal/version"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		storeDir = flag.String("store", "", "result store directory (empty = in-memory cache only)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		workers  = flag.Int("workers", 1, "jobs executed concurrently")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent simulations per job; output is byte-identical at any value")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long a shutdown waits for in-flight jobs before cancelling them")
		jobTimeout = flag.Duration("job-timeout", 0,
			"per-job wall-clock limit; jobs past it end in the \"timeout\" state (0 = unlimited)")
		teleWindow = flag.Duration("telemetry-window", 0,
			"per-job telemetry sampling cadence for /jobs/{id}/telemetry (0 = 250ms default, negative disables)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "hirise-served: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	st, err := store.Open(*storeDir, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: open store: %v\n", err)
		os.Exit(1)
	}
	srv, err := serve.New(serve.Config{
		Store:           st,
		QueueDepth:      *queue,
		Workers:         *workers,
		SimWorkers:      *parallel,
		JobTimeout:      *jobTimeout,
		TelemetryWindow: *teleWindow,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hirise-served: listening on %s (store %q, model %s)\n",
		*addr, *storeDir, version.Model)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "hirise-served: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "hirise-served: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain workers.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: http shutdown: %v\n", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: drain timed out, jobs cancelled: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hirise-served: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hirise-served: drained cleanly")
}
