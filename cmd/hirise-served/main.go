// Command hirise-served runs the experiment job service: an HTTP API
// over the deterministic simulation engine, backed by the
// content-addressed result store.
//
// Usage:
//
//	hirise-served -addr :8080 -store /var/cache/hirise
//
// Submit jobs with POST /jobs, watch them with GET /jobs/{id} and the
// NDJSON stream at GET /jobs/{id}/events, fetch bodies from GET
// /jobs/{id}/result, and cancel with DELETE /jobs/{id}. Identical
// submissions are served from the store byte-identically; concurrent
// identical submissions share one computation. Running jobs expose a
// windowed progress time series at GET /jobs/{id}/telemetry. /healthz
// and /metrics expose liveness and Prometheus-format counters.
//
// Several daemons form a serving cluster with static membership:
//
//	hirise-served -addr :8081 -store /var/cache/h1 -peer-id n1 \
//	    -peers n1=http://host1:8081,n2=http://host2:8081
//
// Each store key has a home node on a consistent-hash ring; on a local
// store miss the daemon fetches the result from the home node and its
// ring siblings (with hedging, bounded retries, and per-peer circuit
// breakers) before computing locally. Every peer failure degrades to
// local compute — clustering can only avoid work, never add failure
// modes. GET /cluster exposes the peer and breaker state.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting
// requests, queued and running jobs finish (or, past -drain-timeout,
// are cancelled at the simulators' next cycle check), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/reprolab/hirise/internal/cluster"
	"github.com/reprolab/hirise/internal/serve"
	"github.com/reprolab/hirise/internal/store"
	"github.com/reprolab/hirise/internal/version"
)

// parsePeers turns "n1=http://host1:8081,n2=http://host2:8081" into the
// cluster membership. The self entry may omit its URL ("n1=" or a bare
// "n1"): a node never fetches from itself.
func parsePeers(spec, self string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, _ := strings.Cut(entry, "=")
		if id == "" {
			return nil, fmt.Errorf("peer entry %q has no id", entry)
		}
		if url == "" && id != self {
			return nil, fmt.Errorf("peer %s has no URL (only the self entry may omit it)", id)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: url})
	}
	return peers, nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		storeDir = flag.String("store", "", "result store directory (empty = in-memory cache only)")
		queue    = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		workers  = flag.Int("workers", 1, "jobs executed concurrently")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"max concurrent simulations per job; output is byte-identical at any value")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long a shutdown waits for in-flight jobs before cancelling them")
		jobTimeout = flag.Duration("job-timeout", 0,
			"per-job wall-clock limit; jobs past it end in the \"timeout\" state (0 = unlimited)")
		teleWindow = flag.Duration("telemetry-window", 0,
			"per-job telemetry sampling cadence for /jobs/{id}/telemetry (0 = 250ms default, negative disables)")
		heartbeat = flag.Duration("heartbeat", 0,
			"idle events-stream heartbeat cadence (0 = 10s default, negative disables)")

		peerID = flag.String("peer-id", "", "this node's cluster member ID (empty = clustering off)")
		peers  = flag.String("peers", "", "static cluster membership as id=url,id=url,... (must include -peer-id)")
		hedge  = flag.Duration("hedge-delay", 100*time.Millisecond,
			"delay before a peer fetch is hedged to the next candidate (negative disables hedging)")
		attemptTimeout = flag.Duration("attempt-timeout", 2*time.Second, "per-attempt peer fetch timeout")
		retries        = flag.Int("peer-retries", 1, "extra attempts per peer after a failed fetch")
		brkThreshold   = flag.Int("breaker-threshold", 3, "consecutive failures that open a peer's circuit breaker")
		brkCooldown    = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker wait before a trial request")
		probeInterval  = flag.Duration("probe-interval", 2*time.Second,
			"peer /healthz probe cadence (negative disables probing)")
		clusterSeed = flag.Uint64("cluster-seed", 1, "seed for the peer layer's deterministic retry jitter")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "hirise-served: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	st, err := store.Open(*storeDir, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: open store: %v\n", err)
		os.Exit(1)
	}

	var cl *cluster.Cluster
	if *peerID != "" {
		members, err := parsePeers(*peers, *peerID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hirise-served: -peers: %v\n", err)
			os.Exit(2)
		}
		cl, err = cluster.New(cluster.Config{
			Self:             *peerID,
			Peers:            members,
			AttemptTimeout:   *attemptTimeout,
			Retries:          *retries,
			HedgeDelay:       *hedge,
			BreakerThreshold: *brkThreshold,
			BreakerCooldown:  *brkCooldown,
			ProbeInterval:    *probeInterval,
			Seed:             *clusterSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hirise-served: cluster: %v\n", err)
			os.Exit(2)
		}
	} else if *peers != "" {
		fmt.Fprintln(os.Stderr, "hirise-served: -peers given without -peer-id")
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		Store:             st,
		QueueDepth:        *queue,
		Workers:           *workers,
		SimWorkers:        *parallel,
		JobTimeout:        *jobTimeout,
		TelemetryWindow:   *teleWindow,
		HeartbeatInterval: *heartbeat,
		Cluster:           cl,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: %v\n", err)
		os.Exit(1)
	}

	httpSrv := serve.NewHTTPServer(*addr, srv.Handler(), serve.HTTPTimeouts{})
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if cl != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: listening on %s as cluster node %s (store %q, model %s)\n",
			*addr, *peerID, *storeDir, version.Model)
	} else {
		fmt.Fprintf(os.Stderr, "hirise-served: listening on %s (store %q, model %s)\n",
			*addr, *storeDir, version.Model)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "hirise-served: %v\n", err)
		os.Exit(1)
	}

	fmt.Fprintln(os.Stderr, "hirise-served: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain workers,
	// then stop the peer layer (running jobs may peer-fetch until the end).
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: http shutdown: %v\n", err)
	}
	drainErr := srv.Drain(shutdownCtx)
	if cl != nil {
		cl.Close()
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "hirise-served: drain timed out, jobs cancelled: %v\n", drainErr)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "hirise-served: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hirise-served: drained cleanly")
}
