package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"github.com/reprolab/hirise"
	"github.com/reprolab/hirise/internal/store"
)

// fabricCLI is the -design fabric mode: a multi-switch interconnect
// where every router is a full switch wired by a pluggable topology
// (mesh, flattened butterfly, dragonfly) with credit-based link flow
// control and minimal or Valiant routing. It shares the windowing,
// sweep, observability, and store plumbing with the other designs but
// has its own traffic construction (destinations are cores of the whole
// fabric, not ports of one switch), its own fault flags (-fail-links,
// -fail-routers), and its own store key kind, so cached single-switch
// results can never collide with fabric ones.
type fabricCLI struct {
	topoName                       string
	nodes                          int
	meshW, meshH                   int
	conc, lanes                    int
	groups, groupSize, globalPorts int
	routingName                    string
	vcs, flits                     int

	load            float64
	loads           []float64
	warmup, measure int64
	seed            uint64
	workers         int
	check           bool
	heartbeat       time.Duration

	faultSeed              uint64
	failLinks, failRouters int

	pattern string
	target  int

	newObserver func() *hirise.Observer
	writeObs    func(observers []*hirise.Observer, labels []float64)
}

// topology resolves the topology flags. -nodes is the convenience
// spelling: square grids take W = H = sqrt(N); the dragonfly geometry
// comes from -groups/-groupsize/-globalports and -nodes, when given,
// must agree with it.
func (fc fabricCLI) topology() (hirise.FabricTopology, error) {
	gridDims := func() (w, h int, err error) {
		w, h = fc.meshW, fc.meshH
		if fc.nodes > 0 {
			s := int(math.Round(math.Sqrt(float64(fc.nodes))))
			if s*s != fc.nodes {
				return 0, 0, fmt.Errorf("-nodes %d is not a square; use -mesh-w and -mesh-h for rectangular grids", fc.nodes)
			}
			w, h = s, s
		}
		return w, h, nil
	}
	switch fc.topoName {
	case "mesh":
		w, h, err := gridDims()
		if err != nil {
			return nil, err
		}
		return hirise.FabricMesh{W: w, H: h, Conc: fc.conc, Lanes: fc.lanes}, nil
	case "fbfly":
		w, h, err := gridDims()
		if err != nil {
			return nil, err
		}
		return hirise.FabricFlattenedButterfly{W: w, H: h, Conc: fc.conc, Lanes: fc.lanes}, nil
	case "dragonfly":
		d := hirise.FabricDragonfly{
			Groups: fc.groups, GroupSize: fc.groupSize, GlobalPorts: fc.globalPorts,
			Conc: fc.conc, Lanes: fc.lanes,
		}
		if fc.nodes > 0 && fc.nodes != d.Nodes() {
			return nil, fmt.Errorf("-nodes %d contradicts the dragonfly geometry (%d groups x %d routers = %d)",
				fc.nodes, fc.groups, fc.groupSize, d.Nodes())
		}
		return d, nil
	}
	return nil, fmt.Errorf("unknown fabric topology %q: want mesh | fbfly | dragonfly", fc.topoName)
}

// makeTraffic builds the offered pattern over the fabric's cores. The
// shift pattern moves every flow by half the fabric (mesh bisection
// worst case) — the adversarial counterpart Valiant routing exists for.
func (fc fabricCLI) makeTraffic(cores int) (hirise.TrafficPattern, error) {
	switch fc.pattern {
	case "uniform":
		return hirise.UniformTraffic{Radix: cores}, nil
	case "hotspot":
		if fc.target < 0 || fc.target >= cores {
			return nil, fmt.Errorf("-target %d outside the fabric's %d cores", fc.target, cores)
		}
		return hirise.HotspotTraffic{Target: fc.target}, nil
	case "permutation":
		return hirise.NewPermutationTraffic(cores, fc.seed), nil
	case "shift":
		return hirise.ShiftTraffic{N: cores, By: cores / 2}, nil
	}
	return nil, fmt.Errorf("fabric traffic %q: want uniform | hotspot | permutation | shift", fc.pattern)
}

// base assembles the validated fabric configuration at load 0; Run
// validates the rest (VC/class fit, switch radix, fault compatibility).
func (fc fabricCLI) base(ctx context.Context) (hirise.FabricConfig, error) {
	topo, err := fc.topology()
	if err != nil {
		return hirise.FabricConfig{}, err
	}
	routing, err := hirise.ParseFabricRouting(fc.routingName)
	if err != nil {
		return hirise.FabricConfig{}, err
	}
	traf, err := fc.makeTraffic(topo.Nodes() * topo.Concentration())
	if err != nil {
		return hirise.FabricConfig{}, err
	}
	cfg := hirise.FabricConfig{
		Topo: topo, Routing: routing, Traffic: traf,
		PacketFlits: fc.flits, VCs: fc.vcs,
		Warmup: fc.warmup, Measure: fc.measure, Seed: fc.seed,
		Check: fc.check, Ctx: ctx,
	}
	if fc.failLinks > 0 || fc.failRouters > 0 {
		fseed := fc.faultSeed
		if fseed == 0 {
			fseed = fc.seed
		}
		fs, err := hirise.FabricFaultSpec{
			Seed: fseed, FailLinks: fc.failLinks, FailRouters: fc.failRouters,
		}.Build(topo)
		if err != nil {
			return hirise.FabricConfig{}, err
		}
		cfg.Faults = fs
	}
	return cfg, nil
}

// describe renders the topology for the report header.
func (fc fabricCLI) describe(topo hirise.FabricTopology) string {
	switch t := topo.(type) {
	case hirise.FabricMesh:
		return fmt.Sprintf("mesh %dx%d", t.W, t.H)
	case hirise.FabricFlattenedButterfly:
		return fmt.Sprintf("fbfly %dx%d", t.W, t.H)
	case hirise.FabricDragonfly:
		return fmt.Sprintf("dragonfly g%d a%d h%d", t.Groups, t.GroupSize, t.GlobalPorts)
	}
	return fc.topoName
}

// runSingle simulates one load and prints the fabric report to w.
func (fc fabricCLI) runSingle(ctx context.Context, w io.Writer) error {
	cfg, err := fc.base(ctx)
	if err != nil {
		return err
	}
	cfg.Load = fc.load
	observer := fc.newObserver()
	cfg.Obs = observer

	stopHB := hirise.Heartbeat(os.Stderr, fc.heartbeat, func() string { return "simulating" })
	res, err := hirise.SimulateFabric(cfg)
	stopHB()
	if err != nil {
		return err
	}
	if observer != nil {
		fc.writeObs([]*hirise.Observer{observer}, nil)
	}

	topo := cfg.Topo
	cores := topo.Nodes() * topo.Concentration()
	fmt.Fprintf(w, "design      fabric %s, conc %d, lanes %d (%d routers, %d cores, radix %d)\n",
		fc.describe(topo), topo.Concentration(), topo.LaneCount(), topo.Nodes(), cores, topo.Radix())
	fmt.Fprintf(w, "routing     %s, %d VCs over %d deadlock class(es)\n",
		cfg.Routing, cfg.VCs, topo.Classes(cfg.Routing))
	fmt.Fprintf(w, "traffic     %s @ %.4f packets/cycle/core\n", fc.pattern, fc.load)
	fmt.Fprintf(w, "accepted    %.4f packets/cycle/core (%.3f fabric-wide)\n",
		res.AcceptedPackets/float64(cores), res.AcceptedPackets)
	fmt.Fprintf(w, "latency     avg %.1f cycles, p50 %.0f, p99 %.0f, avg hops %.2f\n",
		res.AvgLatency, res.P50Latency, res.P99Latency, res.AvgHops)
	fmt.Fprintf(w, "packets     injected %d, delivered %d, dropped-at-source %d%s\n",
		res.Injected, res.Delivered, res.DroppedInjections,
		map[bool]string{true: "  (saturated)", false: ""}[res.Saturated()])
	if fs := cfg.Faults; fs != nil {
		fmt.Fprintf(w, "faults      %d link lanes, %d routers failed; dead flows %d\n",
			fs.Links(), fs.Routers(), res.DeadFlows)
	}
	return nil
}

// runSweep simulates every load and prints the fabric sweep table to w.
func (fc fabricCLI) runSweep(ctx context.Context, w io.Writer) error {
	base, err := fc.base(ctx)
	if err != nil {
		return err
	}
	observers := make([]*hirise.Observer, len(fc.loads))
	var obsFor func(i int) *hirise.Observer
	if fc.newObserver() != nil {
		for i := range observers {
			observers[i] = fc.newObserver()
		}
		obsFor = func(i int) *hirise.Observer { return observers[i] }
	}
	stopHB := hirise.Heartbeat(os.Stderr, fc.heartbeat, func() string {
		return fmt.Sprintf("%d sweep points in flight", len(fc.loads))
	})
	results, err := hirise.FabricLoadSweepObserved(base, fc.loads, fc.workers, obsFor)
	stopHB()
	if err != nil {
		return err
	}
	if obsFor != nil {
		fc.writeObs(observers, fc.loads)
	}
	cores := float64(base.Topo.Nodes() * base.Topo.Concentration())
	withFaults := base.Faults != nil
	fmt.Fprintf(w, "%-14s %-14s %-10s %-8s %-6s %s", "load(pkt/cyc)", "tput(pkt/cyc)", "lat(cyc)", "p99(cyc)", "hops", "state")
	if withFaults {
		fmt.Fprintf(w, "      dead")
	}
	fmt.Fprintln(w)
	for i, res := range results {
		state := "ok"
		if res.Saturated() {
			state = "saturated"
		}
		fmt.Fprintf(w, "%-14.4f %-14.4f %-10.2f %-8.0f %-6.2f %s",
			fc.loads[i], res.AcceptedPackets/cores, res.AvgLatency, res.P99Latency, res.AvgHops, state)
		if withFaults {
			fmt.Fprintf(w, "%*s %d", 9-len(state), "", res.DeadFlows)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// storeKey derives the content-addressed result key of this fabric run.
// The kind "fabric-sim" namespaces it away from the single-switch "sim"
// and "voq-sim" keys.
func (fc fabricCLI) storeKey(st *store.Store) (store.Key, error) {
	return st.KeyOf("fabric-sim", struct {
		Topo, Routing, Traffic         string
		Nodes, MeshW, MeshH            int
		Conc, Lanes                    int
		Groups, GroupSize, GlobalPorts int
		VCs, Flits, Target             int
		Load                           float64
		Loads                          []float64
		Warmup, Measure                int64
		Seed, FaultSeed                uint64
		FailLinks, FailRouters         int
		Check                          bool
	}{
		fc.topoName, fc.routingName, fc.pattern,
		fc.nodes, fc.meshW, fc.meshH,
		fc.conc, fc.lanes,
		fc.groups, fc.groupSize, fc.globalPorts,
		fc.vcs, fc.flits, fc.target,
		fc.load,
		fc.loads,
		fc.warmup, fc.measure,
		fc.seed, fc.faultSeed,
		fc.failLinks, fc.failRouters,
		fc.check,
	})
}
