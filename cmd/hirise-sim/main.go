// Command hirise-sim runs a single network simulation of one switch
// configuration under one traffic pattern and prints its measurements —
// the exploratory companion to cmd/hirise-bench's fixed experiments.
//
// Examples:
//
//	hirise-sim -design hirise -channels 4 -scheme clrg -traffic uniform -load 0.15
//	hirise-sim -design 2d -traffic hotspot -load 0.002 -perinput
//	hirise-sim -design hirise -channels 1 -scheme l2l -traffic adversarial -load 1
//
// VOQ crossbar mode (flat virtual-output-queued switch driven by the
// input-queued scheduler zoo, no 3D structure or physical model):
//
//	hirise-sim -design voq -sched islip -iters 2 -traffic uniform -load 1
//	hirise-sim -design voq -sched wavefront -speedup 2 -sweep 0.1:1.0:0.1
//	hirise-sim -design voq -sched mwm -radix 16 -measure 5000 -load 0.9
//
// Multi-switch fabric mode (every router a full switch wired by a
// pluggable topology with credit-based link flow control and VC-class
// deadlock avoidance):
//
//	hirise-sim -design fabric -topo mesh -nodes 16 -conc 4 -load 0.2
//	hirise-sim -design fabric -topo dragonfly -groups 9 -groupsize 4 -globalports 2 -routing valiant -traffic shift -load 1 -check
//	hirise-sim -design fabric -topo fbfly -mesh-w 4 -mesh-h 4 -sweep 0.1:1.0:0.1 -parallel 4
//	hirise-sim -design fabric -topo mesh -lanes 2 -fail-links 4 -fail-routers 1 -check
//
// Fault injection (hirise design only; deterministic in the fault seed):
//
//	hirise-sim -fail-channels 8 -load 1 -check
//	hirise-sim -fault-rate 0.0005 -fault-repair 64 -sweep 0.05:0.3:0.05 -check
//
// Observability (all output to side files or stderr; stdout is
// byte-identical to an unobserved run):
//
//	hirise-sim -traffic hotspot -load 0.05 -trace-chrome trace.json -fairness fairness.txt
//	hirise-sim -sweep 0.01:0.3:0.01 -metrics metrics.json -heartbeat 10s
//	hirise-sim -sweep 0.01:0.5:0.005 -cpuprofile cpu.pprof -runmetrics rt.json
//
// Time-series telemetry (windowed counter/gauge tracks from the hot
// loop; -tele-chrome counter tracks load in ui.perfetto.dev alongside
// -trace-chrome slices) and MSER steady-state early exit:
//
//	hirise-sim -load 0.2 -tele-ndjson tele.ndjson -tele-window 256
//	hirise-sim -sweep 0.05:0.3:0.05 -tele-chrome counters.json -trace-chrome trace.json
//	hirise-sim -load 0.1 -measure 500000 -converge-stop
//
// -store DIR caches each run's stdout in a content-addressed result
// store keyed by the full configuration, the loads, and the model
// version, so repeating a run replays it byte-identically without
// simulating. Observability sinks record switch internals, so runs with
// any obs flag bypass the store.
//
// SIGINT/SIGTERM cancels the run within one sweep point (or a few
// thousand cycles of a single run) and removes partially-written
// profile side files before exiting non-zero.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"github.com/reprolab/hirise"
	"github.com/reprolab/hirise/internal/store"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// writeFile creates path and runs fn over it, failing loudly on any
// error — observability output that silently vanishes is worse than
// none.
func writeFile(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fail("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fail("writing %s: %v", path, err)
	}
}

func main() {
	var (
		design   = flag.String("design", "hirise", "switch design: 2d | folded | hirise | voq | fabric")
		radix    = flag.Int("radix", 64, "switch radix")
		layers   = flag.Int("layers", 4, "stacked layers (folded, hirise)")
		channels = flag.Int("channels", 4, "L2LC multiplicity (hirise)")
		scheme   = flag.String("scheme", "clrg", "arbitration: l2l | wlrg | clrg (hirise)")
		alloc    = flag.String("alloc", "input", "channel allocation: input | output | priority")
		classes  = flag.Int("classes", 3, "CLRG class count")
		pattern  = flag.String("traffic", "uniform", "uniform | hotspot | adversarial | bursty | permutation | bitrev | interlayer | layerlocal | binadv")
		target   = flag.Int("target", 63, "hotspot target output")
		burst    = flag.Float64("burst", 8, "mean burst length for bursty traffic")
		load     = flag.Float64("load", 0.1, "offered load, packets/cycle/input")
		warmup   = flag.Int64("warmup", 10000, "warmup cycles")
		measure  = flag.Int64("measure", 50000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		vcs      = flag.Int("vcs", 4, "virtual channels per input")
		flits    = flag.Int("flits", 4, "flits per packet")
		perInput = flag.Bool("perinput", false, "print per-input latency and throughput")

		// VOQ crossbar mode (-design voq): input-queued scheduler zoo.
		schedName = flag.String("sched", "islip", "VOQ scheduler: islip | wavefront | mwm (mwm is O(n^3) per cycle: keep -radix or the windows small)")
		iters     = flag.Int("iters", 2, "iSLIP iterations per scheduling phase (-sched islip)")
		speedupS  = flag.Int("speedup", 1, "internal crossbar speedup S: scheduling phases per cell time")
		voqCap    = flag.Int("voqcap", 32, "per-(input,output) VOQ capacity in cells")
		outqCap   = flag.Int("outqcap", 16, "output queue capacity in cells (binds when speedup > 1)")

		// Multi-switch fabric mode (-design fabric): every router a full
		// switch wired by a pluggable topology (fabric.go).
		topoName    = flag.String("topo", "mesh", "fabric topology: mesh | fbfly | dragonfly (-design fabric)")
		nodes       = flag.Int("nodes", 0, "fabric router count; square grids take W=H=sqrt(N), dragonfly geometry must agree (0 = use the shape flags)")
		meshW       = flag.Int("mesh-w", 4, "fabric grid width (mesh, fbfly)")
		meshH       = flag.Int("mesh-h", 4, "fabric grid height (mesh, fbfly)")
		conc        = flag.Int("conc", 2, "fabric cores per router")
		lanes       = flag.Int("lanes", 1, "fabric parallel lanes per logical link")
		groups      = flag.Int("groups", 9, "dragonfly group count")
		groupSize   = flag.Int("groupsize", 4, "dragonfly routers per group")
		globalPorts = flag.Int("globalports", 2, "dragonfly global link bundles per router (groupsize*globalports must equal groups-1)")
		routing     = flag.String("routing", "min", "fabric routing: min | valiant")
		failLinks   = flag.Int("fail-links", 0, "fabric: permanently fail this many link lanes, chosen deterministically from the fault seed (at most lanes-1 per bundle, so routing reroutes around every one)")
		failRouters = flag.Int("fail-routers", 0, "fabric: fail-stop this many routers (flows they sever retire as dead flows)")

		sweep    = flag.String("sweep", "", "sweep loads lo:hi:step (packets/cycle/input) instead of a single run")
		workers  = flag.Int("parallel", 0, "concurrent sweep points (0 = all CPUs, 1 = serial); results are identical at any value")
		storeDir = flag.String("store", "",
			"cache stdout in this content-addressed result store; repeated runs replay byte-identically (bypassed when any obs flag is set)")

		// Fault plane: deterministic seeded fault injection (hirise only).
		faultSeed = flag.Uint64("fault-seed", 0, "fault-plane seed (0 = use -seed)")
		failCh    = flag.Int("fail-channels", 0, "permanently fail this many L2LCs, chosen deterministically from the fault seed")
		faultRate = flag.Float64("fault-rate", 0, "per-channel transient outage probability per cycle (lossy links; sources retransmit)")
		faultRep  = flag.Int64("fault-repair", 0, "mean transient outage length in cycles (0 = default)")
		check     = flag.Bool("check", false, "run the self-checking invariant layer (failed-resource grants and flit conservation)")

		// Observability: switch-internals sinks, written to side files.
		traceJSONL  = flag.String("trace-jsonl", "", "write flit lifecycle events as JSON Lines to this file")
		traceChrome = flag.String("trace-chrome", "", "write flit lifecycle events as Chrome trace-event JSON (load in ui.perfetto.dev) to this file")
		traceMax    = flag.Int("trace-max", 0, "max recorded events per run (0 = default cap); excess is counted, not recorded")
		metricsOut  = flag.String("metrics", "", "write the metrics registry as JSON to this file (sweeps: one array entry per point)")
		fairnessOut = flag.String("fairness", "", "write the arbitration fairness report to this file (sweeps: one section per point)")

		// Time-series telemetry: windowed counter/gauge tracks sampled in
		// the simulator hot loop (internal/tele).
		teleNDJSON = flag.String("tele-ndjson", "", "write windowed telemetry time series as NDJSON to this file (one line per run and series)")
		teleChrome = flag.String("tele-chrome", "", "write telemetry counter tracks as Chrome trace-event JSON (load in ui.perfetto.dev) to this file")
		teleWindow = flag.Int64("tele-window", 0, "telemetry window length in cycles (0 = 256)")
		teleMax    = flag.Int("tele-max", 0, "max stored telemetry windows per series; older windows decimate pairwise (0 = 512)")
		convStop   = flag.Bool("converge-stop", false,
			"stop each run early once the MSER steady-state detector converges on the delivery-rate series (deterministic; changes results, so stored keys differ)")

		// Host-side profiling of the simulator process itself.
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
		runmetrics = flag.String("runmetrics", "", "write a runtime/metrics JSON snapshot to this file at exit")
		heartbeat  = flag.Duration("heartbeat", 0, "print progress to stderr at this interval (0 = off)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancels ctx; the simulator polls it between cycles
	// and the sweep pool skips pending points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	stopProfiles, err := hirise.StartProfiles(hirise.ProfileConfig{
		CPUProfile: *cpuprofile, MemProfile: *memprofile,
		ExecTrace: *exectrace, RuntimeMetrics: *runmetrics,
	})
	if err != nil {
		fail("%v", err)
	}

	cfg := hirise.Config{
		Radix: *radix, Layers: *layers, Channels: *channels, Classes: *classes,
	}
	switch strings.ToLower(*scheme) {
	case "l2l", "lrg":
		cfg.Scheme = hirise.L2LLRG
	case "wlrg":
		cfg.Scheme = hirise.WLRG
	case "clrg":
		cfg.Scheme = hirise.CLRG
	default:
		fail("unknown scheme %q", *scheme)
	}
	switch strings.ToLower(*alloc) {
	case "input":
		cfg.Alloc = hirise.InputBinned
	case "output":
		cfg.Alloc = hirise.OutputBinned
	case "priority":
		cfg.Alloc = hirise.PriorityBased
	default:
		fail("unknown allocation %q", *alloc)
	}

	// Normalize the design and compute its physical cost once so that
	// makeSwitch is a pure factory, safe to call from concurrent sweep
	// points.
	tech := hirise.Tech32nm()
	var cost hirise.Cost
	switch strings.ToLower(*design) {
	case "2d":
		cfg.Layers = 1
		cost = hirise.CostOf(cfg, tech)
	case "folded":
		cost = hirise.FoldedCost(*radix, *layers, tech)
	case "hirise":
		if _, err := hirise.New(cfg); err != nil {
			fail("%v", err)
		}
		cost = hirise.CostOf(cfg, tech)
	case "voq":
		// Flat VOQ crossbar (voq.go): no hierarchical structure and no
		// physical model; cost stays unused. The scheduler flags are
		// validated below once the voqCLI is assembled.
	case "fabric":
		// Multi-switch fabric (fabric.go): topology and routing flags are
		// validated below once the fabricCLI is assembled; no physical
		// model (the fabric studies interconnects, not one die stack).
	default:
		fail("unknown design %q", *design)
	}
	isVOQ := strings.ToLower(*design) == "voq"
	isFabric := strings.ToLower(*design) == "fabric"
	if (*failLinks > 0 || *failRouters > 0) && !isFabric {
		fail("-fail-links/-fail-routers need -design fabric (use -fail-channels for the hirise fault plane)")
	}
	// Fault plane: build the plan once (it is immutable and shared by
	// concurrent sweep points). Only the Hi-Rise design has L2LCs to
	// fault. With no fault flags set, faultPlan stays nil and every code
	// path below — including stdout — is identical to a fault-free build.
	var faultPlan *hirise.FaultPlan
	if *failCh > 0 || *faultRate > 0 {
		if strings.ToLower(*design) != "hirise" {
			fail("fault injection needs -design hirise (the %s design has no L2LCs)", *design)
		}
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		plan, err := hirise.FaultSpec{
			Seed: fseed, Campaign: "hirise-sim", Cfg: cfg,
			FailChannels:  *failCh,
			TransientRate: *faultRate, RepairMean: *faultRep,
			Horizon: *warmup + *measure,
		}.Build()
		if err != nil {
			fail("%v", err)
		}
		faultPlan = plan
	}

	makeSwitch := func() hirise.SimSwitch {
		switch strings.ToLower(*design) {
		case "2d":
			return hirise.New2D(*radix)
		case "folded":
			return hirise.NewFolded(*radix, *layers)
		default:
			s, err := hirise.New(cfg)
			if err != nil {
				panic(err) // validated above
			}
			return s
		}
	}
	makeTraffic := func() hirise.TrafficPattern {
		switch strings.ToLower(*pattern) {
		case "uniform":
			return hirise.UniformTraffic{Radix: *radix}
		case "hotspot":
			return hirise.HotspotTraffic{Target: *target}
		case "adversarial":
			return hirise.AdversarialTraffic()
		case "bursty":
			return hirise.NewBurstyTraffic(*radix, *burst)
		case "permutation":
			return hirise.NewPermutationTraffic(*radix, *seed)
		case "bitrev":
			return hirise.BitReverseTraffic(*radix)
		case "interlayer":
			return hirise.InterLayerTraffic(cfg)
		case "layerlocal":
			return hirise.LayerLocalTraffic(cfg)
		case "binadv":
			return hirise.BinAdversarialTraffic(cfg)
		default:
			fail("unknown traffic %q", *pattern)
			return nil
		}
	}

	// Observability sinks: a nil observer (no obs flag set) keeps the
	// simulator on its allocation-free disabled path. The fairness audit
	// is class-aware only where classes exist: a Hi-Rise CLRG switch.
	wantTrace := *traceJSONL != "" || *traceChrome != ""
	wantTele := *teleNDJSON != "" || *teleChrome != ""
	auditClasses := 1
	if strings.ToLower(*design) == "hirise" && cfg.Scheme == hirise.CLRG {
		auditClasses = *classes
	}
	newObserver := func() *hirise.Observer {
		o := &hirise.Observer{}
		if *metricsOut != "" {
			o.Metrics = hirise.NewMetricsRegistry()
		}
		if wantTrace {
			o.Trace = hirise.NewTraceRecorder(*traceMax)
		}
		if *fairnessOut != "" {
			o.Fairness = hirise.NewFairnessAudit(*radix, auditClasses)
		}
		if wantTele {
			o.Tele = hirise.NewTelemetrySampler(*teleWindow, *teleMax)
		}
		if o.Metrics == nil && o.Trace == nil && o.Fairness == nil && o.Tele == nil {
			return nil
		}
		return o
	}
	// writeObsOutputs merges per-run sinks in run order — the order that
	// keeps every artifact byte-identical at any -parallel value — and
	// writes the requested side files. labels annotate fairness sections
	// for sweeps (nil for a single run).
	writeObsOutputs := func(observers []*hirise.Observer, labels []float64) {
		recs := make([]*hirise.TraceRecorder, len(observers))
		regs := make([]*hirise.MetricsRegistry, len(observers))
		samps := make([]*hirise.TelemetrySampler, len(observers))
		for i, o := range observers {
			if o != nil {
				recs[i], regs[i], samps[i] = o.Trace, o.Metrics, o.Tele
			}
		}
		if *traceJSONL != "" {
			writeFile(*traceJSONL, func(w io.Writer) error { return hirise.WriteTraceJSONL(w, recs) })
		}
		if *traceChrome != "" {
			// With telemetry on, the flit slices and the counter tracks
			// land in one document; without, the output is byte-identical
			// to plain WriteChromeTrace.
			writeFile(*traceChrome, func(w io.Writer) error {
				return hirise.WriteChromeTraceWithCounters(w, recs, samps)
			})
		}
		if *teleNDJSON != "" {
			writeFile(*teleNDJSON, func(w io.Writer) error { return hirise.WriteTelemetryNDJSON(w, samps) })
		}
		if *teleChrome != "" {
			writeFile(*teleChrome, func(w io.Writer) error {
				return hirise.WriteChromeTraceWithCounters(w, nil, samps)
			})
		}
		if *metricsOut != "" {
			writeFile(*metricsOut, func(w io.Writer) error {
				if labels == nil && len(regs) == 1 {
					return regs[0].WriteJSON(w)
				}
				return hirise.WriteMetricsJSON(w, regs)
			})
		}
		if *fairnessOut != "" {
			writeFile(*fairnessOut, func(w io.Writer) error {
				for i, o := range observers {
					if o == nil || o.Fairness == nil {
						continue
					}
					if labels != nil {
						if _, err := fmt.Fprintf(w, "== load %.4f ==\n", labels[i]); err != nil {
							return err
						}
					}
					if err := o.Fairness.Report().WriteText(w); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}

	if !isFabric {
		makeTraffic() // reject unknown patterns before anything runs
		// (the fabric builds traffic over its cores and validates its own
		// pattern set in fabricCLI.base)
	}

	var loads []float64
	if *sweep != "" {
		lo, hi, step, err := parseSweep(*sweep)
		if err != nil {
			fail("%v", err)
		}
		for load := lo; load <= hi+1e-12; load += step {
			loads = append(loads, load)
		}
	}

	// runSweep simulates every load and prints the sweep table to w.
	runSweep := func(ctx context.Context, w io.Writer) error {
		observers := make([]*hirise.Observer, len(loads))
		var obsFor func(i int) *hirise.Observer
		if newObserver() != nil {
			for i := range observers {
				observers[i] = newObserver()
			}
			obsFor = func(i int) *hirise.Observer { return observers[i] }
		}
		var started atomic.Int64
		countedMakeSwitch := func() hirise.SimSwitch {
			started.Add(1)
			return makeSwitch()
		}
		stopHB := hirise.Heartbeat(os.Stderr, *heartbeat, func() string {
			return fmt.Sprintf("%d/%d sweep points started", started.Load(), len(loads))
		})
		results, err := hirise.LoadSweepObserved(hirise.SimConfig{
			PacketFlits: *flits, VCs: *vcs,
			Warmup: *warmup, Measure: *measure, Seed: *seed,
			Faults: faultPlan, Check: *check,
			ConvergeStop: *convStop,
			Ctx:          ctx,
		}, countedMakeSwitch, makeTraffic, loads, *workers, obsFor)
		stopHB()
		if err != nil {
			return err
		}
		if obsFor != nil {
			writeObsOutputs(observers, loads)
		}
		fmt.Fprintf(w, "%-14s %-12s %-12s %-10s %-8s %s",
			"load(pkt/cyc)", "load(pkt/ns)", "tput(pkt/ns)", "lat(ns)", "p99(cyc)", "state")
		if faultPlan != nil {
			fmt.Fprintf(w, "      faults(drop/retx/lost)")
		}
		fmt.Fprintln(w)
		for i, res := range results {
			state := "ok"
			if res.Saturated() {
				state = "saturated"
			}
			fmt.Fprintf(w, "%-14.4f %-12.4f %-12.2f %-10.2f %-8.0f %s",
				loads[i], loads[i]*cost.FreqGHz, res.AcceptedPackets*cost.FreqGHz,
				res.AvgLatency*cost.CycleNS(), res.P99Latency, state)
			if fs := res.Fault; fs != nil {
				fmt.Fprintf(w, "%*s %d/%d/%d", 9-len(state), "",
					fs.FlitsDropped, fs.Retransmissions, fs.RetryExhausted+fs.DeadFlows)
			}
			fmt.Fprintln(w)
		}
		return nil
	}

	// runSingle simulates one load and prints the report to w.
	runSingle := func(ctx context.Context, w io.Writer) error {
		sw := makeSwitch()
		traf := makeTraffic()
		observer := newObserver()

		stopHB := hirise.Heartbeat(os.Stderr, *heartbeat, func() string { return "simulating" })
		res, err := hirise.Simulate(hirise.SimConfig{
			Switch: sw, Traffic: traf, Load: *load,
			PacketFlits: *flits, VCs: *vcs,
			Warmup: *warmup, Measure: *measure, Seed: *seed,
			Faults: faultPlan, Check: *check,
			ConvergeStop: *convStop,
			Obs:          observer, Ctx: ctx,
		})
		stopHB()
		if err != nil {
			return err
		}
		if observer != nil {
			writeObsOutputs([]*hirise.Observer{observer}, nil)
		}

		fmt.Fprintf(w, "design      %s (%s)\n", *design, cfg)
		fmt.Fprintf(w, "physical    %.3f mm2, %.2f GHz, %.0f pJ/transaction, %d TSVs\n",
			cost.AreaMM2, cost.FreqGHz, cost.EnergyPJ, cost.TSVs)
		fmt.Fprintf(w, "traffic     %s @ %.4f packets/cycle/input (%.4f packets/ns/input)\n",
			*pattern, *load, *load*cost.FreqGHz)
		fmt.Fprintf(w, "accepted    %.3f packets/cycle = %.2f packets/ns = %.2f Tbps\n",
			res.AcceptedPackets, res.AcceptedPackets*cost.FreqGHz,
			hirise.Tbps(res.AcceptedFlits, cost, tech))
		fmt.Fprintf(w, "latency     avg %.1f cycles (%.2f ns), p50 %.0f, p99 %.0f\n",
			res.AvgLatency, res.AvgLatency*cost.CycleNS(), res.P50Latency, res.P99Latency)
		fmt.Fprintf(w, "packets     injected %d, delivered %d, dropped-at-source %d%s\n",
			res.Injected, res.Delivered, res.DroppedInjections,
			map[bool]string{true: "  (saturated)", false: ""}[res.Saturated()])
		// The steady-state verdict exists only when a sampler ran; the
		// line is gated the same way so an untelemetered run's stdout is
		// byte-identical to pre-telemetry builds.
		if (observer != nil && observer.Tele != nil) || *convStop {
			fmt.Fprintf(w, "steady      converged=%v suggested-warmup=%d cycles\n",
				res.Converged, res.WarmupCycles)
		}
		if fs := res.Fault; fs != nil {
			fmt.Fprintf(w, "faults      plan %d, applied %d fail / %d repair; flits dropped %d, retransmitted %d, retry-exhausted %d, dead flows %d\n",
				faultPlan.Len(), fs.FailEvents, fs.RepairEvents,
				fs.FlitsDropped, fs.Retransmissions, fs.RetryExhausted, fs.DeadFlows)
		}
		if *perInput {
			fmt.Fprintln(w, "\ninput  latency(cycles)  packets/cycle")
			for i := range res.PerInputLatency {
				fmt.Fprintf(w, "%5d  %15.1f  %13.5f\n", i, res.PerInputLatency[i], res.PerInputPackets[i])
			}
		}
		return nil
	}

	vc := voqCLI{
		radix: *radix, schedName: strings.ToLower(*schedName), iters: *iters,
		speedup: *speedupS, voqCap: *voqCap, outQCap: *outqCap,
		load: *load, loads: loads, warmup: *warmup, measure: *measure,
		convergeStop: *convStop,
		seed:         *seed, workers: *workers, perInput: *perInput, heartbeat: *heartbeat,
		pattern: strings.ToLower(*pattern), target: *target, burst: *burst,
		makeTraffic: makeTraffic, newObserver: newObserver, writeObs: writeObsOutputs,
	}
	fc := fabricCLI{
		topoName: strings.ToLower(*topoName), nodes: *nodes,
		meshW: *meshW, meshH: *meshH, conc: *conc, lanes: *lanes,
		groups: *groups, groupSize: *groupSize, globalPorts: *globalPorts,
		routingName: strings.ToLower(*routing), vcs: *vcs, flits: *flits,
		load: *load, loads: loads, warmup: *warmup, measure: *measure,
		seed: *seed, workers: *workers, check: *check, heartbeat: *heartbeat,
		faultSeed: *faultSeed, failLinks: *failLinks, failRouters: *failRouters,
		pattern: strings.ToLower(*pattern), target: *target,
		newObserver: newObserver, writeObs: writeObsOutputs,
	}
	runOutput := runSingle
	if *sweep != "" {
		runOutput = runSweep
	}
	if isVOQ {
		if _, serr := vc.newSched(); serr != nil {
			fail("%v", serr)
		}
		runOutput = vc.runSingle
		if *sweep != "" {
			runOutput = vc.runSweep
		}
	}
	if isFabric {
		// Reject bad topology/routing/traffic flags before the store path.
		if _, ferr := fc.base(ctx); ferr != nil {
			fail("%v", ferr)
		}
		runOutput = fc.runSingle
		if *sweep != "" {
			runOutput = fc.runSweep
		}
	}

	obsActive := newObserver() != nil
	switch {
	case *storeDir != "" && obsActive:
		fmt.Fprintln(os.Stderr, "note: observability flags record switch internals, bypassing -store")
		fallthrough
	case *storeDir == "":
		err = runOutput(ctx, os.Stdout)
	default:
		var st *store.Store
		if st, err = store.Open(*storeDir, store.Options{}); err != nil {
			fail("%v", err)
		}
		var key store.Key
		var kerr error
		switch {
		case isFabric:
			key, kerr = fc.storeKey(st)
		case isVOQ:
			key, kerr = vc.storeKey(st)
		default:
			key, kerr = st.KeyOf("sim", struct {
				Design, Scheme, Alloc, Traffic   string
				Radix, Layers, Channels, Classes int
				Target, VCs, Flits               int
				Burst, Load                      float64
				Loads                            []float64
				PerInput                         bool
				Warmup, Measure                  int64
				Seed                             uint64
				FaultSeed                        uint64
				FailChannels                     int
				FaultRate                        float64
				FaultRepair                      int64
				Check                            bool
				// omitempty keeps keys hashed before the flag existed
				// valid for full-length runs.
				ConvergeStop bool `json:"converge_stop,omitempty"`
			}{
				strings.ToLower(*design), strings.ToLower(*scheme), strings.ToLower(*alloc), strings.ToLower(*pattern),
				*radix, *layers, *channels, *classes,
				*target, *vcs, *flits,
				*burst, *load,
				loads,
				*perInput,
				*warmup, *measure,
				*seed,
				*faultSeed,
				*failCh,
				*faultRate,
				*faultRep,
				*check,
				*convStop,
			})
		}
		if kerr != nil {
			fail("%v", kerr)
		}
		var data []byte
		var hit bool
		data, hit, err = st.GetOrCompute(ctx, key, func(cctx context.Context) ([]byte, error) {
			var b bytes.Buffer
			if rerr := runOutput(cctx, &b); rerr != nil {
				return nil, rerr
			}
			return b.Bytes(), nil
		})
		if err == nil {
			os.Stdout.Write(data)
			if hit {
				fmt.Fprintln(os.Stderr, "(served from store)")
			}
		}
	}

	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if errors.Is(err, context.Canceled) {
		// CPU profiles and execution traces stream during the run, so an
		// interrupted run leaves them truncated — remove them. Obs side
		// files are only written after a successful run, so none exist.
		removePartials(os.Stderr, *cpuprofile, *memprofile, *exectrace, *runmetrics)
		fail("hirise-sim: interrupted")
	}
	if err != nil {
		fail("%v", err)
	}
}

// removePartials deletes the side files an interrupted run may have
// left half-written (missing files are fine).
func removePartials(errw io.Writer, paths ...string) {
	for _, p := range paths {
		if p == "" {
			continue
		}
		if err := os.Remove(p); err == nil {
			fmt.Fprintf(errw, "removed partial %s\n", p)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(errw, "removing partial %s: %v\n", p, err)
		}
	}
}

// parseSweep parses "lo:hi:step".
func parseSweep(s string) (lo, hi, step float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("sweep %q: want lo:hi:step", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, perr := strconv.ParseFloat(p, 64)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("sweep %q: %v", s, perr)
		}
		vals[i] = v
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		return 0, 0, 0, fmt.Errorf("sweep %q: need step > 0 and hi >= lo", s)
	}
	return vals[0], vals[1], vals[2], nil
}
