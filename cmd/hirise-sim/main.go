// Command hirise-sim runs a single network simulation of one switch
// configuration under one traffic pattern and prints its measurements —
// the exploratory companion to cmd/hirise-bench's fixed experiments.
//
// Examples:
//
//	hirise-sim -design hirise -channels 4 -scheme clrg -traffic uniform -load 0.15
//	hirise-sim -design 2d -traffic hotspot -load 0.002 -perinput
//	hirise-sim -design hirise -channels 1 -scheme l2l -traffic adversarial -load 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/reprolab/hirise"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		design   = flag.String("design", "hirise", "switch design: 2d | folded | hirise")
		radix    = flag.Int("radix", 64, "switch radix")
		layers   = flag.Int("layers", 4, "stacked layers (folded, hirise)")
		channels = flag.Int("channels", 4, "L2LC multiplicity (hirise)")
		scheme   = flag.String("scheme", "clrg", "arbitration: l2l | wlrg | clrg (hirise)")
		alloc    = flag.String("alloc", "input", "channel allocation: input | output | priority")
		classes  = flag.Int("classes", 3, "CLRG class count")
		pattern  = flag.String("traffic", "uniform", "uniform | hotspot | adversarial | bursty | permutation | bitrev | interlayer | layerlocal | binadv")
		target   = flag.Int("target", 63, "hotspot target output")
		burst    = flag.Float64("burst", 8, "mean burst length for bursty traffic")
		load     = flag.Float64("load", 0.1, "offered load, packets/cycle/input")
		warmup   = flag.Int64("warmup", 10000, "warmup cycles")
		measure  = flag.Int64("measure", 50000, "measurement cycles")
		seed     = flag.Uint64("seed", 1, "random seed")
		vcs      = flag.Int("vcs", 4, "virtual channels per input")
		flits    = flag.Int("flits", 4, "flits per packet")
		perInput = flag.Bool("perinput", false, "print per-input latency and throughput")
		sweep    = flag.String("sweep", "", "sweep loads lo:hi:step (packets/cycle/input) instead of a single run")
		workers  = flag.Int("parallel", 0, "concurrent sweep points (0 = all CPUs, 1 = serial); results are identical at any value")
	)
	flag.Parse()

	cfg := hirise.Config{
		Radix: *radix, Layers: *layers, Channels: *channels, Classes: *classes,
	}
	switch strings.ToLower(*scheme) {
	case "l2l", "lrg":
		cfg.Scheme = hirise.L2LLRG
	case "wlrg":
		cfg.Scheme = hirise.WLRG
	case "clrg":
		cfg.Scheme = hirise.CLRG
	default:
		fail("unknown scheme %q", *scheme)
	}
	switch strings.ToLower(*alloc) {
	case "input":
		cfg.Alloc = hirise.InputBinned
	case "output":
		cfg.Alloc = hirise.OutputBinned
	case "priority":
		cfg.Alloc = hirise.PriorityBased
	default:
		fail("unknown allocation %q", *alloc)
	}

	// Normalize the design and compute its physical cost once so that
	// makeSwitch is a pure factory, safe to call from concurrent sweep
	// points.
	tech := hirise.Tech32nm()
	var cost hirise.Cost
	switch strings.ToLower(*design) {
	case "2d":
		cfg.Layers = 1
		cost = hirise.CostOf(cfg, tech)
	case "folded":
		cost = hirise.FoldedCost(*radix, *layers, tech)
	case "hirise":
		if _, err := hirise.New(cfg); err != nil {
			fail("%v", err)
		}
		cost = hirise.CostOf(cfg, tech)
	default:
		fail("unknown design %q", *design)
	}
	makeSwitch := func() hirise.SimSwitch {
		switch strings.ToLower(*design) {
		case "2d":
			return hirise.New2D(*radix)
		case "folded":
			return hirise.NewFolded(*radix, *layers)
		default:
			s, err := hirise.New(cfg)
			if err != nil {
				panic(err) // validated above
			}
			return s
		}
	}
	makeTraffic := func() hirise.TrafficPattern {
		switch strings.ToLower(*pattern) {
		case "uniform":
			return hirise.UniformTraffic{Radix: *radix}
		case "hotspot":
			return hirise.HotspotTraffic{Target: *target}
		case "adversarial":
			return hirise.AdversarialTraffic()
		case "bursty":
			return hirise.NewBurstyTraffic(*radix, *burst)
		case "permutation":
			return hirise.NewPermutationTraffic(*radix, *seed)
		case "bitrev":
			return hirise.BitReverseTraffic(*radix)
		case "interlayer":
			return hirise.InterLayerTraffic(cfg)
		case "layerlocal":
			return hirise.LayerLocalTraffic(cfg)
		case "binadv":
			return hirise.BinAdversarialTraffic(cfg)
		default:
			fail("unknown traffic %q", *pattern)
			return nil
		}
	}

	if *sweep != "" {
		lo, hi, step, err := parseSweep(*sweep)
		if err != nil {
			fail("%v", err)
		}
		makeTraffic() // reject unknown patterns before fanning out
		var loads []float64
		for load := lo; load <= hi+1e-12; load += step {
			loads = append(loads, load)
		}
		results, err := hirise.LoadSweep(hirise.SimConfig{
			PacketFlits: *flits, VCs: *vcs,
			Warmup: *warmup, Measure: *measure, Seed: *seed,
		}, makeSwitch, makeTraffic, loads, *workers)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%-14s %-12s %-12s %-10s %-8s %s\n",
			"load(pkt/cyc)", "load(pkt/ns)", "tput(pkt/ns)", "lat(ns)", "p99(cyc)", "state")
		for i, res := range results {
			state := "ok"
			if res.Saturated() {
				state = "saturated"
			}
			fmt.Printf("%-14.4f %-12.4f %-12.2f %-10.2f %-8.0f %s\n",
				loads[i], loads[i]*cost.FreqGHz, res.AcceptedPackets*cost.FreqGHz,
				res.AvgLatency*cost.CycleNS(), res.P99Latency, state)
		}
		return
	}

	sw := makeSwitch()
	traf := makeTraffic()

	res, err := hirise.Simulate(hirise.SimConfig{
		Switch: sw, Traffic: traf, Load: *load,
		PacketFlits: *flits, VCs: *vcs,
		Warmup: *warmup, Measure: *measure, Seed: *seed,
	})
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("design      %s (%s)\n", *design, cfg)
	fmt.Printf("physical    %.3f mm2, %.2f GHz, %.0f pJ/transaction, %d TSVs\n",
		cost.AreaMM2, cost.FreqGHz, cost.EnergyPJ, cost.TSVs)
	fmt.Printf("traffic     %s @ %.4f packets/cycle/input (%.4f packets/ns/input)\n",
		*pattern, *load, *load*cost.FreqGHz)
	fmt.Printf("accepted    %.3f packets/cycle = %.2f packets/ns = %.2f Tbps\n",
		res.AcceptedPackets, res.AcceptedPackets*cost.FreqGHz,
		hirise.Tbps(res.AcceptedFlits, cost, tech))
	fmt.Printf("latency     avg %.1f cycles (%.2f ns), p50 %.0f, p99 %.0f\n",
		res.AvgLatency, res.AvgLatency*cost.CycleNS(), res.P50Latency, res.P99Latency)
	fmt.Printf("packets     injected %d, delivered %d, dropped-at-source %d%s\n",
		res.Injected, res.Delivered, res.DroppedInjections,
		map[bool]string{true: "  (saturated)", false: ""}[res.Saturated()])
	if *perInput {
		fmt.Println("\ninput  latency(cycles)  packets/cycle")
		for i := range res.PerInputLatency {
			fmt.Printf("%5d  %15.1f  %13.5f\n", i, res.PerInputLatency[i], res.PerInputPackets[i])
		}
	}
}

// parseSweep parses "lo:hi:step".
func parseSweep(s string) (lo, hi, step float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("sweep %q: want lo:hi:step", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, perr := strconv.ParseFloat(p, 64)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("sweep %q: %v", s, perr)
		}
		vals[i] = v
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		return 0, 0, 0, fmt.Errorf("sweep %q: need step > 0 and hi >= lo", s)
	}
	return vals[0], vals[1], vals[2], nil
}
