package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"github.com/reprolab/hirise"
	"github.com/reprolab/hirise/internal/store"
)

// voqCLI is the -design voq mode: a flat virtual-output-queued crossbar
// driven by an input-queued scheduler from the zoo (internal/sched)
// instead of a hierarchical switch. It shares the traffic, windowing,
// sweep, observability, and store plumbing with the other designs but
// has its own report (no physical model — the VOQ mode studies matching
// quality, not 3D integration) and its own store key kind, so cached
// hierarchical results can never collide with VOQ ones.
type voqCLI struct {
	radix     int
	schedName string
	iters     int
	speedup   int
	voqCap    int
	outQCap   int

	load            float64
	loads           []float64
	warmup, measure int64
	convergeStop    bool
	seed            uint64
	workers         int
	perInput        bool
	heartbeat       time.Duration

	pattern     string
	target      int
	burst       float64
	makeTraffic func() hirise.TrafficPattern
	newObserver func() *hirise.Observer
	writeObs    func(observers []*hirise.Observer, labels []float64)
}

// newSched returns a factory of fresh scheduler instances (schedulers
// carry round-robin pointer state, so every simulation needs its own).
func (v voqCLI) newSched() (func() hirise.Scheduler, error) {
	n, iters := v.radix, v.iters
	switch v.schedName {
	case "islip":
		if iters < 1 {
			return nil, fmt.Errorf("-iters %d: need at least 1 iSLIP iteration", iters)
		}
		return func() hirise.Scheduler { return hirise.NewISLIPScheduler(n, iters) }, nil
	case "wavefront":
		return func() hirise.Scheduler { return hirise.NewWavefrontScheduler(n) }, nil
	case "mwm":
		return func() hirise.Scheduler { return hirise.NewMWMScheduler(n) }, nil
	}
	return nil, fmt.Errorf("unknown VOQ scheduler %q: want islip | wavefront | mwm", v.schedName)
}

func (v voqCLI) base(ctx context.Context) hirise.VOQSimConfig {
	return hirise.VOQSimConfig{
		Radix: v.radix, Speedup: v.speedup,
		VOQCap: v.voqCap, OutQCap: v.outQCap,
		Warmup: v.warmup, Measure: v.measure, Seed: v.seed,
		ConvergeStop: v.convergeStop,
		Ctx:          ctx,
	}
}

// schedLabel renders the scheduler for the report header.
func (v voqCLI) schedLabel() string {
	if v.schedName == "islip" {
		return fmt.Sprintf("iSLIP x%d", v.iters)
	}
	return v.schedName
}

// runSingle simulates one load and prints the VOQ report to w.
func (v voqCLI) runSingle(ctx context.Context, w io.Writer) error {
	newSched, err := v.newSched()
	if err != nil {
		return err
	}
	cfg := v.base(ctx)
	cfg.Sched = newSched()
	cfg.Traffic = v.makeTraffic()
	cfg.Load = v.load
	observer := v.newObserver()
	cfg.Obs = observer

	stopHB := hirise.Heartbeat(os.Stderr, v.heartbeat, func() string { return "simulating" })
	res, err := hirise.SimulateVOQ(cfg)
	stopHB()
	if err != nil {
		return err
	}
	if observer != nil {
		v.writeObs([]*hirise.Observer{observer}, nil)
	}

	fmt.Fprintf(w, "design      voq %dx%d, %s, speedup %d, voqcap %d, outqcap %d\n",
		v.radix, v.radix, v.schedLabel(), v.speedup, v.voqCap, v.outQCap)
	fmt.Fprintf(w, "traffic     %s @ %.4f cells/cycle/input\n", v.pattern, v.load)
	fmt.Fprintf(w, "accepted    %.3f cells/cycle/input (%.3f switch-wide)\n",
		res.AcceptedPackets/float64(v.radix), res.AcceptedPackets)
	fmt.Fprintf(w, "latency     avg %.1f cycles, p50 %.0f, p99 %.0f\n",
		res.AvgLatency, res.P50Latency, res.P99Latency)
	fmt.Fprintf(w, "cells       injected %d, delivered %d, dropped-at-voq %d%s\n",
		res.Injected, res.Delivered, res.DroppedInjections,
		map[bool]string{true: "  (saturated)", false: ""}[res.Saturated()])
	// Gated like the hierarchical report: stdout is unchanged unless a
	// sampler actually ran.
	if (observer != nil && observer.Tele != nil) || v.convergeStop {
		fmt.Fprintf(w, "steady      converged=%v suggested-warmup=%d cycles\n",
			res.Converged, res.WarmupCycles)
	}
	if v.perInput {
		fmt.Fprintln(w, "\ninput  latency(cycles)  cells/cycle")
		for i := range res.PerInputLatency {
			fmt.Fprintf(w, "%5d  %15.1f  %11.5f\n", i, res.PerInputLatency[i], res.PerInputPackets[i])
		}
	}
	return nil
}

// runSweep simulates every load and prints the VOQ sweep table to w.
func (v voqCLI) runSweep(ctx context.Context, w io.Writer) error {
	newSched, err := v.newSched()
	if err != nil {
		return err
	}
	observers := make([]*hirise.Observer, len(v.loads))
	var obsFor func(i int) *hirise.Observer
	if v.newObserver() != nil {
		for i := range observers {
			observers[i] = v.newObserver()
		}
		obsFor = func(i int) *hirise.Observer { return observers[i] }
	}
	var started atomic.Int64
	countedSched := func() hirise.Scheduler {
		started.Add(1)
		return newSched()
	}
	stopHB := hirise.Heartbeat(os.Stderr, v.heartbeat, func() string {
		return fmt.Sprintf("%d/%d sweep points started", started.Load(), len(v.loads))
	})
	results, err := hirise.VOQLoadSweepObserved(v.base(ctx), countedSched, v.makeTraffic, v.loads, v.workers, obsFor)
	stopHB()
	if err != nil {
		return err
	}
	if obsFor != nil {
		v.writeObs(observers, v.loads)
	}
	fmt.Fprintf(w, "%-14s %-14s %-10s %-8s %s\n",
		"load(cel/cyc)", "tput(cel/cyc)", "lat(cyc)", "p99(cyc)", "state")
	for i, res := range results {
		state := "ok"
		if res.Saturated() {
			state = "saturated"
		}
		fmt.Fprintf(w, "%-14.4f %-14.4f %-10.2f %-8.0f %s\n",
			v.loads[i], res.AcceptedPackets/float64(v.radix), res.AvgLatency, res.P99Latency, state)
	}
	return nil
}

// storeKey derives the content-addressed result key of this VOQ run.
// The kind "voq-sim" namespaces it away from the hierarchical designs'
// "sim" keys, whose payload struct stays untouched by the VOQ mode.
func (v voqCLI) storeKey(st *store.Store) (store.Key, error) {
	return st.KeyOf("voq-sim", struct {
		Sched, Traffic                         string
		Radix, Iters, Speedup, VOQCap, OutQCap int
		Target                                 int
		Burst, Load                            float64
		Loads                                  []float64
		PerInput                               bool
		Warmup, Measure                        int64
		Seed                                   uint64
		// omitempty keeps keys hashed before the flag existed valid for
		// full-length runs.
		ConvergeStop bool `json:"converge_stop,omitempty"`
	}{
		v.schedName, v.pattern,
		v.radix, v.iters, v.speedup, v.voqCap, v.outQCap,
		v.target,
		v.burst, v.load,
		v.loads,
		v.perInput,
		v.warmup, v.measure,
		v.seed,
		v.convergeStop,
	})
}
