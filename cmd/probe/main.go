// Command probe is a scratch calibration tool. It solves per-benchmark
// MPKI values that exactly reproduce the per-mix average MPKIs of paper
// Table VI while staying close to publicly known SPEC2006 miss-rate
// folklore (minimum relative adjustment, Lagrange multipliers).
package main

import "fmt"

type part struct {
	bench string
	count int
}

func main() {
	prior := map[string]float64{
		"milc": 45, "applu": 20, "astar": 15, "sjeng": 1.5, "tonto": 3, "hmmer": 3,
		"sjas": 40, "gcc": 9, "sjbb": 45, "gromacs": 5, "xalan": 30,
		"libquantum": 60, "barnes": 10, "tpcw": 55, "povray": 2,
		"swim": 55, "leslie": 35, "omnet": 40, "art": 50,
		"mcf": 110, "ocean": 40, "lbm": 60, "deal": 12, "sap": 45,
		"namd": 3, "Gems": 75, "soplex": 50,
	}
	mixes := [][]part{
		{{"milc", 11}, {"applu", 11}, {"astar", 10}, {"sjeng", 11}, {"tonto", 11}, {"hmmer", 10}},
		{{"sjas", 11}, {"gcc", 11}, {"sjbb", 11}, {"gromacs", 11}, {"sjeng", 10}, {"xalan", 10}},
		{{"milc", 11}, {"libquantum", 10}, {"astar", 11}, {"barnes", 11}, {"tpcw", 11}, {"povray", 10}},
		{{"astar", 11}, {"swim", 11}, {"leslie", 10}, {"omnet", 10}, {"sjas", 11}, {"art", 11}},
		{{"mcf", 11}, {"ocean", 10}, {"gromacs", 10}, {"lbm", 11}, {"deal", 11}, {"sap", 11}},
		{{"mcf", 10}, {"namd", 11}, {"hmmer", 11}, {"tpcw", 11}, {"omnet", 10}, {"swim", 11}},
		{{"Gems", 10}, {"sjbb", 11}, {"sjas", 11}, {"mcf", 10}, {"xalan", 11}, {"sap", 10}},
		{{"milc", 11}, {"tpcw", 10}, {"Gems", 11}, {"mcf", 11}, {"sjas", 11}, {"soplex", 10}},
	}
	targets := []float64{15.0, 21.3, 33.3, 38.4, 52.2, 58.4, 66.9, 76.0}

	var names []string
	for _, m := range mixes {
		for _, p := range m {
			found := false
			for _, n := range names {
				if n == p.bench {
					found = true
				}
			}
			if !found {
				names = append(names, p.bench)
			}
		}
	}
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	nb, nm := len(names), len(mixes)

	// A x = b with A[m][b] = count/64.
	A := make([][]float64, nm)
	for m := range A {
		A[m] = make([]float64, nb)
		for _, p := range mixes[m] {
			A[m][idx[p.bench]] = float64(p.count) / 64
		}
	}
	p := make([]float64, nb)
	for i, n := range names {
		p[i] = prior[n]
	}
	// residual r = b - A p
	r := make([]float64, nm)
	for m := range r {
		r[m] = targets[m]
		for j := range p {
			r[m] -= A[m][j] * p[j]
		}
	}
	// W^-1 = diag(p_j^2); M = A W^-1 A^T
	M := make([][]float64, nm)
	for i := range M {
		M[i] = make([]float64, nm)
		for j := range M[i] {
			for k := 0; k < nb; k++ {
				M[i][j] += A[i][k] * p[k] * p[k] * A[j][k]
			}
		}
	}
	lam := solve(M, r)
	x := make([]float64, nb)
	for j := range x {
		x[j] = p[j]
		for m := 0; m < nm; m++ {
			x[j] += p[j] * p[j] * A[m][j] * lam[m]
		}
	}
	for i, n := range names {
		fmt.Printf("%-12s prior %6.1f -> %7.2f\n", n, p[i], x[i])
	}
	for m := range mixes {
		got := 0.0
		for j := range x {
			got += A[m][j] * x[j]
		}
		fmt.Printf("mix%d: target %.1f got %.2f\n", m+1, targets[m], got)
	}
}

// solve performs Gaussian elimination with partial pivoting on M y = r.
func solve(M [][]float64, r []float64) []float64 {
	n := len(M)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append(append([]float64{}, M[i]...), r[i])
	}
	for c := 0; c < n; c++ {
		piv := c
		for i := c + 1; i < n; i++ {
			if abs(a[i][c]) > abs(a[piv][c]) {
				piv = i
			}
		}
		a[c], a[piv] = a[piv], a[c]
		for i := c + 1; i < n; i++ {
			f := a[i][c] / a[c][c]
			for j := c; j <= n; j++ {
				a[i][j] -= f * a[c][j]
			}
		}
	}
	y := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		y[i] = a[i][n]
		for j := i + 1; j < n; j++ {
			y[i] -= a[i][j] * y[j]
		}
		y[i] /= a[i][i]
	}
	return y
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
