// Command probe prints the Table VI MPKI calibration: per-benchmark
// values solved so the per-mix average MPKIs match the paper exactly
// while staying close to publicly known SPEC2006 miss-rate folklore
// (minimum relative adjustment, Lagrange multipliers). The solver lives
// in internal/trace; the catalog pins its output.
package main

import (
	"fmt"

	"github.com/reprolab/hirise/internal/trace"
)

func main() {
	cal := trace.CalibrateTableVI()
	for _, n := range cal.Names {
		fmt.Printf("%-12s prior %6.1f -> %7.2f\n", n, cal.Priors[n], cal.Solved[n])
	}
	for m := range cal.Targets {
		fmt.Printf("mix%d: target %.1f got %.2f\n", m+1, cal.Targets[m], cal.MixAvg[m])
	}
}
