// Command tracelint validates observability trace files produced by
// hirise-sim: files ending in .jsonl are checked as JSON Lines
// lifecycle traces, files ending in .ndjson as telemetry time-series
// exports (-tele-ndjson), and everything else as Chrome trace-event
// JSON. It prints one "ok" line per valid file and exits nonzero on the
// first invalid one, so CI can gate on trace integrity.
//
//	tracelint trace.json trace.jsonl tele.ndjson
package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/reprolab/hirise"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint FILE...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		n, err := validate(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("ok %s (%d events)\n", path, n)
	}
}

func validate(path string) (int, error) {
	if strings.HasSuffix(path, ".jsonl") {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		return hirise.ValidateTraceJSONL(f)
	}
	if strings.HasSuffix(path, ".ndjson") {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		return hirise.ValidateTelemetryNDJSON(f)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return hirise.ValidateChromeTrace(data)
}
