package hirise_test

import (
	"fmt"

	"github.com/reprolab/hirise"
)

// Build the paper's headline switch and read its physical cost.
func ExampleCostOf() {
	cfg := hirise.DefaultConfig()
	cost := hirise.CostOf(cfg, hirise.Tech32nm())
	fmt.Printf("%.3f mm2 %.2f GHz %.0f pJ %d TSVs\n",
		cost.AreaMM2, cost.FreqGHz, cost.EnergyPJ, cost.TSVs)
	// Output: 0.452 mm2 2.20 GHz 44 pJ 6144 TSVs
}

// Drive a switch cycle by cycle: the paper's Fig 5 walkthrough. Inputs
// {3,7,11,15} on layer 1 and {20} on layer 2 contend for output 63;
// CLRG rotates through all five like a flat 2D LRG switch.
func ExampleSwitch_Arbitrate() {
	cfg := hirise.DefaultConfig()
	cfg.Channels = 1
	sw, _ := hirise.New(cfg)

	req := make([]int, cfg.Radix)
	for i := range req {
		req[i] = -1
	}
	for _, in := range []int{3, 7, 11, 15, 20} {
		req[in] = 63
	}
	var winners []int
	for len(winners) < 5 {
		for _, g := range sw.Arbitrate(req) {
			winners = append(winners, g.In)
			sw.Release(g.In)
		}
	}
	fmt.Println(winners)
	// Output: [3 20 7 11 15]
}

// Simulate uniform random traffic at a fixed load and read throughput.
func ExampleSimulate() {
	sw, _ := hirise.New(hirise.DefaultConfig())
	res, _ := hirise.Simulate(hirise.SimConfig{
		Switch:  sw,
		Traffic: hirise.UniformTraffic{Radix: 64},
		Load:    0.05,
		Warmup:  2000, Measure: 10000, Seed: 1,
	})
	fmt.Printf("accepted ~%.1f packets/cycle, saturated=%v\n",
		res.AcceptedPackets, res.Saturated())
	// Output: accepted ~3.2 packets/cycle, saturated=false
}

// Regenerate a paper artifact programmatically.
func ExampleRunExperiment() {
	tb, _ := hirise.RunExperiment("fig9b", hirise.QuickExperimentOpts())
	fmt.Println(tb.ID, len(tb.Rows), "rows")
	// Output: fig9b 6 rows
}
