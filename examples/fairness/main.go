// Fairness walkthrough: replays the paper's §III-B adversarial example
// and the §VI-B hotspot experiment across arbitration schemes, showing
// why the baseline layer-to-layer LRG is unfair and how CLRG fixes it.
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/hirise"
)

func build(scheme hirise.Scheme, channels int) *hirise.Switch {
	cfg := hirise.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Channels = channels
	sw, err := hirise.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sw
}

func main() {
	// Part 1: the paper's Fig 4/5 walkthrough. Inputs {3,7,11,15} on
	// layer 1 and {20} on layer 2 all want output 63 on layer 4; we run
	// single-cycle transactions and print the grant sequence.
	fmt.Println("Adversarial grant sequences (paper Figs 4 and 5):")
	req := make([]int, 64)
	for i := range req {
		req[i] = -1
	}
	for _, in := range []int{3, 7, 11, 15, 20} {
		req[in] = 63
	}
	for _, scheme := range []hirise.Scheme{hirise.L2LLRG, hirise.CLRG} {
		sw := build(scheme, 1)
		var seq []int
		for len(seq) < 10 {
			for _, g := range sw.Arbitrate(req) {
				seq = append(seq, g.In)
				sw.Release(g.In)
			}
		}
		fmt.Printf("  %-10v %v\n", scheme, seq)
	}
	fmt.Println("  (L-2-L LRG lets the lone layer-2 input win every other grant;")
	fmt.Println("   CLRG rotates through all five like a flat 2D LRG switch)")

	// Part 2: hotspot traffic — every input requests output 63 — at 80%
	// of the hot output's saturation. Compare per-input service.
	fmt.Println("\nHotspot per-input throughput (all 64 inputs -> output 63, saturated):")
	for _, scheme := range []hirise.Scheme{hirise.L2LLRG, hirise.WLRG, hirise.CLRG} {
		res, err := hirise.Simulate(hirise.SimConfig{
			Switch:  build(scheme, 4),
			Traffic: hirise.HotspotTraffic{Target: 63},
			Load:    1.0,
			Warmup:  20000, Measure: 100000,
		})
		if err != nil {
			log.Fatal(err)
		}
		var remote, local float64
		for i := 0; i < 48; i++ {
			remote += res.PerInputPackets[i] / 48
		}
		for i := 48; i < 64; i++ {
			local += res.PerInputPackets[i] / 16
		}
		fmt.Printf("  %-10v remote-layer input %.5f pkt/cyc, hot-layer input %.5f (ratio %.2f)\n",
			scheme, remote, local, remote/local)
	}
	fmt.Println("  (the hot output's own layer shares one intermediate port under")
	fmt.Println("   L-2-L LRG; CLRG's per-input class counters equalize everyone)")
}
