// Kilo-core composition (paper §VI-E, Fig 13): build a 2D mesh whose
// nodes are 3D Hi-Rise switches, compare it against a conventional mesh
// of small 2D routers at the same core count, and sweep the load.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/reprolab/hirise"
)

func main() {
	meshW := flag.Int("mesh", 4, "Hi-Rise mesh width (mesh x mesh nodes, 48 cores each)")
	flag.Parse()

	tech := hirise.Tech32nm()
	hrCfg := hirise.DefaultConfig()
	hrCost := hirise.CostOf(hrCfg, tech)

	cores := *meshW * *meshW * 48
	fmt.Printf("Fig 13 composition: %dx%d mesh of Hi-Rise 64 switches = %d cores\n\n",
		*meshW, *meshW, cores)

	hiriseMesh := hirise.MeshConfig{
		MeshW: *meshW, MeshH: *meshW,
		Concentration: 48, LinkPorts: 4,
		NewSwitch: func() hirise.SimSwitch {
			sw, err := hirise.New(hrCfg)
			if err != nil {
				log.Fatal(err)
			}
			return sw
		},
		Warmup: 5000, Measure: 20000, Seed: 1,
	}

	// A flat mesh of radix-7 routers with the same core count needs
	// cores/3 nodes.
	flatW := 1
	for flatW*flatW*3 < cores {
		flatW++
	}
	flatCost := hirise.CostOf(hirise.Config{Radix: 7, Layers: 1}, tech)
	flatMesh := hirise.MeshConfig{
		MeshW: flatW, MeshH: flatW,
		Concentration: 3, LinkPorts: 1,
		NewSwitch: func() hirise.SimSwitch { return hirise.New2D(7) },
		Warmup:    5000, Measure: 20000, Seed: 1,
	}

	fmt.Printf("%-24s %8s %8s %10s %12s\n", "load(pkt/core/cycle)", "hops", "lat(ns)", "pkt/cycle", "E/pkt(pJ)")
	for _, load := range []float64{0.002, 0.005, 0.01} {
		for _, tc := range []struct {
			name string
			cfg  hirise.MeshConfig
			ghz  float64
			epj  float64
		}{
			{"Hi-Rise mesh", hiriseMesh, hrCost.FreqGHz, hrCost.EnergyPJ},
			{fmt.Sprintf("flat %dx%d mesh", flatW, flatW), flatMesh, flatCost.FreqGHz, flatCost.EnergyPJ},
		} {
			m, err := hirise.NewMesh(tc.cfg)
			if err != nil {
				log.Fatal(err)
			}
			r := m.Run(load)
			fmt.Printf("%.3f %-18s %8.2f %8.2f %10.2f %12.0f\n",
				load, tc.name, r.AvgHops, r.AvgLatency/tc.ghz, r.AcceptedPackets, r.AvgHops*4*tc.epj)
		}
	}
	fmt.Println("\nHigh-radix concentrated nodes cut hops ~3x and per-packet switch")
	fmt.Println("energy ~20%; the flat mesh buys bisection with 16x more routers.")
}
