// Many-core system study: runs one of the paper's Table VI workload
// mixes on a 64-core system, once with the 2D Swizzle-Switch and once
// with Hi-Rise, and reports per-mix speedup — the §VI-D experiment as a
// library user would script it.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/reprolab/hirise"
)

func main() {
	mixName := flag.String("mix", "Mix8", "workload mix (Mix1..Mix8)")
	addrMode := flag.Bool("addr", false, "address-driven mode: real L1/L2 tags instead of MPKI coin flips")
	flag.Parse()

	var mix hirise.Mix
	found := false
	for _, m := range hirise.Mixes() {
		if m.Name == *mixName {
			mix, found = m, true
		}
	}
	if !found {
		log.Fatalf("unknown mix %q", *mixName)
	}

	benches, err := mix.Assign(64, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: avg MPKI %.1f, applications:", mix.Name, mix.AvgMPKI())
	for _, p := range mix.Parts {
		fmt.Printf(" %s(%d)", p.Bench, p.Count)
	}
	fmt.Println()

	tech := hirise.Tech32nm()
	run := func(sw hirise.SimSwitch, ghz float64) hirise.SystemResult {
		sys, err := hirise.NewSystem(hirise.SystemConfig{
			SwitchGHz:   ghz,
			AddressMode: *addrMode,
			Warmup:      20000, Measure: 100000, Seed: 7,
		}, sw, benches)
		if err != nil {
			log.Fatal(err)
		}
		return sys.Run()
	}

	d2Cost := hirise.CostOf(hirise.Config{Radix: 64, Layers: 1}, tech)
	r2 := run(hirise.New2D(64), d2Cost.FreqGHz)

	cfg := hirise.DefaultConfig()
	hrSwitch, err := hirise.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hrCost := hirise.CostOf(cfg, tech)
	rh := run(hrSwitch, hrCost.FreqGHz)

	fmt.Printf("\n                       2D @ %.2fGHz    Hi-Rise @ %.2fGHz\n", d2Cost.FreqGHz, hrCost.FreqGHz)
	fmt.Printf("system IPC             %10.1f    %10.1f\n", r2.SystemIPC, rh.SystemIPC)
	fmt.Printf("avg net latency (cyc)  %10.1f    %10.1f\n", r2.AvgNetLatency, rh.AvgNetLatency)
	fmt.Printf("network packets        %10d    %10d\n", r2.NetPackets, rh.NetPackets)
	fmt.Printf("memory accesses        %10d    %10d\n", r2.MemAccesses, rh.MemAccesses)
	if *addrMode {
		fmt.Printf("measured L1 MPKI       %10.1f    %10.1f  (catalog %.1f)\n",
			r2.AvgL1MPKI, rh.AvgL1MPKI, mix.AvgMPKI())
	}
	fmt.Printf("\nspeedup: %.3f (paper Table VI reports %.2f for %s)\n",
		rh.SystemIPC/r2.SystemIPC, mix.PaperSpeedup, mix.Name)
}
