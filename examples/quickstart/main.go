// Quickstart: build the paper's headline Hi-Rise switch (64-radix,
// 4-layer, 4-channel, CLRG), look up its physical cost, and simulate
// uniform random traffic against the 2D Swizzle-Switch baseline.
package main

import (
	"fmt"
	"log"

	"github.com/reprolab/hirise"
)

func main() {
	tech := hirise.Tech32nm()

	// The paper's headline configuration.
	cfg := hirise.DefaultConfig()
	sw, err := hirise.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cost := hirise.CostOf(cfg, tech)
	fmt.Printf("Hi-Rise %s\n", cfg)
	fmt.Printf("  %.3f mm2, %.2f GHz, %.0f pJ/transaction, %d TSVs\n\n",
		cost.AreaMM2, cost.FreqGHz, cost.EnergyPJ, cost.TSVs)

	// Simulate uniform random traffic at a moderate load.
	res, err := hirise.Simulate(hirise.SimConfig{
		Switch:  sw,
		Traffic: hirise.UniformTraffic{Radix: cfg.Radix},
		Load:    0.10, // packets per cycle per input
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform random @ 0.10 pkt/cycle/input:\n")
	fmt.Printf("  accepted %.1f packets/ns, avg latency %.2f ns\n\n",
		res.AcceptedPackets*cost.FreqGHz, res.AvgLatency*cost.CycleNS())

	// Compare saturation throughput with the 2D baseline.
	hrFlits, err := hirise.SaturationThroughput(hirise.SimConfig{
		Switch: mustNew(cfg), Traffic: hirise.UniformTraffic{Radix: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	flatCfg := hirise.Config{Radix: 64, Layers: 1}
	d2Cost := hirise.CostOf(flatCfg, tech)
	d2Flits, err := hirise.SaturationThroughput(hirise.SimConfig{
		Switch: hirise.New2D(64), Traffic: hirise.UniformTraffic{Radix: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	hrT := hirise.Tbps(hrFlits, cost, tech)
	d2T := hirise.Tbps(d2Flits, d2Cost, tech)
	fmt.Printf("saturation throughput:\n")
	fmt.Printf("  Hi-Rise %.2f Tbps vs 2D %.2f Tbps  (+%.0f%%)\n", hrT, d2T, (hrT/d2T-1)*100)
	fmt.Printf("  area    %.3f mm2 vs %.3f mm2       (%.0f%% smaller)\n",
		cost.AreaMM2, d2Cost.AreaMM2, (1-cost.AreaMM2/d2Cost.AreaMM2)*100)
	fmt.Printf("  energy  %.0f pJ vs %.0f pJ             (%.0f%% lower)\n",
		cost.EnergyPJ, d2Cost.EnergyPJ, (1-cost.EnergyPJ/d2Cost.EnergyPJ)*100)
}

func mustNew(cfg hirise.Config) *hirise.Switch {
	sw, err := hirise.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sw
}
