// TSV planner: a design-space exploration an SoC architect would run
// before committing to a 3D stack — sweep layer count, channel
// multiplicity, and TSV technology for a target radix, and pick the
// design that meets a frequency floor at minimum area, respecting a TSV
// budget.
package main

import (
	"flag"
	"fmt"
	"sort"

	"github.com/reprolab/hirise"
)

type candidate struct {
	cfg  hirise.Config
	cost hirise.Cost
}

func main() {
	var (
		radix   = flag.Int("radix", 64, "target switch radix")
		minGHz  = flag.Float64("min-ghz", 2.0, "frequency floor")
		maxTSV  = flag.Int("max-tsv", 8192, "TSV budget")
		pitchUM = flag.Float64("pitch", 0.8, "TSV pitch in um")
	)
	flag.Parse()

	tech := hirise.Tech32nm()
	tech.TSVPitchUM = *pitchUM

	var feasible, rejected []candidate
	for layers := 2; layers <= 7; layers++ {
		if *radix%layers != 0 {
			continue
		}
		for _, channels := range []int{1, 2, 4} {
			cfg := hirise.Config{
				Radix: *radix, Layers: layers, Channels: channels,
				Alloc: hirise.InputBinned, Scheme: hirise.CLRG, Classes: 3,
			}
			if cfg.PortsPerLayer()%channels != 0 {
				continue
			}
			c := hirise.CostOf(cfg, tech)
			cand := candidate{cfg, c}
			if c.FreqGHz >= *minGHz && c.TSVs <= *maxTSV {
				feasible = append(feasible, cand)
			} else {
				rejected = append(rejected, cand)
			}
		}
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].cost.AreaMM2 < feasible[j].cost.AreaMM2 })

	d2 := hirise.CostOf(hirise.Config{Radix: *radix, Layers: 1}, tech)
	fmt.Printf("Design space for radix %d at %.1f um TSV pitch (floor %.1f GHz, budget %d TSVs)\n",
		*radix, *pitchUM, *minGHz, *maxTSV)
	fmt.Printf("2D reference: %.3f mm2, %.2f GHz, %.0f pJ\n\n", d2.AreaMM2, d2.FreqGHz, d2.EnergyPJ)

	fmt.Println("feasible (area-sorted):")
	fmt.Println("  layers  channels  area(mm2)  freq(GHz)  energy(pJ)  TSVs")
	for _, c := range feasible {
		fmt.Printf("  %6d  %8d  %9.3f  %9.2f  %10.0f  %4d\n",
			c.cfg.Layers, c.cfg.Channels, c.cost.AreaMM2, c.cost.FreqGHz, c.cost.EnergyPJ, c.cost.TSVs)
	}
	if len(feasible) == 0 {
		fmt.Println("  (none — relax the frequency floor or TSV budget)")
	} else {
		best := feasible[0]
		fmt.Printf("\nrecommendation: %d layers x %d channels — %.3f mm2 (%.0f%% of 2D), %.2f GHz\n",
			best.cfg.Layers, best.cfg.Channels,
			best.cost.AreaMM2, 100*best.cost.AreaMM2/d2.AreaMM2, best.cost.FreqGHz)

		// Show how the recommendation degrades with TSV technology.
		fmt.Println("\nTSV pitch sensitivity of the recommendation (paper Fig 12):")
		for _, p := range []float64{0.8, 1.0, 2.0, 3.0, 4.0, 5.0} {
			t := hirise.Tech32nm()
			t.TSVPitchUM = p
			c := hirise.CostOf(best.cfg, t)
			fmt.Printf("  %.1f um: %.3f mm2, %.2f GHz\n", p, c.AreaMM2, c.FreqGHz)
		}
	}
	if len(rejected) > 0 {
		fmt.Printf("\nrejected %d configurations (frequency floor or TSV budget)\n", len(rejected))
	}
}
