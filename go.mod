module github.com/reprolab/hirise

go 1.22
