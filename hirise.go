// Package hirise is a from-scratch reproduction of "Hi-Rise: A High-Radix
// Switch for 3D Integration with Single-cycle Arbitration" (Jeloka, Das,
// Dreslinski, Mudge, Blaauw — MICRO 2014).
//
// It provides cycle-accurate behavioural models of the Hi-Rise 3D
// hierarchical switch and its baselines (the flat 2D Swizzle-Switch and
// the 3D folded switch), the paper's arbitration schemes (LRG, baseline
// layer-to-layer LRG, Weighted LRG, and the contributed Class-based LRG),
// a calibrated 32 nm physical cost model (area, frequency, energy, TSVs),
// a flit-level network simulator with the paper's traffic patterns, and a
// trace-driven 64-core system model — everything needed to regenerate the
// paper's tables and figures (see cmd/hirise-bench).
//
// This root package is the public facade: it re-exports the stable
// surface of the internal packages so applications import a single path.
//
//	cfg := hirise.DefaultConfig()        // 64-radix, 4-layer, 4-channel, CLRG
//	sw, err := hirise.New(cfg)           // behavioural switch model
//	cost := hirise.CostOf(cfg, hirise.Tech32nm()) // area/frequency/energy
//	res, err := hirise.Simulate(hirise.SimConfig{
//	    Switch:  sw,
//	    Traffic: hirise.UniformTraffic{Radix: cfg.Radix},
//	    Load:    0.1,
//	})
package hirise

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/reprolab/hirise/internal/cache"
	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/experiments"
	"github.com/reprolab/hirise/internal/fabric"
	"github.com/reprolab/hirise/internal/fault"
	"github.com/reprolab/hirise/internal/manycore"
	"github.com/reprolab/hirise/internal/noc"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/tele"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/trace"
	"github.com/reprolab/hirise/internal/traffic"
	"github.com/reprolab/hirise/internal/version"
)

// ModelVersion fingerprints the behavioural and cost models. It is
// folded into every content-addressed result-store key (internal/store,
// cmd/hirise-served, the CLIs' -store flag), so bumping it invalidates
// all cached results at once. Bump it on any change that alters
// simulation output; refactors that keep outputs byte-identical must
// not bump it.
const ModelVersion = version.Model

// Configuration types.
type (
	// Config describes a Hi-Rise switch: radix, layers, channel
	// multiplicity, allocation policy, and arbitration scheme.
	Config = topo.Config
	// AllocPolicy selects the L2LC channel allocation policy.
	AllocPolicy = topo.AllocPolicy
	// Scheme selects the arbitration scheme.
	Scheme = topo.Scheme
	// Grant is one connection formed by an arbitration cycle.
	Grant = topo.Grant
)

// Arbitration schemes (paper §III-B).
const (
	// LRG is flat least-recently-granted (2D and folded switches).
	LRG = topo.LRG
	// L2LLRG is the baseline hierarchical layer-to-layer LRG.
	L2LLRG = topo.L2LLRG
	// WLRG is weighted LRG (fair but hardware-infeasible).
	WLRG = topo.WLRG
	// CLRG is the paper's class-based LRG.
	CLRG = topo.CLRG
	// ISLIP1 is the single-iteration iSLIP *analog* used by the §VII
	// related-work ablation: round-robin pointers on the Hi-Rise
	// two-stage structure, NOT the real VOQ algorithm (that is ISLIP).
	ISLIP1 = topo.ISLIP1
	// ISLIP is canonical accept-gated multi-iteration iSLIP on the VOQ
	// crossbar mode (SimulateVOQ); rejected by New.
	ISLIP = topo.ISLIP
	// Wavefront is the rotating-priority wavefront allocator on the VOQ
	// crossbar mode; rejected by New.
	Wavefront = topo.Wavefront
	// MWM is the exact maximum-weight-matching reference scheduler on
	// the VOQ crossbar mode; rejected by New.
	MWM = topo.MWM
)

// Channel allocation policies (paper §III-A).
const (
	// InputBinned fixes each input's channel by its local index.
	InputBinned = topo.InputBinned
	// OutputBinned fixes the channel by the destination's local index.
	OutputBinned = topo.OutputBinned
	// PriorityBased lets every input contend for every channel.
	PriorityBased = topo.PriorityBased
)

// DefaultConfig returns the paper's headline configuration: 64-radix,
// 4-layer, 4-channel, input-binned, CLRG with 3 classes.
func DefaultConfig() Config { return topo.Default64() }

// Switch models.
type (
	// Switch is the Hi-Rise hierarchical switch model.
	Switch = core.Switch
	// Crossbar is the flat 2D Swizzle-Switch model (also used, folded,
	// as the naive 3D baseline).
	Crossbar = crossbar.Switch
)

// New returns a Hi-Rise switch for the configuration.
func New(cfg Config) (*Switch, error) { return core.New(cfg) }

// New2D returns the 2D Swizzle-Switch baseline.
func New2D(radix int) *Crossbar { return crossbar.New(radix) }

// NewFolded returns the 3D folded baseline (cycle-identical to 2D;
// physical cost differs).
func NewFolded(radix, layers int) *Crossbar { return crossbar.NewFolded(radix, layers) }

// Physical cost modeling.
type (
	// Tech holds process and TSV technology parameters.
	Tech = phys.Tech
	// Cost is a switch's area, frequency, energy, and TSV count.
	Cost = phys.Cost
)

// Tech32nm returns the paper's 32 nm SOI evaluation technology.
func Tech32nm() Tech { return phys.Default32nm() }

// CostOf returns the physical cost of a configuration (Layers <= 1 is the
// flat 2D switch).
func CostOf(cfg Config, t Tech) Cost { return phys.Of(cfg, t) }

// FoldedCost returns the folded baseline's physical cost.
func FoldedCost(radix, layers int, t Tech) Cost { return phys.Folded(radix, layers, t) }

// Tbps converts an accepted flit rate (flits/cycle across the switch)
// into terabits per second at the given cost's clock.
func Tbps(flitsPerCycle float64, c Cost, t Tech) float64 { return phys.Tbps(flitsPerCycle, c, t) }

// Simulation.
type (
	// SimConfig parameterizes a network simulation run.
	SimConfig = sim.Config
	// SimResult is a run's measurements.
	SimResult = sim.Result
	// SimSwitch is the interface the simulator drives (implemented by
	// Switch and Crossbar).
	SimSwitch = sim.Switch
	// TrafficPattern produces offered traffic for the simulator.
	TrafficPattern = sim.Traffic
)

// Simulate runs one network simulation.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// SaturationThroughput measures the fully-backlogged accepted flit rate.
func SaturationThroughput(cfg SimConfig) (float64, error) { return sim.SaturationThroughput(cfg) }

// LoadSweep simulates the base configuration at each offered load on at
// most workers concurrent runs (0 selects all CPUs, 1 forces serial) and
// returns the results in load order. Each point runs a fresh switch from
// newSwitch under a seed derived from (base.Seed, point index), so the
// results are identical at every worker count. newTraffic, when non-nil,
// gives each point its own traffic pattern; it is required for stateful
// patterns such as BurstyTraffic.
func LoadSweep(base SimConfig, newSwitch func() SimSwitch, newTraffic func() TrafficPattern, loads []float64, workers int) ([]SimResult, error) {
	return sim.LoadSweep(base, newSwitch, newTraffic, loads, workers)
}

// LoadSweepObserved is LoadSweep with per-point observability: obsFor,
// when non-nil, supplies each point its own Observer (points run
// concurrently and obs sinks are single-writer). Merge the per-point
// sinks in point order afterwards — WriteTraceJSONL, WriteChromeTrace,
// and WriteMetricsJSON take the slices — and the serialized output is
// byte-identical at every worker count.
func LoadSweepObserved(base SimConfig, newSwitch func() SimSwitch, newTraffic func() TrafficPattern, loads []float64, workers int, obsFor func(i int) *Observer) ([]SimResult, error) {
	return sim.LoadSweepObserved(base, newSwitch, newTraffic, loads, workers, obsFor)
}

// VOQ switch mode and the input-queued scheduler zoo (internal/sched):
// per-(input, output) virtual output queues on a flat crossbar with an
// internal speedup S, scheduled per phase by canonical multi-iteration
// iSLIP, a wavefront allocator, or the exact MWM reference. See the
// sched-shootout experiment and DESIGN.md's "VOQ mode" section.
type (
	// Scheduler computes one crossbar matching per VOQ scheduling phase.
	Scheduler = sched.Scheduler
	// VOQSimConfig parameterizes a VOQ-mode simulation run.
	VOQSimConfig = sim.VOQConfig
)

// NewISLIPScheduler returns canonical iSLIP over n ports running iters
// grant/accept iterations per phase (pointers advance only on accepted
// first-iteration grants).
func NewISLIPScheduler(n, iters int) Scheduler { return sched.NewISLIP(n, iters) }

// NewWavefrontScheduler returns a rotating-priority wavefront allocator
// over n ports.
func NewWavefrontScheduler(n int) Scheduler { return sched.NewWavefront(n) }

// NewMWMScheduler returns the exact maximum-weight-matching reference
// scheduler (queue-length weights, O(n³) Hungarian) over n ports.
func NewMWMScheduler(n int) Scheduler { return sched.NewMWM(n) }

// NewScheduler builds the scheduler a VOQ-only Scheme names (ISLIP,
// Wavefront, MWM) over n ports; iters applies to ISLIP only (0 selects
// 2 iterations, the shootout's default).
func NewScheduler(s Scheme, n, iters int) (Scheduler, error) {
	switch s {
	case topo.ISLIP:
		if iters <= 0 {
			iters = 2
		}
		return sched.NewISLIP(n, iters), nil
	case topo.Wavefront:
		return sched.NewWavefront(n), nil
	case topo.MWM:
		return sched.NewMWM(n), nil
	}
	return nil, fmt.Errorf("hirise: scheme %v is not a VOQ scheduler (see New for hierarchical schemes)", s)
}

// SimulateVOQ runs one VOQ-mode simulation.
func SimulateVOQ(cfg VOQSimConfig) (SimResult, error) { return sim.RunVOQ(cfg) }

// VOQLoadSweep is LoadSweep for the VOQ mode: newSched supplies each
// point a fresh scheduler (schedulers carry pointer state), and results
// are identical at every worker count.
func VOQLoadSweep(base VOQSimConfig, newSched func() Scheduler, newTraffic func() TrafficPattern, loads []float64, workers int) ([]SimResult, error) {
	return sim.VOQLoadSweep(base, newSched, newTraffic, loads, workers)
}

// VOQLoadSweepObserved is VOQLoadSweep with per-point observability,
// with the same obsFor contract as LoadSweepObserved.
func VOQLoadSweepObserved(base VOQSimConfig, newSched func() Scheduler, newTraffic func() TrafficPattern, loads []float64, workers int, obsFor func(i int) *Observer) ([]SimResult, error) {
	return sim.VOQLoadSweepObserved(base, newSched, newTraffic, loads, workers, obsFor)
}

// Fault injection & resilience (internal/fault): deterministic seeded
// fault plans attached via SimConfig.Faults, with the self-checking
// invariant layer enabled by SimConfig.Check.
type (
	// Fault is one scheduled resource fault (permanent or transient).
	Fault = fault.Fault
	// FaultKind selects the faulted resource class.
	FaultKind = fault.Kind
	// FaultPlan is an immutable, validated fault schedule.
	FaultPlan = fault.Plan
	// FaultSpec derives a deterministic fault plan from a seed and a
	// campaign name.
	FaultSpec = fault.Spec
	// FaultStats reports a run's fault-plane activity (SimResult.Fault).
	FaultStats = sim.FaultStats
)

// Fault kinds.
const (
	// FaultChannel faults a layer-to-layer channel (lossy when
	// transient, fail-stop when permanent).
	FaultChannel = fault.Channel
	// FaultInput fail-stops an input port.
	FaultInput = fault.Input
	// FaultOutput fail-stops an output port.
	FaultOutput = fault.Output
	// FaultCrosspoint fail-stops one crossbar cross-point.
	FaultCrosspoint = fault.Crosspoint
)

// NewFaultPlan validates and orders the given faults into a plan.
func NewFaultPlan(faults ...Fault) (*FaultPlan, error) { return fault.NewPlan(faults...) }

// Observability (internal/obs): deterministic switch-internals metrics,
// flit-lifecycle tracing, and arbitration fairness auditing. Attach an
// Observer via SimConfig.Obs or SystemConfig.Obs; a nil Observer (the
// default) keeps every hook allocation-free.
type (
	// Observer bundles the optional sinks a simulation writes to.
	Observer = obs.Observer
	// MetricsRegistry accumulates named counters, gauges, and
	// fixed-bucket histograms.
	MetricsRegistry = obs.Registry
	// TraceRecorder captures flit lifecycle events keyed by simulated
	// cycle, serializable as JSONL or Chrome trace-event JSON.
	TraceRecorder = obs.Recorder
	// TraceEvent is one recorded lifecycle event.
	TraceEvent = obs.Event
	// FairnessAudit accumulates per-(input, class) grant/denial and
	// starvation-streak counters inside the arbiters.
	FairnessAudit = obs.FairnessAudit
	// FairnessReport is the aggregated view of a FairnessAudit.
	FairnessReport = obs.FairnessReport
	// ProfileConfig names host-side profiling outputs (pprof,
	// runtime/trace, runtime/metrics) for CLI runs.
	ProfileConfig = obs.ProfileConfig
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceRecorder returns a bounded lifecycle-event recorder;
// maxEvents <= 0 selects the default cap.
func NewTraceRecorder(maxEvents int) *TraceRecorder { return obs.NewRecorder(maxEvents) }

// NewFairnessAudit returns an audit over the given primary-input and
// priority-class counts (classes is 1 for class-less schemes).
func NewFairnessAudit(inputs, classes int) *FairnessAudit {
	return obs.NewFairnessAudit(inputs, classes)
}

// WriteTraceJSONL serializes per-run recorders, in run order, as JSONL.
func WriteTraceJSONL(w io.Writer, runs []*TraceRecorder) error { return obs.WriteJSONL(w, runs) }

// WriteChromeTrace serializes per-run recorders as one Chrome
// trace-event JSON document loadable in Perfetto (ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, runs []*TraceRecorder) error { return obs.WriteChromeTrace(w, runs) }

// WriteMetricsJSON serializes per-run registries, in run order, as one
// JSON array.
func WriteMetricsJSON(w io.Writer, runs []*MetricsRegistry) error {
	return obs.WriteRegistriesJSON(w, runs)
}

// ValidateChromeTrace checks Chrome trace-event JSON produced by
// WriteChromeTrace and returns its event count.
func ValidateChromeTrace(data []byte) (int, error) { return obs.ValidateChromeTrace(data) }

// ValidateTraceJSONL checks a JSONL trace stream produced by
// WriteTraceJSONL and returns its event count.
func ValidateTraceJSONL(r io.Reader) (int, error) { return obs.ValidateJSONL(r) }

// Time-series telemetry (internal/tele): fixed-cadence windowed counter
// and gauge tracks sampled inside the simulator hot loop, with
// power-of-two decimation bounding memory for arbitrarily long runs.
// Attach a sampler via Observer.Tele; a nil sampler keeps the per-cycle
// hook to a single pointer compare.
type (
	// TelemetrySampler collects windowed samples from registered series.
	TelemetrySampler = tele.Sampler
	// TelemetrySeries is an exported snapshot of one sampled track.
	TelemetrySeries = tele.Series
)

// NewTelemetrySampler returns a sampler closing a window every
// windowCycles cycles and storing at most maxWindows samples per series
// (zero or negative arguments select the package defaults; the series
// decimate pairwise once the bound is hit).
func NewTelemetrySampler(windowCycles int64, maxWindows int) *TelemetrySampler {
	return tele.NewSampler(windowCycles, maxWindows)
}

// WriteTelemetryNDJSON serializes per-run samplers, in run order, as
// NDJSON (one line per run and series).
func WriteTelemetryNDJSON(w io.Writer, runs []*TelemetrySampler) error {
	return tele.WriteNDJSON(w, runs)
}

// ValidateTelemetryNDJSON checks a telemetry NDJSON stream produced by
// WriteTelemetryNDJSON and returns its total sample count.
func ValidateTelemetryNDJSON(r io.Reader) (int, error) { return tele.ValidateNDJSON(r) }

// WriteChromeTraceWithCounters is WriteChromeTrace plus per-window
// counter tracks ("C" events) from the per-run telemetry samplers;
// either slice may be nil or shorter than the other.
func WriteChromeTraceWithCounters(w io.Writer, runs []*TraceRecorder, samps []*TelemetrySampler) error {
	return obs.WriteChromeTraceWithCounters(w, runs, samps)
}

// SteadyStateMSER applies the Marginal Standard Error Rule to a sampled
// series: it returns the suggested truncation point (in samples) and
// whether the series reached steady state. See SimConfig.ConvergeStop
// for the in-simulator use.
func SteadyStateMSER(values []float64) (cut int, converged bool) { return tele.MSER(values) }

// StartProfiles starts the configured host-side profilers; the returned
// stop function (call exactly once) finishes them.
func StartProfiles(pc ProfileConfig) (func() error, error) { return obs.StartProfiles(pc) }

// Heartbeat writes progress() to w every interval until the returned
// stop function is called. An interval <= 0 makes it a no-op.
func Heartbeat(w io.Writer, interval time.Duration, progress func() string) (stop func()) {
	return obs.Heartbeat(w, interval, progress)
}

// Traffic patterns (paper §V, §VI).
type (
	// UniformTraffic is uniform random traffic.
	UniformTraffic = traffic.Uniform
	// HotspotTraffic directs every input at one output.
	HotspotTraffic = traffic.Hotspot
	// FixedTraffic injects fixed input->output flows.
	FixedTraffic = traffic.Fixed
	// BurstyTraffic modulates uniform traffic with on/off bursts.
	BurstyTraffic = traffic.Bursty
	// PermutationTraffic sends each input to a fixed distinct output.
	PermutationTraffic = traffic.Permutation
	// ShiftTraffic sends input i to output (i+By) mod N — the classic
	// adversarial permutation for multi-hop fabrics.
	ShiftTraffic = traffic.Shift
)

// AdversarialTraffic returns the paper's §III-B worked adversarial
// pattern.
func AdversarialTraffic() FixedTraffic { return traffic.Adversarial() }

// NewBurstyTraffic returns bursty traffic with the given mean burst
// length.
func NewBurstyTraffic(radix int, meanBurst float64) *BurstyTraffic {
	return traffic.NewBursty(radix, meanBurst)
}

// NewPermutationTraffic returns a random fixed permutation pattern.
func NewPermutationTraffic(radix int, seed uint64) PermutationTraffic {
	return traffic.NewRandomPermutation(radix, seed)
}

// BitReverseTraffic returns the bit-reversal permutation pattern (radix
// must be a power of two).
func BitReverseTraffic(radix int) TrafficPattern { return traffic.BitReverse{Radix: radix} }

// InterLayerTraffic returns the paper's §VI-B pathological corner: purely
// inter-layer traffic that serializes on the L2LCs.
func InterLayerTraffic(cfg Config) TrafficPattern { return traffic.InterLayerWorstCase{Cfg: cfg} }

// LayerLocalTraffic keeps all traffic within each source's layer.
func LayerLocalTraffic(cfg Config) TrafficPattern { return traffic.LayerLocal{Cfg: cfg} }

// BinAdversarialTraffic activates only inputs sharing L2LC channel 0
// under input binning (the §III-A motivation for priority allocation).
func BinAdversarialTraffic(cfg Config) TrafficPattern { return traffic.BinAdversarial{Cfg: cfg} }

// Many-core system model (paper §VI-D).
type (
	// SystemConfig holds the Table III system parameters.
	SystemConfig = manycore.Config
	// System is a 64-core system instance.
	System = manycore.System
	// SystemResult reports IPC and network statistics.
	SystemResult = manycore.Result
	// Benchmark characterizes one application's memory behaviour.
	Benchmark = trace.Benchmark
	// Mix is one of Table VI's multi-programmed workloads.
	Mix = trace.Mix
	// CacheConfig describes a cache geometry for the address-driven
	// system mode (SystemConfig.AddressMode).
	CacheConfig = cache.Config
)

// L1DCache and L2BankCache return the paper's Table III cache
// geometries.
func L1DCache() CacheConfig { return cache.L1D() }

// L2BankCache returns one shared-L2 bank's geometry.
func L2BankCache() CacheConfig { return cache.L2Bank() }

// NewSystem builds a many-core system over the given switch with the
// given per-core benchmark assignment.
func NewSystem(cfg SystemConfig, sw SimSwitch, benches []Benchmark) (*System, error) {
	return manycore.New(cfg, sw, benches)
}

// Benchmarks returns the application catalog behind Table VI.
func Benchmarks() []Benchmark { return trace.Catalog() }

// Mixes returns the paper's eight Table VI workload mixes.
func Mixes() []Mix { return trace.TableVIMixes() }

// NoC composition (paper §VI-E, Fig 13).
type (
	// MeshConfig describes a 2D mesh of switches (Hi-Rise or crossbar
	// nodes) with concentration and credit-based flow control.
	MeshConfig = noc.Config
	// Mesh is one mesh network instance.
	Mesh = noc.Network
	// MeshResult reports a mesh simulation.
	MeshResult = noc.Result
	// Topology wires a network of switches; MeshTopology and
	// FlattenedButterflyTopology are the built-in instances.
	Topology = noc.Topology
	// MeshTopology is the Fig 13 2D mesh.
	MeshTopology = noc.Mesh
	// FlattenedButterflyTopology is the §VI-E comparison topology.
	FlattenedButterflyTopology = noc.FlattenedButterfly
)

// NewMesh builds a mesh network-on-chip from the configuration.
func NewMesh(cfg MeshConfig) (*Mesh, error) { return noc.New(cfg) }

// Multi-switch fabric (internal/fabric): a first-class interconnect
// simulator where every router is a full sim.Switch wired by a pluggable
// topology (mesh, flattened butterfly, dragonfly) with credit-based
// link-level flow control, minimal or Valiant routing, VC-class deadlock
// avoidance, a static link/router fail-set plane, and an always-on
// deadlock watchdog. A 1-node fabric reproduces Simulate byte for byte.
type (
	// FabricConfig parameterizes one fabric simulation run.
	FabricConfig = fabric.Config
	// FabricResult is a fabric run's measurements.
	FabricResult = fabric.Result
	// FabricTopology wires a fabric's routers; FabricMesh,
	// FabricFlattenedButterfly, and FabricDragonfly are the instances.
	FabricTopology = fabric.Topology
	// FabricMesh is a W×H 2D mesh with XY dimension-ordered routing.
	FabricMesh = fabric.Mesh
	// FabricFlattenedButterfly has direct row and column links.
	FabricFlattenedButterfly = fabric.FlattenedButterfly
	// FabricDragonfly is a two-level group topology with global links.
	FabricDragonfly = fabric.Dragonfly
	// FabricRouting selects minimal or Valiant route computation.
	FabricRouting = fabric.Routing
	// FabricFaultSpec derives a deterministic static fail-set from a seed.
	FabricFaultSpec = fabric.FaultSpec
	// FabricFaultSet is a built, immutable fail-set (FabricConfig.Faults).
	FabricFaultSet = fabric.FaultSet
)

// Fabric routing policies.
const (
	// FabricMinimal routes every packet along a shortest path.
	FabricMinimal = fabric.Minimal
	// FabricValiant routes via a random intermediate waypoint.
	FabricValiant = fabric.Valiant
)

// ParseFabricRouting maps the CLI spelling (min | valiant) to a routing.
func ParseFabricRouting(s string) (FabricRouting, error) { return fabric.ParseRouting(s) }

// SimulateFabric runs one multi-switch fabric simulation.
func SimulateFabric(cfg FabricConfig) (FabricResult, error) { return fabric.Run(cfg) }

// FabricLoadSweep runs the base configuration at each offered load on at
// most workers concurrent simulations (0 selects all CPUs) and returns
// results in load order; results are identical at every worker count.
func FabricLoadSweep(base FabricConfig, loads []float64, workers int) ([]FabricResult, error) {
	return fabric.LoadSweep(base, loads, workers)
}

// FabricLoadSweepObserved is FabricLoadSweep with per-point
// observability, with the same obsFor contract as LoadSweepObserved.
func FabricLoadSweepObserved(base FabricConfig, loads []float64, workers int, obsFor func(i int) *Observer) ([]FabricResult, error) {
	return fabric.LoadSweepObserved(base, loads, workers, obsFor)
}

// Experiments.
type (
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = experiments.Table
	// ExperimentOpts tunes experiment fidelity.
	ExperimentOpts = experiments.Opts
	// ExperimentCacheKey is the part of ExperimentOpts that determines
	// an experiment's output — what result caches hash, excluding
	// scheduling knobs like Workers.
	ExperimentCacheKey = experiments.CacheKey
)

// Experiments lists the available experiment IDs (one per paper table and
// figure, plus ablations).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact.
func RunExperiment(id string, opts ExperimentOpts) (*ExperimentTable, error) {
	r, err := experiments.Get(id)
	if err != nil {
		return nil, err
	}
	return r(opts), nil
}

// RunExperimentCtx is RunExperiment under a cancellable context: the
// sweep stops within one simulation point of ctx's cancellation and the
// partial table is discarded.
func RunExperimentCtx(ctx context.Context, id string, opts ExperimentOpts) (*ExperimentTable, error) {
	return experiments.RunCtx(ctx, id, opts)
}

// DefaultExperimentOpts returns publication fidelity; QuickExperimentOpts
// a fast smoke-run fidelity.
func DefaultExperimentOpts() ExperimentOpts { return experiments.DefaultOpts() }

// QuickExperimentOpts returns reduced-fidelity options for smoke runs.
func QuickExperimentOpts() ExperimentOpts { return experiments.QuickOpts() }
