package hirise_test

import (
	"math"
	"testing"

	"github.com/reprolab/hirise"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build a switch, cost it, simulate it.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := hirise.DefaultConfig()
	if cfg.Radix != 64 || cfg.Scheme != hirise.CLRG {
		t.Fatalf("unexpected default config %+v", cfg)
	}
	sw, err := hirise.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cost := hirise.CostOf(cfg, hirise.Tech32nm())
	if math.Abs(cost.FreqGHz-2.2) > 0.05 {
		t.Errorf("CLRG frequency %.2f, want ~2.2", cost.FreqGHz)
	}
	res, err := hirise.Simulate(hirise.SimConfig{
		Switch:  sw,
		Traffic: hirise.UniformTraffic{Radix: cfg.Radix},
		Load:    0.05,
		Warmup:  1000, Measure: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered through facade-built switch")
	}
}

func TestFacadeBaselines(t *testing.T) {
	d2 := hirise.New2D(64)
	fold := hirise.NewFolded(64, 4)
	if d2.Radix() != 64 || fold.Radix() != 64 {
		t.Fatal("baseline radix wrong")
	}
	fc := hirise.FoldedCost(64, 4, hirise.Tech32nm())
	if fc.TSVs != 8192 {
		t.Errorf("folded TSVs %d", fc.TSVs)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := hirise.Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	tb, err := hirise.RunExperiment("fig9a", hirise.QuickExperimentOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "fig9a" || len(tb.Rows) == 0 {
		t.Fatalf("bad table %+v", tb)
	}
	if _, err := hirise.RunExperiment("nope", hirise.QuickExperimentOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeManycore(t *testing.T) {
	mixes := hirise.Mixes()
	if len(mixes) != 8 {
		t.Fatalf("%d mixes", len(mixes))
	}
	benches, err := mixes[0].Assign(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := hirise.NewSystem(hirise.SystemConfig{
		Warmup: 1000, Measure: 4000, Seed: 1,
	}, hirise.New2D(64), benches)
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.Run(); r.SystemIPC <= 0 {
		t.Fatalf("system made no progress: %+v", r)
	}
	if len(hirise.Benchmarks()) < 25 {
		t.Error("benchmark catalog too small")
	}
}

func TestFacadeMesh(t *testing.T) {
	m, err := hirise.NewMesh(hirise.MeshConfig{
		MeshW: 2, MeshH: 2, Concentration: 4, LinkPorts: 1,
		NewSwitch: func() hirise.SimSwitch { return hirise.New2D(8) },
		Warmup:    500, Measure: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Run(0.02); r.Delivered == 0 {
		t.Fatal("mesh made no progress")
	}
}

func TestFacadeAddressMode(t *testing.T) {
	benches, err := hirise.Mixes()[0].Assign(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := hirise.NewSystem(hirise.SystemConfig{
		AddressMode: true,
		L1:          hirise.L1DCache(),
		L2Bank:      hirise.L2BankCache(),
		Warmup:      1000, Measure: 4000, Seed: 1,
	}, hirise.New2D(64), benches)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.AvgL1MPKI <= 0 {
		t.Fatalf("address mode reported no MPKI: %+v", r)
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	cfg := hirise.DefaultConfig()
	sw, err := hirise.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cid := cfg.L2LCID(0, 1, 0)
	if err := sw.FailChannel(cid); err != nil {
		t.Fatal(err)
	}
	if !sw.ChannelFailed(cid) {
		t.Fatal("channel not failed through facade")
	}
}

func TestFacadeTraffic(t *testing.T) {
	if len(hirise.AdversarialTraffic().Flows) != 5 {
		t.Error("adversarial pattern should have 5 flows")
	}
	b := hirise.NewBurstyTraffic(64, 8)
	if b.Radix != 64 {
		t.Error("bursty radix")
	}
}

// TestFacadeFabric drives the multi-switch fabric simulator through
// the facade: a single run with the invariant checker on, a faulted
// run that must retire dead flows, and a two-point load sweep.
func TestFacadeFabric(t *testing.T) {
	topo := hirise.FabricMesh{W: 3, H: 3, Conc: 2, Lanes: 2}
	base := hirise.FabricConfig{
		Topo:    topo,
		Routing: hirise.FabricMinimal,
		Traffic: hirise.UniformTraffic{Radix: topo.Nodes() * topo.Conc},
		Load:    0.3,
		Warmup:  500, Measure: 2000, Seed: 1,
		Check: true,
	}
	res, err := hirise.SimulateFabric(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatalf("fabric delivered nothing: %+v", res)
	}

	if _, err := hirise.ParseFabricRouting("valiant"); err != nil {
		t.Fatal(err)
	}
	if _, err := hirise.ParseFabricRouting("bogus"); err == nil {
		t.Fatal("bogus routing accepted")
	}

	faults, err := hirise.FabricFaultSpec{
		Seed: 7, FailLinks: 2, FailRouters: 1,
	}.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	degraded := base
	degraded.Faults = faults
	dres, err := hirise.SimulateFabric(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if dres.DeadFlows == 0 {
		t.Fatalf("router fail-stop severed no flows: %+v", dres)
	}

	sweep, err := hirise.FabricLoadSweep(base, []float64{0.1, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 || sweep[0].Delivered == 0 || sweep[1].Delivered == 0 {
		t.Fatalf("fabric sweep incomplete: %+v", sweep)
	}
}
