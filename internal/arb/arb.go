// Package arb implements the arbitration primitives of the Swizzle-Switch
// family and of the Hi-Rise hierarchical switch (paper §III-B):
//
//   - LRG: least-recently-granted priority, the scheme embedded in the 2D
//     Swizzle-Switch cross-points;
//   - CLRG: the paper's class-based LRG, which bins contenders into
//     priority classes by a per-primary-input usage counter and
//     tie-breaks within a class using LRG;
//   - WLRG: weighted LRG, which freezes priorities in proportion to the
//     number of requestors behind a channel (hardware-infeasible, modeled
//     for comparison);
//   - RoundRobin and Fixed, used by ablations.
//
// Grant and Update are deliberately separate operations: in Hi-Rise the
// local switch's priority vector is updated only when its winner also wins
// the final output at the inter-layer switch (the update is
// back-propagated), which is the property that prevents starvation.
package arb

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// Arbiter selects one winner among n requestors for a single resource.
// Grant must not mutate arbiter state; Update commits the priority change
// for a winner.
type Arbiter interface {
	// N returns the number of requestor slots.
	N() int
	// Grant returns the winning requestor index, or -1 if req has no true
	// entry. len(req) must equal N().
	Grant(req []bool) int
	// Update records that winner was granted, adjusting priorities.
	Update(winner int)
}

// BitArbiter is an Arbiter whose grant path accepts the word-parallel
// bitset request view directly. Every arbiter in this package
// implements it except QoS (whose adapter needs the mask at Update
// time); the switch models arbitrate exclusively through GrantBits, so
// no per-cycle []bool materialization happens on the hot path. Like
// Grant, GrantBits must leave arbitration state observably unchanged
// (internal scratch may be reused). req must span WordsFor(N()) words
// with no bits at or beyond N() set.
type BitArbiter interface {
	Arbiter
	// GrantBits returns the winning requestor index among the set bits
	// of req, or -1 if none is set. It grants exactly the requestor
	// Grant would on the equivalent []bool mask.
	GrantBits(req bitvec.Vec) int
}

// LRG is least-recently-granted arbitration: the winner of each grant
// becomes the lowest-priority requestor. It is the behavioural model of
// the Swizzle-Switch priority-vector hardware (one bit per requestor pair
// stored in the cross-points).
type LRG struct {
	order []int // order[0] is the highest-priority requestor
	pos   []int // pos[r] is r's index within order
	init  []int // initial order for Reset; nil means identity
}

// NewLRG returns an LRG arbiter over n requestors with initial priority
// order 0 > 1 > ... > n-1.
func NewLRG(n int) *LRG {
	l := &LRG{order: make([]int, n), pos: make([]int, n)}
	l.Reset()
	return l
}

// NewLRGs returns count independent LRG arbiters over n requestors each
// (identity initial order), backed by three allocations total instead of
// 3*count: the arbiter structs and their order/pos arrays are carved from
// shared slabs. The arbiters share no mutable state.
func NewLRGs(n, count int) []LRG {
	ls := make([]LRG, count)
	orders := make([]int, n*count)
	poss := make([]int, n*count)
	for k := range ls {
		ls[k].order = orders[k*n : (k+1)*n : (k+1)*n]
		ls[k].pos = poss[k*n : (k+1)*n : (k+1)*n]
		ls[k].Reset()
	}
	return ls
}

// NewLRGFromOrder returns an LRG arbiter with the given initial priority
// order, order[0] highest. The order must be a permutation of [0,len).
func NewLRGFromOrder(order []int) *LRG {
	n := len(order)
	l := &LRG{
		order: append([]int(nil), order...),
		pos:   make([]int, n),
		init:  append([]int(nil), order...),
	}
	seen := make([]bool, n)
	for i, r := range l.order {
		if r < 0 || r >= n || seen[r] {
			panic("arb: initial order is not a permutation")
		}
		seen[r] = true
		l.pos[r] = i
	}
	return l
}

// Reset restores the initial priority order, as if freshly constructed.
func (l *LRG) Reset() {
	if l.init == nil {
		for i := range l.order {
			l.order[i], l.pos[i] = i, i
		}
		return
	}
	copy(l.order, l.init)
	for i, r := range l.order {
		l.pos[r] = i
	}
}

// N returns the number of requestor slots.
func (l *LRG) N() int { return len(l.order) }

// Grant returns the highest-priority requestor, or -1.
func (l *LRG) Grant(req []bool) int {
	for _, r := range l.order {
		if req[r] {
			return r
		}
	}
	return -1
}

// GrantBits returns the highest-priority requestor among the set bits
// of req, or -1. The winner is the set bit with the minimum priority
// position, found by iterating only the set bits — one
// TrailingZeros64 step per requestor instead of an order-list scan.
func (l *LRG) GrantBits(req bitvec.Vec) int {
	best, bestPos := -1, len(l.order)
	for w, word := range req {
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if p := l.pos[i]; p < bestPos {
				bestPos, best = p, i
			}
		}
	}
	return best
}

// Update moves winner to the lowest priority position.
func (l *LRG) Update(winner int) {
	i := l.pos[winner]
	copy(l.order[i:], l.order[i+1:])
	l.order[len(l.order)-1] = winner
	for j := i; j < len(l.order); j++ {
		l.pos[l.order[j]] = j
	}
}

// Order returns a copy of the current priority order, highest first.
func (l *LRG) Order() []int { return append([]int(nil), l.order...) }

// RoundRobin grants the first requestor at or after the slot following the
// previous winner. It is the pointer half of the paper's §VII iSLIP-1
// *analog* (topo.ISLIP1): round-robin pointers grafted onto the Hi-Rise
// two-stage structure for the related-work comparison.
//
// Pointer-semantics audit (canonical iSLIP advances its grant/accept
// pointers only when a grant is accepted, and only in the first
// iteration — that accept-gating is what desynchronizes the pointers):
// Update here advances unconditionally, but the arbiter itself never
// decides when to update. internal/core calls Update only during grant
// back-propagation, i.e. only for winners whose connection actually
// forms — the local-switch pointer moves only on a final-stage grant,
// which is exactly the §VII analog's documented behaviour ("the first
// stage's pointer advancing only on a final-stage grant"). The paper
// observes the analog "is similar to the baseline L-2-L LRG and does
// not solve the fairness issues", and the repo keeps it that way on
// purpose as the comparison point. The real accept-gated, multi-
// iteration iSLIP on a flat VOQ crossbar lives in internal/sched.
type RoundRobin struct {
	n, next int
}

// NewRoundRobin returns a round-robin arbiter over n requestors.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{n: n} }

// N returns the number of requestor slots.
func (r *RoundRobin) N() int { return r.n }

// Grant returns the next requestor in cyclic order, or -1.
func (r *RoundRobin) Grant(req []bool) int {
	for i := 0; i < r.n; i++ {
		c := (r.next + i) % r.n
		if req[c] {
			return c
		}
	}
	return -1
}

// GrantBits returns the next requestor in cyclic order among the set
// bits of req, or -1: the lowest set bit at or after next, wrapping.
func (r *RoundRobin) GrantBits(req bitvec.Vec) int {
	if len(req) == 0 {
		return -1
	}
	sw, sb := r.next>>6, uint(r.next&63)
	if w := req[sw] & (^uint64(0) << sb); w != 0 {
		return sw<<6 | bits.TrailingZeros64(w)
	}
	for k := sw + 1; k < len(req); k++ {
		if req[k] != 0 {
			return k<<6 | bits.TrailingZeros64(req[k])
		}
	}
	for k := 0; k < sw; k++ {
		if req[k] != 0 {
			return k<<6 | bits.TrailingZeros64(req[k])
		}
	}
	if w := req[sw] &^ (^uint64(0) << sb); w != 0 {
		return sw<<6 | bits.TrailingZeros64(w)
	}
	return -1
}

// Update advances the scan position past the winner. The advance is
// unconditional by design: accept-gating is the caller's job (see the
// type comment), and every caller in this repo invokes Update only for
// winners whose grant stands.
func (r *RoundRobin) Update(winner int) { r.next = (winner + 1) % r.n }

// Reset rewinds the scan position to slot 0, as if freshly constructed.
func (r *RoundRobin) Reset() { r.next = 0 }

// Fixed grants the lowest-index requestor and never changes priority. It
// exists as an intentionally unfair baseline for fairness experiments.
type Fixed struct{ n int }

// NewFixed returns a fixed-priority arbiter over n requestors.
func NewFixed(n int) *Fixed { return &Fixed{n: n} }

// N returns the number of requestor slots.
func (f *Fixed) N() int { return f.n }

// Grant returns the lowest-index requestor, or -1.
func (f *Fixed) Grant(req []bool) int {
	for i := 0; i < f.n; i++ {
		if req[i] {
			return i
		}
	}
	return -1
}

// GrantBits returns the lowest set bit of req, or -1.
func (f *Fixed) GrantBits(req bitvec.Vec) int { return req.First() }

// Update is a no-op for fixed priority.
func (f *Fixed) Update(int) {}

// Reset is a no-op: fixed priority carries no state.
func (f *Fixed) Reset() {}
