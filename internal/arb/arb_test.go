package arb

import (
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/prng"
)

func req(n int, set ...int) []bool {
	r := make([]bool, n)
	for _, i := range set {
		r[i] = true
	}
	return r
}

func TestLRGGrantHighestPriority(t *testing.T) {
	l := NewLRG(4)
	if w := l.Grant(req(4, 1, 3)); w != 1 {
		t.Fatalf("winner %d, want 1", w)
	}
	// Grant must not mutate state.
	if w := l.Grant(req(4, 1, 3)); w != 1 {
		t.Fatalf("second Grant gave %d; Grant mutated state", w)
	}
}

func TestLRGNoRequestors(t *testing.T) {
	l := NewLRG(4)
	if w := l.Grant(req(4)); w != -1 {
		t.Fatalf("winner %d, want -1", w)
	}
}

func TestLRGUpdateRelegatesWinner(t *testing.T) {
	l := NewLRG(3)
	l.Update(0)
	if got := l.Order(); got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("order %v, want [1 2 0]", got)
	}
	if w := l.Grant(req(3, 0, 1)); w != 1 {
		t.Fatalf("winner %d, want 1 after relegation", w)
	}
}

func TestLRGServicesAllUnderContention(t *testing.T) {
	// With everyone always requesting, LRG must be a perfect rotation.
	l := NewLRG(5)
	all := req(5, 0, 1, 2, 3, 4)
	counts := make([]int, 5)
	for i := 0; i < 100; i++ {
		w := l.Grant(all)
		counts[w]++
		l.Update(w)
	}
	for i, c := range counts {
		if c != 20 {
			t.Errorf("requestor %d won %d times, want 20", i, c)
		}
	}
}

func TestLRGFromOrder(t *testing.T) {
	l := NewLRGFromOrder([]int{3, 1, 0, 2})
	if w := l.Grant(req(4, 0, 1, 2, 3)); w != 3 {
		t.Fatalf("winner %d, want 3", w)
	}
	if w := l.Grant(req(4, 0, 2)); w != 0 {
		t.Fatalf("winner %d, want 0", w)
	}
}

func TestLRGFromOrderRejectsNonPermutation(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {1, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v accepted", bad)
				}
			}()
			NewLRGFromOrder(bad)
		}()
	}
}

// TestMatrixMatchesListLRG drives the hardware-style matrix arbiter and
// the list-based model with identical random request streams and demands
// identical grants forever.
func TestMatrixMatchesListLRG(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		n := 2 + src.Intn(15)
		list, matrix := NewLRG(n), NewMatrix(n)
		r := make([]bool, n)
		for step := 0; step < 300; step++ {
			for i := range r {
				r[i] = src.Bernoulli(0.4)
			}
			a, b := list.Grant(r), matrix.Grant(r)
			if a != b {
				return false
			}
			if a >= 0 {
				list.Update(a)
				matrix.Update(a)
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixStaysWellFormed(t *testing.T) {
	src := prng.New(99)
	m := NewMatrix(8)
	if !m.WellFormed() {
		t.Fatal("initial matrix not a total order")
	}
	for i := 0; i < 200; i++ {
		m.Update(src.Intn(8))
		if !m.WellFormed() {
			t.Fatalf("matrix lost total-order property after update %d", i)
		}
	}
}

func TestMatrixFromOrder(t *testing.T) {
	m := NewMatrixFromOrder([]int{2, 0, 1})
	if w := m.Grant(req(3, 0, 1, 2)); w != 2 {
		t.Fatalf("winner %d, want 2", w)
	}
	if w := m.Grant(req(3, 0, 1)); w != 0 {
		t.Fatalf("winner %d, want 0", w)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin(4)
	all := req(4, 0, 1, 2, 3)
	var got []int
	for i := 0; i < 8; i++ {
		w := r.Grant(all)
		got = append(got, w)
		r.Update(w)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	r := NewRoundRobin(4)
	r.Update(0) // next = 1
	if w := r.Grant(req(4, 0, 3)); w != 3 {
		t.Fatalf("winner %d, want 3", w)
	}
	if w := r.Grant(req(4)); w != -1 {
		t.Fatalf("winner %d, want -1", w)
	}
}

func TestFixedNeverRotates(t *testing.T) {
	f := NewFixed(3)
	for i := 0; i < 10; i++ {
		if w := f.Grant(req(3, 1, 2)); w != 1 {
			t.Fatalf("winner %d, want 1", w)
		}
		f.Update(1)
	}
}

func TestArbiterInterfaceCompliance(t *testing.T) {
	for _, a := range []Arbiter{NewLRG(4), NewMatrix(4), NewRoundRobin(4), NewFixed(4)} {
		if a.N() != 4 {
			t.Errorf("%T: N = %d", a, a.N())
		}
		if w := a.Grant(req(4, 2)); w != 2 {
			t.Errorf("%T: sole requestor lost, got %d", a, w)
		}
	}
}

// TestSoleRequestorAlwaysWins is the most basic liveness property: any
// arbiter must grant a lone requestor regardless of internal state.
func TestSoleRequestorAlwaysWins(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		n := 2 + src.Intn(12)
		arbs := []Arbiter{NewLRG(n), NewMatrix(n), NewRoundRobin(n)}
		for _, a := range arbs {
			for i := 0; i < 50; i++ {
				a.Update(src.Intn(n)) // scramble state
			}
			who := src.Intn(n)
			if a.Grant(req(n, who)) != who {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
