package arb

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
)

// CLRG implements the paper's Class-based Least Recently Granted
// arbitration for one inter-layer sub-block (one final output).
//
// The sub-block chooses among "lines" — the c*(L-1) incoming L2LCs plus
// the local intermediate output — but fairness is tracked per *primary
// input*: a small thermometer counter per input records how often that
// input has won this output. The counter value is the input's priority
// class (class 0, a count of zero, is the highest). The line presenting
// the lowest-class input wins; ties within a class break by LRG over the
// lines. Whenever a winner's counter saturates, every counter in the
// sub-block halves, preserving relative class order (paper §III-B4,
// §IV-B1).
type CLRG struct {
	lrg      *LRG
	counters []uint8    // one per primary input
	maxClass uint8      // counters saturate at this value (classes-1)
	masked   bitvec.Vec // scratch: best-class request mask, reused per Grant
	reqBits  bitvec.Vec // adapter scratch for the []bool Grant
	audit    *obs.FairnessAudit
}

// NewCLRG returns a CLRG arbiter over the given number of lines, tracking
// the given number of primary inputs, with the given class count (the
// paper uses 3 for radix 64). Initial line LRG order is 0 > 1 > ...
func NewCLRG(lines, inputs, classes int) *CLRG {
	return newCLRG(NewLRG(lines), inputs, classes)
}

// NewCLRGFromOrder is NewCLRG with an explicit initial line priority
// order, order[0] highest.
func NewCLRGFromOrder(order []int, inputs, classes int) *CLRG {
	return newCLRG(NewLRGFromOrder(order), inputs, classes)
}

func newCLRG(lrg *LRG, inputs, classes int) *CLRG {
	if classes < 2 {
		panic("arb: CLRG needs at least 2 classes")
	}
	if classes > 256 {
		panic("arb: CLRG class count exceeds counter width")
	}
	return &CLRG{
		lrg:      lrg,
		counters: make([]uint8, inputs),
		maxClass: uint8(classes - 1),
		masked:   bitvec.New(lrg.N()),
		reqBits:  bitvec.New(lrg.N()),
	}
}

// SetAudit attaches a fairness audit: every Grant call then records one
// observation per requesting line — (primary input, its current class,
// whether the line won) — which is where the per-class grant/denial and
// starvation-streak counters of the fairness report come from. A nil
// audit (the default) disables auditing.
func (c *CLRG) SetAudit(a *obs.FairnessAudit) { c.audit = a }

// Lines returns the number of contending lines.
func (c *CLRG) Lines() int { return c.lrg.N() }

// Class returns the current priority class of a primary input (0 is the
// highest priority).
func (c *CLRG) Class(input int) int { return int(c.counters[input]) }

// Grant returns the winning line among those with req set, where
// inputOf[line] is the primary input the line is presenting this cycle.
// It returns -1 if nothing requests. Arbitration state is not modified;
// an attached audit records each contender's outcome (Grant is called
// once per sub-block arbitration round, so audit counts are per-round).
func (c *CLRG) Grant(req []bool, inputOf []int) int {
	// Early return on an idle round, before the bitset conversion and
	// the masked-scratch rebuild: sub-blocks with nothing requesting are
	// the common case in a large switch under light load.
	any := false
	for _, r := range req {
		if r {
			any = true
			break
		}
	}
	if !any {
		return -1
	}
	c.reqBits.FromBools(req)
	return c.GrantBits(c.reqBits, inputOf)
}

// GrantBits is Grant on the bitset request view. An idle round returns
// -1 before touching the masked scratch or the audit.
func (c *CLRG) GrantBits(req bitvec.Vec, inputOf []int) int {
	if req.None() {
		return -1
	}
	best := int(c.maxClass) + 1
	for w, word := range req {
		for word != 0 {
			line := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if cl := int(c.counters[inputOf[line]]); cl < best {
				best = cl
			}
		}
	}
	// Inhibit every line outside the best class, then LRG tie-break.
	c.masked.Zero()
	for w, word := range req {
		for word != 0 {
			line := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if int(c.counters[inputOf[line]]) == best {
				c.masked.Set(line)
			}
		}
	}
	win := c.lrg.GrantBits(c.masked)
	if c.audit != nil {
		for w, word := range req {
			for word != 0 {
				line := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				in := inputOf[line]
				c.audit.Observe(in, int(c.counters[in]), line == win)
			}
		}
	}
	return win
}

// Update commits a win by the given line for the given primary input: the
// line's LRG priority drops (LRG is updated even on cycles decided purely
// by class), the input's counter increments, and a saturating counter
// triggers the divide-by-two of every counter in the sub-block.
func (c *CLRG) Update(line, input int) {
	c.lrg.Update(line)
	if c.counters[input] >= c.maxClass {
		for i := range c.counters {
			c.counters[i] /= 2
		}
	}
	c.counters[input]++
}

// Reset restores the as-constructed arbitration state: the line LRG
// returns to its initial order, every input counter clears, and the
// grant-path scratch is zeroed. An attached audit stays attached.
func (c *CLRG) Reset() {
	c.lrg.Reset()
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.masked.Zero()
	c.reqBits.Zero()
}

// LineOrder returns the current LRG order over lines, highest first.
func (c *CLRG) LineOrder() []int { return c.lrg.Order() }

// WLRG implements Weighted LRG for one inter-layer sub-block: the LRG
// priority of a winning line is frozen until the line has won as many
// consecutive arbitrations as it has requestors behind it, so channels
// carrying more contenders receive proportionally more bandwidth (paper
// §III-B3). The weight is recomputed by the local switch every cycle and
// travels with the request — the very traffic that makes the scheme
// infeasible in hardware, which is why Table V omits it.
type WLRG struct {
	lrg  *LRG
	wins []int // consecutive wins since the line last dropped priority
}

// NewWLRG returns a WLRG arbiter over the given number of lines with
// initial order 0 > 1 > ...
func NewWLRG(lines int) *WLRG {
	return &WLRG{lrg: NewLRG(lines), wins: make([]int, lines)}
}

// NewWLRGFromOrder is NewWLRG with an explicit initial priority order.
func NewWLRGFromOrder(order []int) *WLRG {
	return &WLRG{lrg: NewLRGFromOrder(order), wins: make([]int, len(order))}
}

// Lines returns the number of contending lines.
func (w *WLRG) Lines() int { return w.lrg.N() }

// Grant returns the highest-priority requesting line, or -1.
func (w *WLRG) Grant(req []bool) int { return w.lrg.Grant(req) }

// GrantBits is Grant on the bitset request view.
func (w *WLRG) GrantBits(req bitvec.Vec) int { return w.lrg.GrantBits(req) }

// Update commits a win by line whose current weight (requestor count at
// its local switch, >= 1) is weight. The LRG priority drops only after
// weight consecutive wins.
func (w *WLRG) Update(line, weight int) {
	if weight < 1 {
		weight = 1
	}
	w.wins[line]++
	if w.wins[line] >= weight {
		w.wins[line] = 0
		w.lrg.Update(line)
	}
}

// Reset restores the as-constructed arbitration state: the line LRG
// returns to its initial order and all win streaks clear.
func (w *WLRG) Reset() {
	w.lrg.Reset()
	for i := range w.wins {
		w.wins[i] = 0
	}
}

// LineOrder returns the current LRG order over lines, highest first.
func (w *WLRG) LineOrder() []int { return w.lrg.Order() }
