package arb

import (
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/prng"
)

func TestCLRGLowestClassWins(t *testing.T) {
	c := NewCLRG(3, 8, 3)
	inputOf := []int{0, 1, 2}
	// Input 0 wins twice -> class 2; input 1 wins once -> class 1.
	c.Update(0, 0)
	c.Update(0, 0)
	c.Update(1, 1)
	if got := c.Class(0); got != 2 {
		t.Fatalf("class(0) = %d, want 2", got)
	}
	if got := c.Class(1); got != 1 {
		t.Fatalf("class(1) = %d, want 1", got)
	}
	// All three request: input 2 (class 0) must win despite having the
	// lowest LRG priority among lines.
	if w := c.Grant(req(3, 0, 1, 2), inputOf); w != 2 {
		t.Fatalf("winner line %d, want 2", w)
	}
}

func TestCLRGTieBreaksWithLRG(t *testing.T) {
	c := NewCLRGFromOrder([]int{1, 0}, 4, 3)
	inputOf := []int{2, 3} // both class 0
	if w := c.Grant(req(2, 0, 1), inputOf); w != 1 {
		t.Fatalf("winner %d, want line 1 (higher LRG)", w)
	}
}

func TestCLRGLRGUpdatedEvenWhenClassDecides(t *testing.T) {
	// Paper Fig 5 cycle 2: "Even though LRG is not used for this
	// arbitration cycle, it is still updated."
	c := NewCLRGFromOrder([]int{0, 1}, 4, 3)
	c.Update(0, 0) // line 0 wins; LRG order becomes 1 > 0
	if got := c.LineOrder(); got[0] != 1 {
		t.Fatalf("line order %v, want line 1 first", got)
	}
}

func TestCLRGSaturationHalvesAllCounters(t *testing.T) {
	c := NewCLRG(2, 4, 3) // maxClass 2
	c.Update(0, 1)        // input 1 -> 1
	c.Update(0, 0)        // input 0 -> 1
	c.Update(0, 0)        // input 0 -> 2
	c.Update(0, 0)        // saturated: halve (0:2->1, 1:1->0) then increment 0 -> 2
	if got := c.Class(0); got != 2 {
		t.Fatalf("class(0) = %d, want 2", got)
	}
	if got := c.Class(1); got != 0 {
		t.Fatalf("class(1) = %d, want 0 after halving", got)
	}
}

func TestCLRGHalvingPreservesClassOrder(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		c := NewCLRG(4, 6, 3)
		for step := 0; step < 500; step++ {
			before := make([]int, 6)
			for i := range before {
				before[i] = c.Class(i)
			}
			in := src.Intn(6)
			c.Update(src.Intn(4), in)
			// Relative order among non-winning inputs must be preserved
			// (weakly): if a < b before, then a <= b after.
			for a := 0; a < 6; a++ {
				for b := 0; b < 6; b++ {
					if a == in || b == in {
						continue
					}
					if before[a] < before[b] && c.Class(a) > c.Class(b) {
						return false
					}
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCLRGSaturateThenHalveProperty is the §III-B4 update-order property
// test across class counts (including the tight classes=2 case): on
// every Update the counters follow halve-on-saturation-then-increment
// exactly, Class() never exceeds classes-1, and the divide-by-two
// preserves the (weak) relative class order of the non-winning inputs.
func TestCLRGSaturateThenHalveProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, classesRaw, inputsRaw uint8) bool {
		src := prng.New(seed)
		classes := 2 + int(classesRaw)%7
		inputs := 2 + int(inputsRaw)%20
		maxClass := classes - 1
		c := NewCLRG(3, inputs, classes)
		before := make([]int, inputs)
		halvings := 0
		for step := 0; step < 2000 || halvings == 0; step++ {
			if step > 20000 {
				return false // saturation must occur; the counters only grow
			}
			for i := range before {
				before[i] = c.Class(i)
			}
			w := src.Intn(inputs)
			c.Update(src.Intn(3), w)
			saturated := before[w] >= maxClass
			if saturated {
				halvings++
			}
			for i := 0; i < inputs; i++ {
				want := before[i]
				if saturated {
					want /= 2
				}
				if i == w {
					want++
				}
				if got := c.Class(i); got != want {
					return false // update order broke the §III-B4 arithmetic
				}
				if got := c.Class(i); got < 0 || got > maxClass {
					return false // class escaped [0, classes-1]
				}
			}
			// Weak order preservation across the halving, winner aside.
			if saturated {
				for a := 0; a < inputs; a++ {
					for b := 0; b < inputs; b++ {
						if a == w || b == w {
							continue
						}
						if before[a] <= before[b] && c.Class(a) > c.Class(b) {
							return false
						}
					}
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCLRGCountersBounded(t *testing.T) {
	src := prng.New(5)
	c := NewCLRG(3, 8, 3)
	for i := 0; i < 10000; i++ {
		c.Update(src.Intn(3), src.Intn(8))
		for in := 0; in < 8; in++ {
			if cl := c.Class(in); cl < 0 || cl > 2 {
				t.Fatalf("class(%d) = %d out of [0,2]", in, cl)
			}
		}
	}
}

func TestCLRGNoRequestors(t *testing.T) {
	c := NewCLRG(3, 4, 3)
	if w := c.Grant(req(3), []int{0, 1, 2}); w != -1 {
		t.Fatalf("winner %d, want -1", w)
	}
}

// TestCLRGEmptyRoundLeavesStateUntouched pins the empty-request fast
// path: an idle round must return -1 before touching the masked scratch
// or the audit, through both the []bool and the bitset entry points.
func TestCLRGEmptyRoundLeavesStateUntouched(t *testing.T) {
	c := NewCLRG(3, 4, 3)
	audit := obs.NewFairnessAudit(4, 3)
	c.SetAudit(audit)
	inputOf := []int{0, 1, 2}
	// Dirty the masked scratch with a real round first.
	if w := c.Grant(req(3, 1, 2), inputOf); w != 1 {
		t.Fatalf("winner %d, want 1", w)
	}
	saved := append(bitvec.Vec(nil), c.masked...)
	if w := c.Grant(req(3), inputOf); w != -1 {
		t.Fatalf("[]bool idle round granted %d", w)
	}
	if w := c.GrantBits(bitvec.New(3), inputOf); w != -1 {
		t.Fatalf("bitset idle round granted %d", w)
	}
	if !c.masked.Equal(saved) {
		t.Error("idle round touched the masked scratch")
	}
	if rep := audit.Report(); rep.TotalRequests != 2 {
		t.Errorf("audit saw %d observations, want 2 (idle rounds must not audit)", rep.TotalRequests)
	}
}

// TestWLRGNoRequestors pins WLRG's empty-request path on both entry
// points; a later contested round still sees the untouched initial
// priority order.
func TestWLRGNoRequestors(t *testing.T) {
	w := NewWLRG(4)
	if g := w.Grant(req(4)); g != -1 {
		t.Fatalf("[]bool idle round granted %d", g)
	}
	if g := w.GrantBits(bitvec.New(4)); g != -1 {
		t.Fatalf("bitset idle round granted %d", g)
	}
	if g := w.Grant(req(4, 2, 3)); g != 2 {
		t.Fatalf("winner %d, want 2", g)
	}
}

func TestCLRGPanicsOnBadClassCount(t *testing.T) {
	for _, classes := range []int{0, 1, 300} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("classes=%d accepted", classes)
				}
			}()
			NewCLRG(2, 2, classes)
		}()
	}
}

// TestCLRGPaperAdversarialSequence replays the arbitration-cycle walk of
// paper Fig 5 at sub-block granularity: line 0 = C1,4 carrying the L1 LRG
// {15,11,7,3}, line 1 = C2,4 carrying input 20; the interlayer LRG starts
// with C2,4 above C1,4 (as drawn). The winner sequence must be
// {20, 15, 11, 7, 3, 20, ...} — the flat-2D-LRG pattern.
func TestCLRGPaperAdversarialSequence(t *testing.T) {
	sub := NewCLRGFromOrder([]int{1, 0}, 64, 3) // line 1 (C2,4) highest
	localL1 := NewLRGFromOrder([]int{15, 11, 7, 3, 0, 1, 2, 4, 5, 6, 8, 9, 10, 12, 13, 14})
	l1Req := make([]bool, 16)
	for _, i := range []int{3, 7, 11, 15} {
		l1Req[i] = true
	}

	var winners []int
	for cycle := 0; cycle < 10; cycle++ {
		l1Winner := localL1.Grant(l1Req) // contender on C1,4
		inputOf := []int{l1Winner, 20}
		line := sub.Grant(req(2, 0, 1), inputOf)
		winner := inputOf[line]
		winners = append(winners, winner)
		sub.Update(line, winner)
		if line == 0 {
			localL1.Update(l1Winner) // back-propagated local update
		}
	}
	want := []int{20, 15, 11, 7, 3, 20, 15, 11, 7, 3}
	for i := range want {
		if winners[i] != want[i] {
			t.Fatalf("winner sequence %v, want %v", winners, want)
		}
	}
}

func TestWLRGProportionalBandwidth(t *testing.T) {
	// Line 0 represents 4 requestors, line 1 represents 1. Over many
	// cycles line 0 must win ~4x as often.
	w := NewWLRG(2)
	wins := [2]int{}
	for i := 0; i < 1000; i++ {
		line := w.Grant(req(2, 0, 1))
		wins[line]++
		weight := 1
		if line == 0 {
			weight = 4
		}
		w.Update(line, weight)
	}
	if wins[0] != 800 || wins[1] != 200 {
		t.Fatalf("wins %v, want [800 200]", wins)
	}
}

func TestWLRGWeightOneBehavesLikeLRG(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		n := 2 + src.Intn(6)
		w, l := NewWLRG(n), NewLRG(n)
		r := make([]bool, n)
		for step := 0; step < 200; step++ {
			for i := range r {
				r[i] = src.Bernoulli(0.5)
			}
			a, b := w.Grant(r), l.Grant(r)
			if a != b {
				return false
			}
			if a >= 0 {
				w.Update(a, 1)
				l.Update(a)
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWLRGClampsWeight(t *testing.T) {
	w := NewWLRG(2)
	w.Update(0, 0) // weight < 1 clamps to 1: priority must drop immediately
	if got := w.LineOrder(); got[0] != 1 {
		t.Fatalf("order %v, want line 1 first", got)
	}
}

func BenchmarkLRGGrant64(b *testing.B) {
	l := NewLRG(64)
	r := make([]bool, 64)
	for i := 0; i < 64; i += 3 {
		r[i] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := l.Grant(r)
		l.Update(w)
	}
}

func BenchmarkCLRGGrant13(b *testing.B) {
	c := NewCLRG(13, 64, 3)
	r := make([]bool, 13)
	inputOf := make([]int, 13)
	for i := range r {
		r[i] = i%2 == 0
		inputOf[i] = i * 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := c.Grant(r, inputOf)
		c.Update(w, inputOf[w])
	}
}
