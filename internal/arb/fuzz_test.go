package arb

import (
	"testing"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/prng"
)

// FuzzListMatrixEquivalence fuzzes the two LRG implementations with
// arbitrary request streams; any divergence is a bug in one of them.
func FuzzListMatrixEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(4), []byte{0xAA, 0x0F, 0x33})
	f.Add(uint64(7), uint8(13), []byte{0x01, 0xFF, 0x80, 0x42})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, stream []byte) {
		n := 2 + int(nRaw%15)
		list, matrix := NewLRG(n), NewMatrix(n)
		req := make([]bool, n)
		src := prng.New(seed)
		for _, b := range stream {
			for i := range req {
				req[i] = (b>>(uint(i)%8))&1 == 1 && src.Bernoulli(0.9)
			}
			a, bb := list.Grant(req), matrix.Grant(req)
			if a != bb {
				t.Fatalf("list %d vs matrix %d on %v", a, bb, req)
			}
			if a >= 0 {
				list.Update(a)
				matrix.Update(a)
			}
			if !matrix.WellFormed() {
				t.Fatal("matrix lost total order")
			}
		}
	})
}

// boolMatrix is the pre-bitset Matrix implementation, kept verbatim as
// a test-only reference: a nested [][]bool beats table, a per-requestor
// inhibition scan, and an ascending winner search. The word-parallel
// Matrix must agree with it on every request pattern and update
// sequence.
type boolMatrix struct {
	n     int
	beats [][]bool
}

func newBoolMatrix(n int) *boolMatrix {
	m := &boolMatrix{n: n, beats: make([][]bool, n)}
	for i := range m.beats {
		m.beats[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.beats[i][j] = true
		}
	}
	return m
}

func (m *boolMatrix) grant(req []bool) int {
	for i := 0; i < m.n; i++ {
		if !req[i] {
			continue
		}
		inhibited := false
		for j := 0; j < m.n; j++ {
			if j != i && req[j] && m.beats[j][i] {
				inhibited = true
				break
			}
		}
		if !inhibited {
			return i
		}
	}
	return -1
}

func (m *boolMatrix) update(winner int) {
	for j := 0; j < m.n; j++ {
		m.beats[winner][j] = false
		if j != winner {
			m.beats[j][winner] = true
		}
	}
}

// FuzzBitsetMatrixEquivalence pins the word-parallel Matrix kernel to
// the legacy bool-slice formulation: identical grants on every request
// pattern, through both entry points, across arbitrary update
// sequences. Seeds cover the one-word fast path (N=64, N=13) and the
// multi-word path (N up to 130).
func FuzzBitsetMatrixEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(63), []byte{0xAA, 0x0F, 0x33})     // 64 lines: one full word
	f.Add(uint64(7), uint8(12), []byte{0x01, 0xFF, 0x80})     // 13 lines: sub-block shape
	f.Add(uint64(9), uint8(129), []byte{0xC3, 0x3C, 0x55, 0}) // 130 lines: three words
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, stream []byte) {
		n := 1 + int(nRaw)%130
		fast, ref := NewMatrix(n), newBoolMatrix(n)
		req := make([]bool, n)
		reqBits := bitvec.New(n)
		src := prng.New(seed)
		for _, b := range stream {
			for i := range req {
				req[i] = (b>>(uint(i)%8))&1 == 1 && src.Bernoulli(0.8)
			}
			reqBits.FromBools(req)
			a, c := fast.GrantBits(reqBits), ref.grant(req)
			if a != c {
				t.Fatalf("bitset %d vs bool %d on %v", a, c, req)
			}
			if b2 := fast.Grant(req); b2 != a {
				t.Fatalf("Grant %d disagrees with GrantBits %d", b2, a)
			}
			if a >= 0 {
				fast.Update(a)
				ref.update(a)
			}
			if !fast.WellFormed() {
				t.Fatal("matrix lost total order")
			}
		}
	})
}

// grantBitsSizes are the port counts the Grant/GrantBits differential
// fuzzes pin: sub-word (13), one bit short of a word (63), one bit into
// the second word (65), and a ragged third word (130). These cross every
// boundary the wrap-around scan in RoundRobin.GrantBits has to handle.
var grantBitsSizes = []int{13, 63, 65, 130}

// FuzzRoundRobinGrantEquivalence differential-fuzzes RoundRobin.Grant
// against GrantBits at non-multiple-of-64 sizes, forcing the scan
// pointer into every word — in particular into the tail word, and onto
// request patterns whose only set bits lie below the pointer (the
// wrap-around segment of GrantBits).
func FuzzRoundRobinGrantEquivalence(f *testing.F) {
	f.Add(uint64(1), []byte{0xAA, 0x0F, 0x33, 0x80})
	f.Add(uint64(9), []byte{0x01, 0, 0xFF, 0x42, 0x7})
	f.Fuzz(func(t *testing.T, seed uint64, stream []byte) {
		src := prng.New(seed)
		for _, n := range grantBitsSizes {
			r := NewRoundRobin(n)
			req := make([]bool, n)
			reqBits := bitvec.New(n)
			for si, b := range stream {
				// Park the pointer anywhere, including the tail word and
				// the very last slot; the fuzzed byte biases the density
				// so sparse wrap-below-pointer patterns appear often.
				r.next = src.Intn(n)
				if si%3 == 0 {
					r.next = n - 1 - src.Intn(1+n/8) // deep in the tail word
				}
				dens := float64(b) / 255
				for i := range req {
					req[i] = src.Bernoulli(dens)
				}
				if si%4 == 1 {
					// Only bits strictly below the pointer: the pure
					// wrap-around case.
					for i := r.next; i < n; i++ {
						req[i] = false
					}
				}
				reqBits.FromBools(req)
				want := r.Grant(req)
				if got := r.GrantBits(reqBits); got != want {
					t.Fatalf("n=%d next=%d: GrantBits %d vs Grant %d on %v", n, r.next, got, want, req)
				}
				if want >= 0 {
					r.Update(want)
				}
			}
		}
	})
}

// FuzzLRGFixedGrantEquivalence is the same differential for the LRG and
// Fixed arbiters' two grant paths, across update sequences.
func FuzzLRGFixedGrantEquivalence(f *testing.F) {
	f.Add(uint64(2), []byte{0xF0, 0x55, 0x03})
	f.Fuzz(func(t *testing.T, seed uint64, stream []byte) {
		src := prng.New(seed)
		for _, n := range grantBitsSizes {
			lrg, fixed := NewLRG(n), NewFixed(n)
			req := make([]bool, n)
			reqBits := bitvec.New(n)
			for _, b := range stream {
				dens := float64(b) / 255
				for i := range req {
					req[i] = src.Bernoulli(dens)
				}
				reqBits.FromBools(req)
				want := lrg.Grant(req)
				if got := lrg.GrantBits(reqBits); got != want {
					t.Fatalf("n=%d LRG: GrantBits %d vs Grant %d on %v", n, got, want, req)
				}
				if want >= 0 {
					lrg.Update(want)
				}
				fw := fixed.Grant(req)
				if got := fixed.GrantBits(reqBits); got != fw {
					t.Fatalf("n=%d Fixed: GrantBits %d vs Grant %d on %v", n, got, fw, req)
				}
			}
		}
	})
}

// FuzzCLRGNeverGrantsIdle fuzzes CLRG with arbitrary line/input streams:
// the winner must always be a requesting line, counters stay bounded,
// and no-requestor rounds return -1.
func FuzzCLRGNeverGrantsIdle(f *testing.F) {
	f.Add(uint64(3), uint8(5), uint8(20), []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, seed uint64, linesRaw, inputsRaw uint8, stream []byte) {
		lines := 2 + int(linesRaw%12)
		inputs := lines + int(inputsRaw%50)
		c := NewCLRG(lines, inputs, 3)
		req := make([]bool, lines)
		inputOf := make([]int, lines)
		src := prng.New(seed)
		for _, b := range stream {
			any := false
			for i := range req {
				req[i] = (int(b)+i)%3 == 0 && src.Bernoulli(0.8)
				any = any || req[i]
				inputOf[i] = src.Intn(inputs)
			}
			w := c.Grant(req, inputOf)
			if w == -1 {
				if any {
					t.Fatalf("no grant despite requests %v", req)
				}
				continue
			}
			if !req[w] {
				t.Fatalf("granted idle line %d", w)
			}
			c.Update(w, inputOf[w])
			for in := 0; in < inputs; in++ {
				if cl := c.Class(in); cl < 0 || cl > 2 {
					t.Fatalf("class %d out of range", cl)
				}
			}
		}
	})
}
