package arb

// Matrix is the literal hardware formulation of LRG: an antisymmetric
// matrix of priority bits, one per requestor pair, exactly as stored in
// the Swizzle-Switch cross-points (paper §II-A). beats[i][j] means i has
// priority over j for this output.
//
// Matrix exists as a second, independent implementation of the same
// policy; property tests check it agrees with the list-based LRG on every
// request pattern, which is how we gain confidence that LRG models the
// silicon behaviour.
type Matrix struct {
	n     int
	beats [][]bool
}

// NewMatrix returns a matrix LRG arbiter with initial priority order
// 0 > 1 > ... > n-1.
func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n, beats: make([][]bool, n)}
	for i := range m.beats {
		m.beats[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.beats[i][j] = true
		}
	}
	return m
}

// NewMatrixFromOrder returns a matrix arbiter encoding the given priority
// order, order[0] highest.
func NewMatrixFromOrder(order []int) *Matrix {
	m := NewMatrix(len(order))
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			m.beats[order[i]][order[j]] = true
			m.beats[order[j]][order[i]] = false
		}
	}
	return m
}

// N returns the number of requestor slots.
func (m *Matrix) N() int { return m.n }

// Grant returns the requestor that no other requestor beats: in hardware,
// the one whose priority line is not pulled down by anyone.
func (m *Matrix) Grant(req []bool) int {
	for i := 0; i < m.n; i++ {
		if !req[i] {
			continue
		}
		inhibited := false
		for j := 0; j < m.n && !inhibited; j++ {
			if j != i && req[j] && m.beats[j][i] {
				inhibited = true
			}
		}
		if !inhibited {
			return i
		}
	}
	return -1
}

// Update clears the winner's row and sets its column: the winner now loses
// to everyone (least recently granted).
func (m *Matrix) Update(winner int) {
	for j := 0; j < m.n; j++ {
		if j == winner {
			continue
		}
		m.beats[winner][j] = false
		m.beats[j][winner] = true
	}
}

// WellFormed reports whether the matrix encodes a strict total order:
// antisymmetric and transitive. Used by property tests.
func (m *Matrix) WellFormed() bool {
	for i := 0; i < m.n; i++ {
		if m.beats[i][i] {
			return false
		}
		for j := 0; j < m.n; j++ {
			if i != j && m.beats[i][j] == m.beats[j][i] {
				return false
			}
		}
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			for k := 0; k < m.n; k++ {
				if m.beats[i][j] && m.beats[j][k] && i != k && !m.beats[i][k] {
					return false
				}
			}
		}
	}
	return true
}
