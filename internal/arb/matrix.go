package arb

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// Matrix is the literal hardware formulation of LRG: an antisymmetric
// matrix of priority bits, one per requestor pair, exactly as stored in
// the Swizzle-Switch cross-points (paper §II-A). Row i is a bitset:
// bit j of beats[i] means i has priority over j for this output, so a
// whole row of pull-down transistors evaluates as one word operation —
// the same bit-parallelism the silicon gets from its precharged
// priority lines.
//
// Matrix exists as a second, independent implementation of the same
// policy; property tests check it agrees with the list-based LRG on every
// request pattern, which is how we gain confidence that LRG models the
// silicon behaviour.
type Matrix struct {
	n     int
	beats []bitvec.Vec // row i: the set of requestors i beats
	init  []int        // initial order for Reset; nil means identity

	// Scratch, reused per Grant (like the hardware's precharged lines).
	inhibited bitvec.Vec
	reqBits   bitvec.Vec // adapter scratch for the []bool Grant
}

// NewMatrix returns a matrix LRG arbiter with initial priority order
// 0 > 1 > ... > n-1.
func NewMatrix(n int) *Matrix {
	m := &Matrix{
		n:         n,
		beats:     make([]bitvec.Vec, n),
		inhibited: bitvec.New(n),
		reqBits:   bitvec.New(n),
	}
	for i := range m.beats {
		m.beats[i] = bitvec.New(n)
		for j := i + 1; j < n; j++ {
			m.beats[i].Set(j)
		}
	}
	return m
}

// NewMatrixFromOrder returns a matrix arbiter encoding the given priority
// order, order[0] highest.
func NewMatrixFromOrder(order []int) *Matrix {
	m := NewMatrix(len(order))
	m.init = append([]int(nil), order...)
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			m.beats[order[i]].Set(order[j])
			m.beats[order[j]].Clear(order[i])
		}
	}
	return m
}

// Reset restores the initial priority matrix, as if freshly constructed.
func (m *Matrix) Reset() {
	for i := range m.beats {
		m.beats[i].Zero()
	}
	if m.init == nil {
		for i := 0; i < m.n; i++ {
			for j := i + 1; j < m.n; j++ {
				m.beats[i].Set(j)
			}
		}
	} else {
		for i := range m.init {
			for j := i + 1; j < len(m.init); j++ {
				m.beats[m.init[i]].Set(m.init[j])
			}
		}
	}
	m.inhibited.Zero()
	m.reqBits.Zero()
}

// N returns the number of requestor slots.
func (m *Matrix) N() int { return m.n }

// Grant returns the requestor that no other requestor beats: in hardware,
// the one whose priority line is not pulled down by anyone.
func (m *Matrix) Grant(req []bool) int {
	m.reqBits.FromBools(req)
	return m.GrantBits(m.reqBits)
}

// GrantBits is Grant on the bitset request view: the union of the
// requestors' rows is the set of pulled-down lines, and the winner is
// the lowest requestor whose own line stayed high — one masked
// AND-NOT per word.
func (m *Matrix) GrantBits(req bitvec.Vec) int {
	inh := m.inhibited
	inh.Zero()
	for w, word := range req {
		for word != 0 {
			j := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			inh.Or(m.beats[j])
		}
	}
	for w, word := range req {
		if rem := word &^ inh[w]; rem != 0 {
			return w<<6 | bits.TrailingZeros64(rem)
		}
	}
	return -1
}

// Update clears the winner's row and sets its column: the winner now loses
// to everyone (least recently granted).
func (m *Matrix) Update(winner int) {
	m.beats[winner].Zero()
	for j := 0; j < m.n; j++ {
		if j != winner {
			m.beats[j].Set(winner)
		}
	}
}

// WellFormed reports whether the matrix encodes a strict total order:
// antisymmetric and transitive. Used by property tests.
func (m *Matrix) WellFormed() bool {
	for i := 0; i < m.n; i++ {
		if m.beats[i].Get(i) {
			return false
		}
		for j := 0; j < m.n; j++ {
			if i != j && m.beats[i].Get(j) == m.beats[j].Get(i) {
				return false
			}
		}
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			for k := 0; k < m.n; k++ {
				if m.beats[i].Get(j) && m.beats[j].Get(k) && i != k && !m.beats[i].Get(k) {
					return false
				}
			}
		}
	}
	return true
}
