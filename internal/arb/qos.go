package arb

// QoS implements the weighted quality-of-service arbitration the
// Swizzle-Switch silicon supports alongside LRG (paper §II cites the
// ISSCC'12/DAC'12 parts, refs [11][15]): each input holds a programmable
// weight and receives a proportional share of the output's bandwidth
// under contention. The implementation is a smoothed weighted
// round-robin: requestors accrue credit by weight, the richest requestor
// wins (LRG breaking ties), and a win spends the aggregate weight.
//
// QoS does not satisfy the Arbiter interface: its Update needs the
// request mask to know who accrued credit, so the crossbar integrates it
// through NewQoSCrossbarArbiters.
type QoS struct {
	weights []int
	credit  []int64
	lrg     *LRG
}

// NewQoS returns a QoS arbiter with the given per-requestor weights
// (all must be positive).
func NewQoS(weights []int) *QoS {
	for _, w := range weights {
		if w <= 0 {
			panic("arb: QoS weights must be positive")
		}
	}
	return &QoS{
		weights: append([]int(nil), weights...),
		credit:  make([]int64, len(weights)),
		lrg:     NewLRG(len(weights)),
	}
}

// N returns the number of requestor slots.
func (q *QoS) N() int { return len(q.weights) }

// Grant returns the requestor with the most credit among req, breaking
// ties by LRG. State is not modified.
func (q *QoS) Grant(req []bool) int {
	best := int64(-1 << 62)
	for i, r := range req {
		if r && q.credit[i] > best {
			best = q.credit[i]
		}
	}
	winner := -1
	for _, i := range q.lrg.Order() {
		if req[i] && q.credit[i] == best {
			winner = i
			break
		}
	}
	return winner
}

// Commit records one arbitration round: every requestor accrues its
// weight, and the winner (if any) pays the total accrued this round, so
// long-run shares under backlog converge to the weight ratios.
func (q *QoS) Commit(req []bool, winner int) {
	var total int64
	for i, r := range req {
		if r {
			q.credit[i] += int64(q.weights[i])
			total += int64(q.weights[i])
		}
	}
	if winner >= 0 {
		q.credit[winner] -= total
		q.lrg.Update(winner)
	}
}

// Reset clears all accrued credit and restores the tie-break LRG, as if
// freshly constructed. Configured weights are kept.
func (q *QoS) Reset() {
	for i := range q.credit {
		q.credit[i] = 0
	}
	q.lrg.Reset()
}

// Weight returns requestor i's configured weight.
func (q *QoS) Weight(i int) int { return q.weights[i] }

// qosAdapter exposes a QoS arbiter through the Arbiter interface by
// remembering the last granted request mask. Grant/Update must be called
// in the crossbar's strict grant-then-update order.
type qosAdapter struct {
	q       *QoS
	lastReq []bool
	granted bool
}

// NewQoSArbiter wraps weights into an Arbiter usable by
// crossbar.NewWithArbiters. Each output gets its own instance.
func NewQoSArbiter(weights []int) Arbiter {
	return &qosAdapter{q: NewQoS(weights), lastReq: make([]bool, len(weights))}
}

// N returns the number of requestor slots.
func (a *qosAdapter) N() int { return a.q.N() }

// Grant snapshots the request mask and returns the QoS winner. A round
// with no winner still accrues credit, committed lazily at the next
// Grant.
func (a *qosAdapter) Grant(req []bool) int {
	if a.granted {
		// Previous round ended without an Update: nobody won, but the
		// requestors still accrued credit.
		a.q.Commit(a.lastReq, -1)
	}
	copy(a.lastReq, req)
	a.granted = true
	return a.q.Grant(req)
}

// Update commits the winner for the mask captured at Grant.
func (a *qosAdapter) Update(winner int) {
	a.q.Commit(a.lastReq, winner)
	a.granted = false
}

// Reset restores the as-constructed state: credit and the captured
// request mask clear, and any uncommitted round is dropped.
func (a *qosAdapter) Reset() {
	a.q.Reset()
	for i := range a.lastReq {
		a.lastReq[i] = false
	}
	a.granted = false
}
