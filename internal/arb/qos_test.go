package arb

import (
	"math"
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

func TestQoSProportionalShares(t *testing.T) {
	weights := []int{1, 2, 4, 1}
	q := NewQoS(weights)
	all := req(4, 0, 1, 2, 3)
	wins := make([]int, 4)
	const rounds = 8000
	for i := 0; i < rounds; i++ {
		w := q.Grant(all)
		wins[w]++
		q.Commit(all, w)
	}
	total := 8.0
	for i, w := range weights {
		want := float64(w) / total
		got := float64(wins[i]) / rounds
		if math.Abs(got-want) > 0.01 {
			t.Errorf("requestor %d share %.3f, want %.3f", i, got, want)
		}
	}
}

func TestQoSIdleRequestorAccruesNothing(t *testing.T) {
	// A requestor that never asks must not bank credit and then starve
	// others when it returns.
	q := NewQoS([]int{1, 1})
	only0 := req(2, 0)
	for i := 0; i < 100; i++ {
		q.Commit(only0, q.Grant(only0))
	}
	both := req(2, 0, 1)
	wins := make([]int, 2)
	for i := 0; i < 100; i++ {
		w := q.Grant(both)
		wins[w]++
		q.Commit(both, w)
	}
	if wins[1] > 60 {
		t.Errorf("returning requestor won %d/100; idle time must not bank credit", wins[1])
	}
}

func TestQoSSoleRequestorWins(t *testing.T) {
	q := NewQoS([]int{3, 5})
	if w := q.Grant(req(2, 1)); w != 1 {
		t.Fatalf("winner %d", w)
	}
	if w := q.Grant(req(2)); w != -1 {
		t.Fatalf("empty grant %d", w)
	}
}

func TestQoSPanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQoS([]int{1, 0})
}

func TestQoSEqualWeightsDegradeToFair(t *testing.T) {
	src := prng.New(4)
	q := NewQoS([]int{2, 2, 2})
	wins := make([]int, 3)
	all := req(3, 0, 1, 2)
	for i := 0; i < 3000; i++ {
		w := q.Grant(all)
		wins[w]++
		q.Commit(all, w)
		_ = src
	}
	for i, w := range wins {
		if w != 1000 {
			t.Errorf("requestor %d won %d, want exactly 1000 under equal weights", i, w)
		}
	}
}

func TestQoSAdapterInterface(t *testing.T) {
	a := NewQoSArbiter([]int{1, 3})
	if a.N() != 2 {
		t.Fatal("N wrong")
	}
	wins := make([]int, 2)
	both := req(2, 0, 1)
	for i := 0; i < 400; i++ {
		w := a.Grant(both)
		wins[w]++
		a.Update(w)
	}
	if math.Abs(float64(wins[1])/400-0.75) > 0.02 {
		t.Errorf("weight-3 share %.3f, want 0.75", float64(wins[1])/400)
	}
}

func TestQoSAdapterLazyCommitOnNoWinner(t *testing.T) {
	a := NewQoSArbiter([]int{1, 1})
	// Grant with no requestors returns -1 and no Update follows; the
	// next Grant must still work.
	if w := a.Grant(req(2)); w != -1 {
		t.Fatalf("got %d", w)
	}
	if w := a.Grant(req(2, 1)); w != 1 {
		t.Fatalf("got %d", w)
	}
	a.Update(1)
}
