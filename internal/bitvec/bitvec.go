// Package bitvec provides the word-parallel bitset kernel behind every
// arbitration hot path in this repository. A Vec packs one bit per
// requestor into []uint64 words, so the request-vector operations the
// switch models run every simulated cycle — clear, set, mask, first-set
// — cost one machine-word operation per 64 requestors instead of one
// bool operation per requestor. This is the software analogue of the
// Swizzle-Switch arbiter's bit-parallelism (paper §II-A): the hardware
// evaluates all priority lines at once, and the model evaluates a word
// of them at once.
//
// Every mutating operation preserves the invariant that bits at or
// beyond the vector's logical length are zero, provided callers only
// Set bits below it (SetFirstN masks the tail explicitly). Binary
// operations require equal word counts and panic otherwise via the
// runtime's bounds checks.
//
// Hot loops iterate set bits without closures:
//
//	for w, word := range v {
//		for word != 0 {
//			i := w<<6 | bits.TrailingZeros64(word)
//			word &= word - 1
//			... use i ...
//		}
//	}
//
// Single-word vectors (N ≤ 64, every radix-64 column and every
// sub-block in the paper's configurations) take explicit len==1 fast
// paths that collapse each operation to one untaken-branch word op.
package bitvec

import "math/bits"

// Vec is a little-endian bitset: bit i lives in word i/64 at position
// i%64.
type Vec []uint64

// WordsFor returns the number of 64-bit words needed for n bits.
func WordsFor(n int) int { return (n + 63) >> 6 }

// New returns a zeroed vector with capacity for n bits.
func New(n int) Vec { return make(Vec, WordsFor(n)) }

// Set sets bit i.
func (v Vec) Set(i int) { v[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (v Vec) Clear(i int) { v[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool { return v[i>>6]>>(uint(i)&63)&1 != 0 }

// SetTo sets bit i to b.
func (v Vec) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Zero clears every bit.
func (v Vec) Zero() {
	if len(v) == 1 {
		v[0] = 0
		return
	}
	for i := range v {
		v[i] = 0
	}
}

// SetFirstN sets bits [0, n) and clears the rest. n must fit in v.
func (v Vec) SetFirstN(n int) {
	if len(v) == 1 {
		v[0] = tailMask(n)
		return
	}
	full := n >> 6
	for i := 0; i < full; i++ {
		v[i] = ^uint64(0)
	}
	if full < len(v) {
		v[full] = tailMask(n & 63)
		for i := full + 1; i < len(v); i++ {
			v[i] = 0
		}
	}
}

// tailMask returns a mask of the low n bits, n in [0, 64].
func tailMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// Any reports whether any bit is set.
func (v Vec) Any() bool {
	if len(v) == 1 {
		return v[0] != 0
	}
	for _, w := range v {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (v Vec) None() bool { return !v.Any() }

// Count returns the number of set bits.
func (v Vec) Count() int {
	if len(v) == 1 {
		return bits.OnesCount64(v[0])
	}
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// First returns the index of the lowest set bit, or -1.
func (v Vec) First() int {
	if len(v) == 1 {
		if v[0] == 0 {
			return -1
		}
		return bits.TrailingZeros64(v[0])
	}
	for i, w := range v {
		if w != 0 {
			return i<<6 | bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextWrap returns the index of the first set bit at or after start,
// wrapping past the end of the vector back to bit 0, or -1 if no bit is
// set. start must lie in [0, 64*len(v)). It is the rotating-priority
// selection primitive of the round-robin schedulers (internal/sched): a
// pointer at start picks NextWrap(start), and advancing the pointer
// rotates which contender is favoured.
func (v Vec) NextWrap(start int) int {
	sw, off := start>>6, start&63
	if len(v) == 1 {
		w := v[0]
		if hi := w &^ tailMask(off); hi != 0 {
			return bits.TrailingZeros64(hi)
		}
		if w == 0 {
			return -1
		}
		return bits.TrailingZeros64(w)
	}
	if hi := v[sw] &^ tailMask(off); hi != 0 {
		return sw<<6 | bits.TrailingZeros64(hi)
	}
	for i := sw + 1; i < len(v); i++ {
		if v[i] != 0 {
			return i<<6 | bits.TrailingZeros64(v[i])
		}
	}
	for i := 0; i < sw; i++ {
		if v[i] != 0 {
			return i<<6 | bits.TrailingZeros64(v[i])
		}
	}
	if lo := v[sw] & tailMask(off); lo != 0 {
		return sw<<6 | bits.TrailingZeros64(lo)
	}
	return -1
}

// Or sets v to v | b. b must have the same word count.
func (v Vec) Or(b Vec) {
	if len(v) == 1 {
		v[0] |= b[0]
		return
	}
	for i, w := range b {
		v[i] |= w
	}
}

// And sets v to v & b. b must have the same word count.
func (v Vec) And(b Vec) {
	if len(v) == 1 {
		v[0] &= b[0]
		return
	}
	for i, w := range b {
		v[i] &= w
	}
}

// AndNot sets v to v &^ b. b must have the same word count.
func (v Vec) AndNot(b Vec) {
	if len(v) == 1 {
		v[0] &^= b[0]
		return
	}
	for i, w := range b {
		v[i] &^= w
	}
}

// Copy overwrites v with b. b must have the same word count.
func (v Vec) Copy(b Vec) {
	if len(v) == 1 {
		v[0] = b[0]
		return
	}
	copy(v, b)
}

// Equal reports whether v and b hold identical bits. b must have the
// same word count.
func (v Vec) Equal(b Vec) bool {
	if len(v) == 1 {
		return v[0] == b[0]
	}
	for i, w := range v {
		if w != b[i] {
			return false
		}
	}
	return true
}

// FromBools overwrites v with the bits of req; words beyond len(req)
// are cleared. len(req) must fit in v.
func (v Vec) FromBools(req []bool) {
	v.Zero()
	for i, r := range req {
		if r {
			v.Set(i)
		}
	}
}

// FillBools writes bits [0, len(dst)) of v into dst.
func (v Vec) FillBools(dst []bool) {
	for i := range dst {
		dst[i] = v.Get(i)
	}
}

// ForEach calls fn for every set bit in ascending order. Hot paths
// should inline the word loop instead (see the package comment); this
// helper is for tests and cold call sites.
func (v Vec) ForEach(fn func(i int)) {
	for w, word := range v {
		for word != 0 {
			fn(w<<6 | bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
