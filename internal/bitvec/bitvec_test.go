package bitvec

import (
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/prng"
)

// refBits is the []bool reference model every Vec operation is checked
// against.
type refBits []bool

func (r refBits) toVec() Vec {
	v := New(len(r))
	v.FromBools(r)
	return v
}

func (r refBits) first() int {
	for i, b := range r {
		if b {
			return i
		}
	}
	return -1
}

func (r refBits) count() int {
	n := 0
	for _, b := range r {
		if b {
			n++
		}
	}
	return n
}

// randomRef returns a random bool slice of length n with the given set
// density.
func randomRef(src *prng.Source, n int, p float64) refBits {
	r := make(refBits, n)
	for i := range r {
		r[i] = src.Bernoulli(p)
	}
	return r
}

// TestVecMatchesBoolReference drives every operation against the bool
// model across sizes spanning the single-word fast path (N ≤ 64), the
// exact word boundary, and multi-word vectors.
func TestVecMatchesBoolReference(t *testing.T) {
	src := prng.New(42)
	for _, n := range []int{1, 13, 31, 63, 64, 65, 127, 128, 130, 200} {
		for trial := 0; trial < 50; trial++ {
			a := randomRef(src, n, 0.4)
			b := randomRef(src, n, 0.4)
			va, vb := a.toVec(), b.toVec()

			for i := 0; i < n; i++ {
				if va.Get(i) != a[i] {
					t.Fatalf("n=%d Get(%d)=%v want %v", n, i, va.Get(i), a[i])
				}
			}
			if va.Count() != a.count() {
				t.Fatalf("n=%d Count()=%d want %d", n, va.Count(), a.count())
			}
			if va.First() != a.first() {
				t.Fatalf("n=%d First()=%d want %d", n, va.First(), a.first())
			}
			if va.Any() != (a.count() > 0) || va.None() != (a.count() == 0) {
				t.Fatalf("n=%d Any/None disagree with count %d", n, a.count())
			}

			check := func(op string, got Vec, want func(x, y bool) bool) {
				t.Helper()
				for i := 0; i < n; i++ {
					if got.Get(i) != want(a[i], b[i]) {
						t.Fatalf("n=%d %s bit %d: got %v", n, op, i, got.Get(i))
					}
				}
			}
			or := a.toVec()
			or.Or(vb)
			check("or", or, func(x, y bool) bool { return x || y })
			and := a.toVec()
			and.And(vb)
			check("and", and, func(x, y bool) bool { return x && y })
			andNot := a.toVec()
			andNot.AndNot(vb)
			check("andnot", andNot, func(x, y bool) bool { return x && !y })

			cp := New(n)
			cp.Copy(va)
			if !cp.Equal(va) {
				t.Fatalf("n=%d Copy not Equal", n)
			}
			if cp.Equal(vb) != eqRef(a, b) {
				t.Fatalf("n=%d Equal disagrees with reference", n)
			}

			var seen []int
			va.ForEach(func(i int) { seen = append(seen, i) })
			want := setIndices(a)
			if len(seen) != len(want) {
				t.Fatalf("n=%d ForEach visited %v want %v", n, seen, want)
			}
			for i := range want {
				if seen[i] != want[i] {
					t.Fatalf("n=%d ForEach order %v want %v", n, seen, want)
				}
			}

			dst := make([]bool, n)
			va.FillBools(dst)
			for i := range dst {
				if dst[i] != a[i] {
					t.Fatalf("n=%d FillBools bit %d", n, i)
				}
			}
		}
	}
}

func eqRef(a, b refBits) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func setIndices(r refBits) []int {
	var idx []int
	for i, b := range r {
		if b {
			idx = append(idx, i)
		}
	}
	return idx
}

// TestSetClearTo checks single-bit mutation at word boundaries and that
// tail bits beyond the logical length stay zero under SetFirstN.
func TestSetClearTo(t *testing.T) {
	for _, n := range []int{1, 64, 65, 129} {
		v := New(n)
		for _, i := range []int{0, n / 2, n - 1} {
			v.Set(i)
			if !v.Get(i) {
				t.Fatalf("n=%d Set(%d) lost", n, i)
			}
			v.Clear(i)
			if v.Get(i) {
				t.Fatalf("n=%d Clear(%d) stuck", n, i)
			}
			v.SetTo(i, true)
			if !v.Get(i) {
				t.Fatalf("n=%d SetTo(%d,true) lost", n, i)
			}
			v.SetTo(i, false)
			if v.Get(i) {
				t.Fatalf("n=%d SetTo(%d,false) stuck", n, i)
			}
		}
	}
}

func TestSetFirstN(t *testing.T) {
	for _, n := range []int{0, 1, 13, 63, 64, 65, 128, 130} {
		v := make(Vec, WordsFor(n)+1) // one spare word to catch overruns
		for i := range v {
			v[i] = ^uint64(0)
		}
		v.SetFirstN(n)
		if got := v.Count(); got != n {
			t.Fatalf("SetFirstN(%d) set %d bits", n, got)
		}
		for i := 0; i < n; i++ {
			if !v.Get(i) {
				t.Fatalf("SetFirstN(%d) missed bit %d", n, i)
			}
		}
	}
}

func TestZeroAndWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d)=%d want %d", n, got, want)
		}
	}
	v := New(130)
	v.SetFirstN(130)
	v.Zero()
	if v.Any() {
		t.Fatal("Zero left bits set")
	}
}

// nextWrapRef is the obvious O(n) model of NextWrap.
func (r refBits) nextWrap(start int) int {
	for k := 0; k < len(r); k++ {
		i := (start + k) % len(r)
		if r[i] {
			return i
		}
	}
	return -1
}

// TestNextWrapMatchesReference checks the rotating-priority scan against
// the bool model at every start position, across the single-word fast
// path, word boundaries, and multi-word vectors, including the empty and
// the full vector.
func TestNextWrapMatchesReference(t *testing.T) {
	src := prng.New(7)
	for _, n := range []int{1, 13, 31, 63, 64, 65, 127, 128, 130, 200} {
		for _, p := range []float64{0, 0.05, 0.4, 1} {
			for trial := 0; trial < 20; trial++ {
				ref := randomRef(src, n, p)
				v := ref.toVec()
				for start := 0; start < n; start++ {
					if got, want := v.NextWrap(start), ref.nextWrap(start); got != want {
						t.Fatalf("n=%d p=%v NextWrap(%d)=%d want %d (bits %v)",
							n, p, start, got, want, setIndices(ref))
					}
				}
			}
		}
	}
}

// TestFromBoolsRoundTrip is the property the arbiter adapters rely on:
// converting any request mask to a Vec and back is the identity.
func TestFromBoolsRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		src := prng.New(seed)
		n := 1 + int(nRaw)%130
		ref := randomRef(src, n, 0.5)
		v := New(n)
		v.FromBools(ref)
		out := make([]bool, n)
		v.FillBools(out)
		for i := range ref {
			if out[i] != ref[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
