// Package cache implements the memory-hierarchy substrate of the
// paper's system evaluation (Table III): set-associative caches with LRU
// replacement, write-back dirty tracking, and miss-status holding
// registers (MSHRs) with request merging.
//
// The many-core model (internal/manycore) characterizes workloads by
// MPKI, exactly as the paper's Table VI does; this package closes the
// loop by showing those MPKIs are realizable by real tag arrays: the
// cache-mpki experiment drives synthetic address streams through the
// Table III L1 and measures the same miss rates the catalog asserts.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// BlockBytes is the line size.
	BlockBytes int
}

// L1D returns the paper's per-core L1: 32 KB, 4-way, 64 B blocks.
func L1D() Config { return Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64} }

// L2Bank returns one bank of the shared L2: 256 KB, 16-way, 64 B blocks.
func L2Bank() Config { return Config{SizeBytes: 256 << 10, Ways: 16, BlockBytes: 64} }

func (c Config) validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	case c.SizeBytes%(c.Ways*c.BlockBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*block", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses   int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, write-back, LRU cache.
type Cache struct {
	cfg        Config
	sets       int
	blockShift uint
	setMask    uint64
	tags       [][]uint64
	valid      [][]bool
	dirty      [][]bool
	order      [][]int // way indices, MRU first
	stats      Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		tags:    make([][]uint64, sets),
		valid:   make([][]bool, sets),
		dirty:   make([][]bool, sets),
		order:   make([][]int, sets),
	}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blockShift++
	}
	for s := 0; s < sets; s++ {
		c.tags[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.dirty[s] = make([]bool, cfg.Ways)
		c.order[s] = make([]int, cfg.Ways)
		for w := range c.order[s] {
			c.order[s][w] = w
		}
	}
	return c, nil
}

// Result reports one access.
type Result struct {
	// Hit is true when the block was present.
	Hit bool
	// Evicted holds the victim block's address when a valid line was
	// replaced.
	Evicted uint64
	// Writeback is true when the victim was dirty.
	Writeback bool
}

// Block returns the block address (line-aligned) of an address.
func (c *Cache) Block(addr uint64) uint64 { return addr >> c.blockShift << c.blockShift }

// touch moves way to MRU position in set s.
func (c *Cache) touch(s, way int) {
	ord := c.order[s]
	for i, w := range ord {
		if w == way {
			copy(ord[1:i+1], ord[:i])
			ord[0] = way
			return
		}
	}
}

// Access performs one read or write, filling on miss and returning the
// eviction outcome.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.stats.Accesses++
	block := addr >> c.blockShift
	set := int(block & c.setMask)
	// The stored tag is the full block id; comparing it subsumes the
	// usual tag/set split.
	tag := block
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.touch(set, w)
			if write {
				c.dirty[set][w] = true
			}
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Fill into the LRU way.
	victim := c.order[set][c.cfg.Ways-1]
	res := Result{}
	if c.valid[set][victim] {
		c.stats.Evictions++
		res.Evicted = c.tags[set][victim] << c.blockShift
		if c.dirty[set][victim] {
			c.stats.Writebacks++
			res.Writeback = true
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.dirty[set][victim] = write
	c.touch(set, victim)
	return res
}

// Contains reports whether the block holding addr is cached, without
// disturbing LRU state.
func (c *Cache) Contains(addr uint64) bool {
	block := addr >> c.blockShift
	set := int(block & c.setMask)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == block {
			return true
		}
	}
	return false
}

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the set count.
func (c *Cache) Sets() int { return c.sets }
