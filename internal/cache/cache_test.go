package cache

import (
	"math"
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tiny() Config { return Config{SizeBytes: 512, Ways: 2, BlockBytes: 64} } // 4 sets

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2, BlockBytes: 64},
		{SizeBytes: 512, Ways: 0, BlockBytes: 64},
		{SizeBytes: 512, Ways: 2, BlockBytes: 48}, // not power of two
		{SizeBytes: 500, Ways: 2, BlockBytes: 64}, // not divisible
		{SizeBytes: 384, Ways: 2, BlockBytes: 64}, // 3 sets
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(L1D()); err != nil {
		t.Errorf("Table III L1 rejected: %v", err)
	}
	if _, err := New(L2Bank()); err != nil {
		t.Errorf("Table III L2 bank rejected: %v", err)
	}
}

func TestTableIIIGeometries(t *testing.T) {
	l1 := mustNew(t, L1D())
	if l1.Sets() != 128 { // 32KB / (4 * 64B)
		t.Errorf("L1 sets %d, want 128", l1.Sets())
	}
	l2 := mustNew(t, L2Bank())
	if l2.Sets() != 256 { // 256KB / (16 * 64B)
		t.Errorf("L2 sets %d, want 256", l2.Sets())
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustNew(t, tiny())
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x1004, false); !r.Hit {
		t.Fatal("same-block access missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustNew(t, tiny()) // 2 ways, 4 sets: set stride = 256 bytes
	// Three blocks mapping to set 0: block addresses 0, 256, 512.
	c.Access(0, false)
	c.Access(256, false)
	c.Access(0, false)        // 0 becomes MRU; LRU is 256
	r := c.Access(512, false) // evicts 256
	if r.Hit || r.Evicted != 256 {
		t.Fatalf("expected eviction of 256, got %+v", r)
	}
	if !c.Contains(0) || c.Contains(256) || !c.Contains(512) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, tiny())
	c.Access(0, true) // dirty
	c.Access(256, false)
	r := c.Access(512, false) // evicts 0 (LRU), which is dirty
	if !r.Writeback || r.Evicted != 0 {
		t.Fatalf("expected dirty writeback of block 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writeback count %d", c.Stats().Writebacks)
	}
	// Clean eviction produces no writeback.
	c2 := mustNew(t, tiny())
	c2.Access(0, false)
	c2.Access(256, false)
	if r := c2.Access(512, false); r.Writeback {
		t.Fatal("clean eviction flagged writeback")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mustNew(t, tiny())
	c.Access(0, false)
	c.Access(0, true) // write hit dirties the line
	c.Access(256, false)
	if r := c.Access(512, false); !r.Writeback {
		t.Fatal("write-hit line evicted without writeback")
	}
}

func TestConflictThrashing(t *testing.T) {
	// ways+1 blocks cycling through one set under LRU miss every time.
	c := mustNew(t, tiny())
	blocks := []uint64{0, 256, 512}
	for i := 0; i < 30; i++ {
		if r := c.Access(blocks[i%3], false); i >= 3 && r.Hit {
			t.Fatalf("access %d hit; LRU must thrash on ways+1 cycle", i)
		}
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := mustNew(t, tiny())
	c.Access(0, false)
	c.Access(256, false) // LRU order: 256 MRU, 0 LRU
	if !c.Contains(0) {
		t.Fatal("contains failed")
	}
	// If Contains had touched block 0, 256 would now be the victim.
	if r := c.Access(512, false); r.Evicted != 0 {
		t.Fatalf("evicted %d, want 0: Contains must not update LRU", r.Evicted)
	}
}

func TestMSHRMergeAndFill(t *testing.T) {
	m := NewMSHRFile(2)
	if primary, ok := m.Allocate(0x40); !primary || !ok {
		t.Fatal("first miss should allocate")
	}
	if primary, ok := m.Allocate(0x40); primary || !ok {
		t.Fatal("secondary miss should merge")
	}
	if m.Outstanding() != 1 || m.Merges() != 1 {
		t.Fatalf("outstanding %d merges %d", m.Outstanding(), m.Merges())
	}
	m.Allocate(0x80)
	if !m.Full() {
		t.Fatal("file should be full")
	}
	if _, ok := m.Allocate(0xC0); ok {
		t.Fatal("allocation beyond capacity accepted")
	}
	if n := m.Fill(0x40); n != 2 {
		t.Fatalf("fill returned %d waiters, want 2", n)
	}
	if m.Full() {
		t.Fatal("still full after fill")
	}
	if n := m.Fill(0x999); n != 0 {
		t.Fatalf("fill of unknown block returned %d", n)
	}
	if m.Peak() != 2 {
		t.Fatalf("peak %d", m.Peak())
	}
}

func TestMSHRPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMSHRFile(0)
}

// TestProfileCalibration is the substrate-validation property: for a
// range of target miss rates, ForMissRate builds an address stream whose
// measured miss rate on the real Table III L1 lands near the target.
func TestProfileCalibration(t *testing.T) {
	for _, target := range []float64{0.02, 0.1, 0.3, 0.57} {
		p := ForMissRate(target, L1D())
		got, err := MeasureMissRate(p, L1D(), 400000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-target) > 0.25*target+0.01 {
			t.Errorf("target %.2f: measured %.3f", target, got)
		}
	}
}

func TestProfileEdges(t *testing.T) {
	stream := ForMissRate(1.0, L1D())
	got, err := MeasureMissRate(stream, L1D(), 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A pure sequential walk misses once per block: 64B blocks, 4B
	// strides -> 1/16 miss rate is the floor for streaming without
	// re-reference... the generator walks 4B words, so expect ~1/16.
	if got < 0.05 || got > 0.08 {
		t.Errorf("stream profile miss rate %.3f, want ~1/16", got)
	}
	tiny := ForMissRate(0, L1D())
	got, err = MeasureMissRate(tiny, L1D(), 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.005 {
		t.Errorf("resident profile miss rate %.4f, want ~0", got)
	}
}

// TestForMissRatesRealizesL2Ratio checks the two-region profile: driven
// through a real L1+L2 pair, both the L1 miss rate and the fraction of
// L1 misses continuing to memory should land near their targets.
func TestForMissRatesRealizesL2Ratio(t *testing.T) {
	const l1Target, l2Ratio = 0.15, 0.5
	p, err := CalibrateProfile(l1Target, l2Ratio, L1D(), 5)
	if err != nil {
		t.Fatal(err)
	}
	l1 := mustNew(t, L1D())
	// An L2 big enough to hold the near working set but not the far
	// region, as the banked L2 does in aggregate.
	l2 := mustNew(t, Config{SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64})
	rng := prng.New(21)
	const refs = 400000
	for i := 0; i < refs; i++ { // warm
		addr := p.Next(rng)
		if !l1.Access(addr, false).Hit {
			l2.Access(addr, false)
		}
	}
	var l1Miss, l2Miss int64
	for i := 0; i < refs; i++ {
		addr := p.Next(rng)
		if !l1.Access(addr, false).Hit {
			l1Miss++
			if !l2.Access(addr, false).Hit {
				l2Miss++
			}
		}
	}
	gotL1 := float64(l1Miss) / refs
	gotL2 := float64(l2Miss) / float64(l1Miss)
	if math.Abs(gotL1-l1Target) > 0.25*l1Target {
		t.Errorf("L1 miss rate %.3f, target %.3f", gotL1, l1Target)
	}
	if math.Abs(gotL2-l2Ratio) > 0.25*l2Ratio {
		t.Errorf("L2 miss ratio %.3f, target %.3f", gotL2, l2Ratio)
	}
}

func TestForMissRatesZeroRatioDegrades(t *testing.T) {
	a := ForMissRates(0.2, 0, L1D())
	b := ForMissRate(0.2, L1D())
	if a != b {
		t.Error("zero L2 ratio should degrade to the single-region profile")
	}
}

func TestL2FiltersL1Misses(t *testing.T) {
	// A working set that thrashes the L1 but fits the L2 bank must show
	// a high L1 miss rate and near-zero L2 miss rate — the hierarchy
	// doing its job.
	l1 := mustNew(t, L1D())
	l2 := mustNew(t, L2Bank())
	p := Profile{WorkingSetBytes: 128 << 10} // 128 KB: 4x L1, half an L2 bank
	rng := prng.New(9)
	var l1Miss, l2Miss, l2Acc int64
	const refs = 300000
	for i := 0; i < refs; i++ {
		addr := p.Next(rng)
		if !l1.Access(addr, false).Hit {
			l1Miss++
			l2Acc++
			if !l2.Access(addr, false).Hit {
				l2Miss++
			}
		}
	}
	l1Rate := float64(l1Miss) / refs
	l2Rate := float64(l2Miss) / float64(l2Acc)
	if l1Rate < 0.5 {
		t.Errorf("L1 miss rate %.3f, expected thrashing (~0.75)", l1Rate)
	}
	if l2Rate > 0.05 {
		t.Errorf("L2 miss rate %.3f, expected near-zero for a resident set", l2Rate)
	}
}

func BenchmarkL1Access(b *testing.B) {
	c, err := New(L1D())
	if err != nil {
		b.Fatal(err)
	}
	p := ForMissRate(0.1, L1D())
	rng := prng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(p.Next(rng), false)
	}
}
