package cache

// MSHRFile models miss-status holding registers: a bounded set of
// outstanding miss entries, with secondary misses to the same block
// merging into the existing entry rather than allocating a new one
// (Table III gives each cache 32 MSHRs).
type MSHRFile struct {
	cap     int
	entries map[uint64]int // block address -> merged requestor count
	merges  int64
	peak    int
}

// NewMSHRFile returns an MSHR file with the given entry budget.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHRFile{cap: capacity, entries: make(map[uint64]int)}
}

// Allocate registers a miss on block. It returns (primary, ok): ok is
// false when the file is full and no existing entry matches (the miss
// must stall); primary is true when this miss allocated a new entry (and
// so must issue a fill request), false when it merged.
func (m *MSHRFile) Allocate(block uint64) (primary, ok bool) {
	if n, exists := m.entries[block]; exists {
		m.entries[block] = n + 1
		m.merges++
		return false, true
	}
	if len(m.entries) >= m.cap {
		return false, false
	}
	m.entries[block] = 1
	if len(m.entries) > m.peak {
		m.peak = len(m.entries)
	}
	return true, true
}

// Fill completes the miss on block, returning how many requestors were
// waiting (0 if the block had no entry).
func (m *MSHRFile) Fill(block uint64) int {
	n := m.entries[block]
	delete(m.entries, block)
	return n
}

// Outstanding returns the number of live entries.
func (m *MSHRFile) Outstanding() int { return len(m.entries) }

// Full reports whether a new (non-mergeable) miss would stall.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.cap }

// Merges returns how many secondary misses merged so far.
func (m *MSHRFile) Merges() int64 { return m.merges }

// Peak returns the high-water mark of live entries.
func (m *MSHRFile) Peak() int { return m.peak }
