package cache

import (
	"github.com/reprolab/hirise/internal/prng"
)

// Profile is a synthetic memory-reference generator with the two
// ingredients that set a workload's miss rate: a resident working set
// and a streaming component. It stands in for the paper's Pin traces:
// given a target L1 miss rate, ForMissRate sizes the working set so a
// real LRU cache reproduces it.
type Profile struct {
	// WorkingSetBytes is the span of the randomly re-referenced region.
	WorkingSetBytes uint64
	// StreamFraction of references walk sequentially through a large
	// region instead (compulsory misses once per block).
	StreamFraction float64
	// FarFraction of references land uniformly in a FarBytes region too
	// large for any cache level — they miss L1 and L2 alike, producing
	// memory traffic with the workload's L2 miss ratio.
	FarFraction float64
	// FarBytes sizes the far region (default 1 GiB when FarFraction is
	// set).
	FarBytes uint64
	// BlockBytes aligns the stream walk (use the cache's block size).
	BlockBytes uint64

	streamPos uint64
}

// Next returns the next reference address.
func (p *Profile) Next(rng *prng.Source) uint64 {
	if p.FarFraction > 0 && rng.Bernoulli(p.FarFraction) {
		far := p.FarBytes
		if far == 0 {
			far = 1 << 30
		}
		return 1<<38 + uint64(rng.Intn(int(far)))
	}
	if p.StreamFraction > 0 && rng.Bernoulli(p.StreamFraction) {
		p.streamPos += 4 // sequential word walk through a distant region
		return 1<<40 + p.streamPos
	}
	return uint64(rng.Intn(int(p.WorkingSetBytes)))
}

// ForMissRate sizes a random-access profile so that an LRU cache of the
// given capacity shows approximately the target miss rate: uniform
// re-reference over a working set W on a cache of size S misses at
// ~max(0, 1-S/W). Targets at or above 1 saturate to pure streaming.
func ForMissRate(target float64, c Config) Profile {
	if target >= 0.999 {
		return Profile{StreamFraction: 1, BlockBytes: uint64(c.BlockBytes), WorkingSetBytes: 1}
	}
	if target <= 0 {
		return Profile{WorkingSetBytes: uint64(c.SizeBytes) / 2, BlockBytes: uint64(c.BlockBytes)}
	}
	w := float64(c.SizeBytes) / (1 - target)
	return Profile{WorkingSetBytes: uint64(w), BlockBytes: uint64(c.BlockBytes)}
}

// ForMissRates builds a two-region profile realizing both a target L1
// miss rate and a target L2 miss ratio (the fraction of L1 misses that
// continue to memory): far references miss every level, and the near
// working set is sized for the remaining L1 misses.
func ForMissRates(l1Target, l2Ratio float64, c Config) Profile {
	if l2Ratio <= 0 {
		return ForMissRate(l1Target, c)
	}
	if l2Ratio > 1 {
		l2Ratio = 1
	}
	far := l1Target * l2Ratio
	nearTarget := 0.0
	if far < 1 {
		nearTarget = (l1Target - far) / (1 - far)
	}
	p := ForMissRate(nearTarget, c)
	p.FarFraction = far
	p.FarBytes = 1 << 30
	return p
}

// CalibrateProfile builds a two-region profile and then adjusts its near
// working set against a real cache until the measured L1 miss rate lands
// within ~3% of the target. The adjustment corrects for far-region
// pollution: never-reused far lines evict near lines, shrinking the
// effective capacity below the analytic sizing's assumption.
func CalibrateProfile(l1Target, l2Ratio float64, c Config, seed uint64) (Profile, error) {
	p := ForMissRates(l1Target, l2Ratio, c)
	if l1Target <= 0 {
		return p, nil
	}
	far := p.FarFraction
	for iter := 0; iter < 6; iter++ {
		got, err := MeasureMissRate(p, c, 200000, seed)
		if err != nil {
			return Profile{}, err
		}
		if diff := got - l1Target; diff < 0.03*l1Target+0.001 && diff > -(0.03*l1Target+0.001) {
			break
		}
		// Invert the occupancy model at the measured point: with near
		// miss rate m = 1 - Seff/W, the effective capacity is
		// Seff = W*(1-m); resize W so the same Seff yields the target.
		w := float64(p.WorkingSetBytes)
		mGot := (got - far) / (1 - far)
		mWant := (l1Target - far) / (1 - far)
		if mGot < 0 {
			mGot = 0
		}
		sEff := w * (1 - mGot)
		if mWant <= 0 || mWant >= 1 {
			break // far alone meets or exceeds the target
		}
		w = sEff / (1 - mWant)
		if min := float64(c.SizeBytes) / 4; w < min {
			w = min
		}
		p.WorkingSetBytes = uint64(w)
	}
	return p, nil
}

// MeasureMissRate drives refs references from the profile through a
// fresh cache of the given configuration (after warming it with the
// same count) and returns the steady-state miss rate.
func MeasureMissRate(p Profile, c Config, refs int, seed uint64) (float64, error) {
	cc, err := New(c)
	if err != nil {
		return 0, err
	}
	rng := prng.New(seed)
	for i := 0; i < refs; i++ { // warm
		cc.Access(p.Next(rng), false)
	}
	warm := cc.Stats()
	for i := 0; i < refs; i++ {
		cc.Access(p.Next(rng), false)
	}
	st := cc.Stats()
	return float64(st.Misses-warm.Misses) / float64(st.Accesses-warm.Accesses), nil
}
