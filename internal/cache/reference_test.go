package cache

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

// refCache is an intentionally naive reference implementation of a
// set-associative LRU cache: per-set slices ordered MRU-first, rebuilt
// with O(ways) scans. The real Cache must agree with it access for
// access.
type refCache struct {
	cfg  Config
	sets [][]uint64 // block ids, MRU first
}

func newRef(cfg Config) *refCache {
	return &refCache{cfg: cfg, sets: make([][]uint64, cfg.SizeBytes/(cfg.Ways*cfg.BlockBytes))}
}

func (r *refCache) access(addr uint64) (hit bool, evicted uint64, hadVictim bool) {
	shift := uint(0)
	for b := r.cfg.BlockBytes; b > 1; b >>= 1 {
		shift++
	}
	block := addr >> shift
	set := int(block % uint64(len(r.sets)))
	s := r.sets[set]
	for i, b := range s {
		if b == block {
			copy(s[1:i+1], s[:i])
			s[0] = block
			return true, 0, false
		}
	}
	if len(s) < r.cfg.Ways {
		r.sets[set] = append([]uint64{block}, s...)
		return false, 0, false
	}
	victim := s[len(s)-1]
	copy(s[1:], s[:len(s)-1])
	s[0] = block
	return false, victim << shift, true
}

// TestCacheMatchesReference drives the production cache and the naive
// reference with identical random streams over several geometries.
func TestCacheMatchesReference(t *testing.T) {
	geometries := []Config{
		{SizeBytes: 512, Ways: 2, BlockBytes: 64},
		{SizeBytes: 4096, Ways: 4, BlockBytes: 64},
		{SizeBytes: 8192, Ways: 1, BlockBytes: 32}, // direct-mapped
		L1D(),
	}
	for _, cfg := range geometries {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRef(cfg)
		src := prng.New(99)
		span := uint64(cfg.SizeBytes * 4)
		for i := 0; i < 50000; i++ {
			addr := uint64(src.Intn(int(span)))
			got := c.Access(addr, false)
			hit, evicted, hadVictim := ref.access(addr)
			if got.Hit != hit {
				t.Fatalf("%+v access %d addr %#x: hit %v vs ref %v", cfg, i, addr, got.Hit, hit)
			}
			if hadVictim && got.Evicted != evicted {
				t.Fatalf("%+v access %d: evicted %#x vs ref %#x", cfg, i, got.Evicted, evicted)
			}
		}
	}
}

// FuzzCacheAgainstReference fuzzes the same equivalence with arbitrary
// address bytes.
func FuzzCacheAgainstReference(f *testing.F) {
	f.Add([]byte{0x00, 0x40, 0x80, 0x00, 0xC0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		cfg := Config{SizeBytes: 512, Ways: 2, BlockBytes: 64}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRef(cfg)
		for i := 0; i+1 < len(stream); i += 2 {
			addr := uint64(stream[i])<<6 | uint64(stream[i+1])
			got := c.Access(addr, false)
			hit, evicted, hadVictim := ref.access(addr)
			if got.Hit != hit {
				t.Fatalf("addr %#x: hit %v vs ref %v", addr, got.Hit, hit)
			}
			if hadVictim && got.Evicted != evicted {
				t.Fatalf("addr %#x: evicted %#x vs ref %#x", addr, got.Evicted, evicted)
			}
		}
	})
}
