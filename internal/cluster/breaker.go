package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets a single trial request through at a time; a
	// success closes the breaker, a failure reopens it.
	BreakerHalfOpen
	// BreakerOpen short-circuits every request until the cooldown
	// elapses or a health probe succeeds.
	BreakerOpen
)

// String returns the wire name of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breaker is one peer's circuit breaker. The state machine:
//
//	Closed --(threshold consecutive failures)--> Open
//	Open --(cooldown elapsed on next allow, or probe success)--> HalfOpen
//	HalfOpen --(trial success)--> Closed
//	HalfOpen --(trial failure)--> Open
//
// HalfOpen admits one in-flight trial at a time, so a burst of requests
// against a freshly half-opened peer cannot stampede it. Probe
// successes only ever promote Open to HalfOpen — a real request must
// succeed before the breaker fully closes, because /healthz proves the
// process is up, not that the data path works.
//
// Every method takes an explicit now so tests drive the clock.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive
	openedAt time.Time
	trial    bool // a half-open trial request is in flight
	opens    int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent now. In HalfOpen (and in
// Open past its cooldown, which half-opens the breaker) the permission
// is a trial: the caller must report the outcome via onSuccess,
// onFailure, or onAbandon.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.trial = true
		return true
	default: // HalfOpen
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// onSuccess records a successful request: the breaker closes and the
// consecutive-failure count resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.trial = false
	b.mu.Unlock()
}

// onFailure records a failed request. A half-open trial failure reopens
// immediately; in Closed the breaker opens once the consecutive-failure
// count reaches the threshold.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	b.failures++
	wasTrial := b.trial
	b.trial = false
	if wasTrial || (b.state == BreakerClosed && b.failures >= b.threshold) || b.state == BreakerHalfOpen {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = now
	}
	b.mu.Unlock()
}

// onAbandon releases a trial slot without judging the peer — used when
// a request was cancelled by the caller (hedge lost, client gone)
// before the peer had a chance to answer.
func (b *breaker) onAbandon() {
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// onProbeSuccess records a successful health probe: an Open breaker
// half-opens (the data path gets to prove itself), a Closed breaker's
// failure streak resets.
func (b *breaker) onProbeSuccess() {
	b.mu.Lock()
	switch b.state {
	case BreakerOpen:
		b.state = BreakerHalfOpen
		b.trial = false
	case BreakerClosed:
		b.failures = 0
	}
	b.mu.Unlock()
}

// snapshot returns the current state, the consecutive-failure count,
// and how many times the breaker has opened.
func (b *breaker) snapshot() (BreakerState, int, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures, b.opens
}
