package cluster

import (
	"testing"
	"time"
)

// The breaker takes explicit times, so these tests drive a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)

	expect := func(want BreakerState, fails int, opens int64) {
		t.Helper()
		st, f, o := b.snapshot()
		if st != want || f != fails || o != opens {
			t.Fatalf("breaker = (%s, %d fails, %d opens), want (%s, %d, %d)",
				st, f, o, want, fails, opens)
		}
	}

	// Closed passes requests; failures below the threshold keep it
	// closed, a success resets the streak.
	expect(BreakerClosed, 0, 0)
	b.onFailure(now)
	b.onFailure(now)
	expect(BreakerClosed, 2, 0)
	b.onSuccess()
	expect(BreakerClosed, 0, 0)

	// Three consecutive failures open it.
	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatal("closed breaker refused a request")
		}
		b.onFailure(now)
	}
	expect(BreakerOpen, 3, 1)

	// Open short-circuits until the cooldown elapses...
	if b.allow(now.Add(59 * time.Second)) {
		t.Fatal("open breaker allowed a request before cooldown")
	}
	// ...then half-opens and admits exactly one trial at a time.
	now = now.Add(2 * time.Minute)
	if !b.allow(now) {
		t.Fatal("cooled-down breaker refused the trial")
	}
	expect(BreakerHalfOpen, 3, 1)
	if b.allow(now) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// A trial failure reopens immediately.
	b.onFailure(now)
	expect(BreakerOpen, 4, 2)

	// A probe success only half-opens: /healthz proves the process is
	// up, the data path still has to win a trial to close the breaker.
	b.onProbeSuccess()
	expect(BreakerHalfOpen, 4, 2)
	if !b.allow(now) {
		t.Fatal("half-open breaker refused the trial")
	}

	// An abandoned trial (hedge lost, caller cancelled) releases the
	// slot without judging the peer.
	b.onAbandon()
	expect(BreakerHalfOpen, 4, 2)
	if !b.allow(now) {
		t.Fatal("abandoned trial slot was not released")
	}

	// A trial success closes the breaker and clears the streak.
	b.onSuccess()
	expect(BreakerClosed, 0, 2)

	// In Closed, a probe success clears an accumulating streak, so slow
	// intermittent failures spread over healthy probes never open it.
	b.onFailure(now)
	b.onFailure(now)
	b.onProbeSuccess()
	expect(BreakerClosed, 0, 2)
}
