package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/store"
	"github.com/reprolab/hirise/internal/tele"
)

// Peer names one cluster member: a stable ID (the ring hashes it) and
// the base URL of its HTTP API.
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config parameterizes a Cluster.
type Config struct {
	// Self is this node's peer ID; it must appear in Peers. Fetch never
	// contacts Self.
	Self string
	// Peers is the full static membership, including Self. Every node
	// must be configured with the same set (order does not matter — the
	// ring is order-independent).
	Peers []Peer
	// VirtualNodes is the ring's per-peer point count (0 selects
	// DefaultVirtualNodes).
	VirtualNodes int
	// Siblings bounds how many peers one Fetch consults: the key's home
	// plus Siblings-1 further ring successors (default 2; capped at the
	// number of remote peers).
	Siblings int
	// AttemptTimeout bounds each individual peer HTTP request
	// (default 2s).
	AttemptTimeout time.Duration
	// Retries is the per-peer retry budget after the first attempt
	// (default 1). A 404 is a definitive miss and is never retried.
	Retries int
	// RetryBackoff is the base backoff before retry attempt n, growing
	// as RetryBackoff<<(n-1) with deterministic seeded jitter in
	// [base/2, base] (default 50ms).
	RetryBackoff time.Duration
	// HedgeDelay is how long the primary peer may stay silent before a
	// hedge request is launched against the remaining candidates
	// (default 100ms; negative disables hedging).
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker short-circuits before
	// half-opening on its own (default 5s). A successful health probe
	// half-opens it sooner.
	BreakerCooldown time.Duration
	// ProbeInterval is the /healthz probe cadence (default 2s; negative
	// disables the probe loop — tests drive ProbeOnce by hand).
	ProbeInterval time.Duration
	// Seed derives the deterministic backoff jitter (default 1).
	Seed uint64
	// Client optionally overrides the HTTP client (its Timeout is not
	// used; per-attempt contexts bound every request).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Siblings == 0 {
		c.Siblings = 2
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 100 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats counts cluster activity. Snapshot via Cluster.Stats.
type Stats struct {
	// Fetches counts Fetch calls; PeerHits the ones a peer satisfied,
	// PeerMisses the ones that degraded to local compute.
	Fetches, PeerHits, PeerMisses int64
	// Attempts counts individual peer HTTP requests; Retries the ones
	// past a peer's first; NotFound definitive 404 misses; Failures
	// errored attempts (timeouts, refused connections, 5xx).
	Attempts, Retries, NotFound, Failures int64
	// Hedges counts hedge launches, HedgeWins the fetches the hedge
	// answered first.
	Hedges, HedgeWins int64
	// BreakerSkips counts peer attempts short-circuited by an open
	// breaker; BreakerOpens closed->open transitions across all peers.
	BreakerSkips, BreakerOpens int64
	// Probes counts health-probe rounds per peer; ProbeFailures the
	// failed ones.
	Probes, ProbeFailures int64
}

// PeerStatus is one remote peer's live state, as reported by Snapshot
// and GET /cluster.
type PeerStatus struct {
	ID       string       `json:"id"`
	URL      string       `json:"url"`
	State    string       `json:"state"`
	Failures int          `json:"failures"` // consecutive
	Opens    int64        `json:"opens"`
	state    BreakerState `json:"-"`
}

// Snapshot is the cluster's introspectable state.
type Snapshot struct {
	Self  string       `json:"self"`
	Peers []PeerStatus `json:"peers"`
	Stats Stats        `json:"stats"`
}

// peer is one remote member and its breaker.
type peer struct {
	Peer
	breaker *breaker
}

// Cluster is the peer layer. Create with New, fetch with Fetch, stop
// the probe loop with Close. All methods are safe for concurrent use.
type Cluster struct {
	cfg   Config
	ring  *Ring
	peers map[string]*peer // remote members only
	httpc *http.Client

	fetchSeq atomic.Uint64

	fetches, peerHits, peerMisses           atomic.Int64
	attempts, retries, notFound, failures   atomic.Int64
	hedges, hedgeWins, breakerSkips, probes atomic.Int64
	probeFailures                           atomic.Int64

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// New validates the membership, builds the ring, and (unless disabled)
// starts the health-probe loop. Callers own the Cluster's lifecycle:
// Close it when the node shuts down.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ids := make([]string, 0, len(cfg.Peers))
	selfSeen := false
	for _, p := range cfg.Peers {
		ids = append(ids, p.ID)
		if p.ID == cfg.Self {
			selfSeen = true
			continue
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", p.ID)
		}
	}
	if cfg.Self == "" || !selfSeen {
		return nil, fmt.Errorf("cluster: Config.Self %q must appear in Peers", cfg.Self)
	}
	ring, err := NewRing(ids, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:   cfg,
		ring:  ring,
		peers: make(map[string]*peer, len(cfg.Peers)-1),
		httpc: cfg.Client,
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	for _, p := range cfg.Peers {
		if p.ID != cfg.Self {
			c.peers[p.ID] = &peer{Peer: p, breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		}
	}
	if cfg.ProbeInterval > 0 && len(c.peers) > 0 {
		c.probeStop = make(chan struct{})
		c.probeDone = make(chan struct{})
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the probe loop. Safe to call more than once.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		if c.probeStop != nil {
			close(c.probeStop)
			<-c.probeDone
		}
	})
}

// Self returns this node's peer ID.
func (c *Cluster) Self() string { return c.cfg.Self }

// Home returns the key's home peer ID (possibly Self).
func (c *Cluster) Home(k store.Key) string { return c.ring.Home(k) }

// fetchResult is one fetch goroutine's outcome.
type fetchResult struct {
	data  []byte
	from  string
	hedge bool
}

// Fetch asks the key's home peer and ring siblings for the stored
// result. It returns the payload and the answering peer's ID, or
// ok=false when no peer could serve it — never an error: an open
// breaker, an exhausted retry budget, or a cluster of one all degrade
// to local compute.
//
// The primary goroutine walks the candidates in ring-preference order;
// if nothing has answered within HedgeDelay, a hedge goroutine walks
// them rotated by one. First success wins and cancels the other.
func (c *Cluster) Fetch(ctx context.Context, key store.Key) (data []byte, from string, ok bool) {
	c.fetches.Add(1)
	cands := c.candidates(key)
	if len(cands) == 0 {
		c.peerMisses.Add(1)
		return nil, "", false
	}
	seq := c.fetchSeq.Add(1)

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan fetchResult, 2)
	launch := func(order []*peer, hedge bool) {
		go func() {
			r := fetchResult{hedge: hedge}
			for _, p := range order {
				if d, ok := c.tryPeer(fctx, p, key, seq); ok {
					r.data, r.from = d, p.ID
					break
				}
				if fctx.Err() != nil {
					break
				}
			}
			results <- r
		}()
	}

	launch(cands, false)
	pending := 1
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay >= 0 && len(cands) > 1 {
		hedgeTimer = time.NewTimer(c.cfg.HedgeDelay)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	for pending > 0 {
		select {
		case r := <-results:
			pending--
			if r.data != nil {
				c.peerHits.Add(1)
				if r.hedge {
					c.hedgeWins.Add(1)
				}
				// The loser unwinds via fctx; its buffered send never
				// blocks.
				return r.data, r.from, true
			}
		case <-hedgeC:
			hedgeC = nil
			c.hedges.Add(1)
			rotated := append(append([]*peer(nil), cands[1:]...), cands[0])
			launch(rotated, true)
			pending++
		case <-ctx.Done():
			c.peerMisses.Add(1)
			return nil, "", false
		}
	}
	c.peerMisses.Add(1)
	return nil, "", false
}

// candidates returns up to Siblings remote peers in the key's ring
// preference order.
func (c *Cluster) candidates(key store.Key) []*peer {
	var out []*peer
	for _, id := range c.ring.Order(key) {
		if p, ok := c.peers[id]; ok {
			out = append(out, p)
			if len(out) == c.cfg.Siblings {
				break
			}
		}
	}
	return out
}

// errPeerMiss marks a definitive 404: the peer is healthy but does not
// hold the key. Never retried.
var errPeerMiss = errors.New("cluster: peer does not hold key")

// tryPeer runs the per-peer attempt loop: breaker gate, bounded
// retries, exponential backoff with seeded jitter.
func (c *Cluster) tryPeer(ctx context.Context, p *peer, key store.Key, seq uint64) ([]byte, bool) {
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			t := time.NewTimer(c.backoff(attempt, seq))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, false
			}
		}
		if ctx.Err() != nil {
			return nil, false
		}
		if !p.breaker.allow(time.Now()) {
			c.breakerSkips.Add(1)
			return nil, false
		}
		c.attempts.Add(1)
		data, err := c.get(ctx, p, key)
		switch {
		case err == nil:
			p.breaker.onSuccess()
			return data, true
		case errors.Is(err, errPeerMiss):
			// The peer answered authoritatively; that's a healthy peer.
			p.breaker.onSuccess()
			c.notFound.Add(1)
			return nil, false
		case ctx.Err() != nil:
			// Cancelled from above (hedge won, client gone): not the
			// peer's fault — release the trial slot without judging it.
			p.breaker.onAbandon()
			return nil, false
		default:
			p.breaker.onFailure(time.Now())
			c.failures.Add(1)
		}
	}
	return nil, false
}

// backoff returns the delay before retry attempt n (1-based) of the
// fetch with the given sequence number: base<<(n-1), jittered
// deterministically into [base/2, base] by a stream derived from
// (Seed, seq, n). Identical configurations replay identical backoff
// schedules, which is what lets tests pin hedge and retry timing.
func (c *Cluster) backoff(attempt int, seq uint64) time.Duration {
	base := c.cfg.RetryBackoff << (attempt - 1)
	const maxBackoff = 2 * time.Second
	if base > maxBackoff {
		base = maxBackoff
	}
	r := prng.New(c.cfg.Seed ^ (seq * 0x9e3779b97f4a7c15) ^ uint64(attempt)<<56)
	jitter := time.Duration(r.Uint64() % uint64(base/2+1))
	return base/2 + jitter
}

// get performs one GET {peer}/store/{key} under the per-attempt
// timeout. 200 returns the payload, 404 is errPeerMiss, anything else
// is a failure.
func (c *Cluster) get(ctx context.Context, p *peer, key store.Key) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet,
		strings.TrimSuffix(p.URL, "/")+"/store/"+key.String(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, errPeerMiss
	default:
		return nil, fmt.Errorf("cluster: peer %s: HTTP %d", p.ID, resp.StatusCode)
	}
}

// probeLoop probes every remote peer's /healthz on the configured
// cadence until Close.
func (c *Cluster) probeLoop() {
	defer close(c.probeDone)
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.AttemptTimeout)
			c.ProbeOnce(ctx)
			cancel()
		case <-c.probeStop:
			return
		}
	}
}

// ProbeOnce health-probes every remote peer once, feeding the outcomes
// into the breakers: a 200 half-opens an open breaker (and clears a
// closed one's failure streak), anything else counts as a failure.
// Exposed so tests and operators can force a probe round.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	ids := make([]string, 0, len(c.peers))
	for id := range c.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.peers[id]
		c.probes.Add(1)
		if err := c.probe(ctx, p); err != nil {
			c.probeFailures.Add(1)
			p.breaker.onFailure(time.Now())
		} else {
			p.breaker.onProbeSuccess()
		}
	}
}

func (c *Cluster) probe(ctx context.Context, p *peer) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet,
		strings.TrimSuffix(p.URL, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: HTTP %d", p.ID, resp.StatusCode)
	}
	return nil
}

// Stats returns a snapshot of the cluster's counters.
func (c *Cluster) Stats() Stats {
	var opens int64
	for _, p := range c.peers {
		_, _, o := p.breaker.snapshot()
		opens += o
	}
	return Stats{
		Fetches:       c.fetches.Load(),
		PeerHits:      c.peerHits.Load(),
		PeerMisses:    c.peerMisses.Load(),
		Attempts:      c.attempts.Load(),
		Retries:       c.retries.Load(),
		NotFound:      c.notFound.Load(),
		Failures:      c.failures.Load(),
		Hedges:        c.hedges.Load(),
		HedgeWins:     c.hedgeWins.Load(),
		BreakerSkips:  c.breakerSkips.Load(),
		BreakerOpens:  opens,
		Probes:        c.probes.Load(),
		ProbeFailures: c.probeFailures.Load(),
	}
}

// Snapshot returns the full introspectable state: per-peer breaker
// positions (sorted by peer ID) plus the counters.
func (c *Cluster) Snapshot() Snapshot {
	snap := Snapshot{Self: c.cfg.Self, Stats: c.Stats()}
	for id, p := range c.peers {
		st, fails, opens := p.breaker.snapshot()
		snap.Peers = append(snap.Peers, PeerStatus{
			ID: id, URL: p.URL, State: st.String(), Failures: fails, Opens: opens, state: st,
		})
	}
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i].ID < snap.Peers[j].ID })
	return snap
}

// Describe writes the cluster's counters and per-peer breaker states
// into an obs registry (closed=0, half-open=1, open=2), for /metrics
// scrapes.
func (c *Cluster) Describe(reg *obs.Registry) {
	st := c.Stats()
	reg.Counter("cluster.fetches").Add(st.Fetches)
	reg.Counter("cluster.peer.hits").Add(st.PeerHits)
	reg.Counter("cluster.peer.misses").Add(st.PeerMisses)
	reg.Counter("cluster.attempts").Add(st.Attempts)
	reg.Counter("cluster.retries").Add(st.Retries)
	reg.Counter("cluster.notfound").Add(st.NotFound)
	reg.Counter("cluster.failures").Add(st.Failures)
	reg.Counter("cluster.hedges").Add(st.Hedges)
	reg.Counter("cluster.hedge.wins").Add(st.HedgeWins)
	reg.Counter("cluster.breaker.skips").Add(st.BreakerSkips)
	reg.Counter("cluster.breaker.opens").Add(st.BreakerOpens)
	reg.Counter("cluster.probes").Add(st.Probes)
	reg.Counter("cluster.probe.failures").Add(st.ProbeFailures)
	for _, p := range c.Snapshot().Peers {
		reg.Gauge("cluster.breaker.state." + p.ID).Set(float64(p.state))
	}
}

// Sample registers the cluster's windowed telemetry tracks on a tele
// sampler: fetch/hit/failure rates as counter deltas and the number of
// not-closed breakers as a gauge. Callers own the sampler's tick
// cadence and synchronization, per the tele single-writer contract.
func (c *Cluster) Sample(s *tele.Sampler) {
	s.CounterFunc("cluster.fetches", c.fetches.Load)
	s.CounterFunc("cluster.peer.hits", c.peerHits.Load)
	s.CounterFunc("cluster.peer.misses", c.peerMisses.Load)
	s.CounterFunc("cluster.failures", c.failures.Load)
	s.CounterFunc("cluster.hedges", c.hedges.Load)
	s.GaugeFunc("cluster.breakers.notclosed", func() float64 {
		var n int
		for _, p := range c.peers {
			if st, _, _ := p.breaker.snapshot(); st != BreakerClosed {
				n++
			}
		}
		return float64(n)
	})
}
