package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/leakcheck"
	"github.com/reprolab/hirise/internal/store"
)

// fakePeer is an httptest-backed peer daemon exposing the two endpoints
// the cluster client uses: GET /store/{key} and GET /healthz.
type fakePeer struct {
	srv *httptest.Server
	// data maps hex keys to payloads; healthy toggles /healthz.
	data    map[string][]byte
	healthy atomic.Bool
	// delay holds each /store response this long (bounded by the
	// request context), for hedge tests.
	delay time.Duration
	gets  atomic.Int64
}

func newFakePeer(t *testing.T, data map[string][]byte) *fakePeer {
	p := &fakePeer{data: data}
	p.healthy.Store(true)
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if !p.healthy.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		p.gets.Add(1)
		if p.delay > 0 {
			select {
			case <-time.After(p.delay):
			case <-r.Context().Done():
				return
			}
		}
		if d, ok := p.data[strings.TrimPrefix(r.URL.Path, "/store/")]; ok {
			w.Write(d)
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// newTestCluster builds a cluster of "self" plus the given remote peer
// URLs, with fast timeouts and the probe loop off (tests drive
// ProbeOnce by hand).
func newTestCluster(t *testing.T, cfg Config, urls ...string) *Cluster {
	t.Helper()
	cfg.Self = "self"
	cfg.Peers = []Peer{{ID: "self"}}
	for i, u := range urls {
		cfg.Peers = append(cfg.Peers, Peer{ID: "peer" + string(rune('A'+i)), URL: u})
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = time.Second
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// keyFirstOn finds a key whose first remote candidate is the given
// peer, so tests control which peer a Fetch contacts first.
func keyFirstOn(t *testing.T, c *Cluster, peerID string) store.Key {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := testKey(i)
		if cands := c.candidates(k); len(cands) > 0 && cands[0].ID == peerID {
			return k
		}
	}
	t.Fatalf("no key found with %s as first candidate", peerID)
	panic("unreachable")
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "b", URL: "http://x"}}}); err == nil {
		t.Error("New accepted a Self outside the membership")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a"}, {ID: "b"}}}); err == nil {
		t.Error("New accepted a remote peer without a URL")
	}
}

func TestFetchPeerHit(t *testing.T) {
	leakcheck.Check(t)
	k := testKey(1)
	p := newFakePeer(t, map[string][]byte{k.String(): []byte("payload")})
	c := newTestCluster(t, Config{}, p.srv.URL)

	data, from, ok := c.Fetch(context.Background(), k)
	if !ok || string(data) != "payload" || from != "peerA" {
		t.Fatalf("Fetch = (%q, %q, %v), want payload from peerA", data, from, ok)
	}
	st := c.Stats()
	if st.Fetches != 1 || st.PeerHits != 1 || st.PeerMisses != 0 || st.Attempts != 1 {
		t.Errorf("stats = %+v, want 1 fetch, 1 hit, 1 attempt", st)
	}
}

func TestFetchMissDegrades(t *testing.T) {
	leakcheck.Check(t)
	p := newFakePeer(t, nil) // holds nothing: authoritative 404s
	c := newTestCluster(t, Config{}, p.srv.URL)

	if _, _, ok := c.Fetch(context.Background(), testKey(1)); ok {
		t.Fatal("Fetch reported a hit from an empty peer")
	}
	st := c.Stats()
	// A 404 is definitive: no retry, no failure, no breaker movement.
	if st.PeerMisses != 1 || st.NotFound != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Errorf("stats = %+v, want one clean not-found", st)
	}
	if snap := c.Snapshot(); snap.Peers[0].State != "closed" {
		t.Errorf("breaker %s after a 404, want closed", snap.Peers[0].State)
	}
}

func TestFetchDeadPeerDegradesAndRetries(t *testing.T) {
	leakcheck.Check(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close() // connection refused from here on
	c := newTestCluster(t, Config{RetryBackoff: time.Millisecond, BreakerThreshold: 10}, url)

	if _, _, ok := c.Fetch(context.Background(), testKey(1)); ok {
		t.Fatal("Fetch reported a hit from a dead peer")
	}
	st := c.Stats()
	if st.PeerMisses != 1 || st.Attempts != 2 || st.Retries != 1 || st.Failures != 2 {
		t.Errorf("stats = %+v, want 2 failed attempts (1 retry)", st)
	}
}

func TestBreakerShortCircuitsDeadPeer(t *testing.T) {
	leakcheck.Check(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	c := newTestCluster(t, Config{RetryBackoff: time.Millisecond, BreakerThreshold: 2, BreakerCooldown: time.Hour}, url)

	// First fetch: two attempts fail, reaching the threshold.
	c.Fetch(context.Background(), testKey(1))
	if st := c.Stats(); st.BreakerOpens != 1 || st.Attempts != 2 {
		t.Fatalf("stats after first fetch = %+v, want the breaker open after 2 attempts", st)
	}
	// Second fetch: short-circuited — no new connection attempts.
	c.Fetch(context.Background(), testKey(1))
	st := c.Stats()
	if st.Attempts != 2 || st.BreakerSkips == 0 {
		t.Errorf("stats = %+v, want no new attempts and a breaker skip", st)
	}
	if snap := c.Snapshot(); snap.Peers[0].State != "open" {
		t.Errorf("breaker %s, want open", snap.Peers[0].State)
	}
}

// TestHedgeWinsSlowPeer: the primary peer sits on the request past
// HedgeDelay, so a hedge fires against the sibling and its answer wins;
// the slow request is cancelled rather than awaited.
func TestHedgeWinsSlowPeer(t *testing.T) {
	leakcheck.Check(t)
	slow := newFakePeer(t, nil)
	slow.delay = 5 * time.Second
	fast := newFakePeer(t, nil)
	c := newTestCluster(t, Config{HedgeDelay: 20 * time.Millisecond, AttemptTimeout: 10 * time.Second},
		slow.srv.URL, fast.srv.URL)

	// peerA = slow, peerB = fast; pick a key that routes to slow first.
	k := keyFirstOn(t, c, "peerA")
	payload := []byte("hedged payload")
	slow.data = map[string][]byte{k.String(): payload}
	fast.data = map[string][]byte{k.String(): payload}

	start := time.Now()
	data, from, ok := c.Fetch(context.Background(), k)
	if !ok || string(data) != string(payload) || from != "peerB" {
		t.Fatalf("Fetch = (%q, %q, %v), want payload from the fast sibling", data, from, ok)
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Errorf("Fetch took %v: it waited for the slow peer instead of hedging", elapsed)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 || st.PeerHits != 1 {
		t.Errorf("stats = %+v, want one winning hedge", st)
	}
}

// TestNoHedgeBeforeDelay: a primary that answers within HedgeDelay
// never triggers the hedge — hedging costs duplicate work and must only
// fire on actual slowness.
func TestNoHedgeBeforeDelay(t *testing.T) {
	leakcheck.Check(t)
	k := testKey(1)
	a := newFakePeer(t, map[string][]byte{k.String(): []byte("x")})
	b := newFakePeer(t, map[string][]byte{k.String(): []byte("x")})
	c := newTestCluster(t, Config{HedgeDelay: 10 * time.Second}, a.srv.URL, b.srv.URL)

	if _, _, ok := c.Fetch(context.Background(), k); !ok {
		t.Fatal("Fetch missed")
	}
	st := c.Stats()
	if st.Hedges != 0 || st.HedgeWins != 0 {
		t.Errorf("stats = %+v, want no hedges for a fast primary", st)
	}
	if a.gets.Load()+b.gets.Load() != 1 {
		t.Errorf("%d store requests sent, want exactly 1", a.gets.Load()+b.gets.Load())
	}
}

// TestBackoffDeterministic: identical (Seed, fetch seq, attempt) yields
// identical backoff, bounded to [base/2, base] — the property that lets
// chaos runs replay exactly.
func TestBackoffDeterministic(t *testing.T) {
	mk := func(seed uint64) *Cluster {
		return newTestCluster(t, Config{Seed: seed, RetryBackoff: 40 * time.Millisecond}, "http://unused")
	}
	c1, c2, c3 := mk(7), mk(7), mk(8)
	for attempt := 1; attempt <= 4; attempt++ {
		for seq := uint64(1); seq <= 8; seq++ {
			d1, d2 := c1.backoff(attempt, seq), c2.backoff(attempt, seq)
			if d1 != d2 {
				t.Fatalf("backoff(%d,%d) = %v vs %v with equal seeds", attempt, seq, d1, d2)
			}
			base := 40 * time.Millisecond << (attempt - 1)
			if base > 2*time.Second {
				base = 2 * time.Second
			}
			if d1 < base/2 || d1 > base {
				t.Fatalf("backoff(%d,%d) = %v outside [%v, %v]", attempt, seq, d1, base/2, base)
			}
		}
	}
	var diff bool
	for seq := uint64(1); seq <= 8 && !diff; seq++ {
		diff = c1.backoff(1, seq) != c3.backoff(1, seq)
	}
	if !diff {
		t.Error("seeds 7 and 8 produced identical backoff schedules")
	}
}

// TestProbeRecovery: probes feed the breakers — failures open them, a
// recovery half-opens, and the first real fetch closes.
func TestProbeRecovery(t *testing.T) {
	leakcheck.Check(t)
	p := newFakePeer(t, nil)
	c := newTestCluster(t, Config{BreakerThreshold: 2, BreakerCooldown: time.Hour}, p.srv.URL)
	ctx := context.Background()

	c.ProbeOnce(ctx)
	if st := c.Stats(); st.Probes != 1 || st.ProbeFailures != 0 {
		t.Fatalf("stats = %+v, want one clean probe", st)
	}

	p.healthy.Store(false)
	c.ProbeOnce(ctx)
	c.ProbeOnce(ctx)
	if snap := c.Snapshot(); snap.Peers[0].State != "open" {
		t.Fatalf("breaker %s after 2 failed probes, want open", snap.Peers[0].State)
	}

	// Recovery: a healthy probe half-opens; the data path must still
	// prove itself, and the next successful fetch closes the breaker.
	p.healthy.Store(true)
	c.ProbeOnce(ctx)
	if snap := c.Snapshot(); snap.Peers[0].State != "half-open" {
		t.Fatalf("breaker %s after recovery probe, want half-open", snap.Peers[0].State)
	}
	k := testKey(1)
	p.data = map[string][]byte{k.String(): []byte("back")}
	if _, _, ok := c.Fetch(ctx, k); !ok {
		t.Fatal("half-open trial fetch missed")
	}
	if snap := c.Snapshot(); snap.Peers[0].State != "closed" {
		t.Errorf("breaker %s after trial success, want closed", snap.Peers[0].State)
	}
}

// TestFetchNoPeers: a cluster of one degrades instantly — the shape a
// cluster-enabled binary has when its peers flag lists only itself.
func TestFetchNoPeers(t *testing.T) {
	leakcheck.Check(t)
	c := newTestCluster(t, Config{})
	if _, _, ok := c.Fetch(context.Background(), testKey(1)); ok {
		t.Fatal("Fetch hit with no remote peers")
	}
	if st := c.Stats(); st.PeerMisses != 1 || st.Attempts != 0 {
		t.Errorf("stats = %+v, want an attempt-free miss", st)
	}
}

// TestFetchCancelledContext: a cancelled caller gets a miss, never an
// error or a hang.
func TestFetchCancelledContext(t *testing.T) {
	leakcheck.Check(t)
	slow := newFakePeer(t, nil)
	slow.delay = 5 * time.Second
	c := newTestCluster(t, Config{HedgeDelay: -1, AttemptTimeout: 10 * time.Second}, slow.srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, ok := c.Fetch(ctx, testKey(1)); ok {
		t.Fatal("Fetch hit under a cancelled context")
	}
	if time.Since(start) > time.Second {
		t.Error("Fetch did not return promptly on context cancellation")
	}
}
