// Package cluster is the static-membership peer layer of the serving
// plane: it turns a set of hirise-served daemons into a cluster that
// routes content-addressed store keys to a home node and fetches
// results from peers before recomputing them locally.
//
// The pieces:
//
//   - a consistent-hash ring (Ring) over the membership, giving every
//     store.Key a deterministic preference order of peers — the same
//     order on every node, so a result computed anywhere is findable
//     from anywhere;
//   - per-peer circuit breakers driven by request outcomes and periodic
//     /healthz probes, so a dead or draining peer costs one connection
//     error, not one per request;
//   - a resilient fetch client: per-attempt timeouts, bounded retries
//     with exponential backoff and deterministic seeded jitter, and
//     hedged requests — a second peer is consulted when the first has
//     not answered within HedgeDelay, first response wins, the loser is
//     cancelled.
//
// Fetch never returns an error: every failure mode (open breaker,
// exhausted retries, timeout, 404) degrades to "not found", and the
// caller computes locally. The cluster can therefore only make a node
// faster, never break it — with no peers configured, behaviour is
// byte-identical to a single daemon.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/reprolab/hirise/internal/store"
)

// DefaultVirtualNodes is the per-peer virtual-node count of a Ring.
// 128 points per peer keeps the home-key share of a 3-node cluster
// within a few percent of 1/3.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over a static peer membership. It is
// immutable after construction and safe for concurrent use.
//
// Each peer owns a set of virtual points, the SHA-256 of "id#i"; a key
// lands on the first point clockwise from the key's own hash. Because
// points depend only on peer IDs, every node of a cluster builds the
// identical ring from the same membership list, in any order — and
// removing a peer only remaps the keys that peer owned.
type Ring struct {
	points []ringPoint
	ids    []string // membership in construction order
}

type ringPoint struct {
	hash uint64
	peer int // index into ids
}

// NewRing builds a ring over the given peer IDs with vnodes virtual
// points per peer (0 selects DefaultVirtualNodes). IDs must be unique
// and non-empty.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{
		points: make([]ringPoint, 0, len(ids)*vnodes),
		ids:    append([]string(nil), ids...),
	}
	for pi, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty peer ID")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", id, v)))
			r.points = append(r.points, ringPoint{binary.BigEndian.Uint64(sum[:8]), pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically unlikely) break on peer index so every
		// node sorts identically.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// keyHash maps a store key onto the ring's hash space. Store keys are
// already SHA-256 digests, so their leading bytes are uniform.
func keyHash(k store.Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Home returns the key's home peer: the owner of the first virtual
// point at or after the key's hash.
func (r *Ring) Home(k store.Key) string {
	return r.ids[r.points[r.search(keyHash(k))].peer]
}

// Order returns every peer ID in the key's preference order: the home
// peer first, then each subsequent distinct peer walking clockwise.
// The slice is freshly allocated.
func (r *Ring) Order(k store.Key) []string {
	out := make([]string, 0, len(r.ids))
	seen := make([]bool, len(r.ids))
	for i, n := r.search(keyHash(k)), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, r.ids[p])
			if len(out) == len(r.ids) {
				break
			}
		}
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Peers returns the membership in construction order.
func (r *Ring) Peers() []string { return append([]string(nil), r.ids...) }
