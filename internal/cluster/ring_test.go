package cluster

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"github.com/reprolab/hirise/internal/store"
)

func testKey(i int) store.Key {
	return sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
}

func TestRingValidation(t *testing.T) {
	for _, ids := range [][]string{nil, {}, {"a", ""}, {"a", "b", "a"}} {
		if _, err := NewRing(ids, 0); err == nil {
			t.Errorf("NewRing(%q) succeeded, want error", ids)
		}
	}
}

// TestRingOrderIndependent: the ring is a pure function of the
// membership set — every node builds the identical ring no matter how
// its config file orders the peers.
func TestRingOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		if a.Home(k) != b.Home(k) {
			t.Fatalf("key %d: home %q vs %q under reordered membership", i, a.Home(k), b.Home(k))
		}
		ao, bo := a.Order(k), b.Order(k)
		if fmt.Sprint(ao) != fmt.Sprint(bo) {
			t.Fatalf("key %d: order %v vs %v under reordered membership", i, ao, bo)
		}
	}
}

// TestRingBalance: with the default virtual-node count, no peer of a
// 3-node ring owns a grossly outsized key share.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 9000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Home(testKey(i))]++
	}
	for id, n := range counts {
		if share := float64(n) / keys; share < 0.20 || share > 0.47 {
			t.Errorf("peer %s owns %.1f%% of keys, want roughly a third", id, 100*share)
		}
	}
}

// TestRingMinimalRemap: removing one peer only remaps the keys that
// peer owned; every other key keeps its home. This is the property that
// makes a node restart cheap — the survivors' caches stay valid.
func TestRingMinimalRemap(t *testing.T) {
	full, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := testKey(i)
		if home := full.Home(k); home != "n3" && reduced.Home(k) != home {
			t.Fatalf("key %d moved %s -> %s though its home survived", i, home, reduced.Home(k))
		}
	}
}

// TestRingOrder: the preference order starts at the key's home and
// visits every peer exactly once.
func TestRingOrder(t *testing.T) {
	ids := []string{"n1", "n2", "n3", "n4"}
	r, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := testKey(i)
		order := r.Order(k)
		if len(order) != len(ids) {
			t.Fatalf("key %d: order %v misses peers", i, order)
		}
		if order[0] != r.Home(k) {
			t.Fatalf("key %d: order %v does not start at home %s", i, order, r.Home(k))
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("key %d: order %v repeats %s", i, order, id)
			}
			seen[id] = true
		}
	}
}
