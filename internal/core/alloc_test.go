package core

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

// arbWorkload drives cycles of rotating contention through sw: every
// input requests a pseudo-random output, grants are released after a
// few cycles, so arbitration, connection setup, and release all stay
// hot. It is shared by the zero-alloc assertions and the benchmark.
type arbSwitch interface {
	Radix() int
	Arbitrate(req []int) []topo.Grant
	Release(in int)
}

// newArbWorkload returns a closure running the given number of cycles;
// its buffers are allocated once here so AllocsPerRun sees only the
// switch's own allocations.
func newArbWorkload(sw arbSwitch, src *prng.Source) func(cycles int) {
	n := sw.Radix()
	req := make([]int, n)
	holding := make([]int, 0, n)
	return func(cycles int) {
		for c := 0; c < cycles; c++ {
			for i := range req {
				req[i] = src.Intn(n)
			}
			for _, g := range sw.Arbitrate(req) {
				holding = append(holding, g.In)
			}
			if c%4 == 3 {
				for _, in := range holding {
					sw.Release(in)
				}
				holding = holding[:0]
			}
		}
	}
}

// TestArbitrateZeroAllocs asserts the tentpole's disabled-path
// contract: with no observer attached, the arbitration hot loop of the
// Hi-Rise switch allocates nothing per cycle. The grants return buffer
// and every request mask are preallocated scratch; a regression here
// shows up as garbage-collector pressure in every sweep.
func TestArbitrateZeroAllocs(t *testing.T) {
	// Radix 128 exercises the multi-word bitset paths: every request
	// vector and priority row spans two uint64 words.
	for _, radix := range []int{64, 128} {
		for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.WLRG, topo.CLRG} {
			cfg := topo.Default64()
			cfg.Radix = radix
			cfg.Scheme = scheme
			sw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			workload := newArbWorkload(sw, prng.New(7))
			workload(64) // warm up: grow the grants buffer once
			if avg := testing.AllocsPerRun(50, func() {
				workload(16)
			}); avg != 0 {
				t.Errorf("radix %d %v: %v allocs per 16 arbitration cycles, want 0", radix, scheme, avg)
			}
		}
	}
}

// TestArbitrateZeroAllocsWithFaults extends the zero-alloc pin to the
// fault-mask path: with failed channels, inputs, and outputs active
// (masks allocated up front by the Fail* calls), the per-cycle AndNot
// masking must not allocate either.
func TestArbitrateZeroAllocsWithFaults(t *testing.T) {
	for _, radix := range []int{64, 128} {
		for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.WLRG, topo.CLRG} {
			cfg := topo.Default64()
			cfg.Radix = radix
			cfg.Scheme = scheme
			sw, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sw.FailChannel(cfg.L2LCID(0, 3, 1)); err != nil {
				t.Fatal(err)
			}
			if err := sw.FailInput(radix / 2); err != nil {
				t.Fatal(err)
			}
			if err := sw.FailOutput(radix - 1); err != nil {
				t.Fatal(err)
			}
			workload := newArbWorkload(sw, prng.New(7))
			workload(64)
			if avg := testing.AllocsPerRun(50, func() {
				workload(16)
			}); avg != 0 {
				t.Errorf("radix %d %v with faults: %v allocs per 16 arbitration cycles, want 0", radix, scheme, avg)
			}
		}
	}
}

func benchArbitrate(b *testing.B, radix int) {
	cfg := topo.Default64()
	cfg.Radix = radix
	sw, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	workload := newArbWorkload(sw, prng.New(7))
	workload(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload(16)
	}
}

func BenchmarkArbitrateHotLoop(b *testing.B)    { benchArbitrate(b, 64) }
func BenchmarkArbitrateHotLoop128(b *testing.B) { benchArbitrate(b, 128) }
