package core

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

// Fault-injection tests: FailChannel models a dead TSV bundle. The
// switch must rebind affected inputs to healthy channels and keep every
// flow live, degrading throughput gracefully.

func TestFailChannelRebindsBinnedInput(t *testing.T) {
	c := cfg(4, topo.L2LLRG)
	s := mustNew(t, c)
	// Input 0 is binned to channel 0 toward layer 3.
	dead := c.L2LCID(0, 3, 0)
	if err := s.FailChannel(dead); err != nil {
		t.Fatal(err)
	}
	if !s.ChannelFailed(dead) {
		t.Fatal("channel not marked failed")
	}
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if len(g) != 1 {
		t.Fatalf("input on failed channel got no grant: %v", g)
	}
	if got := s.HeldChannel(0); got != c.L2LCID(0, 3, 1) {
		t.Fatalf("rebound to channel %d, want next healthy %d", got, c.L2LCID(0, 3, 1))
	}
}

func TestFailChannelRefusesLastChannel(t *testing.T) {
	c := cfg(1, topo.L2LLRG)
	s := mustNew(t, c)
	if err := s.FailChannel(c.L2LCID(0, 3, 0)); err == nil {
		t.Fatal("failing the only channel of a layer pair must be refused")
	}
}

func TestFailChannelBounds(t *testing.T) {
	s := mustNew(t, cfg(4, topo.L2LLRG))
	if err := s.FailChannel(-1); err == nil {
		t.Error("negative id accepted")
	}
	if err := s.FailChannel(9999); err == nil {
		t.Error("out-of-range id accepted")
	}
	c := cfg(4, topo.L2LLRG)
	cid := c.L2LCID(0, 1, 0)
	if err := s.FailChannel(cid); err != nil {
		t.Fatal(err)
	}
	if err := s.FailChannel(cid); err != nil {
		t.Errorf("re-failing a failed channel should be a no-op, got %v", err)
	}
}

func TestNoStarvationWithFailedChannels(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.CLRG} {
		c := cfg(4, scheme)
		s := mustNew(t, c)
		// Kill one channel on every layer pair.
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if src == dst {
					continue
				}
				if err := s.FailChannel(c.L2LCID(src, dst, 2)); err != nil {
					t.Fatal(err)
				}
			}
		}
		req := make([]int, 64)
		for i := range req {
			req[i] = 63
		}
		wins := make([]int, 64)
		for _, w := range grantSeq(s, req, 64*40) {
			wins[w]++
		}
		for in, w := range wins {
			if w == 0 {
				t.Errorf("%v: input %d starved with failed channels", scheme, in)
			}
		}
	}
}

func TestThroughputDegradesGracefully(t *testing.T) {
	// Purely inter-layer traffic saturating the L2LCs: killing one of
	// the four channels per pair should cost roughly a quarter of the
	// fabric's inter-layer capacity, not collapse it.
	c := cfg(4, topo.CLRG)
	measure := func(fail bool) int {
		s := mustNew(t, c)
		if fail {
			for src := 0; src < 4; src++ {
				for dst := 0; dst < 4; dst++ {
					if src != dst {
						if err := s.FailChannel(c.L2LCID(src, dst, 3)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
		req := make([]int, 64)
		for i := range req {
			// Same local index on the next layer: all traffic crosses.
			req[i] = c.Port((c.LayerOf(i)+1)%4, c.LocalIndex(i))
		}
		return len(grantSeq(s, req, 400))
	}
	full, degraded := measure(false), measure(true)
	ratio := float64(degraded) / float64(full)
	if ratio < 0.70 || ratio > 0.85 {
		t.Errorf("degraded/full = %.2f, want ~0.75 (one of four channels dead)", ratio)
	}
}

func TestFailedChannelNeverGranted(t *testing.T) {
	c := cfg(4, topo.CLRG)
	for _, alloc := range []topo.AllocPolicy{topo.InputBinned, topo.OutputBinned, topo.PriorityBased} {
		cc := c
		cc.Alloc = alloc
		s := mustNew(t, cc)
		dead := cc.L2LCID(0, 3, 1)
		if err := s.FailChannel(dead); err != nil {
			t.Fatal(err)
		}
		src := prng.New(31)
		req := make([]int, 64)
		for cycle := 0; cycle < 800; cycle++ {
			for i := range req {
				req[i] = -1
				if src.Bernoulli(0.6) {
					req[i] = src.Intn(64)
				}
			}
			for _, g := range s.Arbitrate(req) {
				if s.HeldChannel(g.In) == dead {
					t.Fatalf("%v: failed channel granted to input %d", alloc, g.In)
				}
				if src.Bernoulli(0.4) {
					s.Release(g.In)
				}
			}
		}
	}
}

// TestFailHeldChannelDrains pins fail-stop semantics on a busy channel:
// the in-flight connection keeps the channel through Release (mid-packet
// flits are never dropped by a fault here), and only then does the fault
// gate new arbitration.
func TestFailHeldChannelDrains(t *testing.T) {
	c := cfg(4, topo.CLRG)
	s := mustNew(t, c)
	// Input 0 (layer 0) to output 63 (layer 3): a cross-layer grant
	// holding its binned channel.
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if len(g) != 1 {
		t.Fatalf("no grant: %v", g)
	}
	held := s.HeldChannel(0)
	if held < 0 {
		t.Fatal("cross-layer grant holds no channel")
	}
	if err := s.FailChannel(held); err != nil {
		t.Fatalf("failing the held channel: %v", err)
	}
	// Mid-packet: the connection still owns the channel and keeps
	// carrying flits.
	if s.HeldChannel(0) != held {
		t.Fatalf("fault evicted the in-flight connection from channel %d", held)
	}
	if !s.ChannelFailed(held) {
		t.Fatal("channel not marked failed")
	}
	// The packet finishes; from the next arbitration on, the channel is
	// never granted again.
	s.Release(0)
	for cycle := 0; cycle < 200; cycle++ {
		for _, gr := range s.Arbitrate(reqVec(64, map[int]int{0: 63, 1: 62})) {
			if s.HeldChannel(gr.In) == held {
				t.Fatalf("failed channel %d regranted after drain", held)
			}
			s.Release(gr.In)
		}
	}
}

// TestRestoreChannelRejoins: a restored channel is granted again.
func TestRestoreChannelRejoins(t *testing.T) {
	c := cfg(4, topo.L2LLRG)
	s := mustNew(t, c)
	dead := c.L2LCID(0, 3, 0) // input 0's binned channel toward layer 3
	if err := s.FailChannel(dead); err != nil {
		t.Fatal(err)
	}
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if len(g) != 1 || s.HeldChannel(0) == dead {
		t.Fatalf("failed channel still granted: %v held=%d", g, s.HeldChannel(0))
	}
	s.Release(0)
	if err := s.RestoreChannel(dead); err != nil {
		t.Fatal(err)
	}
	if s.ChannelFailed(dead) {
		t.Fatal("channel still marked failed after restore")
	}
	g = s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if len(g) != 1 || s.HeldChannel(0) != dead {
		t.Fatalf("restored binned channel not granted: %v held=%d want %d", g, s.HeldChannel(0), dead)
	}
	if err := s.RestoreChannel(-1); err == nil {
		t.Error("out-of-range restore accepted")
	}
}

// TestFailedPortsNeverGranted drives random traffic with failed input
// and output ports across every scheme and allocation policy: no grant
// may ever touch a failed port, and survivors must not starve.
func TestFailedPortsNeverGranted(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.WLRG, topo.CLRG} {
		for _, alloc := range []topo.AllocPolicy{topo.InputBinned, topo.OutputBinned, topo.PriorityBased} {
			c := cfg(4, scheme)
			c.Alloc = alloc
			s := mustNew(t, c)
			const deadIn, deadOut = 7, 40
			if err := s.FailInput(deadIn); err != nil {
				t.Fatal(err)
			}
			if err := s.FailOutput(deadOut); err != nil {
				t.Fatal(err)
			}
			if !s.InputFailed(deadIn) || !s.OutputFailed(deadOut) {
				t.Fatal("port fault state wrong")
			}
			src := prng.New(41)
			req := make([]int, 64)
			wins := make([]int, 64)
			for cycle := 0; cycle < 600; cycle++ {
				for i := range req {
					req[i] = -1
					if src.Bernoulli(0.6) {
						req[i] = src.Intn(64)
					}
				}
				for _, g := range s.Arbitrate(req) {
					if g.In == deadIn {
						t.Fatalf("%v/%v: failed input %d granted", scheme, alloc, deadIn)
					}
					if g.Out == deadOut {
						t.Fatalf("%v/%v: failed output %d granted", scheme, alloc, deadOut)
					}
					wins[g.In]++
					if src.Bernoulli(0.5) {
						s.Release(g.In)
					}
				}
			}
			for in, w := range wins {
				if in != deadIn && w == 0 {
					t.Errorf("%v/%v: survivor input %d starved", scheme, alloc, in)
				}
			}
		}
	}
}

// TestRestorePortsRejoin: restored ports win grants again and the fault
// masks go quiescent.
func TestRestorePortsRejoin(t *testing.T) {
	s := mustNew(t, cfg(4, topo.CLRG))
	if err := s.FailInput(3); err != nil {
		t.Fatal(err)
	}
	if err := s.FailOutput(50); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreInput(3); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreOutput(50); err != nil {
		t.Fatal(err)
	}
	if s.InputFailed(3) || s.OutputFailed(50) {
		t.Fatal("ports still failed after restore")
	}
	g := s.Arbitrate(reqVec(64, map[int]int{3: 50}))
	if len(g) != 1 || g[0].In != 3 || g[0].Out != 50 {
		t.Fatalf("restored ports not granted: %v", g)
	}
}

// TestPathBlocked covers the dead-flow predicate: same-layer paths never
// block on channels, cross-layer paths block exactly when the layer
// pair's channels are all failed, and failed ports always block.
func TestPathBlocked(t *testing.T) {
	c := cfg(2, topo.CLRG)
	s := mustNew(t, c)
	if s.PathBlocked(0, 63) {
		t.Fatal("healthy cross-layer path blocked")
	}
	if s.PathBlocked(0, 1) {
		t.Fatal("same-layer path blocked")
	}
	if !s.PathBlocked(-1, 0) || !s.PathBlocked(0, 64) {
		t.Fatal("out-of-range path not blocked")
	}
	if err := s.FailInput(0); err != nil {
		t.Fatal(err)
	}
	if !s.PathBlocked(0, 1) {
		t.Fatal("failed input's path not blocked")
	}
	if err := s.RestoreInput(0); err != nil {
		t.Fatal(err)
	}
	// The per-pair budget keeps one channel of a pair alive, so layer
	// pairs can never fully block via FailChannel — but a failed output
	// blocks every path into it.
	if err := s.FailChannel(c.L2LCID(0, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if s.PathBlocked(0, 63) {
		t.Fatal("one healthy channel left, path should be open")
	}
	if err := s.FailOutput(63); err != nil {
		t.Fatal(err)
	}
	if !s.PathBlocked(0, 63) {
		t.Fatal("failed output's path not blocked")
	}
}
