package core

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

// Fault-injection tests: FailChannel models a dead TSV bundle. The
// switch must rebind affected inputs to healthy channels and keep every
// flow live, degrading throughput gracefully.

func TestFailChannelRebindsBinnedInput(t *testing.T) {
	c := cfg(4, topo.L2LLRG)
	s := mustNew(t, c)
	// Input 0 is binned to channel 0 toward layer 3.
	dead := c.L2LCID(0, 3, 0)
	if err := s.FailChannel(dead); err != nil {
		t.Fatal(err)
	}
	if !s.ChannelFailed(dead) {
		t.Fatal("channel not marked failed")
	}
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if len(g) != 1 {
		t.Fatalf("input on failed channel got no grant: %v", g)
	}
	if got := s.HeldChannel(0); got != c.L2LCID(0, 3, 1) {
		t.Fatalf("rebound to channel %d, want next healthy %d", got, c.L2LCID(0, 3, 1))
	}
}

func TestFailChannelRefusesLastChannel(t *testing.T) {
	c := cfg(1, topo.L2LLRG)
	s := mustNew(t, c)
	if err := s.FailChannel(c.L2LCID(0, 3, 0)); err == nil {
		t.Fatal("failing the only channel of a layer pair must be refused")
	}
}

func TestFailChannelBounds(t *testing.T) {
	s := mustNew(t, cfg(4, topo.L2LLRG))
	if err := s.FailChannel(-1); err == nil {
		t.Error("negative id accepted")
	}
	if err := s.FailChannel(9999); err == nil {
		t.Error("out-of-range id accepted")
	}
	c := cfg(4, topo.L2LLRG)
	cid := c.L2LCID(0, 1, 0)
	if err := s.FailChannel(cid); err != nil {
		t.Fatal(err)
	}
	if err := s.FailChannel(cid); err != nil {
		t.Errorf("re-failing a failed channel should be a no-op, got %v", err)
	}
}

func TestNoStarvationWithFailedChannels(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.CLRG} {
		c := cfg(4, scheme)
		s := mustNew(t, c)
		// Kill one channel on every layer pair.
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				if src == dst {
					continue
				}
				if err := s.FailChannel(c.L2LCID(src, dst, 2)); err != nil {
					t.Fatal(err)
				}
			}
		}
		req := make([]int, 64)
		for i := range req {
			req[i] = 63
		}
		wins := make([]int, 64)
		for _, w := range grantSeq(s, req, 64*40) {
			wins[w]++
		}
		for in, w := range wins {
			if w == 0 {
				t.Errorf("%v: input %d starved with failed channels", scheme, in)
			}
		}
	}
}

func TestThroughputDegradesGracefully(t *testing.T) {
	// Purely inter-layer traffic saturating the L2LCs: killing one of
	// the four channels per pair should cost roughly a quarter of the
	// fabric's inter-layer capacity, not collapse it.
	c := cfg(4, topo.CLRG)
	measure := func(fail bool) int {
		s := mustNew(t, c)
		if fail {
			for src := 0; src < 4; src++ {
				for dst := 0; dst < 4; dst++ {
					if src != dst {
						if err := s.FailChannel(c.L2LCID(src, dst, 3)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
		req := make([]int, 64)
		for i := range req {
			// Same local index on the next layer: all traffic crosses.
			req[i] = c.Port((c.LayerOf(i)+1)%4, c.LocalIndex(i))
		}
		return len(grantSeq(s, req, 400))
	}
	full, degraded := measure(false), measure(true)
	ratio := float64(degraded) / float64(full)
	if ratio < 0.70 || ratio > 0.85 {
		t.Errorf("degraded/full = %.2f, want ~0.75 (one of four channels dead)", ratio)
	}
}

func TestFailedChannelNeverGranted(t *testing.T) {
	c := cfg(4, topo.CLRG)
	for _, alloc := range []topo.AllocPolicy{topo.InputBinned, topo.OutputBinned, topo.PriorityBased} {
		cc := c
		cc.Alloc = alloc
		s := mustNew(t, cc)
		dead := cc.L2LCID(0, 3, 1)
		if err := s.FailChannel(dead); err != nil {
			t.Fatal(err)
		}
		src := prng.New(31)
		req := make([]int, 64)
		for cycle := 0; cycle < 800; cycle++ {
			for i := range req {
				req[i] = -1
				if src.Bernoulli(0.6) {
					req[i] = src.Intn(64)
				}
			}
			for _, g := range s.Arbitrate(req) {
				if s.HeldChannel(g.In) == dead {
					t.Fatalf("%v: failed channel granted to input %d", alloc, g.In)
				}
				if src.Bernoulli(0.4) {
					s.Release(g.In)
				}
			}
		}
	}
}
