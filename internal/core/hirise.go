// Package core implements the Hi-Rise 3D hierarchical switch (paper
// §III): per layer, a local switch connecting the layer's inputs to its
// intermediate outputs and to dedicated layer-to-layer channels (L2LCs),
// and an inter-layer switch of per-output sub-blocks choosing between the
// incoming L2LCs and the local intermediate output.
//
// Arbitration is two-phase but single-cycle (paper Fig 8): phase 1 runs
// every local switch, phase 2 every inter-layer sub-block. The local
// switch's LRG priority is updated only when its winner also wins the
// final output — the update is back-propagated — which guarantees a
// losing request keeps rising at the inter-layer switch and never
// starves. The sub-blocks arbitrate with the configured scheme:
// baseline L-2-L LRG, Weighted LRG, or the paper's Class-based LRG.
//
// topo.ISLIP1 selects the paper's §VII iSLIP-1 *analog*: round-robin
// pointers (arb.RoundRobin) at both stages of this same hierarchical
// structure, the first stage's pointer advancing only on a final-stage
// grant via the back-propagated Update. It is a related-work comparison
// point, not the real algorithm — canonical accept-gated multi-iteration
// iSLIP on virtual output queues lives in internal/sched and runs under
// sim.RunVOQ; core.New rejects those VOQ-only schemes (topo.ISLIP,
// topo.Wavefront, topo.MWM) via Config.Validate.
//
// Like the 2D Swizzle-Switch, the model is connection-oriented: a granted
// connection occupies its input, its final output, and (for cross-layer
// traffic) its L2LC until the caller releases it after the packet's last
// flit; occupied resources do not arbitrate.
package core

import (
	"fmt"
	"math/bits"

	"github.com/reprolab/hirise/internal/arb"
	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/topo"
)

// Switch is one Hi-Rise switch instance.
type Switch struct {
	cfg   topo.Config
	ports int // inputs (= outputs) per layer

	interArb []arb.BitArbiter // per final output: the intermediate-output port arbiter (over local inputs)
	chArb    []arb.BitArbiter // per L2LC: the local-switch channel port arbiter (over local inputs)
	subs     []subBlock       // per final output: inter-layer sub-block arbiter

	heldOut  []int  // per input: final output held, or -1
	heldCh   []int  // per input: L2LC held, or -1
	outIn    []int  // per output: holding input, or -1
	chBusy   []bool // per L2LC
	chFailed []bool // per L2LC: out of service (TSV fault); see FailChannel

	// Runtime port-fault state. inFailed masks the failed local inputs
	// of each layer, outFailed the failed final outputs; both are
	// lazily allocated by ensurePortFaults and applied to the request
	// vectors with word-parallel AndNot. portFaults gates every
	// fault-path branch in Arbitrate, so with no port failed the hot
	// loop is bit-identical to the fault-free build.
	inFailed   []bitvec.Vec // per layer: failed local inputs
	outFailed  bitvec.Vec   // failed final outputs
	portFaults bool

	chGrants  []int64 // per L2LC: connections carried (diagnostics)
	outGrants []int64 // per output: connections formed
	localPath int64   // same-layer connections (no L2LC)

	// Observability (nil when disabled; see SetObserver).
	rec    *obs.Recorder
	audit  *obs.FairnessAudit // phase-2 audit for the non-CLRG schemes
	cycles int64              // Arbitrate calls, the switch-local cycle count

	// Geometry lookup tables, precomputed at construction. The topo
	// helpers divide by PortsPerLayer on every call; the hot loop
	// resolves layer, local index, and channel ids by indexing instead.
	layerOf  []int // per global port: owning layer
	localIdx []int // per global port: index within its layer
	localMod []int // per global port: LocalIndex % Channels (binned channel choice)
	cidBase  []int // per src*Layers+dst: first L2LC id of the group
	cidLine  []int // per L2LC id: sub-block line index on its destination layer
	cidSrc   []int // per L2LC id: source layer

	// Scratch buffers, reused every cycle. The request masks are
	// word-parallel bitsets (internal/bitvec): clearing and granting
	// cost one machine-word operation per 64 local inputs, mirroring
	// the bit-parallel priority lines of the hardware arbiter.
	grants     []topo.Grant // Arbitrate's return buffer, valid until the next call
	intermReq  []bitvec.Vec // per output: local-input request mask
	chReq      []bitvec.Vec // per L2LC: local-input request mask
	destReq    []bitvec.Vec // per (layer, dest layer): mask for priority-based allocation
	intermWin  []int        // per output: local winner (local index), -1 if none
	chWin      []int        // per L2LC: local winner (local index), -1 if none
	chWeight   []int        // per L2LC: requestor count this cycle (WLRG)
	outLineReq []bitvec.Vec // per output: sub-block line request mask
	lineInput  []int        // per output*lines+line: requesting global input
	lineWeight []int
	lineCh     []int // global L2LC id per line, -1 for the intermediate line
}

type subBlock struct {
	scheme topo.Scheme
	plain  arb.BitArbiter // L-2-L LRG baseline or the iSLIP-1 round-robin analog
	wlrg   *arb.WLRG
	clrg   *arb.CLRG
}

// New returns a Hi-Rise switch for the given configuration.
func New(cfg topo.Config) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Layers < 2 {
		return nil, fmt.Errorf("core: Hi-Rise needs at least 2 layers, have %d (use crossbar.New for 2D)", cfg.Layers)
	}
	n, ports := cfg.Radix, cfg.PortsPerLayer()
	lines := cfg.SubBlockInputs()

	s := &Switch{
		cfg:        cfg,
		ports:      ports,
		interArb:   make([]arb.BitArbiter, n),
		chArb:      make([]arb.BitArbiter, cfg.NumL2LC()),
		subs:       make([]subBlock, n),
		heldOut:    make([]int, n),
		heldCh:     make([]int, n),
		outIn:      make([]int, n),
		chBusy:     make([]bool, cfg.NumL2LC()),
		chFailed:   make([]bool, cfg.NumL2LC()),
		chGrants:   make([]int64, cfg.NumL2LC()),
		outGrants:  make([]int64, n),
		intermReq:  make([]bitvec.Vec, n),
		chReq:      make([]bitvec.Vec, cfg.NumL2LC()),
		destReq:    make([]bitvec.Vec, cfg.Layers*cfg.Layers),
		intermWin:  make([]int, n),
		chWin:      make([]int, cfg.NumL2LC()),
		chWeight:   make([]int, cfg.NumL2LC()),
		outLineReq: make([]bitvec.Vec, n),
		lineInput:  make([]int, n*lines),
		lineWeight: make([]int, n*lines),
		lineCh:     make([]int, n*lines),
		layerOf:    make([]int, n),
		localIdx:   make([]int, n),
		localMod:   make([]int, n),
		cidBase:    make([]int, cfg.Layers*cfg.Layers),
		cidLine:    make([]int, cfg.NumL2LC()),
		cidSrc:     make([]int, cfg.NumL2LC()),
	}
	for p := 0; p < n; p++ {
		s.layerOf[p] = cfg.LayerOf(p)
		s.localIdx[p] = cfg.LocalIndex(p)
		s.localMod[p] = cfg.LocalIndex(p) % cfg.Channels
	}
	for l := 0; l < cfg.Layers; l++ {
		for d := 0; d < cfg.Layers; d++ {
			if d == l {
				continue
			}
			s.cidBase[l*cfg.Layers+d] = cfg.L2LCID(l, d, 0)
			for ch := 0; ch < cfg.Channels; ch++ {
				cid := cfg.L2LCID(l, d, ch)
				s.cidLine[cid] = s.lineFor(d, l, ch)
				s.cidSrc[cid] = l
			}
		}
	}
	// The iSLIP-1 analog swaps the LRG priority vectors for round-robin
	// pointers at both stages. Accept-gating happens structurally: Update
	// on these arbiters runs only during grant back-propagation, i.e.
	// only for winners whose final connection forms (see arb.RoundRobin's
	// pointer-semantics audit comment).
	newLocal := func() arb.BitArbiter {
		if cfg.Scheme == topo.ISLIP1 {
			return arb.NewRoundRobin(ports)
		}
		return arb.NewLRG(ports)
	}
	for o := range s.interArb {
		s.interArb[o] = newLocal()
		s.intermReq[o] = bitvec.New(ports)
		s.outLineReq[o] = bitvec.New(lines)
		s.subs[o] = newSubBlock(cfg, lines)
		s.heldOut[o] = -1
		s.heldCh[o] = -1
		s.outIn[o] = -1
	}
	for c := range s.chArb {
		s.chArb[c] = newLocal()
		s.chReq[c] = bitvec.New(ports)
	}
	for d := range s.destReq {
		s.destReq[d] = bitvec.New(ports)
	}
	return s, nil
}

func newSubBlock(cfg topo.Config, lines int) subBlock {
	sb := subBlock{scheme: cfg.Scheme}
	switch cfg.Scheme {
	case topo.WLRG:
		sb.wlrg = arb.NewWLRG(lines)
	case topo.CLRG:
		sb.clrg = arb.NewCLRG(lines, cfg.Radix, cfg.Classes)
	case topo.ISLIP1:
		sb.plain = arb.NewRoundRobin(lines)
	default: // LRG on a hierarchical switch is the baseline L-2-L LRG
		sb.plain = arb.NewLRG(lines)
	}
	return sb
}

// Radix returns the total port count.
func (s *Switch) Radix() int { return s.cfg.Radix }

// resetArb resets one local-port or sub-block arbiter via its concrete
// Reset method (every arbiter in internal/arb has one).
func resetArb(a arb.Arbiter) {
	r, ok := a.(interface{ Reset() })
	if !ok {
		panic(fmt.Sprintf("core: arbiter %T has no Reset", a))
	}
	r.Reset()
}

// Reset restores the as-constructed state: connections drop, every
// arbiter (local-switch ports, L2LC ports, inter-layer sub-blocks)
// returns to its initial priority order, counters and runtime faults
// clear, and scratch zeroes. Attached observability sinks stay attached;
// geometry tables are immutable and untouched. Reset lets arena-style
// callers reuse one switch across runs without reallocating its ~radix²
// bits of arbitration state.
func (s *Switch) Reset() {
	for in := range s.heldOut {
		s.heldOut[in] = -1
		s.heldCh[in] = -1
		s.outIn[in] = -1
		s.outGrants[in] = 0
	}
	for c := range s.chBusy {
		s.chBusy[c] = false
		s.chFailed[c] = false
		s.chGrants[c] = 0
		s.chWin[c] = 0
		s.chWeight[c] = 0
		s.chReq[c].Zero()
		resetArb(s.chArb[c])
	}
	s.localPath = 0
	s.cycles = 0
	for _, v := range s.inFailed {
		v.Zero()
	}
	s.outFailed.Zero()
	s.portFaults = false
	s.grants = s.grants[:0]
	for o := range s.intermReq {
		s.intermReq[o].Zero()
		s.outLineReq[o].Zero()
		s.intermWin[o] = 0
		resetArb(s.interArb[o])
		sb := &s.subs[o]
		switch sb.scheme {
		case topo.WLRG:
			sb.wlrg.Reset()
		case topo.CLRG:
			sb.clrg.Reset()
		default:
			resetArb(sb.plain)
		}
	}
	for d := range s.destReq {
		s.destReq[d].Zero()
	}
	for i := range s.lineInput {
		s.lineInput[i] = 0
		s.lineWeight[i] = 0
		s.lineCh[i] = 0
	}
}

// SetObserver attaches observability sinks (internal/obs). The
// observer's fairness audit receives one observation per contending
// line per inter-layer sub-block round — routed through arb.CLRG for
// the CLRG scheme (so observations carry the input's priority class)
// and recorded here for the class-less schemes — and the observer's
// trace recorder receives an EvL2LC event for every connection formed
// across a layer-to-layer channel, keyed by this switch's own
// arbitration-cycle counter (Arbitrate is called exactly once per
// simulated cycle, so the two clocks agree). Passing nil detaches and
// restores the allocation-free disabled path.
func (s *Switch) SetObserver(o *obs.Observer) {
	s.rec = o.Rec()
	audit := o.Audit()
	if s.cfg.Scheme == topo.CLRG {
		// Class-aware observations come from inside the CLRG arbiters.
		s.audit = nil
		for i := range s.subs {
			s.subs[i].clrg.SetAudit(audit)
		}
		return
	}
	s.audit = audit
}

// Config returns the switch configuration.
func (s *Switch) Config() topo.Config { return s.cfg }

// lineFor returns the sub-block line index on destination layer d for the
// channel (src, ch); lines order the c*(L-1) incoming L2LCs by ascending
// source layer then channel, with the local intermediate output last.
func (s *Switch) lineFor(d, src, ch int) int {
	sidx := src
	if src > d {
		sidx--
	}
	return sidx*s.cfg.Channels + ch
}

// Arbitrate runs one two-phase arbitration cycle. req[i] is the final
// output requested by input i, or -1. Inputs holding connections, busy
// outputs, and busy L2LCs do not participate. Returns the connections
// formed; each persists until Release. The returned slice is a scratch
// buffer reused by the next Arbitrate call, so callers must consume it
// before re-arbitrating (every simulator in this repository does).
func (s *Switch) Arbitrate(req []int) []topo.Grant {
	if len(req) != s.cfg.Radix {
		panic(fmt.Sprintf("core: request vector length %d, want %d", len(req), s.cfg.Radix))
	}
	cfg := s.cfg
	s.cycles++

	// Phase 1a: build local-switch request masks.
	for o := range s.intermReq {
		s.intermReq[o].Zero()
		s.outLineReq[o].Zero()
		s.intermWin[o] = -1
	}
	for c := range s.chReq {
		s.chReq[c].Zero()
		s.chWin[c] = -1
		s.chWeight[c] = 0
	}
	if cfg.Alloc == topo.PriorityBased {
		for d := range s.destReq {
			s.destReq[d].Zero()
		}
	}
	outputBinned := cfg.Alloc == topo.OutputBinned
	for in, o := range req {
		if o < 0 || s.heldOut[in] >= 0 || s.outIn[o] >= 0 {
			continue
		}
		if s.portFaults && s.outFailed.Get(o) {
			continue
		}
		l, li := s.layerOf[in], s.localIdx[in]
		d := s.layerOf[o]
		if d == l {
			s.intermReq[o].Set(li)
			continue
		}
		if cfg.Alloc == topo.PriorityBased {
			s.destReq[l*cfg.Layers+d].Set(li)
			continue
		}
		ch := s.localMod[in]
		if outputBinned {
			ch = s.localMod[o]
		}
		cid := s.cidBase[l*cfg.Layers+d] + ch
		if s.chFailed[cid] {
			cid = s.healthyChannel(l, d, ch)
			if cid < 0 {
				continue
			}
		}
		if !s.chBusy[cid] {
			s.chReq[cid].Set(li)
			s.chWeight[cid]++
		}
	}

	// Mask the failed inputs out of every request vector before any
	// arbiter sees them — one word-parallel AndNot per vector, and only
	// when a port fault is actually active.
	if s.portFaults {
		s.maskFailedInputs()
	}

	// Phase 1b: local-switch arbitration.
	for o := range s.intermReq {
		s.intermWin[o] = s.interArb[o].GrantBits(s.intermReq[o])
	}
	if cfg.Alloc == topo.PriorityBased {
		// Channels to a destination fill in priority order: each channel's
		// arbiter picks among the requestors the earlier channels left.
		for l := 0; l < cfg.Layers; l++ {
			for d := 0; d < cfg.Layers; d++ {
				if d == l {
					continue
				}
				remaining := s.destReq[l*cfg.Layers+d]
				left := remaining.Count()
				for ch := 0; ch < cfg.Channels && left > 0; ch++ {
					cid := cfg.L2LCID(l, d, ch)
					if s.chBusy[cid] || s.chFailed[cid] {
						continue
					}
					w := s.chArb[cid].GrantBits(remaining)
					if w < 0 {
						break
					}
					s.chWin[cid] = w
					s.chWeight[cid] = left
					remaining.Clear(w)
					left--
				}
			}
		}
	} else {
		for c := range s.chReq {
			s.chWin[c] = s.chArb[c].GrantBits(s.chReq[c])
		}
	}

	// Phase 2a: scatter channel winners to their target outputs'
	// sub-block request vectors. Each channel winner targets exactly one
	// output (the one its winning input requested), so this touches one
	// entry per L2LC instead of scanning every (output, source layer,
	// channel) triple; the per-output bitset is order-insensitive, so
	// the grants are identical to the output-major scan.
	grants := s.grants[:0]
	lines := cfg.SubBlockInputs()
	for cid, w := range s.chWin {
		if w < 0 {
			continue
		}
		gi := s.cidSrc[cid]*s.ports + w
		o := req[gi]
		line := s.cidLine[cid]
		s.outLineReq[o].Set(line)
		base := o * lines
		s.lineInput[base+line] = gi
		s.lineWeight[base+line] = s.chWeight[cid]
		s.lineCh[base+line] = cid
	}

	// Phase 2b: inter-layer sub-block arbitration per idle final output.
	for o := 0; o < cfg.Radix; o++ {
		if s.outIn[o] >= 0 {
			continue
		}
		if s.portFaults && s.outFailed.Get(o) {
			continue // defense in depth: the build loop already skipped it
		}
		lineReq := s.outLineReq[o]
		base := o * lines
		if w := s.intermWin[o]; w >= 0 {
			line := lines - 1
			lineReq.Set(line)
			s.lineInput[base+line] = s.layerOf[o]*s.ports + w
			s.lineWeight[base+line] = s.intermReq[o].Count()
			s.lineCh[base+line] = -1
		}
		if lineReq.None() {
			continue
		}
		lineInput := s.lineInput[base : base+lines]

		sb := &s.subs[o]
		var win int
		switch sb.scheme {
		case topo.WLRG:
			win = sb.wlrg.GrantBits(lineReq)
		case topo.CLRG:
			win = sb.clrg.GrantBits(lineReq, lineInput)
		default:
			win = sb.plain.GrantBits(lineReq)
		}
		if s.audit != nil {
			// Class-less schemes audit here, one observation per
			// contending line (CLRG audits inside arb.CLRG.Grant with
			// the real class; these report class 0).
			for w, word := range lineReq {
				for word != 0 {
					line := w<<6 | bits.TrailingZeros64(word)
					word &= word - 1
					s.audit.Observe(lineInput[line], 0, line == win)
				}
			}
		}
		if win < 0 {
			continue
		}
		gi := lineInput[win]
		switch sb.scheme {
		case topo.WLRG:
			sb.wlrg.Update(win, s.lineWeight[base+win])
		case topo.CLRG:
			sb.clrg.Update(win, gi)
		default:
			sb.plain.Update(win)
		}

		// Back-propagate the local-switch priority update to the winner.
		if cid := s.lineCh[base+win]; cid >= 0 {
			s.chArb[cid].Update(s.localIdx[gi])
			s.chBusy[cid] = true
			s.heldCh[gi] = cid
			s.chGrants[cid]++
			if s.rec != nil {
				s.rec.Record(s.cycles-1, obs.EvL2LC, gi, o, cid)
			}
		} else {
			s.interArb[o].Update(s.localIdx[gi])
			s.localPath++
		}
		s.outGrants[o]++
		s.heldOut[gi] = o
		s.outIn[o] = gi
		grants = append(grants, topo.Grant{In: gi, Out: o})
	}
	s.grants = grants
	return grants
}

// Release frees the connection held by input in after its last flit. It
// is a no-op if in holds nothing.
func (s *Switch) Release(in int) {
	o := s.heldOut[in]
	if o < 0 {
		return
	}
	s.heldOut[in] = -1
	s.outIn[o] = -1
	if cid := s.heldCh[in]; cid >= 0 {
		s.chBusy[cid] = false
		s.heldCh[in] = -1
	}
}

// Holds returns the final output input in is connected to, or -1.
func (s *Switch) Holds(in int) int { return s.heldOut[in] }

// HeldChannel returns the L2LC input in's connection crosses, or -1 for
// no connection or a same-layer connection.
func (s *Switch) HeldChannel(in int) int { return s.heldCh[in] }

// OutputBusy reports whether final output out carries a connection.
func (s *Switch) OutputBusy(out int) bool { return s.outIn[out] >= 0 }

// ChannelBusy reports whether the given L2LC carries a connection.
func (s *Switch) ChannelBusy(cid int) bool { return s.chBusy[cid] }

// healthyChannel returns the L2LC for (src layer, dst layer) starting at
// the assigned channel and probing forward past failed channels, or -1
// if every channel of the pair is dead.
func (s *Switch) healthyChannel(src, dst, ch int) int {
	for k := 0; k < s.cfg.Channels; k++ {
		cid := s.cfg.L2LCID(src, dst, (ch+k)%s.cfg.Channels)
		if !s.chFailed[cid] {
			return cid
		}
	}
	return -1
}

// FailChannel removes an L2LC from service, modeling a faulty TSV
// bundle. Binned traffic assigned to the channel falls back to the next
// healthy channel toward the same layer; priority-based allocation
// simply skips it. Failing the last healthy channel between a layer
// pair is refused, since that would disconnect the pair.
//
// Failing a held (busy) channel is fail-stop, not fail-drop: the
// in-flight connection keeps the channel through Release and every one
// of its flits is delivered — chFailed only gates new arbitration, it
// never tears down an established connection. The channel leaves
// service the moment its current packet drains.
func (s *Switch) FailChannel(cid int) error {
	if cid < 0 || cid >= len(s.chFailed) {
		return fmt.Errorf("core: no such channel %d", cid)
	}
	if s.chFailed[cid] {
		return nil
	}
	src, dst, _ := s.cfg.L2LCSrcDst(cid)
	healthy := 0
	for ch := 0; ch < s.cfg.Channels; ch++ {
		if !s.chFailed[s.cfg.L2LCID(src, dst, ch)] {
			healthy++
		}
	}
	if healthy <= 1 {
		return fmt.Errorf("core: channel %d is the last healthy L2LC from layer %d to %d", cid, src, dst)
	}
	// An in-flight connection over cid finishes its packet normally; the
	// channel simply accepts no new arbitration.
	s.chFailed[cid] = true
	return nil
}

// RestoreChannel returns a failed L2LC to service (a repaired transient
// fault). Restoring a healthy channel is a no-op.
func (s *Switch) RestoreChannel(cid int) error {
	if cid < 0 || cid >= len(s.chFailed) {
		return fmt.Errorf("core: no such channel %d", cid)
	}
	s.chFailed[cid] = false
	return nil
}

// ChannelFailed reports whether cid has been failed.
func (s *Switch) ChannelFailed(cid int) bool { return s.chFailed[cid] }

// ensurePortFaults lazily allocates the port-fault masks; switches that
// never see a port fault stay on the exact fault-free memory layout.
func (s *Switch) ensurePortFaults() {
	if s.inFailed != nil {
		return
	}
	s.inFailed = make([]bitvec.Vec, s.cfg.Layers)
	for l := range s.inFailed {
		s.inFailed[l] = bitvec.New(s.ports)
	}
	s.outFailed = bitvec.New(s.cfg.Radix)
}

// refreshPortFaults recomputes the portFaults gate after a restore.
func (s *Switch) refreshPortFaults() {
	s.portFaults = s.outFailed.Any()
	for _, v := range s.inFailed {
		s.portFaults = s.portFaults || v.Any()
	}
}

// maskFailedInputs clears every failed input's bit from the phase-1
// request vectors (and keeps the WLRG weights consistent with the
// masked masks). Called only while a port fault is active.
func (s *Switch) maskFailedInputs() {
	cfg := s.cfg
	for o := range s.intermReq {
		s.intermReq[o].AndNot(s.inFailed[s.layerOf[o]])
	}
	if cfg.Alloc == topo.PriorityBased {
		for l := 0; l < cfg.Layers; l++ {
			for d := 0; d < cfg.Layers; d++ {
				if d != l {
					s.destReq[l*cfg.Layers+d].AndNot(s.inFailed[l])
				}
			}
		}
		return
	}
	for c := range s.chReq {
		s.chReq[c].AndNot(s.inFailed[s.cidSrc[c]])
		s.chWeight[c] = s.chReq[c].Count()
	}
}

// FailInput removes input port in from service at runtime: its future
// requests are masked out of every arbitration phase by a word-parallel
// AndNot. A connection the input already holds drains normally — a port
// fault never drops an in-flight flit.
func (s *Switch) FailInput(in int) error {
	if in < 0 || in >= s.cfg.Radix {
		return fmt.Errorf("core: no such input %d", in)
	}
	s.ensurePortFaults()
	s.inFailed[s.layerOf[in]].Set(s.localIdx[in])
	s.portFaults = true
	return nil
}

// RestoreInput returns a failed input port to service.
func (s *Switch) RestoreInput(in int) error {
	if in < 0 || in >= s.cfg.Radix {
		return fmt.Errorf("core: no such input %d", in)
	}
	if s.inFailed == nil {
		return nil
	}
	s.inFailed[s.layerOf[in]].Clear(s.localIdx[in])
	s.refreshPortFaults()
	return nil
}

// FailOutput removes final output out from service at runtime: requests
// toward it are ignored and its sub-block stops arbitrating. A
// connection it already carries drains normally first.
func (s *Switch) FailOutput(out int) error {
	if out < 0 || out >= s.cfg.Radix {
		return fmt.Errorf("core: no such output %d", out)
	}
	s.ensurePortFaults()
	s.outFailed.Set(out)
	s.portFaults = true
	return nil
}

// RestoreOutput returns a failed output port to service.
func (s *Switch) RestoreOutput(out int) error {
	if out < 0 || out >= s.cfg.Radix {
		return fmt.Errorf("core: no such output %d", out)
	}
	if s.inFailed == nil {
		return nil
	}
	s.outFailed.Clear(out)
	s.refreshPortFaults()
	return nil
}

// InputFailed reports whether input port in is out of service.
func (s *Switch) InputFailed(in int) bool {
	return s.inFailed != nil && s.inFailed[s.layerOf[in]].Get(s.localIdx[in])
}

// OutputFailed reports whether final output out is out of service.
func (s *Switch) OutputFailed(out int) bool {
	return s.inFailed != nil && s.outFailed.Get(out)
}

// PathBlocked reports whether no fault-free route from input in to
// final output out currently exists: the input or the output is failed,
// or (for a cross-layer pair) every L2LC between the two layers is. The
// simulator uses it to detect and retire dead flows.
func (s *Switch) PathBlocked(in, out int) bool {
	if in < 0 || in >= s.cfg.Radix || out < 0 || out >= s.cfg.Radix {
		return true
	}
	if s.portFaults && (s.inFailed[s.layerOf[in]].Get(s.localIdx[in]) || s.outFailed.Get(out)) {
		return true
	}
	l, d := s.layerOf[in], s.layerOf[out]
	if l == d {
		return false
	}
	return s.healthyChannel(l, d, 0) < 0
}

// Stats reports the switch's connection counters since construction:
// connections carried per L2LC, connections formed per output, and the
// count that stayed on their source layer. The L2LC histogram is the
// direct observable of the channel-allocation policies' balance.
type Stats struct {
	// ChannelGrants counts connections per L2LC, indexed by channel id.
	ChannelGrants []int64
	// OutputGrants counts connections per final output.
	OutputGrants []int64
	// LocalPath counts same-layer connections (no L2LC used).
	LocalPath int64
}

// Stats returns a snapshot of the connection counters.
func (s *Switch) Stats() Stats {
	return Stats{
		ChannelGrants: append([]int64(nil), s.chGrants...),
		OutputGrants:  append([]int64(nil), s.outGrants...),
		LocalPath:     s.localPath,
	}
}

// Class returns the CLRG priority class of primary input in at the
// sub-block of output out; it panics for other schemes. Exposed for
// tests and fairness diagnostics.
func (s *Switch) Class(out, in int) int {
	if s.subs[out].clrg == nil {
		panic("core: Class is only meaningful for CLRG")
	}
	return s.subs[out].clrg.Class(in)
}
