package core

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

func cfg(channels int, scheme topo.Scheme) topo.Config {
	return topo.Config{
		Radix: 64, Layers: 4, Channels: channels,
		Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
	}
}

func mustNew(t *testing.T, c topo.Config) *Switch {
	t.Helper()
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func reqVec(n int, pairs map[int]int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = -1
	}
	for in, out := range pairs {
		r[in] = out
	}
	return r
}

// grantSeq runs single-cycle transactions (grant, record, release) and
// returns the winner sequence, mirroring the paper's arbitration-cycle
// walkthroughs in Figs 4 and 5.
func grantSeq(s *Switch, req []int, cycles int) []int {
	var seq []int
	for i := 0; i < cycles; i++ {
		g := s.Arbitrate(req)
		for _, gr := range g {
			seq = append(seq, gr.In)
			s.Release(gr.In)
		}
	}
	return seq
}

func TestNewValidates(t *testing.T) {
	if _, err := New(topo.Config{Radix: 63, Layers: 4, Channels: 1}); err == nil {
		t.Error("invalid radix accepted")
	}
	if _, err := New(topo.Config{Radix: 64, Layers: 1}); err == nil {
		t.Error("single layer accepted")
	}
}

func TestSameLayerConnection(t *testing.T) {
	s := mustNew(t, cfg(1, topo.L2LLRG))
	// Input 0 and output 5 are both on layer 0: local path, no L2LC.
	g := s.Arbitrate(reqVec(64, map[int]int{0: 5}))
	if len(g) != 1 || g[0] != (topo.Grant{In: 0, Out: 5}) {
		t.Fatalf("grants %v", g)
	}
	if s.HeldChannel(0) != -1 {
		t.Fatal("same-layer connection should not occupy an L2LC")
	}
}

func TestCrossLayerConnectionUsesChannel(t *testing.T) {
	c := cfg(1, topo.L2LLRG)
	s := mustNew(t, c)
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if len(g) != 1 || g[0] != (topo.Grant{In: 0, Out: 63}) {
		t.Fatalf("grants %v", g)
	}
	want := c.L2LCID(0, 3, 0)
	if got := s.HeldChannel(0); got != want {
		t.Fatalf("held channel %d, want %d", got, want)
	}
	if !s.ChannelBusy(want) {
		t.Fatal("channel not marked busy")
	}
	s.Release(0)
	if s.ChannelBusy(want) || s.OutputBusy(63) || s.Holds(0) != -1 {
		t.Fatal("release did not free all resources")
	}
}

func TestBusyChannelBlocksOtherInputs(t *testing.T) {
	// c=1: input 0 holds the only L1->L4 channel; input 1 cannot reach any
	// layer-3 output until release, even a different one.
	s := mustNew(t, cfg(1, topo.L2LLRG))
	s.Arbitrate(reqVec(64, map[int]int{0: 63}))
	if g := s.Arbitrate(reqVec(64, map[int]int{1: 62})); len(g) != 0 {
		t.Fatalf("grant through busy channel: %v", g)
	}
	s.Release(0)
	if g := s.Arbitrate(reqVec(64, map[int]int{1: 62})); len(g) != 1 {
		t.Fatal("channel not reusable after release")
	}
}

func TestChannelMultiplicityAddsPaths(t *testing.T) {
	// c=4 input-binned: inputs 0 and 1 use different channels to layer 3,
	// so both connect in the same cycle.
	s := mustNew(t, cfg(4, topo.L2LLRG))
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63, 1: 62}))
	if len(g) != 2 {
		t.Fatalf("grants %v, want both connections", g)
	}
	if s.HeldChannel(0) == s.HeldChannel(1) {
		t.Fatal("binned inputs 0 and 1 should use distinct channels")
	}
}

func TestInputBinnedSharesChannel(t *testing.T) {
	// Inputs 0 and 4 share channel 0 (local index % 4), so only one wins
	// per cycle even toward different outputs.
	s := mustNew(t, cfg(4, topo.L2LLRG))
	g := s.Arbitrate(reqVec(64, map[int]int{0: 63, 4: 62}))
	if len(g) != 1 {
		t.Fatalf("grants %v, want exactly one through the shared channel", g)
	}
}

// TestPaperFig4Sequence reproduces the paper's baseline L-2-L LRG
// unfairness walkthrough: inputs {3,7,11,15} on layer 1 and input {20} on
// layer 2 all request output 63 on layer 4 (1-channel config). The lone
// contender wins every other arbitration — the unfair interleaving of
// paper Fig 4 — here starting from the model's default priority order.
func TestPaperFig4Sequence(t *testing.T) {
	s := mustNew(t, cfg(1, topo.L2LLRG))
	req := reqVec(64, map[int]int{3: 63, 7: 63, 11: 63, 15: 63, 20: 63})
	got := grantSeq(s, req, 10)
	want := []int{3, 20, 7, 20, 11, 20, 15, 20, 3, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

// TestPaperFig5Sequence reproduces the CLRG walkthrough on the same
// adversarial pattern: after the first class rotation the winner sequence
// contains each of the five inputs exactly once per five grants, matching
// the flat 2D LRG pattern (paper Fig 5).
func TestPaperFig5Sequence(t *testing.T) {
	s := mustNew(t, cfg(1, topo.CLRG))
	req := reqVec(64, map[int]int{3: 63, 7: 63, 11: 63, 15: 63, 20: 63})
	got := grantSeq(s, req, 10)
	want := []int{3, 20, 7, 11, 15, 20, 3, 7, 11, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

// TestAdversarialFairness quantifies Fig 11(c): under L-2-L LRG the lone
// layer-2 contender hoards ~half the output bandwidth; under CLRG and
// WLRG every input gets ~1/5.
func TestAdversarialFairness(t *testing.T) {
	req := reqVec(64, map[int]int{3: 63, 7: 63, 11: 63, 15: 63, 20: 63})
	const cycles = 1000

	count := func(scheme topo.Scheme) map[int]int {
		s := mustNew(t, cfg(1, scheme))
		wins := map[int]int{}
		for _, w := range grantSeq(s, req, cycles) {
			wins[w]++
		}
		return wins
	}

	l2l := count(topo.L2LLRG)
	if share := float64(l2l[20]) / cycles; share < 0.45 || share > 0.55 {
		t.Errorf("L-2-L LRG: input 20 share %.2f, want ~0.5", share)
	}

	for _, scheme := range []topo.Scheme{topo.CLRG, topo.WLRG} {
		wins := count(scheme)
		for _, in := range []int{3, 7, 11, 15, 20} {
			if share := float64(wins[in]) / cycles; share < 0.18 || share > 0.22 {
				t.Errorf("%v: input %d share %.2f, want ~0.2", scheme, in, share)
			}
		}
	}
}

// TestHotspotFairness quantifies Fig 11(a)'s root cause: with every input
// requesting output 63 (4-channel config), L-2-L LRG gives each remote
// input ~4x the bandwidth of a local one (12 L2LC lines with 4 inputs each
// vs 1 intermediate line with 16), while CLRG equalizes everyone.
func TestHotspotFairness(t *testing.T) {
	req := make([]int, 64)
	for i := range req {
		req[i] = 63
	}
	const cycles = 6400

	run := func(scheme topo.Scheme) (remote, local float64) {
		s := mustNew(t, cfg(4, scheme))
		wins := make([]int, 64)
		for _, w := range grantSeq(s, req, cycles) {
			wins[w]++
		}
		for i := 0; i < 48; i++ {
			remote += float64(wins[i]) / 48
		}
		for i := 48; i < 64; i++ {
			local += float64(wins[i]) / 16
		}
		return
	}

	remote, local := run(topo.L2LLRG)
	if ratio := remote / local; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("L-2-L LRG remote/local win ratio %.2f, want ~4", ratio)
	}

	remote, local = run(topo.CLRG)
	if ratio := remote / local; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("CLRG remote/local win ratio %.2f, want ~1", ratio)
	}
}

// TestISLIP1MatchesBaselineUnfairness verifies the paper's §VII claim: a
// single-iteration iSLIP analog reproduces the L-2-L LRG bias on the
// adversarial pattern — the lone layer-2 contender still hoards half the
// output.
func TestISLIP1MatchesBaselineUnfairness(t *testing.T) {
	s := mustNew(t, cfg(1, topo.ISLIP1))
	req := reqVec(64, map[int]int{3: 63, 7: 63, 11: 63, 15: 63, 20: 63})
	const cycles = 1000
	wins := map[int]int{}
	for _, w := range grantSeq(s, req, cycles) {
		wins[w]++
	}
	if share := float64(wins[20]) / cycles; share < 0.45 || share > 0.55 {
		t.Errorf("iSLIP-1: input 20 share %.2f, want ~0.5 (as unfair as L-2-L LRG)", share)
	}
}

// TestNoStarvation checks the back-propagated priority update argument
// (paper §III-B1): every persistent requestor is eventually served, under
// every scheme.
func TestNoStarvation(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.WLRG, topo.CLRG} {
		s := mustNew(t, cfg(4, scheme))
		req := make([]int, 64)
		for i := range req {
			req[i] = 63 // worst case: total hotspot
		}
		wins := make([]int, 64)
		for _, w := range grantSeq(s, req, 64*30) {
			wins[w]++
		}
		for in, w := range wins {
			if w == 0 {
				t.Errorf("%v: input %d starved over %d grants", scheme, in, 64*30)
			}
		}
	}
}

// TestResourceInvariants drives random traffic with random release timing
// and checks that no two live connections ever share an output or an
// L2LC, for every scheme and allocation policy.
func TestResourceInvariants(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.WLRG, topo.CLRG} {
		for _, alloc := range []topo.AllocPolicy{topo.InputBinned, topo.OutputBinned, topo.PriorityBased} {
			c := cfg(4, scheme)
			c.Alloc = alloc
			s := mustNew(t, c)
			src := prng.New(uint64(17 + int(scheme)*10 + int(alloc)))
			req := make([]int, 64)
			liveOut := map[int]int{}
			liveCh := map[int]int{}
			for cycle := 0; cycle < 1500; cycle++ {
				for i := range req {
					req[i] = -1
					if src.Bernoulli(0.5) {
						req[i] = src.Intn(64)
					}
				}
				for _, g := range s.Arbitrate(req) {
					if req[g.In] != g.Out {
						t.Fatalf("%v/%v: grant %v does not match request %d", scheme, alloc, g, req[g.In])
					}
					for _, o := range liveOut {
						if o == g.Out {
							t.Fatalf("%v/%v: output %d double-granted", scheme, alloc, g.Out)
						}
					}
					if _, dup := liveOut[g.In]; dup {
						t.Fatalf("%v/%v: input %d granted while holding", scheme, alloc, g.In)
					}
					liveOut[g.In] = g.Out
					if ch := s.HeldChannel(g.In); ch >= 0 {
						for _, other := range liveCh {
							if other == ch {
								t.Fatalf("%v/%v: channel %d double-held", scheme, alloc, ch)
							}
						}
						liveCh[g.In] = ch
					}
				}
				for in := range liveOut {
					if src.Bernoulli(0.25) {
						s.Release(in)
						delete(liveOut, in)
						delete(liveCh, in)
					}
				}
			}
		}
	}
}

// TestPriorityAllocationOutperformsBinningOnSkew exercises the paper's
// §III-A observation: fixed binning underutilizes channels under
// adversarial traffic where all requestors are bound to one bin, while
// priority allocation fills every free channel.
func TestPriorityAllocationOutperformsBinningOnSkew(t *testing.T) {
	// Inputs 0,4,8,12 all map to channel 0 under input binning (c=4), and
	// request distinct outputs on layer 3: binning serializes them;
	// priority allocation connects all four at once.
	pairs := map[int]int{0: 60, 4: 61, 8: 62, 12: 63}

	binned := mustNew(t, cfg(4, topo.L2LLRG))
	if g := binned.Arbitrate(reqVec(64, pairs)); len(g) != 1 {
		t.Fatalf("input-binned grants %v, want 1 (shared bin)", g)
	}

	c := cfg(4, topo.L2LLRG)
	c.Alloc = topo.PriorityBased
	pri := mustNew(t, c)
	if g := pri.Arbitrate(reqVec(64, pairs)); len(g) != 4 {
		t.Fatalf("priority-based grants %v, want all 4", g)
	}
}

func TestOutputBinnedUsesOutputIndex(t *testing.T) {
	c := cfg(4, topo.L2LLRG)
	c.Alloc = topo.OutputBinned
	s := mustNew(t, c)
	// Outputs 60 and 61 hash to different channels, so inputs 0 and 4
	// (same input bin) proceed in parallel under output binning.
	g := s.Arbitrate(reqVec(64, map[int]int{0: 60, 4: 61}))
	if len(g) != 2 {
		t.Fatalf("grants %v, want 2", g)
	}
}

// TestInterLayerOnlyWorstCase reproduces the paper's §VI-B pathological
// corner: four inputs sharing one L2LC request distinct outputs on
// another layer; aggregate bandwidth collapses to one connection per
// packet time regardless of scheme.
func TestInterLayerOnlyWorstCase(t *testing.T) {
	s := mustNew(t, cfg(4, topo.CLRG))
	// Inputs 0,4,8,12 share channel 0 toward layer 3.
	req := reqVec(64, map[int]int{0: 48, 4: 49, 8: 50, 12: 51})
	total := 0
	for i := 0; i < 100; i++ {
		g := s.Arbitrate(req)
		if len(g) > 1 {
			t.Fatalf("cycle %d: %d grants through one channel", i, len(g))
		}
		total += len(g)
		for _, gr := range g {
			s.Release(gr.In)
		}
	}
	if total != 100 {
		t.Fatalf("channel should stay fully utilized: %d/100", total)
	}
}

func TestClassAccessorGuard(t *testing.T) {
	s := mustNew(t, cfg(4, topo.L2LLRG))
	defer func() {
		if recover() == nil {
			t.Fatal("Class on non-CLRG should panic")
		}
	}()
	s.Class(0, 0)
}

func TestCLRGClassesAdvanceWithWins(t *testing.T) {
	s := mustNew(t, cfg(1, topo.CLRG))
	req := reqVec(64, map[int]int{0: 63})
	for i := 0; i < 2; i++ {
		g := s.Arbitrate(req)
		s.Release(g[0].In)
	}
	if cl := s.Class(63, 0); cl != 2 {
		t.Fatalf("input 0 class %d after 2 wins, want 2", cl)
	}
	if cl := s.Class(63, 1); cl != 0 {
		t.Fatalf("idle input class %d, want 0", cl)
	}
}

func TestStatsCounters(t *testing.T) {
	c := cfg(4, topo.CLRG)
	s := mustNew(t, c)
	// One local connection and one cross-layer connection.
	g := s.Arbitrate(reqVec(64, map[int]int{0: 5, 1: 63}))
	if len(g) != 2 {
		t.Fatalf("grants %v", g)
	}
	st := s.Stats()
	if st.LocalPath != 1 {
		t.Errorf("local path count %d, want 1", st.LocalPath)
	}
	var chTotal int64
	for _, v := range st.ChannelGrants {
		chTotal += v
	}
	if chTotal != 1 {
		t.Errorf("channel grants %d, want 1", chTotal)
	}
	if st.OutputGrants[5] != 1 || st.OutputGrants[63] != 1 {
		t.Errorf("output grants wrong: %v %v", st.OutputGrants[5], st.OutputGrants[63])
	}
	// Snapshot independence: mutating the copy must not affect the switch.
	st.ChannelGrants[0] = 999
	if s.Stats().ChannelGrants[0] == 999 {
		t.Error("Stats returned a live slice")
	}
}

func TestStatsBalancedUnderUniform(t *testing.T) {
	// Input binning over uniform traffic must spread connections across
	// all L2LCs within a reasonable factor.
	s := mustNew(t, cfg(4, topo.CLRG))
	src := prng.New(44)
	req := make([]int, 64)
	for cycle := 0; cycle < 4000; cycle++ {
		for i := range req {
			req[i] = src.Intn(64)
		}
		for _, g := range s.Arbitrate(req) {
			s.Release(g.In)
		}
	}
	st := s.Stats()
	min, max := st.ChannelGrants[0], st.ChannelGrants[0]
	for _, v := range st.ChannelGrants {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == 0 || float64(max)/float64(min) > 2 {
		t.Errorf("channel grant imbalance: min %d max %d", min, max)
	}
}

func TestArbitratePanicsOnBadLength(t *testing.T) {
	s := mustNew(t, cfg(1, topo.L2LLRG))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Arbitrate(make([]int, 8))
}

func BenchmarkArbitrateUniform(b *testing.B) {
	s, err := New(cfg(4, topo.CLRG))
	if err != nil {
		b.Fatal(err)
	}
	src := prng.New(1)
	req := make([]int, 64)
	for i := range req {
		req[i] = src.Intn(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range s.Arbitrate(req) {
			s.Release(g.In)
		}
	}
}
