package crossbar

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

// TestArbitrateZeroAllocs asserts the disabled-path contract for the 2D
// baseline: with no observer attached, an arbitration cycle allocates
// nothing (the grants return buffer and the request mask are reused).
func TestArbitrateZeroAllocs(t *testing.T) {
	sw := New(64)
	src := prng.New(7)
	req := make([]int, 64)
	holding := make([]int, 0, 64)
	cycle := func(c int) {
		for i := range req {
			req[i] = src.Intn(64)
		}
		for _, g := range sw.Arbitrate(req) {
			holding = append(holding, g.In)
		}
		if c%4 == 3 {
			for _, in := range holding {
				sw.Release(in)
			}
			holding = holding[:0]
		}
	}
	for c := 0; c < 64; c++ { // warm up: grow the grants buffer once
		cycle(c)
	}
	if avg := testing.AllocsPerRun(50, func() {
		for c := 0; c < 16; c++ {
			cycle(c)
		}
	}); avg != 0 {
		t.Errorf("%v allocs per 16 arbitration cycles, want 0", avg)
	}
}

func BenchmarkArbitrateHotLoop(b *testing.B) {
	sw := New(64)
	src := prng.New(7)
	req := make([]int, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range req {
			req[j] = src.Intn(64)
		}
		for _, g := range sw.Arbitrate(req) {
			sw.Release(g.In)
		}
	}
}
