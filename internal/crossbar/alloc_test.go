package crossbar

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

// TestArbitrateZeroAllocs asserts the disabled-path contract for the 2D
// baseline: with no observer attached, an arbitration cycle allocates
// nothing (the grants return buffer and the request mask are reused).
func TestArbitrateZeroAllocs(t *testing.T) {
	// Radix 128 exercises the two-word bitset request masks.
	for _, radix := range []int{64, 128} {
		sw := New(radix)
		src := prng.New(7)
		req := make([]int, radix)
		holding := make([]int, 0, radix)
		cycle := func(c int) {
			for i := range req {
				req[i] = src.Intn(radix)
			}
			for _, g := range sw.Arbitrate(req) {
				holding = append(holding, g.In)
			}
			if c%4 == 3 {
				for _, in := range holding {
					sw.Release(in)
				}
				holding = holding[:0]
			}
		}
		for c := 0; c < 64; c++ { // warm up: grow the grants buffer once
			cycle(c)
		}
		if avg := testing.AllocsPerRun(50, func() {
			for c := 0; c < 16; c++ {
				cycle(c)
			}
		}); avg != 0 {
			t.Errorf("radix %d: %v allocs per 16 arbitration cycles, want 0", radix, avg)
		}
	}
}

// TestArbitrateZeroAllocsWithFaults extends the pin to the fault-mask
// path: active port and crosspoint faults (masks allocated up front by
// the Fail* calls) must not make the hot loop allocate.
func TestArbitrateZeroAllocsWithFaults(t *testing.T) {
	for _, radix := range []int{64, 128} {
		sw := New(radix)
		if err := sw.FailInput(radix / 2); err != nil {
			t.Fatal(err)
		}
		if err := sw.FailOutput(radix - 1); err != nil {
			t.Fatal(err)
		}
		if err := sw.FailCrosspoint(0, 1); err != nil {
			t.Fatal(err)
		}
		src := prng.New(7)
		req := make([]int, radix)
		holding := make([]int, 0, radix)
		cycle := func(c int) {
			for i := range req {
				req[i] = src.Intn(radix)
			}
			for _, g := range sw.Arbitrate(req) {
				holding = append(holding, g.In)
			}
			if c%4 == 3 {
				for _, in := range holding {
					sw.Release(in)
				}
				holding = holding[:0]
			}
		}
		for c := 0; c < 64; c++ {
			cycle(c)
		}
		if avg := testing.AllocsPerRun(50, func() {
			for c := 0; c < 16; c++ {
				cycle(c)
			}
		}); avg != 0 {
			t.Errorf("radix %d with faults: %v allocs per 16 arbitration cycles, want 0", radix, avg)
		}
	}
}

func benchArbitrate(b *testing.B, radix int) {
	sw := New(radix)
	src := prng.New(7)
	req := make([]int, radix)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range req {
			req[j] = src.Intn(radix)
		}
		for _, g := range sw.Arbitrate(req) {
			sw.Release(g.In)
		}
	}
}

func BenchmarkArbitrateHotLoop(b *testing.B)    { benchArbitrate(b, 64) }
func BenchmarkArbitrateHotLoop128(b *testing.B) { benchArbitrate(b, 128) }
