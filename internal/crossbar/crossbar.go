// Package crossbar models the flat 2D Swizzle-Switch (paper §II-A) and
// its naive 3D extension, the folded switch (paper §II-B). Both are
// matrix crossbars with built-in least-recently-granted arbitration; the
// folded switch redistributes ports over layers but keeps the single flat
// arbitration domain, so the two are cycle-identical in behaviour and
// differ only in physical cost (see internal/phys).
//
// The model is connection-oriented, mirroring how the Swizzle-Switch
// reuses its output buses as priority lines: an output arbitrates only
// while idle, and a granted connection holds the input and output until
// the caller releases it after the packet's last flit.
package crossbar

import (
	"fmt"
	"math/bits"

	"github.com/reprolab/hirise/internal/arb"
	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/topo"
)

// Switch is a flat N×N matrix crossbar with one arbiter per output.
type Switch struct {
	n       int
	arbs    []arb.Arbiter
	bitArbs []arb.BitArbiter // bitArbs[o] non-nil when arbs[o] grants bitsets natively
	held    []int            // held[in] = output held by in, or -1
	outIn   []int            // outIn[out] = input holding out, or -1
	reqMask []bitvec.Vec     // per output: request bitset, rebuilt each cycle
	reqOuts bitvec.Vec       // outputs whose reqMask is non-empty this cycle
	reqBuf  []bool           // scratch for arbiters without a bitset grant path
	grants  []topo.Grant     // Arbitrate's return buffer, valid until the next call

	// Runtime fault state, lazily allocated by ensureFaults: failed
	// inputs and outputs as port bitsets, failed crosspoints as one
	// input bitset per output column. faultActive gates every fault
	// branch in Arbitrate, so the fault-free hot loop is unchanged.
	inFailed    bitvec.Vec
	outFailed   bitvec.Vec
	xpFailed    []bitvec.Vec
	faultActive bool

	audit *obs.FairnessAudit // nil when observability is disabled

	// stockLRG marks a switch built by New (identity-order LRG at every
	// column); see PlainLRG.
	stockLRG bool
}

// New returns an N×N crossbar with LRG arbitration at every output, the
// configuration the paper's 2D baseline uses.
func New(radix int) *Switch {
	lrgs := arb.NewLRGs(radix, radix) // slab-backed: 3 allocs for all columns
	arbs := make([]arb.Arbiter, radix)
	for i := range arbs {
		arbs[i] = &lrgs[i]
	}
	s, err := NewWithArbiters(radix, arbs)
	if err != nil {
		panic(err) // cannot happen: we built a well-formed arbiter set
	}
	s.stockLRG = true
	return s
}

// PlainLRG reports whether the switch currently behaves exactly like a
// stock New(radix) instance: identity-order LRG arbitration at every
// column, no runtime fault active, and no fairness audit attached. The
// lockstep batch engine in internal/sim keys its fused arbitration fast
// path off this — that path re-implements precisely this configuration.
func (s *Switch) PlainLRG() bool { return s.stockLRG && !s.faultActive && s.audit == nil }

// NewFolded returns the 3D folded baseline: a radix-N switch folded over
// the given number of layers. Arbitration is identical to the flat 2D
// switch (paper §II-B); layers only affect physical cost, so the value
// behaves exactly like New(radix).
func NewFolded(radix, layers int) *Switch {
	if layers < 1 || radix%layers != 0 {
		panic(fmt.Sprintf("crossbar: cannot fold radix %d over %d layers", radix, layers))
	}
	return New(radix)
}

// NewWithArbiters returns a crossbar using the provided per-output
// arbiters (used by arbitration-policy ablations). Each arbiter must span
// exactly radix requestors.
func NewWithArbiters(radix int, arbs []arb.Arbiter) (*Switch, error) {
	if len(arbs) != radix {
		return nil, fmt.Errorf("crossbar: %d arbiters for radix %d", len(arbs), radix)
	}
	for o, a := range arbs {
		if a.N() != radix {
			return nil, fmt.Errorf("crossbar: output %d arbiter spans %d, want %d", o, a.N(), radix)
		}
	}
	s := &Switch{
		n:       radix,
		arbs:    arbs,
		bitArbs: make([]arb.BitArbiter, radix),
		reqMask: make([]bitvec.Vec, radix),
	}
	// All column request bitsets plus the dirty-column set come from one
	// words slab, and both connection maps from one int slab: a radix-64
	// switch costs a few allocations instead of dozens of small ones
	// (fabric builds one switch per router, so constructor allocs scale
	// with network size).
	words := bitvec.WordsFor(radix)
	slab := make([]uint64, words*(radix+1))
	s.reqOuts = bitvec.Vec(slab[radix*words : (radix+1)*words : (radix+1)*words])
	conns := make([]int, 2*radix)
	s.held = conns[:radix:radix]
	s.outIn = conns[radix : 2*radix : 2*radix]
	allBits := true
	for i := range s.held {
		s.held[i] = -1
		s.outIn[i] = -1
		s.reqMask[i] = bitvec.Vec(slab[i*words : (i+1)*words : (i+1)*words])
		if ba, ok := arbs[i].(arb.BitArbiter); ok {
			s.bitArbs[i] = ba
		} else {
			allBits = false
		}
	}
	if !allBits {
		// Bool-scratch only for arbiters without a bitset grant path.
		s.reqBuf = make([]bool, radix)
	}
	return s, nil
}

// Reset restores the as-constructed state: every connection drops, all
// arbiters return to their initial priority order, runtime faults are
// restored, and scratch is cleared. An attached audit stays attached.
// It panics if any arbiter lacks a Reset method (all arbiters in
// internal/arb have one).
func (s *Switch) Reset() {
	for i := range s.held {
		s.held[i] = -1
		s.outIn[i] = -1
		s.reqMask[i].Zero()
	}
	for i := range s.reqBuf {
		s.reqBuf[i] = false
	}
	s.reqOuts.Zero()
	s.grants = s.grants[:0]
	s.inFailed.Zero()
	s.outFailed.Zero()
	for _, v := range s.xpFailed {
		v.Zero()
	}
	s.faultActive = false
	for o, a := range s.arbs {
		r, ok := a.(interface{ Reset() })
		if !ok {
			panic(fmt.Sprintf("crossbar: output %d arbiter %T has no Reset", o, a))
		}
		r.Reset()
	}
}

// Radix returns the port count.
func (s *Switch) Radix() int { return s.n }

// SetObserver attaches observability sinks (internal/obs). The flat
// crossbar has no priority classes, so the observer's fairness audit
// receives one class-0 observation per contender per output
// arbitration round. Passing nil detaches and restores the
// allocation-free disabled path.
func (s *Switch) SetObserver(o *obs.Observer) { s.audit = o.Audit() }

// Arbitrate runs one arbitration cycle. req[i] is the output input i
// requests, or -1. Inputs already holding a connection and outputs busy
// with one do not participate. It returns the connections formed this
// cycle; each stays established until Release. The returned slice is a
// scratch buffer reused by the next Arbitrate call, so callers must
// consume it before re-arbitrating (every simulator in this repository
// does).
func (s *Switch) Arbitrate(req []int) []topo.Grant {
	if len(req) != s.n {
		panic(fmt.Sprintf("crossbar: request vector length %d, want %d", len(req), s.n))
	}
	// One pass over the inputs builds every output's request bitset:
	// each input requests at most one output, so a granted input can
	// never reappear in a later output's mask and prebuilding is
	// equivalent to the per-output scan it replaces. Columns dirtied
	// last cycle are zeroed lazily here (reqOuts tracks them), so an
	// Arbitrate under light load touches only the contended columns
	// rather than sweeping all n masks every cycle.
	for w, word := range s.reqOuts {
		for word != 0 {
			out := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			s.reqMask[out].Zero()
		}
	}
	s.reqOuts.Zero()
	for in, out := range req {
		if out >= 0 && s.held[in] < 0 && s.outIn[out] < 0 {
			s.reqMask[out].Set(in)
			s.reqOuts.Set(out)
		}
	}
	if s.faultActive {
		// Failed inputs and failed crosspoints drop out of every
		// dirtied column's request bitset with a word-parallel AndNot
		// (clean columns are already empty).
		for w, word := range s.reqOuts {
			for word != 0 {
				out := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				s.reqMask[out].AndNot(s.inFailed)
				if s.xpFailed != nil {
					s.reqMask[out].AndNot(s.xpFailed[out])
				}
			}
		}
	}
	grants := s.grants[:0]
	// Ascending set-bit iteration visits exactly the non-empty columns
	// in the same 0..n-1 output order as a full scan, so the grant
	// sequence is identical to the pre-dirty-tracking implementation.
	for w, word := range s.reqOuts {
		for word != 0 {
			out := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			if s.faultActive && s.outFailed.Get(out) {
				continue // failed output: its column never arbitrates
			}
			m := s.reqMask[out]
			if m.None() {
				continue // faults emptied the column
			}
			var win int
			if ba := s.bitArbs[out]; ba != nil {
				win = ba.GrantBits(m)
			} else {
				m.FillBools(s.reqBuf)
				win = s.arbs[out].Grant(s.reqBuf)
			}
			if s.audit != nil {
				for w2, word2 := range m {
					for word2 != 0 {
						in := w2<<6 | bits.TrailingZeros64(word2)
						word2 &= word2 - 1
						s.audit.Observe(in, 0, in == win)
					}
				}
			}
			if win < 0 {
				continue
			}
			s.arbs[out].Update(win)
			s.held[win] = out
			s.outIn[out] = win
			grants = append(grants, topo.Grant{In: win, Out: out})
		}
	}
	s.grants = grants
	return grants
}

// Release frees the connection held by input in after its last flit. It
// is a no-op if in holds nothing.
func (s *Switch) Release(in int) {
	out := s.held[in]
	if out < 0 {
		return
	}
	s.held[in] = -1
	s.outIn[out] = -1
}

// Holds returns the output input in is connected to, or -1.
func (s *Switch) Holds(in int) int { return s.held[in] }

// OutputBusy reports whether out is carrying an active connection.
func (s *Switch) OutputBusy(out int) bool { return s.outIn[out] >= 0 }

// ensureFaults lazily allocates the port-fault bitsets; fault-free
// switches keep the exact fault-free memory layout.
func (s *Switch) ensureFaults() {
	if s.inFailed != nil {
		return
	}
	s.inFailed = bitvec.New(s.n)
	s.outFailed = bitvec.New(s.n)
}

// ensureXpFaults lazily allocates the per-column crosspoint masks.
func (s *Switch) ensureXpFaults() {
	s.ensureFaults()
	if s.xpFailed != nil {
		return
	}
	s.xpFailed = make([]bitvec.Vec, s.n)
	for out := range s.xpFailed {
		s.xpFailed[out] = bitvec.New(s.n)
	}
}

// refreshFaults recomputes the faultActive gate after a restore.
func (s *Switch) refreshFaults() {
	s.faultActive = s.inFailed.Any() || s.outFailed.Any()
	for _, v := range s.xpFailed {
		s.faultActive = s.faultActive || v.Any()
	}
}

func (s *Switch) checkPort(what string, p int) error {
	if p < 0 || p >= s.n {
		return fmt.Errorf("crossbar: no such %s %d", what, p)
	}
	return nil
}

// FailInput removes input in from service at runtime: its requests are
// masked out of every column with a word-parallel AndNot. A connection
// it already holds drains normally — a fault never drops a flit here.
func (s *Switch) FailInput(in int) error {
	if err := s.checkPort("input", in); err != nil {
		return err
	}
	s.ensureFaults()
	s.inFailed.Set(in)
	s.faultActive = true
	return nil
}

// RestoreInput returns a failed input to service.
func (s *Switch) RestoreInput(in int) error {
	if err := s.checkPort("input", in); err != nil {
		return err
	}
	if s.inFailed == nil {
		return nil
	}
	s.inFailed.Clear(in)
	s.refreshFaults()
	return nil
}

// FailOutput removes output out from service at runtime: its column
// stops arbitrating once any connection it carries drains.
func (s *Switch) FailOutput(out int) error {
	if err := s.checkPort("output", out); err != nil {
		return err
	}
	s.ensureFaults()
	s.outFailed.Set(out)
	s.faultActive = true
	return nil
}

// RestoreOutput returns a failed output to service.
func (s *Switch) RestoreOutput(out int) error {
	if err := s.checkPort("output", out); err != nil {
		return err
	}
	if s.inFailed == nil {
		return nil
	}
	s.outFailed.Clear(out)
	s.refreshFaults()
	return nil
}

// FailCrosspoint removes the single cross-point (in, out) from service:
// input in can no longer reach output out, while both ports keep
// serving every other path — the matrix analog of one dead pull-down
// stack.
func (s *Switch) FailCrosspoint(in, out int) error {
	if err := s.checkPort("input", in); err != nil {
		return err
	}
	if err := s.checkPort("output", out); err != nil {
		return err
	}
	s.ensureXpFaults()
	s.xpFailed[out].Set(in)
	s.faultActive = true
	return nil
}

// RestoreCrosspoint returns a failed cross-point to service.
func (s *Switch) RestoreCrosspoint(in, out int) error {
	if err := s.checkPort("input", in); err != nil {
		return err
	}
	if err := s.checkPort("output", out); err != nil {
		return err
	}
	if s.xpFailed == nil {
		return nil
	}
	s.xpFailed[out].Clear(in)
	s.refreshFaults()
	return nil
}

// InputFailed reports whether input in is out of service.
func (s *Switch) InputFailed(in int) bool { return s.inFailed != nil && s.inFailed.Get(in) }

// OutputFailed reports whether output out is out of service.
func (s *Switch) OutputFailed(out int) bool { return s.inFailed != nil && s.outFailed.Get(out) }

// CrosspointFailed reports whether cross-point (in, out) is out of
// service.
func (s *Switch) CrosspointFailed(in, out int) bool {
	return s.xpFailed != nil && s.xpFailed[out].Get(in)
}

// PathBlocked reports whether input in currently has no fault-free path
// to output out: either port failed, or their cross-point did. The
// simulator uses it to detect and retire dead flows.
func (s *Switch) PathBlocked(in, out int) bool {
	if in < 0 || in >= s.n || out < 0 || out >= s.n {
		return true
	}
	return s.InputFailed(in) || s.OutputFailed(out) || s.CrosspointFailed(in, out)
}
