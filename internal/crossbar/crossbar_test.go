package crossbar

import (
	"testing"

	"github.com/reprolab/hirise/internal/arb"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

func reqVec(n int, pairs map[int]int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = -1
	}
	for in, out := range pairs {
		r[in] = out
	}
	return r
}

func TestSingleRequestGranted(t *testing.T) {
	s := New(8)
	g := s.Arbitrate(reqVec(8, map[int]int{3: 5}))
	if len(g) != 1 || g[0] != (topo.Grant{In: 3, Out: 5}) {
		t.Fatalf("grants %v", g)
	}
	if s.Holds(3) != 5 || !s.OutputBusy(5) {
		t.Fatal("connection state not recorded")
	}
}

func TestContendersGetOneWinner(t *testing.T) {
	s := New(8)
	g := s.Arbitrate(reqVec(8, map[int]int{1: 4, 2: 4, 3: 4}))
	if len(g) != 1 {
		t.Fatalf("grants %v, want exactly one", g)
	}
	if g[0].In != 1 {
		t.Fatalf("winner %d, want 1 (highest initial LRG)", g[0].In)
	}
}

func TestParallelDisjointGrants(t *testing.T) {
	s := New(8)
	g := s.Arbitrate(reqVec(8, map[int]int{0: 7, 1: 6, 2: 5}))
	if len(g) != 3 {
		t.Fatalf("grants %v, want 3 disjoint connections", g)
	}
}

func TestBusyOutputDoesNotArbitrate(t *testing.T) {
	s := New(8)
	s.Arbitrate(reqVec(8, map[int]int{0: 4}))
	g := s.Arbitrate(reqVec(8, map[int]int{1: 4}))
	if len(g) != 0 {
		t.Fatalf("busy output granted: %v", g)
	}
	s.Release(0)
	g = s.Arbitrate(reqVec(8, map[int]int{1: 4}))
	if len(g) != 1 || g[0].In != 1 {
		t.Fatalf("after release, grants %v", g)
	}
}

func TestBusyInputDoesNotArbitrate(t *testing.T) {
	s := New(8)
	s.Arbitrate(reqVec(8, map[int]int{0: 4}))
	if g := s.Arbitrate(reqVec(8, map[int]int{0: 5})); len(g) != 0 {
		t.Fatalf("held input granted a second output: %v", g)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s := New(4)
	s.Arbitrate(reqVec(4, map[int]int{0: 1}))
	s.Release(0)
	s.Release(0) // no-op
	if s.Holds(0) != -1 || s.OutputBusy(1) {
		t.Fatal("state corrupt after double release")
	}
}

func TestLRGRotationAcrossGrants(t *testing.T) {
	// Three inputs fight for one output with single-cycle transactions:
	// LRG must rotate perfectly.
	s := New(4)
	req := reqVec(4, map[int]int{0: 3, 1: 3, 2: 3})
	var seq []int
	for i := 0; i < 9; i++ {
		g := s.Arbitrate(req)
		if len(g) != 1 {
			t.Fatalf("cycle %d: grants %v", i, g)
		}
		seq = append(seq, g[0].In)
		s.Release(g[0].In)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v, want %v", seq, want)
		}
	}
}

func TestFoldedBehavesLikeFlat(t *testing.T) {
	// The folded switch is the same arbitration domain (paper §II-B);
	// identical request streams must yield identical grants.
	src := prng.New(21)
	flat, folded := New(16), NewFolded(16, 4)
	req := make([]int, 16)
	for cycle := 0; cycle < 500; cycle++ {
		for i := range req {
			req[i] = -1
			if src.Bernoulli(0.5) {
				req[i] = src.Intn(16)
			}
		}
		ga, gb := flat.Arbitrate(req), folded.Arbitrate(req)
		if len(ga) != len(gb) {
			t.Fatalf("cycle %d: %v vs %v", cycle, ga, gb)
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("cycle %d: %v vs %v", cycle, ga, gb)
			}
		}
		for _, g := range ga {
			if src.Bernoulli(0.5) {
				flat.Release(g.In)
				folded.Release(g.In)
			}
		}
	}
}

func TestFoldedRejectsBadFold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFolded(63, 4)
}

func TestConnectionInvariants(t *testing.T) {
	// Under random traffic with random holds/releases, no output ever has
	// two holders and every input holds at most one output.
	src := prng.New(5)
	s := New(32)
	req := make([]int, 32)
	live := map[int]int{} // in -> out
	for cycle := 0; cycle < 2000; cycle++ {
		for i := range req {
			req[i] = -1
			if src.Bernoulli(0.6) {
				req[i] = src.Intn(32)
			}
		}
		for _, g := range s.Arbitrate(req) {
			if _, dup := live[g.In]; dup {
				t.Fatalf("input %d granted while holding", g.In)
			}
			for _, o := range live {
				if o == g.Out {
					t.Fatalf("output %d double-granted", g.Out)
				}
			}
			live[g.In] = g.Out
		}
		for in := range live {
			if src.Bernoulli(0.3) {
				s.Release(in)
				delete(live, in)
			}
		}
	}
}

func TestNewWithArbitersValidation(t *testing.T) {
	if _, err := NewWithArbiters(4, make([]arb.Arbiter, 3)); err == nil {
		t.Error("wrong arbiter count accepted")
	}
	bad := []arb.Arbiter{arb.NewLRG(4), arb.NewLRG(3), arb.NewLRG(4), arb.NewLRG(4)}
	if _, err := NewWithArbiters(4, bad); err == nil {
		t.Error("wrong arbiter span accepted")
	}
}

func TestRoundRobinCrossbar(t *testing.T) {
	arbs := make([]arb.Arbiter, 4)
	for i := range arbs {
		arbs[i] = arb.NewRoundRobin(4)
	}
	s, err := NewWithArbiters(4, arbs)
	if err != nil {
		t.Fatal(err)
	}
	req := reqVec(4, map[int]int{0: 2, 1: 2})
	first := s.Arbitrate(req)[0].In // consume: Arbitrate reuses its return buffer
	s.Release(first)
	if second := s.Arbitrate(req)[0].In; first == second {
		t.Fatal("round-robin crossbar did not rotate")
	}
}

func TestArbitratePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(8).Arbitrate(make([]int, 7))
}
