package crossbar

import (
	"testing"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/prng"
)

// drive pushes random 60%-loaded traffic through the switch for the
// given number of cycles, releasing connections with probability 0.4
// each cycle, and returns the per-input grant counts. check is called
// on every grant.
func drive(t *testing.T, s *Switch, cycles int, check func(in, out int)) []int {
	t.Helper()
	src := prng.New(97)
	req := make([]int, s.Radix())
	wins := make([]int, s.Radix())
	for cycle := 0; cycle < cycles; cycle++ {
		for i := range req {
			req[i] = -1
			if src.Bernoulli(0.6) {
				req[i] = src.Intn(s.Radix())
			}
		}
		for _, g := range s.Arbitrate(req) {
			wins[g.In]++
			if check != nil {
				check(g.In, g.Out)
			}
		}
		for in := 0; in < s.Radix(); in++ {
			if s.Holds(in) >= 0 && src.Bernoulli(0.4) {
				s.Release(in)
			}
		}
	}
	return wins
}

func TestFailedInputNeverGranted(t *testing.T) {
	s := New(16)
	if err := s.FailInput(5); err != nil {
		t.Fatal(err)
	}
	wins := drive(t, s, 600, func(in, out int) {
		if in == 5 {
			t.Fatalf("failed input 5 granted output %d", out)
		}
	})
	if wins[5] != 0 {
		t.Fatalf("failed input won %d times", wins[5])
	}
	for in, w := range wins {
		if in != 5 && w == 0 {
			t.Errorf("survivor input %d starved", in)
		}
	}
}

func TestFailedOutputNeverGranted(t *testing.T) {
	s := New(16)
	if err := s.FailOutput(9); err != nil {
		t.Fatal(err)
	}
	drive(t, s, 600, func(in, out int) {
		if out == 9 {
			t.Fatalf("failed output 9 granted to input %d", in)
		}
	})
}

func TestFailedCrosspointNeverGranted(t *testing.T) {
	s := New(16)
	if err := s.FailCrosspoint(3, 7); err != nil {
		t.Fatal(err)
	}
	if !s.CrosspointFailed(3, 7) || s.CrosspointFailed(7, 3) {
		t.Fatal("crosspoint fault state wrong")
	}
	var via3, via7 int
	drive(t, s, 800, func(in, out int) {
		if in == 3 && out == 7 {
			t.Fatal("failed crosspoint (3,7) granted")
		}
		if in == 3 {
			via3++
		}
		if out == 7 {
			via7++
		}
	})
	// Both ports of the dead crosspoint keep serving every other path.
	if via3 == 0 || via7 == 0 {
		t.Fatalf("ports of the failed crosspoint stopped serving (in3=%d, out7=%d)", via3, via7)
	}
}

// TestRestoreRejoins fails and restores each resource class and checks
// the restored resource wins again.
func TestRestoreRejoins(t *testing.T) {
	s := New(16)
	for _, step := range []struct {
		name          string
		fail, restore func() error
		hits          func(wins []int, granted map[[2]int]int) int
	}{
		{"input", func() error { return s.FailInput(4) }, func() error { return s.RestoreInput(4) },
			func(wins []int, _ map[[2]int]int) int { return wins[4] }},
		{"output", func() error { return s.FailOutput(11) }, func() error { return s.RestoreOutput(11) },
			func(_ []int, granted map[[2]int]int) int {
				n := 0
				for k, v := range granted {
					if k[1] == 11 {
						n += v
					}
				}
				return n
			}},
		{"crosspoint", func() error { return s.FailCrosspoint(2, 6) }, func() error { return s.RestoreCrosspoint(2, 6) },
			func(_ []int, granted map[[2]int]int) int { return granted[[2]int{2, 6}] }},
	} {
		if err := step.fail(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		if err := step.restore(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		granted := map[[2]int]int{}
		wins := drive(t, s, 1500, func(in, out int) { granted[[2]int{in, out}]++ })
		if step.hits(wins, granted) == 0 {
			t.Errorf("restored %s never granted again", step.name)
		}
	}
	// After restoring everything the fault gate is off again.
	if s.faultActive {
		t.Error("faultActive still set after all restores")
	}
}

// TestSurvivorFairnessUnderFaults kills a quarter of the inputs and
// audits arbitration over the survivors: the failure of some inputs
// must not skew grant shares among the rest. Failed inputs are masked
// before the audit observes contenders, so they do not dilute the
// index.
func TestSurvivorFairnessUnderFaults(t *testing.T) {
	s := New(32)
	o := &obs.Observer{Fairness: obs.NewFairnessAudit(32, 1)}
	s.SetObserver(o)
	for in := 0; in < 32; in += 4 {
		if err := s.FailInput(in); err != nil {
			t.Fatal(err)
		}
	}
	drive(t, s, 4000, nil)
	rep := o.Fairness.Report()
	if rep.TotalWins == 0 {
		t.Fatal("no wins audited")
	}
	if rep.JainIndex < 0.95 {
		t.Fatalf("survivor Jain index %.4f < 0.95:\n%+v", rep.JainIndex, rep)
	}
}

func TestFaultAPIBounds(t *testing.T) {
	s := New(8)
	for _, err := range []error{
		s.FailInput(-1), s.FailInput(8),
		s.FailOutput(-1), s.FailOutput(8),
		s.FailCrosspoint(-1, 0), s.FailCrosspoint(0, 8),
	} {
		if err == nil {
			t.Error("out-of-range fault accepted")
		}
	}
	// Restores on a switch that never failed anything are no-ops.
	if err := s.RestoreInput(3); err != nil {
		t.Error(err)
	}
	if err := s.RestoreCrosspoint(1, 2); err != nil {
		t.Error(err)
	}
	if s.PathBlocked(1, 2) {
		t.Error("healthy path reported blocked")
	}
	if !s.PathBlocked(-1, 2) || !s.PathBlocked(1, 99) {
		t.Error("out-of-range path not reported blocked")
	}
}
