package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/arb"
	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// Ablations beyond the paper's figures, probing the design choices the
// paper fixes by heuristic: the CLRG class count (§III-B4 calls it "a
// heuristic that needs to be tuned"), the channel allocation policy
// (§III-A sketches three), and the VC count of the evaluation setup.

// AblateClasses sweeps the CLRG class count and reports hotspot fairness:
// Jain's index and the max/min ratio of per-input throughput under a
// saturated hotspot. The paper found 3 classes sufficient at radix 64.
func AblateClasses(o Opts) *Table {
	o = o.norm()
	classCounts := []int{2, 3, 4, 6, 8}
	rows := make([][]string, len(classCounts))
	o.sweep(len(classCounts), func(i int) {
		classes := classCounts[i]
		mk := func() *core.Switch {
			sw, err := core.New(topo.Config{
				Radix: 64, Layers: 4, Channels: 4,
				Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: classes,
			})
			if err != nil {
				panic(err)
			}
			return sw
		}
		sat, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  mk(),
			Traffic: traffic.Hotspot{Target: 63},
			Load:    1.0,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-classes", i, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		// Contended-but-unsaturated operating point (Fig 11a's region):
		// latency fairness between the hot output's own layer and the
		// remote layers.
		part, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  mk(),
			Traffic: traffic.Hotspot{Target: 63},
			Load:    0.95 * 0.2 / 64,
			Warmup:  o.Warmup * 4, Measure: o.Measure * 4, Seed: o.seedFor("ablate-classes", i, 1),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		local := stats.Median(part.PerInputLatency[48:])
		remote := stats.Median(part.PerInputLatency[:48])
		rows[i] = []string{
			fmt.Sprintf("%d", classes),
			f(stats.JainIndex(sat.PerInputPackets), 3),
			f(stats.MaxMinRatio(sat.PerInputPackets), 2),
			f(sat.AcceptedPackets, 3),
			f(local/remote, 2),
		}
	})
	return &Table{
		ID:     "ablate-classes",
		Title:  "CLRG class-count sensitivity, hotspot to output 63",
		Header: []string{"Classes", "Jain(saturated)", "Max/min tput", "Total(pkt/cycle)", "Local/remote lat @95%"},
		Rows:   rows,
		Notes: []string{
			"paper uses 3 classes (thermometer {00,01,11}); Jain 1.0 = perfectly fair",
			"steady hotspot is fair for any class count >= 2; short counters matter for burst forgiveness (see ablate-bursty)",
		},
	}
}

// AblateAlloc compares the three channel allocation policies of §III-A
// across traffic patterns, reporting saturation throughput in
// flits/cycle. Priority-based allocation wins on bin-adversarial traffic
// at the cost of serialized channel arbitration in hardware.
func AblateAlloc(o Opts) *Table {
	o = o.norm()
	policies := []topo.AllocPolicy{topo.InputBinned, topo.OutputBinned, topo.PriorityBased}
	cfgFor := func(p topo.AllocPolicy) topo.Config {
		return topo.Config{
			Radix: 64, Layers: 4, Channels: 4,
			Alloc: p, Scheme: topo.CLRG, Classes: 3,
		}
	}
	patterns := []struct {
		name string
		make func(cfg topo.Config) sim.Traffic
	}{
		{"uniform", func(topo.Config) sim.Traffic { return traffic.Uniform{Radix: 64} }},
		{"inter-layer", func(cfg topo.Config) sim.Traffic { return traffic.InterLayerWorstCase{Cfg: cfg} }},
		{"bin-adversarial", func(cfg topo.Config) sim.Traffic { return traffic.BinAdversarial{Cfg: cfg} }},
		{"hotspot", func(topo.Config) sim.Traffic { return traffic.Hotspot{Target: 63} }},
		{"bit-reverse", func(topo.Config) sim.Traffic { return traffic.BitReverse{Radix: 64} }},
	}

	rows := make([][]string, len(policies))
	o.sweep(len(policies), func(pi int) {
		cfg := cfgFor(policies[pi])
		row := []string{policies[pi].String()}
		for pati, pat := range patterns {
			sw, err := core.New(cfg)
			if err != nil {
				panic(err)
			}
			flits, err := sim.SaturationThroughput(sim.Config{
				Ctx:     o.Ctx,
				Switch:  sw,
				Traffic: pat.make(cfg),
				Warmup:  o.Warmup, Measure: o.Measure,
				ConvergeStop: o.ConvergeStop,
				Seed:         o.seedFor("ablate-alloc", pi*len(patterns)+pati, 0),
			})
			if err != nil {
				panic(err)
			}
			row = append(row, f(flits, 1))
		}
		rows[pi] = row
	})
	header := []string{"Allocation"}
	for _, pat := range patterns {
		header = append(header, pat.name)
	}
	return &Table{
		ID:     "ablate-alloc",
		Title:  "Channel allocation policy vs traffic pattern: saturation throughput (flits/cycle)",
		Header: header,
		Rows:   rows,
		Notes:  []string{"priority allocation removes fixed-bin serialization on adversarial inter-layer traffic (paper §III-A)"},
	}
}

// AblateVCs sweeps the virtual channel count of the evaluation setup
// (paper §V fixes 4) under uniform random traffic on the CLRG switch.
func AblateVCs(o Opts) *Table {
	o = o.norm()
	vcs := []int{1, 2, 4, 8}
	rows := make([][]string, len(vcs))
	o.sweep(len(vcs), func(i int) {
		d := designHiRise("", 4, topo.CLRG)
		flits, err := sim.SaturationThroughput(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Uniform{Radix: 64},
			VCs:     vcs[i],
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-vcs", i, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		low, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Uniform{Radix: 64},
			VCs:     vcs[i],
			Load:    0.05,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-vcs", i, 1),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		rows[i] = []string{
			fmt.Sprintf("%d", vcs[i]),
			f(flits/64, 3),
			f(low.AvgLatency, 2),
		}
	})
	return &Table{
		ID:     "ablate-vcs",
		Title:  "Virtual-channel count sensitivity, uniform random, Hi-Rise 4-channel CLRG",
		Header: []string{"VCs", "Saturation util(flits/cyc/port)", "Latency@5% (cycles)"},
		Rows:   rows,
		Notes:  []string{"paper §V uses 4 VCs x 4-flit buffers; 1 VC exposes head-of-line blocking"},
	}
}

// Locality sweeps the intra-layer fraction of the traffic and reports
// saturation throughput in flits/cycle for Hi-Rise at 1 and 4 channels
// against the 2D switch. It quantifies the paper's §VI-E argument that
// layer-aware placement and routing relieve the L2LC bottleneck: at full
// locality Hi-Rise matches 2D even with a single channel per layer pair.
func Locality(o Opts) *Table {
	o = o.norm()
	fracs := []float64{0, 0.25, 0.5, 0.75, 1.0}
	designs := []Design{
		design2D(64),
		designHiRise("3D 4-Channel", 4, topo.CLRG),
		designHiRise("3D 1-Channel", 1, topo.CLRG),
	}
	cells := make([][]string, len(designs))
	for di := range cells {
		cells[di] = make([]string, len(fracs))
	}
	o.sweep(len(designs)*len(fracs), func(k int) {
		di, fi := k/len(fracs), k%len(fracs)
		flits, err := sim.SaturationThroughput(sim.Config{
			Ctx:    o.Ctx,
			Switch: designs[di].NewSwitch(),
			Traffic: traffic.LayerMix{
				Cfg:       designHiRise("", 4, topo.CLRG).Cfg,
				LocalFrac: fracs[fi],
			},
			Warmup: o.Warmup, Measure: o.Measure, Seed: o.seedFor("locality", k, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		cells[di][fi] = f(flits, 1)
	})
	rows := make([][]string, len(fracs))
	for fi, frac := range fracs {
		row := []string{f(frac, 2)}
		for di := range designs {
			row = append(row, cells[di][fi])
		}
		rows[fi] = row
	}
	header := []string{"Local fraction"}
	for _, d := range designs {
		header = append(header, d.Name)
	}
	return &Table{
		ID:     "locality",
		Title:  "Saturation throughput (flits/cycle) vs intra-layer traffic fraction",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"layer-aware placement turns the L2LC bottleneck off: at locality 1.0 even 1-channel Hi-Rise matches 2D (paper §VI-E)",
		},
	}
}

// AblateQoS demonstrates the weighted quality-of-service arbitration the
// Swizzle-Switch silicon supports alongside LRG (paper §II, refs
// [11][15]): a 2D crossbar whose per-output arbiters give inputs 0-15
// weight 4, 16-31 weight 2, and the rest weight 1. Under a saturated
// hotspot, delivered bandwidth divides by weight class.
func AblateQoS(o Opts) *Table {
	o = o.norm()
	weights := make([]int, 64)
	for i := range weights {
		switch {
		case i < 16:
			weights[i] = 4
		case i < 32:
			weights[i] = 2
		default:
			weights[i] = 1
		}
	}
	arbs := make([]arb.Arbiter, 64)
	for i := range arbs {
		arbs[i] = arb.NewQoSArbiter(weights)
	}
	sw, err := crossbar.NewWithArbiters(64, arbs)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(sim.Config{
		Ctx:     o.Ctx,
		Switch:  sw,
		Traffic: traffic.Hotspot{Target: 63},
		Load:    1.0,
		Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-qos", 0, 0),
		ConvergeStop: o.ConvergeStop,
	})
	if err != nil {
		panic(err)
	}
	share := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += res.PerInputPackets[i]
		}
		return s / res.AcceptedPackets
	}
	// Aggregate weight is 16*4 + 16*2 + 32*1 = 128.
	rows := [][]string{
		{"weight 4 (inputs 0-15)", f(share(0, 16), 3), "0.500"},
		{"weight 2 (inputs 16-31)", f(share(16, 32), 3), "0.250"},
		{"weight 1 (inputs 32-63)", f(share(32, 64), 3), "0.250"},
	}
	return &Table{
		ID:     "ablate-qos",
		Title:  "Swizzle-Switch QoS arbitration: hotspot bandwidth shares by weight class",
		Header: []string{"Class", "Measured share", "Ideal share"},
		Rows:   rows,
		Notes:  []string{"weighted credits embedded per output, as in the DAC'12 Swizzle-Switch QoS silicon (paper refs [11][15])"},
	}
}

// AblateISLIP demonstrates the paper's §VII related-work observation: a
// single iteration of iSLIP — round-robin pointers at both stages, the
// local pointer advancing only on a final grant — behaves like the
// unfair L-2-L LRG baseline on the adversarial pattern, while CLRG fixes
// it. Per-input throughput of the five adversarial requestors.
func AblateISLIP(o Opts) *Table {
	o = o.norm()
	schemes := []topo.Scheme{topo.L2LLRG, topo.ISLIP1, topo.CLRG}
	inputs := []int{3, 7, 11, 15, 20}
	cols := make([][]float64, len(schemes))
	o.sweep(len(schemes), func(si int) {
		sw, err := core.New(topo.Config{
			Radix: 64, Layers: 4, Channels: 1,
			Alloc: topo.InputBinned, Scheme: schemes[si], Classes: 3,
		})
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  sw,
			Traffic: traffic.Adversarial(),
			Load:    1.0,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-islip", si, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		col := make([]float64, len(inputs))
		for i, in := range inputs {
			col[i] = res.PerInputPackets[in]
		}
		cols[si] = col
	})
	rows := make([][]string, len(inputs))
	for i, in := range inputs {
		row := []string{fmt.Sprintf("%d", in)}
		for si := range schemes {
			row = append(row, f(cols[si][i], 4))
		}
		rows[i] = row
	}
	header := []string{"Input"}
	for _, s := range schemes {
		header = append(header, s.String())
	}
	return &Table{
		ID:     "ablate-islip",
		Title:  "Single-iteration iSLIP vs L-2-L LRG vs CLRG, adversarial pattern (pkt/cycle per input)",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"paper §VII: \"a single iteration of iSLIP is similar to the baseline L-2-L LRG and does not solve the fairness issues\"",
		},
	}
}

// AblateBursty probes fairness under bursty hotspot traffic, where short
// CLRG counters are meant to forgive bursts quickly (paper §III-B4
// motivates the short thermometer counter).
func AblateBursty(o Opts) *Table {
	o = o.norm()
	designs := arbitrationDesigns()
	rows := make([][]string, len(designs))
	o.sweep(len(designs), func(di int) {
		d := designs[di]
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.NewBursty(64, 16),
			Load:    0.3,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-bursty", di, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		rows[di] = []string{
			d.Name,
			f(res.AcceptedPackets, 2),
			f(res.AvgLatency, 1),
			f(res.P99Latency, 0),
			f(stats.JainIndex(res.PerInputPackets), 3),
		}
	})
	return &Table{
		ID:     "ablate-bursty",
		Title:  "Bursty uniform traffic (mean burst 16 packets) at 0.3 packets/cycle/input",
		Header: []string{"Design", "Tput(pkt/cycle)", "Avg lat(cyc)", "P99 lat(cyc)", "Jain"},
		Rows:   rows,
		Notes:  []string{"bursty traffic is one of the paper's §V synthetic patterns"},
	}
}
