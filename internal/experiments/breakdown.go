package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

func init() {
	register("breakdown", CostBreakdown)
	register("ablate-pktlen", AblatePacketLength)
}

// CostBreakdown itemizes where the Hi-Rise cycle time, area, and energy
// go for each channel multiplicity — the engineering view behind Table
// IV: the local switch dominates all three, TSVs are cheap at the
// paper's 0.8 µm pitch, and CLRG's additions are in the noise.
func CostBreakdown(o Opts) *Table {
	o = o.norm()
	rows := make([][]string, 0, 3)
	for _, c := range []int{1, 2, 4} {
		cfg := designHiRise("", c, topo.CLRG).Cfg
		b := phys.HiRiseBreakdown(cfg, o.Tech)
		rows = append(rows, []string{
			fmt.Sprintf("%d-channel", c),
			f(b.Phase1NS, 3), f(b.Phase2NS, 3), f(b.TSVNS, 3), f(b.OverheadNS+b.SchemeNS, 3),
			f(b.LocalAreaMM2, 3), f(b.InterAreaMM2, 3), f(b.TSVAreaMM2, 3),
			f(b.WireEnergyPJ, 1), f(b.FixedEnergyPJ+b.SchemeEnergyPJ+b.TSVEnergyPJ, 1),
		})
	}
	return &Table{
		ID:    "breakdown",
		Title: "Hi-Rise cost breakdown (64-radix, 4 layers, CLRG)",
		Header: []string{"Config",
			"ph1(ns)", "ph2(ns)", "tsv(ns)", "fixed(ns)",
			"local(mm2)", "inter(mm2)", "tsv(mm2)",
			"wire(pJ)", "fixed(pJ)"},
		Rows: rows,
		Notes: []string{
			"phase 1 (local switch) dominates the cycle; TSVs cost ~10% of it at 0.8um pitch",
			"totals reconcile exactly with Tables IV/V (tested)",
		},
	}
}

// AblatePacketLength sweeps the packet size (the paper fixes 4 flits,
// §V) on the CLRG switch under uniform random traffic. Longer packets
// amortize the arbitration cycle (peak utilization n/(n+1)) but deepen
// queueing delay.
func AblatePacketLength(o Opts) *Table {
	o = o.norm()
	lengths := []int{1, 2, 4, 8, 16}
	rows := make([][]string, len(lengths))
	o.sweep(len(lengths), func(i int) {
		n := lengths[i]
		d := designHiRise("", 4, topo.CLRG)
		sat, err := sim.SaturationThroughput(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Uniform{Radix: 64},
			// Keep buffering per VC matched to the packet.
			PacketFlits: n,
			Warmup:      o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-pktlen", i, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		low, err := sim.Run(sim.Config{
			Ctx:         o.Ctx,
			Switch:      d.NewSwitch(),
			Traffic:     traffic.Uniform{Radix: 64},
			PacketFlits: n,
			Load:        0.02,
			Warmup:      o.Warmup, Measure: o.Measure, Seed: o.seedFor("ablate-pktlen", i, 1),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		rows[i] = []string{
			fmt.Sprintf("%d", n),
			f(float64(n)/float64(n+1), 2),
			f(sat/64, 3),
			f(low.AvgLatency, 2),
		}
	})
	return &Table{
		ID:     "ablate-pktlen",
		Title:  "Packet length sensitivity, uniform random, Hi-Rise 4-channel CLRG",
		Header: []string{"Flits/packet", "Peak util bound", "Saturation util", "Latency@2% (cycles)"},
		Rows:   rows,
		Notes:  []string{"the paper's 4-flit packets sit at the knee: 0.8 peak bound with modest serialization delay"},
	}
}
