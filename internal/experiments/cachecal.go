package experiments

import (
	"github.com/reprolab/hirise/internal/cache"
	"github.com/reprolab/hirise/internal/trace"
)

func init() { register("cache-mpki", CacheMPKI) }

// memRefsPerInstr is the assumed memory-reference density used to
// convert between MPKI and L1 miss rate (roughly one reference every
// three instructions, a standard SPEC-class figure).
const memRefsPerInstr = 0.3

// CacheMPKI validates the workload substitution behind Table VI: the
// per-benchmark MPKIs that internal/trace asserts are realizable by real
// cache behaviour. For a representative subset of the catalog it sizes a
// synthetic working set, streams it through the actual Table III L1
// (32 KB, 4-way, 64 B, LRU), and compares the measured MPKI to the
// catalog value the many-core model injects.
func CacheMPKI(o Opts) *Table {
	o = o.norm()
	names := []string{"sjeng", "gcc", "astar", "sjas", "milc", "swim", "Gems", "mcf"}
	refs := int(o.Measure) * 8
	rows := make([][]string, len(names))
	o.sweep(len(names), func(i int) {
		b, err := trace.Lookup(names[i])
		if err != nil {
			panic(err)
		}
		target := b.NetMPKI / 1000 / memRefsPerInstr
		p := cache.ForMissRate(target, cache.L1D())
		measured, err := cache.MeasureMissRate(p, cache.L1D(), refs, o.seedFor("cache-mpki", i, 0))
		if err != nil {
			panic(err)
		}
		rows[i] = []string{
			b.Name,
			f(b.NetMPKI, 1),
			f(float64(p.WorkingSetBytes)/1024, 0),
			f(measured*memRefsPerInstr*1000, 1),
		}
	})
	return &Table{
		ID:     "cache-mpki",
		Title:  "Catalog MPKI realized on the real Table III L1 (32KB 4-way LRU, 64B blocks)",
		Header: []string{"Benchmark", "Catalog MPKI", "Working set (KB)", "Measured MPKI"},
		Rows:   rows,
		Notes: []string{
			"assumes ~0.3 memory references per instruction",
			"shows the trace substitution's MPKIs correspond to realizable cache behaviour, not arbitrary rates",
		},
	}
}
