package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunCtxCancelDiscardsPartialTable: a cancelled experiment returns
// the ctx error and no table — callers never see partially-filled
// results.
func TestRunCtxCancelDiscardsPartialTable(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 10_000_000, 2_000_000_000 // far too long to finish
	o.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	tb, err := RunCtx(ctx, "table1", o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tb != nil {
		t.Fatalf("cancelled run returned a table: %+v", tb)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("cancelled experiment took %v to abort", d)
	}
}

// TestRunCtxBackgroundMatchesRun: threading a live ctx through must not
// change results.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 500, 2000
	o.Workers = 2
	r, err := Get("fig9a") // analytic: fast and exactly reproducible
	if err != nil {
		t.Fatal(err)
	}
	plain := r(o)
	viaCtx, err := RunCtx(context.Background(), "fig9a", o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != viaCtx.String() {
		t.Fatalf("RunCtx output diverged from direct run:\n%s\nvs\n%s", plain, viaCtx)
	}
}

// TestProgressCalledPerTask: Opts.Progress fires once per completed
// simulation task, the hook the job server's progress events rely on.
func TestProgressCalledPerTask(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 200, 500
	o.Workers = 1
	var calls int
	o.Progress = func() { calls++ }
	if _, err := RunCtx(context.Background(), "fig9a", o); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Progress never called")
	}
}
