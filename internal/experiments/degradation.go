package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/fault"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

func init() { register("degradation", Degradation) }

// degradationCounts are the failed-L2LC counts of the campaign. The
// 4-layer 4-channel geometry has 48 channels across 12 ordered layer
// pairs, so 32 failures leave at least one healthy channel per pair
// (the per-pair budget caps at 36).
var degradationCounts = []int{0, 4, 8, 16, 24, 32}

// degradationSchemes are the arbitration schemes compared, mirroring the
// paper's CLRG-vs-LRG axis. Fault selection depends only on the channel
// topology, never on the scheme, so both columns at a given count lose
// the *same* channels.
var degradationSchemes = []topo.Scheme{topo.CLRG, topo.L2LLRG}

// Degradation sweeps the fault plane over the saturated 4-layer Hi-Rise
// switch: for each failed-L2LC count it fail-stops a deterministic,
// nested set of channels (the K-fault set is a subset of the K+1-fault
// set, so capacity only shrinks along the rows) and measures saturation
// throughput and latency quantiles with the invariant checker on. Every
// simulated cycle of this table is self-checking: a grant on a failed
// resource or an unaccounted flit aborts the experiment.
func Degradation(o Opts) *Table {
	o = o.norm()
	type cell struct{ tput, p50, p99 float64 }
	cells := make([][]cell, len(degradationCounts))
	for i := range cells {
		cells[i] = make([]cell, len(degradationSchemes))
	}
	o.sweep(len(degradationCounts)*len(degradationSchemes), func(k int) {
		ci, si := k/len(degradationSchemes), k%len(degradationSchemes)
		d := designHiRise("3D", 4, degradationSchemes[si])
		plan, err := fault.Spec{
			Seed: o.Seed, Campaign: "degradation", Cfg: d.Cfg,
			FailChannels: degradationCounts[ci],
		}.Build()
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Uniform{Radix: d.Cfg.Radix},
			Load:    1.0,
			Warmup:  o.Warmup, Measure: o.Measure,
			ConvergeStop: o.ConvergeStop,
			// The seed depends on the count only: both schemes at a row see
			// the same offered traffic as well as the same failed channels.
			Seed:   o.seedFor("degradation", ci, 0),
			Faults: plan, Check: true,
		})
		if err != nil {
			panic(err)
		}
		cells[ci][si] = cell{res.AcceptedFlits, res.P50Latency, res.P99Latency}
	})

	rows := make([][]string, len(degradationCounts))
	for ci, n := range degradationCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for si := range degradationSchemes {
			c := cells[ci][si]
			row = append(row, f(c.tput, 2), f(c.p50, 1), f(c.p99, 1))
		}
		rows[ci] = row
	}
	header := []string{"Failed L2LCs"}
	for _, s := range degradationSchemes {
		header = append(header, s.String()+" tput", s.String()+" p50", s.String()+" p99")
	}
	return &Table{
		ID:     "degradation",
		Title:  "Saturation throughput (flits/cycle) and latency (cycles) vs failed channels",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"fail-stop channel faults, nested sets: each row's failures include the previous row's",
			"invariant checker on for every run: failed-resource grants or lost flits abort",
		},
	}
}
