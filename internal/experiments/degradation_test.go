package experiments

import (
	"reflect"
	"strconv"
	"testing"
)

func degradationQuick(workers int) *Table {
	o := QuickOpts()
	o.Workers = workers
	return Degradation(o)
}

// TestDegradationDeterministicAcrossWorkers requires the campaign to be
// byte-identical at any parallelism — the fault plane must not leak
// scheduling into results.
func TestDegradationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker campaign sweep")
	}
	want := degradationQuick(1)
	for _, w := range []int{2, 7} {
		if got := degradationQuick(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d diverged from serial:\n%s\nvs\n%s", w, want, got)
		}
	}
}

// TestDegradationMonotone requires saturation throughput to decline (never
// rise) as the nested failed-channel sets grow, for every scheme column.
func TestDegradationMonotone(t *testing.T) {
	tbl := degradationQuick(0)
	if len(tbl.Rows) != len(degradationCounts) {
		t.Fatalf("expected %d rows, got %d", len(degradationCounts), len(tbl.Rows))
	}
	for si := range degradationSchemes {
		col := 1 + si*3 // throughput column for this scheme
		prev := -1.0
		for ri, row := range tbl.Rows {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("row %d col %d %q: %v", ri, col, row[col], err)
			}
			// Nested fault sets only remove capacity; allow a whisker of
			// measurement noise at equal counts but no real increase.
			if prev >= 0 && v > prev+0.25 {
				t.Fatalf("%s throughput rose from %.2f to %.2f at %s failed channels:\n%s",
					tbl.Header[col], prev, v, row[0], tbl)
			}
			prev = v
		}
		first, _ := strconv.ParseFloat(tbl.Rows[0][col], 64)
		last, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][col], 64)
		if last >= first {
			t.Fatalf("%s: no overall degradation (%.2f -> %.2f):\n%s",
				tbl.Header[col], first, last, tbl)
		}
	}
}
