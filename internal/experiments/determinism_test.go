package experiments

import (
	"runtime"
	"testing"
)

// fastOpts is a fidelity low enough to run several experiments per test
// on one core while still exercising every sweep shape.
func fastOpts(workers int) Opts {
	o := QuickOpts()
	o.Warmup, o.Measure = 500, 2000
	o.Workers = workers
	return o
}

// TestWorkerCountInvariance is the engine's core guarantee: an
// experiment renders byte-identically at every worker count, because
// seeds derive from (experiment, point, replicate) coordinates and
// results reduce in index order — never from scheduling. The ids cover
// each sweep shape: a per-design cost sweep (table4), a flattened
// design x load grid (fig10), per-seed replicates (table4-ci), a
// paired-seed many-core comparison (table6-detail), and an ablation
// with two runs per point (ablate-classes).
func TestWorkerCountInvariance(t *testing.T) {
	ids := []string{"table4", "fig10", "table4-ci", "table6-detail", "ablate-classes"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			serial := r(fastOpts(1)).String()
			for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := r(fastOpts(w)).String(); got != serial {
					t.Errorf("workers=%d output differs from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
						w, serial, w, got)
				}
			}
		})
	}
}

// TestSameSeedReproduces pins the replicate experiment: the same seed
// must reproduce the exact confidence intervals, and a different seed
// must not (otherwise the "replicates" are not actually resampling).
func TestSameSeedReproduces(t *testing.T) {
	o := fastOpts(0)
	a := TableIVReplicated(o).String()
	b := TableIVReplicated(o).String()
	if a != b {
		t.Errorf("same seed produced different table4-ci output:\n%s\nvs\n%s", a, b)
	}
	o.Seed = 12345
	if c := TableIVReplicated(o).String(); c == a {
		t.Error("different seed produced identical table4-ci output")
	}
}
