// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each runner returns a Table — a titled grid of
// formatted rows — that cmd/hirise-bench prints and the repository-root
// benchmarks time. Figure runners emit the figure's series as columns.
//
// Simulation-backed experiments accept Opts so tests and benchmarks can
// trade fidelity for speed; the defaults match the fidelity used for
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
)

// Opts tunes simulation fidelity.
type Opts struct {
	// Warmup and Measure are the simulation windows in cycles.
	Warmup, Measure int64
	// Seed drives all stochastic components. Every simulation task
	// derives its own stream from it via seedFor, so results are
	// identical at any Workers count.
	Seed uint64
	// Tech is the process technology (zero value: Default32nm).
	Tech phys.Tech
	// Workers bounds the number of simulations run concurrently within
	// an experiment: 0 selects runtime.GOMAXPROCS(0), 1 forces serial
	// execution. Output is byte-identical at every value.
	Workers int
	// ConvergeStop lets every simulation stop early once the MSER
	// steady-state detector converges (see sim.Config.ConvergeStop).
	// The stop decision is deterministic per run, so parallel output
	// stays byte-identical — but results differ from full-length runs,
	// so the flag is part of CacheKey.
	ConvergeStop bool
	// Ctx, when non-nil, makes the experiment cancellable: pending sweep
	// points are skipped, in-flight simulations abort at their next
	// cycle-level check, and the runner returns quickly with a partial
	// (garbage) table. Callers MUST check Ctx.Err() after the runner
	// returns and discard the table if it is non-nil — RunCtx does this.
	// Ctx and Progress never influence results, so both are excluded
	// from CacheKey.
	Ctx context.Context
	// Progress, when non-nil, is called once after every completed
	// simulation task inside the experiment's sweeps. It runs on worker
	// goroutines and must be safe for concurrent use; it must not block.
	Progress func()
}

// DefaultOpts returns the fidelity used for the published EXPERIMENTS.md
// numbers.
func DefaultOpts() Opts {
	return Opts{Warmup: 10000, Measure: 50000, Seed: 1, Tech: phys.Default32nm()}
}

// QuickOpts returns a fast, lower-fidelity variant for tests and smoke
// runs.
func QuickOpts() Opts {
	return Opts{Warmup: 2000, Measure: 8000, Seed: 1, Tech: phys.Default32nm()}
}

// norm fills unset (zero) fields with the DefaultOpts values. Note that
// zero means "unset" for every numeric field, so an explicit Seed 0 or
// Warmup 0 is indistinguishable from the default and is remapped (Seed
// 0 becomes 1, mirroring sim.Config.Defaults); Workers 0 is left for
// the pool to resolve to runtime.GOMAXPROCS(0).
func (o Opts) norm() Opts {
	d := DefaultOpts()
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Measure == 0 {
		o.Measure = d.Measure
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Tech == (phys.Tech{}) {
		o.Tech = d.Tech
	}
	return o
}

// CacheKey is the canonical cacheable identity of an experiment run:
// exactly the Opts fields that influence results, normalized so that
// explicitly-default and unset options collide. Workers is excluded
// (output is byte-identical at every worker count — that is the pool's
// contract), as are Ctx and Progress (control plumbing, not physics).
// internal/store hashes this struct, together with the experiment ID and
// the model-version fingerprint, into the result key.
type CacheKey struct {
	Warmup  int64
	Measure int64
	Seed    uint64
	Tech    phys.Tech
	// ConvergeStop is omitted when false so that keys hashed before the
	// flag existed keep identifying the same full-length runs.
	ConvergeStop bool `json:"converge_stop,omitempty"`
}

// CacheKey returns the run's cacheable identity (see type CacheKey).
func (o Opts) CacheKey() CacheKey {
	o = o.norm()
	return CacheKey{Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed, Tech: o.Tech, ConvergeStop: o.ConvergeStop}
}

// RunCtx runs the registered experiment id at the given fidelity under
// ctx. It is the cancellation-correct entry point: a cancelled ctx makes
// the runner unwind quickly (skipped sweep points, aborted simulations)
// and RunCtx then discards the partial table and returns the ctx error.
func RunCtx(ctx context.Context, id string, o Opts) (*Table, error) {
	r, err := Get(id)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		o.Ctx = ctx
	}
	t := r(o)
	if o.Ctx != nil && o.Ctx.Err() != nil {
		return nil, o.Ctx.Err()
	}
	return t, nil
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("table4", "fig10", ...).
	ID string
	// Title describes what the paper artifact shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds formatted cells.
	Rows [][]string
	// Notes documents modeling caveats for this experiment.
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Kind selects a switch family.
type Kind int

const (
	// Flat2D is the 2D Swizzle-Switch baseline.
	Flat2D Kind = iota
	// Folded3D is the folded 2D switch baseline.
	Folded3D
	// HiRise3D is the paper's switch.
	HiRise3D
)

// Design names one concrete switch under evaluation and builds fresh
// simulator instances and physical costs for it.
type Design struct {
	// Name is the row label.
	Name string
	// Kind is the switch family.
	Kind Kind
	// Cfg is the full configuration (2D uses only Radix; folded uses
	// Radix and Layers).
	Cfg topo.Config
}

// Designs used across experiments. The Hi-Rise variants use the paper's
// 4-layer 64-radix geometry with input binning and 3 CLRG classes.
func design2D(radix int) Design {
	return Design{Name: "2D", Kind: Flat2D, Cfg: topo.Config{Radix: radix, Layers: 1}}
}

func designFolded(radix, layers int) Design {
	return Design{Name: "3D Folded", Kind: Folded3D, Cfg: topo.Config{Radix: radix, Layers: layers}}
}

func designHiRise(name string, channels int, scheme topo.Scheme) Design {
	return Design{Name: name, Kind: HiRise3D, Cfg: topo.Config{
		Radix: 64, Layers: 4, Channels: channels,
		Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
	}}
}

// NewSwitch builds a fresh simulator instance of the design.
func (d Design) NewSwitch() sim.Switch {
	switch d.Kind {
	case Flat2D:
		return crossbar.New(d.Cfg.Radix)
	case Folded3D:
		return crossbar.NewFolded(d.Cfg.Radix, d.Cfg.Layers)
	default:
		s, err := core.New(d.Cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: bad design %q: %v", d.Name, err))
		}
		return s
	}
}

// Cost returns the design's physical cost.
func (d Design) Cost(tech phys.Tech) phys.Cost {
	switch d.Kind {
	case Flat2D:
		return phys.Flat2D(d.Cfg.Radix, tech)
	case Folded3D:
		return phys.Folded(d.Cfg.Radix, d.Cfg.Layers, tech)
	default:
		return phys.HiRise(d.Cfg, tech)
	}
}

// ConfigString renders the design's structure in the paper's table style.
func (d Design) ConfigString() string {
	switch d.Kind {
	case Flat2D:
		return fmt.Sprintf("%dx%d", d.Cfg.Radix, d.Cfg.Radix)
	case Folded3D:
		return fmt.Sprintf("[%dx%d]x%d", d.Cfg.Radix/d.Cfg.Layers, d.Cfg.Radix, d.Cfg.Layers)
	default:
		in, out := d.Cfg.LocalSwitchShape()
		return fmt.Sprintf("[(%dx%d), %d.(%dx1)]x%d",
			in, out, d.Cfg.PortsPerLayer(), d.Cfg.SubBlockInputs(), d.Cfg.Layers)
	}
}

// sweep runs fn(i) for i in [0,n) through the bounded worker pool at the
// options' worker count and waits. fn must write only index-owned state;
// per-task PRNG streams come from o.seedFor, never from scheduling.
//
// With a non-nil o.Ctx the sweep is cancellable: cancelled runs skip
// pending tasks, and panics raised by in-flight tasks that were aborted
// by the same cancellation (simulations return their ctx error, which
// runners re-panic) are suppressed by the pool — the caller's post-run
// Ctx.Err() check is the authoritative failure signal.
func (o Opts) sweep(n int, fn func(i int)) {
	task := fn
	if o.Progress != nil {
		task = func(i int) {
			defer o.Progress()
			fn(i)
		}
	}
	pool.DoCtx(o.Ctx, n, o.Workers, task)
}

// seedFor derives the PRNG seed of one simulation task from the base
// seed and the task's stable coordinates: the experiment ID, the point
// index within the sweep, and the replicate (seed) index. The derivation
// (splitmix64 chaining, see internal/pool) depends only on these
// coordinates — never on worker identity or completion order — which is
// what makes parallel experiment output byte-identical to serial output.
func (o Opts) seedFor(id string, point, replicate int) uint64 {
	return pool.SeedFor(o.Seed, pool.StringID(id), uint64(point), uint64(replicate))
}

// f formats a float with the given precision.
func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
