package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/reprolab/hirise/internal/topo"
)

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// cell returns the value at (rowLabel, column header) in the table.
func cell(t *testing.T, tb *Table, rowLabel, col string) string {
	t.Helper()
	ci := -1
	for i, h := range tb.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("column %q not in %v", col, tb.Header)
	}
	for _, row := range tb.Rows {
		if row[0] == rowLabel {
			return row[ci]
		}
	}
	t.Fatalf("row %q not found in table %s", rowLabel, tb.ID)
	return ""
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "demo",
		Header: []string{"A", "BB"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "A    BB", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	for _, id := range []string{
		"table1", "table4", "table5",
		"fig9a", "fig9b", "fig9c", "fig10", "fig11a", "fig11b", "fig11c", "fig12",
	} {
		if _, err := Get(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	ids := IDs()
	if len(ids) < 15 {
		t.Errorf("only %d experiments registered", len(ids))
	}
}

func TestDesignConfigStrings(t *testing.T) {
	if s := design2D(64).ConfigString(); s != "64x64" {
		t.Errorf("2D config %q", s)
	}
	if s := designFolded(64, 4).ConfigString(); s != "[16x64]x4" {
		t.Errorf("folded config %q", s)
	}
	if s := designHiRise("", 4, topo.CLRG).ConfigString(); s != "[(16x28), 16.(13x1)]x4" {
		t.Errorf("hirise config %q", s)
	}
}

func TestTableIVClaims(t *testing.T) {
	tb := TableIV(QuickOpts())
	tput := func(name string) float64 { return atof(t, cell(t, tb, name, "Tput(Tbps)")) }

	c4, c2, c1 := tput("3D 4-Channel"), tput("3D 2-Channel"), tput("3D 1-Channel")
	d2, fold := tput("2D"), tput("3D Folded")

	if !(c4 > d2) {
		t.Errorf("4-channel (%.2f) must beat 2D (%.2f)", c4, d2)
	}
	if !(fold < d2) {
		t.Errorf("folded (%.2f) must trail 2D (%.2f)", fold, d2)
	}
	if !(c4 > c2 && c2 > c1) {
		t.Errorf("channel ordering broken: %.2f %.2f %.2f", c4, c2, c1)
	}
	// Paper: 4-channel beats 2D by ~18%; 1-channel is far below.
	if gain := c4/d2 - 1; gain < 0.08 || gain > 0.35 {
		t.Errorf("4-channel gain over 2D %.2f, want ~0.15-0.18", gain)
	}
	if c1/d2 > 0.7 {
		t.Errorf("1-channel (%.2f) should saturate far below 2D (%.2f)", c1, d2)
	}
	// TSV counts are exact.
	for _, want := range []struct{ row, tsvs string }{
		{"2D", "0"}, {"3D Folded", "8192"},
		{"3D 4-Channel", "6144"}, {"3D 2-Channel", "3072"}, {"3D 1-Channel", "1536"},
	} {
		if got := cell(t, tb, want.row, "#TSVs"); got != want.tsvs {
			t.Errorf("%s TSVs = %s, want %s", want.row, got, want.tsvs)
		}
	}
}

func TestTableIVReplicatedClaims(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000
	tb := TableIVReplicated(o)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	mean := func(name string) float64 { return atof(t, cell(t, tb, name, "Mean Tbps")) }
	if !(mean("3D 4-Channel") > mean("2D") && mean("2D") > mean("3D 1-Channel")) {
		t.Errorf("ordering broken across seeds: %v", tb.Rows)
	}
	// Error bars must be small relative to the gaps the claims rest on.
	for _, r := range tb.Rows {
		se := atof(t, strings.TrimPrefix(r[2], "±"))
		if se > 0.2*atof(t, r[1]) {
			t.Errorf("%s: stderr %v too large vs mean %v", r[0], se, r[1])
		}
	}
}

func TestTableVClaims(t *testing.T) {
	tb := TableV(QuickOpts())
	clrg := atof(t, cell(t, tb, "3D CLRG", "Tput(Tbps)"))
	l2l := atof(t, cell(t, tb, "3D L-2-L LRG", "Tput(Tbps)"))
	d2 := atof(t, cell(t, tb, "2D", "Tput(Tbps)"))
	if clrg > l2l {
		t.Errorf("CLRG (%.2f) should be at or marginally below L-2-L LRG (%.2f)", clrg, l2l)
	}
	if clrg/l2l < 0.95 {
		t.Errorf("CLRG (%.2f) should be within 5%% of L-2-L LRG (%.2f)", clrg, l2l)
	}
	if clrg/d2 < 1.05 {
		t.Errorf("CLRG (%.2f) should clearly beat 2D (%.2f)", clrg, d2)
	}
	if a, b := cell(t, tb, "3D CLRG", "Area(mm2)"), cell(t, tb, "3D L-2-L LRG", "Area(mm2)"); a != b {
		t.Errorf("CLRG area %s != L2L area %s", a, b)
	}
}

func TestFig9Tables(t *testing.T) {
	o := QuickOpts()
	a, b, c := Fig9a(o), Fig9b(o), Fig9c(o)
	if len(a.Rows) != 8 || len(a.Header) != 5 {
		t.Errorf("fig9a shape %dx%d", len(a.Rows), len(a.Header))
	}
	if len(b.Rows) != 6 || len(b.Header) != 5 {
		t.Errorf("fig9b shape %dx%d", len(b.Rows), len(b.Header))
	}
	// 2D fastest at radix 16, slowest at radix 128 vs 4-channel.
	if atof(t, a.Rows[0][1]) <= atof(t, a.Rows[0][2]) {
		t.Error("fig9a: 2D should lead at radix 16")
	}
	last := len(a.Rows) - 1
	if atof(t, a.Rows[last][1]) >= atof(t, a.Rows[last][2]) {
		t.Error("fig9a: 3D should lead at radix 128")
	}
	// Energy slopes: 2D grows faster.
	d2Slope := atof(t, c.Rows[len(c.Rows)-1][1]) - atof(t, c.Rows[0][1])
	d3Slope := atof(t, c.Rows[len(c.Rows)-1][2]) - atof(t, c.Rows[0][2])
	if d3Slope >= d2Slope {
		t.Errorf("fig9c: 3D slope %.1f should be below 2D %.1f", d3Slope, d2Slope)
	}
}

func TestFig10Claims(t *testing.T) {
	tb := Fig10(QuickOpts())
	// Zero-load (lowest load row): every 3D latency beats 2D by ~20%.
	row := tb.Rows[0]
	d2 := atof(t, row[1])
	for i, name := range []string{"3D 4-Channel", "3D 2-Channel", "3D 1-Channel"} {
		v := atof(t, row[2+i])
		if v >= d2 {
			t.Errorf("%s zero-load latency %.2f not below 2D %.2f", name, v, d2)
		}
	}
	// 1-channel saturates within the sweep; 4-channel survives longer.
	var c1Sat, c4Sat int
	for li, r := range tb.Rows {
		if r[4] == "sat" && c1Sat == 0 {
			c1Sat = li + 1
		}
		if r[2] == "sat" && c4Sat == 0 {
			c4Sat = li + 1
		}
	}
	if c1Sat == 0 {
		t.Error("1-channel never saturated in the sweep")
	}
	if c4Sat != 0 && c4Sat <= c1Sat {
		t.Errorf("4-channel saturated at row %d, not after 1-channel (row %d)", c4Sat, c1Sat)
	}
}

func TestFig11aClaims(t *testing.T) {
	o := QuickOpts()
	// The runner multiplies the windows by 4. The hotspot load delivers
	// only ~3 packets per input per 1000 cycles, so the latency-ratio
	// estimate needs a long window before its spread is smaller than the
	// effect under test.
	o.Warmup, o.Measure = 2000, 20000
	tb := Fig11a(o)
	if len(tb.Rows) != 64 {
		t.Fatalf("fig11a rows %d, want 64", len(tb.Rows))
	}
	// Column 2 = L-2-L LRG, column 4 = CLRG. Compare local (48-63) vs
	// remote (0-47) mean latency.
	meanRange := func(col, lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += atof(t, tb.Rows[i][col])
		}
		return sum / float64(hi-lo)
	}
	l2lRatio := meanRange(2, 48, 64) / meanRange(2, 0, 48)
	if l2lRatio < 1.8 {
		t.Errorf("L-2-L LRG local/remote latency ratio %.2f, want >> 1 (paper ~4)", l2lRatio)
	}
	clrgRatio := meanRange(4, 48, 64) / meanRange(4, 0, 48)
	if clrgRatio < 0.7 || clrgRatio > 1.5 {
		t.Errorf("CLRG local/remote latency ratio %.2f, want ~1", clrgRatio)
	}
}

func TestFig11cClaims(t *testing.T) {
	tb := Fig11c(QuickOpts())
	if len(tb.Rows) != 5 {
		t.Fatalf("fig11c rows %d", len(tb.Rows))
	}
	col := func(name string) int {
		for i, h := range tb.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %s", name)
		return -1
	}
	l2l, clrg, wlrg := col("3D L-2-L LRG"), col("3D CLRG"), col("3D WLRG")
	// Input 20 is the last row. Under L-2-L LRG it hoards ~half the
	// output: at least 3x any layer-1 input.
	in20 := atof(t, tb.Rows[4][l2l])
	in3 := atof(t, tb.Rows[0][l2l])
	if in20 < 3*in3 {
		t.Errorf("L-2-L LRG input 20 (%.3f) should dwarf input 3 (%.3f)", in20, in3)
	}
	// CLRG and WLRG equalize: max/min within 15%.
	for _, c := range []int{clrg, wlrg} {
		lo, hi := 1e9, 0.0
		for _, r := range tb.Rows {
			v := atof(t, r[c])
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi/lo > 1.15 {
			t.Errorf("column %s spread %.2f, want fair (~1.0)", tb.Header[c], hi/lo)
		}
	}
}

func TestFig12Claims(t *testing.T) {
	tb := Fig12(QuickOpts())
	if tb.Rows[0][0] != "0.8" {
		t.Fatalf("first pitch %s", tb.Rows[0][0])
	}
	baseA, baseF := atof(t, tb.Rows[0][2]), atof(t, tb.Rows[0][1])
	prevA, prevF := baseA, baseF
	for _, r := range tb.Rows[1:] {
		a, fq := atof(t, r[2]), atof(t, r[1])
		if a < prevA || fq > prevF {
			t.Errorf("pitch %s: area/freq not monotone", r[0])
		}
		prevA, prevF = a, fq
	}
	// +25% pitch row (1.0 um): small cost.
	if g := atof(t, tb.Rows[1][2])/baseA - 1; g > 0.04 {
		t.Errorf("area growth at 1.0um %.3f, want ~0.017", g)
	}
}

func TestCornerCaseClaim(t *testing.T) {
	tb := CornerCase(QuickOpts())
	frac := atof(t, tb.Rows[1][2])
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("worst-case fraction %.2f, want ~0.25", frac)
	}
}

func TestDiscussionDerivation(t *testing.T) {
	tb := Discussion(QuickOpts())
	// Hi-Rise saving over flattened butterfly should be ~58%.
	sav := atof(t, cell(t, tb, "Flattened butterfly (derived)", "vs Hi-Rise"))
	if sav < 0.5 || sav > 0.65 {
		t.Errorf("saving over flattened butterfly %.2f, want ~0.58", sav)
	}
	if sav2d := atof(t, cell(t, tb, "2D Swizzle-Switch", "vs Hi-Rise")); sav2d < 0.3 || sav2d > 0.45 {
		t.Errorf("saving over 2D %.2f, want ~0.38", sav2d)
	}
}

func TestTableVIClaims(t *testing.T) {
	tb := TableVI(QuickOpts())
	if len(tb.Rows) != 9 { // 8 mixes + average row
		t.Fatalf("table6 rows %d", len(tb.Rows))
	}
	speedups := make([]float64, 8)
	for i := 0; i < 8; i++ {
		speedups[i] = atof(t, tb.Rows[i][2])
		if speedups[i] < 0.97 {
			t.Errorf("%s: Hi-Rise slower than 2D (%.2f)", tb.Rows[i][0], speedups[i])
		}
	}
	avg := atof(t, tb.Rows[8][2])
	if avg < 1.02 || avg > 1.18 {
		t.Errorf("average speedup %.3f, paper reports ~1.08", avg)
	}
	// The highest-MPKI mixes benefit most (paper: Mix7/Mix8 at 1.15-1.16).
	loAvg := (speedups[0] + speedups[1]) / 2
	hiAvg := (speedups[6] + speedups[7]) / 2
	if hiAvg <= loAvg {
		t.Errorf("high-MPKI mixes (%.2f) should gain more than low (%.2f)", hiAvg, loAvg)
	}
}

func TestTableVIAddrClaims(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000
	tb := TableVIAddr(o)
	if len(tb.Rows) != 9 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for i := 0; i < 8; i++ {
		catalog, measured := atof(t, tb.Rows[i][1]), atof(t, tb.Rows[i][2])
		if math.Abs(measured-catalog) > 0.25*catalog+1 {
			t.Errorf("%s: measured MPKI %.1f far from catalog %.1f", tb.Rows[i][0], measured, catalog)
		}
		if sp := atof(t, tb.Rows[i][3]); sp < 0.95 {
			t.Errorf("%s: address-mode speedup %.2f", tb.Rows[i][0], sp)
		}
	}
	if avg := atof(t, tb.Rows[8][3]); avg < 1.0 || avg > 1.25 {
		t.Errorf("address-mode average speedup %.3f", avg)
	}
}

func TestTableVIDetailClaims(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000
	tb := TableVIDetail(o)
	if len(tb.Rows) < 6 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Every application's Hi-Rise IPC should be at least its 2D IPC
	// (within noise), and the system row must reconcile.
	for _, r := range tb.Rows {
		if sp := atof(t, r[4]); sp < 0.93 {
			t.Errorf("%s: speedup %.2f", r[0], sp)
		}
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "system" {
		t.Fatalf("last row %v", last)
	}
}

func TestAblations(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000

	cls := AblateClasses(o)
	if len(cls.Rows) != 5 {
		t.Fatalf("class rows %d", len(cls.Rows))
	}
	// 3+ classes must be essentially fair on hotspot.
	if j := atof(t, cls.Rows[1][1]); j < 0.95 {
		t.Errorf("3-class Jain %.3f, want ~1", j)
	}

	alloc := AblateAlloc(o)
	// Priority allocation must beat input binning on the bin-adversarial
	// pattern, where every active input hashes to the same channel.
	bi := -1
	for i, h := range alloc.Header {
		if h == "bin-adversarial" {
			bi = i
		}
	}
	if bi < 0 {
		t.Fatalf("no bin-adversarial column in %v", alloc.Header)
	}
	var pri, inp float64
	for _, r := range alloc.Rows {
		switch r[0] {
		case "priority":
			pri = atof(t, r[bi])
		case "input-binned":
			inp = atof(t, r[bi])
		}
	}
	if pri < 2*inp {
		t.Errorf("priority (%.1f) should far exceed input binning (%.1f) on bin-adversarial traffic", pri, inp)
	}

	vcs := AblateVCs(o)
	// More VCs should not reduce saturation utilization.
	if one, four := atof(t, vcs.Rows[0][1]), atof(t, vcs.Rows[2][1]); four < one {
		t.Errorf("4 VCs (%.3f) below 1 VC (%.3f)", four, one)
	}

	if b := AblateBursty(o); len(b.Rows) != 4 {
		t.Errorf("bursty rows %d", len(b.Rows))
	}

	islip := AblateISLIP(o)
	// iSLIP-1 must show the L-2-L LRG bias (input 20, last row, dwarfs
	// input 3) while CLRG equalizes.
	if in20, in3 := atof(t, islip.Rows[4][2]), atof(t, islip.Rows[0][2]); in20 < 2.5*in3 {
		t.Errorf("iSLIP-1 should be unfair: input20=%.4f input3=%.4f", in20, in3)
	}
	if in20, in3 := atof(t, islip.Rows[4][3]), atof(t, islip.Rows[0][3]); in20 > 1.2*in3 {
		t.Errorf("CLRG should be fair: input20=%.4f input3=%.4f", in20, in3)
	}
}

func TestAblateQoSShares(t *testing.T) {
	tb := AblateQoS(QuickOpts())
	for _, row := range tb.Rows {
		got, want := atof(t, row[1]), atof(t, row[2])
		if math.Abs(got-want) > 0.03 {
			t.Errorf("%s: share %.3f, want %.3f", row[0], got, want)
		}
	}
}

func TestLocalityClaims(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000
	tb := Locality(o)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// 1-channel throughput must rise monotonically with locality and
	// reach ~2D at full locality.
	prev := 0.0
	for _, r := range tb.Rows {
		v := atof(t, r[3])
		if v < prev-1 {
			t.Errorf("1-channel throughput fell with locality: %v", tb.Rows)
		}
		prev = v
	}
	last := tb.Rows[4]
	if d2, c1 := atof(t, last[1]), atof(t, last[3]); c1 < 0.93*d2 {
		t.Errorf("at full locality 1-channel (%.1f) should match 2D (%.1f)", c1, d2)
	}
}

func TestBreakdownExperiment(t *testing.T) {
	tb := CostBreakdown(QuickOpts())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Components must reconcile with Table V's CLRG cycle time: 1/2.2 ns.
	r4 := tb.Rows[2]
	total := atof(t, r4[1]) + atof(t, r4[2]) + atof(t, r4[3]) + atof(t, r4[4])
	if math.Abs(total-1/2.2) > 0.01 {
		t.Errorf("4-channel cycle components sum to %.3f ns, want ~%.3f", total, 1/2.2)
	}
}

func TestCacheMPKIExperiment(t *testing.T) {
	tb := CacheMPKI(QuickOpts())
	for _, row := range tb.Rows {
		catalog, measured := atof(t, row[1]), atof(t, row[3])
		if math.Abs(measured-catalog) > 0.2*catalog+0.5 {
			t.Errorf("%s: measured MPKI %.1f far from catalog %.1f", row[0], measured, catalog)
		}
	}
}

func TestAblatePacketLength(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000
	tb := AblatePacketLength(o)
	// Saturation utilization must rise with packet length; latency too.
	for i := 1; i < len(tb.Rows); i++ {
		if atof(t, tb.Rows[i][2]) <= atof(t, tb.Rows[i-1][2]) {
			t.Errorf("utilization should rise with packet length: %v", tb.Rows)
		}
		if atof(t, tb.Rows[i][3]) <= atof(t, tb.Rows[i-1][3]) {
			t.Errorf("latency should rise with packet length: %v", tb.Rows)
		}
	}
}

func TestKilocoreClaims(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 1000, 4000
	tb := Kilocore(o)
	if len(tb.Rows) != 3 { // Hi-Rise mesh, flattened butterfly, flat mesh
		t.Fatalf("rows %d", len(tb.Rows))
	}
	hops := func(i int) float64 { return atof(t, tb.Rows[i][3]) }
	if hops(0) >= hops(2) {
		t.Errorf("concentrated Hi-Rise mesh (%.2f hops) should beat flat mesh (%.2f)", hops(0), hops(2))
	}
	if hops(1) > 3.01 {
		t.Errorf("flattened butterfly hops %.2f exceed its diameter bound", hops(1))
	}
	// Switch-traversal energy per packet: Hi-Rise mesh lowest (the
	// §VI-E power claim), flat mesh worst.
	e := func(i int) float64 { return atof(t, tb.Rows[i][5]) }
	if !(e(0) < e(1) && e(1) < e(2)) {
		t.Errorf("energy ordering broken: hirise %.0f, fbfly %.0f, mesh %.0f", e(0), e(1), e(2))
	}
}
