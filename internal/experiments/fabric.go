package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/fabric"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/traffic"
)

func init() {
	register("fabric", Fabric)
	register("fabric-degradation", FabricDegradation)
}

// fabricRow is one (topology, routing, traffic) point of the fabric
// campaign. Traffic is built per run from the core count so the same
// row definition serves every geometry.
type fabricRow struct {
	name    string
	topo    fabric.Topology
	routing fabric.Routing
	traffic string // uniform | shift | group-shift | hotspot
}

func fabricTraffic(kind string, topo fabric.Topology) sim.Traffic {
	cores := topo.Nodes() * topo.Concentration()
	switch kind {
	case "uniform":
		return traffic.Uniform{Radix: cores}
	case "shift":
		// Half-fabric shift: every mesh packet crosses the bisection.
		return traffic.Shift{N: cores, By: cores / 2}
	case "group-shift":
		// One-group shift: every dragonfly packet takes a global link —
		// the adversarial case minimal routing admits and Valiant fixes.
		d := topo.(fabric.Dragonfly)
		return traffic.Shift{N: cores, By: d.GroupSize * d.Conc}
	case "hotspot":
		return traffic.Hotspot{Target: 0}
	}
	panic("experiments: unknown fabric traffic " + kind)
}

// fabricRows spans the campaign's fidelity axes: scale (64 to 1024
// endpoints), topology family, and the minimal-vs-Valiant contrast on
// the traffic each topology finds adversarial.
func fabricRows() []fabricRow {
	mesh8 := fabric.Mesh{W: 8, H: 8, Conc: 4, Lanes: 1}                                  // 256 endpoints
	mesh16 := fabric.Mesh{W: 16, H: 16, Conc: 4, Lanes: 1}                               // 1024 endpoints
	fbfly4 := fabric.FlattenedButterfly{W: 4, H: 4, Conc: 4, Lanes: 2}                   // 64 endpoints
	dfly := fabric.Dragonfly{Groups: 9, GroupSize: 4, GlobalPorts: 2, Conc: 2, Lanes: 1} // 72 endpoints
	return []fabricRow{
		{"mesh 8x8x4", mesh8, fabric.Minimal, "uniform"},
		{"mesh 8x8x4", mesh8, fabric.Minimal, "shift"},
		{"mesh 8x8x4", mesh8, fabric.Valiant, "shift"},
		{"mesh 16x16x4", mesh16, fabric.Minimal, "uniform"},
		{"fbfly 4x4x4", fbfly4, fabric.Minimal, "uniform"},
		{"fbfly 4x4x4", fbfly4, fabric.Valiant, "shift"},
		{"dragonfly 9g.4a.2h", dfly, fabric.Minimal, "uniform"},
		{"dragonfly 9g.4a.2h", dfly, fabric.Minimal, "group-shift"},
		{"dragonfly 9g.4a.2h", dfly, fabric.Valiant, "group-shift"},
		{"dragonfly 9g.4a.2h", dfly, fabric.Minimal, "hotspot"},
	}
}

// Fabric sweeps the multi-switch fabric simulator across topologies
// (64-1024 endpoints), routing policies, and traffic patterns: each row
// measures low-load latency and fully-backlogged saturation throughput
// with the invariant checker on — every simulated cycle self-checks
// credit conservation, VC-band occupancy, and flit conservation, and
// the always-on watchdog turns any deadlock into a loud error.
func Fabric(o Opts) *Table {
	o = o.norm()
	rows := fabricRows()
	type cell struct {
		low fabric.Result
		sat fabric.Result
	}
	cells := make([]cell, len(rows))
	o.sweep(len(rows)*2, func(k int) {
		ri, rep := k/2, k%2
		r := rows[ri]
		load := 0.1
		if rep == 1 {
			load = 1.0
		}
		cfg := fabric.Config{
			Topo: r.topo, Routing: r.routing,
			Traffic: fabricTraffic(r.traffic, r.topo),
			Load:    load,
			Warmup:  o.Warmup, Measure: o.Measure,
			Seed:  o.seedFor("fabric", ri, rep),
			Check: true, Ctx: o.Ctx,
		}
		res, err := fabric.Run(cfg)
		if err != nil {
			panic(err)
		}
		if rep == 0 {
			cells[ri].low = res
		} else {
			cells[ri].sat = res
		}
	})

	out := make([][]string, len(rows))
	for i, r := range rows {
		cores := float64(r.topo.Nodes() * r.topo.Concentration())
		out[i] = []string{
			r.name,
			fmt.Sprintf("%d", int(cores)),
			r.routing.String(),
			r.traffic,
			f(cells[i].low.AvgLatency, 1),
			f(cells[i].low.AvgHops, 2),
			f(cells[i].sat.AcceptedPackets/cores, 3),
		}
	}
	return &Table{
		ID:     "fabric",
		Title:  "Multi-switch fabric: latency at 10% load and saturation throughput",
		Header: []string{"Fabric", "Cores", "Routing", "Traffic", "Lat@0.1 (cyc)", "Hops@0.1", "Sat tput (pkt/cyc/core)"},
		Rows:   out,
		Notes: []string{
			"every router a full switch; credit-based link flow control, bounded per-VC buffers",
			"invariant checker on for every run: credit or flit conservation violations and deadlocks abort",
			"shift = half-fabric bisection shift; group-shift = one-dragonfly-group shift (all-global traffic)",
			"Valiant trades low-load latency (~2x hops) for adversarial-traffic throughput",
		},
	}
}

// fabricDegradationSteps are the nested (links, routers) fail-set sizes
// of the degradation campaign: link-only rows first (rerouted around,
// zero dead flows), then router fail-stops on top (flows they sever
// retire as dead flows). Rank-based selection makes each row's fail-set
// a superset of the previous row's, so capacity only shrinks down the
// table.
var fabricDegradationSteps = []struct{ links, routers int }{
	{0, 0}, {2, 0}, {4, 0}, {8, 0}, {8, 1}, {8, 2},
}

// fabricDegradationTopos are the degraded fabrics: both run 2 lanes per
// logical link so the per-bundle budget (lanes-1) leaves minimal routes
// connected under every link-only row.
func fabricDegradationTopos() []struct {
	name string
	topo fabric.Topology
} {
	return []struct {
		name string
		topo fabric.Topology
	}{
		{"mesh 4x4x4 (2 lanes)", fabric.Mesh{W: 4, H: 4, Conc: 4, Lanes: 2}},
		{"dragonfly 9g.4a.2h (2 lanes)", fabric.Dragonfly{Groups: 9, GroupSize: 4, GlobalPorts: 2, Conc: 2, Lanes: 2}},
	}
}

// FabricDegradation sweeps nested link/router fail-sets over saturated
// fabrics with the checker on. Link faults reroute onto surviving lanes
// (throughput degrades monotonically, no dead flows); router faults
// sever flows, which retire as dead flows instead of wedging the run.
func FabricDegradation(o Opts) *Table {
	o = o.norm()
	topos := fabricDegradationTopos()
	steps := fabricDegradationSteps
	type cell struct {
		tput float64
		p99  float64
		dead int64
	}
	cells := make([][]cell, len(steps))
	for i := range cells {
		cells[i] = make([]cell, len(topos))
	}
	o.sweep(len(steps)*len(topos), func(k int) {
		si, ti := k/len(topos), k%len(topos)
		tp := topos[ti]
		var fs *fabric.FaultSet
		if s := steps[si]; s.links > 0 || s.routers > 0 {
			built, err := fabric.FaultSpec{
				Seed: o.Seed, FailLinks: s.links, FailRouters: s.routers,
			}.Build(tp.topo)
			if err != nil {
				panic(err)
			}
			fs = built
		}
		cores := tp.topo.Nodes() * tp.topo.Concentration()
		res, err := fabric.Run(fabric.Config{
			Topo: tp.topo, Routing: fabric.Minimal,
			Traffic: traffic.Uniform{Radix: cores},
			Load:    0.9,
			Warmup:  o.Warmup, Measure: o.Measure,
			// The seed depends on the topology only: every row of a column
			// sees the same offered traffic as well as nested fail-sets.
			Seed:   o.seedFor("fabric-degradation", ti, 0),
			Faults: fs, Check: true, Ctx: o.Ctx,
		})
		if err != nil {
			panic(err)
		}
		cells[si][ti] = cell{res.AcceptedPackets, res.P99Latency, res.DeadFlows}
	})

	rows := make([][]string, len(steps))
	for si, s := range steps {
		row := []string{fmt.Sprintf("%d/%d", s.links, s.routers)}
		for ti := range topos {
			c := cells[si][ti]
			row = append(row, f(c.tput, 2), f(c.p99, 0), fmt.Sprintf("%d", c.dead))
		}
		rows[si] = row
	}
	header := []string{"Failed links/routers"}
	for _, tp := range topos {
		header = append(header, tp.name+" tput", "p99", "dead")
	}
	return &Table{
		ID:     "fabric-degradation",
		Title:  "Fabric throughput (pkt/cycle) vs nested link/router fail-sets at 90% load",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"rank-based nested fail-sets: each row's failures include the previous row's",
			"link faults stay within the lanes-1 per-bundle budget, so minimal routes reroute around all of them",
			"router fail-stops sever flows; severed packets retire as dead flows instead of deadlocking",
			"invariant checker on for every run",
		},
	}
}
