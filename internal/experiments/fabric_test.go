package experiments

import (
	"reflect"
	"strconv"
	"testing"
)

func fabricQuick(workers int) *Table {
	o := QuickOpts()
	o.Workers = workers
	return Fabric(o)
}

// TestFabricCampaignRuns smoke-runs the whole campaign at quick
// fidelity — with Check on in every row, a passing run certifies credit
// conservation, VC-band occupancy, flit conservation, and deadlock
// freedom across all topology/routing/traffic combinations.
func TestFabricCampaignRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric campaign")
	}
	tbl := fabricQuick(0)
	if len(tbl.Rows) != len(fabricRows()) {
		t.Fatalf("expected %d rows, got %d:\n%s", len(fabricRows()), len(tbl.Rows), tbl)
	}
	for ri, row := range tbl.Rows {
		sat, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("row %d sat tput %q: %v", ri, row[len(row)-1], err)
		}
		if sat <= 0 {
			t.Fatalf("row %d (%s) delivered nothing at saturation:\n%s", ri, row[0], tbl)
		}
	}
}

// TestFabricDeterministicAcrossWorkers requires the campaign to be
// byte-identical at any parallelism.
func TestFabricDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker campaign sweep")
	}
	want := fabricQuick(1)
	for _, w := range []int{3, 8} {
		if got := fabricQuick(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d diverged from serial:\n%s\nvs\n%s", w, want, got)
		}
	}
}

func fabricDegradationQuick(workers int) *Table {
	o := QuickOpts()
	o.Workers = workers
	return FabricDegradation(o)
}

// TestFabricDegradationMonotone requires throughput to decline (never
// rise beyond measurement noise) down the nested link-only fail-set
// rows, every router-fault row to sit below the healthy fabric, dead
// flows to stay zero on link-only rows, and to appear once routers
// fail. Monotonicity across the link-to-router boundary is NOT asserted:
// fail-stopping a router retires its severed flows instantly, which
// unloads the network and can raise the survivors' delivered rate.
func TestFabricDegradationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation campaign sweep")
	}
	tbl := fabricDegradationQuick(0)
	if len(tbl.Rows) != len(fabricDegradationSteps) {
		t.Fatalf("expected %d rows, got %d", len(fabricDegradationSteps), len(tbl.Rows))
	}
	for ti := range fabricDegradationTopos() {
		tputCol, deadCol := 1+ti*3, 3+ti*3
		healthy, prev := -1.0, -1.0
		for ri, row := range tbl.Rows {
			v, err := strconv.ParseFloat(row[tputCol], 64)
			if err != nil {
				t.Fatalf("row %d col %d %q: %v", ri, tputCol, row[tputCol], err)
			}
			if healthy < 0 {
				healthy = v
			}
			dead, _ := strconv.ParseInt(row[deadCol], 10, 64)
			if fabricDegradationSteps[ri].routers == 0 {
				// Nested link fail-sets only remove capacity; allow a
				// whisker of noise but no real increase.
				if prev >= 0 && v > prev+prev/25 {
					t.Fatalf("%s rose from %.2f to %.2f at %s faults:\n%s",
						tbl.Header[tputCol], prev, v, row[0], tbl)
				}
				prev = v
				if dead != 0 {
					t.Fatalf("link-only row %s retired %d dead flows:\n%s", row[0], dead, tbl)
				}
			} else {
				if v >= healthy {
					t.Fatalf("%s with failed routers (%.2f) not below healthy (%.2f):\n%s",
						tbl.Header[tputCol], v, healthy, tbl)
				}
				if dead == 0 {
					t.Fatalf("router-fault row %s retired no dead flows:\n%s", row[0], tbl)
				}
			}
		}
	}
}

// TestFabricDegradationDeterministicAcrossWorkers pins worker
// invariance for the fault campaign.
func TestFabricDegradationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker campaign sweep")
	}
	want := fabricDegradationQuick(1)
	if got := fabricDegradationQuick(4); !reflect.DeepEqual(want, got) {
		t.Fatalf("workers=4 diverged from serial:\n%s\nvs\n%s", want, got)
	}
}
