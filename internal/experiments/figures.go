package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// hiriseAt returns a Hi-Rise design at an arbitrary radix/layer count for
// the physical sweeps.
func hiriseAt(radix, layers, channels int, scheme topo.Scheme) Design {
	return Design{
		Name: fmt.Sprintf("3D %d-Channel", channels),
		Kind: HiRise3D,
		Cfg: topo.Config{
			Radix: radix, Layers: layers, Channels: channels,
			Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
		},
	}
}

// Fig9a reproduces paper Fig 9(a): operating frequency versus radix for
// the 2D switch and the 4-layer 3D switch at channel multiplicities
// 1, 2, and 4.
func Fig9a(o Opts) *Table {
	o = o.norm()
	radices := []int{16, 32, 48, 64, 80, 96, 112, 128}
	rows := make([][]string, len(radices))
	o.sweep(len(radices), func(i int) {
		n := radices[i]
		rows[i] = []string{
			fmt.Sprintf("%d", n),
			f(phys.Flat2D(n, o.Tech).FreqGHz, 2),
			f(hiriseAt(n, 4, 4, topo.L2LLRG).Cost(o.Tech).FreqGHz, 2),
			f(hiriseAt(n, 4, 2, topo.L2LLRG).Cost(o.Tech).FreqGHz, 2),
			f(hiriseAt(n, 4, 1, topo.L2LLRG).Cost(o.Tech).FreqGHz, 2),
		}
	})
	return &Table{
		ID:     "fig9a",
		Title:  "Frequency (GHz) vs radix, 4-layer 3D switch",
		Header: []string{"Radix", "2D", "3D 4-Ch", "3D 2-Ch", "3D 1-Ch"},
		Rows:   rows,
		Notes:  []string{"paper: 2D fastest at low radix; beyond radix 32 all 3D variants are faster, gap widening"},
	}
}

// Fig9b reproduces paper Fig 9(b): frequency versus number of stacked
// silicon layers for radices 48, 64, 80, and 128 (4-channel).
func Fig9b(o Opts) *Table {
	o = o.norm()
	rows := make([][]string, 6)
	o.sweep(len(rows), func(i int) {
		layers := i + 2
		row := []string{fmt.Sprintf("%d", layers)}
		for _, radix := range []int{48, 64, 80, 128} {
			row = append(row, f(hiriseAt(radix, layers, 4, topo.L2LLRG).Cost(o.Tech).FreqGHz, 2))
		}
		rows[i] = row
	})
	return &Table{
		ID:     "fig9b",
		Title:  "Frequency (GHz) vs number of silicon layers (4-channel)",
		Header: []string{"Layers", "Radix 48", "Radix 64", "Radix 80", "Radix 128"},
		Rows:   rows,
		Notes:  []string{"paper: radix-64 peaks at 3-5 layers; smaller radix peaks earlier, larger later"},
	}
}

// Fig9c reproduces paper Fig 9(c): energy per 128-bit transaction versus
// radix.
func Fig9c(o Opts) *Table {
	o = o.norm()
	radices := []int{16, 32, 48, 64, 80, 96, 112, 128}
	rows := make([][]string, len(radices))
	o.sweep(len(radices), func(i int) {
		n := radices[i]
		rows[i] = []string{
			fmt.Sprintf("%d", n),
			f(phys.Flat2D(n, o.Tech).EnergyPJ, 1),
			f(hiriseAt(n, 4, 4, topo.L2LLRG).Cost(o.Tech).EnergyPJ, 1),
			f(hiriseAt(n, 4, 2, topo.L2LLRG).Cost(o.Tech).EnergyPJ, 1),
			f(hiriseAt(n, 4, 1, topo.L2LLRG).Cost(o.Tech).EnergyPJ, 1),
		}
	})
	return &Table{
		ID:     "fig9c",
		Title:  "Energy per 128-bit transaction (pJ) vs radix",
		Header: []string{"Radix", "2D", "3D 4-Ch", "3D 2-Ch", "3D 1-Ch"},
		Rows:   rows,
		Notes:  []string{"paper: 3D energy grows at a more gradual slope than 2D"},
	}
}

// fig10Designs are the latency-curve configurations of paper Fig 10.
func fig10Designs() []Design {
	return []Design{
		design2D(64),
		designHiRise("3D 4-Channel", 4, topo.L2LLRG),
		designHiRise("3D 2-Channel", 2, topo.L2LLRG),
		designHiRise("3D 1-Channel", 1, topo.L2LLRG),
		designFolded(64, 4),
	}
}

// Fig10 reproduces paper Fig 10: average packet latency (ns) versus load
// rate (packets/input/ns) under uniform random traffic for the 2D,
// Hi-Rise multi-channel, and folded configurations. Loads a design cannot
// sustain print as "sat".
func Fig10(o Opts) *Table {
	o = o.norm()
	loads := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35}
	designs := fig10Designs()

	// One pool task per (design, load) point: the sweep parallelizes
	// across the whole grid, and each point draws its own derived seed.
	cells := make([][]string, len(designs))
	for di := range cells {
		cells[di] = make([]string, len(loads))
	}
	o.sweep(len(designs)*len(loads), func(k int) {
		di, li := k/len(loads), k%len(loads)
		d := designs[di]
		cost := d.Cost(o.Tech)
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Uniform{Radix: d.Cfg.Radix},
			Load:    loads[li] / cost.FreqGHz,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("fig10", k, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		if res.Saturated() {
			cells[di][li] = "sat"
		} else {
			cells[di][li] = f(res.AvgLatency*cost.CycleNS(), 2)
		}
	})

	rows := make([][]string, len(loads))
	for li, l := range loads {
		row := []string{f(l, 2)}
		for di := range designs {
			row = append(row, cells[di][li])
		}
		rows[li] = row
	}
	header := []string{"Load(pkt/in/ns)"}
	for _, d := range designs {
		header = append(header, d.Name)
	}
	return &Table{
		ID:     "fig10",
		Title:  "Latency (ns) vs load, uniform random traffic",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"\"sat\" marks loads past that design's saturation point",
			"paper: 1-channel saturates first; 3D zero-load latency ~20% below 2D",
		},
	}
}

// arbitrationDesigns are the four schemes compared in paper Fig 11. The
// WLRG row simulates faithfully but reports CLRG-equivalent timing, as
// the paper's figures do (its hardware is infeasible).
func arbitrationDesigns() []Design {
	return []Design{
		design2D(64),
		designHiRise("3D L-2-L LRG", 4, topo.L2LLRG),
		designHiRise("3D WLRG", 4, topo.WLRG),
		designHiRise("3D CLRG", 4, topo.CLRG),
	}
}

// Fig11a reproduces paper Fig 11(a): per-input average latency (cycles)
// under hotspot traffic — every input requesting output 63 — at 80% of
// the hotspot saturation load. L-2-L LRG starves the hot output's local
// layer; CLRG and WLRG equalize it.
func Fig11a(o Opts) *Table {
	o = o.norm()
	designs := arbitrationDesigns()
	// One output accepts 1 packet per PacketFlits+1 cycles = 0.2
	// packets/cycle aggregate. The paper loads the hotspot at 80% of
	// saturation; our simulator's queueing onset sits later, so we use
	// 95% of the hot output's capacity to reach the same contended
	// operating region Fig 11(a) shows.
	const load = 0.95 * 0.2 / 64

	lat := make([][]float64, len(designs))
	o.sweep(len(designs), func(di int) {
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  designs[di].NewSwitch(),
			Traffic: traffic.Hotspot{Target: 63},
			Load:    load,
			Warmup:  o.Warmup * 4, Measure: o.Measure * 4, Seed: o.seedFor("fig11a", di, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		lat[di] = res.PerInputLatency
	})

	rows := make([][]string, 64)
	for in := 0; in < 64; in++ {
		row := []string{fmt.Sprintf("%d", in)}
		for di := range designs {
			row = append(row, f(lat[di][in], 0))
		}
		rows[in] = row
	}
	header := []string{"Input"}
	for _, d := range designs {
		header = append(header, d.Name)
	}
	t := &Table{
		ID:     "fig11a",
		Title:  "Per-input latency (cycles), hotspot to output 63 @ 95% of the hot output's capacity",
		Header: header,
		Rows:   rows,
	}
	for di, d := range designs {
		local := stats.Median(lat[di][48:])
		remote := stats.Median(lat[di][:48])
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: median remote-layer latency %.0f, local-layer (inputs 48-63) %.0f",
			d.Name, remote, local))
	}
	t.Notes = append(t.Notes, "paper: L-2-L LRG local inputs see ~4x latency; CLRG restores flat-2D fairness")
	return t
}

// Fig11b reproduces paper Fig 11(b): aggregate throughput (packets/ns)
// versus offered load (packets/input/ns) under uniform random traffic for
// the four arbitration schemes.
func Fig11b(o Opts) *Table {
	o = o.norm()
	loads := []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}
	designs := arbitrationDesigns()

	cells := make([][]string, len(designs))
	for di := range cells {
		cells[di] = make([]string, len(loads))
	}
	o.sweep(len(designs)*len(loads), func(k int) {
		di, li := k/len(loads), k%len(loads)
		d := designs[di]
		cost := d.Cost(o.Tech)
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Uniform{Radix: 64},
			Load:    loads[li] / cost.FreqGHz,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("fig11b", k, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		cells[di][li] = f(res.AcceptedPackets*cost.FreqGHz, 2)
	})

	rows := make([][]string, len(loads))
	for li, l := range loads {
		row := []string{f(l, 2)}
		for di := range designs {
			row = append(row, cells[di][li])
		}
		rows[li] = row
	}
	header := []string{"Load(pkt/in/ns)"}
	for _, d := range designs {
		header = append(header, d.Name)
	}
	return &Table{
		ID:     "fig11b",
		Title:  "Throughput (packets/ns) vs load, uniform random traffic, arbitration schemes",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"paper: all 3D schemes ~15% above 2D; CLRG marginally below L-2-L LRG (2.2 vs 2.24 GHz)",
		},
	}
}

// Fig11c reproduces paper Fig 11(c): per-input throughput (packets/ns) of
// the adversarial pattern's five requesting inputs. L-2-L LRG hands input
// 20 half the output; WLRG and CLRG equalize all five at one fifth.
func Fig11c(o Opts) *Table {
	o = o.norm()
	designs := arbitrationDesigns()
	inputs := []int{3, 7, 11, 15, 20}

	tput := make([][]float64, len(designs))
	o.sweep(len(designs), func(di int) {
		d := designs[di]
		cost := d.Cost(o.Tech)
		res, err := sim.Run(sim.Config{
			Ctx:     o.Ctx,
			Switch:  d.NewSwitch(),
			Traffic: traffic.Adversarial(),
			Load:    1.0,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("fig11c", di, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		col := make([]float64, len(inputs))
		for i, in := range inputs {
			col[i] = res.PerInputPackets[in] * cost.FreqGHz
		}
		tput[di] = col
	})

	rows := make([][]string, len(inputs))
	for i, in := range inputs {
		row := []string{fmt.Sprintf("%d", in)}
		for di := range designs {
			row = append(row, f(tput[di][i], 3))
		}
		rows[i] = row
	}
	header := []string{"Input"}
	for _, d := range designs {
		header = append(header, d.Name)
	}
	return &Table{
		ID:     "fig11c",
		Title:  "Per-input throughput (packets/ns), adversarial pattern {3,7,11,15 on L1; 20 on L2} -> output 63",
		Header: header,
		Rows:   rows,
		Notes:  []string{"paper: L-2-L LRG gives input 20 ~half the output; WLRG/CLRG give each input ~1/5"},
	}
}

// Fig12 reproduces paper Fig 12: Hi-Rise frequency and area sensitivity
// to TSV pitch (64-radix, 4-channel, 4 layers, CLRG), with the 2D switch
// as the flat reference.
func Fig12(o Opts) *Table {
	o = o.norm()
	pitches := []float64{0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0}
	d2 := phys.Flat2D(64, o.Tech)
	rows := make([][]string, len(pitches))
	o.sweep(len(pitches), func(i int) {
		p := pitches[i]
		tech := o.Tech
		tech.TSVPitchUM = p
		c := designHiRise("", 4, topo.CLRG).Cost(tech)
		rows[i] = []string{f(p, 1), f(c.FreqGHz, 2), f(c.AreaMM2, 3), f(d2.FreqGHz, 2), f(d2.AreaMM2, 3)}
	})
	return &Table{
		ID:     "fig12",
		Title:  "Sensitivity to TSV pitch (64-radix 4-channel 4-layer Hi-Rise, CLRG)",
		Header: []string{"Pitch(um)", "Freq(GHz)", "Area(mm2)", "2D Freq", "2D Area"},
		Rows:   rows,
		Notes:  []string{"paper: +25% pitch costs only 1.67% area and 1.8% frequency"},
	}
}
