package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// physExperiments are the purely analytic artifacts: no simulation, no
// randomness, so their rendered output is bit-stable and guards the
// calibrated cost model against accidental drift.
var physExperiments = []string{"fig9a", "fig9b", "fig9c", "fig12", "breakdown", "discussion"}

func TestGoldenPhysExperiments(t *testing.T) {
	for _, id := range physExperiments {
		t.Run(id, func(t *testing.T) {
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			got := r(QuickOpts()).String()
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/experiments -run Golden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden output.\n--- got ---\n%s--- want ---\n%s", id, got, want)
			}
		})
	}
}
