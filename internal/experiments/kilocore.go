package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/noc"
	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
)

func init() { register("kilocore", Kilocore) }

// Kilocore explores the paper's §VI-E/Fig 13 composition: a 2D mesh of
// 3D Hi-Rise switches as the fabric for many-hundred-core systems,
// against a conventional mesh of low-radix 2D switches with the same
// core count. High-radix concentrated nodes cut the hop count enough to
// win on latency despite their slower clock, which is the argument for
// high-radix topologies the paper inherits from [4,5].
func Kilocore(o Opts) *Table {
	o = o.norm()

	type topology struct {
		name  string
		cfg   noc.Config
		ghz   float64
		radix int
	}

	hirise := topo.Config{Radix: 64, Layers: 4, Channels: 4,
		Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3}
	hirisePhys := phys.HiRise(hirise, o.Tech)
	lowRadix := 7 // 3 cores + 4 single link ports
	lowPhys := phys.Flat2D(lowRadix, o.Tech)

	// The flattened butterfly the paper compares against (§VI-E): same
	// 4x4 grid and concentration, but 2D Swizzle-Switch nodes with
	// direct row/column links (radix 48 + 6*2 = 60).
	fbTopo := noc.FlattenedButterfly{W: 4, H: 4, Conc: 48, Lanes: 2}
	fbPhys := phys.Flat2D(fbTopo.Radix(), o.Tech)

	tops := []topology{
		{
			name: "4x4 mesh of Hi-Rise 64 (48 cores/node)",
			cfg: noc.Config{
				MeshW: 4, MeshH: 4, Concentration: 48, LinkPorts: 4,
				NewSwitch: func() sim.Switch {
					sw, err := core.New(hirise)
					if err != nil {
						panic(err)
					}
					return sw
				},
				Warmup: o.Warmup, Measure: o.Measure, Seed: o.Seed,
			},
			ghz:   hirisePhys.FreqGHz,
			radix: 64,
		},
		{
			name: "4x4 flattened butterfly of 2D radix-60",
			cfg: noc.Config{
				Topology:  fbTopo,
				NewSwitch: func() sim.Switch { return crossbar.New(fbTopo.Radix()) },
				Warmup:    o.Warmup, Measure: o.Measure, Seed: o.Seed,
			},
			ghz:   fbPhys.FreqGHz,
			radix: fbTopo.Radix(),
		},
		{
			name: "16x16 mesh of 2D radix-7 (3 cores/node)",
			cfg: noc.Config{
				MeshW: 16, MeshH: 16, Concentration: 3, LinkPorts: 1,
				NewSwitch: func() sim.Switch { return crossbar.New(lowRadix) },
				Warmup:    o.Warmup, Measure: o.Measure, Seed: o.Seed,
			},
			ghz:   lowPhys.FreqGHz,
			radix: lowRadix,
		},
	}

	type out struct {
		low noc.Result
		sat noc.Result
	}
	results := make([]out, len(tops))
	o.sweep(len(tops), func(i int) {
		cfg := tops[i].cfg
		cfg.Seed = o.seedFor("kilocore", i, 0)
		n, err := noc.New(cfg)
		if err != nil {
			panic(err)
		}
		// Cancellation aborts mid-run with a zero Result; the partial
		// table is discarded by the caller's post-run ctx check.
		low, _ := n.RunCtx(o.Ctx, 0.01)
		cfg.Seed = o.seedFor("kilocore", i, 1)
		n2, err := noc.New(cfg)
		if err != nil {
			panic(err)
		}
		sat, _ := n2.RunCtx(o.Ctx, 1.0)
		results[i] = out{low: low, sat: sat}
	})

	energies := []float64{hirisePhys.EnergyPJ, fbPhys.EnergyPJ, lowPhys.EnergyPJ}
	rows := make([][]string, len(tops))
	for i, tp := range tops {
		r := results[i]
		// Switch-traversal energy per 4-flit packet: each hop moves 4
		// 128-bit transactions through one switch. Inter-node link wires
		// are not modeled, which favours the low-radix mesh (it has ~3x
		// the hops, each crossing a die-scale link).
		pktEnergy := r.low.AvgHops * 4 * energies[i]
		rows[i] = []string{
			tp.name,
			fmt.Sprintf("%d", tp.cfg.Cores()),
			f(tp.ghz, 2),
			f(r.low.AvgHops, 2),
			f(r.low.AvgLatency/tp.ghz, 2),
			f(pktEnergy, 0),
			f(r.sat.AcceptedPackets*tp.ghz, 1),
		}
	}
	return &Table{
		ID:     "kilocore",
		Title:  "Mesh-of-Hi-Rise composition for 768 cores (paper §VI-E, Fig 13)",
		Header: []string{"Topology", "Cores", "Node GHz", "Avg hops", "Latency@1% (ns)", "E/pkt switch-only (pJ)", "Sat tput (pkt/ns)"},
		Rows:   rows,
		Notes: []string{
			"concentrated high-radix nodes cut hops and switch energy; the paper's §VI-E power comparison",
			"the flattened butterfly matches Hi-Rise's hop count but pays 2D-Swizzle energy and clock at radix 60 — the paper quotes ~58% power saving and ~13% system speedup for Hi-Rise over it",
			"the flat mesh's higher saturation reflects its 16x node count and the optimistic low-radix clock; link wire energy/latency is unmodeled and would penalize its ~3x hop count further",
			"uniform random traffic over all cores; store-and-forward per hop",
		},
	}
}
