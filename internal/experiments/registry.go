package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact (or ablation) at the given
// fidelity.
type Runner func(Opts) *Table

// registry maps experiment IDs to runners. Table VI registers itself from
// tablevi.go because it depends on the many-core model.
var registry = map[string]Runner{
	"table1":         TableI,
	"table4":         TableIV,
	"table5":         TableV,
	"fig9a":          Fig9a,
	"fig9b":          Fig9b,
	"fig9c":          Fig9c,
	"fig10":          Fig10,
	"fig11a":         Fig11a,
	"fig11b":         Fig11b,
	"fig11c":         Fig11c,
	"fig12":          Fig12,
	"corner":         CornerCase,
	"discussion":     Discussion,
	"ablate-classes": AblateClasses,
	"ablate-alloc":   AblateAlloc,
	"ablate-vcs":     AblateVCs,
	"ablate-bursty":  AblateBursty,
	"ablate-islip":   AblateISLIP,
	"ablate-qos":     AblateQoS,
	"locality":       Locality,
}

// order fixes the presentation sequence for "all".
var order = []string{
	"table1", "table4", "table4-ci", "table5", "table6", "table6-detail", "table6-addr",
	"fig9a", "fig9b", "fig9c", "fig10", "fig11a", "fig11b", "fig11c", "fig12",
	"corner", "discussion", "kilocore", "locality", "breakdown", "cache-mpki", "degradation",
	"ablate-classes", "ablate-alloc", "ablate-vcs", "ablate-bursty", "ablate-islip", "ablate-qos", "ablate-pktlen",
	"sched-shootout", "fabric", "fabric-degradation",
}

// register adds a runner from another file in this package.
func register(id string, r Runner) { registry[id] = r }

// Get returns the runner for id.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r, nil
}

// IDs lists all experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := registry[id]; ok {
			ids = append(ids, id)
			seen[id] = true
		}
	}
	rest := make([]string, 0)
	for id := range registry {
		if !seen[id] {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	return append(ids, rest...)
}
