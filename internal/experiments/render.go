package experiments

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"strconv"

	"github.com/reprolab/hirise/internal/plot"
)

// Series extracts plottable line series from a figure-style table:
// column 0 is the x axis, every other column one series. Cells that do
// not parse as numbers (e.g. "sat") become NaN gaps. It reports false
// when the table is not figure-shaped (non-numeric x, or fewer than two
// rows).
func (t *Table) Series() ([]plot.Series, bool) {
	if len(t.Rows) < 2 || len(t.Header) < 2 {
		return nil, false
	}
	x := make([]float64, len(t.Rows))
	for i, row := range t.Rows {
		v, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, false
		}
		x[i] = v
	}
	series := make([]plot.Series, 0, len(t.Header)-1)
	for c := 1; c < len(t.Header); c++ {
		s := plot.Series{Name: t.Header[c], X: x, Y: make([]float64, len(t.Rows))}
		numeric := 0
		for i, row := range t.Rows {
			if c >= len(row) {
				s.Y[i] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				s.Y[i] = math.NaN()
				continue
			}
			s.Y[i] = v
			numeric++
		}
		if numeric >= 2 {
			series = append(series, s)
		}
	}
	return series, len(series) > 0
}

// RenderPlot draws the table's series as an ASCII chart, or reports
// false if the table is not figure-shaped.
func (t *Table) RenderPlot(w io.Writer, width, height int) (bool, error) {
	series, ok := t.Series()
	if !ok {
		return false, nil
	}
	return true, plot.Render(w, t.Title, series, width, height)
}

// WriteCSV writes the table as CSV: a header row then data rows. Notes
// are not emitted (CSV is for plotting pipelines).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON shape of a Table.
type tableJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler with a stable field layout.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var v tableJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*t = Table{ID: v.ID, Title: v.Title, Header: v.Header, Rows: v.Rows, Notes: v.Notes}
	return nil
}

// WriteJSON writes the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
