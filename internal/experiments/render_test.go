package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		ID: "t", Title: "sample",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "x,y"}, {"2", "z"}},
		Notes:  []string{"n1"},
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "A,B\n1,\"x,y\"\n2,z\n"
	if got != want {
		t.Fatalf("csv %q, want %q", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := sampleTable()
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != src.ID || back.Title != src.Title || len(back.Rows) != 2 ||
		back.Rows[0][1] != "x,y" || back.Notes[0] != "n1" {
		t.Fatalf("round trip mangled table: %+v", back)
	}
}

func TestWriteJSONIsValid(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal([]byte(b.String()), &v); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if v["id"] != "t" {
		t.Fatalf("id field %v", v["id"])
	}
}
