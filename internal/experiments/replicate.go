package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

func init() { register("table4-ci", TableIVReplicated) }

// replicates is the seed count for the confidence-interval run.
const replicates = 5

// TableIVReplicated re-measures Table IV's throughput column over
// several independent seeds and reports mean ± standard error,
// separating the paper's claims from simulation noise: the
// channel-multiplicity ordering and the Hi-Rise-over-2D gap must hold
// far outside the error bars.
func TableIVReplicated(o Opts) *Table {
	o = o.norm()
	designs := []Design{
		design2D(64),
		designFolded(64, 4),
		designHiRise("3D 4-Channel", 4, topo.L2LLRG),
		designHiRise("3D 2-Channel", 2, topo.L2LLRG),
		designHiRise("3D 1-Channel", 1, topo.L2LLRG),
	}
	// One sweep task per design; its replicates run through the lockstep
	// batch engine, which shares the cycle loop and all scratch across
	// the 5 seeds. Each replicate's stream is still derived from its
	// (design, replicate) coordinates and its result is byte-identical
	// to a standalone sim.Run, so the same base seed reproduces
	// identical means at any worker count and any batch width (pinned by
	// the engine's differential tests and this experiment's golden).
	vals := make([][]float64, len(designs))
	o.sweep(len(designs), func(di int) {
		d := designs[di]
		seeds := make([]uint64, replicates)
		for rep := range seeds {
			seeds[rep] = o.seedFor("table4-ci", di, rep)
		}
		res, err := sim.BatchRun(sim.Config{
			Ctx:     o.Ctx,
			Traffic: traffic.Uniform{Radix: d.Cfg.Radix},
			Load:    1.0,
			Warmup:  o.Warmup, Measure: o.Measure,
			ConvergeStop: o.ConvergeStop,
		}, d.NewSwitch, nil, seeds)
		if err != nil {
			panic(err)
		}
		vals[di] = make([]float64, replicates)
		for rep, r := range res {
			vals[di][rep] = phys.Tbps(r.AcceptedFlits, d.Cost(o.Tech), o.Tech)
		}
	})

	rows := make([][]string, len(designs))
	for di, d := range designs {
		var s stats.Summary
		for _, v := range vals[di] {
			s.Add(v)
		}
		rows[di] = []string{
			d.Name,
			f(s.Mean(), 2),
			fmt.Sprintf("±%.3f", s.StdErr()),
			f(s.Min(), 2),
			f(s.Max(), 2),
		}
	}
	return &Table{
		ID:     "table4-ci",
		Title:  fmt.Sprintf("Table IV throughput over %d seeds: mean ± standard error (Tbps)", replicates),
		Header: []string{"Design", "Mean Tbps", "StdErr", "Min", "Max"},
		Rows:   rows,
		Notes:  []string{"the channel-multiplicity ordering and the Hi-Rise gap hold far outside the error bars"},
	}
}
