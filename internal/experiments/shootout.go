package experiments

import (
	"math"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

func init() { register("sched-shootout", SchedShootout) }

// shootoutRadix is the port count of every contender; it matches the
// paper's 64-radix headline geometry so the Hi-Rise analog row is the
// same switch as ablate-islip.
const shootoutRadix = 64

// shootoutLoads is the offered-load sweep; the last point is the
// saturation point whose fairness columns the table reports.
var shootoutLoads = []float64{0.8, 0.95, 1.0}

// shootoutVariant is one scheduler contender. A nil newSched marks the
// Hi-Rise ISLIP1 analog, which runs the hierarchical switch through
// sim.Run instead of the VOQ crossbar through sim.RunVOQ.
type shootoutVariant struct {
	name     string
	speedup  int
	newSched func() sched.Scheduler
}

func shootoutVariants() []shootoutVariant {
	n := shootoutRadix
	return []shootoutVariant{
		{"iSLIP-1", 1, func() sched.Scheduler { return sched.NewISLIP(n, 1) }},
		{"iSLIP-2", 1, func() sched.Scheduler { return sched.NewISLIP(n, 2) }},
		{"iSLIP-4", 1, func() sched.Scheduler { return sched.NewISLIP(n, 4) }},
		{"wavefront", 1, func() sched.Scheduler { return sched.NewWavefront(n) }},
		{"iSLIP-1", 2, func() sched.Scheduler { return sched.NewISLIP(n, 1) }},
		{"analog", 1, nil},
	}
}

// shootoutPattern is one traffic pattern with the set of inputs that
// actually carry offered load (utilization normalizes by it, and the
// max/min rate ratio is taken over it). make returns a fresh traffic
// instance per simulation point: Bursty carries per-input on/off state.
type shootoutPattern struct {
	name   string
	active []int
	make   func() sim.Traffic
}

func shootoutPatterns() []shootoutPattern {
	n := shootoutRadix
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	adv := []int{3, 7, 11, 15, 20}
	return []shootoutPattern{
		{"uniform", all, func() sim.Traffic { return traffic.Uniform{Radix: n} }},
		{"hotspot", all, func() sim.Traffic { return traffic.Hotspot{Target: n - 1} }},
		{"bursty", all, func() sim.Traffic { return traffic.NewBursty(n, 8) }},
		{"adversarial", adv, func() sim.Traffic { return traffic.Adversarial() }},
	}
}

// SchedShootout races the input-queued scheduler zoo (internal/sched on
// the VOQ crossbar, sim.RunVOQ) against each other and against the
// Hi-Rise single-iteration iSLIP analog (topo.ISLIP1 on the
// hierarchical switch) across traffic patterns, iteration counts,
// speedup, and offered load.
//
// Each row reports per-load utilization — accepted cells per cycle
// normalized by the load offered across the pattern's active inputs —
// plus fairness at the saturation point: Jain's index over per-input
// wins from the obs fairness audit, the max/min ratio of per-input
// delivered rates over the active inputs, and the longest denial run.
// The table reproduces two classic results side by side: iSLIP
// desynchronization lifts uniform saturated throughput to ~100% within
// a few iterations, while the hierarchical ISLIP1 analog retains the
// paper's §VII adversarial unfairness (input 20 dwarfing inputs
// 3/7/11/15) that the flat VOQ schedulers do not exhibit.
func SchedShootout(o Opts) *Table {
	o = o.norm()
	variants := shootoutVariants()
	patterns := shootoutPatterns()
	nl := len(shootoutLoads)

	type cell struct {
		util   float64
		jain   float64
		maxMin float64
		starve int64
	}
	cells := make([][][]cell, len(patterns))
	for pi := range cells {
		cells[pi] = make([][]cell, len(variants))
		for vi := range cells[pi] {
			cells[pi][vi] = make([]cell, nl)
		}
	}

	o.sweep(len(patterns)*len(variants)*nl, func(k int) {
		li := k % nl
		vi := (k / nl) % len(variants)
		pi := k / (nl * len(variants))
		p, v, load := patterns[pi], variants[vi], shootoutLoads[li]

		audit := obs.NewFairnessAudit(shootoutRadix, 1)
		ob := &obs.Observer{Fairness: audit}
		seed := o.seedFor("sched-shootout", k, 0)
		var res sim.Result
		var err error
		if v.newSched == nil {
			// The Hi-Rise ISLIP1 analog: same switch as ablate-islip, with
			// single-cell packets so its flit and cell rates line up with
			// the cell-based VOQ rows (its utilization still pays the
			// hierarchical model's per-packet arbitration cycle).
			d := designHiRise("analog", 1, topo.ISLIP1)
			res, err = sim.Run(sim.Config{
				Ctx: o.Ctx, Switch: d.NewSwitch(), Traffic: p.make(),
				Load: load, PacketFlits: 1,
				Warmup: o.Warmup, Measure: o.Measure, Seed: seed, Obs: ob,
				ConvergeStop: o.ConvergeStop,
			})
		} else {
			res, err = sim.RunVOQ(sim.VOQConfig{
				Ctx: o.Ctx, Radix: shootoutRadix, Sched: v.newSched(),
				Traffic: p.make(), Load: load, Speedup: v.speedup,
				Warmup: o.Warmup, Measure: o.Measure, Seed: seed, Obs: ob,
				ConvergeStop: o.ConvergeStop,
			})
		}
		if err != nil {
			panic(err)
		}

		c := cell{util: res.AcceptedPackets / (load * float64(len(p.active)))}
		rep := audit.Report()
		c.jain = rep.JainIndex
		c.starve = rep.MaxStarvation
		lo, hi := math.Inf(1), 0.0
		for _, in := range p.active {
			r := res.PerInputPackets[in]
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		if lo > 0 {
			c.maxMin = hi / lo
		} else {
			c.maxMin = math.Inf(1)
		}
		cells[pi][vi][li] = c
	})

	rows := make([][]string, 0, len(patterns)*len(variants))
	for pi, p := range patterns {
		for vi, v := range variants {
			sat := cells[pi][vi][nl-1]
			ratio := "inf"
			if !math.IsInf(sat.maxMin, 1) {
				ratio = f(sat.maxMin, 2)
			}
			row := []string{p.name, v.name, f(float64(v.speedup), 0)}
			for li := range shootoutLoads {
				row = append(row, f(cells[pi][vi][li].util, 3))
			}
			row = append(row, f(sat.jain, 3), ratio, f(float64(sat.starve), 0))
			rows = append(rows, row)
		}
	}
	header := []string{"Traffic", "Sched", "S"}
	for _, l := range shootoutLoads {
		header = append(header, "util@"+f(l, 2))
	}
	header = append(header, "Jain@sat", "max/min@sat", "starve@sat")
	return &Table{
		ID:     "sched-shootout",
		Title:  "Input-queued scheduler zoo on the 64-port VOQ crossbar vs the Hi-Rise iSLIP-1 analog",
		Header: header,
		Rows:   rows,
		Notes: []string{
			"util = accepted cells/cycle over load*active inputs; hotspot and adversarial oversubscribe one output, so their saturated util is capacity-, not scheduler-, limited",
			"fairness columns at the saturation point (load 1.00): Jain over audited per-input wins, max/min over active per-input delivered rates, longest denial run",
			"analog = topo.ISLIP1 on the hierarchical Hi-Rise switch (c=1, 1-flit packets) via sim.Run; all other rows are internal/sched on sim.RunVOQ",
			"wavefront is positionally unfair on sparse fixed patterns: a contested output goes to the first active diagonal after the rotating start, so win shares follow the gaps between the contenders' diagonals (adversarial: 47:5:4:4:4 across inputs 20,3,7,11,15)",
			"MWM is excluded: O(n^3) per cycle makes it the oracle for tests (internal/sched fuzzers), not a campaign contender",
		},
	}
}
