package experiments

import (
	"testing"
)

// shootoutRow finds the row for (traffic, sched, speedup).
func shootoutRow(t *testing.T, tb *Table, pattern, sched, s string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == pattern && row[1] == sched && row[2] == s {
			return row
		}
	}
	t.Fatalf("no row (%s, %s, S=%s) in %v", pattern, sched, s, tb.Rows)
	return nil
}

// TestSchedShootoutPins pins the campaign's two headline results: iSLIP
// desynchronization gives (near-)100% throughput under uniform i.i.d.
// saturation on the VOQ crossbar, while the Hi-Rise ISLIP1 analog keeps
// the paper's §VII adversarial unfairness that the flat VOQ schedulers
// do not exhibit.
func TestSchedShootoutPins(t *testing.T) {
	tb := SchedShootout(QuickOpts())
	if len(tb.Rows) != 4*6 {
		t.Fatalf("rows %d, want 24", len(tb.Rows))
	}

	// Multi-iteration iSLIP sustains >=95% of the offered load at
	// uniform saturation (util@1.00 is column 5).
	for _, sched := range []string{"iSLIP-2", "iSLIP-4"} {
		row := shootoutRow(t, tb, "uniform", sched, "1")
		if util := atof(t, row[5]); util < 0.95 {
			t.Errorf("%s uniform saturated util %.3f, want >= 0.95", sched, util)
		}
	}

	// The VOQ iSLIP rows are fair under the adversarial pattern: the
	// rotating grant pointer at the hot output serves the five active
	// inputs evenly.
	voq := shootoutRow(t, tb, "adversarial", "iSLIP-2", "1")
	if jain := atof(t, voq[6]); jain < 0.99 {
		t.Errorf("VOQ iSLIP-2 adversarial Jain %.3f, want >= 0.99", jain)
	}
	if ratio := atof(t, voq[7]); ratio > 1.2 {
		t.Errorf("VOQ iSLIP-2 adversarial max/min %.2f, want <= 1.2", ratio)
	}

	// The hierarchical ISLIP1 analog retains the §VII structural bias:
	// input 20 (alone on its layer's channel) dwarfs inputs 3/7/11/15.
	analog := shootoutRow(t, tb, "adversarial", "analog", "1")
	if ratio := atof(t, analog[7]); ratio < 2.5 {
		t.Errorf("analog adversarial max/min %.2f, want >= 2.5 (§VII unfairness)", ratio)
	}
	if jVOQ, jAnalog := atof(t, voq[6]), atof(t, analog[6]); jAnalog >= jVOQ {
		t.Errorf("analog Jain %.3f should trail VOQ iSLIP-2 Jain %.3f", jAnalog, jVOQ)
	}

	// Speedup 2 drains the bursty backlog at least as well as S=1.
	s1 := atof(t, shootoutRow(t, tb, "bursty", "iSLIP-1", "1")[5])
	s2 := atof(t, shootoutRow(t, tb, "bursty", "iSLIP-1", "2")[5])
	if s2 < s1-0.02 {
		t.Errorf("bursty iSLIP-1 util: S=2 %.3f below S=1 %.3f", s2, s1)
	}
}

// TestSchedShootoutWorkerInvariance pins the determinism contract: the
// rendered table is byte-identical at any -parallel worker count.
func TestSchedShootoutWorkerInvariance(t *testing.T) {
	o := QuickOpts()
	o.Warmup, o.Measure = 500, 2000
	serial, parallel := o, o
	serial.Workers = 1
	parallel.Workers = 4
	a, b := SchedShootout(serial).String(), SchedShootout(parallel).String()
	if a != b {
		t.Fatalf("worker-dependent table:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", a, b)
	}
}
