package experiments

import (
	"fmt"

	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// costRow measures one design's full table row: physical cost from phys
// plus uniform-random saturation throughput from the simulator. seed is
// the task's derived PRNG seed (see Opts.seedFor).
func costRow(d Design, o Opts, seed uint64) []string {
	cost := d.Cost(o.Tech)
	flits, err := sim.SaturationThroughput(sim.Config{
		Ctx:     o.Ctx,
		Switch:  d.NewSwitch(),
		Traffic: traffic.Uniform{Radix: d.Cfg.Radix},
		Warmup:  o.Warmup, Measure: o.Measure, Seed: seed,
		ConvergeStop: o.ConvergeStop,
	})
	if err != nil {
		panic(err)
	}
	return []string{
		d.Name,
		d.ConfigString(),
		f(cost.AreaMM2, 3),
		f(cost.FreqGHz, 2),
		f(cost.EnergyPJ, 0),
		f(phys.Tbps(flits, cost, o.Tech), 2),
		fmt.Sprintf("%d", cost.TSVs),
	}
}

var costHeader = []string{"Design", "Configuration", "Area(mm2)", "Freq(GHz)", "E/trans(pJ)", "Tput(Tbps)", "#TSVs"}

// TableI reproduces paper Table I: implementation cost of the 2D versus
// the 3D folded switch at radix 64 (4 layers), under uniform random
// traffic.
func TableI(o Opts) *Table {
	o = o.norm()
	designs := []Design{design2D(64), designFolded(64, 4)}
	rows := make([][]string, len(designs))
	o.sweep(len(designs), func(i int) { rows[i] = costRow(designs[i], o, o.seedFor("table1", i, 0)) })
	return &Table{
		ID:     "table1",
		Title:  "Implementation cost of 2D versus 3D folded switch (64-radix, 4 layers)",
		Header: costHeader,
		Rows:   rows,
		Notes: []string{
			"paper: 2D 0.672mm2/1.69GHz/71pJ/9.24Tbps/0, folded 0.705/1.58/73/8.86/8192",
			"throughput = simulated UR saturation x modeled frequency x 128b",
		},
	}
}

// TableIV reproduces paper Table IV: implementation cost of the 2D,
// folded, and Hi-Rise 1/2/4-channel switches (L-2-L LRG arbitration).
func TableIV(o Opts) *Table {
	o = o.norm()
	designs := []Design{
		design2D(64),
		designFolded(64, 4),
		designHiRise("3D 4-Channel", 4, topo.L2LLRG),
		designHiRise("3D 2-Channel", 2, topo.L2LLRG),
		designHiRise("3D 1-Channel", 1, topo.L2LLRG),
	}
	rows := make([][]string, len(designs))
	o.sweep(len(designs), func(i int) { rows[i] = costRow(designs[i], o, o.seedFor("table4", i, 0)) })
	return &Table{
		ID:     "table4",
		Title:  "Implementation cost of switch configurations (64-radix; 3D switches have 4 layers)",
		Header: costHeader,
		Rows:   rows,
		Notes: []string{
			"paper Tbps: 2D 9.24, folded 8.86, 4-ch 10.97, 2-ch 7.65, 1-ch 4.27",
			"absolute utilization differs from the authors' simulator; ratios are the claim",
		},
	}
}

// TableV reproduces paper Table V: arbitration variants of the 4-channel
// 4-layer switch. WLRG appears with simulated throughput but is flagged
// infeasible, as the paper's table footnote does.
func TableV(o Opts) *Table {
	o = o.norm()
	designs := []Design{
		design2D(64),
		designHiRise("3D L-2-L LRG", 4, topo.L2LLRG),
		designHiRise("3D CLRG", 4, topo.CLRG),
	}
	rows := make([][]string, len(designs))
	o.sweep(len(designs), func(i int) { rows[i] = costRow(designs[i], o, o.seedFor("table5", i, 0)) })
	return &Table{
		ID:     "table5",
		Title:  "Implementation cost of switch arbitration variants (64-radix, 4-channel, 4 layers)",
		Header: costHeader,
		Rows:   rows,
		Notes: []string{
			"paper: L-2-L LRG 2.24GHz/42pJ/10.97Tbps; CLRG 2.2GHz/44pJ/10.65Tbps; same area/TSVs",
			"WLRG not shown as its implementation is infeasible (paper note)",
		},
	}
}

// CornerCase quantifies the paper's §VI-B pathological corner: purely
// inter-layer traffic where the inputs sharing an L2LC target distinct
// outputs, limiting Hi-Rise to ~1/4 of the flat 2D throughput (in
// flits/cycle; frequency does not rescue a structural bottleneck here
// because the comparison is about fabric capacity).
func CornerCase(o Opts) *Table {
	o = o.norm()
	hr := designHiRise("Hi-Rise 4-ch CLRG", 4, topo.CLRG)
	d2 := design2D(64)
	pattern := traffic.InterLayerWorstCase{Cfg: hr.Cfg}

	var flits [2]float64
	designs := []Design{d2, hr}
	o.sweep(2, func(i int) {
		v, err := sim.SaturationThroughput(sim.Config{
			Ctx:     o.Ctx,
			Switch:  designs[i].NewSwitch(),
			Traffic: pattern,
			Warmup:  o.Warmup, Measure: o.Measure, Seed: o.seedFor("corner", i, 0),
			ConvergeStop: o.ConvergeStop,
		})
		if err != nil {
			panic(err)
		}
		flits[i] = v
	})
	return &Table{
		ID:     "corner",
		Title:  "Pathological inter-layer-only traffic (paper §VI-B): worst-case L2LC bottleneck",
		Header: []string{"Design", "Accepted(flits/cycle)", "Fraction of 2D"},
		Rows: [][]string{
			{d2.Name, f(flits[0], 2), "1.00"},
			{hr.Name, f(flits[1], 2), f(flits[1]/flits[0], 2)},
		},
		Notes: []string{"paper: throughput can be limited to 1/4th of the flat 2D switch"},
	}
}

// Discussion reproduces the §VI-E topology comparison. The paper quotes
// prior Swizzle-Switch results: the 2D Swizzle-Switch consumes 33% less
// power than a mesh and 28% less than a flattened butterfly; Hi-Rise
// improves a further ~38% over the 2D switch. We model mesh and flattened
// butterfly power by inverting those published ratios from our measured
// 2D energy, then derive the Hi-Rise savings.
func Discussion(o Opts) *Table {
	o = o.norm()
	tech := o.Tech
	e2d := phys.Flat2D(64, tech).EnergyPJ
	ehr := phys.HiRise(designHiRise("", 4, topo.CLRG).Cfg, tech).EnergyPJ
	mesh := e2d / (1 - 0.33)
	fbfly := e2d / (1 - 0.28)
	return &Table{
		ID:     "discussion",
		Title:  "Topology power comparison (paper §VI-E; mesh/flattened-butterfly derived from published ratios)",
		Header: []string{"Fabric", "E/trans(pJ)", "vs Hi-Rise"},
		Rows: [][]string{
			{"Mesh (derived)", f(mesh, 0), f(1-ehr/mesh, 2)},
			{"Flattened butterfly (derived)", f(fbfly, 0), f(1-ehr/fbfly, 2)},
			{"2D Swizzle-Switch", f(e2d, 0), f(1-ehr/e2d, 2)},
			{"Hi-Rise 4-ch CLRG", f(ehr, 0), "0.00"},
		},
		Notes: []string{
			"paper: ~58% power saving over flattened butterfly, ~38% over 2D Swizzle-Switch",
			"mesh and flattened butterfly are not re-simulated; rows derive from the paper's quoted ratios",
		},
	}
}
