package experiments

import (
	"github.com/reprolab/hirise/internal/manycore"
	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/trace"
)

func init() {
	register("table6", TableVI)
	register("table6-addr", TableVIAddr)
}

// TableVI reproduces paper Table VI: normalized system speedup of a
// 64-core processor using a single Hi-Rise 4-channel CLRG switch over the
// same system with a 2D Swizzle-Switch, across eight multi-programmed
// workload mixes. The two systems are identical except for the switch —
// including its clock, which the physical model supplies.
func TableVI(o Opts) *Table {
	o = o.norm()
	mixes := trace.TableVIMixes()
	d2Cost := phys.Flat2D(64, o.Tech)
	hrDesign := designHiRise("Hi-Rise", 4, topo.CLRG)
	hrCost := hrDesign.Cost(o.Tech)

	// Many-core windows in core cycles; scale from the switch-cycle opts.
	warmup, measure := o.Warmup*2, o.Measure*2

	type out struct {
		speedup float64
		lat2d   float64
		latHR   float64
	}
	results := make([]out, len(mixes))
	o.sweep(len(mixes), func(i int) {
		mix := mixes[i]
		benches, err := mix.Assign(64, o.seedFor("table6", i, 0))
		if err != nil {
			panic(err)
		}
		// Both switches run under the same derived seed so the speedup
		// comparison stays paired.
		run := func(sw sim.Switch, ghz float64) manycore.Result {
			sys, err := manycore.New(manycore.Config{
				SwitchGHz: ghz,
				Warmup:    warmup, Measure: measure,
				Seed: o.seedFor("table6", i, 1),
			}, sw, benches)
			if err != nil {
				panic(err)
			}
			return sys.Run()
		}
		r2 := run(design2D(64).NewSwitch(), d2Cost.FreqGHz)
		rh := run(hrDesign.NewSwitch(), hrCost.FreqGHz)
		results[i] = out{speedup: rh.SystemIPC / r2.SystemIPC, lat2d: r2.AvgNetLatency, latHR: rh.AvgNetLatency}
	})

	rows := make([][]string, len(mixes))
	sum := 0.0
	for i, mix := range mixes {
		rows[i] = []string{
			mix.Name,
			f(mix.AvgMPKI(), 1),
			f(results[i].speedup, 2),
			f(mix.PaperSpeedup, 2),
		}
		sum += results[i].speedup
	}
	rows = append(rows, []string{"GeoMean-ish avg", "", f(sum/float64(len(mixes)), 3), "1.08"})
	return &Table{
		ID:     "table6",
		Title:  "64-core application workloads: Hi-Rise (4-ch CLRG) speedup over 2D Swizzle-Switch",
		Header: []string{"Mix", "avg MPKI", "Speedup (measured)", "Speedup (paper)"},
		Rows:   rows,
		Notes: []string{
			"synthetic MPKI-calibrated traces replace the paper's Pin traces (see DESIGN.md)",
			"paper: 8% average speedup, up to 15-16% for the highest-MPKI mixes",
		},
	}
}

// TableVIAddr cross-validates Table VI in address-driven mode: instead
// of MPKI coin flips, every core runs a real Table III L1 (tags, LRU,
// MSHRs) over a calibrated synthetic address stream, and the L2 banks
// keep real tags. Misses — and therefore network load — emerge from
// cache state. The table reports the measured L1 MPKI alongside the
// speedup so the two modes can be compared.
func TableVIAddr(o Opts) *Table {
	o = o.norm()
	mixes := trace.TableVIMixes()
	d2Cost := phys.Flat2D(64, o.Tech)
	hrDesign := designHiRise("Hi-Rise", 4, topo.CLRG)
	hrCost := hrDesign.Cost(o.Tech)
	warmup, measure := o.Warmup*2, o.Measure*2

	type out struct {
		speedup float64
		mpki    float64
	}
	results := make([]out, len(mixes))
	o.sweep(len(mixes), func(i int) {
		mix := mixes[i]
		benches, err := mix.Assign(64, o.seedFor("table6-addr", i, 0))
		if err != nil {
			panic(err)
		}
		run := func(sw sim.Switch, ghz float64) manycore.Result {
			sys, err := manycore.New(manycore.Config{
				SwitchGHz:   ghz,
				AddressMode: true,
				Warmup:      warmup, Measure: measure,
				Seed: o.seedFor("table6-addr", i, 1),
			}, sw, benches)
			if err != nil {
				panic(err)
			}
			return sys.Run()
		}
		r2 := run(design2D(64).NewSwitch(), d2Cost.FreqGHz)
		rh := run(hrDesign.NewSwitch(), hrCost.FreqGHz)
		results[i] = out{speedup: rh.SystemIPC / r2.SystemIPC, mpki: rh.AvgL1MPKI}
	})

	rows := make([][]string, len(mixes))
	sum := 0.0
	for i, mix := range mixes {
		rows[i] = []string{
			mix.Name,
			f(mix.AvgMPKI(), 1),
			f(results[i].mpki, 1),
			f(results[i].speedup, 2),
			f(mix.PaperSpeedup, 2),
		}
		sum += results[i].speedup
	}
	rows = append(rows, []string{"GeoMean-ish avg", "", "", f(sum/float64(len(mixes)), 3), "1.08"})
	return &Table{
		ID:     "table6-addr",
		Title:  "Table VI cross-validated in address-driven mode (real L1/L2 tags, calibrated address streams)",
		Header: []string{"Mix", "Catalog MPKI", "Measured L1 MPKI", "Speedup (measured)", "Speedup (paper)"},
		Rows:   rows,
		Notes: []string{
			"misses emerge from real cache state instead of MPKI coin flips",
			"agreement with the probabilistic-mode table validates the workload substitution end to end",
		},
	}
}
