package experiments

import (
	"sort"

	"github.com/reprolab/hirise/internal/manycore"
	"github.com/reprolab/hirise/internal/phys"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/trace"
)

func init() { register("table6-detail", TableVIDetail) }

// TableVIDetail drills into Table VI's heaviest workload (Mix8):
// per-application IPC under the 2D switch and under Hi-Rise, showing
// that the speedup concentrates in the network-bound applications — the
// mechanism behind the paper's observation that "the 3D switch provides
// better speedup for workloads with higher cache miss rates".
func TableVIDetail(o Opts) *Table {
	o = o.norm()
	mix := trace.TableVIMixes()[7] // Mix8
	benches, err := mix.Assign(64, o.Seed)
	if err != nil {
		panic(err)
	}
	d2Cost := phys.Flat2D(64, o.Tech)
	hrDesign := designHiRise("Hi-Rise", 4, topo.CLRG)
	hrCost := hrDesign.Cost(o.Tech)

	var results [2]manycore.Result
	ghz := []float64{d2Cost.FreqGHz, hrCost.FreqGHz}
	sws := []sim.Switch{design2D(64).NewSwitch(), hrDesign.NewSwitch()}
	// The two switches share one derived seed: the comparison is paired.
	seed := o.seedFor("table6-detail", 0, 0)
	o.sweep(2, func(i int) {
		sys, err := manycore.New(manycore.Config{
			SwitchGHz: ghz[i],
			Warmup:    o.Warmup * 2, Measure: o.Measure * 2,
			Seed: seed,
		}, sws[i], benches)
		if err != nil {
			panic(err)
		}
		results[i] = sys.Run()
	})

	// Group per-core IPC by application.
	type agg struct {
		mpki   float64
		d2, hr stats.Summary
	}
	groups := map[string]*agg{}
	for core, b := range benches {
		g, ok := groups[b.Name]
		if !ok {
			g = &agg{mpki: b.NetMPKI}
			groups[b.Name] = g
		}
		g.d2.Add(results[0].PerCoreIPC[core])
		g.hr.Add(results[1].PerCoreIPC[core])
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return groups[names[i]].mpki < groups[names[j]].mpki })

	rows := make([][]string, 0, len(names)+1)
	for _, n := range names {
		g := groups[n]
		rows = append(rows, []string{
			n,
			f(g.mpki, 1),
			f(g.d2.Mean(), 2),
			f(g.hr.Mean(), 2),
			f(g.hr.Mean()/g.d2.Mean(), 2),
		})
	}
	rows = append(rows, []string{
		"system", f(mix.AvgMPKI(), 1),
		f(results[0].SystemIPC, 1), f(results[1].SystemIPC, 1),
		f(results[1].SystemIPC/results[0].SystemIPC, 2),
	})
	return &Table{
		ID:     "table6-detail",
		Title:  "Mix8 per-application IPC: 2D Swizzle-Switch vs Hi-Rise 4-channel CLRG",
		Header: []string{"Application", "MPKI", "IPC (2D)", "IPC (Hi-Rise)", "Speedup"},
		Rows:   rows,
		Notes: []string{
			"speedup concentrates in the network-bound applications (paper §VI-D)",
		},
	}
}
