package fabric

import (
	"testing"

	"github.com/reprolab/hirise/internal/traffic"
)

// TestRunSteadyStateAllocs pins the fabric's hot-loop property: with
// Obs disabled, every allocation happens during setup (routers, VC
// rings, source queues, histogram, candidate scratch), so simulating
// four times as many cycles must allocate no more than the baseline.
// Run on the dragonfly with Valiant routing — the path that touches
// every mechanism: two-phase routes, class bumps, and lane rotation.
func TestRunSteadyStateAllocs(t *testing.T) {
	topo := Dragonfly{Groups: 5, GroupSize: 2, GlobalPorts: 2, Conc: 2, Lanes: 2}
	allocs := func(cycles int64) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(Config{
				Topo:    topo,
				Routing: Valiant,
				Traffic: traffic.Uniform{Radix: topo.Nodes() * topo.Conc},
				Load:    0.3, Warmup: 500, Measure: cycles, Seed: 7,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := allocs(2000), allocs(8000)
	// Both runs pay identical setup; a small slack absorbs
	// runtime-internal noise without masking a per-cycle leak.
	if long > short+2 {
		t.Errorf("6000 extra cycles allocated %.0f extra times (%.0f -> %.0f); hot loop no longer allocation-free",
			long-short, short, long)
	}
}

// TestRunSetupAllocBudget pins the constructor side: network setup
// draws router state, VC rings, and source queues from a handful of
// network-wide slabs, so even the 72-router perf-suite dragonfly must
// stay within a fixed allocation budget per Run. The budget is ~5x
// below the pre-slab cost (one allocation per VC buffer alone put it
// past 5000); a regression back to per-object allocation trips this
// immediately.
func TestRunSetupAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size network construction")
	}
	d := Dragonfly{Groups: 9, GroupSize: 8, GlobalPorts: 1, Conc: 2, Lanes: 1}
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := Run(Config{
			Topo: d, Routing: Minimal,
			Traffic: traffic.Uniform{Radix: d.Nodes() * d.Conc},
			Load:    1.0, Warmup: 100, Measure: 200, Seed: 3,
		}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1000 {
		t.Errorf("72-router fabric run allocated %.0f times, budget 1000", allocs)
	}
}
