package fabric

import "fmt"

// checker is the fabric's self-checking invariant layer (Config.Check).
// It verifies online, at checkInterval cadence, that the credit
// bookkeeping and the VC-class discipline hold structurally, verifies
// every grant as it lands, and at end of run that every injected packet
// is accounted for. It observes the simulation without changing it; the
// campaigns and CLI keep it on for every shipped configuration.
//
// The checks, mapped to the deadlock argument in DESIGN.md §25:
//
//   - Grant sanity: a grant matches the request the fabric issued and
//     never lands on a failed lane or toward a failed router.
//   - Credit conservation: for every (input port, VC) the occupancy
//     plus outstanding reservations never exceeds the buffer bound, and
//     the reservation count equals exactly the in-flight transfers
//     targeting that slot.
//   - No VC-cycle occupancy: every buffered packet sits in a VC of the
//     band matching its class, and classes stay below the topology's
//     class count — so the class-banded channel order that makes the
//     wait-for graph acyclic is actually respected, never just assumed.
//   - Flit conservation (end of run): injected == delivered + in-flight
//     (source queues + VC buffers) + dead.
type checker struct {
	n *network
	// expect is scratch for recomputing reservation counts.
	expect []uint8
}

func newChecker(n *network) *checker {
	return &checker{n: n, expect: make([]uint8, n.radix*n.vcs)}
}

// checkGrant validates one grant as the switch hands it out.
func (c *checker) checkGrant(cycle int64, ni, in, out int) error {
	n := c.n
	nd := &n.nodes[ni]
	if in < 0 || in >= n.radix || nd.req[in] != out {
		return fmt.Errorf("fabric: checker: cycle %d router %d: grant in=%d out=%d does not match request %d",
			cycle, ni, in, out, nd.req[in])
	}
	if fs := n.cfg.Faults; fs != nil && out >= n.conc {
		if fs.LinkFailed(ni, out) {
			return fmt.Errorf("fabric: checker: cycle %d router %d: grant on failed link port %d", cycle, ni, out)
		}
		if nb, _ := n.topo.LinkDest(ni, out); fs.RouterFailed(nb) {
			return fmt.Errorf("fabric: checker: cycle %d router %d: grant toward failed router %d", cycle, ni, nb)
		}
	}
	return nil
}

// scan runs the periodic structural invariants over the whole fabric.
func (c *checker) scan(cycle int64) error {
	n := c.n
	classes := len(n.bandLo)
	for ni := range n.nodes {
		nd := &n.nodes[ni]
		for p := 0; p < n.radix; p++ {
			for v := 0; v < n.vcs; v++ {
				slot := p*n.vcs + v
				q := &nd.vcq[slot]
				if q.n+int(nd.resv[slot]) > n.cfg.VCBufPkts {
					return fmt.Errorf("fabric: checker: cycle %d router %d port %d vc %d: occupancy %d + reserved %d exceeds buffer %d",
						cycle, ni, p, v, q.n, nd.resv[slot], n.cfg.VCBufPkts)
				}
				for i := 0; i < q.n; i++ {
					j := q.head + i
					if j >= len(q.buf) {
						j -= len(q.buf)
					}
					cl := int(q.buf[j].class)
					if cl >= classes {
						return fmt.Errorf("fabric: checker: cycle %d router %d port %d vc %d: packet class %d out of range (%d classes)",
							cycle, ni, p, v, cl, classes)
					}
					if v < n.bandLo[cl] || v >= n.bandHi[cl] {
						return fmt.Errorf("fabric: checker: cycle %d router %d port %d: class-%d packet occupies vc %d outside band [%d,%d)",
							cycle, ni, p, cl, v, n.bandLo[cl], n.bandHi[cl])
					}
				}
			}
		}
	}
	// Credit conservation: recompute every router's reservation counts
	// from the in-flight transfers targeting it and compare.
	for ni := range n.nodes {
		down := &n.nodes[ni]
		for i := range c.expect {
			c.expect[i] = 0
		}
		for ui := range n.nodes {
			up := &n.nodes[ui]
			for in := range up.active {
				if !up.active[in] || up.connOut[in] < n.conc {
					continue
				}
				nb, inPort := n.topo.LinkDest(ui, up.connOut[in])
				if nb == ni {
					c.expect[inPort*n.vcs+up.downVC[in]]++
				}
			}
		}
		for slot := range c.expect {
			if c.expect[slot] != down.resv[slot] {
				return fmt.Errorf("fabric: checker: cycle %d router %d slot %d: reserved %d, in-flight transfers %d",
					cycle, ni, slot, down.resv[slot], c.expect[slot])
			}
		}
	}
	return nil
}

// conservation closes the books: every packet that entered a source
// queue over the whole run (warmup included) must be delivered, still
// buffered somewhere, or retired dead.
func (c *checker) conservation() error {
	n := c.n
	var inFlight int64
	for i := range n.src {
		inFlight += int64(n.src[i].q.n)
	}
	inFlight += n.inNet
	if n.injTotal != n.delivTotal+inFlight+n.deadTotal {
		return fmt.Errorf("fabric: checker: flit conservation violated: injected %d != delivered %d + in-flight %d + dead %d",
			n.injTotal, n.delivTotal, inFlight, n.deadTotal)
	}
	return nil
}
