package fabric

import (
	"testing"

	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/traffic"
)

// TestSaturationTerminates drives every topology × routing combination
// at offered load 1.0 under the adversarial patterns most likely to
// form buffer cycles — a bisection-crossing shift permutation, a random
// permutation, and single-target hotspot — with the invariant checker
// on. The run must terminate (the always-on watchdog turns a real
// deadlock into an error), keep making progress, and close the books:
// injected == delivered + in-flight + dead, with zero dead flows since
// there are no faults. This is the empirical half of the DESIGN.md §25
// deadlock-freedom argument; the VC-band occupancy scans inside the
// checker are the structural half.
func TestSaturationTerminates(t *testing.T) {
	for _, tc := range testTopos() {
		cores := tc.topo.Nodes() * tc.topo.Concentration()
		// Shift by roughly half the endpoints: every mesh packet crosses
		// the bisection; on the dragonfly any non-group-local shift sends
		// every packet over a global link.
		patterns := []struct {
			name string
			tr   sim.Traffic
		}{
			{"shift", traffic.Shift{N: cores, By: cores / 2}},
			{"permutation", traffic.NewRandomPermutation(cores, 99)},
			{"hotspot", traffic.Hotspot{Target: 0}},
		}
		for _, r := range []Routing{Minimal, Valiant} {
			for _, p := range patterns {
				t.Run(tc.name+"/"+r.String()+"/"+p.name, func(t *testing.T) {
					cfg := baseConfig(tc.topo)
					cfg.Routing = r
					cfg.Traffic = p.tr
					cfg.Load = 1.0
					cfg.Warmup = 500
					cfg.Measure = 3000
					cfg.VCBufPkts = 2 // deeper buffers widen the cycle window
					res, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if res.Delivered == 0 {
						t.Fatal("no progress under saturation")
					}
					if res.DeadFlows != 0 {
						t.Fatalf("DeadFlows = %d without faults", res.DeadFlows)
					}
				})
			}
		}
	}
}

// TestDragonflyGroupShift pins the dragonfly's hardest minimal-routing
// case — a shift by exactly one group puts every packet on a global
// link — under both routings at load 1.0.
func TestDragonflyGroupShift(t *testing.T) {
	topo := Dragonfly{Groups: 5, GroupSize: 2, GlobalPorts: 2, Conc: 2, Lanes: 1}
	cores := topo.Nodes() * topo.Conc
	for _, r := range []Routing{Minimal, Valiant} {
		t.Run(r.String(), func(t *testing.T) {
			cfg := baseConfig(topo)
			cfg.Routing = r
			cfg.Traffic = traffic.Shift{N: cores, By: topo.GroupSize * topo.Conc}
			cfg.Load = 1.0
			cfg.Warmup = 500
			cfg.Measure = 3000
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered == 0 {
				t.Fatal("no progress under all-global shift")
			}
		})
	}
}
