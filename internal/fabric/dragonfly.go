package fabric

import (
	"fmt"

	"github.com/reprolab/hirise/internal/prng"
)

// Dragonfly is the canonical hierarchical topology ("Switch-Less
// Dragonfly on Wafers" supplies the group/global structure): Groups
// fully-connected groups of GroupSize routers, each router carrying
// Conc cores, GroupSize-1 local links (all-to-all within the group),
// and GlobalPorts global links, with every pair of groups joined by
// exactly one logical global link. Balance therefore requires
//
//	GroupSize * GlobalPorts == Groups - 1
//
// which is why "round" router counts like 64 do not exist as balanced
// dragonflies — the shipped configurations use the nearest balanced
// shapes (e.g. 9 groups × 4 routers × 2 global ports = 36 routers, or
// 9 × 8 × 1 = 72 routers).
//
// Minimal routes are local→global→local (at most 3 link hops); Valiant
// routes detour through a random intermediate group. Deadlock freedom
// comes from bumping a packet's VC class on every global hop: within a
// class a packet takes at most one local hop before a global hop or
// delivery, so same-class local channels never wait on each other, and
// classes only grow — the wait-for graph is acyclic with 2 classes for
// minimal routing and 3 for Valiant.
//
// Port layout per router: Conc local core ports, then (GroupSize-1)*
// Lanes intra-group links (ascending target index, skipping self),
// then GlobalPorts*Lanes global links. Router r's global port h
// carries the group's global link index j = r*GlobalPorts + h, which
// connects to group j (skipping the own group) and lands on the
// symmetric index on the far side.
type Dragonfly struct {
	// Groups is the group count.
	Groups int
	// GroupSize is the routers per group.
	GroupSize int
	// GlobalPorts is the global links per router.
	GlobalPorts int
	// Conc is the cores per router.
	Conc int
	// Lanes is the parallel lanes per logical link.
	Lanes int
}

// Nodes returns the router count.
func (d Dragonfly) Nodes() int { return d.Groups * d.GroupSize }

// Concentration returns cores per router.
func (d Dragonfly) Concentration() int { return d.Conc }

// Radix returns the per-router switch radix.
func (d Dragonfly) Radix() int {
	return d.Conc + (d.GroupSize-1+d.GlobalPorts)*d.Lanes
}

// LaneCount returns the lanes per logical link.
func (d Dragonfly) LaneCount() int { return d.Lanes }

// group and local split a router index.
func (d Dragonfly) group(node int) int { return node / d.GroupSize }
func (d Dragonfly) local(node int) int { return node % d.GroupSize }

// localPort returns the first lane port at local router rl toward local
// router tl of the same group (tl != rl; skip-self ascending order).
func (d Dragonfly) localPort(rl, tl int) int {
	idx := tl
	if tl > rl {
		idx--
	}
	return d.Conc + idx*d.Lanes
}

// globalBase is the first global port.
func (d Dragonfly) globalBase() int { return d.Conc + (d.GroupSize-1)*d.Lanes }

// globalPort returns the first lane port of a router's h-th global link.
func (d Dragonfly) globalPort(h int) int { return d.globalBase() + h*d.Lanes }

// globalIndex returns the group-level index of the logical global link
// from group g toward group tg (g != tg; skip-self ascending order).
func (d Dragonfly) globalIndex(g, tg int) int {
	if tg > g {
		return tg - 1
	}
	return tg
}

// globalExit returns the router (local index) and global-port index
// inside group g that carry the logical link toward group tg.
func (d Dragonfly) globalExit(g, tg int) (rl, h int) {
	j := d.globalIndex(g, tg)
	return j / d.GlobalPorts, j % d.GlobalPorts
}

// RouteCandidates implements Topology: within a group, the direct local
// link; across groups, the global link toward the destination group if
// this router carries it, else the local hop to the router that does.
func (d Dragonfly) RouteCandidates(dst []int, node, dest int) []int {
	g, rl := d.group(node), d.local(node)
	dg, drl := d.group(dest), d.local(dest)
	var base int
	switch {
	case g == dg:
		base = d.localPort(rl, drl)
	default:
		exitRl, h := d.globalExit(g, dg)
		if rl == exitRl {
			base = d.globalPort(h)
		} else {
			base = d.localPort(rl, exitRl)
		}
	}
	for lane := 0; lane < d.Lanes; lane++ {
		dst = append(dst, base+lane)
	}
	return dst
}

// LinkDest implements Topology: local links land on the peer's local
// port pointing back; global link j of group g lands on the symmetric
// global index of the far group.
func (d Dragonfly) LinkDest(node, out int) (int, int) {
	g, rl := d.group(node), d.local(node)
	rel := out - d.Conc
	lane := rel % d.Lanes
	logical := rel / d.Lanes
	if logical < d.GroupSize-1 { // intra-group link
		tl := logical
		if tl >= rl {
			tl++
		}
		nb := g*d.GroupSize + tl
		return nb, d.localPort(tl, rl) + lane
	}
	h := logical - (d.GroupSize - 1)
	j := rl*d.GlobalPorts + h
	tg := j
	if tg >= g {
		tg++
	}
	j2 := d.globalIndex(tg, g)
	nb := tg*d.GroupSize + j2/d.GlobalPorts
	return nb, d.globalPort(j2%d.GlobalPorts) + lane
}

// MinimalHops implements Topology: up to local + global + local.
func (d Dragonfly) MinimalHops(node, dest int) int {
	if node == dest {
		return 0
	}
	g, rl := d.group(node), d.local(node)
	dg, drl := d.group(dest), d.local(dest)
	if g == dg {
		return 1
	}
	exitRl, _ := d.globalExit(g, dg)
	entryRl, _ := d.globalExit(dg, g)
	h := 1 // the global hop
	if rl != exitRl {
		h++
	}
	if drl != entryRl {
		h++
	}
	return h
}

// Classes implements Topology: one class per global hop a route can
// take, plus the initial class — 2 minimal, 3 Valiant.
func (d Dragonfly) Classes(r Routing) int {
	if r == Valiant {
		return 3
	}
	return 2
}

// ClassAfter implements Topology: global hops bump the class.
func (d Dragonfly) ClassAfter(class, _, out int) int {
	if out >= d.globalBase() {
		return class + 1
	}
	return class
}

// ViaBump implements Topology: the global-hop bumps already separate
// the Valiant phases, so the waypoint itself adds nothing.
func (d Dragonfly) ViaBump() int { return 0 }

// ValiantVia implements Topology: a uniform intermediate group,
// falling back to minimal when the draw hits either endpoint group or
// the exact detour length would exceed twice the minimal hop count.
func (d Dragonfly) ValiantVia(src, dst int, rng *prng.Source) int {
	vg := rng.Intn(d.Groups)
	g, dg := d.group(src), d.group(dst)
	if vg == g || vg == dg {
		return -1
	}
	// Exact detour length: reach the via group's entry router, then
	// route minimally to the destination.
	exitRl, _ := d.globalExit(g, vg)
	entryRl, _ := d.globalExit(vg, g)
	detour := 1 // the global hop into the via group
	if d.local(src) != exitRl {
		detour++
	}
	detour += d.MinimalHops(vg*d.GroupSize+entryRl, dst)
	if detour > 2*d.MinimalHops(src, dst) {
		return -1
	}
	return vg
}

// AtVia implements Topology: the waypoint is a group.
func (d Dragonfly) AtVia(node, via int) bool { return d.group(node) == via }

// ViaCandidates implements Topology: minimal progress toward the via
// group (the global link if this router carries it, else the local hop
// to the router that does).
func (d Dragonfly) ViaCandidates(dst []int, node, via int) []int {
	g, rl := d.group(node), d.local(node)
	exitRl, h := d.globalExit(g, via)
	var base int
	if rl == exitRl {
		base = d.globalPort(h)
	} else {
		base = d.localPort(rl, exitRl)
	}
	for lane := 0; lane < d.Lanes; lane++ {
		dst = append(dst, base+lane)
	}
	return dst
}

// wired implements Topology: balance makes every local and global port
// carry a link (router rl's global index rl*GlobalPorts+h never exceeds
// Groups-2).
func (d Dragonfly) wired(_, _ int) bool { return true }

func (d Dragonfly) validate() error {
	if d.Groups < 2 || d.GroupSize < 1 || d.GlobalPorts < 1 || d.Conc < 1 || d.Lanes < 1 {
		return fmt.Errorf("fabric: bad dragonfly %+v", d)
	}
	if d.GroupSize*d.GlobalPorts != d.Groups-1 {
		return fmt.Errorf("fabric: unbalanced dragonfly %+v: GroupSize*GlobalPorts = %d, want Groups-1 = %d",
			d, d.GroupSize*d.GlobalPorts, d.Groups-1)
	}
	return nil
}
