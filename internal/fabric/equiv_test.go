package fabric

import (
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/traffic"
)

// TestOneNodeFabricMatchesSim pins the degenerate-fabric contract: a
// 1×1 mesh with no links is a single switch, and its results equal
// internal/sim's byte for byte on the same seed — same per-port rng
// split order, same round-robin VC selection, same source-queue
// discipline, same histogram resolution. The fabric is sim's superset,
// not a reimplementation that drifts.
func TestOneNodeFabricMatchesSim(t *testing.T) {
	const radix = 8
	for _, tc := range []struct {
		name string
		tr   sim.Traffic
	}{
		{"uniform", traffic.Uniform{Radix: radix}},
		{"hotspot", traffic.Hotspot{Target: 3}},
		{"permutation", traffic.NewRandomPermutation(radix, 42)},
	} {
		for _, load := range []float64{0.2, 0.6, 1.0} {
			ref, err := sim.Run(sim.Config{
				Switch:  crossbar.New(radix),
				Traffic: tc.tr,
				Load:    load,
				Warmup:  500,
				Measure: 4000,
				Seed:    5,
				Check:   true,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(Config{
				Topo:      Mesh{W: 1, H: 1, Conc: radix, Lanes: 0},
				NewSwitch: func() sim.Switch { return crossbar.New(radix) },
				Traffic:   tc.tr,
				Load:      load,
				Warmup:    500,
				Measure:   4000,
				Seed:      5,
				Check:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			type scalar struct {
				name       string
				ref, fabri float64
			}
			for _, s := range []scalar{
				{"OfferedLoad", ref.OfferedLoad, got.OfferedLoad},
				{"AcceptedFlits", ref.AcceptedFlits, got.AcceptedFlits},
				{"AcceptedPackets", ref.AcceptedPackets, got.AcceptedPackets},
				{"AvgLatency", ref.AvgLatency, got.AvgLatency},
				{"P50Latency", ref.P50Latency, got.P50Latency},
				{"P99Latency", ref.P99Latency, got.P99Latency},
				{"Injected", float64(ref.Injected), float64(got.Injected)},
				{"Delivered", float64(ref.Delivered), float64(got.Delivered)},
				{"DroppedInjections", float64(ref.DroppedInjections), float64(got.DroppedInjections)},
			} {
				if s.ref != s.fabri {
					t.Errorf("%s load %v: %s: sim %v, fabric %v", tc.name, load, s.name, s.ref, s.fabri)
				}
			}
			if got.AvgHops != 1 && got.Delivered > 0 {
				t.Errorf("%s load %v: 1-node fabric AvgHops = %v, want 1", tc.name, load, got.AvgHops)
			}
		}
	}
}
