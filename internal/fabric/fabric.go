package fabric

import (
	"context"
	"fmt"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/tele"
)

// Config parameterizes one fabric simulation. The per-router discipline
// matches internal/sim exactly — one arbitration cycle plus PacketFlits
// data cycles per traversal, round-robin VC selection, bounded source
// queues — so a 1-node fabric reproduces sim.Run byte for byte (pinned
// by TestOneNodeFabricMatchesSim).
type Config struct {
	// Topo wires the routers.
	Topo Topology
	// NewSwitch builds one router's switch; its radix must equal the
	// topology's. Nil selects a flat crossbar of the right radix.
	NewSwitch func() sim.Switch
	// Routing selects minimal or Valiant route computation.
	Routing Routing
	// Traffic produces the offered load over cores (destinations are
	// core indices). Implementations come from internal/traffic.
	Traffic sim.Traffic
	// Load is the offered load in packets per cycle per core.
	Load float64
	// PacketFlits is the packet length (default 4).
	PacketFlits int
	// VCs is the number of virtual channels per input port (default 4).
	// The VCs split into equal contiguous bands, one per deadlock class
	// (Topology.Classes); VCs must be >= the class count.
	VCs int
	// VCBufPkts bounds each VC's input buffer in packets (default 1,
	// matching internal/sim's one-packet-per-VC discipline).
	VCBufPkts int
	// SourceQueueCap bounds per-core injection queues (default 64).
	SourceQueueCap int
	// Warmup and Measure are window lengths in cycles.
	Warmup, Measure int64
	// Seed drives injection, Valiant waypoint draws, and the
	// seed-derived lane tie-break.
	Seed uint64
	// Ctx, when non-nil, makes the run cancellable (polled every
	// ctxCheckInterval cycles, like internal/sim).
	Ctx context.Context
	// Obs attaches observability sinks: fabric.* counters, the latency
	// histogram, per-hop-count latency histograms, per-link busy-cycle
	// counters, and flit lifecycle trace events. Nil is free — no hook
	// allocates or branches beyond a nil check — and results are
	// byte-identical either way.
	Obs *obs.Observer
	// Faults, when non-nil, applies a static link/router fail-set from
	// cycle 0: failed lanes are never requested (surviving lanes of the
	// bundle reroute around the failure) and packets whose destination
	// router or every next-hop lane is failed are retired as dead
	// flows. Nil costs nothing.
	Faults *FaultSet
	// Check enables the invariant checker: credit conservation,
	// VC-class/band occupancy (the no-VC-cycle rule), grant sanity, and
	// end-of-run flit conservation (injected == delivered + in-flight +
	// dead). The deadlock watchdog is always on regardless.
	Check bool
}

// Defaults fills unset fields with the paper's parameters (same
// convention as sim.Config: zero means unset, Seed 0 becomes 1).
func (c *Config) Defaults() {
	if c.PacketFlits == 0 {
		c.PacketFlits = 4
	}
	if c.VCs == 0 {
		c.VCs = 4
	}
	if c.VCBufPkts == 0 {
		c.VCBufPkts = 1
	}
	if c.SourceQueueCap == 0 {
		c.SourceQueueCap = 64
	}
	if c.Warmup == 0 {
		c.Warmup = 10000
	}
	if c.Measure == 0 {
		c.Measure = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NewSwitch == nil && c.Topo != nil {
		radix := c.Topo.Radix()
		c.NewSwitch = func() sim.Switch { return crossbar.New(radix) }
	}
}

func (c *Config) validate() error {
	switch {
	case c.Topo == nil:
		return fmt.Errorf("fabric: no topology")
	case c.Traffic == nil:
		return fmt.Errorf("fabric: no traffic")
	case c.Load < 0:
		return fmt.Errorf("fabric: negative load %v", c.Load)
	case c.PacketFlits < 1 || c.VCs < 1 || c.VCBufPkts < 1 || c.SourceQueueCap < 1:
		return fmt.Errorf("fabric: non-positive structural parameter")
	case c.Warmup < 0 || c.Measure <= 0:
		return fmt.Errorf("fabric: bad windows warmup=%d measure=%d", c.Warmup, c.Measure)
	}
	if err := c.Topo.validate(); err != nil {
		return err
	}
	if classes := c.Topo.Classes(c.Routing); c.VCs < classes {
		return fmt.Errorf("fabric: %d VCs cannot hold the %d deadlock classes %v routing needs",
			c.VCs, classes, c.Routing)
	}
	if got := c.NewSwitch().Radix(); got != c.Topo.Radix() {
		return fmt.Errorf("fabric: switch radix %d, topology needs %d", got, c.Topo.Radix())
	}
	if c.Faults != nil {
		if err := c.Faults.compatible(c.Topo); err != nil {
			return err
		}
	}
	return nil
}

// Result aggregates one fabric run's measurements. All rates are per
// cycle; all latencies are in cycles.
type Result struct {
	// OfferedLoad echoes the configured load.
	OfferedLoad float64
	// AcceptedFlits is the aggregate delivered flit rate (flits/cycle).
	AcceptedFlits float64
	// AcceptedPackets is the aggregate delivered packet rate.
	AcceptedPackets float64
	// AvgLatency is the mean packet latency, injection to last flit.
	AvgLatency float64
	// P50Latency and P99Latency are latency quantiles.
	P50Latency, P99Latency float64
	// AvgHops is the mean number of switch traversals per packet
	// (delivery included, so a 1-node fabric reports 1).
	AvgHops float64
	// Injected and Delivered count packets during measurement.
	Injected, Delivered int64
	// DroppedInjections counts packets discarded at full source queues
	// during measurement.
	DroppedInjections int64
	// DeadFlows counts packets retired over the whole run because the
	// fail-set severed every route to their destination; 0 without
	// faults, so fault-free results serialize exactly as before.
	DeadFlows int64 `json:",omitempty"`
}

// Saturated reports whether offered traffic exceeded acceptance.
func (r Result) Saturated() bool { return r.DroppedInjections > 0 }

// ctxCheckInterval matches internal/sim's cancellation cadence.
const ctxCheckInterval = 1024

// watchdogCycles is the forward-progress horizon of the always-on
// deadlock watchdog: a fabric holding buffered packets that forms no
// connection and delivers nothing for this many consecutive cycles is
// declared deadlocked. The longest legitimate fabric-wide quiet gap is
// one packet flight (PacketFlits+1 cycles, grant to delivery), so the
// horizon has two orders of magnitude of slack while still firing
// inside short test runs — a silent wedge must be an error, not a
// zero-throughput Result.
const watchdogCycles = 1024

// checkInterval is the cadence of the periodic structural invariant
// scans (credit conservation, band occupancy) under Config.Check.
const checkInterval = 1024

type packet struct {
	birth int64
	flow  uint32 // seed-derived flow hash; lane tie-break
	dest  int32  // destination core
	via   int32  // Valiant waypoint (router or group), -1 when minimal
	hops  uint16
	class uint8
	phase uint8 // 0 = toward the waypoint, 1 = toward the destination
}

// fifo is a fixed-capacity ring buffer of packets (same rationale as
// internal/sim: one allocation for the whole run).
type fifo struct {
	buf  []packet
	head int
	n    int
}

func (q *fifo) full() bool { return q.n == len(q.buf) }

func (q *fifo) push(p packet) {
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = p
	q.n++
}

func (q *fifo) peek() *packet { return &q.buf[q.head] }

func (q *fifo) pop() packet {
	p := q.buf[q.head]
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return p
}

// router is one switch plus its input buffering and connection state.
type router struct {
	sw   sim.Switch
	vcq  []fifo  // input buffers, indexed port*VCs+vc
	resv []uint8 // credits reserved by in-flight link transfers, same index
	req  []int   // per input port: requested output this cycle
	rr   []int   // per input port: round-robin VC pointer
	// Active connections, per input port.
	active    []bool
	connVC    []int
	connOut   []int
	downVC    []int
	downClass []uint8
	remaining []int
}

// source is one core's injection state.
type source struct {
	rng  prng.Source
	q    fifo
	next int64 // injection sequence, feeds the flow hash
}

// network is the run state; built fresh by Run.
type network struct {
	cfg   Config
	topo  Topology
	conc  int
	radix int
	cores int
	vcs   int
	nodes []router
	src   []source
	// VC bands: class c owns VCs [bandLo[c], bandHi[c]).
	bandLo, bandHi []int

	cand []int // route-candidate scratch
	rel  []int // pending releases, encoded node*radix+port

	hist *stats.Histogram
	hops stats.Summary

	// Conservation and watchdog state.
	injTotal, delivTotal, deadTotal int64 // whole run, warmup included
	inNet                           int64 // packets buffered in VCs
	lastActivity                    int64

	// Observability handles (nil and free when cfg.Obs is nil).
	rec                                     *obs.Recorder
	mInjected, mDelivered, mDropped, mFlits *obs.Counter
	mWins, mLosses, mDead                   *obs.Counter
	mLatency                                *obs.Histogram
	hopHist                                 []*obs.Histogram
	linkBusy                                []*obs.Counter
	tInjected, tDelivered, tDropped, tFlits *tele.Counter
	tWins, tLosses, tDead                   *tele.Counter
}

// Run executes one fabric simulation and returns its measurements. It
// returns an error on configuration mistakes, context cancellation,
// invariant violations (Config.Check), and deadlock (always checked).
func Run(cfg Config) (Result, error) {
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := newNetwork(cfg)
	return n.run()
}

func newNetwork(cfg Config) *network {
	t := cfg.Topo
	n := &network{
		cfg:   cfg,
		topo:  t,
		conc:  t.Concentration(),
		radix: t.Radix(),
		cores: t.Nodes() * t.Concentration(),
		vcs:   cfg.VCs,
		nodes: make([]router, t.Nodes()),
		src:   make([]source, t.Nodes()*t.Concentration()),
		cand:  make([]int, 0, 8),
		hist:  stats.NewHistogram(4, 4096),
	}
	classes := t.Classes(cfg.Routing)
	n.bandLo = make([]int, classes)
	n.bandHi = make([]int, classes)
	for c := 0; c < classes; c++ {
		n.bandLo[c] = c * cfg.VCs / classes
		n.bandHi[c] = (c + 1) * cfg.VCs / classes
	}
	// All router-local state comes from a handful of network-wide slabs:
	// a 72-router dragonfly otherwise pays thousands of small allocations
	// (one per VC buffer alone) before the first cycle runs.
	nNodes := len(n.nodes)
	rv := n.radix * cfg.VCs
	fifos := make([]fifo, nNodes*rv)
	vcBufs := make([]packet, nNodes*rv*cfg.VCBufPkts)
	for i := range fifos {
		fifos[i].buf = vcBufs[i*cfg.VCBufPkts : (i+1)*cfg.VCBufPkts : (i+1)*cfg.VCBufPkts]
	}
	ints := make([]int, nNodes*6*n.radix)
	bytes := make([]uint8, nNodes*(rv+n.radix))
	bools := make([]bool, nNodes*n.radix)
	carveInt := func() []int {
		s := ints[:n.radix:n.radix]
		ints = ints[n.radix:]
		return s
	}
	for i := range n.nodes {
		nd := &n.nodes[i]
		nd.sw = cfg.NewSwitch()
		nd.vcq = fifos[i*rv : (i+1)*rv : (i+1)*rv]
		nd.resv = bytes[:rv:rv]
		nd.downClass = bytes[rv : rv+n.radix : rv+n.radix]
		bytes = bytes[rv+n.radix:]
		nd.active = bools[i*n.radix : (i+1)*n.radix : (i+1)*n.radix]
		nd.req = carveInt()
		nd.rr = carveInt()
		nd.connVC = carveInt()
		nd.connOut = carveInt()
		nd.downVC = carveInt()
		nd.remaining = carveInt()
	}
	root := prng.New(cfg.Seed)
	srcBufs := make([]packet, len(n.src)*cfg.SourceQueueCap)
	for i := range n.src {
		root.SplitTo(&n.src[i].rng)
		n.src[i].q.buf = srcBufs[i*cfg.SourceQueueCap : (i+1)*cfg.SourceQueueCap : (i+1)*cfg.SourceQueueCap]
	}
	n.rel = make([]int, 0, t.Nodes()*n.radix)
	return n
}

// nodeOfCore returns the router hosting a core and its local port.
func (n *network) nodeOfCore(core int) (node, port int) {
	return core / n.conc, core % n.conc
}

// route computes the request for a head packet at router ni: the output
// port and, for link hops, the downstream VC and post-hop class. ok is
// false when every candidate lane lacks credit this cycle (the packet
// holds); retire is true when the static fail-set severed every route
// (the packet can never be delivered).
func (n *network) route(ni int, pkt *packet) (out, downVC int, downClass uint8, ok, retire bool) {
	destNode := int(pkt.dest) / n.conc
	if ni == destNode {
		return int(pkt.dest) % n.conc, -1, pkt.class, true, false
	}
	fs := n.cfg.Faults
	if fs != nil && fs.RouterFailed(destNode) {
		return 0, 0, 0, false, true
	}
	if pkt.phase == 0 {
		n.cand = n.topo.ViaCandidates(n.cand[:0], ni, int(pkt.via))
	} else {
		n.cand = n.topo.RouteCandidates(n.cand[:0], ni, destNode)
	}
	// Reroute around failures: drop dead lanes, keeping the surviving
	// lanes of the bundle. The fail-set's per-bundle budget guarantees
	// link faults alone never empty a candidate set; router faults can,
	// and then the flow is dead.
	live := n.cand
	if fs != nil {
		live = live[:0]
		for _, o := range n.cand {
			if fs.LinkFailed(ni, o) {
				continue
			}
			if nb, _ := n.topo.LinkDest(ni, o); fs.RouterFailed(nb) {
				continue
			}
			live = append(live, o)
		}
		if len(live) == 0 {
			return 0, 0, 0, false, true
		}
	}
	// Seed-derived lane tie-break (the flow hash is derived from the
	// run seed at injection), then first credited lane in rotation so
	// backpressure on one lane spills to its siblings.
	start := (int(pkt.flow) + int(pkt.hops)) % len(live)
	for k := 0; k < len(live); k++ {
		o := live[(start+k)%len(live)]
		nb, inPort := n.topo.LinkDest(ni, o)
		ca := n.topo.ClassAfter(int(pkt.class), ni, o)
		if pkt.phase == 1 && pkt.via >= 0 && n.topo.AtVia(ni, int(pkt.via)) {
			// Dateline: the class bump happens on departure FROM the
			// waypoint, not on the hop into it, so each grid class band
			// carries one uninterrupted dimension-ordered route segment
			// (src->via in class 0, via->dst in class 1) and its channel
			// dependency graph stays acyclic. Bumping a hop early would
			// mix the tail of phase 0 into the class-1 band and admit
			// Y->X dependencies there — a real deadlock, caught by
			// TestSaturationTerminates when tried.
			ca += n.topo.ViaBump()
		}
		down := &n.nodes[nb]
		base := inPort * n.vcs
		for v := n.bandLo[ca]; v < n.bandHi[ca]; v++ {
			if down.vcq[base+v].n+int(down.resv[base+v]) < n.cfg.VCBufPkts {
				return o, v, uint8(ca), true, false
			}
		}
	}
	return 0, 0, 0, false, false
}

func (n *network) run() (Result, error) {
	cfg := n.cfg
	obsOn := cfg.Obs != nil
	n.rec = cfg.Obs.Rec()
	n.mInjected = cfg.Obs.Counter("fabric.packets.injected")
	n.mDelivered = cfg.Obs.Counter("fabric.packets.delivered")
	n.mDropped = cfg.Obs.Counter("fabric.packets.dropped")
	n.mFlits = cfg.Obs.Counter("fabric.flits.delivered")
	n.mWins = cfg.Obs.Counter("fabric.arb.wins")
	n.mLosses = cfg.Obs.Counter("fabric.arb.losses")
	n.mDead = cfg.Obs.Counter("fabric.packets.dead")
	n.mLatency = cfg.Obs.Histogram("fabric.latency.cycles", 4, 4096)
	cfg.Obs.Gauge("fabric.offered.load").Set(cfg.Load)
	if obsOn {
		n.linkBusy = make([]*obs.Counter, len(n.nodes)*n.radix)
	}

	samp := cfg.Obs.Sampler()
	n.tInjected = samp.Counter("fabric.packets.injected")
	n.tDelivered = samp.Counter("fabric.packets.delivered")
	n.tDropped = samp.Counter("fabric.packets.dropped")
	n.tFlits = samp.Counter("fabric.flits.delivered")
	n.tWins = samp.Counter("fabric.arb.wins")
	n.tLosses = samp.Counter("fabric.arb.losses")
	n.tDead = samp.Counter("fabric.packets.dead")
	if samp != nil {
		samp.GaugeFunc("fabric.queue.occupancy", func() float64 {
			var occ int64 = n.inNet
			for i := range n.src {
				occ += int64(n.src[i].q.n)
			}
			return float64(occ)
		})
		samp.GaugeFunc("fabric.flits.inflight", func() float64 {
			var fl int
			for i := range n.nodes {
				nd := &n.nodes[i]
				for p := range nd.active {
					if nd.active[p] {
						fl += nd.remaining[p]
					}
				}
			}
			return float64(fl)
		})
	}

	var chk *checker
	if cfg.Check {
		chk = newChecker(n)
	}

	var injected, delivered, dropped, flits int64
	total := cfg.Warmup + cfg.Measure
	for cycle := int64(0); cycle < total; cycle++ {
		if cfg.Ctx != nil && cycle%ctxCheckInterval == 0 && cfg.Ctx.Err() != nil {
			return Result{}, fmt.Errorf("fabric: run cancelled at cycle %d: %w", cycle, cfg.Ctx.Err())
		}
		measuring := cycle >= cfg.Warmup

		// 1. Advance active transmissions; completions deliver locally
		// or arrive on the linked neighbour input, consuming the credit
		// reserved at grant time. Resources release only after this
		// cycle's arbitration, matching the priority-bus reuse.
		n.rel = n.rel[:0]
		for ni := range n.nodes {
			nd := &n.nodes[ni]
			for in := range nd.active {
				if !nd.active[in] {
					continue
				}
				nd.remaining[in]--
				if nd.remaining[in] > 0 {
					continue
				}
				nd.active[in] = false
				n.rel = append(n.rel, ni*n.radix+in)
				pkt := nd.vcq[in*n.vcs+nd.connVC[in]].pop()
				n.inNet--
				pkt.hops++
				out := nd.connOut[in]
				if obsOn && out >= n.conc {
					n.linkBusyCounter(ni, out).Add(int64(cfg.PacketFlits) + 1)
				}
				if out < n.conc {
					lat := cycle - pkt.birth
					if measuring {
						n.hist.Add(float64(lat))
						n.hops.Add(float64(pkt.hops))
						delivered++
						flits += int64(cfg.PacketFlits)
					}
					n.delivTotal++
					n.lastActivity = cycle
					n.mDelivered.Inc()
					n.mFlits.Add(int64(cfg.PacketFlits))
					n.tDelivered.Inc()
					n.tFlits.Add(int64(cfg.PacketFlits))
					n.mLatency.Observe(float64(lat))
					if obsOn {
						n.hopHistFor(int(pkt.hops)).Observe(float64(lat))
					}
					n.rec.Record(cycle, obs.EvEject, int(pkt.dest), int(pkt.dest), int(lat))
					continue
				}
				nb, inPort := n.topo.LinkDest(ni, out)
				pkt.class = nd.downClass[in]
				if pkt.phase == 0 && n.topo.AtVia(nb, int(pkt.via)) {
					pkt.phase = 1
				}
				down := &n.nodes[nb]
				slot := inPort*n.vcs + nd.downVC[in]
				down.vcq[slot].push(pkt)
				down.resv[slot]--
				n.inNet++
			}
		}

		// 2. Build requests from unconnected inputs with waiting
		// packets, selecting the candidate VC round-robin; statically
		// unroutable heads are retired as dead flows.
		for ni := range n.nodes {
			if cfg.Faults != nil && cfg.Faults.RouterFailed(ni) {
				continue // fail-stop: the router arbitrates nothing
			}
			nd := &n.nodes[ni]
			for in := range nd.req {
				nd.req[in] = -1
				if nd.active[in] {
					continue
				}
				for k := 0; k < n.vcs; k++ {
					v := (nd.rr[in] + k) % n.vcs
					q := &nd.vcq[in*n.vcs+v]
					if q.n == 0 {
						continue
					}
					pkt := q.peek()
					out, dvc, dclass, ok, retire := n.route(ni, pkt)
					if retire {
						dead := q.pop()
						n.inNet--
						n.deadTotal++
						n.lastActivity = cycle
						n.mDead.Inc()
						n.tDead.Inc()
						n.rec.Record(cycle, obs.EvDeadFlow, ni*n.radix+in, int(dead.dest), int(cycle-dead.birth))
						continue
					}
					if !ok {
						continue
					}
					nd.rr[in] = (v + 1) % n.vcs
					nd.req[in] = out
					nd.connVC[in] = v
					nd.connOut[in] = out
					nd.downVC[in] = dvc
					nd.downClass[in] = dclass
					break
				}
			}

			// 3. Arbitrate and start new connections; link grants
			// reserve the downstream credit for the whole flight.
			for _, g := range nd.sw.Arbitrate(nd.req) {
				if chk != nil {
					if err := chk.checkGrant(cycle, ni, g.In, g.Out); err != nil {
						return Result{}, err
					}
				}
				nd.active[g.In] = true
				nd.remaining[g.In] = cfg.PacketFlits
				if g.Out >= n.conc {
					nb, inPort := n.topo.LinkDest(ni, g.Out)
					n.nodes[nb].resv[inPort*n.vcs+nd.downVC[g.In]]++
				}
				n.lastActivity = cycle
				n.mWins.Inc()
				n.tWins.Inc()
				n.rec.Record(cycle, obs.EvArbWin, ni*n.radix+g.In, ni*n.radix+g.Out, cfg.PacketFlits)
			}
			if obsOn || samp != nil {
				for in := range nd.req {
					if nd.req[in] >= 0 && !nd.active[in] {
						n.mLosses.Inc()
						n.tLosses.Inc()
						n.rec.Record(cycle, obs.EvArbLose, ni*n.radix+in, ni*n.radix+nd.req[in], 0)
					}
				}
			}
		}

		// 4. Release the connections that finished this cycle.
		for _, id := range n.rel {
			n.nodes[id/n.radix].sw.Release(id % n.radix)
		}

		// 5. Inject new packets and refill the class-0 VC band from the
		// source queues.
		for core := range n.src {
			if cfg.Faults != nil && cfg.Faults.RouterFailed(core/n.conc) {
				continue // cores behind a failed router cannot inject
			}
			s := &n.src[core]
			if dest, okInj := cfg.Traffic.Next(core, cycle, cfg.Load, &s.rng); okInj {
				if s.q.full() {
					if measuring {
						dropped++
					}
					n.mDropped.Inc()
					n.tDropped.Inc()
					n.rec.Record(cycle, obs.EvDrop, core, dest, 0)
				} else {
					pkt := packet{
						birth: cycle,
						dest:  int32(dest),
						via:   -1,
						phase: 1,
						flow:  uint32(pool.SeedFor(cfg.Seed, uint64(core), uint64(s.next))),
					}
					if cfg.Routing == Valiant {
						srcNode, _ := n.nodeOfCore(core)
						if via := n.topo.ValiantVia(srcNode, dest/n.conc, &s.rng); via >= 0 {
							pkt.via = int32(via)
							pkt.phase = 0
						}
					}
					s.q.push(pkt)
					s.next++
					n.injTotal++
					if measuring {
						injected++
					}
					n.mInjected.Inc()
					n.tInjected.Inc()
					n.rec.Record(cycle, obs.EvInject, core, dest, 0)
				}
			}
			if s.q.n > 0 {
				ni, port := n.nodeOfCore(core)
				nd := &n.nodes[ni]
				base := port * n.vcs
				for v := n.bandLo[0]; v < n.bandHi[0] && s.q.n > 0; v++ {
					if nd.vcq[base+v].full() {
						continue
					}
					p := s.q.pop()
					nd.vcq[base+v].push(p)
					n.inNet++
					n.rec.Record(cycle, obs.EvVCAlloc, core, int(p.dest), v)
				}
			}
		}

		// 6. Deadlock watchdog (always on) and periodic structural
		// invariants (Config.Check), then the telemetry window tick.
		if n.inNet > 0 && cycle-n.lastActivity > watchdogCycles {
			return Result{}, fmt.Errorf(
				"fabric: deadlock at cycle %d: %d packets buffered, no progress for %d cycles",
				cycle, n.inNet, watchdogCycles)
		}
		if chk != nil && cycle%checkInterval == checkInterval-1 {
			if err := chk.scan(cycle); err != nil {
				return Result{}, err
			}
		}
		samp.Tick(cycle + 1)
	}

	if chk != nil {
		if err := chk.conservation(); err != nil {
			return Result{}, err
		}
	}
	measured := float64(cfg.Measure)
	return Result{
		OfferedLoad:       cfg.Load,
		AcceptedFlits:     float64(flits) / measured,
		AcceptedPackets:   float64(delivered) / measured,
		AvgLatency:        n.hist.Mean(),
		P50Latency:        n.hist.Quantile(0.5),
		P99Latency:        n.hist.Quantile(0.99),
		AvgHops:           n.hops.Mean(),
		Injected:          injected,
		Delivered:         delivered,
		DroppedInjections: dropped,
		DeadFlows:         n.deadTotal,
	}, nil
}

// hopHistFor returns (creating lazily) the per-hop-count latency
// histogram. Only called when an observer is attached.
func (n *network) hopHistFor(hops int) *obs.Histogram {
	for hops >= len(n.hopHist) {
		n.hopHist = append(n.hopHist, nil)
	}
	if n.hopHist[hops] == nil {
		n.hopHist[hops] = n.cfg.Obs.Histogram(fmt.Sprintf("fabric.latency.hops=%02d", hops), 4, 4096)
		if n.hopHist[hops] == nil {
			// No metrics registry attached: cache a no-op histogram so
			// the lookup stays cheap.
			n.hopHist[hops] = noopHist
		}
	}
	return n.hopHist[hops]
}

// noopHist absorbs per-hop observations when the observer carries no
// metrics registry; Observe on it is harmless.
var noopHist = &obs.Histogram{}

// linkBusyCounter returns (creating lazily) the busy-cycle counter for
// output port out of router ni. Only called when an observer is
// attached; links that never carry traffic never appear.
func (n *network) linkBusyCounter(ni, out int) *obs.Counter {
	id := ni*n.radix + out
	if n.linkBusy[id] == nil {
		c := n.cfg.Obs.Counter(fmt.Sprintf("fabric.link.busy[n%03d.p%02d]", ni, out))
		if c == nil {
			c = noopCounter
		}
		n.linkBusy[id] = c
	}
	return n.linkBusy[id]
}

var noopCounter = &obs.Counter{}

// LoadSweep runs the configuration at each load on at most workers
// concurrent simulations and returns results in load order. Each point
// builds a fresh network and derives its seed from (base.Seed, index)
// via pool.SeedFor, so results are identical at every worker count.
// The first error by point index wins, mirroring serial execution.
func LoadSweep(base Config, loads []float64, workers int) ([]Result, error) {
	return LoadSweepObserved(base, loads, workers, nil)
}

// LoadSweepObserved is LoadSweep with per-point observability: obsFor,
// when non-nil, supplies each point its own Observer (points run
// concurrently and obs sinks are single-writer; base.Obs is ignored).
// Merging the per-point sinks in point order afterwards keeps the
// serialized output byte-identical at every worker count.
func LoadSweepObserved(base Config, loads []float64, workers int, obsFor func(i int) *obs.Observer) ([]Result, error) {
	out := make([]Result, len(loads))
	errs := make([]error, len(loads))
	pool.DoCtx(base.Ctx, len(loads), workers, func(i int) {
		cfg := base
		cfg.Load = loads[i]
		cfg.Seed = pool.SeedFor(base.Seed, uint64(i))
		cfg.Obs = nil
		if obsFor != nil {
			cfg.Obs = obsFor(i)
		}
		out[i], errs[i] = Run(cfg)
	})
	if base.Ctx != nil && base.Ctx.Err() != nil {
		return nil, base.Ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
