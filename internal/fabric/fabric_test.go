package fabric

import (
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/tele"
	"github.com/reprolab/hirise/internal/traffic"
)

// testTopos returns one small instance of every topology, sized so a
// few thousand cycles exercise multi-hop routes of every class.
func testTopos() []struct {
	name string
	topo Topology
} {
	return []struct {
		name string
		topo Topology
	}{
		{"mesh3x3", Mesh{W: 3, H: 3, Conc: 2, Lanes: 1}},
		{"fbfly3x3", FlattenedButterfly{W: 3, H: 3, Conc: 2, Lanes: 1}},
		{"dragonfly5x2", Dragonfly{Groups: 5, GroupSize: 2, GlobalPorts: 2, Conc: 2, Lanes: 1}},
	}
}

func baseConfig(t Topology) Config {
	return Config{
		Topo:    t,
		Traffic: traffic.Uniform{Radix: t.Nodes() * t.Concentration()},
		Load:    0.3,
		Warmup:  500,
		Measure: 4000,
		Seed:    7,
		Check:   true,
	}
}

func TestRunBasics(t *testing.T) {
	for _, tc := range testTopos() {
		for _, r := range []Routing{Minimal, Valiant} {
			t.Run(tc.name+"/"+r.String(), func(t *testing.T) {
				cfg := baseConfig(tc.topo)
				cfg.Routing = r
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Delivered == 0 {
					t.Fatal("nothing delivered")
				}
				if res.AvgHops < 1 {
					t.Fatalf("AvgHops = %v, want >= 1", res.AvgHops)
				}
				if res.DeadFlows != 0 {
					t.Fatalf("DeadFlows = %d without faults", res.DeadFlows)
				}
			})
		}
	}
}

func TestSameSeedReproduces(t *testing.T) {
	for _, tc := range testTopos() {
		cfg := baseConfig(tc.topo)
		cfg.Routing = Valiant
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed diverged:\n%+v\n%+v", tc.name, a, b)
		}
	}
}

// TestLoadSweepWorkerInvariance pins the determinism contract: a sweep
// produces byte-identical results at any worker count.
func TestLoadSweepWorkerInvariance(t *testing.T) {
	loads := []float64{0.1, 0.4, 0.7, 1.0}
	for _, tc := range testTopos() {
		cfg := baseConfig(tc.topo)
		cfg.Measure = 2000
		want, err := LoadSweep(cfg, loads, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := LoadSweep(cfg, loads, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: workers=%d diverged from serial", tc.name, workers)
			}
		}
	}
}

// TestObsDoesNotPerturb pins the nil-safe observability contract: an
// attached observer changes no simulated behaviour, and the fabric's
// counters and per-hop latency histograms actually fill.
func TestObsDoesNotPerturb(t *testing.T) {
	cfg := baseConfig(Mesh{W: 3, H: 3, Conc: 2, Lanes: 1})
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Trace:   obs.NewRecorder(1 << 16),
		Tele:    tele.NewSampler(64, 0),
	}
	cfg.Obs = o
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer perturbed the run:\n%+v\n%+v", plain, observed)
	}
	if got := o.Counter("fabric.packets.delivered").Value(); got == 0 {
		t.Fatal("fabric.packets.delivered counter empty")
	}
	if o.Histogram("fabric.latency.cycles", 4, 4096).Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	// Multi-hop traffic on a 3×3 mesh spans several hop counts; at
	// least the 2-hop histogram must exist and hold samples.
	if o.Histogram("fabric.latency.hops=02", 4, 4096).Count() == 0 {
		t.Fatal("per-hop-count latency histogram empty")
	}
	if len(o.Trace.Events()) == 0 {
		t.Fatal("trace recorder empty")
	}
	if o.Tele.Windows() == 0 {
		t.Fatal("telemetry sampler closed no windows")
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(Mesh{W: 2, H: 2, Conc: 2, Lanes: 1})
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no topology", func(c *Config) { c.Topo = nil }},
		{"no traffic", func(c *Config) { c.Traffic = nil }},
		{"negative load", func(c *Config) { c.Load = -1 }},
		{"bad mesh", func(c *Config) { c.Topo = Mesh{W: 0, H: 2, Conc: 2, Lanes: 1} }},
		{"1x1 with lanes", func(c *Config) { c.Topo = Mesh{W: 1, H: 1, Conc: 2, Lanes: 1} }},
		{"too few VCs for valiant", func(c *Config) {
			c.Topo = Dragonfly{Groups: 3, GroupSize: 2, GlobalPorts: 1, Conc: 2, Lanes: 1}
			c.Routing = Valiant
			c.VCs = 2
		}},
		{"unbalanced dragonfly", func(c *Config) {
			c.Topo = Dragonfly{Groups: 4, GroupSize: 2, GlobalPorts: 2, Conc: 2, Lanes: 1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
	// The degenerate single-switch mesh is explicitly legal.
	cfg := good
	cfg.Topo = Mesh{W: 1, H: 1, Conc: 4, Lanes: 0}
	cfg.Traffic = traffic.Uniform{Radix: 4}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("1x1 mesh rejected: %v", err)
	}
}
