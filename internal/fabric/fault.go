package fabric

import (
	"fmt"
	"sort"

	"github.com/reprolab/hirise/internal/pool"
)

// FaultSpec describes a static fabric fail-set: FailLinks unidirectional
// link lanes and FailRouters whole routers, failed from cycle 0 for the
// whole run (dynamic fault timelines remain the single-switch fault
// plane's business — a fabric fail-set models the post-repair steady
// state a degradation curve sweeps over).
//
// Selection is rank-based like internal/fault.Spec: every candidate gets
// a deterministic priority derived from Seed, and a spec selects the
// first K in rank order — so the fail-set for K faults is a strict
// subset of the fail-set for K' > K faults. Nested sets are what make
// degradation curves meaningful: throughput measured over them is
// monotone in the failure count by construction, not by luck.
//
// Link faults respect a per-bundle budget of LaneCount-1: the parallel
// lanes of one logical hop are a redundancy bundle, and at least one
// lane per bundle always survives, so minimal routes stay connected and
// the fabric reroutes around every link fault. Router faults carry no
// such guarantee — flows whose every route dies are retired as dead
// flows and reported in Result.DeadFlows.
type FaultSpec struct {
	// Seed drives the rank ordering; specs with equal seeds produce
	// nested sets across fault counts.
	Seed uint64
	// FailLinks is the number of unidirectional link lanes to fail.
	FailLinks int
	// FailRouters is the number of routers to fail-stop.
	FailRouters int
}

// FaultSet is a built, immutable fail-set; safe to share across
// concurrent runs.
type FaultSet struct {
	nodes, radix, conc int
	shape              string // topology fingerprint, e.g. "fabric.Mesh{W:3 ...}"
	link               []bool // indexed node*radix+out
	router             []bool
	links, routers     int
}

// Build ranks the topology's lanes and routers and selects the spec's
// fail-set. It errors when the spec asks for more faults than the
// budget allows: at most LaneCount-1 lanes per bundle, and at most
// Nodes-1 routers (a fabric with every router dead is not degraded, it
// is absent).
func (s FaultSpec) Build(t Topology) (*FaultSet, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	if s.FailLinks < 0 || s.FailRouters < 0 {
		return nil, fmt.Errorf("fabric: negative fault count in %+v", s)
	}
	nodes, radix, conc := t.Nodes(), t.Radix(), t.Concentration()
	fs := &FaultSet{
		nodes: nodes, radix: radix, conc: conc,
		shape:  fmt.Sprintf("%T%+v", t, t),
		link:   make([]bool, nodes*radix),
		router: make([]bool, nodes),
	}
	if s.FailLinks > 0 {
		lanes := t.LaneCount()
		if lanes < 2 {
			return nil, fmt.Errorf("fabric: cannot fail links on a %d-lane topology: the per-bundle budget of lanes-1 is zero", lanes)
		}
		type ranked struct {
			prio uint64
			id   int // node*radix+out
		}
		var cands []ranked
		ns := pool.StringID("fabric/links")
		for node := 0; node < nodes; node++ {
			for out := conc; out < radix; out++ {
				if !t.wired(node, out) {
					continue
				}
				id := node*radix + out
				cands = append(cands, ranked{pool.SeedFor(s.Seed, ns, uint64(id)), id})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].prio != cands[j].prio {
				return cands[i].prio < cands[j].prio
			}
			return cands[i].id < cands[j].id
		})
		budget := make(map[int]int) // bundle -> lanes already failed
		taken := 0
		for _, c := range cands {
			if taken == s.FailLinks {
				break
			}
			node, out := c.id/radix, c.id%radix
			b := bundleOf(t, node, out)
			if budget[b] >= lanes-1 {
				continue
			}
			budget[b]++
			fs.link[c.id] = true
			taken++
		}
		if taken < s.FailLinks {
			return nil, fmt.Errorf("fabric: %d link faults exceed the bundle budget (max %d)", s.FailLinks, taken)
		}
		fs.links = taken
	}
	if s.FailRouters > 0 {
		if s.FailRouters >= nodes {
			return nil, fmt.Errorf("fabric: %d router faults on a %d-router fabric", s.FailRouters, nodes)
		}
		type ranked struct {
			prio uint64
			id   int
		}
		cands := make([]ranked, nodes)
		ns := pool.StringID("fabric/routers")
		for node := 0; node < nodes; node++ {
			cands[node] = ranked{pool.SeedFor(s.Seed, ns, uint64(node)), node}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].prio != cands[j].prio {
				return cands[i].prio < cands[j].prio
			}
			return cands[i].id < cands[j].id
		})
		for i := 0; i < s.FailRouters; i++ {
			fs.router[cands[i].id] = true
		}
		fs.routers = s.FailRouters
	}
	return fs, nil
}

// LinkFailed reports whether the lane behind output port out of node is
// failed.
func (f *FaultSet) LinkFailed(node, out int) bool {
	return f.link[node*f.radix+out]
}

// RouterFailed reports whether a router is fail-stopped.
func (f *FaultSet) RouterFailed(node int) bool {
	return f.router[node]
}

// Links and Routers report the fail-set's sizes.
func (f *FaultSet) Links() int   { return f.links }
func (f *FaultSet) Routers() int { return f.routers }

// compatible checks the set was built for this exact topology — not
// merely one with matching counts: a mesh and a flattened butterfly can
// share (nodes, radix, conc) yet wire their ports differently.
func (f *FaultSet) compatible(t Topology) error {
	if shape := fmt.Sprintf("%T%+v", t, t); f.shape != shape {
		return fmt.Errorf("fabric: fault set built for %s, topology is %s", f.shape, shape)
	}
	return nil
}
