package fabric

import (
	"testing"

	"github.com/reprolab/hirise/internal/traffic"
)

// TestFailSetsNest pins the rank-selection property degradation curves
// rest on: with one seed, the fail-set for K faults is a strict subset
// of the fail-set for any K' > K.
func TestFailSetsNest(t *testing.T) {
	topo := Mesh{W: 3, H: 3, Conc: 2, Lanes: 2}
	var prevLinks, prevRouters *FaultSet
	for _, k := range []int{1, 2, 4, 8} {
		fl, err := FaultSpec{Seed: 3, FailLinks: k}.Build(topo)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Links() != k {
			t.Fatalf("asked %d link faults, got %d", k, fl.Links())
		}
		fr, err := FaultSpec{Seed: 3, FailRouters: k}.Build(topo)
		if err != nil {
			t.Fatal(err)
		}
		if prevLinks != nil {
			for i, failed := range prevLinks.link {
				if failed && !fl.link[i] {
					t.Fatalf("link fail-sets not nested at id %d", i)
				}
			}
			for i, failed := range prevRouters.router {
				if failed && !fr.router[i] {
					t.Fatalf("router fail-sets not nested at id %d", i)
				}
			}
		}
		prevLinks, prevRouters = fl, fr
	}
}

// TestFailSetBudgets pins the guardrails: single-lane topologies admit
// no link faults, demand beyond lanes-1 per bundle errors instead of
// silently disconnecting the fabric, and whole-fabric router kills are
// rejected.
func TestFailSetBudgets(t *testing.T) {
	if _, err := (FaultSpec{Seed: 1, FailLinks: 1}).Build(Mesh{W: 3, H: 3, Conc: 2, Lanes: 1}); err == nil {
		t.Fatal("link fault on a 1-lane topology accepted")
	}
	// A 3×3 mesh with 2 lanes has 24 directed logical links and a
	// budget of lanes-1 = 1 lane each.
	topo := Mesh{W: 3, H: 3, Conc: 2, Lanes: 2}
	if _, err := (FaultSpec{Seed: 1, FailLinks: 24}).Build(topo); err != nil {
		t.Fatalf("budget-respecting fail-set rejected: %v", err)
	}
	if _, err := (FaultSpec{Seed: 1, FailLinks: 25}).Build(topo); err == nil {
		t.Fatal("over-budget link fail-set accepted")
	}
	if _, err := (FaultSpec{Seed: 1, FailRouters: 9}).Build(topo); err == nil {
		t.Fatal("all-routers fail-set accepted")
	}
	if _, err := (FaultSpec{Seed: 1, FailLinks: -1}).Build(topo); err == nil {
		t.Fatal("negative fault count accepted")
	}
	// A set built for one shape must not run on another.
	fs, err := FaultSpec{Seed: 1, FailLinks: 2}.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(FlattenedButterfly{W: 3, H: 3, Conc: 2, Lanes: 2})
	cfg.Faults = fs
	if _, err := Run(cfg); err == nil {
		t.Fatal("fault set from a different topology accepted")
	}
}

// TestLinkFaultsDegradeMonotonically runs the nested link fail-sets at
// a saturating load: delivered throughput must not increase as faults
// grow (within a small whisker for tie-break reshuffling), reroute must
// keep every flow alive (zero dead flows — the bundle budget guarantees
// connectivity), and the checker must stay green throughout.
func TestLinkFaultsDegradeMonotonically(t *testing.T) {
	topo := Mesh{W: 3, H: 3, Conc: 2, Lanes: 2}
	prev := int64(-1)
	for _, k := range []int{0, 4, 8, 16} {
		fs, err := FaultSpec{Seed: 3, FailLinks: k}.Build(topo)
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(topo)
		cfg.Load = 0.9
		cfg.Measure = 6000
		cfg.Faults = fs
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("FailLinks=%d: %v", k, err)
		}
		if res.DeadFlows != 0 {
			t.Fatalf("FailLinks=%d: %d dead flows despite the bundle budget", k, res.DeadFlows)
		}
		if res.Delivered == 0 {
			t.Fatalf("FailLinks=%d: nothing delivered", k)
		}
		if prev >= 0 && res.Delivered > prev+prev/50 {
			t.Fatalf("FailLinks=%d delivered %d > previous %d: degradation not monotone", k, res.Delivered, prev)
		}
		prev = res.Delivered
	}
}

// TestRouterFaultsRetireDeadFlows fail-stops routers: cores behind them
// go silent, uniform traffic toward them is retired as dead flows, the
// books still close (checker conservation), and the fabric keeps
// serving the surviving pairs.
func TestRouterFaultsRetireDeadFlows(t *testing.T) {
	topo := Mesh{W: 3, H: 3, Conc: 2, Lanes: 2}
	base := baseConfig(topo)
	base.Load = 0.5
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FaultSpec{Seed: 7, FailRouters: 2}.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Faults = fs
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("router faults silenced the whole fabric")
	}
	if res.Delivered >= healthy.Delivered {
		t.Fatalf("delivered %d with 2 dead routers >= healthy %d", res.Delivered, healthy.Delivered)
	}
	if res.DeadFlows == 0 {
		t.Fatal("uniform traffic toward dead routers produced no dead flows")
	}
}

// TestFaultedRunsStayDeterministic pins that a faulted run reproduces
// exactly, and that hotspot traffic aimed at a core behind a failed
// router drains entirely into dead flows without wedging the fabric.
func TestFaultedRunsStayDeterministic(t *testing.T) {
	topo := Dragonfly{Groups: 5, GroupSize: 2, GlobalPorts: 2, Conc: 2, Lanes: 2}
	fs, err := FaultSpec{Seed: 5, FailLinks: 4, FailRouters: 1}.Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(topo)
	cfg.Routing = Valiant
	cfg.Faults = fs
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("faulted run diverged:\n%+v\n%+v", a, b)
	}

	// Aim everything at a core behind the failed router.
	var deadRouter int
	for n := 0; n < topo.Nodes(); n++ {
		if fs.RouterFailed(n) {
			deadRouter = n
			break
		}
	}
	cfg.Traffic = traffic.Hotspot{Target: deadRouter * topo.Conc}
	cfg.Load = 0.8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d packets to a fail-stopped router", res.Delivered)
	}
	if res.DeadFlows == 0 {
		t.Fatal("hotspot at a dead router retired nothing")
	}
}
