// Package fabric composes switches into multi-router interconnection
// fabrics: every router is a full sim.Switch (Hi-Rise, crossbar, or any
// other implementation) wired by a pluggable Topology, with credit-based
// link-level flow control over bounded per-VC input buffers and
// deadlock freedom by virtual-channel ordering (dateline classes).
// It scales the paper's §VI-E kilo-core sketch from the side model in
// internal/noc into a first-class simulator with the same planes as
// internal/sim: faults, observability, telemetry, and deterministic
// parallel sweeps.
//
// Deadlock-freedom argument (see DESIGN.md §25): every topology assigns
// each hop a VC class that never decreases along a route, and routes
// within one class follow a total order on channels (dimension order
// for mesh and flattened butterfly, local→global→local for dragonfly),
// so the buffer wait-for graph is acyclic and bounded buffers cannot
// deadlock. Valiant routing gets the extra class(es) its detour needs.
package fabric

import (
	"fmt"

	"github.com/reprolab/hirise/internal/prng"
)

// Routing selects the route-computation policy.
type Routing uint8

const (
	// Minimal routes every packet along a shortest path.
	Minimal Routing = iota
	// Valiant routes via a random intermediate waypoint (node or, for
	// dragonfly, group) to balance adversarial traffic, falling back to
	// the minimal route whenever the detour would exceed twice the
	// minimal hop count.
	Valiant
)

// String names the routing policy as the CLI spells it.
func (r Routing) String() string {
	if r == Valiant {
		return "valiant"
	}
	return "min"
}

// ParseRouting maps the CLI spelling to a Routing.
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "min", "minimal":
		return Minimal, nil
	case "valiant":
		return Valiant, nil
	}
	return 0, fmt.Errorf("fabric: unknown routing %q (want min or valiant)", s)
}

// Topology defines the wiring of a switch-composed fabric: how many
// routers, how each router's ports split between attached cores and
// links, which output ports make minimal progress toward a destination
// router, and where each link lands. It also owns the topology-specific
// halves of the deadlock story (VC classes) and of Valiant routing
// (waypoints). Implementations live in this package; the interface has
// an unexported method because the invariant checker's guarantees are
// proved per topology.
type Topology interface {
	// Nodes returns the router count.
	Nodes() int
	// Concentration returns the cores attached to each router.
	Concentration() int
	// Radix returns each router's switch radix (concentration + links).
	Radix() int
	// LaneCount returns the parallel lanes per logical link; lanes of
	// one logical hop are the redundancy bundle the fault plane must
	// leave partially alive.
	LaneCount() int
	// RouteCandidates appends to dst the equivalent minimal-progress
	// output ports at node toward the dest router (multiple lanes of
	// the same logical hop). node != dest; local delivery is the
	// fabric's own business.
	RouteCandidates(dst []int, node, dest int) []int
	// LinkDest maps (node, link output port) to the neighbouring router
	// and the input port the packet arrives on.
	LinkDest(node, out int) (int, int)
	// MinimalHops returns the link-hop distance between two routers.
	MinimalHops(node, dest int) int
	// Classes returns how many VC classes the routing policy needs for
	// deadlock freedom; Config.VCs must be >= this and is split into
	// equal per-class bands.
	Classes(r Routing) int
	// ClassAfter returns a packet's VC class after crossing (node,out),
	// given its class before: dragonfly bumps the class on every global
	// hop, grid topologies never bump on links.
	ClassAfter(class, node, out int) int
	// ViaBump is the class increment a Valiant packet takes on reaching
	// its waypoint: 1 for grid topologies (phase dateline), 0 for
	// dragonfly (the global-hop bumps already separate the phases).
	ViaBump() int
	// ValiantVia draws the Valiant waypoint for a src->dst packet (a
	// router for grid topologies, a group for dragonfly) from the
	// source's private stream. A negative waypoint means "route
	// minimally": the draw landed on an endpoint, or the detour would
	// exceed twice the minimal hop count.
	ValiantVia(src, dst int, rng *prng.Source) int
	// AtVia reports whether node satisfies the waypoint.
	AtVia(node, via int) bool
	// ViaCandidates appends the minimal-progress ports toward the
	// waypoint (phase-0 routing; AtVia(node,via) must be false).
	ViaCandidates(dst []int, node, via int) []int

	// wired reports whether a link output port actually carries a link:
	// mesh edge routers have dangling direction ports that routing never
	// uses, and the fault plane must not waste fail-set budget on them.
	wired(node, out int) bool

	validate() error
}

// bundleOf identifies the logical-link redundancy bundle of (node,out):
// all lanes of one logical hop share a bundle. Lane ports of a logical
// link are contiguous, so the bundle is named by its first lane port.
func bundleOf(t Topology, node, out int) int {
	conc := t.Concentration()
	base := conc + ((out-conc)/t.LaneCount())*t.LaneCount()
	return node*t.Radix() + base
}

// Direction indexes a mesh neighbour.
const (
	east = iota
	west
	north
	south
	numDirs
)

func opposite(dir int) int {
	switch dir {
	case east:
		return west
	case west:
		return east
	case north:
		return south
	default:
		return north
	}
}

// Mesh is a W×H 2D mesh with XY dimension-ordered routing and Lanes
// parallel links per direction — the paper's Fig 13 shape, promoted
// from internal/noc. XY order within a VC class keeps the buffer
// dependency graph acyclic; Valiant adds a second class at the
// waypoint dateline (XY to the via in class 0, XY to the destination
// in class 1).
//
// The degenerate 1×1 mesh with Lanes 0 is a single switch with no
// links; it exists so a 1-node fabric can reproduce internal/sim
// byte-for-byte (see TestOneNodeFabricMatchesSim).
type Mesh struct {
	W, H  int
	Conc  int
	Lanes int
}

// Nodes returns the router count.
func (m Mesh) Nodes() int { return m.W * m.H }

// Concentration returns cores per router.
func (m Mesh) Concentration() int { return m.Conc }

// Radix returns the per-router switch radix.
func (m Mesh) Radix() int { return m.Conc + numDirs*m.Lanes }

// LaneCount returns the lanes per direction.
func (m Mesh) LaneCount() int { return m.Lanes }

// dir returns the XY dimension-ordered direction from node toward dest.
func (m Mesh) dir(node, dest int) int {
	x, y := node%m.W, node/m.W
	dx, dy := dest%m.W, dest/m.W
	switch {
	case dx > x:
		return east
	case dx < x:
		return west
	case dy < y:
		return north
	default:
		return south
	}
}

// RouteCandidates implements Topology: X first, then Y.
func (m Mesh) RouteCandidates(dst []int, node, dest int) []int {
	dir := m.dir(node, dest)
	for lane := 0; lane < m.Lanes; lane++ {
		dst = append(dst, m.Conc+dir*m.Lanes+lane)
	}
	return dst
}

// LinkDest implements Topology: mesh links land on the mirrored input
// port of the adjacent router.
func (m Mesh) LinkDest(node, out int) (int, int) {
	dir := (out - m.Conc) / m.Lanes
	lane := (out - m.Conc) % m.Lanes
	var nb int
	switch dir {
	case east:
		nb = node + 1
	case west:
		nb = node - 1
	case north:
		nb = node - m.W
	default:
		nb = node + m.W
	}
	return nb, m.Conc + opposite(dir)*m.Lanes + lane
}

// MinimalHops implements Topology: Manhattan distance.
func (m Mesh) MinimalHops(node, dest int) int {
	x, y := node%m.W, node/m.W
	dx, dy := dest%m.W, dest/m.W
	return abs(dx-x) + abs(dy-y)
}

// Classes implements Topology: XY needs one class, Valiant's two XY
// phases need one each.
func (m Mesh) Classes(r Routing) int {
	if r == Valiant {
		return 2
	}
	return 1
}

// ClassAfter implements Topology: mesh links never bump the class.
func (m Mesh) ClassAfter(class, _, _ int) int { return class }

// ViaBump implements Topology: the waypoint is the phase dateline.
func (m Mesh) ViaBump() int { return 1 }

// ValiantVia implements Topology: a uniform router, minimal fallback
// when the draw hits an endpoint or breaks the 2× hop bound.
func (m Mesh) ValiantVia(src, dst int, rng *prng.Source) int {
	via := rng.Intn(m.Nodes())
	if via == src || via == dst {
		return -1
	}
	if m.MinimalHops(src, via)+m.MinimalHops(via, dst) > 2*m.MinimalHops(src, dst) {
		return -1
	}
	return via
}

// AtVia implements Topology.
func (m Mesh) AtVia(node, via int) bool { return node == via }

// ViaCandidates implements Topology.
func (m Mesh) ViaCandidates(dst []int, node, via int) []int {
	return m.RouteCandidates(dst, node, via)
}

// wired implements Topology: edge routers' outward-facing direction
// ports dangle.
func (m Mesh) wired(node, out int) bool {
	if m.Lanes == 0 {
		return false
	}
	x, y := node%m.W, node/m.W
	switch (out - m.Conc) / m.Lanes {
	case east:
		return x < m.W-1
	case west:
		return x > 0
	case north:
		return y > 0
	default:
		return y < m.H-1
	}
}

func (m Mesh) validate() error {
	if m.W == 1 && m.H == 1 {
		if m.Conc >= 1 && m.Lanes == 0 {
			return nil // degenerate single-switch fabric
		}
		return fmt.Errorf("fabric: bad mesh %+v: a 1x1 mesh is a single switch and takes Lanes 0", m)
	}
	if m.W < 1 || m.H < 1 || m.Conc < 1 || m.Lanes < 1 {
		return fmt.Errorf("fabric: bad mesh %+v", m)
	}
	return nil
}

// FlattenedButterfly is a W×H grid where every router links directly to
// every other router in its row and in its column: any destination is
// at most two link hops away (row then column, dimension ordered —
// promoted from internal/noc). Valiant adds a second class at the
// waypoint dateline, like the mesh.
//
// Port layout per router: Conc local ports, then (W-1)*Lanes row links
// (to the other columns in ascending x order, skipping self), then
// (H-1)*Lanes column links (ascending y, skipping self).
type FlattenedButterfly struct {
	W, H  int
	Conc  int
	Lanes int
}

// Nodes returns the router count.
func (f FlattenedButterfly) Nodes() int { return f.W * f.H }

// Concentration returns cores per router.
func (f FlattenedButterfly) Concentration() int { return f.Conc }

// Radix returns the per-router switch radix.
func (f FlattenedButterfly) Radix() int {
	return f.Conc + (f.W-1+f.H-1)*f.Lanes
}

// LaneCount returns the lanes per logical link.
func (f FlattenedButterfly) LaneCount() int { return f.Lanes }

// rowPort returns the first lane port toward column tx (tx != own x).
func (f FlattenedButterfly) rowPort(x, tx int) int {
	idx := tx
	if tx > x {
		idx--
	}
	return f.Conc + idx*f.Lanes
}

// colPort returns the first lane port toward row ty (ty != own y).
func (f FlattenedButterfly) colPort(y, ty int) int {
	idx := ty
	if ty > y {
		idx--
	}
	return f.Conc + (f.W-1)*f.Lanes + idx*f.Lanes
}

// RouteCandidates implements Topology: row hop first, then column hop.
func (f FlattenedButterfly) RouteCandidates(dst []int, node, dest int) []int {
	x, y := node%f.W, node/f.W
	dx, dy := dest%f.W, dest/f.W
	var base int
	if dx != x {
		base = f.rowPort(x, dx)
	} else {
		base = f.colPort(y, dy)
	}
	for lane := 0; lane < f.Lanes; lane++ {
		dst = append(dst, base+lane)
	}
	return dst
}

// LinkDest implements Topology. Row links land on the neighbour's row
// port pointing back; column links likewise.
func (f FlattenedButterfly) LinkDest(node, out int) (int, int) {
	x, y := node%f.W, node/f.W
	rel := out - f.Conc
	lane := rel % f.Lanes
	group := rel / f.Lanes
	if group < f.W-1 { // row link
		tx := group
		if tx >= x {
			tx++
		}
		nb := y*f.W + tx
		return nb, f.rowPort(tx, x) + lane
	}
	ty := group - (f.W - 1)
	if ty >= y {
		ty++
	}
	nb := ty*f.W + x
	return nb, f.colPort(ty, y) + lane
}

// MinimalHops implements Topology: one hop per differing dimension.
func (f FlattenedButterfly) MinimalHops(node, dest int) int {
	x, y := node%f.W, node/f.W
	dx, dy := dest%f.W, dest/f.W
	h := 0
	if dx != x {
		h++
	}
	if dy != y {
		h++
	}
	return h
}

// Classes implements Topology: like the mesh.
func (f FlattenedButterfly) Classes(r Routing) int {
	if r == Valiant {
		return 2
	}
	return 1
}

// ClassAfter implements Topology: links never bump the class.
func (f FlattenedButterfly) ClassAfter(class, _, _ int) int { return class }

// ViaBump implements Topology.
func (f FlattenedButterfly) ViaBump() int { return 1 }

// ValiantVia implements Topology: a uniform router under the 2× bound.
func (f FlattenedButterfly) ValiantVia(src, dst int, rng *prng.Source) int {
	via := rng.Intn(f.Nodes())
	if via == src || via == dst {
		return -1
	}
	if f.MinimalHops(src, via)+f.MinimalHops(via, dst) > 2*f.MinimalHops(src, dst) {
		return -1
	}
	return via
}

// AtVia implements Topology.
func (f FlattenedButterfly) AtVia(node, via int) bool { return node == via }

// ViaCandidates implements Topology.
func (f FlattenedButterfly) ViaCandidates(dst []int, node, via int) []int {
	return f.RouteCandidates(dst, node, via)
}

// wired implements Topology: skip-self indexing leaves no dangling port.
func (f FlattenedButterfly) wired(_, _ int) bool { return true }

func (f FlattenedButterfly) validate() error {
	if f.W < 2 || f.H < 1 || f.Conc < 1 || f.Lanes < 1 {
		return fmt.Errorf("fabric: bad flattened butterfly %+v", f)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
