package fabric

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

// propTopos are the instances the differential properties sweep
// exhaustively; the fuzz harness explores the parameter space beyond.
func propTopos() []struct {
	name string
	topo Topology
} {
	return []struct {
		name string
		topo Topology
	}{
		{"mesh4x3", Mesh{W: 4, H: 3, Conc: 2, Lanes: 2}},
		{"mesh1xN", Mesh{W: 1, H: 5, Conc: 1, Lanes: 1}},
		{"fbfly4x2", FlattenedButterfly{W: 4, H: 2, Conc: 2, Lanes: 2}},
		{"dragonfly3x2", Dragonfly{Groups: 3, GroupSize: 2, GlobalPorts: 1, Conc: 2, Lanes: 1}},
		{"dragonfly9x4", Dragonfly{Groups: 9, GroupSize: 4, GlobalPorts: 2, Conc: 2, Lanes: 2}},
	}
}

// bfsDist is the differential reference: shortest hop distances from
// src over the wired LinkDest edges, independent of RouteCandidates.
func bfsDist(t Topology, src int) []int {
	dist := make([]int, t.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for out := t.Concentration(); out < t.Radix(); out++ {
			if !t.wired(n, out) {
				continue
			}
			nb, _ := t.LinkDest(n, out)
			if dist[nb] < 0 {
				dist[nb] = dist[n] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// exactMetric reports whether the topology's routing metric equals the
// true shortest-path distance. Grid topologies always route on true
// shortest paths. The dragonfly's canonical minimal route (local,
// direct group-to-group global, local) is the textbook "minimal" but
// with GlobalPorts > 1 it can exceed the BFS distance: two groups'
// global links may land on one shared router of a third group, giving
// a 2-hop path the 3-hop canonical route ignores. With GlobalPorts == 1
// any detour through a third group needs two extra local hops, so the
// canonical route is the true shortest path.
func exactMetric(topo Topology) bool {
	d, ok := topo.(Dragonfly)
	return !ok || d.GlobalPorts == 1
}

// checkShortestPaths asserts, for one (src,dst) pair against the BFS
// reference: MinimalHops never undercuts the true shortest distance
// (and equals it whenever the routing metric is exact), and every route
// candidate steps onto a router strictly one hop closer in the routing
// metric — so dimension-/hierarchy-ordered routing delivers in exactly
// MinimalHops hops.
func checkShortestPaths(t *testing.T, topo Topology, distToDst []int, src, dst int) {
	t.Helper()
	hops := topo.MinimalHops(src, dst)
	if hops < distToDst[src] {
		t.Fatalf("MinimalHops(%d,%d) = %d undercuts the BFS distance %d", src, dst, hops, distToDst[src])
	}
	if exactMetric(topo) && hops != distToDst[src] {
		t.Fatalf("MinimalHops(%d,%d) = %d, BFS says %d", src, dst, hops, distToDst[src])
	}
	cands := topo.RouteCandidates(nil, src, dst)
	if len(cands) == 0 {
		t.Fatalf("no route candidates %d -> %d", src, dst)
	}
	for _, o := range cands {
		if !topo.wired(src, o) {
			t.Fatalf("route %d -> %d offers dangling port %d", src, dst, o)
		}
		nb, _ := topo.LinkDest(src, o)
		got := 0
		if nb != dst {
			got = topo.MinimalHops(nb, dst)
		}
		if got != hops-1 {
			t.Fatalf("route %d -> %d via port %d lands on %d at metric distance %d, want %d",
				src, dst, o, nb, got, hops-1)
		}
	}
}

func TestRouteCandidatesOnShortestPaths(t *testing.T) {
	for _, tc := range propTopos() {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.topo
			for dst := 0; dst < topo.Nodes(); dst++ {
				dist := bfsDist(topo, dst) // symmetric links: dist to dst
				for src := 0; src < topo.Nodes(); src++ {
					if src == dst {
						continue
					}
					checkShortestPaths(t, topo, dist, src, dst)
				}
			}
		})
	}
}

// TestLinkDestMirror pins that links come in symmetric pairs: the
// reverse port at the far router leads exactly back. The credit
// protocol and the checker's reservation recomputation rely on it.
func TestLinkDestMirror(t *testing.T) {
	for _, tc := range propTopos() {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.topo
			for node := 0; node < topo.Nodes(); node++ {
				for out := topo.Concentration(); out < topo.Radix(); out++ {
					if !topo.wired(node, out) {
						continue
					}
					nb, inp := topo.LinkDest(node, out)
					if nb < 0 || nb >= topo.Nodes() || nb == node {
						t.Fatalf("LinkDest(%d,%d) = router %d out of range", node, out, nb)
					}
					if inp < topo.Concentration() || inp >= topo.Radix() {
						t.Fatalf("LinkDest(%d,%d) lands on non-link port %d", node, out, inp)
					}
					back, backPort := topo.LinkDest(nb, inp)
					if back != node || backPort != out {
						t.Fatalf("LinkDest(%d,%d) = (%d,%d) but the mirror leads to (%d,%d)",
							node, out, nb, inp, back, backPort)
					}
				}
			}
		})
	}
}

// valiantWalk follows the fabric's two-phase route computation from src
// to dst through waypoint via (exploring every candidate branch) and
// fails if any path exceeds the 2× minimal-hop bound ValiantVia
// promises, or revisits a (node, phase) state (a routing livelock).
func valiantWalk(t *testing.T, topo Topology, src, dst, via int) {
	t.Helper()
	bound := 2 * topo.MinimalHops(src, dst)
	type state struct{ node, phase int }
	seen := make(map[state]bool)
	var walk func(node, hops, phase int)
	walk = func(node, hops, phase int) {
		if node == dst { // delivery short-circuits the waypoint, like route()
			return
		}
		if hops >= bound {
			t.Fatalf("valiant %d -> %d via %d exceeds 2x bound %d at router %d", src, dst, via, bound, node)
		}
		st := state{node, phase}
		if seen[st] {
			t.Fatalf("valiant %d -> %d via %d revisits router %d in phase %d", src, dst, via, node, phase)
		}
		seen[st] = true
		var cands []int
		if phase == 0 {
			cands = topo.ViaCandidates(nil, node, via)
		} else {
			cands = topo.RouteCandidates(nil, node, dst)
		}
		if len(cands) == 0 {
			t.Fatalf("valiant %d -> %d via %d stuck at router %d phase %d", src, dst, via, node, phase)
		}
		visited := make(map[int]bool)
		for _, o := range cands {
			nb, _ := topo.LinkDest(node, o)
			if visited[nb] { // lanes of one bundle share the neighbour
				continue
			}
			visited[nb] = true
			p := phase
			if p == 0 && topo.AtVia(nb, via) {
				p = 1
			}
			walk(nb, hops+1, p)
		}
	}
	phase := 0
	if topo.AtVia(src, via) {
		phase = 1
	}
	walk(src, 0, phase)
}

func TestValiantWithinTwiceMinimal(t *testing.T) {
	for _, tc := range propTopos() {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.topo
			rng := prng.New(11)
			for dst := 0; dst < topo.Nodes(); dst++ {
				for src := 0; src < topo.Nodes(); src++ {
					if src == dst {
						continue
					}
					for draw := 0; draw < 8; draw++ {
						via := topo.ValiantVia(src, dst, rng)
						if via < 0 {
							continue // minimal fallback, nothing to walk
						}
						valiantWalk(t, topo, src, dst, via)
					}
				}
			}
		})
	}
}

// FuzzRouteCandidatesShortestPath explores the topology parameter space
// beyond the fixed instances: for an arbitrary valid topology and
// router pair, the shortest-path differential property and the Valiant
// 2× bound must hold.
func FuzzRouteCandidatesShortestPath(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint8(2), uint8(1), uint8(1), uint16(0), uint16(5), uint64(1))
	f.Add(uint8(1), uint8(1), uint8(0), uint8(0), uint8(1), uint16(3), uint16(4), uint64(2))
	f.Add(uint8(2), uint8(3), uint8(1), uint8(1), uint8(0), uint16(7), uint16(30), uint64(3))
	f.Fuzz(func(t *testing.T, kind, a, b, c, d uint8, src, dst uint16, seed uint64) {
		var topo Topology
		switch kind % 3 {
		case 0:
			topo = Mesh{W: 1 + int(a)%4, H: 1 + int(b)%4, Conc: 1 + int(c)%2, Lanes: 1 + int(d)%2}
			if topo.(Mesh).W == 1 && topo.(Mesh).H == 1 {
				t.Skip("degenerate mesh has no routes")
			}
		case 1:
			topo = FlattenedButterfly{W: 2 + int(a)%3, H: 1 + int(b)%3, Conc: 1 + int(c)%2, Lanes: 1 + int(d)%2}
		default:
			gs, h := 1+int(a)%4, 1+int(b)%2
			topo = Dragonfly{Groups: gs*h + 1, GroupSize: gs, GlobalPorts: h, Conc: 1 + int(c)%2, Lanes: 1 + int(d)%2}
		}
		if err := topo.validate(); err != nil {
			t.Skip(err)
		}
		s, e := int(src)%topo.Nodes(), int(dst)%topo.Nodes()
		if s == e {
			t.Skip("same router")
		}
		checkShortestPaths(t, topo, bfsDist(topo, e), s, e)
		rng := prng.New(seed | 1)
		for draw := 0; draw < 4; draw++ {
			if via := topo.ValiantVia(s, e, rng); via >= 0 {
				valiantWalk(t, topo, s, e, via)
			}
		}
	})
}
