// Package fault is the deterministic fault-injection plane for the
// switch stack. A Spec describes a fault campaign statistically — how
// many permanent resource failures, what transient outage rate — and
// Build expands it into a Plan: a concrete, sorted schedule of per-
// resource fault events. Every random draw derives from
// (seed, campaign, kind, resource) via pool.SeedFor's splitmix64
// chaining, so a plan depends only on its spec, never on iteration or
// scheduling order, and two runs of the same campaign fail the same
// resources at the same cycles on any machine.
//
// Two fault classes with distinct semantics:
//
//   - Permanent faults (Repair < 0) are fail-stop: the Injector calls
//     the switch's Fail* API at the onset cycle, the resource is masked
//     out of arbitration from then on, and any connection it carries
//     drains normally first. No flit is ever lost to a permanent fault.
//
//   - Transient channel faults (Repair >= 0) are lossy-link outages:
//     the switch is NOT told — it keeps granting over the channel — and
//     the simulator drops every flit that crosses the channel during
//     [Onset, Repair), leaving recovery to the source's retransmission
//     protocol (see internal/sim). This models a TSV burst error, where
//     the wires glitch but the arbiter has no knowledge of it.
//
//   - Transient port/crosspoint faults are fail-stop windows: Fail* at
//     onset, Restore* at repair.
package fault

import (
	"fmt"
	"math"
	"sort"

	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

// Kind identifies the resource class a fault strikes.
type Kind uint8

const (
	// Channel is a layer-to-layer channel, identified by its global
	// L2LC id (see topo.Config.L2LCID). Hi-Rise switches only.
	Channel Kind = iota
	// Input is an input port, identified by its global port id.
	Input
	// Output is a final output port, identified by its global port id.
	Output
	// Crosspoint is one crossbar cross-point, identified as
	// in*radix + out. Flat crossbars only.
	Crosspoint

	numKinds = iota
)

var kindNames = [numKinds]string{"channel", "input", "output", "crosspoint"}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault event on one resource.
type Fault struct {
	// Kind is the resource class; ID identifies the resource within it.
	Kind Kind
	ID   int
	// Onset is the cycle the fault strikes (inclusive).
	Onset int64
	// Repair is the cycle the fault heals (exclusive), or negative for a
	// permanent fault. Transient Channel faults are lossy outages;
	// transient Input/Output/Crosspoint faults are fail-stop windows.
	Repair int64
}

// Permanent reports whether the fault never heals.
func (f Fault) Permanent() bool { return f.Repair < 0 }

func (f Fault) validate() error {
	switch {
	case f.Kind >= numKinds:
		return fmt.Errorf("fault: unknown kind %d", f.Kind)
	case f.ID < 0:
		return fmt.Errorf("fault: negative resource id %d", f.ID)
	case f.Onset < 0:
		return fmt.Errorf("fault: negative onset %d", f.Onset)
	case f.Repair >= 0 && f.Repair <= f.Onset:
		return fmt.Errorf("fault: repair %d not after onset %d", f.Repair, f.Onset)
	}
	return nil
}

// Plan is an immutable, sorted fault schedule. A Plan is safe to share
// between concurrent simulations: each run binds its own Injector to
// walk it.
type Plan struct {
	faults []Fault
}

// NewPlan builds a plan from explicit fault events (tests, hand-crafted
// scenarios). The events are validated and sorted by (Onset, Kind, ID).
func NewPlan(faults ...Fault) (*Plan, error) {
	fs := append([]Fault(nil), faults...)
	for _, f := range fs {
		if err := f.validate(); err != nil {
			return nil, err
		}
	}
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Onset != b.Onset {
			return a.Onset < b.Onset
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Repair < b.Repair
	})
	return &Plan{faults: fs}, nil
}

// Empty reports whether the plan schedules no faults. Simulators treat
// a nil or empty plan as "fault plane off" and keep their fault-free
// hot path.
func (p *Plan) Empty() bool { return p == nil || len(p.faults) == 0 }

// Len returns the number of scheduled fault events.
func (p *Plan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// Faults returns a copy of the schedule in application order.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// Spec describes a fault campaign statistically; Build expands it into
// a concrete Plan. The zero Spec builds an empty plan.
type Spec struct {
	// Seed and Campaign root every random draw: resource r of kind k
	// draws from pool.SeedFor(Seed, pool.StringID(Campaign), k, r, purpose).
	// Seed 0 is remapped to 1, mirroring sim.Config.Defaults.
	Seed     uint64
	Campaign string
	// Cfg is the switch geometry the campaign targets. Channel faults
	// need a valid Hi-Rise geometry (Layers >= 2); port and crosspoint
	// faults only need Radix.
	Cfg topo.Config

	// FailChannels permanently fails this many L2LCs, chosen by ranked
	// hash so that the set for K faults is a subset of the set for K+1
	// (degradation curves degrade monotonically in expectation). The
	// selection never takes the last healthy channel of a layer pair —
	// core.FailChannel refuses that — so at most
	// Layers*(Layers-1)*(Channels-1) channels can fail.
	FailChannels int
	// FailInputs and FailOutputs permanently fail this many ports each.
	FailInputs, FailOutputs int
	// FailCrosspoints permanently fails this many crosspoints (flat
	// crossbars; id = in*radix+out).
	FailCrosspoints int
	// OnsetSpread staggers permanent-fault onsets uniformly over
	// [0, OnsetSpread]; 0 strikes them all at cycle 0.
	OnsetSpread int64

	// TransientRate is the per-channel per-cycle probability that a
	// lossy outage begins (0 disables transient faults; must be < 1).
	TransientRate float64
	// RepairMean is the mean outage length in cycles (default 64).
	RepairMean int64
	// Horizon bounds transient-outage onsets (default 60000 cycles,
	// one default warmup+measure window).
	Horizon int64
}

func (s Spec) seedFor(k Kind, id int, purpose uint64) uint64 {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	return pool.SeedFor(seed, pool.StringID(s.Campaign), uint64(k), uint64(id), purpose)
}

// rank orders resources for permanent-fault selection: lower hash fails
// first. Depending only on (seed, campaign, kind, id), the order — and
// therefore the failed set for any count K — is stable across counts.
func (s Spec) rank(k Kind, id int) uint64 { return prng.New(s.seedFor(k, id, 0)).Uint64() }

// Build expands the spec into a concrete plan.
func (s Spec) Build() (*Plan, error) {
	if s.FailChannels < 0 || s.FailInputs < 0 || s.FailOutputs < 0 || s.FailCrosspoints < 0 {
		return nil, fmt.Errorf("fault: negative fault count")
	}
	if s.TransientRate < 0 || s.TransientRate >= 1 {
		if s.TransientRate != 0 {
			return nil, fmt.Errorf("fault: transient rate %v outside [0,1)", s.TransientRate)
		}
	}
	needChannels := s.FailChannels > 0 || s.TransientRate > 0
	if needChannels {
		if err := s.Cfg.Validate(); err != nil {
			return nil, fmt.Errorf("fault: channel faults need a valid geometry: %w", err)
		}
		if s.Cfg.Layers < 2 {
			return nil, fmt.Errorf("fault: channel faults need a layered switch (have %d layers)", s.Cfg.Layers)
		}
	}
	if (s.FailInputs > 0 || s.FailOutputs > 0 || s.FailCrosspoints > 0) && s.Cfg.Radix <= 0 {
		return nil, fmt.Errorf("fault: port faults need a positive radix")
	}

	var faults []Fault
	onset := func(k Kind, id int) int64 {
		if s.OnsetSpread <= 0 {
			return 0
		}
		return int64(prng.New(s.seedFor(k, id, 1)).Intn(int(s.OnsetSpread) + 1))
	}

	// Permanent channel faults, capped per layer pair.
	permCh := map[int]bool{}
	if s.FailChannels > 0 {
		max := s.Cfg.Layers * (s.Cfg.Layers - 1) * (s.Cfg.Channels - 1)
		if s.FailChannels > max {
			return nil, fmt.Errorf("fault: cannot fail %d channels without disconnecting a layer pair (max %d)", s.FailChannels, max)
		}
		ids := rankSelect(s, Channel, s.Cfg.NumL2LC())
		pairBudget := map[int]int{}
		taken := 0
		for _, cid := range ids {
			if taken == s.FailChannels {
				break
			}
			src, dst, _ := s.Cfg.L2LCSrcDst(cid)
			pair := src*s.Cfg.Layers + dst
			if pairBudget[pair] >= s.Cfg.Channels-1 {
				continue
			}
			pairBudget[pair]++
			permCh[cid] = true
			faults = append(faults, Fault{Kind: Channel, ID: cid, Onset: onset(Channel, cid), Repair: -1})
			taken++
		}
	}

	// Permanent port and crosspoint faults.
	perm := func(k Kind, count, universe int) error {
		if count == 0 {
			return nil
		}
		if count > universe {
			return fmt.Errorf("fault: %d %v faults exceed the %d resources", count, k, universe)
		}
		for _, id := range rankSelect(s, k, universe)[:count] {
			faults = append(faults, Fault{Kind: k, ID: id, Onset: onset(k, id), Repair: -1})
		}
		return nil
	}
	if err := perm(Input, s.FailInputs, s.Cfg.Radix); err != nil {
		return nil, err
	}
	if err := perm(Output, s.FailOutputs, s.Cfg.Radix); err != nil {
		return nil, err
	}
	if err := perm(Crosspoint, s.FailCrosspoints, s.Cfg.Radix*s.Cfg.Radix); err != nil {
		return nil, err
	}

	// Transient lossy outages per healthy channel: outage onsets arrive
	// as a Bernoulli process (sampled via geometric gaps), lengths are
	// 1 + Exp(RepairMean) cycles.
	if s.TransientRate > 0 {
		repair := s.RepairMean
		if repair <= 0 {
			repair = 64
		}
		horizon := s.Horizon
		if horizon <= 0 {
			horizon = 60000
		}
		for cid := 0; cid < s.Cfg.NumL2LC(); cid++ {
			if permCh[cid] {
				continue // fail-stop already; nothing left to glitch
			}
			rng := prng.New(s.seedFor(Channel, cid, 2))
			for t := int64(0); ; {
				t += geometric(rng, s.TransientRate)
				if t >= horizon {
					break
				}
				dur := 1 + int64(rng.Exp(float64(repair)))
				faults = append(faults, Fault{Kind: Channel, ID: cid, Onset: t, Repair: t + dur})
				t += dur
			}
		}
	}

	return NewPlan(faults...)
}

// geometric samples the number of cycles until the next success of a
// Bernoulli(p) process by inverse transform (0 means "this cycle").
func geometric(rng *prng.Source, p float64) int64 {
	u := rng.Float64()
	g := math.Floor(math.Log1p(-u) / math.Log1p(-p))
	if g < 0 || math.IsNaN(g) {
		return 0
	}
	if g > 1<<40 {
		return 1 << 40
	}
	return int64(g)
}

// rankSelect returns all ids of a kind ordered by their selection rank.
func rankSelect(s Spec, k Kind, universe int) []int {
	type ranked struct {
		id   int
		rank uint64
	}
	rs := make([]ranked, universe)
	for id := 0; id < universe; id++ {
		rs[id] = ranked{id, s.rank(k, id)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].rank != rs[j].rank {
			return rs[i].rank < rs[j].rank
		}
		return rs[i].id < rs[j].id
	})
	ids := make([]int, universe)
	for i, r := range rs {
		ids[i] = r.id
	}
	return ids
}
