package fault

import (
	"reflect"
	"sync"
	"testing"

	"github.com/reprolab/hirise/internal/topo"
)

func spec(failCh int, rate float64) Spec {
	return Spec{
		Seed:          7,
		Campaign:      "test",
		Cfg:           topo.Default64(),
		FailChannels:  failCh,
		TransientRate: rate,
		Horizon:       5000,
	}
}

// TestBuildDeterministic pins the plane's core contract: the same spec
// builds the same plan, byte for byte, every time and on every
// goroutine.
func TestBuildDeterministic(t *testing.T) {
	want, err := spec(8, 0.001).Build()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	plans := make([]*Plan, 8)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i], _ = spec(8, 0.001).Build()
		}(i)
	}
	wg.Wait()
	for i, p := range plans {
		if !reflect.DeepEqual(p.Faults(), want.Faults()) {
			t.Fatalf("plan %d differs from serial build", i)
		}
	}
	if want.Empty() || want.Len() == 0 {
		t.Fatal("expected a non-empty plan")
	}
}

// TestSelectionNested asserts the ranked selection's monotonicity: the
// channels failed at count K are a subset of those failed at K+4, so
// degradation curves degrade by strictly adding faults.
func TestSelectionNested(t *testing.T) {
	failedSet := func(k int) map[int]bool {
		p, err := spec(k, 0).Build()
		if err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, f := range p.Faults() {
			set[f.ID] = true
		}
		return set
	}
	prev := failedSet(4)
	for _, k := range []int{8, 16, 32} {
		cur := failedSet(k)
		if len(cur) != k {
			t.Fatalf("count %d: %d channels failed", k, len(cur))
		}
		for id := range prev {
			if !cur[id] {
				t.Fatalf("channel %d failed at smaller count but not at %d", id, k)
			}
		}
		prev = cur
	}
}

// TestPairBudget asserts the selection never disconnects a layer pair,
// even at the maximum failable count.
func TestPairBudget(t *testing.T) {
	cfg := topo.Default64()
	max := cfg.Layers * (cfg.Layers - 1) * (cfg.Channels - 1)
	p, err := spec(max, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	failed := map[int]bool{}
	for _, f := range p.Faults() {
		failed[f.ID] = true
	}
	for src := 0; src < cfg.Layers; src++ {
		for dst := 0; dst < cfg.Layers; dst++ {
			if src == dst {
				continue
			}
			healthy := 0
			for ch := 0; ch < cfg.Channels; ch++ {
				if !failed[cfg.L2LCID(src, dst, ch)] {
					healthy++
				}
			}
			if healthy < 1 {
				t.Fatalf("layer pair %d->%d fully disconnected", src, dst)
			}
		}
	}
	if _, err := spec(max+1, 0).Build(); err == nil {
		t.Fatalf("failing %d channels must be refused", max+1)
	}
}

// TestTransientSchedule checks the lossy outages are well-formed:
// onsets inside the horizon, repairs after onsets, and no overlapping
// outages on one channel.
func TestTransientSchedule(t *testing.T) {
	p, err := spec(0, 0.002).Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("rate 0.002 over 5000 cycles and 48 channels produced no outage")
	}
	lastEnd := map[int]int64{}
	for _, f := range p.Faults() {
		if f.Permanent() {
			t.Fatalf("transient-only spec produced permanent fault %+v", f)
		}
		if f.Onset >= 5000 {
			t.Fatalf("outage onset %d beyond horizon", f.Onset)
		}
		if f.Repair <= f.Onset {
			t.Fatalf("outage %+v repairs before it starts", f)
		}
		if f.Onset < lastEnd[f.ID] {
			t.Fatalf("channel %d outages overlap at %d", f.ID, f.Onset)
		}
		lastEnd[f.ID] = f.Repair
	}
}

// fakeSwitch records the fault calls it receives.
type fakeSwitch struct {
	radix            int
	failed, restored []string
	refuseChannel    bool
}

func (f *fakeSwitch) Radix() int { return f.radix }
func (f *fakeSwitch) FailChannel(cid int) error {
	if f.refuseChannel {
		return errRefused
	}
	f.failed = append(f.failed, "ch")
	return nil
}
func (f *fakeSwitch) RestoreChannel(cid int) error { f.restored = append(f.restored, "ch"); return nil }
func (f *fakeSwitch) FailInput(in int) error       { f.failed = append(f.failed, "in"); return nil }
func (f *fakeSwitch) RestoreInput(in int) error    { f.restored = append(f.restored, "in"); return nil }
func (f *fakeSwitch) FailOutput(o int) error       { f.failed = append(f.failed, "out"); return nil }
func (f *fakeSwitch) RestoreOutput(o int) error    { f.restored = append(f.restored, "out"); return nil }

var errRefused = &refusedError{}

type refusedError struct{}

func (*refusedError) Error() string { return "refused" }

// TestInjectorApplies walks a hand-written plan and checks fail-stop
// calls, lossy windows, and repair ordering.
func TestInjectorApplies(t *testing.T) {
	p, err := NewPlan(
		Fault{Kind: Channel, ID: 3, Onset: 0, Repair: -1},  // permanent fail-stop
		Fault{Kind: Channel, ID: 5, Onset: 10, Repair: 20}, // lossy window
		Fault{Kind: Input, ID: 2, Onset: 5, Repair: 15},    // fail-stop window
	)
	if err != nil {
		t.Fatal(err)
	}
	sw := &fakeSwitch{radix: 8}
	inj := NewInjector(p, sw)
	if !inj.HasLossy() {
		t.Fatal("plan has a lossy outage, HasLossy says no")
	}
	for cycle := int64(0); cycle < 25; cycle++ {
		inj.Advance(cycle)
		wantLossy := cycle >= 10 && cycle < 20
		if inj.Lossy(5) != wantLossy {
			t.Fatalf("cycle %d: Lossy(5)=%v, want %v", cycle, inj.Lossy(5), wantLossy)
		}
		if inj.Lossy(3) {
			t.Fatalf("cycle %d: permanent fault reported lossy", cycle)
		}
	}
	if got, want := sw.failed, []string{"ch", "in"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("fail calls %v, want %v", got, want)
	}
	if got, want := sw.restored, []string{"in"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("restore calls %v, want %v", got, want)
	}
	st := inj.Stats()
	if st.FailEvents != 3 || st.RepairEvents != 2 || st.Skipped != 0 {
		t.Fatalf("stats %+v, want 3 fails / 2 repairs / 0 skipped", st)
	}
}

// TestInjectorSkips counts refused and uncapable applications instead
// of failing the run: a crossbar has no channels, and a switch may
// refuse to fail its last healthy channel.
func TestInjectorSkips(t *testing.T) {
	p, err := NewPlan(
		Fault{Kind: Channel, ID: 0, Onset: 0, Repair: -1},
		Fault{Kind: Crosspoint, ID: 9, Onset: 0, Repair: -1},
	)
	if err != nil {
		t.Fatal(err)
	}
	sw := &fakeSwitch{radix: 8, refuseChannel: true}
	inj := NewInjector(p, sw) // no CrosspointFaulter, channel refused
	inj.Advance(0)
	if st := inj.Stats(); st.Skipped != 2 || st.FailEvents != 0 {
		t.Fatalf("stats %+v, want 2 skipped", st)
	}
}

// TestNewPlanValidates rejects malformed fault events.
func TestNewPlanValidates(t *testing.T) {
	bad := []Fault{
		{Kind: numKinds, ID: 0, Onset: 0, Repair: -1},
		{Kind: Channel, ID: -1, Onset: 0, Repair: -1},
		{Kind: Channel, ID: 0, Onset: -1, Repair: -1},
		{Kind: Channel, ID: 0, Onset: 5, Repair: 5},
	}
	for _, f := range bad {
		if _, err := NewPlan(f); err == nil {
			t.Errorf("NewPlan(%+v) accepted", f)
		}
	}
}

// TestSharedPlanRace binds independent injectors to one shared plan
// from many goroutines — the sharing contract the load sweeps rely on.
// The race detector is the assertion.
func TestSharedPlanRace(t *testing.T) {
	p, err := spec(8, 0.001).Build()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inj := NewInjector(p, &fakeSwitch{radix: 64})
			for cycle := int64(0); cycle < 5000; cycle += 7 {
				inj.Advance(cycle)
				inj.Lossy(int(cycle) % 48)
			}
		}()
	}
	wg.Wait()
}
