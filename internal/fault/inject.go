package fault

import "sort"

// ChannelFaulter is the capability of switches with failable
// layer-to-layer channels (core.Switch).
type ChannelFaulter interface {
	FailChannel(cid int) error
	RestoreChannel(cid int) error
}

// PortFaulter is the capability of switches with failable input and
// output ports (core.Switch, crossbar.Switch).
type PortFaulter interface {
	FailInput(in int) error
	RestoreInput(in int) error
	FailOutput(out int) error
	RestoreOutput(out int) error
}

// CrosspointFaulter is the capability of switches with failable
// crosspoints (crossbar.Switch).
type CrosspointFaulter interface {
	FailCrosspoint(in, out int) error
	RestoreCrosspoint(in, out int) error
}

// Stats counts the injector's activity over a run.
type Stats struct {
	// FailEvents and RepairEvents count fault onsets and repairs applied
	// (lossy outages count in both: one onset, one repair).
	FailEvents, RepairEvents int64
	// Skipped counts events the bound switch could not apply: a missing
	// capability (e.g. channel faults on a flat crossbar) or a refused
	// call (e.g. failing the last healthy channel of a layer pair).
	Skipped int64
}

// edge is one half of a fault: its onset or its repair.
type edge struct {
	cycle int64
	fault Fault
	onset bool
}

// Injector replays a Plan against one switch instance, cycle by cycle.
// It is bound to a single simulation run and is not safe for concurrent
// use; share the Plan, not the Injector.
type Injector struct {
	edges []edge
	next  int

	lossy    []int32 // per channel id: active lossy outages
	hasLossy bool

	ch    ChannelFaulter
	pf    PortFaulter
	xf    CrosspointFaulter
	radix int

	stats Stats

	// Hook, when non-nil, observes every applied edge (sim routes it to
	// the trace recorder). It must not call back into the injector.
	Hook func(cycle int64, f Fault, repair bool)
}

// NewInjector binds a plan to a switch. The switch may implement any
// subset of the faulter capabilities; events it cannot apply are
// counted in Stats.Skipped. sw must provide Radix() (crosspoint ids
// decode as in*radix+out).
func NewInjector(p *Plan, sw interface{ Radix() int }) *Injector {
	inj := &Injector{radix: sw.Radix()}
	inj.ch, _ = sw.(ChannelFaulter)
	inj.pf, _ = sw.(PortFaulter)
	inj.xf, _ = sw.(CrosspointFaulter)

	maxLossy := -1
	for _, f := range p.Faults() {
		inj.edges = append(inj.edges, edge{cycle: f.Onset, fault: f, onset: true})
		if f.Permanent() {
			continue
		}
		inj.edges = append(inj.edges, edge{cycle: f.Repair, fault: f, onset: false})
		if f.Kind == Channel && f.ID > maxLossy {
			maxLossy = f.ID
		}
	}
	if maxLossy >= 0 {
		inj.lossy = make([]int32, maxLossy+1)
		inj.hasLossy = true
	}
	// Repairs apply before onsets within a cycle so that back-to-back
	// outages on one resource stay balanced.
	sort.SliceStable(inj.edges, func(i, j int) bool {
		a, b := inj.edges[i], inj.edges[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.onset != b.onset {
			return !a.onset
		}
		if a.fault.Kind != b.fault.Kind {
			return a.fault.Kind < b.fault.Kind
		}
		return a.fault.ID < b.fault.ID
	})
	return inj
}

// HasLossy reports whether the plan schedules any lossy channel outage;
// when false the simulator can skip the per-flit loss check entirely.
func (inj *Injector) HasLossy() bool { return inj.hasLossy }

// Advance applies every edge scheduled at or before cycle. Call it once
// per simulated cycle, before arbitration.
func (inj *Injector) Advance(cycle int64) {
	for inj.next < len(inj.edges) && inj.edges[inj.next].cycle <= cycle {
		e := inj.edges[inj.next]
		inj.next++
		inj.apply(e)
	}
}

func (inj *Injector) apply(e edge) {
	f := e.fault
	applied := true
	switch {
	case f.Kind == Channel && !f.Permanent():
		// Lossy outage: the switch is not informed.
		if e.onset {
			inj.lossy[f.ID]++
		} else {
			inj.lossy[f.ID]--
		}
	case f.Kind == Channel:
		applied = inj.ch != nil && call(e.onset, func() error { return inj.ch.FailChannel(f.ID) }, nil) == nil
	case f.Kind == Input:
		applied = inj.pf != nil && call(e.onset,
			func() error { return inj.pf.FailInput(f.ID) },
			func() error { return inj.pf.RestoreInput(f.ID) }) == nil
	case f.Kind == Output:
		applied = inj.pf != nil && call(e.onset,
			func() error { return inj.pf.FailOutput(f.ID) },
			func() error { return inj.pf.RestoreOutput(f.ID) }) == nil
	case f.Kind == Crosspoint:
		in, out := f.ID/inj.radix, f.ID%inj.radix
		applied = inj.xf != nil && call(e.onset,
			func() error { return inj.xf.FailCrosspoint(in, out) },
			func() error { return inj.xf.RestoreCrosspoint(in, out) }) == nil
	}
	if !applied {
		inj.stats.Skipped++
		return
	}
	if e.onset {
		inj.stats.FailEvents++
	} else {
		inj.stats.RepairEvents++
	}
	if inj.Hook != nil {
		inj.Hook(e.cycle, f, !e.onset)
	}
}

// call runs the onset or repair action; a nil repair action means the
// fault kind has no repair call (permanent faults never schedule one).
func call(onset bool, fail, restore func() error) error {
	if onset {
		return fail()
	}
	if restore == nil {
		return nil
	}
	return restore()
}

// Lossy reports whether channel cid is inside an active lossy outage.
func (inj *Injector) Lossy(cid int) bool {
	return inj.hasLossy && cid < len(inj.lossy) && inj.lossy[cid] > 0
}

// Stats returns the injector's event counters so far.
func (inj *Injector) Stats() Stats { return inj.stats }
