// Package leakcheck is a test helper that proves goroutines started by
// the code under test are released by the end of the test. Cancellation
// plumbing (internal/pool DoCtx, internal/serve job cancellation) exists
// precisely to free workers; these tests fail loudly if a cancelled job
// still holds any.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check snapshots the current goroutine set and registers a cleanup that
// fails the test if, after a settle period, goroutines started during
// the test are still running. Call it first thing in the test.
//
// The comparison is by stack identity, not by count: goroutines whose
// creation site already existed at snapshot time are ignored, as are
// well-known runtime/testing/net-internal goroutines that outlive tests
// by design.
func Check(t *testing.T) {
	t.Helper()
	before := interestingStacks()
	t.Cleanup(func() {
		// Give cancelled workers a grace period to unwind; poll so the
		// common case (everything already gone) stays fast.
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(leaked) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
				len(leaked), strings.Join(leaked, "\n---\n"))
		}
	})
}

// leakedSince returns the stacks of interesting goroutines whose
// creation signature was not present in the before set.
func leakedSince(before map[string]int) []string {
	var leaked []string
	now := interestingStacks()
	for sig, n := range now {
		if n > before[sig] {
			leaked = append(leaked, fmt.Sprintf("%dx %s", n-before[sig], sig))
		}
	}
	return leaked
}

// interestingStacks returns a multiset of goroutine signatures (first
// function frame plus creator frame), excluding goroutines that are
// expected to persist across tests.
func interestingStacks() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	sigs := map[string]int{}
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		lines := strings.Split(g, "\n")
		if len(lines) < 2 {
			continue
		}
		sig := lines[1] // top-of-stack function
		for _, l := range lines {
			if strings.HasPrefix(l, "created by ") {
				sig += " <- " + l
				break
			}
		}
		if ignored(g, sig) {
			continue
		}
		sigs[strings.TrimSpace(sig)]++
	}
	return sigs
}

func ignored(stack, sig string) bool {
	for _, p := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.tRunner",
		"runtime.goexit",
		"runtime/trace",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.ReadTrace",
		"signal.signal_recv",
		"leakcheck.interestingStacks",
		// net/http keeps idle HTTP/2 and keep-alive machinery alive
		// between tests; httptest servers close their listeners but the
		// shared transport persists.
		"net/http.(*persistConn)",
		"net/http.(*http2",
		"internal/poll.runtime_pollWait",
	} {
		if strings.Contains(stack, p) || strings.Contains(sig, p) {
			return true
		}
	}
	return false
}
