package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/cluster"
	"github.com/reprolab/hirise/internal/leakcheck"
	"github.com/reprolab/hirise/internal/serve"
	"github.com/reprolab/hirise/internal/store"
)

// node is one daemon of the chaos cluster: a serve.Server with its
// cluster peer layer, listening on a real TCP port so it can be killed
// (listener and connections torn down, in-flight jobs cancelled) and
// later restarted on the same address over the same store directory —
// the closest in-process stand-in for kill -9 plus supervisor restart.
type chaosNode struct {
	id    string
	addr  string
	dir   string
	peers []cluster.Peer

	srv  *serve.Server
	cl   *cluster.Cluster
	http *http.Server
	dead bool
}

// chaosClusterParams makes every resilience timescale test-sized:
// breakers trip after 2 failures and re-probe within tens of
// milliseconds, hedges fire at 25ms, and a dead peer costs at most
// ~600ms per fetch before the fetch degrades to local compute.
func chaosClusterParams(self string, peers []cluster.Peer) cluster.Config {
	return cluster.Config{
		Self:             self,
		Peers:            peers,
		AttemptTimeout:   500 * time.Millisecond,
		Retries:          1,
		RetryBackoff:     10 * time.Millisecond,
		HedgeDelay:       25 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		ProbeInterval:    50 * time.Millisecond,
		Seed:             1,
	}
}

// start brings the node up (or back up) on its fixed address.
func (n *chaosNode) start(t *testing.T) {
	t.Helper()
	st, err := store.Open(n.dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n.cl, err = cluster.New(chaosClusterParams(n.id, n.peers))
	if err != nil {
		t.Fatal(err)
	}
	n.srv, err = serve.New(serve.Config{
		Store: st, Cluster: n.cl, Workers: 2, SimWorkers: 1,
		TelemetryWindow: -1, HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	n.http = serve.NewHTTPServer("", n.srv.Handler(), serve.HTTPTimeouts{})
	go n.http.Serve(ln)
	n.dead = false
}

// kill tears the node down abruptly: connections die under the clients'
// feet and every in-flight job is cancelled, not finished.
func (n *chaosNode) kill(t *testing.T) {
	t.Helper()
	if n.dead {
		return
	}
	n.dead = true
	n.http.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Drain cancels all jobs immediately
	n.srv.Drain(ctx)
	n.cl.Close()
}

func (n *chaosNode) url() string { return "http://" + n.addr }

var computedRE = regexp.MustCompile(`(?m)^serve_jobs_computed (\d+)$`)

// computedCount scrapes serve_jobs_computed from the node's /metrics.
func computedCount(t *testing.T, n *chaosNode) int {
	t.Helper()
	resp, err := http.Get(n.url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := computedRE.FindSubmatch(body)
	if m == nil {
		t.Fatalf("node %s /metrics has no serve_jobs_computed", n.id)
	}
	v, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// breakerState reads one peer's breaker state as seen by node n.
func breakerState(t *testing.T, n *chaosNode, peer string) string {
	t.Helper()
	resp, err := http.Get(n.url() + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, p := range snap.Peers {
		if p.ID == peer {
			return p.State
		}
	}
	t.Fatalf("node %s reports no peer %s", n.id, peer)
	return ""
}

// submitAndFetch runs one spec through a node to completion and returns
// the result bytes and final status.
func submitAndFetch(t *testing.T, n *chaosNode, req serve.Request) ([]byte, serve.Status) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(n.url()+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("node %s rejected spec: HTTP %d", n.id, resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s on %s stuck in %s", st.ID, n.id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
		sresp, err := http.Get(n.url() + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(sresp.Body).Decode(&st)
		sresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.State != serve.Done {
		t.Fatalf("job %s on %s ended %s: %s", st.ID, n.id, st.State, st.Error)
	}
	rresp, err := http.Get(n.url() + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	data, err := io.ReadAll(rresp.Body)
	if err != nil || rresp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch on %s: HTTP %d, %v", n.id, rresp.StatusCode, err)
	}
	return data, st
}

// TestChaosKillPeerMidLoad is the cluster's survival exam. Three nodes
// serve a seeded open-loop burst; one node is killed cold mid-run and
// later restarted on the same address and store. The generator must
// land every request in a terminal state with zero failures and zero
// byte mismatches; afterwards the survivors' breakers must have closed
// again, resubmitting every spec to a rotated node must cause zero new
// computations, and cross-node artifacts must be byte-identical.
func TestChaosKillPeerMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs a few seconds of wall clock")
	}
	leakcheck.Check(t)

	// Fix the three addresses first so every node's membership (and the
	// restart) can refer to them statically.
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*chaosNode, 3)
	peers := make([]cluster.Peer, 3)
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		nodes[i] = &chaosNode{id: id, addr: addr, dir: t.TempDir()}
		peers[i] = cluster.Peer{ID: id, URL: "http://" + addr}
	}
	for _, n := range nodes {
		n.peers = peers
		n.start(t)
	}
	t.Cleanup(func() {
		for i := len(nodes) - 1; i >= 0; i-- {
			nodes[i].kill(t)
		}
	})

	const keyspace = 12
	lgCfg := Config{
		Targets:  []string{nodes[0].url(), nodes[1].url(), nodes[2].url()},
		Requests: 120, Rate: 300, Keyspace: keyspace, Radix: 8, Seed: 11,
		RequestTimeout: 60 * time.Second, PollInterval: 10 * time.Millisecond,
		MaxResubmits: 20, TelemetryWindow: 100 * time.Millisecond,
	}

	// Phase 1: fire the burst and kill n2 while arrivals are still
	// landing on it. The schedule spans ~400ms; the kill lands ~150ms
	// in, so both in-flight jobs and future submissions hit the corpse.
	done := make(chan *Report, 1)
	go func() {
		rep, err := Run(context.Background(), lgCfg)
		if err != nil {
			panic(err)
		}
		done <- rep
	}()
	time.Sleep(150 * time.Millisecond)
	nodes[1].kill(t)
	rep := <-done

	if !rep.Clean() || rep.Done == 0 {
		t.Fatalf("chaos run not clean: %+v", rep)
	}
	if rep.Done+rep.Cancelled+rep.TimedOut != rep.Requests {
		t.Fatalf("terminal accounting broken: %+v", rep)
	}
	if rep.Resubmits == 0 {
		t.Error("no failovers recorded — the kill was not felt; tighten the timing")
	}
	t.Logf("phase 1: %d done, %d resubmits, %d 429s, p99 %.3fs",
		rep.Done, rep.Resubmits, rep.Rejected429, rep.Latency.P99)

	// The survivors must have open breakers for the corpse...
	if s := breakerState(t, nodes[0], "n2"); s != "open" {
		t.Errorf("n1 sees n2 breaker %q after the kill, want open", s)
	}

	// ...and must heal after it returns: probes half-open the breaker,
	// the next successful fetch closes it.
	nodes[1].start(t)
	healed := func(state string) bool { return state != "open" }
	deadline := time.Now().Add(5 * time.Second)
	for _, n := range []*chaosNode{nodes[0], nodes[2]} {
		for !healed(breakerState(t, n, "n2")) {
			if time.Now().After(deadline) {
				t.Fatalf("%s still sees n2 open after restart", n.id)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Phase 2: every spec already lives somewhere in the cluster, so
	// resubmitting each one to a rotated node must be served from a
	// local or sibling cache — zero new computations anywhere — and the
	// artifacts must be byte-identical across nodes.
	before := 0
	for _, n := range nodes {
		before += computedCount(t, n)
	}
	// Per-node the store's singleflight makes double compute impossible;
	// across nodes it is suppressed by the peer fetch but not absolutely:
	// while the home node is dead, two survivors can miss the same key
	// concurrently, 404 each other, and both degrade to local compute.
	// That window is the price of "never block on a peer", so the
	// under-chaos audit allows a small residue; the strict zero-recompute
	// guarantee is asserted for the healed cluster below.
	if before > keyspace+3 {
		t.Errorf("phase 1 computed %d results for %d keys: double compute beyond the dead-home race window", before, keyspace)
	}
	bodies := make(map[int][]byte)
	for k := 0; k < keyspace; k++ {
		req := spec(k, lgCfg.Radix)
		a, stA := submitAndFetch(t, nodes[k%3], req)
		b, stB := submitAndFetch(t, nodes[(k+1)%3], req)
		if stA.Key != stB.Key {
			t.Fatalf("spec %d keys differ across nodes: %s vs %s", k, stA.Key, stB.Key)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("spec %d artifacts differ across nodes", k)
		}
		bodies[k] = a
	}
	after := 0
	for _, n := range nodes {
		after += computedCount(t, n)
	}
	if after != before {
		t.Errorf("phase 2 recomputed: cluster-wide computed went %d -> %d, want unchanged", before, after)
	}

	// And the restarted node serves its pre-kill disk cache: a spec
	// submitted directly to it must come back identical too.
	data, _ := submitAndFetch(t, nodes[1], spec(0, lgCfg.Radix))
	if !bytes.Equal(data, bodies[0]) {
		t.Error("restarted node's artifact differs from the cluster's")
	}
}
