// Package loadgen is the chaos-proving load generator for the serving
// cluster: an open-loop driver that fires job submissions at a
// precomputed, seeded schedule with bounded-Pareto interarrivals, rides
// every request to a terminal state (honoring 429 Retry-After hints,
// failing over across targets on transport errors), verifies that
// resubmitted specs return byte-identical artifacts, and reports
// latency quantiles measured from each request's *scheduled* arrival —
// so queueing delay under overload is charged to the system, not hidden
// by a slowed-down client (the coordinated-omission trap).
package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/serve"
	"github.com/reprolab/hirise/internal/tele"
)

// Config parameterizes one load-generation run. Zero values select the
// documented defaults; Targets is required.
type Config struct {
	// Targets are the base URLs of the hirise-served daemons to drive.
	// Requests round-robin their first attempt across targets and fail
	// over to the next one on transport errors.
	Targets []string
	// Requests is the total number of requests to fire (default 100).
	Requests int
	// Rate is the mean offered load in requests per second (default
	// 50). The schedule's interarrival gaps are bounded-Pareto
	// distributed with this mean — bursty, but exactly this rate over
	// the run.
	Rate float64
	// Alpha is the Pareto shape parameter, > 1 (default 1.5; smaller is
	// burstier).
	Alpha float64
	// BurstCap truncates interarrival gaps at this multiple of the
	// minimum gap (default 50).
	BurstCap float64
	// Keyspace is the number of distinct job specs drawn from (default
	// 16). Smaller keyspaces exercise the store and peer-fetch paths
	// harder; Keyspace 1 makes every request after the first a cache or
	// peer hit.
	Keyspace int
	// Radix is the switch radix of the generated load sweeps (default
	// 8; keep small so each distinct job is cheap).
	Radix int
	// Seed drives the schedule and spec-choice PRNG (default 1). Equal
	// seeds replay the identical workload.
	Seed uint64
	// MaxResubmits bounds how many times one request may fail over to
	// another target after transport errors (default 8). The 429 path
	// is not counted: it is bounded by RequestTimeout instead.
	MaxResubmits int
	// RequestTimeout is each request's terminal-state deadline measured
	// from its scheduled arrival (default 30s). A request that is not
	// terminal by then is counted Lost.
	RequestTimeout time.Duration
	// PollInterval is the status-poll cadence (default 20ms).
	PollInterval time.Duration
	// TelemetryWindow is the cadence of the run's windowed telemetry
	// tracks (default 250ms; negative disables).
	TelemetryWindow time.Duration
	// SkipVerify disables the result byte-identity check (a GET
	// /result + hash per completed job).
	SkipVerify bool
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

func (cfg *Config) withDefaults() error {
	if len(cfg.Targets) == 0 {
		return errors.New("loadgen: no targets")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 50
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.5
	}
	if cfg.Alpha <= 1 {
		return fmt.Errorf("loadgen: alpha %v must be > 1", cfg.Alpha)
	}
	if cfg.BurstCap <= 1 {
		cfg.BurstCap = 50
	}
	if cfg.Keyspace <= 0 {
		cfg.Keyspace = 16
	}
	if cfg.Radix == 0 {
		cfg.Radix = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxResubmits == 0 {
		cfg.MaxResubmits = 8
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.TelemetryWindow == 0 {
		cfg.TelemetryWindow = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return nil
}

// Quantiles summarizes the end-to-end latency distribution in seconds.
type Quantiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Telemetry is the run's windowed time series: per-window submission,
// completion, and rejection counts, plus the in-flight level at each
// window close. Bounded by tele's decimation for arbitrarily long runs.
type Telemetry struct {
	WindowMS    int64                `json:"window_ms"`
	WindowTicks int64                `json:"window_ticks"`
	Series      map[string][]float64 `json:"series"`
}

// Report is the outcome of one Run. Every scheduled request is
// accounted for in exactly one of Done, Failed, Cancelled, TimedOut, or
// Lost.
type Report struct {
	Targets  []string `json:"targets"`
	Requests int      `json:"requests"`

	// Terminal accounting.
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	TimedOut  int `json:"timed_out"`
	// Lost counts requests that never reached an observed terminal
	// state: the resubmission budget ran out or RequestTimeout expired.
	Lost int `json:"lost"`

	// Provenance of Done results, as reported by the daemons.
	CacheHits int `json:"cache_hits"`
	PeerHits  int `json:"peer_hits"`
	Computed  int `json:"computed"`
	// Mismatched counts Done results whose bytes differed from an
	// earlier result for the same spec — must be zero.
	Mismatched int `json:"mismatched"`

	// Backpressure accounting.
	Rejected429           int     `json:"rejected_429"`
	RetryAfterWaitSeconds float64 `json:"retry_after_wait_seconds"`
	Resubmits             int     `json:"resubmits"`

	Latency        Quantiles  `json:"latency_seconds"`
	ElapsedSeconds float64    `json:"elapsed_seconds"`
	OfferedRate    float64    `json:"offered_rate"`
	AchievedRate   float64    `json:"achieved_rate"`
	Telemetry      *Telemetry `json:"telemetry,omitempty"`
}

// Clean reports whether the run proves the cluster healthy: every
// request terminal, none lost or failed, and every repeated spec
// byte-identical.
func (r *Report) Clean() bool {
	return r.Lost == 0 && r.Failed == 0 && r.Mismatched == 0
}

// outcome is one request's result, sent from its worker goroutine to
// the aggregator.
type outcome struct {
	state    string
	cacheHit bool
	source   string
	latency  time.Duration
	mismatch bool
}

// gen is the per-run state shared by the dispatcher, workers, and
// aggregator.
type gen struct {
	cfg    Config
	start  time.Time
	bodies [][]byte // pre-marshalled spec JSON, one per keyspace slot

	// Counters read by the telemetry sampler (and bumped by workers).
	submitted   atomic.Int64
	terminal    atomic.Int64
	rejected429 atomic.Int64
	resubmits   atomic.Int64
	honoredMS   atomic.Int64
	inflight    atomic.Int64

	// hashes maps spec index -> sha256 of the first result seen for it,
	// for the byte-identity check.
	hashes sync.Map
}

// spec is the job submitted for keyspace slot k: a deliberately cheap
// 2-D load sweep whose PRNG seed varies with k, so distinct slots have
// distinct store keys but identical cost.
func spec(k, radix int) serve.Request {
	return serve.Request{
		Kind: "loadsweep", Design: "2d", Radix: radix,
		Loads: []float64{0.1}, Warmup: 200, Measure: 500,
		Seed: uint64(1000 + k),
	}
}

// Run executes the configured load against the targets and blocks until
// every scheduled request is accounted for (or ctx is cancelled, which
// counts the stragglers Lost). The only errors are configuration
// errors; an unhealthy cluster surfaces in the Report instead.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	g := &gen{cfg: cfg, bodies: make([][]byte, cfg.Keyspace)}
	for k := range g.bodies {
		b, err := json.Marshal(spec(k, cfg.Radix))
		if err != nil {
			return nil, err
		}
		g.bodies[k] = b
	}
	sched := buildSchedule(cfg)

	var samp *tele.Sampler
	if cfg.TelemetryWindow > 0 {
		samp = tele.NewSampler(1, tele.DefaultMaxWindows)
		samp.CounterFunc("loadgen.submitted", g.submitted.Load)
		samp.CounterFunc("loadgen.terminal", g.terminal.Load)
		samp.CounterFunc("loadgen.rejected429", g.rejected429.Load)
		samp.GaugeFunc("loadgen.inflight", func() float64 { return float64(g.inflight.Load()) })
	}

	g.start = time.Now()
	results := make(chan outcome, cfg.Requests)
	go g.dispatch(ctx, sched, results)

	// The aggregator owns the histogram and the sampler (both are
	// single-writer); workers only touch atomics and the results
	// channel.
	reg := obs.NewRegistry()
	hist := reg.Histogram("loadgen.latency.seconds", 0.025, 2400)
	var ticker *time.Ticker
	var tickC <-chan time.Time
	if samp != nil {
		ticker = time.NewTicker(cfg.TelemetryWindow)
		defer ticker.Stop()
		tickC = ticker.C
	}
	rep := &Report{Targets: cfg.Targets, Requests: cfg.Requests}
	var maxLat float64
	var ticks int64
	for got := 0; got < cfg.Requests; {
		select {
		case out := <-results:
			got++
			switch out.state {
			case "done":
				rep.Done++
				switch {
				case out.cacheHit:
					rep.CacheHits++
				case out.source != "" && out.source != "computed":
					rep.PeerHits++
				default:
					rep.Computed++
				}
				if out.mismatch {
					rep.Mismatched++
				}
			case "failed":
				rep.Failed++
			case "cancelled":
				rep.Cancelled++
			case "timeout":
				rep.TimedOut++
			default:
				rep.Lost++
			}
			sec := out.latency.Seconds()
			hist.Observe(sec)
			if sec > maxLat {
				maxLat = sec
			}
		case <-tickC:
			ticks++
			samp.Tick(ticks)
		}
	}
	if samp != nil {
		ticks++
		samp.Tick(ticks)
	}

	rep.Rejected429 = int(g.rejected429.Load())
	rep.Resubmits = int(g.resubmits.Load())
	rep.RetryAfterWaitSeconds = float64(g.honoredMS.Load()) / 1000
	rep.Latency = Quantiles{
		Mean: hist.Mean(),
		P50:  hist.Quantile(0.50),
		P90:  hist.Quantile(0.90),
		P99:  hist.Quantile(0.99),
		Max:  maxLat,
	}
	rep.ElapsedSeconds = time.Since(g.start).Seconds()
	rep.OfferedRate = cfg.Rate
	if rep.ElapsedSeconds > 0 {
		rep.AchievedRate = float64(cfg.Requests) / rep.ElapsedSeconds
	}
	if samp != nil {
		t := &Telemetry{
			WindowMS:    cfg.TelemetryWindow.Milliseconds(),
			WindowTicks: samp.Window(),
			Series:      map[string][]float64{},
		}
		for _, s := range samp.Series() {
			t.Series[s.Name] = s.Values
		}
		rep.Telemetry = t
	}
	return rep, nil
}

// dispatch fires workers at their scheduled arrival times. It never
// waits for a slow cluster — that is the open loop.
func (g *gen) dispatch(ctx context.Context, sched []arrival, results chan<- outcome) {
	for _, a := range sched {
		if !sleepUntil(ctx, g.start.Add(a.at)) {
			// Cancelled before this arrival: it (and all later ones)
			// still must be accounted for.
			results <- outcome{state: "lost"}
			continue
		}
		go func(a arrival) {
			g.inflight.Add(1)
			defer g.inflight.Add(-1)
			results <- g.drive(ctx, a)
		}(a)
	}
}

// drive rides one request to a terminal state: submit (honoring 429
// backpressure), poll, and on transport failure resubmit to the next
// target. The same spec lands on the same store key everywhere, so a
// resubmission can never cause divergent results — only, at worst, a
// duplicate computation that the cluster's peer fetch and per-key
// singleflight are there to absorb.
func (g *gen) drive(ctx context.Context, a arrival) outcome {
	scheduled := g.start.Add(a.at)
	rctx, cancel := context.WithDeadline(ctx, scheduled.Add(g.cfg.RequestTimeout))
	defer cancel()
	lost := func() outcome {
		return outcome{state: "lost", latency: time.Since(scheduled)}
	}
	target, resubmits := a.target, 0
	for {
		st, code, hdr, err := g.submit(rctx, target, a.spec)
		switch {
		case err == nil && code == http.StatusAccepted:
			g.submitted.Add(1)
			if out, ok := g.await(rctx, target, st.ID, a, scheduled); ok {
				return out
			}
			// The node stopped answering mid-flight; fail over.
		case err == nil && code == http.StatusTooManyRequests:
			g.rejected429.Add(1)
			wait := retryAfter(hdr)
			g.honoredMS.Add(wait.Milliseconds())
			if !sleepFor(rctx, wait) {
				return lost()
			}
			// Honored the hint; try the same node again without
			// spending resubmission budget.
			continue
		case err == nil && code >= 400 && code < 500:
			// The daemon rejected the spec itself: no other node will
			// accept it either.
			return outcome{state: "failed", latency: time.Since(scheduled)}
		}
		resubmits++
		g.resubmits.Add(1)
		if resubmits > g.cfg.MaxResubmits || rctx.Err() != nil {
			return lost()
		}
		target++
		if !sleepFor(rctx, g.cfg.PollInterval) {
			return lost()
		}
	}
}

// await polls one submitted job until it is terminal. ok=false means
// the target stopped answering and the caller should fail over.
func (g *gen) await(ctx context.Context, target int, id string, a arrival, scheduled time.Time) (outcome, bool) {
	fails := 0
	for {
		st, err := g.status(ctx, target, id)
		switch {
		case err != nil && ctx.Err() != nil:
			return outcome{state: "lost", latency: time.Since(scheduled)}, true
		case err != nil:
			if fails++; fails >= 3 {
				return outcome{}, false
			}
		case st.State.Terminal():
			out := outcome{
				state:    string(st.State),
				cacheHit: st.CacheHit,
				source:   st.Source,
				latency:  time.Since(scheduled),
			}
			if st.State == serve.Done && !g.cfg.SkipVerify {
				out.mismatch = !g.verify(ctx, target, id, a.spec)
			}
			return out, true
		default:
			fails = 0
		}
		if !sleepFor(ctx, g.cfg.PollInterval) {
			return outcome{state: "lost", latency: time.Since(scheduled)}, true
		}
	}
}

func (g *gen) url(target int, path string) string {
	return g.cfg.Targets[target%len(g.cfg.Targets)] + path
}

func (g *gen) submit(ctx context.Context, target, spec int) (serve.Status, int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.url(target, "/jobs"), bytes.NewReader(g.bodies[spec]))
	if err != nil {
		return serve.Status{}, 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return serve.Status{}, 0, nil, err
	}
	defer resp.Body.Close()
	var st serve.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return serve.Status{}, 0, nil, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, resp.Header, nil
}

func (g *gen) status(ctx context.Context, target int, id string) (serve.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.url(target, "/jobs/"+id), nil)
	if err != nil {
		return serve.Status{}, err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return serve.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return serve.Status{}, fmt.Errorf("loadgen: status %s: HTTP %d", id, resp.StatusCode)
	}
	var st serve.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// verify fetches the finished job's artifact and checks it against the
// first result recorded for the same spec. Returns true when the bytes
// agree (or this is the first sighting); a fetch failure is not a
// mismatch — byte divergence is the only thing this check condemns.
func (g *gen) verify(ctx context.Context, target int, id string, spec int) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		g.url(target, "/jobs/"+id+"/result"), nil)
	if err != nil {
		return true
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return true
	}
	h := sha256.New()
	if _, err := io.Copy(h, resp.Body); err != nil {
		return true
	}
	sum := fmt.Sprintf("%x", h.Sum(nil))
	prev, loaded := g.hashes.LoadOrStore(spec, sum)
	return !loaded || prev.(string) == sum
}

// retryAfter parses a 429's Retry-After header (delta-seconds form),
// defaulting to 1s when absent or unparseable.
func retryAfter(hdr http.Header) time.Duration {
	if s := hdr.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}

// sleepFor blocks for d or until ctx is done; false on cancellation.
func sleepFor(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// sleepUntil blocks until the wall-clock instant at (already-past
// instants return immediately) or ctx is done.
func sleepUntil(ctx context.Context, at time.Time) bool {
	return sleepFor(ctx, time.Until(at))
}
