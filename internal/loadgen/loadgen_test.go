package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/leakcheck"
	"github.com/reprolab/hirise/internal/serve"
	"github.com/reprolab/hirise/internal/store"
)

// startServeNode stands up one plain (clusterless) job daemon for the
// generator to drive.
func startServeNode(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	if cfg.SimWorkers == 0 {
		cfg.SimWorkers = 1
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return ts
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("Run with no targets did not error")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"x"}, Alpha: 0.9}); err == nil {
		t.Error("Run with alpha <= 1 did not error")
	}
}

// TestRunSingleNode drives a healthy daemon well within capacity: every
// request must finish done, the keyspace must collapse onto cache hits,
// and the byte-identity check must pass.
func TestRunSingleNode(t *testing.T) {
	leakcheck.Check(t)
	ts := startServeNode(t, serve.Config{Workers: 2})

	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Requests: 40, Rate: 400, Keyspace: 4, Seed: 3,
		RequestTimeout: 30 * time.Second, PollInterval: 5 * time.Millisecond,
		TelemetryWindow: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 40 || !rep.Clean() {
		t.Fatalf("report = %+v, want 40 done and clean", rep)
	}
	if got := rep.CacheHits + rep.PeerHits + rep.Computed; got != rep.Done {
		t.Errorf("provenance sums to %d, want %d", got, rep.Done)
	}
	// 4 distinct specs: at most 4 computations (concurrent duplicates
	// share one via the store's singleflight), everything else cached.
	if rep.Computed == 0 || rep.Computed > 4 {
		t.Errorf("computed = %d, want 1..4 for keyspace 4", rep.Computed)
	}
	if rep.PeerHits != 0 {
		t.Errorf("peer hits = %d on a clusterless node", rep.PeerHits)
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max <= 0 {
		t.Errorf("latency quantiles inconsistent: %+v", rep.Latency)
	}
	if rep.Telemetry == nil {
		t.Fatal("telemetry missing from report")
	}
	var submitted float64
	for _, v := range rep.Telemetry.Series["loadgen.submitted"] {
		submitted += v
	}
	if int(submitted) < rep.Requests {
		t.Errorf("telemetry records %v submissions, want >= %d", submitted, rep.Requests)
	}
}

// TestRunOverloadHonors429 pushes a burst far above a QueueDepth-1
// daemon's intake: the generator must absorb the 429s by honoring
// Retry-After and still land every request in a terminal state — the
// bounded-queue contract seen from the client side.
func TestRunOverloadHonors429(t *testing.T) {
	leakcheck.Check(t)
	ts := startServeNode(t, serve.Config{Workers: 1, QueueDepth: 1})

	rep, err := Run(context.Background(), Config{
		Targets:  []string{ts.URL},
		Requests: 12, Rate: 2000, Keyspace: 12, Seed: 5,
		RequestTimeout: 60 * time.Second, PollInterval: 5 * time.Millisecond,
		TelemetryWindow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 12 || !rep.Clean() {
		t.Fatalf("report = %+v, want 12 done and clean", rep)
	}
	if rep.Rejected429 == 0 {
		t.Error("overload run saw no 429s; queue bound not exercised")
	}
	if rep.RetryAfterWaitSeconds <= 0 {
		t.Error("429s were seen but no Retry-After wait was honored")
	}
}
