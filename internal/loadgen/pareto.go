package loadgen

import (
	"math"
	"time"

	"github.com/reprolab/hirise/internal/prng"
)

// boundedPareto inverts the CDF of a Pareto(alpha) distribution
// truncated to [1, cap]: heavy-tailed enough to produce realistic
// request bursts, bounded so one astronomical gap cannot stall a finite
// run. u is uniform in [0, 1).
func boundedPareto(u, alpha, cap float64) float64 {
	return 1 / math.Pow(1-u*(1-math.Pow(cap, -alpha)), 1/alpha)
}

// boundedParetoMean is the analytic mean of boundedPareto's
// distribution, used to normalize gaps so a schedule's mean rate is
// exactly the configured one (alpha must be > 1).
func boundedParetoMean(alpha, cap float64) float64 {
	return alpha * (math.Pow(cap, 1-alpha) - 1) / ((1 - alpha) * (1 - math.Pow(cap, -alpha)))
}

// arrival is one scheduled request: when to fire (offset from run
// start), which job spec to submit, and which target to try first.
type arrival struct {
	at     time.Duration
	spec   int
	target int
}

// buildSchedule precomputes the entire open-loop schedule before any
// request fires, so a (seed, rate, alpha) triple replays the identical
// workload regardless of how fast the cluster answers — the open-loop
// property that makes overload measurements honest (a closed loop would
// slow its own offered load down and hide the queueing).
func buildSchedule(cfg Config) []arrival {
	r := prng.New(cfg.Seed)
	mean := boundedParetoMean(cfg.Alpha, cfg.BurstCap)
	scale := 1 / (cfg.Rate * mean)
	sched := make([]arrival, cfg.Requests)
	var t float64 // seconds
	for i := range sched {
		t += boundedPareto(r.Float64(), cfg.Alpha, cfg.BurstCap) * scale
		sched[i] = arrival{
			at:     time.Duration(t * float64(time.Second)),
			spec:   r.Intn(cfg.Keyspace),
			target: i % len(cfg.Targets),
		}
	}
	return sched
}
