package loadgen

import (
	"math"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/prng"
)

// TestBoundedParetoMean checks the analytic mean used to normalize the
// schedule against an empirical sample of the inverse-CDF generator.
func TestBoundedParetoMean(t *testing.T) {
	for _, tc := range []struct{ alpha, cap float64 }{
		{1.5, 50}, {1.2, 100}, {2.5, 10},
	} {
		r := prng.New(99)
		const n = 200_000
		var sum float64
		for i := 0; i < n; i++ {
			x := boundedPareto(r.Float64(), tc.alpha, tc.cap)
			if x < 1 || x > tc.cap {
				t.Fatalf("alpha=%v cap=%v: sample %v out of [1, cap]", tc.alpha, tc.cap, x)
			}
			sum += x
		}
		want := boundedParetoMean(tc.alpha, tc.cap)
		if got := sum / n; math.Abs(got-want)/want > 0.02 {
			t.Errorf("alpha=%v cap=%v: empirical mean %v, analytic %v", tc.alpha, tc.cap, got, want)
		}
	}
}

// TestScheduleDeterministicRate: equal seeds replay the identical
// schedule, distinct seeds differ, and the mean offered rate matches
// the configuration.
func TestScheduleDeterministicRate(t *testing.T) {
	cfg := Config{
		Targets: []string{"a", "b", "c"}, Requests: 20_000,
		Rate: 100, Alpha: 1.5, BurstCap: 50, Keyspace: 16, Seed: 7,
	}
	s1, s2 := buildSchedule(cfg), buildSchedule(cfg)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("arrival %d differs across equal-seed schedules", i)
		}
	}
	cfg.Seed = 8
	s3 := buildSchedule(cfg)
	if s1[0] == s3[0] && s1[1] == s3[1] && s1[2] == s3[2] {
		t.Error("distinct seeds produced an identical schedule prefix")
	}

	last := time.Duration(-1)
	for i, a := range s1 {
		if a.at <= last {
			t.Fatalf("arrival %d not strictly after its predecessor", i)
		}
		last = a.at
		if a.spec < 0 || a.spec >= cfg.Keyspace {
			t.Fatalf("arrival %d: spec %d outside keyspace", i, a.spec)
		}
		if a.target != i%len(cfg.Targets) {
			t.Fatalf("arrival %d: first target %d, want round-robin %d", i, a.target, i%len(cfg.Targets))
		}
	}
	// 20k arrivals at 100/s should span very nearly 200s.
	span := s1[len(s1)-1].at.Seconds()
	if want := float64(cfg.Requests) / cfg.Rate; math.Abs(span-want)/want > 0.05 {
		t.Errorf("schedule spans %.1fs, want ~%.1fs for rate %v", span, want, cfg.Rate)
	}
}
