package manycore

import (
	"math"
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/trace"
)

func addrCfg() Config {
	c := quickCfg()
	c.AddressMode = true
	return c
}

func TestAddressModeRuns(t *testing.T) {
	r := mustRun(t, addrCfg(), crossbar.New(64), uniformBenches(t, "milc", 64))
	if r.SystemIPC <= 0 || r.NetPackets == 0 {
		t.Fatalf("no progress in address mode: %+v", r)
	}
	if r.AvgL1MPKI <= 0 {
		t.Fatal("address mode should report measured L1 MPKI")
	}
}

// TestAddressModeMPKIMatchesCatalog closes the substitution loop inside
// the full system: real per-core L1s driven by the sized address streams
// must reproduce the catalog MPKI the probabilistic mode injects.
func TestAddressModeMPKIMatchesCatalog(t *testing.T) {
	for _, name := range []string{"astar", "milc", "Gems"} {
		b, err := trace.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := addrCfg()
		cfg.Warmup, cfg.Measure = 10000, 40000
		r := mustRun(t, cfg, crossbar.New(64), uniformBenches(t, name, 64))
		if rel := math.Abs(r.AvgL1MPKI-b.NetMPKI) / b.NetMPKI; rel > 0.30 {
			t.Errorf("%s: measured MPKI %.1f vs catalog %.1f", name, r.AvgL1MPKI, b.NetMPKI)
		}
	}
}

func TestAddressModeLowMPKINearIssueWidth(t *testing.T) {
	r := mustRun(t, addrCfg(), crossbar.New(64), uniformBenches(t, "sjeng", 64))
	for i, ipc := range r.PerCoreIPC {
		if ipc < 1.6 {
			t.Fatalf("core %d IPC %.2f; sjeng should run near issue width", i, ipc)
		}
	}
}

func TestAddressModeFasterSwitchHelps(t *testing.T) {
	benches := uniformBenches(t, "Gems", 64)
	slow := addrCfg()
	slow.SwitchGHz = 1.69
	fast := addrCfg()
	fast.SwitchGHz = 2.2
	rs := mustRun(t, slow, crossbar.New(64), benches)
	rf := mustRun(t, fast, crossbar.New(64), benches)
	if rf.SystemIPC <= rs.SystemIPC {
		t.Errorf("faster switch IPC %.1f not above %.1f in address mode", rf.SystemIPC, rs.SystemIPC)
	}
}

func TestAddressModeDeterminism(t *testing.T) {
	benches := uniformBenches(t, "milc", 64)
	a := mustRun(t, addrCfg(), crossbar.New(64), benches)
	b := mustRun(t, addrCfg(), crossbar.New(64), benches)
	if a.SystemIPC != b.SystemIPC || a.AvgL1MPKI != b.AvgL1MPKI {
		t.Error("address mode diverged across identical runs")
	}
}

func TestProbabilisticModeReportsNoMPKI(t *testing.T) {
	r := mustRun(t, quickCfg(), crossbar.New(64), uniformBenches(t, "milc", 64))
	if r.AvgL1MPKI != 0 {
		t.Errorf("probabilistic mode reported MPKI %.2f", r.AvgL1MPKI)
	}
}
