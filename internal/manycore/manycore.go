// Package manycore is the trace-driven many-core system simulator used
// for the paper's application results (§VI-D, Table VI): 64 two-wide
// out-of-order cores with private L1s, a banked shared L2, and 8 on-chip
// memory controllers (Table III), all connected by a single radix-64
// switch — either the 2D Swizzle-Switch or Hi-Rise.
//
// Each switch port serves one tile: a core, an L2 bank, and (on every
// eighth tile) a memory controller share the port's injection queue.
// Cores execute synthetic MPKI-calibrated instruction streams
// (internal/trace); L1 misses become request packets to an
// address-hashed L2 bank, L2 misses continue to the bank's memory
// controller. The switch runs in its own clock domain: a fractional
// accumulator advances it at SwitchGHz/CoreGHz switch cycles per core
// cycle, which is how a faster Hi-Rise clock turns into system speedup.
package manycore

import (
	"fmt"
	"sync"

	"github.com/reprolab/hirise/internal/cache"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/trace"
)

// Config holds the system parameters (defaults follow paper Table III).
type Config struct {
	// Cores is the tile count; it must equal the switch radix.
	Cores int
	// CoreGHz and SwitchGHz set the two clock domains.
	CoreGHz, SwitchGHz float64
	// IssueWidth is instructions per core cycle (2-way).
	IssueWidth int
	// MaxOutstanding bounds in-flight misses per core (Table III: up to
	// 16 outstanding requests per core).
	MaxOutstanding int
	// DepFraction is the fraction of misses the out-of-order window
	// cannot hide; the core stalls until such a miss returns.
	DepFraction float64
	// L2HitCycles is the bank access latency in core cycles.
	L2HitCycles int
	// MemCycles is the memory access latency in core cycles (80 ns at
	// 2 GHz = 160).
	MemCycles int
	// MCCount is the number of memory controllers.
	MCCount int
	// MCServiceCycles is the DDR occupancy per cache-line access in core
	// cycles: Table III gives each MC 4 channels at 16 GB/s = 32 B/cycle
	// at 2 GHz, i.e. one 64 B line every 2 cycles.
	MCServiceCycles int
	// PacketFlits is the network packet length (paper: 4 flits).
	PacketFlits int
	// Warmup and Measure are window lengths in core cycles.
	Warmup, Measure int64
	// Seed drives miss streams and address hashing.
	Seed uint64

	// AddressMode switches from MPKI-probabilistic miss generation to
	// fully address-driven execution: each core owns a real Table III L1
	// (tags, LRU, MSHRs) fed by a synthetic address stream sized to the
	// benchmark's catalog MPKI, and each tile's L2 bank keeps real tags.
	// Misses then emerge from cache state instead of coin flips.
	AddressMode bool
	// MemRefsPerInstr is the memory-reference density used by address
	// mode (default 0.3).
	MemRefsPerInstr float64
	// L1 and L2Bank override the Table III cache geometries in address
	// mode.
	L1, L2Bank cache.Config

	// Obs, when non-nil, attaches observability sinks (internal/obs) to
	// the system and its switch. Trace events are keyed by the switch
	// cycle (the network clock); metrics cover the entire run including
	// warmup. Results are unaffected. See sim.Config.Obs.
	Obs *obs.Observer
}

// Defaults fills unset fields with Table III values.
func (c *Config) Defaults() {
	if c.Cores == 0 {
		c.Cores = 64
	}
	if c.CoreGHz == 0 {
		c.CoreGHz = 2.0
	}
	if c.SwitchGHz == 0 {
		c.SwitchGHz = 2.0
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 2
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 16
	}
	if c.DepFraction == 0 {
		c.DepFraction = 0.25
	}
	if c.L2HitCycles == 0 {
		c.L2HitCycles = 6
	}
	if c.MemCycles == 0 {
		c.MemCycles = 160
	}
	if c.MCCount == 0 {
		c.MCCount = 8
	}
	if c.MCServiceCycles == 0 {
		c.MCServiceCycles = 2
	}
	if c.MemRefsPerInstr == 0 {
		c.MemRefsPerInstr = 0.3
	}
	if c.L1 == (cache.Config{}) {
		c.L1 = cache.L1D()
	}
	if c.L2Bank == (cache.Config{}) {
		c.L2Bank = cache.L2Bank()
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 20000
	}
	if c.Measure == 0 {
		c.Measure = 100000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *Config) validate(radix, benches int) error {
	switch {
	case c.Cores != radix:
		return fmt.Errorf("manycore: %d cores but switch radix %d", c.Cores, radix)
	case benches != c.Cores:
		return fmt.Errorf("manycore: %d benchmark assignments for %d cores", benches, c.Cores)
	case c.Cores%c.MCCount != 0:
		return fmt.Errorf("manycore: %d cores not divisible by %d MCs", c.Cores, c.MCCount)
	case c.SwitchGHz <= 0 || c.CoreGHz <= 0:
		return fmt.Errorf("manycore: non-positive clock")
	}
	return nil
}

// Result reports one system run.
type Result struct {
	// PerCoreIPC is instructions retired per core cycle, per core.
	PerCoreIPC []float64
	// SystemIPC is the sum over cores.
	SystemIPC float64
	// AvgNetLatency is the mean one-way network latency of delivered
	// packets, in switch cycles (queueing included).
	AvgNetLatency float64
	// NetPackets counts packets delivered during measurement.
	NetPackets int64
	// MemAccesses counts memory-controller accesses during measurement.
	MemAccesses int64
	// AvgL1MPKI is the whole-run measured L1 MPKI averaged over cores
	// (address mode only; zero otherwise).
	AvgL1MPKI float64
}

type msgKind int

const (
	reqL2 msgKind = iota
	respL2
	reqMem
	respMem
)

type message struct {
	kind     msgKind
	dst      int
	core     int    // originating core
	bank     int    // serving bank (for memory round trips)
	critical bool   // core is stalled on this miss
	block    uint64 // block address (address mode)
	born     int64
}

type tile struct {
	// Network port state.
	outQ      []message
	sending   bool
	sendFlits int
	sendMsg   message
	// Core state.
	bench       trace.Benchmark
	miss        *trace.MissStream
	rng         *prng.Source
	outstanding int
	blocked     int // outstanding critical misses
	retired     int64
	issuedAll   int64 // instructions including warmup
	missSnap    int64 // L1 misses at measurement start (address mode)
	issueSnap   int64 // instructions at measurement start
	// Address-mode state: real caches and MSHRs.
	l1   *cache.Cache
	mshr *cache.MSHRFile
	prof cache.Profile
	l2   *cache.Cache
	// Entity delay queues (FIFO; bank access is fixed-latency, the MC
	// additionally serializes on DDR bandwidth).
	bankQ      []delayed
	memQ       []delayed
	mcNextFree int64 // earliest core cycle this tile's DDR channels accept work
}

type delayed struct {
	ready int64
	msg   message
}

// System is one configured instance, reusable for a single Run.
type System struct {
	cfg   Config
	sw    sim.Switch
	tiles []*tile
	req   []int
	acc   float64
	// Measurement.
	measuring  bool
	netLat     stats.Summary
	netPackets int64
	memAccess  int64
	swCycle    int64
	// Observability handles (nil when Config.Obs is nil; methods no-op
	// on nil receivers, so the disabled path never allocates).
	rec        *obs.Recorder
	mInjected  *obs.Counter
	mDelivered *obs.Counter
	mWins      *obs.Counter
	mMem       *obs.Counter
	mNetLat    *obs.Histogram
}

// New builds a system over the given switch with the given per-core
// benchmark assignment (from trace.Mix.Assign).
func New(cfg Config, sw sim.Switch, benches []trace.Benchmark) (*System, error) {
	cfg.Defaults()
	if err := cfg.validate(sw.Radix(), len(benches)); err != nil {
		return nil, err
	}
	root := prng.New(cfg.Seed)
	s := &System{cfg: cfg, sw: sw, tiles: make([]*tile, cfg.Cores), req: make([]int, cfg.Cores)}
	if cfg.Obs != nil {
		if osw, ok := sw.(interface{ SetObserver(*obs.Observer) }); ok {
			osw.SetObserver(cfg.Obs)
		}
	}
	s.rec = cfg.Obs.Rec()
	s.mInjected = cfg.Obs.Counter("manycore.packets.injected")
	s.mDelivered = cfg.Obs.Counter("manycore.packets.delivered")
	s.mWins = cfg.Obs.Counter("manycore.arb.wins")
	s.mMem = cfg.Obs.Counter("manycore.mem_accesses")
	s.mNetLat = cfg.Obs.Histogram("manycore.net_latency.cycles", 4, 4096)
	// Calibrate one address profile per distinct benchmark (shared by
	// its instances, memoized across systems — calibration is pure given
	// the benchmark, cache geometry, and density).
	profiles := map[string]cache.Profile{}
	if cfg.AddressMode {
		for _, b := range benches {
			if _, done := profiles[b.Name]; done {
				continue
			}
			target := b.NetMPKI / 1000 / cfg.MemRefsPerInstr
			if target > 0.99 {
				target = 0.99
			}
			key := profileKey{name: b.Name, l1: cfg.L1, target: target, ratio: b.L2MissRatio}
			if v, ok := profileMemo.Load(key); ok {
				profiles[b.Name] = v.(cache.Profile)
				continue
			}
			p, err := cache.CalibrateProfile(target, b.L2MissRatio, cfg.L1, 1)
			if err != nil {
				return nil, err
			}
			profileMemo.Store(key, p)
			profiles[b.Name] = p
		}
	}
	for i := range s.tiles {
		t := &tile{
			bench: benches[i],
			miss:  trace.NewMissStream(benches[i]),
			rng:   root.Split(),
		}
		if cfg.AddressMode {
			l1, err := cache.New(cfg.L1)
			if err != nil {
				return nil, err
			}
			l2, err := cache.New(cfg.L2Bank)
			if err != nil {
				return nil, err
			}
			t.l1 = l1
			t.l2 = l2
			t.mshr = cache.NewMSHRFile(cfg.MaxOutstanding)
			t.prof = profiles[benches[i].Name]
		}
		s.tiles[i] = t
	}
	if cfg.AddressMode {
		s.prewarm()
	}
	return s, nil
}

// profileKey identifies one calibrated address profile.
type profileKey struct {
	name   string
	l1     cache.Config
	target float64
	ratio  float64
}

// profileMemo caches calibration results process-wide; calibration uses
// a fixed internal seed, so entries are deterministic.
var profileMemo sync.Map

// bankLocalAddr maps an address to the bank-local block used to index a
// bank's tag array: the 6 bank-interleave bits are stripped and the
// remaining block id passes through an invertible hash, so small
// contiguous per-core working sets spread over all of the bank's sets
// instead of aliasing (hashed cache indexing, standard for shared LLCs).
func bankLocalAddr(a uint64) uint64 {
	z := a >> 12
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z << 6
}

// prewarm loads every core's resident working set into its L1 and the
// shared L2 banks before simulation, so measurement starts from steady
// state rather than from an all-cores-cold compulsory-miss storm the
// probabilistic mode has no analogue for.
func (s *System) prewarm() {
	for id, t := range s.tiles {
		offset := uint64(id+1) << 42
		span := t.prof.WorkingSetBytes
		for addr := uint64(0); addr < span; addr += 64 {
			a := addr + offset
			bank := int((a >> 6) % uint64(s.cfg.Cores))
			s.tiles[bank].l2.Access(bankLocalAddr(a), false)
			t.l1.Access(a, false)
		}
	}
}

// mcPort returns the memory-controller port serving the given bank.
func (s *System) mcPort(bank int) int {
	region := s.cfg.Cores / s.cfg.MCCount
	return (bank / region) * region
}

// Run executes the configured windows and returns measurements.
func (s *System) Run() Result {
	total := s.cfg.Warmup + s.cfg.Measure
	ratio := s.cfg.SwitchGHz / s.cfg.CoreGHz
	for cycle := int64(0); cycle < total; cycle++ {
		if !s.measuring && cycle >= s.cfg.Warmup {
			for _, t := range s.tiles {
				if t.l1 != nil {
					t.missSnap = t.l1.Stats().Misses
					t.issueSnap = t.issuedAll
				}
			}
		}
		s.measuring = cycle >= s.cfg.Warmup
		// Switch domain: possibly several (or zero) switch cycles per
		// core cycle.
		s.acc += ratio
		for s.acc >= 1 {
			s.acc--
			s.switchCycle(cycle)
		}
		// Core domain.
		for id, t := range s.tiles {
			s.drainDelayQueues(t, cycle)
			s.issue(id, t, cycle)
		}
	}
	res := Result{
		PerCoreIPC:    make([]float64, s.cfg.Cores),
		AvgNetLatency: s.netLat.Mean(),
		NetPackets:    s.netPackets,
		MemAccesses:   s.memAccess,
	}
	for i, t := range s.tiles {
		res.PerCoreIPC[i] = float64(t.retired) / float64(s.cfg.Measure)
		res.SystemIPC += res.PerCoreIPC[i]
		if s.cfg.AddressMode && t.issuedAll > t.issueSnap {
			misses := t.l1.Stats().Misses - t.missSnap
			instr := t.issuedAll - t.issueSnap
			res.AvgL1MPKI += float64(misses) / float64(instr) * 1000 / float64(s.cfg.Cores)
		}
	}
	return res
}

// switchCycle runs one arbitration + flit cycle of the interconnect.
func (s *System) switchCycle(coreCycle int64) {
	s.swCycle++
	// Advance active transmissions; completions deliver after this
	// cycle's arbitration (output buses cannot arbitrate while busy).
	done := make([]int, 0, 8)
	for id, t := range s.tiles {
		if !t.sending {
			continue
		}
		t.sendFlits--
		if t.sendFlits == 0 {
			done = append(done, id)
		}
	}
	for id, t := range s.tiles {
		s.req[id] = -1
		if t.sending || len(t.outQ) == 0 {
			continue
		}
		s.req[id] = t.outQ[0].dst
	}
	for _, g := range s.sw.Arbitrate(s.req) {
		t := s.tiles[g.In]
		t.sending = true
		t.sendMsg = t.outQ[0]
		t.outQ = t.outQ[1:]
		t.sendFlits = s.cfg.PacketFlits
		s.mWins.Inc()
		s.rec.Record(s.swCycle, obs.EvArbWin, g.In, g.Out, s.cfg.PacketFlits)
	}
	for _, id := range done {
		t := s.tiles[id]
		t.sending = false
		s.sw.Release(id)
		lat := s.swCycle - t.sendMsg.born
		if s.measuring {
			s.netLat.Add(float64(lat))
			s.netPackets++
		}
		s.mDelivered.Inc()
		s.mNetLat.Observe(float64(lat))
		s.rec.Record(s.swCycle, obs.EvEject, id, t.sendMsg.dst, int(lat))
		s.deliver(t.sendMsg, coreCycle)
	}
}

// deliver hands a network packet to the destination tile's entity.
func (s *System) deliver(m message, coreCycle int64) {
	dst := s.tiles[m.dst]
	switch m.kind {
	case reqL2:
		dst.bankQ = append(dst.bankQ, delayed{ready: coreCycle + int64(s.cfg.L2HitCycles), msg: m})
	case reqMem:
		// The DDR channels serialize: a line occupies the controller for
		// MCServiceCycles, and the access completes MemCycles after its
		// service slot starts.
		start := coreCycle
		if dst.mcNextFree > start {
			start = dst.mcNextFree
		}
		dst.mcNextFree = start + int64(s.cfg.MCServiceCycles)
		dst.memQ = append(dst.memQ, delayed{ready: start + int64(s.cfg.MemCycles), msg: m})
		if s.measuring {
			s.memAccess++
		}
		s.mMem.Inc()
	case respMem:
		// Fill the bank, then forward to the core.
		dst.bankQ = append(dst.bankQ, delayed{ready: coreCycle + int64(s.cfg.L2HitCycles), msg: m})
	case respL2:
		core := s.tiles[m.dst]
		if s.cfg.AddressMode {
			core.mshr.Fill(m.block)
		} else {
			core.outstanding--
		}
		if m.critical {
			core.blocked--
		}
	}
}

// drainDelayQueues moves matured bank/MC work onto the network.
func (s *System) drainDelayQueues(t *tile, coreCycle int64) {
	for len(t.bankQ) > 0 && t.bankQ[0].ready <= coreCycle {
		d := t.bankQ[0]
		t.bankQ = t.bankQ[1:]
		switch d.msg.kind {
		case reqL2:
			// L2 lookup done: hit answers the core, miss goes to memory.
			l2Miss := false
			if s.cfg.AddressMode {
				l2Miss = !t.l2.Access(bankLocalAddr(d.msg.block), false).Hit
			} else {
				l2Miss = t.rng.Float64() < s.tiles[d.msg.core].bench.L2MissRatio
			}
			if l2Miss {
				s.send(message{kind: reqMem, dst: s.mcPort(d.msg.bank), core: d.msg.core,
					bank: d.msg.bank, critical: d.msg.critical, block: d.msg.block})
			} else {
				s.send(message{kind: respL2, dst: d.msg.core, core: d.msg.core,
					bank: d.msg.bank, critical: d.msg.critical, block: d.msg.block})
			}
		case respMem:
			s.send(message{kind: respL2, dst: d.msg.core, core: d.msg.core,
				bank: d.msg.bank, critical: d.msg.critical, block: d.msg.block})
		}
	}
	for len(t.memQ) > 0 && t.memQ[0].ready <= coreCycle {
		d := t.memQ[0]
		t.memQ = t.memQ[1:]
		s.send(message{kind: respMem, dst: d.msg.bank, core: d.msg.core,
			bank: d.msg.bank, critical: d.msg.critical, block: d.msg.block})
	}
}

// send enqueues a packet at its source tile's network port.
func (s *System) send(m message) {
	src := sourcePort(m, s)
	m.born = s.swCycle
	s.tiles[src].outQ = append(s.tiles[src].outQ, m)
	s.mInjected.Inc()
	s.rec.Record(s.swCycle, obs.EvInject, src, m.dst, 0)
}

// sourcePort returns the tile injecting the message.
func sourcePort(m message, s *System) int {
	switch m.kind {
	case reqL2:
		return m.core
	case respL2, reqMem:
		return m.bank
	default: // respMem
		return s.mcPort(m.bank)
	}
}

// issue runs one core cycle of instruction issue.
func (s *System) issue(id int, t *tile, coreCycle int64) {
	if t.blocked > 0 {
		return // stalled on a dependence-critical miss
	}
	for k := 0; k < s.cfg.IssueWidth; k++ {
		if s.cfg.AddressMode {
			if !s.issueAddrInstr(id, t) {
				return
			}
		} else if t.miss.Miss(t.rng) {
			if t.outstanding >= s.cfg.MaxOutstanding {
				return // MSHRs full: structural stall, instruction not issued
			}
			t.outstanding++
			critical := t.rng.Float64() < s.cfg.DepFraction
			if critical {
				t.blocked++
			}
			bank := t.rng.Intn(s.cfg.Cores)
			s.send(message{kind: reqL2, dst: bank, core: id, bank: bank, critical: critical})
		}
		t.issuedAll++
		if s.measuring {
			t.retired++
		}
		if t.blocked > 0 {
			return // the miss we just issued blocks younger instructions
		}
	}
}

// issueAddrInstr executes one instruction in address mode: a possible
// memory reference against the core's real L1. It reports false when a
// structural stall (full MSHR file) prevents the instruction from
// issuing.
func (s *System) issueAddrInstr(id int, t *tile) bool {
	if !t.rng.Bernoulli(s.cfg.MemRefsPerInstr) {
		return true
	}
	// Per-core address offset keeps heaps private across cores.
	addr := t.prof.Next(t.rng) + uint64(id+1)<<42
	if t.l1.Access(addr, false).Hit {
		return true
	}
	block := t.l1.Block(addr)
	primary, ok := t.mshr.Allocate(block)
	if !ok {
		return false // MSHR file full: stall
	}
	if !primary {
		return true // merged into an outstanding miss; no new request
	}
	critical := t.rng.Float64() < s.cfg.DepFraction
	if critical {
		t.blocked++
	}
	bank := int((block >> 6) % uint64(s.cfg.Cores))
	s.send(message{kind: reqL2, dst: bank, core: id, bank: bank, critical: critical, block: block})
	return true
}
