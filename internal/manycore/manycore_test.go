package manycore

import (
	"testing"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/trace"
)

func uniformBenches(t testing.TB, name string, n int) []trace.Benchmark {
	t.Helper()
	b, err := trace.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Benchmark, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func quickCfg() Config {
	return Config{Warmup: 5000, Measure: 20000, Seed: 3}
}

func mustRun(t testing.TB, cfg Config, sw sim.Switch, benches []trace.Benchmark) Result {
	t.Helper()
	sys, err := New(cfg, sw, benches)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

func TestLowMPKIRunsNearIssueWidth(t *testing.T) {
	// sjeng (MPKI 1.5) should retire close to 2 IPC per core.
	r := mustRun(t, quickCfg(), crossbar.New(64), uniformBenches(t, "sjeng", 64))
	for i, ipc := range r.PerCoreIPC {
		if ipc < 1.7 || ipc > 2.0 {
			t.Fatalf("core %d IPC %.2f, want near 2", i, ipc)
		}
	}
}

func TestHighMPKISlowsCores(t *testing.T) {
	lo := mustRun(t, quickCfg(), crossbar.New(64), uniformBenches(t, "sjeng", 64))
	hi := mustRun(t, quickCfg(), crossbar.New(64), uniformBenches(t, "mcf", 64))
	if hi.SystemIPC >= 0.8*lo.SystemIPC {
		t.Errorf("mcf system IPC %.1f not clearly below sjeng %.1f", hi.SystemIPC, lo.SystemIPC)
	}
	if hi.MemAccesses == 0 || hi.NetPackets == 0 {
		t.Error("no memory/network activity recorded for mcf")
	}
}

func TestFasterSwitchHelpsMemoryBoundWork(t *testing.T) {
	benches := uniformBenches(t, "mcf", 64)
	slow := quickCfg()
	slow.SwitchGHz = 1.69
	fast := quickCfg()
	fast.SwitchGHz = 2.2
	rSlow := mustRun(t, slow, crossbar.New(64), benches)
	rFast := mustRun(t, fast, crossbar.New(64), benches)
	if rFast.SystemIPC <= rSlow.SystemIPC {
		t.Errorf("faster switch IPC %.2f not above slower %.2f", rFast.SystemIPC, rSlow.SystemIPC)
	}
}

func TestHiRiseSwitchWorksAsInterconnect(t *testing.T) {
	sw, err := core.New(topo.Config{
		Radix: 64, Layers: 4, Channels: 4,
		Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.SwitchGHz = 2.2
	r := mustRun(t, cfg, sw, uniformBenches(t, "milc", 64))
	if r.SystemIPC <= 0 || r.NetPackets == 0 {
		t.Fatalf("no progress through Hi-Rise: %+v", r)
	}
	// One-way latency can never beat the packet's own serialization
	// (arbitration + 4 flits).
	if r.AvgNetLatency < 5 {
		t.Errorf("avg network latency %.1f below physical minimum", r.AvgNetLatency)
	}
}

func TestMixedWorkloadIPCOrdering(t *testing.T) {
	// Within one run, low-MPKI cores must retire faster than high-MPKI
	// cores.
	benches := uniformBenches(t, "sjeng", 64)
	heavy, err := trace.Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	for i := 32; i < 64; i++ {
		benches[i] = heavy
	}
	r := mustRun(t, quickCfg(), crossbar.New(64), benches)
	var light, heavyIPC float64
	for i := 0; i < 32; i++ {
		light += r.PerCoreIPC[i] / 32
	}
	for i := 32; i < 64; i++ {
		heavyIPC += r.PerCoreIPC[i] / 32
	}
	if heavyIPC >= light {
		t.Errorf("mcf cores IPC %.2f not below sjeng cores %.2f", heavyIPC, light)
	}
}

func TestDeterminism(t *testing.T) {
	benches := uniformBenches(t, "milc", 64)
	a := mustRun(t, quickCfg(), crossbar.New(64), benches)
	b := mustRun(t, quickCfg(), crossbar.New(64), benches)
	if a.SystemIPC != b.SystemIPC || a.NetPackets != b.NetPackets {
		t.Error("identical configs diverged")
	}
}

func TestValidation(t *testing.T) {
	benches := uniformBenches(t, "milc", 64)
	if _, err := New(Config{Cores: 32}, crossbar.New(64), benches); err == nil {
		t.Error("core/radix mismatch accepted")
	}
	if _, err := New(Config{}, crossbar.New(64), benches[:10]); err == nil {
		t.Error("short benchmark list accepted")
	}
	bad := Config{}
	bad.Defaults()
	bad.MCCount = 7
	if _, err := New(bad, crossbar.New(64), benches); err == nil {
		t.Error("non-divisible MC count accepted")
	}
}

func TestDefaultsMatchTableIII(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Cores != 64 || c.CoreGHz != 2.0 || c.IssueWidth != 2 ||
		c.L2HitCycles != 6 || c.MemCycles != 160 || c.MCCount != 8 || c.MaxOutstanding != 16 {
		t.Errorf("defaults diverge from Table III: %+v", c)
	}
}

func TestMCBandwidthBoundsMemoryThroughput(t *testing.T) {
	// Every core streams through memory: aggregate memory accesses per
	// cycle cannot exceed MCCount / MCServiceCycles.
	cfg := quickCfg()
	cfg.MCServiceCycles = 8 // tighten to make the bound visible
	r := mustRun(t, cfg, crossbar.New(64), uniformBenches(t, "mcf", 64))
	perCycle := float64(r.MemAccesses) / float64(cfg.Measure)
	bound := float64(8) / 8
	if perCycle > bound*1.02 {
		t.Errorf("memory throughput %.3f lines/cycle exceeds DDR bound %.3f", perCycle, bound)
	}
}

func TestTighterMCBandwidthHurts(t *testing.T) {
	benches := uniformBenches(t, "mcf", 64)
	fast := quickCfg()
	fast.MCServiceCycles = 1
	slow := quickCfg()
	slow.MCServiceCycles = 16
	rf := mustRun(t, fast, crossbar.New(64), benches)
	rs := mustRun(t, slow, crossbar.New(64), benches)
	if rs.SystemIPC >= rf.SystemIPC {
		t.Errorf("16-cycle DDR service IPC %.1f not below 1-cycle %.1f", rs.SystemIPC, rf.SystemIPC)
	}
}

func BenchmarkManycoreMix(b *testing.B) {
	mix := trace.TableVIMixes()[4]
	benches, err := mix.Assign(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Warmup: 1000, Measure: 5000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRun(b, cfg, crossbar.New(64), benches)
	}
}
