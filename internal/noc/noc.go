// Package noc composes switches into networks-on-chip: the 2D mesh of
// 3D Hi-Rise switches the paper sketches for kilo-core systems (§VI-E,
// Fig 13), and the flattened butterfly it is compared against. Routing
// between nodes is dimension-ordered over a pluggable Topology; within a
// node, the switch itself provides the "adaptable Z dimension" — any
// local port (core) or incoming link can reach any outgoing link or
// local port in one traversal.
//
// Packets are store-and-forward per hop with the same connection
// discipline as internal/sim (one arbitration cycle plus PacketFlits
// data cycles per traversal) and credit-based link-level flow control
// over bounded input buffers.
package noc

import (
	"context"
	"fmt"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/stats"
)

// Direction indexes a mesh neighbour.
const (
	east = iota
	west
	north
	south
	numDirs
)

func opposite(dir int) int {
	switch dir {
	case east:
		return west
	case west:
		return east
	case north:
		return south
	default:
		return north
	}
}

// Config describes the network.
type Config struct {
	// Topology wires the nodes. When nil, a Mesh is built from MeshW,
	// MeshH, Concentration, and LinkPorts (the original Fig 13 shape).
	Topology Topology
	// MeshW and MeshH are the mesh dimensions in nodes (used when
	// Topology is nil).
	MeshW, MeshH int
	// Concentration is the number of cores attached to each node (used
	// when Topology is nil).
	Concentration int
	// LinkPorts is the number of switch ports per direction (used when
	// Topology is nil).
	LinkPorts int
	// NewSwitch builds one node's switch; its radix must equal the
	// topology's.
	NewSwitch func() sim.Switch
	// PacketFlits is the packet length (default 4).
	PacketFlits int
	// SourceQueueCap bounds per-core injection queues (default 64).
	SourceQueueCap int
	// InputBufferPkts bounds each switch input port's packet buffer
	// (default 4). Forwarding is credit-based: a node only requests a
	// link when the downstream input buffer has room, so backpressure
	// propagates hop by hop. Dimension-ordered routing keeps the buffer
	// dependency graph acyclic, so bounded buffers cannot deadlock.
	InputBufferPkts int
	// AdaptiveLanes selects the candidate link lane with the most
	// downstream credit instead of hashing the flow onto a fixed lane.
	AdaptiveLanes bool
	// Warmup and Measure are window lengths in cycles.
	Warmup, Measure int64
	// Seed drives injection and the per-flow lane tie-break.
	Seed uint64
	// Obs attaches observability sinks: noc.* counters, the end-to-end
	// latency histogram, and per-hop-count latency histograms
	// ("noc.latency.hops=NN"), which split the latency distribution by
	// path length — the cheapest way to see whether congestion or
	// distance dominates. Nil is free and results are byte-identical
	// either way.
	Obs *obs.Observer
}

// Radix returns the node switch radix the configuration implies.
func (c Config) Radix() int {
	if c.Topology != nil {
		return c.Topology.Radix()
	}
	return c.Concentration + numDirs*c.LinkPorts
}

// Cores returns the total core count.
func (c Config) Cores() int {
	if c.Topology != nil {
		return c.Topology.Nodes() * c.Topology.Concentration()
	}
	return c.MeshW * c.MeshH * c.Concentration
}

func (c *Config) defaults() {
	if c.PacketFlits == 0 {
		c.PacketFlits = 4
	}
	if c.SourceQueueCap == 0 {
		c.SourceQueueCap = 64
	}
	if c.InputBufferPkts == 0 {
		c.InputBufferPkts = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 5000
	}
	if c.Measure == 0 {
		c.Measure = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Topology == nil {
		c.Topology = Mesh{W: c.MeshW, H: c.MeshH, Conc: c.Concentration, Lanes: c.LinkPorts}
	}
}

func (c *Config) validate() error {
	type validator interface{ validate() error }
	if v, ok := c.Topology.(validator); ok {
		if err := v.validate(); err != nil {
			return err
		}
	}
	if c.NewSwitch == nil {
		return fmt.Errorf("noc: no switch factory")
	}
	if got := c.NewSwitch().Radix(); got != c.Topology.Radix() {
		return fmt.Errorf("noc: switch radix %d, topology needs %d", got, c.Topology.Radix())
	}
	return nil
}

// Result reports one network simulation.
type Result struct {
	// AcceptedPackets is delivered packets per cycle across the network.
	AcceptedPackets float64
	// AvgLatency is mean end-to-end packet latency in cycles.
	AvgLatency float64
	// P99Latency is the 99th percentile latency.
	P99Latency float64
	// AvgHops is the mean number of switch traversals per packet.
	AvgHops float64
	// Injected and Delivered count packets during measurement.
	Injected, Delivered int64
	// Dropped counts injections lost to full source queues.
	Dropped int64
}

type packet struct {
	born     int64
	destCore int
	hops     int
	// flow is a seed-derived hash of (run seed, source core, injection
	// sequence), drawn without consuming the injection rng stream. It
	// spreads a flow's packets over equivalent lanes in pickRoute.
	flow uint32
}

// node is one switch plus its port queues.
type node struct {
	sw      sim.Switch
	inQ     [][]packet // per switch input port
	resv    []int      // per input port: credits reserved by in-flight transfers
	sending []bool     // per input port: connection active
	remain  []int
	sendPkt []packet
	sendOut []int // granted output port
	req     []int
}

// Network is a network instance, usable for one Run.
type Network struct {
	cfg   Config
	topo  Topology
	nodes []*node
	srcQ  [][]packet // per core
	rng   []*prng.Source
	seq   []int64 // per core: injection sequence, feeds the flow hash
	hist  *stats.Histogram
	hops  stats.Summary
	cand  []int // scratch: route candidates

	hopHist []*obs.Histogram // per-hop-count latency, lazily created
}

// New builds the network.
func New(cfg Config) (*Network, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	n := &Network{
		cfg:   cfg,
		topo:  topo,
		nodes: make([]*node, topo.Nodes()),
		srcQ:  make([][]packet, cfg.Cores()),
		rng:   make([]*prng.Source, cfg.Cores()),
		seq:   make([]int64, cfg.Cores()),
		hist:  stats.NewHistogram(8, 8192),
	}
	radix := topo.Radix()
	for i := range n.nodes {
		n.nodes[i] = &node{
			sw:      cfg.NewSwitch(),
			inQ:     make([][]packet, radix),
			resv:    make([]int, radix),
			sending: make([]bool, radix),
			remain:  make([]int, radix),
			sendPkt: make([]packet, radix),
			sendOut: make([]int, radix),
			req:     make([]int, radix),
		}
	}
	root := prng.New(cfg.Seed)
	for i := range n.rng {
		n.rng[i] = root.Split()
	}
	return n, nil
}

// nodeOfCore returns the node hosting a core and its local port.
func (n *Network) nodeOfCore(core int) (nodeIdx, port int) {
	c := n.topo.Concentration()
	return core / c, core % c
}

// pickRoute selects the output port for a packet at node idx: the flow
// hash chooses among equivalent candidates, or the lane with most
// downstream credit under AdaptiveLanes. It returns -1 when no candidate
// has credit (links only; local delivery is always accepted).
func (n *Network) pickRoute(idx int, pkt packet) int {
	n.cand = n.topo.RouteCandidates(n.cand[:0], idx, pkt.destCore)
	conc := n.topo.Concentration()
	if len(n.cand) == 1 && n.cand[0] < conc {
		return n.cand[0] // local delivery
	}
	credit := func(out int) int {
		nb, inPort := n.topo.LinkDest(idx, out)
		down := n.nodes[nb]
		return n.cfg.InputBufferPkts - len(down.inQ[inPort]) - down.resv[inPort]
	}
	if n.cfg.AdaptiveLanes {
		best, bestFree := -1, 0
		for _, out := range n.cand {
			if free := credit(out); free > bestFree {
				best, bestFree = out, free
			}
		}
		return best
	}
	// The lane hash must be seed-derived, not structural: hashing on
	// (destCore + hops) pins every same-destination flow to the same
	// lane at each hop, so hotspot traffic serializes on one lane of a
	// multi-lane bundle no matter how many lanes exist. The flow hash
	// varies per (source, packet) while staying a pure function of the
	// run seed, so lane balance is statistical and every run — at any
	// sweep worker count — reproduces exactly. The hop count stays in
	// the hash so one packet doesn't ride lane k of every bundle on its
	// path.
	out := n.cand[(int(pkt.flow)+pkt.hops)%len(n.cand)]
	if credit(out) <= 0 {
		return -1 // hold until the fixed lane has credit
	}
	return out
}

// hopHistFor returns (creating lazily) the per-hop-count latency
// histogram. Only called when an observer is attached.
func (n *Network) hopHistFor(hops int) *obs.Histogram {
	for hops >= len(n.hopHist) {
		n.hopHist = append(n.hopHist, nil)
	}
	if n.hopHist[hops] == nil {
		h := n.cfg.Obs.Histogram(fmt.Sprintf("noc.latency.hops=%02d", hops), 8, 8192)
		if h == nil {
			h = noopHist // observer without a metrics registry
		}
		n.hopHist[hops] = h
	}
	return n.hopHist[hops]
}

// noopHist absorbs observations when the observer has no registry.
var noopHist = &obs.Histogram{}

// Run drives the network for the configured windows. Traffic is uniform
// random over all cores at the given load (packets/cycle/core).
func (n *Network) Run(load float64) Result {
	res, _ := n.RunCtx(nil, load)
	return res
}

// ctxCheckInterval is how often (in simulated cycles) a cancellable run
// polls its context — same rationale as internal/sim: cheap enough to be
// unmeasurable, frequent enough to stop a cancelled kilo-core run within
// microseconds of wall time.
const ctxCheckInterval = 1024

// RunCtx is Run with cooperative cancellation: a non-nil ctx is polled
// every ctxCheckInterval cycles and the run aborts with the ctx error,
// returning a zero Result. A nil ctx never aborts and the simulated
// behaviour is byte-identical to Run.
func (n *Network) RunCtx(ctx context.Context, load float64) (Result, error) {
	cfg := n.cfg
	conc := n.topo.Concentration()
	obsOn := cfg.Obs != nil
	mInjected := cfg.Obs.Counter("noc.packets.injected")
	mDelivered := cfg.Obs.Counter("noc.packets.delivered")
	mDropped := cfg.Obs.Counter("noc.packets.dropped")
	mLatency := cfg.Obs.Histogram("noc.latency.cycles", 8, 8192)
	var injected, delivered, dropped int64
	total := cfg.Warmup + cfg.Measure

	type doneRec struct {
		nodeIdx, port int
	}
	for cycle := int64(0); cycle < total; cycle++ {
		if ctx != nil && cycle%ctxCheckInterval == 0 && ctx.Err() != nil {
			return Result{}, fmt.Errorf("noc: run cancelled at cycle %d: %w", cycle, ctx.Err())
		}
		measuring := cycle >= cfg.Warmup

		// Advance transmissions; completed packets move to the next hop
		// (or leave the network) after arbitration, then release.
		var done []doneRec
		for ni, nd := range n.nodes {
			for p := range nd.sending {
				if !nd.sending[p] {
					continue
				}
				nd.remain[p]--
				if nd.remain[p] == 0 {
					done = append(done, doneRec{ni, p})
				}
			}
		}

		// Build requests and arbitrate per node, respecting downstream
		// credits.
		for ni, nd := range n.nodes {
			for p := range nd.req {
				nd.req[p] = -1
				if nd.sending[p] || len(nd.inQ[p]) == 0 {
					continue
				}
				nd.req[p] = n.pickRoute(ni, nd.inQ[p][0])
			}
			for _, g := range nd.sw.Arbitrate(nd.req) {
				nd.sending[g.In] = true
				nd.remain[g.In] = cfg.PacketFlits
				nd.sendPkt[g.In] = nd.inQ[g.In][0]
				nd.sendOut[g.In] = g.Out
				nd.inQ[g.In] = nd.inQ[g.In][1:]
				if g.Out >= conc {
					// Reserve the downstream credit for the whole flight.
					nb, inPort := n.topo.LinkDest(ni, g.Out)
					n.nodes[nb].resv[inPort]++
				}
			}
		}

		// Complete finished traversals.
		for _, d := range done {
			nd := n.nodes[d.nodeIdx]
			nd.sending[d.port] = false
			nd.sw.Release(d.port)
			pkt := nd.sendPkt[d.port]
			pkt.hops++
			out := nd.sendOut[d.port]
			if out < conc {
				// Delivered to a local core.
				lat := cycle - pkt.born
				if measuring {
					delivered++
					n.hist.Add(float64(lat))
					n.hops.Add(float64(pkt.hops))
				}
				mDelivered.Inc()
				mLatency.Observe(float64(lat))
				if obsOn {
					n.hopHistFor(pkt.hops).Observe(float64(lat))
				}
				continue
			}
			// Arrive on the linked input port of the neighbour,
			// consuming the credit reserved at grant time.
			nb, inPort := n.topo.LinkDest(d.nodeIdx, out)
			n.nodes[nb].inQ[inPort] = append(n.nodes[nb].inQ[inPort], pkt)
			n.nodes[nb].resv[inPort]--
		}

		// Inject new packets and feed core input ports.
		for core := range n.srcQ {
			if n.rng[core].Bernoulli(load) {
				dest := n.rng[core].Intn(cfg.Cores())
				if len(n.srcQ[core]) >= cfg.SourceQueueCap {
					if measuring {
						dropped++
					}
					mDropped.Inc()
				} else {
					n.srcQ[core] = append(n.srcQ[core], packet{
						born:     cycle,
						destCore: dest,
						flow:     uint32(pool.SeedFor(cfg.Seed, uint64(core), uint64(n.seq[core]))),
					})
					n.seq[core]++
					if measuring {
						injected++
					}
					mInjected.Inc()
				}
			}
			if len(n.srcQ[core]) > 0 {
				ni, port := n.nodeOfCore(core)
				// The core's switch port accepts waiting packets into its
				// bounded input buffer.
				if len(n.nodes[ni].inQ[port]) < cfg.InputBufferPkts {
					n.nodes[ni].inQ[port] = append(n.nodes[ni].inQ[port], n.srcQ[core][0])
					n.srcQ[core] = n.srcQ[core][1:]
				}
			}
		}
	}

	return Result{
		AcceptedPackets: float64(delivered) / float64(cfg.Measure),
		AvgLatency:      n.hist.Mean(),
		P99Latency:      n.hist.Quantile(0.99),
		AvgHops:         n.hops.Mean(),
		Injected:        injected,
		Delivered:       delivered,
		Dropped:         dropped,
	}, nil
}
