package noc

import (
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/topo"
)

func smallMesh(w, h, conc, links int) Config {
	radix := conc + 4*links
	return Config{
		MeshW: w, MeshH: h,
		Concentration: conc, LinkPorts: links,
		NewSwitch: func() sim.Switch { return crossbar.New(radix) },
		Warmup:    2000, Measure: 8000, Seed: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := smallMesh(2, 2, 4, 1)
	bad.NewSwitch = func() sim.Switch { return crossbar.New(5) } // wrong radix
	if _, err := New(bad); err == nil {
		t.Error("radix mismatch accepted")
	}
	var zero Config
	if _, err := New(zero); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPacketsFlowAcrossMesh(t *testing.T) {
	n, err := New(smallMesh(2, 2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(0.02)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.AvgLatency < 5 {
		t.Errorf("latency %.1f below single-hop minimum", res.AvgLatency)
	}
	if res.Dropped > 0 {
		t.Errorf("dropped %d at 2%% load", res.Dropped)
	}
}

func TestHopCountMatchesXYRouting(t *testing.T) {
	// Uniform random on a WxH mesh: expected hops = E[manhattan] + 1
	// (every packet traverses its source node once plus one node per
	// mesh step). For a 4x1 line with 1 core per node, E|dx| over
	// uniform src,dst = 1.25.
	cfg := smallMesh(4, 1, 1, 1)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(0.05)
	want := 1.25 + 1
	if res.AvgHops < want-0.25 || res.AvgHops > want+0.25 {
		t.Errorf("avg hops %.2f, want ~%.2f", res.AvgHops, want)
	}
}

func TestLocalTrafficSingleHop(t *testing.T) {
	// A 1x1 mesh is a single switch: every packet takes exactly one hop.
	n, err := New(smallMesh(1, 1, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(0.05)
	if res.AvgHops != 1 {
		t.Errorf("avg hops %.2f, want exactly 1", res.AvgHops)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		n, err := New(smallMesh(3, 3, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		return n.Run(0.05)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestLargerMeshMoreHops(t *testing.T) {
	small, err := New(smallMesh(2, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(smallMesh(6, 6, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rs, rb := small.Run(0.02), big.Run(0.02)
	if rb.AvgHops <= rs.AvgHops {
		t.Errorf("6x6 hops %.2f not above 2x2 hops %.2f", rb.AvgHops, rs.AvgHops)
	}
}

func TestHiRiseNodesCompose(t *testing.T) {
	// The Fig 13 topology: mesh nodes are Hi-Rise switches. 2x2 mesh of
	// 64-radix nodes, 48 cores each.
	cfg := Config{
		MeshW: 2, MeshH: 2,
		Concentration: 48, LinkPorts: 4,
		NewSwitch: func() sim.Switch {
			sw, err := core.New(topo.Config{
				Radix: 64, Layers: 4, Channels: 4,
				Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			return sw
		},
		Warmup: 1000, Measure: 4000, Seed: 1,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(0.01)
	if res.Delivered == 0 {
		t.Fatal("no traffic through Hi-Rise mesh")
	}
	if res.AvgHops < 1 || res.AvgHops > 3.2 {
		t.Errorf("avg hops %.2f implausible for 2x2 concentrated mesh", res.AvgHops)
	}
}

func TestBoundedBuffersRespected(t *testing.T) {
	cfg := smallMesh(3, 3, 2, 1)
	cfg.InputBufferPkts = 2
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run saturated and check every buffer stays within bound at the
	// end of the run (the invariant holds each cycle; sampling the end
	// after heavy load is the observable part).
	res := n.Run(1.0)
	if res.Delivered == 0 {
		t.Fatal("credit backpressure deadlocked the mesh")
	}
	for ni, nd := range n.nodes {
		for p, q := range nd.inQ {
			if len(q) > cfg.InputBufferPkts {
				t.Fatalf("node %d port %d holds %d packets, bound %d", ni, p, len(q), cfg.InputBufferPkts)
			}
			if nd.resv[p] < 0 {
				t.Fatalf("node %d port %d negative credit reservation", ni, p)
			}
		}
	}
}

func TestTightBuffersStayLive(t *testing.T) {
	// The minimal buffer size must still make forward progress under
	// full backlog (XY routing is deadlock-free).
	cfg := smallMesh(4, 4, 2, 1)
	cfg.InputBufferPkts = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(1.0)
	if res.Delivered == 0 {
		t.Fatal("1-packet buffers deadlocked")
	}
	loose := smallMesh(4, 4, 2, 1)
	loose.InputBufferPkts = 16
	n2, err := New(loose)
	if err != nil {
		t.Fatal(err)
	}
	res2 := n2.Run(1.0)
	if res2.AcceptedPackets < res.AcceptedPackets {
		t.Errorf("deeper buffers (%.3f pkt/cyc) should not underperform tight ones (%.3f)",
			res2.AcceptedPackets, res.AcceptedPackets)
	}
}

func TestAdaptiveLanesHelpUnderLoad(t *testing.T) {
	// With several lanes per direction, credit-adaptive lane choice
	// should at least match fixed flow hashing at saturation.
	base := smallMesh(3, 3, 4, 4) // radix 20 nodes, 4 lanes per direction
	fixed, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCfg := base
	adaptiveCfg.AdaptiveLanes = true
	adaptive, err := New(adaptiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	rf, ra := fixed.Run(1.0), adaptive.Run(1.0)
	if ra.AcceptedPackets < 0.95*rf.AcceptedPackets {
		t.Errorf("adaptive lanes (%.3f pkt/cyc) clearly below fixed hashing (%.3f)",
			ra.AcceptedPackets, rf.AcceptedPackets)
	}
	if ra.Delivered == 0 {
		t.Fatal("adaptive mesh made no progress")
	}
}

func TestSaturationBoundedByCapacity(t *testing.T) {
	n, err := New(smallMesh(2, 2, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(1.0)
	// 16 cores cannot each exceed 0.2 packets/cycle delivery.
	if perCore := res.AcceptedPackets / 16; perCore > 0.2 {
		t.Errorf("per-core rate %.3f above physical bound 0.2", perCore)
	}
	if res.Dropped == 0 {
		t.Error("full backlog should drop at source queues")
	}
}

func TestFlowHashSpreadsSameDestAcrossLanes(t *testing.T) {
	// The regression the seed-derived flow hash fixes: hashing on
	// (destCore + hops) pinned every same-destination flow to one lane,
	// so hotspot traffic serialized on 1/Lanes of the bundle capacity.
	// Distinct packets toward the same core must now spread over lanes.
	cfg := smallMesh(2, 1, 2, 4)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	for i := 0; i < 64; i++ {
		pkt := packet{
			destCore: 3, // on the other node
			flow:     uint32(pool.SeedFor(cfg.Seed, 0, uint64(i))),
		}
		lanes[n.pickRoute(0, pkt)] = true
	}
	if len(lanes) < 2 {
		t.Fatalf("64 same-destination flows all picked the same lane %v", lanes)
	}
}

func TestSweepWorkerInvariance(t *testing.T) {
	// Kilo-core sweeps parallelize over load points; the flow hash is a
	// pure function of the seed, so results must be identical at any
	// worker count.
	loads := []float64{0.02, 0.05, 0.1, 0.3}
	sweep := func(workers int) []Result {
		out := make([]Result, len(loads))
		pool.Do(len(loads), workers, func(i int) {
			n, err := New(smallMesh(3, 3, 2, 2))
			if err != nil {
				panic(err)
			}
			out[i] = n.Run(loads[i])
		})
		return out
	}
	want := sweep(1)
	for _, workers := range []int{2, 4} {
		if got := sweep(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("sweep diverged at %d workers", workers)
		}
	}
}

func TestObsDoesNotPerturbNoc(t *testing.T) {
	run := func(o *obs.Observer) Result {
		cfg := smallMesh(3, 3, 2, 1)
		cfg.Obs = o
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n.Run(0.05)
	}
	plain := run(nil)
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	observed := run(o)
	if plain != observed {
		t.Fatalf("observer perturbed the run:\n%+v\n%+v", plain, observed)
	}
	if o.Counter("noc.packets.delivered").Value() == 0 {
		t.Fatal("noc.packets.delivered counter empty")
	}
	if o.Histogram("noc.latency.cycles", 8, 8192).Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	// 3x3 mesh uniform traffic spans several hop counts; the 2-hop
	// histogram must exist and hold samples.
	if o.Histogram("noc.latency.hops=02", 8, 8192).Count() == 0 {
		t.Fatal("per-hop-count latency histogram empty")
	}
}
