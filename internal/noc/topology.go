package noc

import "fmt"

// Topology defines the wiring of a switch-composed network: how many
// nodes, how each node's switch ports split between attached cores and
// links, which output ports make minimal progress toward a destination,
// and where each link lands. The paper's Fig 13 mesh is one instance;
// the flattened butterfly it is compared against (§VI-E, refs [4][20])
// is another.
type Topology interface {
	// Nodes returns the node count.
	Nodes() int
	// Concentration returns the cores attached to each node.
	Concentration() int
	// Radix returns each node's switch radix (concentration + links).
	Radix() int
	// RouteCandidates appends to dst the equivalent minimal-progress
	// output ports at node toward destCore (multiple lanes of the same
	// logical hop). A destination on the node itself yields its local
	// delivery port.
	RouteCandidates(dst []int, node, destCore int) []int
	// LinkDest maps (node, link output port) to the neighbouring node
	// and the input port the packet arrives on.
	LinkDest(node, out int) (int, int)
}

// Mesh is a W×H 2D mesh with XY dimension-ordered routing and LinkPorts
// lanes per direction — the Fig 13 topology. XY order keeps the buffer
// dependency graph acyclic, so bounded buffers cannot deadlock.
type Mesh struct {
	W, H  int
	Conc  int
	Lanes int
}

// Nodes returns the node count.
func (m Mesh) Nodes() int { return m.W * m.H }

// Concentration returns cores per node.
func (m Mesh) Concentration() int { return m.Conc }

// Radix returns the per-node switch radix.
func (m Mesh) Radix() int { return m.Conc + numDirs*m.Lanes }

// RouteCandidates implements Topology: X first, then Y, then local.
func (m Mesh) RouteCandidates(dst []int, node, destCore int) []int {
	dNode, dPort := destCore/m.Conc, destCore%m.Conc
	if node == dNode {
		return append(dst, dPort)
	}
	x, y := node%m.W, node/m.W
	dx, dy := dNode%m.W, dNode/m.W
	dir := south
	switch {
	case dx > x:
		dir = east
	case dx < x:
		dir = west
	case dy < y:
		dir = north
	}
	for lane := 0; lane < m.Lanes; lane++ {
		dst = append(dst, m.Conc+dir*m.Lanes+lane)
	}
	return dst
}

// LinkDest implements Topology: mesh links land on the mirrored input
// port of the adjacent node.
func (m Mesh) LinkDest(node, out int) (int, int) {
	dir := (out - m.Conc) / m.Lanes
	lane := (out - m.Conc) % m.Lanes
	var nb int
	switch dir {
	case east:
		nb = node + 1
	case west:
		nb = node - 1
	case north:
		nb = node - m.W
	default:
		nb = node + m.W
	}
	return nb, m.Conc + opposite(dir)*m.Lanes + lane
}

func (m Mesh) validate() error {
	if m.W < 1 || m.H < 1 || m.Conc < 1 || m.Lanes < 1 {
		return fmt.Errorf("noc: bad mesh %+v", m)
	}
	return nil
}

// FlattenedButterfly is a W×H grid where every node links directly to
// every other node in its row and in its column (refs [4][20]): any
// destination is at most two link hops away (row then column, dimension
// ordered — deadlock-free with bounded buffers).
//
// Port layout per node: Conc local ports, then (W-1)*Lanes row links (to
// the other columns in ascending x order, skipping self), then
// (H-1)*Lanes column links (ascending y, skipping self).
type FlattenedButterfly struct {
	W, H  int
	Conc  int
	Lanes int
}

// Nodes returns the node count.
func (f FlattenedButterfly) Nodes() int { return f.W * f.H }

// Concentration returns cores per node.
func (f FlattenedButterfly) Concentration() int { return f.Conc }

// Radix returns the per-node switch radix.
func (f FlattenedButterfly) Radix() int {
	return f.Conc + (f.W-1+f.H-1)*f.Lanes
}

// rowPort returns the first lane port toward column tx (tx != own x).
func (f FlattenedButterfly) rowPort(x, tx int) int {
	idx := tx
	if tx > x {
		idx--
	}
	return f.Conc + idx*f.Lanes
}

// colPort returns the first lane port toward row ty (ty != own y).
func (f FlattenedButterfly) colPort(y, ty int) int {
	idx := ty
	if ty > y {
		idx--
	}
	return f.Conc + (f.W-1)*f.Lanes + idx*f.Lanes
}

// RouteCandidates implements Topology: row hop first, then column hop,
// then local delivery.
func (f FlattenedButterfly) RouteCandidates(dst []int, node, destCore int) []int {
	dNode, dPort := destCore/f.Conc, destCore%f.Conc
	if node == dNode {
		return append(dst, dPort)
	}
	x, y := node%f.W, node/f.W
	dx, dy := dNode%f.W, dNode/f.W
	var base int
	if dx != x {
		base = f.rowPort(x, dx)
	} else {
		base = f.colPort(y, dy)
	}
	for lane := 0; lane < f.Lanes; lane++ {
		dst = append(dst, base+lane)
	}
	return dst
}

// LinkDest implements Topology. Row links land on the neighbour's row
// port pointing back; column links likewise.
func (f FlattenedButterfly) LinkDest(node, out int) (int, int) {
	x, y := node%f.W, node/f.W
	rel := out - f.Conc
	lane := rel % f.Lanes
	group := rel / f.Lanes
	if group < f.W-1 { // row link
		tx := group
		if tx >= x {
			tx++
		}
		nb := y*f.W + tx
		return nb, f.rowPort(tx, x) + lane
	}
	ty := group - (f.W - 1)
	if ty >= y {
		ty++
	}
	nb := ty*f.W + x
	return nb, f.colPort(ty, y) + lane
}

func (f FlattenedButterfly) validate() error {
	if f.W < 2 || f.H < 1 || f.Conc < 1 || f.Lanes < 1 {
		return fmt.Errorf("noc: bad flattened butterfly %+v", f)
	}
	return nil
}
