package noc

import (
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/sim"
)

// Property tests over the Topology contract: for every (node, dest)
// pair, RouteCandidates must yield ports whose links make strict
// progress toward the destination under the topology's own distance
// metric, and LinkDest must describe a consistent bidirectional wiring.
// These are the invariants the deadlock argument (dimension-ordered
// routing over an acyclic buffer graph) quietly depends on.

// meshDist is the mesh's routing metric: Manhattan distance.
func meshDist(m Mesh, a, b int) int {
	ax, ay := a%m.W, a/m.W
	bx, by := b%m.W, b/m.W
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// fbflyDist is the flattened butterfly's routing metric: one hop per
// differing dimension.
func fbflyDist(f FlattenedButterfly, a, b int) int {
	d := 0
	if a%f.W != b%f.W {
		d++
	}
	if a/f.W != b/f.W {
		d++
	}
	return d
}

// checkCandidatesProgress asserts, for every (node, destination core)
// pair, that RouteCandidates returns at least one port; that a packet
// already at its destination node gets exactly the local delivery port;
// and that every candidate link lands on a valid (node, input port)
// strictly closer to the destination.
func checkCandidatesProgress(t *testing.T, topo Topology, dist func(a, b int) int) {
	t.Helper()
	nodes, conc, radix := topo.Nodes(), topo.Concentration(), topo.Radix()
	for node := 0; node < nodes; node++ {
		for destCore := 0; destCore < nodes*conc; destCore++ {
			dNode := destCore / conc
			cands := topo.RouteCandidates(nil, node, destCore)
			if len(cands) == 0 {
				t.Fatalf("node %d -> core %d: no route candidates", node, destCore)
			}
			if node == dNode {
				if len(cands) != 1 || cands[0] != destCore%conc {
					t.Fatalf("node %d -> local core %d: candidates %v, want [%d]",
						node, destCore, cands, destCore%conc)
				}
				continue
			}
			for _, out := range cands {
				if out < conc || out >= radix {
					t.Fatalf("node %d -> core %d: candidate %d is not a link port [%d,%d)",
						node, destCore, out, conc, radix)
				}
				nb, in := topo.LinkDest(node, out)
				if nb < 0 || nb >= nodes || nb == node {
					t.Fatalf("node %d out %d: bad neighbour %d", node, out, nb)
				}
				if in < conc || in >= radix {
					t.Fatalf("node %d out %d: bad input port %d", node, out, in)
				}
				if got, was := dist(nb, dNode), dist(node, dNode); got >= was {
					t.Fatalf("node %d -> core %d via port %d: hop to %d is not closer (%d -> %d)",
						node, destCore, out, nb, was, got)
				}
			}
		}
	}
}

func TestMeshCandidatesMakeProgress(t *testing.T) {
	for _, m := range []Mesh{
		{W: 1, H: 1, Conc: 2, Lanes: 1},
		{W: 3, H: 3, Conc: 2, Lanes: 1},
		{W: 4, H: 2, Conc: 1, Lanes: 3},
		{W: 2, H: 5, Conc: 3, Lanes: 2},
	} {
		checkCandidatesProgress(t, m, func(a, b int) int { return meshDist(m, a, b) })
	}
}

func TestFBflyCandidatesMakeProgress(t *testing.T) {
	for _, f := range []FlattenedButterfly{
		{W: 2, H: 1, Conc: 1, Lanes: 1},
		{W: 3, H: 4, Conc: 2, Lanes: 2},
		{W: 4, H: 4, Conc: 1, Lanes: 3},
		{W: 5, H: 2, Conc: 3, Lanes: 1},
	} {
		checkCandidatesProgress(t, f, func(a, b int) int { return fbflyDist(f, a, b) })
	}
}

// TestMeshLinkSymmetry: every in-grid mesh link is bidirectionally
// consistent — following it and then the mirrored input port's reverse
// link returns to the origin. Only ports whose direction stays on the
// grid are checked; RouteCandidates never emits an off-grid direction,
// which TestMeshCandidatesMakeProgress already enforces.
func TestMeshLinkSymmetry(t *testing.T) {
	for _, m := range []Mesh{
		{W: 3, H: 3, Conc: 2, Lanes: 1},
		{W: 4, H: 2, Conc: 1, Lanes: 2},
	} {
		for node := 0; node < m.Nodes(); node++ {
			x, y := node%m.W, node/m.W
			for out := m.Conc; out < m.Radix(); out++ {
				dir := (out - m.Conc) / m.Lanes
				switch {
				case dir == east && x == m.W-1,
					dir == west && x == 0,
					dir == north && y == 0,
					dir == south && y == m.H-1:
					continue // off-grid: unreachable via RouteCandidates
				}
				nb, in := m.LinkDest(node, out)
				back, backIn := m.LinkDest(nb, in)
				if back != node || backIn != out {
					t.Fatalf("mesh %+v link (%d,%d)->(%d,%d) not symmetric: reverse gives (%d,%d)",
						m, node, out, nb, in, back, backIn)
				}
			}
		}
	}
}

// TestFBflyLinkCoverage: every node's link ports, followed through
// LinkDest, reach exactly the other nodes of its row and column — the
// defining wiring of the flattened butterfly.
func TestFBflyLinkCoverage(t *testing.T) {
	f := FlattenedButterfly{W: 4, H: 3, Conc: 2, Lanes: 2}
	for node := 0; node < f.Nodes(); node++ {
		x, y := node%f.W, node/f.W
		reached := map[int]int{} // neighbour -> lane count
		for out := f.Conc; out < f.Radix(); out++ {
			nb, _ := f.LinkDest(node, out)
			reached[nb]++
		}
		want := map[int]int{}
		for tx := 0; tx < f.W; tx++ {
			if tx != x {
				want[y*f.W+tx] = f.Lanes
			}
		}
		for ty := 0; ty < f.H; ty++ {
			if ty != y {
				want[ty*f.W+x] = f.Lanes
			}
		}
		if len(reached) != len(want) {
			t.Fatalf("node %d reaches %v, want %v", node, reached, want)
		}
		for nb, lanes := range want {
			if reached[nb] != lanes {
				t.Fatalf("node %d reaches %d via %d lanes, want %d", node, nb, reached[nb], lanes)
			}
		}
	}
}

// TestTopologyValidateRejectsDegenerateShapes: every zero or negative
// dimension is rejected by New rather than producing a wedged network.
func TestTopologyValidateRejectsDegenerateShapes(t *testing.T) {
	mk := func(topo Topology) Config {
		return Config{
			Topology:  topo,
			NewSwitch: func() sim.Switch { return crossbar.New(8) },
			Warmup:    100, Measure: 100, Seed: 1,
		}
	}
	bad := []Topology{
		Mesh{W: 0, H: 3, Conc: 2, Lanes: 1},
		Mesh{W: 3, H: 0, Conc: 2, Lanes: 1},
		Mesh{W: 3, H: 3, Conc: 0, Lanes: 1},
		Mesh{W: 3, H: 3, Conc: 2, Lanes: 0},
		Mesh{W: -1, H: 3, Conc: 2, Lanes: 1},
		FlattenedButterfly{W: 1, H: 3, Conc: 2, Lanes: 1}, // no row links
		FlattenedButterfly{W: 3, H: 0, Conc: 2, Lanes: 1},
		FlattenedButterfly{W: 3, H: 3, Conc: 0, Lanes: 1},
		FlattenedButterfly{W: 3, H: 3, Conc: 2, Lanes: -1},
	}
	for _, topo := range bad {
		if _, err := New(mk(topo)); err == nil {
			t.Errorf("degenerate topology %+v accepted", topo)
		}
	}
}
