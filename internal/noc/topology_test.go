package noc

import (
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/sim"
)

func fbfly(w, h, conc, lanes int) Config {
	t := FlattenedButterfly{W: w, H: h, Conc: conc, Lanes: lanes}
	return Config{
		Topology:  t,
		NewSwitch: func() sim.Switch { return crossbar.New(t.Radix()) },
		Warmup:    2000, Measure: 8000, Seed: 1,
	}
}

func TestFBflyRadix(t *testing.T) {
	f := FlattenedButterfly{W: 4, H: 4, Conc: 48, Lanes: 2}
	// 48 local + (3+3)*2 links = 60.
	if got := f.Radix(); got != 60 {
		t.Fatalf("radix %d, want 60", got)
	}
}

// TestFBflyLinkSymmetry checks every link is bidirectionally consistent:
// following LinkDest from (node, out) and then routing back lands on a
// port whose LinkDest returns the original node.
func TestFBflyLinkSymmetry(t *testing.T) {
	f := FlattenedButterfly{W: 3, H: 4, Conc: 2, Lanes: 2}
	for node := 0; node < f.Nodes(); node++ {
		for out := f.Conc; out < f.Radix(); out++ {
			nb, inPort := f.LinkDest(node, out)
			if nb < 0 || nb >= f.Nodes() || nb == node {
				t.Fatalf("node %d out %d: bad neighbour %d", node, out, nb)
			}
			if inPort < f.Conc || inPort >= f.Radix() {
				t.Fatalf("node %d out %d: bad input port %d", node, out, inPort)
			}
			// The reverse port on nb must point back at node.
			back, backIn := f.LinkDest(nb, inPort)
			if back != node || backIn != out {
				t.Fatalf("link (%d,%d)->(%d,%d) not symmetric: reverse gives (%d,%d)",
					node, out, nb, inPort, back, backIn)
			}
		}
	}
}

// TestFBflyDiameterTwo checks the defining property: every packet
// reaches its destination in at most 3 switch traversals (row hop,
// column hop, local delivery at the destination node).
func TestFBflyDiameterTwo(t *testing.T) {
	cfg := fbfly(4, 4, 2, 1)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(0.02)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.AvgHops > 3.0 {
		t.Errorf("avg hops %.2f exceeds the flattened butterfly bound", res.AvgHops)
	}
}

func TestFBflyRoutesRowFirst(t *testing.T) {
	f := FlattenedButterfly{W: 4, H: 4, Conc: 2, Lanes: 1}
	// Node 0 (0,0) -> core at node 15 (3,3): first hop must be the row
	// link toward column 3.
	cand := f.RouteCandidates(nil, 0, 15*2)
	if len(cand) != 1 {
		t.Fatalf("candidates %v", cand)
	}
	nb, _ := f.LinkDest(0, cand[0])
	if nb != 3 { // node (3,0)
		t.Fatalf("first hop to node %d, want 3 (row first)", nb)
	}
	// From (3,0) the next hop is the column link to (3,3).
	cand = f.RouteCandidates(nil, 3, 15*2)
	nb, _ = f.LinkDest(3, cand[0])
	if nb != 15 {
		t.Fatalf("second hop to node %d, want 15", nb)
	}
}

func TestFBflyFewerHopsThanMesh(t *testing.T) {
	meshCfg := smallMesh(4, 4, 2, 1)
	mesh, err := New(meshCfg)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := New(fbfly(4, 4, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rm, rf := mesh.Run(0.02), fb.Run(0.02)
	if rf.AvgHops >= rm.AvgHops {
		t.Errorf("flattened butterfly hops %.2f not below mesh %.2f", rf.AvgHops, rm.AvgHops)
	}
}

func TestFBflyBoundedBuffersLive(t *testing.T) {
	cfg := fbfly(4, 4, 3, 1)
	cfg.InputBufferPkts = 1
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := n.Run(1.0); res.Delivered == 0 {
		t.Fatal("flattened butterfly deadlocked with tight buffers")
	}
}

func TestFBflyValidate(t *testing.T) {
	bad := fbfly(1, 4, 2, 1) // W < 2 has no row links
	if _, err := New(bad); err == nil {
		t.Error("degenerate flattened butterfly accepted")
	}
}

func TestExplicitMeshTopologyMatchesImplicit(t *testing.T) {
	imp, err := New(smallMesh(3, 3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	expCfg := Config{
		Topology:  Mesh{W: 3, H: 3, Conc: 2, Lanes: 1},
		NewSwitch: func() sim.Switch { return crossbar.New(6) },
		Warmup:    2000, Measure: 8000, Seed: 1,
	}
	exp, err := New(expCfg)
	if err != nil {
		t.Fatal(err)
	}
	ri, re := imp.Run(0.05), exp.Run(0.05)
	if ri != re {
		t.Errorf("implicit and explicit mesh configs diverge: %+v vs %+v", ri, re)
	}
}
