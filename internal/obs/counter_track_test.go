package obs

import (
	"bytes"
	"strings"
	"testing"

	"github.com/reprolab/hirise/internal/tele"
)

func sampledRun(t *testing.T) (*Recorder, *tele.Sampler) {
	t.Helper()
	rec := NewRecorder(64)
	rec.Record(3, EvInject, 1, 2, 0)
	rec.Record(5, EvArbWin, 1, 2, 4)
	s := tele.NewSampler(8, 16)
	c := s.Counter("sim.flits.delivered")
	s.GaugeFunc("sim.queue.occupancy", func() float64 { return 2 })
	for cyc := int64(0); cyc < 32; cyc++ {
		c.Inc()
		s.Tick(cyc + 1)
	}
	return rec, s
}

// TestWriteChromeTraceWithCounters: counter tracks interleave with
// flit events as "C" phases on the run's pid, validate cleanly, and
// WriteChromeTrace stays byte-identical to the counter-less call.
func TestWriteChromeTraceWithCounters(t *testing.T) {
	rec, s := sampledRun(t)
	var buf bytes.Buffer
	if err := WriteChromeTraceWithCounters(&buf, []*Recorder{rec}, []*tele.Sampler{s}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChromeTrace: %v\n%s", err, out)
	}
	// 2 flit events + 2 series × 4 windows of counter samples.
	if n != 10 {
		t.Fatalf("event count = %d, want 10\n%s", n, out)
	}
	if !strings.Contains(out, `"ph":"C"`) {
		t.Fatalf("no counter events:\n%s", out)
	}
	if !strings.Contains(out, `{"name":"sim.queue.occupancy","ph":"C","ts":8,"pid":0,"tid":0,"args":{"value":2}}`) {
		t.Fatalf("counter sample malformed:\n%s", out)
	}

	var plain, viaNil bytes.Buffer
	if err := WriteChromeTrace(&plain, []*Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceWithCounters(&viaNil, []*Recorder{rec}, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), viaNil.Bytes()) {
		t.Fatal("WriteChromeTrace diverged from the nil-sampler call")
	}
	if strings.Contains(plain.String(), `"ph":"C"`) {
		t.Fatal("counter events leaked into the counter-less writer")
	}
}

// TestWriteChromeTraceCountersOnly: a telemetry-only export (no flit
// recorders at all) is still a valid trace document.
func TestWriteChromeTraceCountersOnly(t *testing.T) {
	_, s := sampledRun(t)
	var buf bytes.Buffer
	if err := WriteChromeTraceWithCounters(&buf, nil, []*tele.Sampler{nil, s}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChromeTrace: %v\n%s", err, buf.String())
	}
	if n != 8 {
		t.Fatalf("event count = %d, want 8", n)
	}
	// The nil run keeps its index: samples carry pid 1.
	if !strings.Contains(buf.String(), `"pid":1`) {
		t.Fatalf("run indices not preserved:\n%s", buf.String())
	}
}

// TestValidateChromeTraceRejectsBadCounter: "C" events need args.
func TestValidateChromeTraceRejectsBadCounter(t *testing.T) {
	bad := []byte(`{"traceEvents":[{"name":"x","ph":"C","ts":0,"pid":0,"tid":0}]}`)
	if _, err := ValidateChromeTrace(bad); err == nil {
		t.Fatal("validator accepted a counter event without args")
	}
}
