package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/reprolab/hirise/internal/stats"
)

// FairnessAudit accumulates per-(primary input, priority class)
// grant/denial/starvation-streak counters from the arbitration layer.
// It is fed by arb.CLRG and xpoint.CLRGColumn (class-aware) and by
// internal/core and internal/crossbar for the non-CLRG schemes (which
// report class 0): one Observe call per requesting contender per
// arbitration round, with won marking the round's winner. A starvation
// streak is the number of consecutive denied requests between wins; the
// request that wins does not extend the streak it ends.
//
// All methods are no-ops on a nil receiver. An audit is confined to one
// simulation goroutine.
type FairnessAudit struct {
	reqs, wins []int64 // per input
	streak     []int64 // per input: current run of denials
	maxStreak  []int64 // per input: longest run of denials
	classReqs  []int64 // per class
	classWins  []int64 // per class
}

// NewFairnessAudit returns an audit over the given number of primary
// inputs and priority classes (use classes 1 for class-less schemes).
func NewFairnessAudit(inputs, classes int) *FairnessAudit {
	if inputs <= 0 || classes <= 0 {
		panic(fmt.Sprintf("obs: invalid audit shape %d inputs x %d classes", inputs, classes))
	}
	return &FairnessAudit{
		reqs: make([]int64, inputs), wins: make([]int64, inputs),
		streak: make([]int64, inputs), maxStreak: make([]int64, inputs),
		classReqs: make([]int64, classes), classWins: make([]int64, classes),
	}
}

// Observe records that input, currently in class, contended in one
// arbitration round and won or lost it.
func (a *FairnessAudit) Observe(input, class int, won bool) {
	if a == nil {
		return
	}
	a.reqs[input]++
	a.classReqs[class]++
	if won {
		a.wins[input]++
		a.classWins[class]++
		a.streak[input] = 0
		return
	}
	a.streak[input]++
	if a.streak[input] > a.maxStreak[input] {
		a.maxStreak[input] = a.streak[input]
	}
}

// InputFairness is one input's audit totals.
type InputFairness struct {
	Input int `json:"input"`
	// Requests counts arbitration rounds the input contended in.
	Requests int64 `json:"requests"`
	// Wins counts rounds it won; Denials is Requests - Wins.
	Wins    int64 `json:"wins"`
	Denials int64 `json:"denials"`
	// MaxStarvation is the longest run of consecutive denials.
	MaxStarvation int64 `json:"max_starvation"`
	// WinShare is this input's fraction of all wins.
	WinShare float64 `json:"win_share"`
}

// ClassFairness is one priority class's audit totals (CLRG only; other
// schemes report everything under class 0).
type ClassFairness struct {
	Class    int   `json:"class"`
	Requests int64 `json:"requests"`
	Wins     int64 `json:"wins"`
	// WinShare is this class's fraction of all wins.
	WinShare float64 `json:"win_share"`
}

// FairnessReport is a rendered snapshot of a FairnessAudit.
type FairnessReport struct {
	Inputs  []InputFairness `json:"inputs"`
	Classes []ClassFairness `json:"classes"`
	// TotalWins and TotalRequests aggregate over inputs.
	TotalWins     int64 `json:"total_wins"`
	TotalRequests int64 `json:"total_requests"`
	// JainIndex is Jain's fairness index over per-input win counts
	// restricted to inputs that requested at least once (1 = perfectly
	// fair).
	JainIndex float64 `json:"jain_index"`
	// MaxStarvation is the longest denial run over all inputs.
	MaxStarvation int64 `json:"max_starvation"`
}

// Report renders the audit's current counters. A nil audit reports
// zero inputs.
func (a *FairnessAudit) Report() FairnessReport {
	var rep FairnessReport
	if a == nil {
		return rep
	}
	for _, w := range a.wins {
		rep.TotalWins += w
	}
	var active []float64
	for i := range a.reqs {
		rep.TotalRequests += a.reqs[i]
		inf := InputFairness{
			Input: i, Requests: a.reqs[i], Wins: a.wins[i],
			Denials: a.reqs[i] - a.wins[i], MaxStarvation: a.maxStreak[i],
		}
		if rep.TotalWins > 0 {
			inf.WinShare = float64(a.wins[i]) / float64(rep.TotalWins)
		}
		if a.reqs[i] > 0 {
			active = append(active, float64(a.wins[i]))
		}
		if a.maxStreak[i] > rep.MaxStarvation {
			rep.MaxStarvation = a.maxStreak[i]
		}
		rep.Inputs = append(rep.Inputs, inf)
	}
	for c := range a.classReqs {
		cf := ClassFairness{Class: c, Requests: a.classReqs[c], Wins: a.classWins[c]}
		if rep.TotalWins > 0 {
			cf.WinShare = float64(a.classWins[c]) / float64(rep.TotalWins)
		}
		rep.Classes = append(rep.Classes, cf)
	}
	rep.JainIndex = stats.JainIndex(active)
	return rep
}

// WriteText renders the report as an aligned table for humans.
func (r FairnessReport) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "fairness: %d wins / %d requests, Jain index %.4f, max starvation streak %d\n",
		r.TotalWins, r.TotalRequests, r.JainIndex, r.MaxStarvation)
	fmt.Fprintf(bw, "%-6s %10s %10s %10s %10s %9s\n",
		"input", "requests", "wins", "denials", "win-share", "max-starv")
	for _, in := range r.Inputs {
		if in.Requests == 0 {
			continue
		}
		fmt.Fprintf(bw, "%-6d %10d %10d %10d %10.4f %9d\n",
			in.Input, in.Requests, in.Wins, in.Denials, in.WinShare, in.MaxStarvation)
	}
	if len(r.Classes) > 1 {
		fmt.Fprintf(bw, "%-6s %10s %10s %10s\n", "class", "requests", "wins", "win-share")
		for _, c := range r.Classes {
			fmt.Fprintf(bw, "%-6d %10d %10d %10.4f\n", c.Class, c.Requests, c.Wins, c.WinShare)
		}
	}
	return bw.err
}

// WriteJSON renders the report as one indented JSON document.
func (r FairnessReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// errWriter latches the first write error so report rendering can use
// plain Fprintf calls.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
