package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing int64 metric. All methods are
// no-ops on a nil receiver, which is the disabled path.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value float64 metric, nil-safe like Counter.
type Gauge struct{ v float64 }

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last recorded value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bin-width histogram metric over
// [0, binWidth*len(bins)) with an overflow bucket. Negative
// observations clamp to bin 0; NaN observations are counted apart and
// excluded from the distribution. Nil-safe like Counter.
type Histogram struct {
	binWidth float64
	bins     []int64
	overflow int64
	nan      int64
	count    int64
	sum      float64
	min, max float64
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	if math.IsNaN(x) {
		h.nan++
		return
	}
	if h.count == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.count++
	h.sum += x
	switch {
	case x < 0:
		h.bins[0]++
	case x >= h.binWidth*float64(len(h.bins)): // also catches +Inf
		h.overflow++
	default:
		h.bins[int(x/h.binWidth)]++
	}
}

// Count returns the number of non-NaN observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the mean of non-NaN observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]) from the bin counts: the upper edge of the bin containing the
// rank-⌈q·count⌉ observation, clamped to the observed max. Ranks that
// land in the overflow bucket return the observed max. Empty (or nil)
// histograms return 0. The estimate's resolution is one bin width,
// which is exactly the shape a latency histogram needs for p50/p99
// reporting.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum >= rank {
			edge := h.binWidth * float64(i+1)
			if edge > h.max {
				return h.max
			}
			return edge
		}
	}
	return h.max
}

// histJSON is the stable serialized shape of a Histogram.
type histJSON struct {
	BinWidth float64 `json:"bin_width"`
	Count    int64   `json:"count"`
	Sum      float64 `json:"sum"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	Overflow int64   `json:"overflow"`
	NaN      int64   `json:"nan"`
	// Bins lists only occupied bins as [index, count] pairs to keep
	// dumps of sparse latency histograms small.
	Bins [][2]int64 `json:"bins"`
}

func (h *Histogram) marshal() histJSON {
	j := histJSON{
		BinWidth: h.binWidth, Count: h.count, Sum: h.sum,
		Min: h.min, Max: h.max, Overflow: h.overflow, NaN: h.nan,
		Bins: [][2]int64{},
	}
	for i, c := range h.bins {
		if c != 0 {
			j.Bins = append(j.Bins, [2]int64{int64(i), c})
		}
	}
	return j
}

// Registry is a typed metrics registry. Metric handles are interned by
// name: asking twice for the same name returns the same handle, so
// instrumentation sites can fetch handles up front and increment
// allocation-free afterwards. A nil *Registry hands out nil handles,
// which are valid no-op sinks. A Registry is confined to one simulation
// goroutine; concurrent sweeps use one Registry per point, merged in
// index order by the caller.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// shape on first use (the shape of an existing handle is not changed).
func (r *Registry) Histogram(name string, binWidth float64, bins int) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		if binWidth <= 0 || bins <= 0 {
			panic(fmt.Sprintf("obs: invalid histogram shape %v x %d", binWidth, bins))
		}
		h = &Histogram{binWidth: binWidth, bins: make([]int64, bins)}
		r.hists[name] = h
	}
	return h
}

// registryJSON is the stable serialized shape of a Registry. Map keys
// serialize in sorted order (encoding/json), so dumps are deterministic
// regardless of registration order.
type registryJSON struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

func (r *Registry) marshal() registryJSON {
	j := registryJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histJSON{},
	}
	for name, c := range r.counters {
		j.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		j.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		j.Histograms[name] = h.marshal()
	}
	return j
}

// WriteJSON dumps the registry as one indented JSON document with
// sorted keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.marshal())
}

// WriteText dumps the registry as aligned "name value" lines in sorted
// name order.
func (r *Registry) WriteText(w io.Writer) error {
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter   %-32s %d", name, c.v))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge     %-32s %g", name, g.v))
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf("histogram %-32s count=%d mean=%.3f min=%.3f max=%.3f overflow=%d nan=%d",
			name, h.count, h.Mean(), h.min, h.max, h.overflow, h.nan))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteRegistriesJSON dumps a sweep's per-point registries as one JSON
// array in point order, the multi-run counterpart of WriteJSON. Nil
// registries (points that were not observed) serialize as null.
func WriteRegistriesJSON(w io.Writer, regs []*Registry) error {
	docs := make([]*registryJSON, len(regs))
	for i, r := range regs {
		if r != nil {
			j := r.marshal()
			docs[i] = &j
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}
