package obs

import (
	"bytes"
	"math"
	"testing"
)

// populate registers the same metrics in the given name order,
// exercising map-iteration paths in the writers.
func populate(names []string) *Registry {
	r := NewRegistry()
	for _, n := range names {
		r.Counter("c." + n).Add(int64(len(n)))
		r.Gauge("g." + n).Set(float64(len(n)) + 0.5)
		h := r.Histogram("h."+n, 5, 8)
		h.Observe(float64(len(n)))
		h.Observe(float64(len(n) * 7))
	}
	return r
}

// TestWriteTextDeterministic pins WriteText's sorted-line contract:
// two registries holding identical metrics registered in opposite
// orders must serialize to identical bytes.
func TestWriteTextDeterministic(t *testing.T) {
	names := []string{"zeta", "alpha", "mid", "beta2", "a.very.long.metric.name"}
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	var a, b bytes.Buffer
	if err := populate(names).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := populate(rev).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("WriteText depends on registration order:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("WriteText wrote nothing")
	}
}

// TestWriteJSONDeterministic pins the same contract for WriteJSON and
// WriteRegistriesJSON (encoding/json sorts map keys; this test keeps
// that load-bearing assumption visible if the marshal shape changes).
func TestWriteJSONDeterministic(t *testing.T) {
	names := []string{"zeta", "alpha", "mid"}
	rev := []string{"mid", "alpha", "zeta"}
	var a, b bytes.Buffer
	if err := populate(names).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := populate(rev).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("WriteJSON depends on registration order:\n%s\nvs\n%s", a.String(), b.String())
	}

	var ma, mb bytes.Buffer
	if err := WriteRegistriesJSON(&ma, []*Registry{populate(names), nil}); err != nil {
		t.Fatal(err)
	}
	if err := WriteRegistriesJSON(&mb, []*Registry{populate(rev), nil}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
		t.Fatal("WriteRegistriesJSON depends on registration order")
	}
}

// TestHistogramEdgeBins pins the bin-edge semantics: exact boundary
// values land in the upper bin, the top boundary lands in overflow,
// negatives clamp to bin 0, +Inf overflows, NaN is counted apart.
func TestHistogramEdgeBins(t *testing.T) {
	h := NewRegistry().Histogram("h", 10, 4) // bins [0,10) [10,20) [20,30) [30,40)
	h.Observe(0)                             // exact lower edge → bin 0
	h.Observe(10)                            // exact boundary → bin 1
	h.Observe(29.999)                        // just under → bin 2
	h.Observe(30)                            // exact boundary → bin 3
	h.Observe(39.999)                        // top of last bin → bin 3
	h.Observe(40)                            // exact top boundary → overflow
	h.Observe(-0.001)                        // negative clamps to bin 0
	h.Observe(math.Inf(1))                   // +Inf → overflow
	h.Observe(math.NaN())                    // counted apart

	wantBins := []int64{2, 1, 1, 2}
	for i, want := range wantBins {
		if h.bins[i] != want {
			t.Fatalf("bins = %v, want %v", h.bins, wantBins)
		}
	}
	if h.overflow != 2 {
		t.Fatalf("overflow = %d, want 2", h.overflow)
	}
	if h.nan != 1 {
		t.Fatalf("nan = %d, want 1", h.nan)
	}
	// NaN is excluded from count, sum, min, max.
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.min != -0.001 {
		t.Fatalf("min = %g, want -0.001", h.min)
	}
	if !math.IsInf(h.max, 1) {
		t.Fatalf("max = %g, want +Inf", h.max)
	}
}

// TestHistogramEdgeBinsSurviveMerge: edge-bin placement is preserved
// bin-for-bin when merged into a fresh registry (the per-point →
// switch-wide fold).
func TestHistogramEdgeBinsSurviveMerge(t *testing.T) {
	point := NewRegistry()
	h := point.Histogram("h", 10, 4)
	h.Observe(10)
	h.Observe(40)
	h.Observe(-5)
	h.Observe(math.NaN())

	global := NewRegistry()
	global.Merge(point)
	g := global.Histogram("h", 10, 4)
	if g.bins[0] != 1 || g.bins[1] != 1 || g.overflow != 1 || g.nan != 1 {
		t.Fatalf("merged edge bins = %v overflow=%d nan=%d", g.bins, g.overflow, g.nan)
	}
}
