// Package obs is the switch-internals observability layer: a typed
// metrics registry, flit/packet lifecycle tracing (JSONL and Chrome
// trace-event JSON viewable in Perfetto), a CLRG fairness audit, and
// host-side profiling helpers for the CLIs.
//
// The package has two contracts. First, near-zero cost when disabled:
// every sink is a concrete pointer whose methods are no-ops on a nil
// receiver, so an instrumented hot loop pays a nil check and performs no
// allocations when observability is off (enforced by the
// allocation-regression tests in internal/core). Second, determinism:
// all recorded state is keyed by simulated cycle and owned by a single
// simulation goroutine; multi-run sinks are merged strictly in sweep
// index order, so emitted traces and reports are byte-identical at any
// internal/pool worker count. Observability output never goes to
// stdout — the CLIs write it to side files or stderr, keeping their
// stdout byte-identical to an uninstrumented run.
package obs

import "github.com/reprolab/hirise/internal/tele"

// Observer bundles the optional observability sinks threaded through
// the simulators. A nil *Observer — and a nil field inside a non-nil
// one — is fully functional: every accessor and every sink method
// nil-checks, so callers instrument unconditionally.
type Observer struct {
	// Metrics receives typed counters, gauges, and histograms.
	Metrics *Registry
	// Trace receives flit/packet lifecycle events.
	Trace *Recorder
	// Fairness receives per-(input, class) grant/denial observations
	// from the arbitration layer.
	Fairness *FairnessAudit
	// Tele receives windowed time-series samples (counter-delta and
	// gauge tracks) from the simulation loop.
	Tele *tele.Sampler
}

// Rec returns the trace recorder, or nil.
func (o *Observer) Rec() *Recorder {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Sampler returns the telemetry sampler, or nil.
func (o *Observer) Sampler() *tele.Sampler {
	if o == nil {
		return nil
	}
	return o.Tele
}

// Audit returns the fairness audit, or nil.
func (o *Observer) Audit() *FairnessAudit {
	if o == nil {
		return nil
	}
	return o.Fairness
}

// Counter returns the named counter from the metrics registry, or a
// no-op nil counter when the observer or its registry is absent.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or a no-op nil gauge.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or a no-op nil histogram.
func (o *Observer) Histogram(name string, binWidth float64, bins int) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, binWidth, bins)
}
