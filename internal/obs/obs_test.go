package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNilSinksAreSafe(t *testing.T) {
	// The entire disabled path: a nil Observer hands out nil handles and
	// every method is a no-op. Any panic here breaks the simulators'
	// unconditional instrumentation.
	var o *Observer
	o.Counter("x").Inc()
	o.Counter("x").Add(3)
	o.Gauge("g").Set(1.5)
	o.Histogram("h", 1, 8).Observe(2)
	o.Rec().Record(0, EvInject, 1, 2, 0)
	o.Audit().Observe(0, 0, true)
	if o.Counter("x").Value() != 0 || o.Gauge("g").Value() != 0 {
		t.Fatal("nil handles should read zero")
	}
	if o.Rec().Events() != nil || o.Rec().Dropped() != 0 {
		t.Fatal("nil recorder should be empty")
	}
	if rep := o.Audit().Report(); len(rep.Inputs) != 0 {
		t.Fatal("nil audit should report nothing")
	}
	// Observer with nil fields behaves the same.
	o2 := &Observer{}
	o2.Counter("x").Inc()
	o2.Rec().Record(0, EvEject, 0, 0, 0)
	o2.Audit().Observe(0, 0, false)
}

func TestRegistryInternsHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter handles not interned")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Error("gauge handles not interned")
	}
	if r.Histogram("c", 2, 4) != r.Histogram("c", 99, 99) {
		t.Error("histogram handles not interned (shape of existing handle must win)")
	}
	r.Counter("a").Add(5)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestHistogramMetricSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 2, 4) // [0,8) + overflow
	for _, x := range []float64{1, 3, 100, -5, math.Inf(1), math.NaN()} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5 (NaN excluded)", h.Count())
	}
	if h.nan != 1 {
		t.Errorf("nan = %d, want 1", h.nan)
	}
	if h.overflow != 2 {
		t.Errorf("overflow = %d, want 2 (100 and +Inf)", h.overflow)
	}
	if h.bins[0] != 2 { // 1 and the clamped -5
		t.Errorf("bins[0] = %d, want 2", h.bins[0])
	}
	if h.min != -5 || !math.IsInf(h.max, 1) {
		t.Errorf("min/max = %v/%v", h.min, h.max)
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	// Two registries populated in opposite orders must serialize
	// byte-identically: JSON maps sort keys.
	build := func(reverse bool) string {
		r := NewRegistry()
		names := []string{"alpha", "beta", "gamma"}
		if reverse {
			names = []string{"gamma", "beta", "alpha"}
		}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
			r.Gauge(n + ".g").Set(float64(len(n)))
			r.Histogram(n+".h", 1, 4).Observe(float64(len(n) % 4))
		}
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if build(false) != build(true) {
		t.Fatal("registry JSON depends on registration order")
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(int64(i), EvInject, i, 0, 0)
	}
	if len(r.Events()) != 3 {
		t.Errorf("%d events kept, want 3", len(r.Events()))
	}
	if r.Dropped() != 2 {
		t.Errorf("%d dropped, want 2", r.Dropped())
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, []*Recorder{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"meta":"truncated","dropped":2`) {
		t.Errorf("truncation not reported:\n%s", b.String())
	}
}

func sampleRecorders() []*Recorder {
	r0 := NewRecorder(0)
	r0.Record(0, EvInject, 3, 7, 0)
	r0.Record(0, EvVCAlloc, 3, 7, 1)
	r0.Record(2, EvArbWin, 3, 7, 4)
	r0.Record(5, EvArbLose, 4, 7, 0)
	r0.Record(6, EvL2LC, 3, 7, 12)
	r0.Record(7, EvEject, 3, 7, 7)
	r1 := NewRecorder(0)
	r1.Record(1, EvDrop, 0, 5, 0)
	return []*Recorder{r0, nil, r1}
}

func TestJSONLRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, sampleRecorders()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("validated %d events, want 7", n)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, sampleRecorders()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(b.Bytes())
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if n != 7 {
		t.Errorf("validated %d events, want 7", n)
	}
	// Empty runs still produce a valid document.
	b.Reset()
	if err := WriteChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateChromeTrace(b.Bytes()); err != nil || n != 0 {
		t.Errorf("empty trace: n=%d err=%v", n, err)
	}
}

func TestValidatorsRejectMalformed(t *testing.T) {
	if _, err := ValidateChromeTrace([]byte(`{"foo":1}`)); err == nil {
		t.Error("document without traceEvents accepted")
	}
	if _, err := ValidateChromeTrace([]byte(`{"traceEvents":[{"name":"x","ph":"q","ts":0,"pid":0,"tid":0}]}`)); err == nil {
		t.Error("unknown phase accepted")
	}
	if _, err := ValidateJSONL(strings.NewReader(`{"run":0,"cycle":1,"ev":"warp","in":0,"out":0,"aux":0}`)); err == nil {
		t.Error("unknown event kind accepted")
	}
	if _, err := ValidateJSONL(strings.NewReader(`not json`)); err == nil {
		t.Error("non-JSON line accepted")
	}
}

func TestFairnessAuditStreaks(t *testing.T) {
	a := NewFairnessAudit(2, 3)
	// Input 0: lose, lose, win, lose — max streak 2, current 1.
	a.Observe(0, 0, false)
	a.Observe(0, 1, false)
	a.Observe(0, 1, true)
	a.Observe(0, 0, false)
	// Input 1: always wins.
	a.Observe(1, 2, true)
	a.Observe(1, 2, true)
	rep := a.Report()
	if rep.TotalRequests != 6 || rep.TotalWins != 3 {
		t.Fatalf("totals %d/%d, want 6 requests 3 wins", rep.TotalRequests, rep.TotalWins)
	}
	in0 := rep.Inputs[0]
	if in0.Wins != 1 || in0.Denials != 3 || in0.MaxStarvation != 2 {
		t.Errorf("input 0: %+v", in0)
	}
	if rep.Inputs[1].MaxStarvation != 0 {
		t.Errorf("input 1 should have no starvation: %+v", rep.Inputs[1])
	}
	if rep.MaxStarvation != 2 {
		t.Errorf("report max starvation = %d, want 2", rep.MaxStarvation)
	}
	if c := rep.Classes[2]; c.Requests != 2 || c.Wins != 2 {
		t.Errorf("class 2: %+v", c)
	}
	// Jain over win counts {1, 2}: (3)^2 / (2*(1+4)) = 0.9.
	if math.Abs(rep.JainIndex-0.9) > 1e-12 {
		t.Errorf("Jain = %v, want 0.9", rep.JainIndex)
	}
	var text, js bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "max starvation streak 2") {
		t.Errorf("text report:\n%s", text.String())
	}
}

func TestHeartbeatAndRuntimeMetrics(t *testing.T) {
	stop := Heartbeat(&bytes.Buffer{}, 0, func() string { return "" })
	stop() // interval <= 0: no-op, stop must still be callable
	var b bytes.Buffer
	if err := WriteRuntimeMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "/sched/gomaxprocs:threads") {
		t.Error("runtime metrics snapshot missing standard metric")
	}
}
