package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sync"
	"time"
)

// ProfileConfig names the host-side profiling outputs a CLI run should
// produce. Empty fields are off. These observe the Go process, not the
// simulated switch, and write only to the named side files.
type ProfileConfig struct {
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile, MemProfile string
	// ExecTrace is a runtime/trace output path (go tool trace).
	ExecTrace string
	// RuntimeMetrics is a JSON dump path for a runtime/metrics snapshot
	// taken at stop time.
	RuntimeMetrics string
}

// StartProfiles starts the configured profilers and returns a stop
// function that finishes them (writing the heap profile and the
// runtime/metrics snapshot). The stop function must be called exactly
// once; it returns the first error encountered.
func StartProfiles(pc ProfileConfig) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			rtrace.Stop()
			traceF.Close()
		}
	}
	if pc.CPUProfile != "" {
		cpuF, err = os.Create(pc.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, err
		}
	}
	if pc.ExecTrace != "" {
		traceF, err = os.Create(pc.ExecTrace)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err = rtrace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		keep := func(err error) {
			if firstErr == nil && err != nil {
				firstErr = err
			}
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			keep(cpuF.Close())
		}
		if traceF != nil {
			rtrace.Stop()
			keep(traceF.Close())
		}
		if pc.MemProfile != "" {
			f, err := os.Create(pc.MemProfile)
			if err != nil {
				keep(err)
			} else {
				runtime.GC() // up-to-date allocation statistics
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		if pc.RuntimeMetrics != "" {
			f, err := os.Create(pc.RuntimeMetrics)
			if err != nil {
				keep(err)
			} else {
				keep(WriteRuntimeMetrics(f))
				keep(f.Close())
			}
		}
		return firstErr
	}, nil
}

// WriteRuntimeMetrics dumps a snapshot of every scalar runtime/metrics
// value as one sorted-key JSON document. Histogram-kind metrics are
// summarized to their total sample count (the full distributions belong
// in pprof/exec traces, not here).
func WriteRuntimeMetrics(w io.Writer) error {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := map[string]any{}
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			var n uint64
			for _, c := range s.Value.Float64Histogram().Counts {
				n += c
			}
			out[s.Name+":count"] = n
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Heartbeat starts a goroutine that writes progress() to w every
// interval until the returned stop function is called. It is the
// stderr liveness signal for long sweeps; an interval <= 0 is a no-op.
// The stop function is idempotent and waits for the goroutine to exit,
// so nothing is written after it returns.
func Heartbeat(w io.Writer, interval time.Duration, progress func() string) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		start := time.Now()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(w, "heartbeat: %s (elapsed %s)\n",
					progress(), time.Since(start).Round(time.Second))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
