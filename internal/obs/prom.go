package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of WritePrometheus output
// (text exposition format 0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name onto the Prometheus name
// charset [a-zA-Z0-9_:]: dots and any other foreign byte become
// underscores, and a leading digit gets a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (0.0.4): every metric gets # HELP and # TYPE
// lines, counters and gauges one sample each, histograms cumulative
// _bucket samples (one per occupied bin boundary plus the mandatory
// le="+Inf"), _sum, and _count. Metric names are sanitized via
// promName; families are emitted in sorted sanitized-name order, so
// output is deterministic regardless of registration order. Negative
// observations were clamped into the first bin by Observe and NaN
// observations are outside the distribution, mirroring the JSON dump.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type family struct {
		name string
		emit func(bw *bufio.Writer)
	}
	var fams []family
	for name, c := range r.counters {
		name, c := promName(name), c
		fams = append(fams, family{name, func(bw *bufio.Writer) {
			fmt.Fprintf(bw, "# HELP %s Monotonic event count.\n", name)
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			fmt.Fprintf(bw, "%s %d\n", name, c.v)
		}})
	}
	for name, g := range r.gauges {
		name, g := promName(name), g
		fams = append(fams, family{name, func(bw *bufio.Writer) {
			fmt.Fprintf(bw, "# HELP %s Last observed value.\n", name)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %s\n", name, promFloat(g.v))
		}})
	}
	for name, h := range r.hists {
		name, h := promName(name), h
		fams = append(fams, family{name, func(bw *bufio.Writer) {
			fmt.Fprintf(bw, "# HELP %s Fixed-bin-width distribution (width %s).\n", name, promFloat(h.binWidth))
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			// Cumulative buckets at occupied bin upper bounds. Emitting
			// only occupied boundaries keeps sparse latency histograms
			// small and is valid exposition: buckets are cumulative at
			// whatever le values are present.
			var cum int64
			for i, c := range h.bins {
				if c == 0 {
					continue
				}
				cum += c
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, promFloat(h.binWidth*float64(i+1)), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
			fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(h.sum))
			fmt.Fprintf(bw, "%s_count %d\n", name, h.count)
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.emit(bw)
	}
	return bw.Flush()
}

// Merge folds another histogram into h: bin counts, overflow, NaN,
// count, and sum add; min/max widen. Both histograms must share the
// same shape (bin width and bin count) — merging differently shaped
// histograms is a programming error and panics. Merging nil into
// anything (or anything into nil) is a no-op, matching the package's
// nil-safety contract.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 && o.nan == 0 {
		return
	}
	if h.binWidth != o.binWidth || len(h.bins) != len(o.bins) {
		panic(fmt.Sprintf("obs: merging histograms of different shapes: %gx%d vs %gx%d",
			h.binWidth, len(h.bins), o.binWidth, len(o.bins)))
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.overflow += o.overflow
	h.nan += o.nan
	h.count += o.count
	h.sum += o.sum
}

// Merge folds another registry into r: counters add, gauges take the
// other registry's value (it is the later observation — sweeps merge
// in point order), histograms Merge bin-wise. Metrics absent from r
// are created. The per-point registries of a sweep fold into one
// switch-wide registry this way. No-op when either side is nil.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for name, c := range o.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range o.gauges {
		r.Gauge(name).Set(g.v)
	}
	for name, h := range o.hists {
		r.Histogram(name, h.binWidth, len(h.bins)).Merge(h)
	}
}
