package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition bytes for a
// registry with one metric of each type: HELP/TYPE lines, cumulative
// occupied-bin buckets, the mandatory +Inf bucket, _sum and _count,
// and name sanitization (dots to underscores).
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.submitted").Add(7)
	r.Gauge("serve.queue.depth").Set(2.5)
	h := r.Histogram("sim.latency.cycles", 10, 4)
	h.Observe(3)  // bin 0
	h.Observe(3)  // bin 0
	h.Observe(25) // bin 2
	h.Observe(99) // overflow
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP serve_jobs_submitted Monotonic event count.
# TYPE serve_jobs_submitted counter
serve_jobs_submitted 7
# HELP serve_queue_depth Last observed value.
# TYPE serve_queue_depth gauge
serve_queue_depth 2.5
# HELP sim_latency_cycles Fixed-bin-width distribution (width 10).
# TYPE sim_latency_cycles histogram
sim_latency_cycles_bucket{le="10"} 2
sim_latency_cycles_bucket{le="30"} 3
sim_latency_cycles_bucket{le="+Inf"} 4
sim_latency_cycles_sum 130
sim_latency_cycles_count 4
`
	if got := buf.String(); got != want {
		t.Fatalf("WritePrometheus output:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic: registration order must not leak
// into the exposition (families are sorted by sanitized name).
func TestWritePrometheusDeterministic(t *testing.T) {
	mk := func(reverse bool) string {
		r := NewRegistry()
		names := []string{"a.zeta", "b.alpha", "a.mid"}
		if reverse {
			names = []string{"a.mid", "b.alpha", "a.zeta"}
		}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("g.one").Set(1)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if mk(false) != mk(true) {
		t.Fatalf("WritePrometheus depends on registration order:\n%s\nvs\n%s", mk(false), mk(true))
	}
}

// TestPromName: sanitization to the Prometheus charset.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.jobs.submitted": "serve_jobs_submitted",
		"already_fine:x":       "already_fine:x",
		"9starts.with.digit":   "_9starts_with_digit",
		"sim latency-µs":       "sim_latency___s", // µ is 2 bytes
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusNil: a nil registry writes nothing and no error.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}
}

// TestHistogramMerge: bin-wise addition, min/max widening, overflow
// and NaN accumulation.
func TestHistogramMerge(t *testing.T) {
	mk := func() *Histogram {
		return NewRegistry().Histogram("h", 10, 4)
	}
	a, b := mk(), mk()
	a.Observe(5)
	a.Observe(15)
	b.Observe(35)
	b.Observe(1000) // overflow
	b.Observe(math.NaN())
	b.Observe(-3) // clamps to bin 0
	a.Merge(b)
	if a.Count() != 5 {
		t.Fatalf("merged count = %d, want 5", a.Count())
	}
	if a.min != -3 || a.max != 1000 {
		t.Fatalf("merged min/max = %g/%g, want -3/1000", a.min, a.max)
	}
	if a.bins[0] != 2 || a.bins[1] != 1 || a.bins[3] != 1 || a.overflow != 1 || a.nan != 1 {
		t.Fatalf("merged bins = %v overflow=%d nan=%d", a.bins, a.overflow, a.nan)
	}
	if got, want := a.sum, 5.0+15+35+1000-3; got != want {
		t.Fatalf("merged sum = %g, want %g", got, want)
	}
}

// TestHistogramMergeEmptyAndNil: merging an empty or nil histogram
// changes nothing; nil receivers are no-ops.
func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewRegistry().Histogram("h", 10, 4)
	h.Observe(5)
	empty := NewRegistry().Histogram("h", 10, 4)
	h.Merge(empty)
	h.Merge(nil)
	if h.Count() != 1 || h.min != 5 || h.max != 5 {
		t.Fatalf("merge of empty/nil perturbed histogram: count=%d min=%g max=%g", h.Count(), h.min, h.max)
	}
	var nilH *Histogram
	nilH.Merge(h) // must not panic
}

// TestHistogramMergeShapeMismatch: merging differently shaped
// histograms is a programming error and must panic loudly.
func TestHistogramMergeShapeMismatch(t *testing.T) {
	a := NewRegistry().Histogram("a", 10, 4)
	b := NewRegistry().Histogram("b", 5, 4)
	a.Observe(1)
	b.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("shape-mismatched merge did not panic")
		}
	}()
	a.Merge(b)
}

// TestRegistryMerge: per-point registries fold into one — counters
// add, gauges take the later value, histograms merge, absent metrics
// are created.
func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(3)
	b.Counter("n").Add(4)
	b.Counter("only.b").Add(1)
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(2)
	a.Histogram("h", 10, 4).Observe(5)
	b.Histogram("h", 10, 4).Observe(15)
	a.Merge(b)
	if got := a.Counter("n").Value(); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only.b").Value(); got != 1 {
		t.Fatalf("created counter = %d, want 1", got)
	}
	if got := a.Gauge("g").Value(); got != 2 {
		t.Fatalf("merged gauge = %g, want 2 (later value wins)", got)
	}
	if got := a.Histogram("h", 10, 4).Count(); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
	// Nil on either side is a no-op.
	var nilR *Registry
	nilR.Merge(a)
	a.Merge(nilR)
	if got := a.Counter("n").Value(); got != 7 {
		t.Fatalf("nil merge perturbed registry: %d", got)
	}
}

// TestRegistryMergeMatchesPrometheus: merging two point registries and
// scraping gives the same exposition as observing everything into one
// registry — the property serve relies on for /metrics.
func TestRegistryMergeMatchesPrometheus(t *testing.T) {
	one := NewRegistry()
	for _, v := range []float64{3, 25, 99} {
		one.Histogram("lat", 10, 4).Observe(v)
	}
	one.Counter("n").Add(5)

	merged := NewRegistry()
	p1, p2 := NewRegistry(), NewRegistry()
	p1.Histogram("lat", 10, 4).Observe(3)
	p1.Counter("n").Add(2)
	p2.Histogram("lat", 10, 4).Observe(25)
	p2.Histogram("lat", 10, 4).Observe(99)
	p2.Counter("n").Add(3)
	merged.Merge(p1)
	merged.Merge(p2)

	var w1, w2 bytes.Buffer
	if err := one.WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("merged exposition differs:\n%s\nvs\n%s", w1.String(), w2.String())
	}
	if !strings.Contains(w1.String(), `lat_bucket{le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", w1.String())
	}
}
