package obs

import "testing"

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1.0, 100)
	// 100 observations 0.5, 1.5, ..., 99.5: one per bin.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1},      // rank clamps to 1 → first bin's upper edge
		{0.5, 50},   // rank 50 → bin 49 → edge 50
		{0.9, 90},   // rank 90 → bin 89 → edge 90
		{0.99, 99},  // rank 99 → bin 98 → edge 99
		{1, 99.5},   // last bin's edge 100 clamps to the observed max
		{1.5, 99.5}, // q clamps to 1
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// Overflow ranks report the observed max.
	h2 := NewRegistry().Histogram("lat", 1.0, 4)
	for _, x := range []float64{0.5, 1.5, 100, 250} {
		h2.Observe(x)
	}
	if got := h2.Quantile(0.99); got != 250 {
		t.Errorf("overflow Quantile(0.99) = %v, want 250", got)
	}
	if got := h2.Quantile(0.25); got != 1 {
		t.Errorf("Quantile(0.25) = %v, want 1", got)
	}

	// Nil and empty are 0.
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile != 0")
	}
	if NewRegistry().Histogram("e", 1, 4).Quantile(0.5) != 0 {
		t.Error("empty histogram Quantile != 0")
	}
}
