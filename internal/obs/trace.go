package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"github.com/reprolab/hirise/internal/tele"
)

// EventKind identifies one step of a flit/packet lifecycle.
type EventKind uint8

// Lifecycle event kinds, in the order a packet experiences them.
const (
	// EvInject: a packet entered an input's source queue (Out = dest).
	EvInject EventKind = iota
	// EvDrop: an injection was discarded at a full source queue.
	EvDrop
	// EvVCAlloc: a packet moved from the source queue into a virtual
	// channel (Aux = VC index).
	EvVCAlloc
	// EvArbWin: an input won arbitration and holds its output until the
	// packet's last flit (Aux = data cycles the connection will carry).
	EvArbWin
	// EvArbLose: an input requested an output this cycle and lost.
	EvArbLose
	// EvL2LC: a granted connection traverses a layer-to-layer channel
	// (Aux = global L2LC id).
	EvL2LC
	// EvEject: a packet's last flit left the switch (Aux = latency in
	// cycles from injection).
	EvEject
	// EvFlitDrop: a flit was lost crossing a lossy L2LC outage
	// (Aux = global L2LC id).
	EvFlitDrop
	// EvRetransmit: a source restarted a corrupted packet (Aux = retry
	// number, 1-based).
	EvRetransmit
	// EvRetryDrop: a corrupted packet exhausted its retry budget and was
	// abandoned (Aux = retries spent).
	EvRetryDrop
	// EvDeadFlow: a queued packet was retired because every path to its
	// destination is failed (Aux = its age in cycles).
	EvDeadFlow
	// EvFault: the fault plane failed a resource (In = resource id,
	// Out = -1, Aux = fault.Kind).
	EvFault
	// EvRepair: the fault plane repaired a resource (same fields).
	EvRepair

	numEventKinds = iota
)

var eventKindNames = [numEventKinds]string{
	"inject", "drop", "vc_alloc", "arb_win", "arb_lose", "l2lc", "eject",
	"flit_drop", "retransmit", "retry_drop", "dead_flow", "fault", "repair",
}

// String returns the event kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one lifecycle step, keyed by simulated switch cycle.
type Event struct {
	Cycle int64
	Kind  EventKind
	// In is the input port the event concerns.
	In int
	// Out is the output port involved, or -1.
	Out int
	// Aux carries per-kind detail (see the kind constants).
	Aux int
}

// DefaultMaxEvents bounds a Recorder that was not given an explicit
// capacity (~44 MB of events).
const DefaultMaxEvents = 1 << 20

// Recorder accumulates lifecycle events for one simulation run. It is
// bounded: past the cap it counts dropped events instead of growing,
// and every writer reports the truncation rather than hiding it. All
// methods are no-ops on a nil receiver. A Recorder is confined to one
// simulation goroutine; concurrent sweep points each use their own,
// merged in index order by WriteJSONL/WriteChromeTrace.
type Recorder struct {
	events  []Event
	max     int
	dropped int64
}

// NewRecorder returns a recorder holding at most maxEvents events
// (<= 0 selects DefaultMaxEvents).
func NewRecorder(maxEvents int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Recorder{max: maxEvents}
}

// Record appends one event, or counts it as dropped past the cap.
func (r *Recorder) Record(cycle int64, kind EventKind, in, out, aux int) {
	if r == nil {
		return
	}
	if len(r.events) >= r.max {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{Cycle: cycle, Kind: kind, In: in, Out: out, Aux: aux})
}

// Events returns the recorded events in record order (which is cycle
// order: the simulator is sequential).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Dropped returns how many events were discarded at the cap.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// WriteJSONL writes the runs' events as JSON Lines, one event per line,
// runs concatenated in index order. Each line carries the fields
// run, cycle, ev, in, out, aux; a final meta line per truncated run
// reports its drop count. Output is byte-deterministic for a
// deterministic simulation at any worker count, because run order is
// index order and each run's events were recorded sequentially.
func WriteJSONL(w io.Writer, runs []*Recorder) error {
	bw := bufio.NewWriter(w)
	for run, r := range runs {
		if r == nil {
			continue
		}
		for _, e := range r.events {
			fmt.Fprintf(bw, `{"run":%d,"cycle":%d,"ev":%q,"in":%d,"out":%d,"aux":%d}`+"\n",
				run, e.Cycle, e.Kind.String(), e.In, e.Out, e.Aux)
		}
		if r.dropped > 0 {
			fmt.Fprintf(bw, `{"run":%d,"meta":"truncated","dropped":%d}`+"\n", run, r.dropped)
		}
	}
	return bw.Flush()
}

// WriteChromeTrace writes the runs' events as Chrome trace-event JSON
// (the format Perfetto and chrome://tracing load): a {"traceEvents":
// [...]} document where one simulated cycle maps to one microsecond of
// trace time, the run index is the pid, and the input port is the tid.
// EvArbWin becomes a complete ("X") slice spanning the connection's
// occupancy; every other kind becomes a thread-scoped instant ("i").
// Like WriteJSONL, output is byte-deterministic at any worker count.
func WriteChromeTrace(w io.Writer, runs []*Recorder) error {
	return WriteChromeTraceWithCounters(w, runs, nil)
}

// WriteChromeTraceWithCounters is WriteChromeTrace plus telemetry: each
// run's sampler series become Chrome counter-track ("C") events on the
// same pid timeline, so Perfetto shows queue occupancy, accepted
// throughput, in-flight flits, and retry pressure as step plots
// alongside the flit slices. Counter samples are stamped at their
// window's start (Perfetto holds the value until the next sample);
// non-finite samples are skipped. runs[i] and samps[i] describe the
// same simulation; either slice may be shorter or hold nils. Output
// stays byte-deterministic at any worker count.
func WriteChromeTraceWithCounters(w io.Writer, runs []*Recorder, samps []*tele.Sampler) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	n := len(runs)
	if len(samps) > n {
		n = len(samps)
	}
	for run := 0; run < n; run++ {
		var r *Recorder
		if run < len(runs) {
			r = runs[run]
		}
		if r != nil {
			for _, e := range r.events {
				switch e.Kind {
				case EvArbWin:
					// One arbitration cycle plus the data cycles of occupancy.
					emit(`{"name":"conn->%d","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"out":%d,"data_cycles":%d}}`,
						e.Out, e.Cycle, e.Aux+1, run, e.In, e.Out, e.Aux)
				default:
					emit(`{"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"out":%d,"aux":%d}}`,
						e.Kind.String(), e.Cycle, run, e.In, e.Out, e.Aux)
				}
			}
			if r.dropped > 0 {
				emit(`{"name":"trace_truncated","ph":"i","ts":0,"pid":%d,"tid":0,"s":"p","args":{"dropped":%d}}`,
					run, r.dropped)
			}
		}
		if run < len(samps) && samps[run] != nil {
			for _, series := range samps[run].Series() {
				for i, v := range series.Values {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						continue
					}
					emit(`{"name":%q,"ph":"C","ts":%d,"pid":%d,"tid":0,"args":{"value":%s}}`,
						series.Name, int64(i)*series.Window, run,
						strconv.FormatFloat(v, 'g', -1, 64))
				}
			}
		}
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

// chromeEvent is the subset of the trace-event schema the validator
// checks.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   *float64         `json:"ts"`
	Pid  *int             `json:"pid"`
	Tid  *int             `json:"tid"`
	Dur  *float64         `json:"dur"`
	S    string           `json:"s"`
	Args *json.RawMessage `json:"args"`
}

// ValidateChromeTrace checks that data is a well-formed Chrome
// trace-event JSON document as emitted by WriteChromeTrace[WithCounters]:
// a traceEvents array whose entries all carry name/ph/ts/pid/tid, with
// ph limited to complete ("X", requiring a non-negative dur), instant
// ("i", requiring a scope), and counter ("C", requiring args) events.
// It returns the event count.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, e := range doc.TraceEvents {
		where := fmt.Sprintf("obs: traceEvents[%d]", i)
		switch {
		case e.Name == "":
			return 0, fmt.Errorf("%s: missing name", where)
		case e.Ts == nil || e.Pid == nil || e.Tid == nil:
			return 0, fmt.Errorf("%s (%s): missing ts/pid/tid", where, e.Name)
		case *e.Ts < 0:
			return 0, fmt.Errorf("%s (%s): negative ts %v", where, e.Name, *e.Ts)
		}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return 0, fmt.Errorf("%s (%s): X event needs dur >= 0", where, e.Name)
			}
		case "i":
			if e.S == "" {
				return 0, fmt.Errorf("%s (%s): instant event needs a scope", where, e.Name)
			}
		case "C":
			if e.Args == nil {
				return 0, fmt.Errorf("%s (%s): counter event needs args", where, e.Name)
			}
		default:
			return 0, fmt.Errorf("%s (%s): unexpected phase %q", where, e.Name, e.Ph)
		}
	}
	return len(doc.TraceEvents), nil
}

// ValidateJSONL checks that every line of r is a well-formed lifecycle
// event as emitted by WriteJSONL (or a truncation meta line) and
// returns the event count.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	known := map[string]bool{}
	for _, n := range eventKindNames {
		known[n] = true
	}
	n, line := 0, 0
	for sc.Scan() {
		line++
		var e struct {
			Run   *int   `json:"run"`
			Cycle *int64 `json:"cycle"`
			Ev    string `json:"ev"`
			In    *int   `json:"in"`
			Out   *int   `json:"out"`
			Aux   *int   `json:"aux"`
			Meta  string `json:"meta"`
			Drops *int64 `json:"dropped"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return 0, fmt.Errorf("obs: line %d is not valid JSON: %w", line, err)
		}
		if e.Run == nil || *e.Run < 0 {
			return 0, fmt.Errorf("obs: line %d: missing run", line)
		}
		if e.Meta != "" {
			if e.Meta != "truncated" || e.Drops == nil {
				return 0, fmt.Errorf("obs: line %d: malformed meta line", line)
			}
			continue
		}
		switch {
		case e.Cycle == nil || *e.Cycle < 0:
			return 0, fmt.Errorf("obs: line %d: missing cycle", line)
		case !known[e.Ev]:
			return 0, fmt.Errorf("obs: line %d: unknown event kind %q", line, e.Ev)
		case e.In == nil || e.Out == nil || e.Aux == nil:
			return 0, fmt.Errorf("obs: line %d: missing in/out/aux", line)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return n, nil
}
