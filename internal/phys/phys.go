// Package phys is the circuit-level cost model: silicon area, operating
// frequency, energy per 128-bit transaction, and TSV count for each switch
// family (flat 2D Swizzle-Switch, 3D folded, Hi-Rise).
//
// The paper derives these numbers from SPICE netlists in a commercial
// 32 nm SOI process, verified against Swizzle-Switch silicon. We replace
// SPICE with an analytic wire-geometry model — matrix crossbars are
// wire-dominated, so delay and energy scale with bus lengths and area with
// the wire grid footprint — and calibrate its constants so the paper's
// published 64-radix anchor points (Tables I, IV, V) are reproduced to
// within ~2%. The scaling *shapes* (frequency vs. radix in Fig 9a,
// frequency vs. layer count in Fig 9b, energy vs. radix in Fig 9c,
// area/frequency vs. TSV pitch in Fig 12) then emerge from the geometry
// rather than from per-point fitting.
//
// Calibration anchors (paper -> model):
//
//	2D 64x64:          0.672 mm², 1.69 GHz, 71 pJ          (exact, 1.69, 71.0)
//	3D folded 4-layer: 0.705 mm², 1.58 GHz, 73 pJ, 8192 TSV (0.705, 1.58, 73.0)
//	Hi-Rise c=4:       0.451 mm², 2.24 GHz, 42 pJ, 6144 TSV (0.452, 2.24, 42.0)
//	Hi-Rise c=2:       0.315 mm², 2.46 GHz, 39 pJ, 3072 TSV (0.315, 2.49, 38.7)
//	Hi-Rise c=1:       0.247 mm², 2.64 GHz, 37 pJ, 1536 TSV (0.247, 2.64, 37.0)
//	Hi-Rise CLRG:      0.451 mm², 2.20 GHz, 44 pJ           (0.452, 2.20, 44.0)
package phys

import (
	"math"

	"github.com/reprolab/hirise/internal/topo"
)

// Tech captures the process and 3D-integration technology parameters
// (paper Table II plus the wire geometry the Swizzle-Switch layout uses:
// two stacked metal layers per direction at double pitch).
type Tech struct {
	// WirePitchMM is the effective per-track pitch of the crossbar wire
	// grid in mm (double-pitched for coupling, two metal layers stacked).
	WirePitchMM float64
	// FlitBits is the datapath width; every port is a FlitBits-wide bus.
	FlitBits int
	// TSVPitchUM is the through-silicon-via pitch in µm.
	TSVPitchUM float64
	// TSVCapFF is the TSV feed-through capacitance in fF.
	TSVCapFF float64
	// TSVResOhm is the TSV resistance in ohms.
	TSVResOhm float64
	// SupplyV is the supply voltage.
	SupplyV float64
}

// Default32nm returns the paper's evaluation technology: 32 nm SOI,
// 128-bit flits, 0.8 µm / 0.2 fF / 1.5 Ω TSVs (Table II), 1 V, 27 C.
func Default32nm() Tech {
	return Tech{
		WirePitchMM: 1.0007e-4, // ~100 nm effective track pitch
		FlitBits:    128,
		TSVPitchUM:  0.8,
		TSVCapFF:    0.2,
		TSVResOhm:   1.5,
		SupplyV:     1.0,
	}
}

// Cost is the implementation cost of one switch configuration, matching
// the columns of the paper's Tables I/IV/V (throughput comes from the
// network simulator, not from phys).
type Cost struct {
	AreaMM2  float64 // total silicon area across all layers
	FreqGHz  float64 // operating frequency
	EnergyPJ float64 // energy per 128-bit transaction
	TSVs     int     // vertical paths × bus width
	Feasible bool    // false for schemes the paper deems unimplementable
}

// CycleNS returns the cycle time in nanoseconds.
func (c Cost) CycleNS() float64 { return 1 / c.FreqGHz }

// Model constants, calibrated against the anchors in the package comment.
// Units: ns, mm, pJ.
const (
	// Flat 2D Swizzle-Switch: delay = fix2D + lin2D·len + rc2D·len²,
	// where len is the total input-bus + output-bus length 2·N·W·pitch.
	fix2D = 0.126568 // precharge + sense-amp + latch overhead, ns
	lin2D = 0.267859 // repeated-wire delay, ns/mm
	rc2D  = 0.009779 // distributed RC, ns/mm²

	// 2D energy = eFix2D + ePerMM2D·len.
	eFix2D   = 10.0 // clocking + arbitration logic, pJ
	ePerMM2D = 37.2 // wire + cross-point switching, pJ/mm

	// Hi-Rise: each of the two clock phases (paper Fig 8) evaluates one
	// block; phase delay = linHR·len + rcHR·len² with len the block's
	// input+output bus length; plus a fixed per-phase overhead and a TSV
	// transit term.
	fixPhaseHR = 0.07     // per-phase precharge/sense overhead, ns
	linHR      = 0.263613 // ns/mm
	rcHR       = 0.0363   // ns/mm²
	tsvDelayNS = 0.014466 // per layer of vertical distance at 0.8 µm pitch
	tsvDelayK  = 0.8      // delay grows with (pitch/0.8)^tsvDelayK

	// CLRG adds the class-counter multiplexers to the inter-layer
	// cross-point evaluation path (paper §IV-B1); the counters also burn
	// a little energy. No area cost: the logic fits under the wire grid.
	clrgDelayNS  = 0.008
	clrgEnergyPJ = 2.0

	// Hi-Rise energy = ePerMMHR·(1 + pathLenMM).
	ePerMMHR = 21.7 // pJ and pJ/mm (fixed part equals the slope after calibration)

	// 3D folded: the 2D switch plus TSV loading on every output bus.
	foldDelayPerLayer = 0.013634 // ns per layer boundary at 0.8 µm pitch
	foldEnergyPJ      = 2.0      // TSV switching overhead, pJ

	// TSV silicon area: each vertical path costs gamma·pitch² of
	// punched-through silicon including routing; clustering the L2LC TSVs
	// amortizes keep-out zones, increasingly so at larger pitches
	// (paper §VI-C), hence the sqrt(0.8/pitch) derating.
	tsvGammaHiRise = 5.4
	tsvGammaFolded = 6.3 // folded TSVs are scattered per-output; no clustering
)

// trackMM returns the physical extent of an n-port bus bundle in mm.
func (t Tech) trackMM(ports int) float64 {
	return float64(ports) * float64(t.FlitBits) * t.WirePitchMM
}

// tsvAreaMM2 returns the silicon area consumed by n vertical paths of
// FlitBits TSVs each.
func (t Tech) tsvAreaMM2(paths int, gamma float64) float64 {
	pitchMM := t.TSVPitchUM * 1e-3
	derate := math.Sqrt(0.8 / t.TSVPitchUM)
	return float64(paths*t.FlitBits) * gamma * derate * pitchMM * pitchMM
}

// tsvDelay returns the vertical transit delay over dist layer boundaries.
func (t Tech) tsvDelay(dist int) float64 {
	return tsvDelayNS * float64(dist) * math.Pow(t.TSVPitchUM/0.8, tsvDelayK)
}

// tsvEnergyPJ returns the switching energy of one FlitBits-wide vertical
// hop; capacitance scales with TSV size.
func (t Tech) tsvEnergyPJ() float64 {
	capPF := float64(t.FlitBits) * t.TSVCapFF * 1e-3 * (t.TSVPitchUM / 0.8)
	return 0.5 * capPF * t.SupplyV * t.SupplyV
}

// Flat2D returns the implementation cost of an N×N 2D Swizzle-Switch.
func Flat2D(radix int, t Tech) Cost {
	side := t.trackMM(radix)
	length := 2 * side
	return Cost{
		AreaMM2:  side * side,
		FreqGHz:  1 / (fix2D + lin2D*length + rc2D*length*length),
		EnergyPJ: eFix2D + ePerMM2D*length,
		TSVs:     0,
		Feasible: true,
	}
}

// Folded returns the cost of the baseline 3D design: the 2D switch folded
// over the given number of layers ([N/L × N] per layer, paper §II-B).
// Folding keeps the wire and device capacitance of the 2D switch and adds
// TSV loading on every output bus, so it is slower than 2D.
func Folded(radix, layers int, t Tech) Cost {
	base := Flat2D(radix, t)
	base.FreqGHz = 1 / (base.CycleNS() + foldDelayPerLayer*float64(layers-1)*
		math.Pow(t.TSVPitchUM/0.8, tsvDelayK))
	base.EnergyPJ += foldEnergyPJ + t.tsvEnergyPJ()
	base.TSVs = radix * t.FlitBits
	base.AreaMM2 += t.tsvAreaMM2(radix, tsvGammaFolded)
	return base
}

// Breakdown itemizes a Hi-Rise configuration's cycle time, silicon
// area, and per-transaction energy by component, for the architecture
// analysis (where does the cycle go, what does a channel cost).
type Breakdown struct {
	// Cycle time components, ns.
	Phase1NS   float64 // local-switch evaluation (paper Fig 8 phase 1)
	Phase2NS   float64 // inter-layer sub-block evaluation (phase 2)
	TSVNS      float64 // vertical transit
	OverheadNS float64 // precharge/sense-amp overhead of both phases
	SchemeNS   float64 // CLRG counter-mux delay (zero for L-2-L LRG)

	// Area components, mm² (totals across all layers).
	LocalAreaMM2 float64
	InterAreaMM2 float64
	TSVAreaMM2   float64

	// Energy components, pJ per 128-bit transaction.
	WireEnergyPJ   float64
	FixedEnergyPJ  float64
	TSVEnergyPJ    float64
	SchemeEnergyPJ float64
}

// CycleNS returns the total cycle time.
func (b Breakdown) CycleNS() float64 {
	return b.Phase1NS + b.Phase2NS + b.TSVNS + b.OverheadNS + b.SchemeNS
}

// AreaMM2 returns the total silicon area.
func (b Breakdown) AreaMM2() float64 {
	return b.LocalAreaMM2 + b.InterAreaMM2 + b.TSVAreaMM2
}

// EnergyPJ returns the total energy per transaction.
func (b Breakdown) EnergyPJ() float64 {
	return b.WireEnergyPJ + b.FixedEnergyPJ + b.TSVEnergyPJ + b.SchemeEnergyPJ
}

// HiRiseBreakdown itemizes the cost model for one configuration.
// Non-divisible radix/layer combinations (used by the Fig 9b sweeps)
// round ports-per-layer up.
func HiRiseBreakdown(cfg topo.Config, t Tech) Breakdown {
	ports := (cfg.Radix + cfg.Layers - 1) / cfg.Layers
	l2lcPerLayer := cfg.Channels * (cfg.Layers - 1)
	subIn := l2lcPerLayer + 1

	lenLocal := t.trackMM(ports + ports + l2lcPerLayer) // inputs + all local-switch outputs
	lenIL := t.trackMM(ports + subIn)                   // sub-block span + contender buses
	paths := cfg.Layers * (cfg.Layers - 1) * cfg.Channels

	b := Breakdown{
		Phase1NS:   linHR*lenLocal + rcHR*lenLocal*lenLocal,
		Phase2NS:   linHR*lenIL + rcHR*lenIL*lenIL,
		TSVNS:      t.tsvDelay(cfg.Layers - 1),
		OverheadNS: 2 * fixPhaseHR,

		LocalAreaMM2: float64(cfg.Layers) * t.trackMM(ports+l2lcPerLayer) * t.trackMM(ports),
		InterAreaMM2: float64(cfg.Layers) * t.trackMM(ports) * t.trackMM(subIn),
		TSVAreaMM2:   t.tsvAreaMM2(paths, tsvGammaHiRise),

		WireEnergyPJ:  ePerMMHR * (lenLocal + lenIL),
		FixedEnergyPJ: ePerMMHR,
		TSVEnergyPJ:   t.tsvEnergyPJ(),
	}
	if cfg.Scheme == topo.CLRG || cfg.Scheme == topo.WLRG {
		b.SchemeNS = clrgDelayNS
		b.SchemeEnergyPJ = clrgEnergyPJ
	}
	return b
}

// HiRise returns the implementation cost of a Hi-Rise switch with the
// given configuration. The arbitration scheme affects delay and energy:
// CLRG adds its counter muxes; WLRG is reported with CLRG-equivalent
// timing but flagged infeasible, as in the paper, which omits it from
// Table V ("its implementation is infeasible").
func HiRise(cfg topo.Config, t Tech) Cost {
	b := HiRiseBreakdown(cfg, t)
	return Cost{
		AreaMM2:  b.AreaMM2(),
		FreqGHz:  1 / b.CycleNS(),
		EnergyPJ: b.EnergyPJ(),
		TSVs:     cfg.Layers * (cfg.Layers - 1) * cfg.Channels * t.FlitBits,
		Feasible: cfg.Scheme != topo.WLRG,
	}
}

// Of returns the cost of any simulator configuration: Layers <= 1 selects
// the flat 2D switch, otherwise Hi-Rise.
func Of(cfg topo.Config, t Tech) Cost {
	if cfg.Layers <= 1 {
		return Flat2D(cfg.Radix, t)
	}
	return HiRise(cfg, t)
}

// PeakTbps returns the aggregate ideal bandwidth of a switch: every output
// accepting one flit per cycle.
func PeakTbps(radix int, c Cost, t Tech) float64 {
	return float64(radix) * float64(t.FlitBits) * c.FreqGHz / 1e3
}

// Tbps converts an accepted flit rate (flits/cycle across the whole
// switch) into terabits per second at the switch's frequency.
func Tbps(flitsPerCycle float64, c Cost, t Tech) float64 {
	return flitsPerCycle * float64(t.FlitBits) * c.FreqGHz / 1e3
}
