package phys

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/topo"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > relTol {
		t.Errorf("%s = %.4g, want %.4g (off by %.1f%%, tol %.1f%%)",
			name, got, want, rel*100, relTol*100)
	}
}

func hirise(c int, s topo.Scheme) topo.Config {
	return topo.Config{Radix: 64, Layers: 4, Channels: c, Scheme: s, Classes: 3}
}

// TestTableIAnchors checks the 2D and folded rows of paper Table I.
func TestTableIAnchors(t *testing.T) {
	tech := Default32nm()

	d2 := Flat2D(64, tech)
	within(t, "2D area", d2.AreaMM2, 0.672, 0.01)
	within(t, "2D freq", d2.FreqGHz, 1.69, 0.01)
	within(t, "2D energy", d2.EnergyPJ, 71, 0.01)
	if d2.TSVs != 0 {
		t.Errorf("2D TSVs = %d", d2.TSVs)
	}

	fold := Folded(64, 4, tech)
	within(t, "folded area", fold.AreaMM2, 0.705, 0.01)
	within(t, "folded freq", fold.FreqGHz, 1.58, 0.01)
	within(t, "folded energy", fold.EnergyPJ, 73, 0.01)
	if fold.TSVs != 8192 {
		t.Errorf("folded TSVs = %d, want 8192", fold.TSVs)
	}
}

// TestTableIVAnchors checks the Hi-Rise rows of paper Table IV
// (L-2-L LRG arbitration).
func TestTableIVAnchors(t *testing.T) {
	tech := Default32nm()
	cases := []struct {
		channels   int
		area, freq float64
		energy     float64
		tsvs       int
	}{
		{4, 0.451, 2.24, 42, 6144},
		{2, 0.315, 2.46, 39, 3072},
		{1, 0.247, 2.64, 37, 1536},
	}
	for _, c := range cases {
		got := HiRise(hirise(c.channels, topo.L2LLRG), tech)
		within(t, "area", got.AreaMM2, c.area, 0.02)
		within(t, "freq", got.FreqGHz, c.freq, 0.02)
		within(t, "energy", got.EnergyPJ, c.energy, 0.02)
		if got.TSVs != c.tsvs {
			t.Errorf("c=%d TSVs = %d, want %d", c.channels, got.TSVs, c.tsvs)
		}
		if !got.Feasible {
			t.Errorf("c=%d should be feasible", c.channels)
		}
	}
}

// TestTableVAnchors checks the arbitration variants of paper Table V:
// CLRG runs at 2.2 GHz and 44 pJ with no area overhead over L-2-L LRG.
func TestTableVAnchors(t *testing.T) {
	tech := Default32nm()
	lrg := HiRise(hirise(4, topo.L2LLRG), tech)
	clrg := HiRise(hirise(4, topo.CLRG), tech)
	within(t, "CLRG freq", clrg.FreqGHz, 2.2, 0.01)
	within(t, "CLRG energy", clrg.EnergyPJ, 44, 0.01)
	if clrg.AreaMM2 != lrg.AreaMM2 {
		t.Errorf("CLRG area %v != L2L area %v: scheme must not change area",
			clrg.AreaMM2, lrg.AreaMM2)
	}
	if clrg.TSVs != lrg.TSVs {
		t.Error("scheme must not change TSV count")
	}

	wlrg := HiRise(hirise(4, topo.WLRG), tech)
	if wlrg.Feasible {
		t.Error("WLRG must be flagged infeasible (paper Table V omits it)")
	}
}

// TestHeadlineClaims checks the abstract's summary numbers relative to 2D:
// 33% area reduction, 20% latency (cycle time) reduction, 38% energy
// reduction for the 64-radix 4-layer 4-channel CLRG switch.
func TestHeadlineClaims(t *testing.T) {
	tech := Default32nm()
	d2 := Flat2D(64, tech)
	hr := HiRise(hirise(4, topo.CLRG), tech)

	within(t, "area reduction", 1-hr.AreaMM2/d2.AreaMM2, 0.33, 0.05)
	within(t, "cycle-time reduction", 1-hr.CycleNS()/d2.CycleNS(), 0.20, 0.20)
	within(t, "energy reduction", 1-hr.EnergyPJ/d2.EnergyPJ, 0.38, 0.05)
}

// TestFig9aShape checks frequency vs radix: 2D fastest at low radix, every
// 3D configuration faster beyond radix 32, gap widening with radix, and
// channel-multiplicity curves converging at high radix.
func TestFig9aShape(t *testing.T) {
	tech := Default32nm()
	f2 := func(n int) float64 { return Flat2D(n, tech).FreqGHz }
	f3 := func(n, c int) float64 {
		return HiRise(topo.Config{Radix: n, Layers: 4, Channels: c, Scheme: topo.L2LLRG}, tech).FreqGHz
	}

	for _, c := range []int{1, 2, 4} {
		if f2(16) <= f3(16, c) {
			t.Errorf("at radix 16, 2D (%.2f) should beat 3D %d-channel (%.2f)",
				f2(16), c, f3(16, c))
		}
		for _, n := range []int{48, 64, 96, 128} {
			if f3(n, c) <= f2(n) {
				t.Errorf("at radix %d, 3D %d-channel (%.2f) should beat 2D (%.2f)",
					n, c, f3(n, c), f2(n))
			}
		}
	}

	// Gap widens with radix (compare c=4).
	if (f3(128, 4) - f2(128)) <= (f3(48, 4) - f2(48)) {
		t.Error("3D/2D frequency gap should widen with radix")
	}

	// Channel curves converge: relative c=1 vs c=4 spread shrinks.
	spread := func(n int) float64 { return f3(n, 1)/f3(n, 4) - 1 }
	if spread(128) >= spread(16) {
		t.Errorf("channel spread should shrink with radix: %.3f @16 vs %.3f @128",
			spread(16), spread(128))
	}

	// Monotonically decreasing in radix.
	for n := 16; n < 128; n += 16 {
		if f2(n+16) >= f2(n) || f3(n+16, 4) >= f3(n, 4) {
			t.Errorf("frequency should fall with radix at %d", n)
		}
	}
}

// TestFig9bShape checks frequency vs stacked layers: radix 64 peaks at 4
// layers (within the paper's 3-to-5 plateau), smaller radix peaks at fewer
// layers, larger radix at more.
func TestFig9bShape(t *testing.T) {
	tech := Default32nm()
	peak := func(radix int) int {
		best, bestL := 0.0, 0
		for l := 2; l <= 7; l++ {
			f := HiRise(topo.Config{Radix: radix, Layers: l, Channels: 4, Scheme: topo.L2LLRG}, tech).FreqGHz
			if f > best {
				best, bestL = f, l
			}
		}
		return bestL
	}
	p64 := peak(64)
	if p64 < 3 || p64 > 5 {
		t.Errorf("radix-64 peak at %d layers, want 3..5", p64)
	}
	if p48 := peak(48); p48 > p64 {
		t.Errorf("radix-48 peak (%d) should not exceed radix-64 peak (%d)", p48, p64)
	}
	if p128 := peak(128); p128 < p64 {
		t.Errorf("radix-128 peak (%d) should be at least radix-64 peak (%d)", p128, p64)
	}
}

// TestFig9cShape checks energy vs radix: the 3D switch's energy grows at a
// more gradual slope than 2D, so a higher-radix 3D switch is iso-energy
// with a smaller 2D one.
func TestFig9cShape(t *testing.T) {
	tech := Default32nm()
	e2 := func(n int) float64 { return Flat2D(n, tech).EnergyPJ }
	e3 := func(n int) float64 {
		return HiRise(topo.Config{Radix: n, Layers: 4, Channels: 4, Scheme: topo.L2LLRG}, tech).EnergyPJ
	}
	if slope2, slope3 := e2(128)-e2(64), e3(128)-e3(64); slope3 >= slope2 {
		t.Errorf("3D energy slope (%.1f) should be below 2D (%.1f)", slope3, slope2)
	}
	for _, n := range []int{32, 64, 96, 128} {
		if e3(n) >= e2(n) {
			t.Errorf("at radix %d 3D energy (%.1f) should beat 2D (%.1f)", n, e3(n), e2(n))
		}
	}
	// 128-radix 3D should cost no more energy than 64-radix 2D (iso-energy
	// radix extension, paper §VI-A).
	if e3(128) > e2(64) {
		t.Errorf("3D @128 (%.1f pJ) should be iso-energy with 2D @64 (%.1f pJ)", e3(128), e2(64))
	}
}

// TestFig12TSVPitch checks the TSV sensitivity anchors: +25% pitch costs
// only ~1.67% area and ~1.8% frequency, and both trends are monotonic.
func TestFig12TSVPitch(t *testing.T) {
	at := func(pitch float64) Cost {
		tech := Default32nm()
		tech.TSVPitchUM = pitch
		return HiRise(hirise(4, topo.CLRG), tech)
	}
	base, plus25 := at(0.8), at(1.0)

	areaGrow := plus25.AreaMM2/base.AreaMM2 - 1
	if areaGrow < 0.005 || areaGrow > 0.035 {
		t.Errorf("area growth at +25%% pitch = %.2f%%, want ~1.67%%", areaGrow*100)
	}
	freqDrop := 1 - plus25.FreqGHz/base.FreqGHz
	if freqDrop < 0.005 || freqDrop > 0.035 {
		t.Errorf("freq drop at +25%% pitch = %.2f%%, want ~1.8%%", freqDrop*100)
	}

	prev := base
	for _, p := range []float64{1.0, 2.0, 3.0, 4.0, 5.0} {
		cur := at(p)
		if cur.AreaMM2 <= prev.AreaMM2 {
			t.Errorf("area should grow with pitch at %v µm", p)
		}
		if cur.FreqGHz >= prev.FreqGHz {
			t.Errorf("frequency should fall with pitch at %v µm", p)
		}
		prev = cur
	}
	// At 5 µm the switch is still functional and area stays in the same
	// order of magnitude as the paper's Fig 12 axis (~0.45-0.8 mm²).
	if five := at(5.0); five.AreaMM2 > 1.2 || five.FreqGHz < 1.0 {
		t.Errorf("5 µm pitch cost implausible: %+v", five)
	}
}

// TestScalabilityToRadix96 checks the abstract's claim that Hi-Rise
// extends scalability to radix 96 at an operating frequency no worse than
// the radix-64 2D switch.
func TestScalabilityToRadix96(t *testing.T) {
	tech := Default32nm()
	hr96 := HiRise(topo.Config{Radix: 96, Layers: 4, Channels: 4, Scheme: topo.CLRG, Classes: 3}, tech)
	d64 := Flat2D(64, tech)
	if hr96.FreqGHz < d64.FreqGHz {
		t.Errorf("Hi-Rise @96 (%.2f GHz) should match 2D @64 (%.2f GHz)",
			hr96.FreqGHz, d64.FreqGHz)
	}
}

func TestBreakdownSumsToCost(t *testing.T) {
	tech := Default32nm()
	for _, c := range []int{1, 2, 4} {
		for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.CLRG} {
			cfg := hirise(c, scheme)
			b := HiRiseBreakdown(cfg, tech)
			cost := HiRise(cfg, tech)
			within(t, "breakdown cycle", 1/b.CycleNS(), cost.FreqGHz, 1e-12)
			within(t, "breakdown area", b.AreaMM2(), cost.AreaMM2, 1e-12)
			within(t, "breakdown energy", b.EnergyPJ(), cost.EnergyPJ, 1e-12)
		}
	}
}

func TestBreakdownComponentsSane(t *testing.T) {
	b := HiRiseBreakdown(hirise(4, topo.CLRG), Default32nm())
	if b.Phase1NS <= b.Phase2NS {
		t.Errorf("phase 1 (%.3f) should dominate phase 2 (%.3f): the local switch is larger", b.Phase1NS, b.Phase2NS)
	}
	if b.SchemeNS <= 0 || b.SchemeEnergyPJ <= 0 {
		t.Error("CLRG must charge counter-mux delay and energy")
	}
	if b.LocalAreaMM2 <= b.InterAreaMM2 {
		t.Error("local switches should dominate area")
	}
	lrg := HiRiseBreakdown(hirise(4, topo.L2LLRG), Default32nm())
	if lrg.SchemeNS != 0 || lrg.SchemeEnergyPJ != 0 {
		t.Error("L-2-L LRG has no scheme overhead")
	}
}

func TestOfDispatch(t *testing.T) {
	tech := Default32nm()
	flat := Of(topo.Config{Radix: 64, Layers: 1}, tech)
	if flat != Flat2D(64, tech) {
		t.Error("Of should dispatch Layers<=1 to Flat2D")
	}
	hr := Of(hirise(4, topo.CLRG), tech)
	if hr != HiRise(hirise(4, topo.CLRG), tech) {
		t.Error("Of should dispatch Layers>1 to HiRise")
	}
}

func TestThroughputConversions(t *testing.T) {
	tech := Default32nm()
	c := Cost{FreqGHz: 2.0}
	// 10 flits/cycle * 128 bits * 2 GHz = 2.56 Tbps.
	within(t, "Tbps", Tbps(10, c, tech), 2.56, 1e-9)
	within(t, "PeakTbps", PeakTbps(64, c, tech), 16.384, 1e-9)
	within(t, "CycleNS", c.CycleNS(), 0.5, 1e-9)
}

// TestCostPhysicality is a property check over random configurations:
// every cost is positive, larger radix never costs less area or energy,
// and frequency never improves with radix.
func TestCostPhysicality(t *testing.T) {
	if err := quick.Check(func(nRaw, lRaw, cRaw uint8) bool {
		layers := 2 + int(lRaw%6)
		channels := 1 + int(cRaw%4)
		radix := 16 + int(nRaw%112)
		tech := Default32nm()
		cfg := func(n int) topo.Config {
			return topo.Config{Radix: n, Layers: layers, Channels: channels, Scheme: topo.CLRG, Classes: 3}
		}
		a := HiRise(cfg(radix), tech)
		b := HiRise(cfg(radix+layers), tech) // +1 port per layer
		if a.FreqGHz <= 0 || a.AreaMM2 <= 0 || a.EnergyPJ <= 0 {
			return false
		}
		return b.AreaMM2 >= a.AreaMM2 && b.EnergyPJ >= a.EnergyPJ && b.FreqGHz <= a.FreqGHz
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNonDivisibleRadixLayers ensures the Fig 9b sweeps (radix 48/80/128
// over 2..7 layers) do not panic or go non-physical.
func TestNonDivisibleRadixLayers(t *testing.T) {
	tech := Default32nm()
	for _, radix := range []int{48, 64, 80, 128} {
		for l := 2; l <= 7; l++ {
			c := HiRise(topo.Config{Radix: radix, Layers: l, Channels: 4, Scheme: topo.L2LLRG}, tech)
			if c.FreqGHz <= 0 || c.AreaMM2 <= 0 || c.EnergyPJ <= 0 || c.TSVs <= 0 {
				t.Errorf("radix %d layers %d: non-physical cost %+v", radix, l, c)
			}
		}
	}
}
