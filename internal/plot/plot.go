// Package plot renders simple ASCII line charts for the figure
// experiments: cmd/hirise-bench uses it (with -plot) to draw each
// figure's series the way the paper's plots read, without leaving the
// terminal or adding dependencies.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line: paired X/Y points. NaN Y values are skipped
// (the figure tables use them for saturated points).
type Series struct {
	Name string
	X, Y []float64
}

// markers assigns one glyph per series, cycling if needed.
var markers = []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

// Render draws the series into a width x height character grid with
// axis ranges and a legend. It returns an error only for unusable input.
func Render(w io.Writer, title string, series []Series, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("plot: grid %dx%d too small", width, height)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x but %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsNaN(s.X[i]) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: no plottable points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsNaN(s.X[i]) {
				continue
			}
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[r][c] = m
		}
	}

	if title != "" {
		fmt.Fprintln(w, title)
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*.3g%*.3g\n", strings.Repeat(" ", pad), width/2, xmin, width-width/2, xmax)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintln(w, "legend:", strings.Join(legend, "  "))
	return nil
}
