package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var b strings.Builder
	err := Render(&b, "demo", []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "o=up", "x=down", "+----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The rising series' marker must appear in both the bottom-left and
	// top-right regions.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l[strings.Index(l, "|")+1:])
		}
	}
	top, bottom := gridLines[0], gridLines[len(gridLines)-1]
	if !strings.Contains(top, "o") || !strings.Contains(bottom, "o") {
		t.Errorf("rising series not spanning grid:\n%s", out)
	}
	if strings.Index(bottom, "o") > strings.Index(top, "o") {
		t.Errorf("rising series should start low-left and end high-right:\n%s", out)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	var b strings.Builder
	err := Render(&b, "", []Series{
		{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
	}, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRenderErrors(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, "", nil, 40, 10); err == nil {
		t.Error("empty series accepted")
	}
	if err := Render(&b, "", []Series{{Name: "s", X: []float64{1}, Y: []float64{}}}, 40, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := Render(&b, "", []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}}, 5, 2); err == nil {
		t.Error("tiny grid accepted")
	}
	nan := []Series{{Name: "s", X: []float64{1}, Y: []float64{math.NaN()}}}
	if err := Render(&b, "", nan, 40, 10); err == nil {
		t.Error("all-NaN accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var b strings.Builder
	err := Render(&b, "", []Series{
		{Name: "flat", X: []float64{0, 0}, Y: []float64{5, 5}},
	}, 30, 6)
	if err != nil {
		t.Fatalf("degenerate ranges should render: %v", err)
	}
}
