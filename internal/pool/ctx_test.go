package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/reprolab/hirise/internal/leakcheck"
)

func TestDoCtxNilContextRunsEverything(t *testing.T) {
	leakcheck.Check(t)
	var ran atomic.Int64
	if err := DoCtx(nil, 100, 4, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", ran.Load())
	}
}

func TestDoCtxCompletedRunMatchesDo(t *testing.T) {
	leakcheck.Check(t)
	var ran atomic.Int64
	if err := DoCtx(context.Background(), 50, 3, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
}

// TestDoCtxCancelSkipsPendingTasks: cancelling mid-run returns the ctx
// error, in-flight tasks finish, and not-yet-started tasks never run —
// the "stops within one sweep point" contract.
func TestDoCtxCancelSkipsPendingTasks(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	const n, workers = 64, 2
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := DoCtx(ctx, n, workers, func(i int) {
		started.Add(1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The two in-flight tasks (plus at most one already claimed per
	// worker before observing cancellation) may run; the rest must not.
	if got := started.Load(); got > int64(2*workers) {
		t.Fatalf("%d tasks started after cancellation, want <= %d", got, 2*workers)
	}
}

// TestDoCtxSuppressesPanicsAfterCancel: runners that panic on
// simulation errors (the experiments package contract) must not crash
// the process when the error is a cancellation — the ctx error is the
// authoritative failure signal.
func TestDoCtxSuppressesPanicsAfterCancel(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	err := DoCtx(ctx, 8, 2, func(i int) {
		cancel()
		panic("sim aborted by ctx")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoCtxPreCancelledRunsNothing(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := DoCtx(ctx, 100, 4, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers may claim at most one task each before observing the
	// cancelled ctx; serial mode claims none.
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d tasks ran under a pre-cancelled ctx", got)
	}
}

func TestDoCtxSerialCancel(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := DoCtx(ctx, 100, 1, func(i int) {
		ran++
		if i == 4 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 5 {
		t.Fatalf("serial run executed %d tasks after cancel at 5", ran)
	}
}

func TestMapCtxCollectsInIndexOrder(t *testing.T) {
	leakcheck.Check(t)
	got, err := MapCtx(context.Background(), 10, 4, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapCtxCancelReturnsError(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 100, 2, func(i int) int {
		if i == 0 {
			cancel()
		}
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
