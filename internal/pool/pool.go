// Package pool is the bounded, deterministic worker-pool engine behind
// every embarrassingly-parallel sweep in the repository: per-point load
// sweeps, per-seed replication runs, physical parameter sweeps, and the
// whole-experiment fan-out of cmd/hirise-bench.
//
// Determinism is the package's contract. Work is identified by task
// index, never by worker identity: results are written to index-ordered
// slots, PRNG streams are derived from stable task coordinates via
// SeedFor (splitmix64 over the base seed and the coordinate tuple), and
// panics re-raise deterministically (the lowest-index panic wins after
// all tasks finish). Consequently the output of a sweep is byte-identical
// at any worker count, including 1.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), everything else passes through.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and waits for all of them. workers == 1 runs serially on
// the calling goroutine. Task order of *completion* is unspecified, so
// fn must only write state owned by its index; anything reduced from
// those per-index slots afterwards is then independent of scheduling.
//
// If one or more tasks panic, Do waits for the remaining tasks and then
// re-panics with the value from the lowest-index panicking task, so the
// surfaced failure does not depend on goroutine scheduling either.
func Do(n, workers int, fn func(i int)) {
	do(nil, n, workers, fn)
}

// DoCtx is Do with cooperative cancellation: once ctx is cancelled no
// new task starts, already-running tasks finish (they observe the same
// ctx through their own plumbing if they want to stop early), and the
// ctx error is returned. Which tasks ran after a cancellation depends on
// scheduling, so callers must treat any output produced under a non-nil
// ctx error as garbage and discard it — determinism is a property of
// completed runs only. A nil ctx behaves exactly like Do.
func DoCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	do(ctx, n, workers, fn)
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

func do(ctx context.Context, n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicIdx = -1
		panicVal any
	)
	next.Store(-1)
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }
	runTask := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicIdx < 0 || i < panicIdx {
					panicIdx, panicVal = i, r
				}
				mu.Unlock()
			}
		}()
		fn(i)
	}
	if workers == 1 {
		// Serial fast path: no goroutine overhead for -parallel 1 runs,
		// but the same run-everything-then-re-panic contract as the
		// concurrent path so failure behaviour is worker-count-invariant.
		for i := 0; i < n && !cancelled(); i++ {
			runTask(i)
		}
	} else {
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for !cancelled() {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					runTask(i)
				}
			}()
		}
		wg.Wait()
	}
	if panicIdx >= 0 && !cancelled() {
		// A cancelled run's panics are indistinguishable from tasks
		// aborted mid-flight by the same cancellation; the ctx error the
		// caller sees is the authoritative failure, so suppress them.
		panic(panicVal)
	}
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the results in index order, regardless of the
// order in which tasks completed.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapCtx is Map with cooperative cancellation (see DoCtx). On a non-nil
// error the returned slice is partial — slots whose tasks never ran hold
// zero values — and must be discarded.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := DoCtx(ctx, n, workers, func(i int) { out[i] = fn(i) })
	return out, err
}

// splitmix64 is the finalizer of the splitmix64 generator, used here as
// a mixing function for seed derivation (the same construction
// internal/prng uses to expand seeds into xoshiro state).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeedFor derives a task's PRNG seed from a base seed and the task's
// stable coordinates — typically (experiment ID, point index, seed
// index). Each coordinate is folded in with splitmix64, so distinct
// tuples yield statistically independent streams while the same tuple
// always yields the same seed. Seeds must never be derived from worker
// identity or completion order; deriving them from coordinates is what
// makes parallel sweeps reproduce serial output exactly.
func SeedFor(base uint64, coords ...uint64) uint64 {
	h := splitmix64(base)
	for _, c := range coords {
		h = splitmix64(h ^ splitmix64(c))
	}
	return h
}

// StringID hashes an experiment identifier into a seed coordinate for
// SeedFor (FNV-1a, stable across runs and platforms).
func StringID(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
