package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]atomic.Int64, n)
		Do(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestDoBoundedConcurrency verifies that no more than the requested
// number of tasks are ever in flight at once.
func TestDoBoundedConcurrency(t *testing.T) {
	const n, workers = 64, 3
	var inFlight, peak atomic.Int64
	Do(n, workers, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, bound is %d", p, workers)
	}
	if p := peak.Load(); p < 1 {
		t.Errorf("no task observed in flight (peak %d)", p)
	}
}

// TestDoUnboundedInputBoundedGoroutines feeds far more tasks than
// workers and checks the pool never spawns one goroutine per item (the
// failure mode of the old experiments.parallel helper).
func TestDoUnboundedInputBoundedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	var gate sync.WaitGroup
	gate.Add(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Do(1024, 4, func(i int) {
			if i == 0 {
				gate.Wait() // hold one task so the pool stays busy
			}
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if g := runtime.NumGoroutine(); g > before+16 {
		t.Errorf("goroutine count grew from %d to %d for 1024 tasks at 4 workers", before, g)
	}
	gate.Done()
	<-done
}

// TestMapIndexOrderedReduction checks results land at their task index
// even when completion order is adversarial (early tasks finish last).
func TestMapIndexOrderedReduction(t *testing.T) {
	const n = 32
	for _, workers := range []int{1, 4, n} {
		out := Map(n, workers, func(i int) int {
			time.Sleep(time.Duration(n-i) * 200 * time.Microsecond)
			return i * i
		})
		if len(out) != n {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestDoPanicPropagation checks a panicking task re-panics in the caller
// with the lowest-index panic value, after all tasks have finished.
func TestDoPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if r != "boom-3" {
					t.Errorf("workers=%d: recovered %v, want lowest-index panic boom-3", workers, r)
				}
			}()
			Do(16, workers, func(i int) {
				ran.Add(1)
				if i == 3 || i == 11 {
					panic("boom-" + string(rune('0'+i%10)))
				}
			})
		}()
		if ran.Load() != 16 {
			t.Errorf("workers=%d: %d tasks ran before re-panic, want all 16", workers, ran.Load())
		}
	}
}

func TestDoDegenerateInputs(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	Do(-5, 4, func(int) { ran = true })
	if ran {
		t.Error("Do ran tasks for n <= 0")
	}
	Do(1, 0, func(i int) { ran = true }) // workers 0 -> GOMAXPROCS
	if !ran {
		t.Error("Do(1, 0, ...) did not run the task")
	}
}

func TestSeedForDeterminismAndIndependence(t *testing.T) {
	a := SeedFor(1, StringID("fig10"), 3, 0)
	b := SeedFor(1, StringID("fig10"), 3, 0)
	if a != b {
		t.Fatalf("SeedFor not deterministic: %x vs %x", a, b)
	}
	seen := map[uint64][]uint64{a: {1, 3, 0}}
	for _, tc := range [][]uint64{
		{1, 3, 1},      // different seed index
		{1, 4, 0},      // different point
		{2, 3, 0},      // different base seed
		{1, 0, 3},      // coordinate order matters
		{1},            // shorter tuple
		{1, 3, 0, 0},   // longer tuple
		{0x7919, 3, 0}, // arbitrary base
	} {
		s := SeedFor(tc[0], append([]uint64{StringID("fig10")}, tc[1:]...)...)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between coords %v and %v", prev, tc)
		}
		seen[s] = tc
	}
	if x, y := SeedFor(1, StringID("fig10"), 0), SeedFor(1, StringID("fig11b"), 0); x == y {
		t.Error("different experiment IDs produced the same seed")
	}
}

func TestStringIDStable(t *testing.T) {
	// FNV-1a of "table4" must never drift: derived seeds (and therefore
	// all published experiment output) depend on it.
	if got := StringID("table4"); got != 0xe265c6dbf29f8ab1 {
		t.Errorf("StringID(\"table4\") = %#x, want %#x (FNV-1a)", got, uint64(0xe265c6dbf29f8ab1))
	}
	if StringID("") != 14695981039346656037 {
		t.Errorf("StringID(\"\") should be the FNV-1a offset basis")
	}
}
