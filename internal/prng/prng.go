// Package prng provides small, fast, deterministic pseudo-random number
// generators for the simulator. Every stochastic component of the
// reproduction (traffic generators, trace synthesis, workload placement)
// draws from an explicitly seeded Source so that experiments are exactly
// repeatable across runs and platforms.
//
// The generator is xoshiro256**, seeded through splitmix64 as its authors
// recommend. It is not cryptographically secure; it is a simulation PRNG.
package prng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New. Source is not safe for concurrent use; give
// each goroutine (or each simulated entity) its own Source, typically via
// Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used only to expand seeds into full xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give statistically
// independent streams.
func New(seed uint64) *Source {
	src := new(Source)
	src.Reseed(seed)
	return src
}

// Reseed re-initializes s in place from seed. The resulting stream is
// byte-identical to New(seed)'s; existing state is discarded. It lets
// arena-style callers reuse Source slabs across runs without allocating.
func (s *Source) Reseed(seed uint64) {
	st := seed
	for i := range s.s {
		s.s[i] = splitmix64(&st)
	}
}

// splitXor decorrelates a parent draw from the child seed it becomes, so
// Split(New(k)) and New(k') collide only by chance.
const splitXor = 0xd3833e804f4c574b

// Split derives a new, statistically independent Source from s. The parent
// stream advances by one draw. Use it to hand child components their own
// generators without sharing state.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ splitXor)
}

// SplitTo is Split into caller-owned storage: dst is reseeded with the
// exact stream the corresponding Split call would have produced, and the
// parent advances by the same one draw. No allocation.
func (s *Source) SplitTo(dst *Source) {
	dst.Reseed(s.Uint64() ^ splitXor)
}

// Uint64 returns the next 64 uniformly distributed bits. The body is
// kept within the compiler's inlining budget (bits.RotateLeft64 is an
// intrinsic) so the generator fuses into hot simulation loops instead of
// paying a call per draw.
func (s *Source) Uint64() uint64 {
	s1 := s.s[1]
	result := bits.RotateLeft64(s1*5, 7) * 9
	t := s1 << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s1
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (s *Source) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
