package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 4*math.Sqrt(expect) {
			t.Errorf("bucket %d: count %d, expect ~%.0f", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, expect ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(10)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	if rate := float64(hits) / draws; math.Abs(rate-p) > 0.01 {
		t.Errorf("rate %v, expect ~%v", rate, p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const mean, draws = 4.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if got := sum / draws; math.Abs(got-mean) > 0.05*mean {
		t.Errorf("sample mean %v, expect ~%v", got, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(77)
	xs := []int{5, 5, 1, 2, 3, 9, 9, 9}
	counts := map[int]int{}
	for _, v := range xs {
		counts[v]++
	}
	s.Shuffle(xs)
	for _, v := range xs {
		counts[v]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("value %d count off by %d after shuffle", k, c)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(64)
	}
}
