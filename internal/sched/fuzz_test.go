package sched

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

// FuzzSchedulersAgainstMWM is the satellite differential fuzz: every
// fast scheduler (iSLIP at 1, 2 and n iterations, wavefront) runs on a
// random request matrix with random queue lengths and is checked
// against the MWM reference:
//
//   - every emitted matching is valid (edges requested, no input or
//     output matched twice);
//   - the always-maximal schedulers (wavefront, iSLIP at n iterations)
//     emit maximal matchings;
//   - nobody exceeds the maximum cardinality (MWM with unit weights),
//     and a maximal matching has at least half of it.
//
// Port counts cross the 64-bit word boundary to exercise multi-word
// bitset paths.
func FuzzSchedulersAgainstMWM(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(64), uint8(3))
	f.Add(uint64(2), uint8(65), uint8(128), uint8(1))
	f.Add(uint64(3), uint8(13), uint8(200), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, density, rounds uint8) {
		n := 1 + int(nRaw)%70
		p := float64(density) / 255
		src := prng.New(seed)
		req := newMatrix(n)
		qlen := make([]int32, n*n)
		match := make([]int, n)
		maxCard := make([]int, n)

		cardOracle := NewMWM(n) // unit weights -> maximum cardinality
		weightOracle := NewMWM(n)
		fast := map[string]Scheduler{
			"islip-1":   NewISLIP(n, 1),
			"islip-2":   NewISLIP(n, 2),
			"islip-n":   NewISLIP(n, n),
			"wavefront": NewWavefront(n),
		}
		// Several rounds per input reuse the same schedulers so pointer
		// state from earlier rounds is exercised too.
		for r := 0; r <= int(rounds)%8; r++ {
			randomReq(src, req, qlen, n, p)
			card := cardOracle.Schedule(req, nil, maxCard)
			checkValid(t, req, maxCard, n)
			checkMaximal(t, req, maxCard, n)

			wBest := weightOracle.Schedule(req, qlen, match)
			checkValid(t, req, match, n)
			checkMaximal(t, req, match, n)
			if wBest > card {
				t.Fatalf("weighted MWM matched %d pairs > max cardinality %d", wBest, card)
			}
			best := matchWeight(match, qlen, n)

			for name, s := range fast {
				got := s.Schedule(req, qlen, match)
				checkValid(t, req, match, n)
				if got > card {
					t.Fatalf("%s matched %d pairs > max cardinality %d", name, got, card)
				}
				if w := matchWeight(match, qlen, n); w > best {
					t.Fatalf("%s weight %d beats MWM optimum %d", name, w, best)
				}
				if name == "wavefront" || name == "islip-n" {
					checkMaximal(t, req, match, n)
					if 2*got < card {
						t.Fatalf("%s matched %d pairs, below half of max cardinality %d", name, got, card)
					}
				}
			}
		}
	})
}

// FuzzISLIPIterationMonotonicity pins that on a fixed request matrix,
// adding iterations never shrinks the matching (each iteration only
// augments the current matching).
func FuzzISLIPIterationMonotonicity(f *testing.F) {
	f.Add(uint64(4), uint8(16), uint8(80))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, density uint8) {
		n := 1 + int(nRaw)%70
		src := prng.New(seed)
		req := newMatrix(n)
		randomReq(src, req, nil, n, float64(density)/255)
		match := make([]int, n)
		prev := -1
		for _, iters := range []int{1, 2, 4, n} {
			got := NewISLIP(n, iters).Schedule(req, nil, match)
			checkValid(t, req, match, n)
			if got < prev {
				t.Fatalf("iters=%d matched %d < %d with fewer iterations", iters, got, prev)
			}
			prev = got
		}
	})
}
