package sched

import (
	"fmt"
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// ISLIP is the canonical multi-iteration iSLIP scheduler (McKeown):
// each output keeps a grant pointer, each input an accept pointer, and
// every iteration runs a request→grant→accept round over the ports
// still unmatched.
//
// Pointer discipline — the part the §VII analog deliberately simplifies
// (see arb.RoundRobin) — is what makes iSLIP work:
//
//   - a grant pointer advances to one past the granted input, and an
//     accept pointer to one past the accepted output, ONLY when the
//     grant is accepted;
//   - pointers move only for matches made in the FIRST iteration;
//     later-iteration matches leave them untouched.
//
// Accept-gating is what desynchronizes the pointers: two outputs that
// granted the same input in cycle t cannot both have been accepted, so
// in cycle t+1 their pointers differ and they grant different inputs.
// Under saturated uniform traffic the pointers settle into a rotating
// schedule serving 100% of offered load (TestISLIPDesynchronization).
type ISLIP struct {
	n, iters int
	g        []int // per-output grant pointer
	a        []int // per-input accept pointer

	// Scratch reused across Schedule calls (all zeroed or overwritten
	// before use, so calls are independent):
	col      []bitvec.Vec // transposed requests: inputs per output
	grants   []bitvec.Vec // grants received by each input this iteration
	anyGrant bitvec.Vec   // inputs with ≥1 grant this iteration
	cand     bitvec.Vec   // candidate inputs for one output
	freeIn   bitvec.Vec   // inputs not yet matched
	freeOut  bitvec.Vec   // outputs not yet matched
}

// NewISLIP returns an iSLIP scheduler over n ports running iters
// grant/accept iterations per scheduling phase (iters ≥ 1; log2(n) is
// the usual hardware choice, n guarantees a maximal matching).
func NewISLIP(n, iters int) *ISLIP {
	if n <= 0 || iters <= 0 {
		panic(fmt.Sprintf("sched: invalid iSLIP shape n=%d iters=%d", n, iters))
	}
	return &ISLIP{
		n: n, iters: iters,
		g: make([]int, n), a: make([]int, n),
		col: newMatrix(n), grants: newMatrix(n),
		anyGrant: bitvec.New(n), cand: bitvec.New(n),
		freeIn: bitvec.New(n), freeOut: bitvec.New(n),
	}
}

// N implements Scheduler.
func (s *ISLIP) N() int { return s.n }

// Iters returns the configured iteration count.
func (s *ISLIP) Iters() int { return s.iters }

// Schedule implements Scheduler. qlen is ignored (iSLIP is
// weight-blind).
func (s *ISLIP) Schedule(req []bitvec.Vec, _ []int32, match []int) int {
	n := s.n
	transpose(req, s.col, n)
	for in := 0; in < n; in++ {
		match[in] = -1
	}
	s.freeIn.SetFirstN(n)
	s.freeOut.SetFirstN(n)
	matched := 0
	for it := 0; it < s.iters && matched < n; it++ {
		// Grant phase: every unmatched output with unmatched requestors
		// grants the one nearest its grant pointer.
		s.anyGrant.Zero()
		granted := false
		for w, word := range s.freeOut {
			for word != 0 {
				o := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				s.cand.Copy(s.col[o])
				s.cand.And(s.freeIn)
				in := s.cand.NextWrap(s.g[o])
				if in < 0 {
					continue
				}
				s.grants[in].Set(o)
				s.anyGrant.Set(in)
				granted = true
			}
		}
		if !granted {
			break // no progress possible in later iterations either
		}
		// Accept phase: every granted input accepts the grant nearest
		// its accept pointer. Pointers move only here (accept-gated) and
		// only in iteration 0 (canonical iSLIP).
		for w, word := range s.anyGrant {
			for word != 0 {
				in := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				o := s.grants[in].NextWrap(s.a[in])
				s.grants[in].Zero()
				match[in] = o
				matched++
				s.freeIn.Clear(in)
				s.freeOut.Clear(o)
				if it == 0 {
					s.g[o] = in + 1
					if s.g[o] == n {
						s.g[o] = 0
					}
					s.a[in] = o + 1
					if s.a[in] == n {
						s.a[in] = 0
					}
				}
			}
		}
	}
	return matched
}

// Pointers exposes copies of the grant and accept pointer arrays for
// tests (the desynchronization test asserts grant pointers spread out).
func (s *ISLIP) Pointers() (grant, accept []int) {
	return append([]int(nil), s.g...), append([]int(nil), s.a...)
}
