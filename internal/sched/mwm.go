package sched

import (
	"fmt"
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// MWM is the exact maximum-weight-matching reference scheduler: each
// requested (input, output) edge is weighted by its VOQ occupancy
// (queue-length weights, "LQF" in the MWM→iSLIP tutorial; weight 1 when
// qlen is nil) and an O(n³) Hungarian assignment finds the matching of
// maximum total weight. MWM is throughput-optimal for any admissible
// i.i.d. traffic but far too slow to build in hardware — in this repo
// it is the correctness oracle the fast schedulers fuzz against and the
// upper-bound row in the sched-shootout tables.
//
// Every requested edge has weight ≥ 1, so a maximum-weight matching is
// also maximal on the request graph: a matching that left a request
// with both endpoints free could be improved by adding it.
type MWM struct {
	n    int
	cost []int64 // n×n negated edge weights (0 where no request)
	u, v []int64 // row/column potentials, 1-based with virtual index 0
	p    []int   // p[j]: 1-based row matched to 1-based column j
	way  []int   // alternating-path backpointers
	minv []int64
	used []bool
}

// NewMWM returns a maximum-weight-matching scheduler over n ports.
func NewMWM(n int) *MWM {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid MWM shape n=%d", n))
	}
	return &MWM{
		n:    n,
		cost: make([]int64, n*n),
		u:    make([]int64, n+1), v: make([]int64, n+1),
		p: make([]int, n+1), way: make([]int, n+1),
		minv: make([]int64, n+1), used: make([]bool, n+1),
	}
}

// N implements Scheduler.
func (s *MWM) N() int { return s.n }

const mwmInf = int64(1) << 62

// Schedule implements Scheduler.
func (s *MWM) Schedule(req []bitvec.Vec, qlen []int32, match []int) int {
	n := s.n
	// Build the (negated) weight matrix: minimizing negated weights over
	// perfect matchings of the zero-completed matrix maximizes weight.
	for i := 0; i < n; i++ {
		base := i * n
		for j := 0; j < n; j++ {
			s.cost[base+j] = 0
		}
		for w, word := range req[i] {
			for word != 0 {
				j := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				wgt := int64(1)
				if qlen != nil {
					if q := int64(qlen[base+j]); q > wgt {
						wgt = q
					}
				}
				s.cost[base+j] = -wgt
			}
		}
	}
	// Hungarian algorithm with potentials (Jonker-Volgenant style
	// augmentation, one Dijkstra-like scan per row).
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j], s.p[j], s.way[j] = 0, 0, 0, 0
	}
	for i := 1; i <= n; i++ {
		s.p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			s.minv[j] = mwmInf
			s.used[j] = false
		}
		for {
			s.used[j0] = true
			i0 := s.p[j0]
			delta := mwmInf
			j1 := 0
			for j := 1; j <= n; j++ {
				if s.used[j] {
					continue
				}
				cur := s.cost[(i0-1)*n+(j-1)] - s.u[i0] - s.v[j]
				if cur < s.minv[j] {
					s.minv[j] = cur
					s.way[j] = j0
				}
				if s.minv[j] < delta {
					delta = s.minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if s.used[j] {
					s.u[s.p[j]] += delta
					s.v[j] -= delta
				} else {
					s.minv[j] -= delta
				}
			}
			j0 = j1
			if s.p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := s.way[j0]
			s.p[j0] = s.p[j1]
			j0 = j1
		}
	}
	// Extract the matching, dropping the zero-weight padding edges the
	// perfect assignment used for unmatched ports.
	for in := 0; in < n; in++ {
		match[in] = -1
	}
	matched := 0
	for j := 1; j <= n; j++ {
		i, jj := s.p[j]-1, j-1
		if i >= 0 && req[i].Get(jj) {
			match[i] = jj
			matched++
		}
	}
	return matched
}
