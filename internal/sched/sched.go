// Package sched implements input-queued crossbar schedulers for the
// virtual-output-queued (VOQ) switch mode (sim.RunVOQ). Where the
// Hi-Rise models arbitrate a single head-of-line request per input, a
// VOQ switch exposes the full N×N request matrix — req[in] is the bitset
// of outputs input in holds cells for — and the scheduler computes one
// crossbar matching per scheduling phase.
//
// The zoo covers the classic trade-off triangle from the iSLIP
// literature (Tiny Tera; "From MWM to iSLIP", PAPERS.md):
//
//   - ISLIP: multi-iteration iSLIP with per-output grant pointers and
//     per-input accept pointers, both advancing only on accepted
//     first-iteration grants (the desynchronization property).
//   - Wavefront: a rotating-priority wavefront allocator sweeping the
//     request matrix's diagonals; always maximal, simple hardware.
//   - MWM: exact maximum-weight matching on queue lengths via the
//     O(n³) Hungarian algorithm — the throughput-optimal reference and
//     the correctness oracle for the fast schedulers' fuzz tests.
//
// Note the distinction from topo.ISLIP1/arb.RoundRobin: that pair is the
// paper's §VII single-iteration iSLIP *analog* grafted onto the Hi-Rise
// two-stage structure. The schedulers here are the real algorithms on a
// flat VOQ crossbar.
//
// All schedulers are deterministic, allocation-free in Schedule, and
// confined to one goroutine.
package sched

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// Scheduler computes one crossbar matching per scheduling phase.
type Scheduler interface {
	// N returns the port count (inputs = outputs).
	N() int
	// Schedule computes a matching over the request matrix: req[in] is
	// the bitset of outputs input in has cells queued for (len(req) ≥ N,
	// each row sized for N bits). qlen, when non-nil, supplies VOQ
	// occupancies in cells at index in*N+out; weight-blind schedulers
	// (ISLIP, Wavefront) ignore it, MWM uses it as the edge weight.
	// The matching is written into match (len ≥ N): match[in] is the
	// output matched to input in, or -1. Schedule returns the number of
	// matched pairs. It must not retain or mutate req or qlen, and hot
	// implementations do not allocate.
	Schedule(req []bitvec.Vec, qlen []int32, match []int) int
}

// transpose scatters the row bitsets req[0..n) into the column bitsets
// col[0..n): col[out] holds the inputs requesting out. col rows are
// zeroed first.
func transpose(req []bitvec.Vec, col []bitvec.Vec, n int) {
	for o := 0; o < n; o++ {
		col[o].Zero()
	}
	for in := 0; in < n; in++ {
		for w, word := range req[in] {
			for word != 0 {
				o := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				col[o].Set(in)
			}
		}
	}
}

// newMatrix returns n bitset rows of n bits each.
func newMatrix(n int) []bitvec.Vec {
	m := make([]bitvec.Vec, n)
	for i := range m {
		m[i] = bitvec.New(n)
	}
	return m
}
