package sched

import (
	"testing"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/prng"
)

// reqMatrix builds an n×n request matrix from explicit (in, out) pairs.
func reqMatrix(n int, edges [][2]int) []bitvec.Vec {
	m := newMatrix(n)
	for _, e := range edges {
		m[e[0]].Set(e[1])
	}
	return m
}

// checkValid asserts match is a valid matching over req: every matched
// pair was requested and no input or output appears twice.
func checkValid(t *testing.T, req []bitvec.Vec, match []int, n int) {
	t.Helper()
	outSeen := make([]bool, n)
	for in := 0; in < n; in++ {
		o := match[in]
		if o < 0 {
			continue
		}
		if !req[in].Get(o) {
			t.Fatalf("match %d->%d was never requested", in, o)
		}
		if outSeen[o] {
			t.Fatalf("output %d matched twice", o)
		}
		outSeen[o] = true
	}
}

// checkMaximal asserts no request has both endpoints unmatched.
func checkMaximal(t *testing.T, req []bitvec.Vec, match []int, n int) {
	t.Helper()
	outSeen := make([]bool, n)
	for in := 0; in < n; in++ {
		if match[in] >= 0 {
			outSeen[match[in]] = true
		}
	}
	for in := 0; in < n; in++ {
		if match[in] >= 0 {
			continue
		}
		req[in].ForEach(func(o int) {
			if !outSeen[o] {
				t.Fatalf("not maximal: request %d->%d has both endpoints free", in, o)
			}
		})
	}
}

// matchWeight sums the queue-length weights of a matching (weight 1 per
// edge when qlen is nil).
func matchWeight(match []int, qlen []int32, n int) int64 {
	var w int64
	for in, o := range match[:n] {
		if o < 0 {
			continue
		}
		if qlen == nil {
			w++
		} else {
			q := int64(qlen[in*n+o])
			if q < 1 {
				q = 1
			}
			w += q
		}
	}
	return w
}

// randomReq fills an n×n request matrix with density p and, optionally,
// random queue lengths on the requested edges.
func randomReq(src *prng.Source, m []bitvec.Vec, qlen []int32, n int, p float64) {
	for i := 0; i < n; i++ {
		m[i].Zero()
		for j := 0; j < n; j++ {
			if qlen != nil {
				qlen[i*n+j] = 0
			}
			if src.Bernoulli(p) {
				m[i].Set(j)
				if qlen != nil {
					qlen[i*n+j] = int32(1 + src.Intn(31))
				}
			}
		}
	}
}

// allSchedulers returns fresh instances of every scheduler for a given
// port count (iSLIP at 1, 2 and n iterations).
func allSchedulers(n int) map[string]Scheduler {
	return map[string]Scheduler{
		"islip-1":   NewISLIP(n, 1),
		"islip-2":   NewISLIP(n, 2),
		"islip-n":   NewISLIP(n, n),
		"wavefront": NewWavefront(n),
		"mwm":       NewMWM(n),
	}
}

// TestSchedulersValidOnRandom drives every scheduler over random request
// matrices at several sizes and densities: every emitted matching must
// be valid, and the always-maximal schedulers (wavefront, iSLIP at n
// iterations, MWM) must be maximal.
func TestSchedulersValidOnRandom(t *testing.T) {
	src := prng.New(99)
	for _, n := range []int{1, 2, 5, 13, 64, 65} {
		req := newMatrix(n)
		qlen := make([]int32, n*n)
		match := make([]int, n)
		for name, s := range allSchedulers(n) {
			for trial := 0; trial < 30; trial++ {
				randomReq(src, req, qlen, n, 0.3)
				got := s.Schedule(req, qlen, match)
				cnt := 0
				for _, o := range match {
					if o >= 0 {
						cnt++
					}
				}
				if cnt != got {
					t.Fatalf("%s n=%d: returned %d but match holds %d pairs", name, n, got, cnt)
				}
				checkValid(t, req, match, n)
				if name == "wavefront" || name == "islip-n" || name == "mwm" {
					checkMaximal(t, req, match, n)
				}
			}
		}
	}
}

// TestSchedulersEmptyAndFull pins the two degenerate matrices: no
// requests matches nothing; all-ones requests must yield a perfect
// matching from every maximal scheduler.
func TestSchedulersEmptyAndFull(t *testing.T) {
	const n = 64
	empty := newMatrix(n)
	full := newMatrix(n)
	for i := 0; i < n; i++ {
		full[i].SetFirstN(n)
	}
	match := make([]int, n)
	for name, s := range allSchedulers(n) {
		if got := s.Schedule(empty, nil, match); got != 0 {
			t.Fatalf("%s matched %d on empty requests", name, got)
		}
		got := s.Schedule(full, nil, match)
		checkValid(t, full, match, n)
		switch name {
		case "wavefront", "islip-n", "mwm":
			if got != n {
				t.Fatalf("%s matched %d/%d on all-ones requests", name, got, n)
			}
		default:
			if got < 1 {
				t.Fatalf("%s matched nothing on all-ones requests", name)
			}
		}
	}
}

// TestMWMPrefersHeavyQueues pins the weight-awareness that separates
// MWM from the weight-blind schedulers: with a conflict where one edge
// carries far more queued cells, MWM must take the heavy edge.
func TestMWMPrefersHeavyQueues(t *testing.T) {
	const n = 4
	// Edges: 0->0 (weight 30), 0->1 (1), 1->0 (1). The candidate
	// matchings are {0->0} with weight 30 and {0->1, 1->0} with weight 2
	// — more edges, less weight. MWM must take the heavy single edge; a
	// maximum-cardinality scheduler would take the pair.
	req := reqMatrix(n, [][2]int{{0, 0}, {0, 1}, {1, 0}})
	qlen := make([]int32, n*n)
	qlen[0*n+0] = 30
	qlen[0*n+1] = 1
	qlen[1*n+0] = 1
	match := make([]int, n)
	s := NewMWM(n)
	if got := s.Schedule(req, qlen, match); got != 1 {
		t.Fatalf("matched %d pairs, want 1 (the heavy edge)", got)
	}
	if match[0] != 0 || match[1] != -1 {
		t.Fatalf("MWM took %v, want only the heavy edge 0->0", match[:2])
	}
}

// TestMWMMatchesBruteForce checks MWM's total weight against exhaustive
// search over all matchings at small n.
func TestMWMMatchesBruteForce(t *testing.T) {
	src := prng.New(5)
	const n = 5
	req := newMatrix(n)
	qlen := make([]int32, n*n)
	match := make([]int, n)
	s := NewMWM(n)
	for trial := 0; trial < 200; trial++ {
		randomReq(src, req, qlen, n, 0.4)
		s.Schedule(req, qlen, match)
		checkValid(t, req, match, n)
		got := matchWeight(match, qlen, n)
		want := bruteMaxWeight(req, qlen, n)
		if got != want {
			t.Fatalf("trial %d: MWM weight %d, brute force %d", trial, got, want)
		}
	}
}

// bruteMaxWeight finds the maximum matching weight by trying every
// assignment of inputs to outputs recursively.
func bruteMaxWeight(req []bitvec.Vec, qlen []int32, n int) int64 {
	outUsed := make([]bool, n)
	var rec func(in int) int64
	rec = func(in int) int64 {
		if in == n {
			return 0
		}
		best := rec(in + 1) // leave input unmatched
		req[in].ForEach(func(o int) {
			if outUsed[o] {
				return
			}
			outUsed[o] = true
			w := int64(qlen[in*n+o])
			if w < 1 {
				w = 1
			}
			if got := w + rec(in+1); got > best {
				best = got
			}
			outUsed[o] = false
		})
		return best
	}
	return rec(0)
}

// TestISLIPDesynchronization is the satellite-1 acceptance test: under
// saturated uniform traffic (every VOQ non-empty, so the request matrix
// is all-ones) the accept-gated pointers desynchronize within a short
// warmup, after which every cycle is a perfect matching — 100%
// throughput — and the grant pointers form a rotating permutation.
func TestISLIPDesynchronization(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		s := NewISLIP(n, 1)
		full := newMatrix(n)
		for i := 0; i < n; i++ {
			full[i].SetFirstN(n)
		}
		match := make([]int, n)
		// Warmup: iSLIP-1 needs at most n cycles to desynchronize from
		// the synchronized all-zero pointer state.
		for c := 0; c < 2*n; c++ {
			s.Schedule(full, nil, match)
		}
		for c := 0; c < 4*n; c++ {
			if got := s.Schedule(full, nil, match); got != n {
				t.Fatalf("n=%d cycle %d: matched %d/%d after warmup (pointers not desynchronized)",
					n, c, got, n)
			}
			checkValid(t, full, match, n)
		}
		// Desynchronized grant pointers are pairwise distinct: each
		// output serves a different input each cycle.
		g, _ := s.Pointers()
		seen := make([]bool, n)
		for _, p := range g {
			if seen[p] {
				t.Fatalf("n=%d: grant pointers %v not desynchronized", n, g)
			}
			seen[p] = true
		}
	}
}

// TestISLIPPointersAcceptGated pins the pointer discipline directly: an
// output whose grant is NOT accepted must keep its pointer (the analog
// arb.RoundRobin.Update deliberately advances unconditionally; see the
// §VII comment there).
func TestISLIPPointersAcceptGated(t *testing.T) {
	const n = 4
	s := NewISLIP(n, 1)
	// Outputs 0 and 1 both grant input 0 (their only requestor); input 0
	// accepts output 0 (accept pointer at 0). Output 1's grant pointer
	// must not move.
	req := reqMatrix(n, [][2]int{{0, 0}, {0, 1}})
	match := make([]int, n)
	s.Schedule(req, nil, match)
	if match[0] != 0 {
		t.Fatalf("input 0 accepted %d, want output 0", match[0])
	}
	g, a := s.Pointers()
	if g[0] != 1 {
		t.Errorf("accepted output 0 grant pointer = %d, want 1", g[0])
	}
	if g[1] != 0 {
		t.Errorf("unaccepted output 1 grant pointer = %d, want 0 (accept-gated)", g[1])
	}
	if a[0] != 1 {
		t.Errorf("input 0 accept pointer = %d, want 1", a[0])
	}
}

// TestISLIPLaterIterationsFreezePointers pins the second half of the
// discipline: matches made after iteration 1 leave both pointer arrays
// untouched.
func TestISLIPLaterIterationsFreezePointers(t *testing.T) {
	const n = 4
	// Iteration 1: outputs 0 and 1 both grant input 0; input 0 takes
	// output 0. Iteration 2: output 1 grants input 1 (its other
	// requestor), which accepts — but pointers must not move for that
	// match.
	s := NewISLIP(n, 2)
	req := reqMatrix(n, [][2]int{{0, 0}, {0, 1}, {1, 1}})
	// Make output 1's pointer prefer input 0 so iteration 1 grants 0.
	match := make([]int, n)
	s.Schedule(req, nil, match)
	if match[0] != 0 || match[1] != 1 {
		t.Fatalf("match = %v, want input0->out0, input1->out1", match)
	}
	g, a := s.Pointers()
	if g[1] != 0 {
		t.Errorf("output 1 granted in iteration 2; grant pointer = %d, want 0", g[1])
	}
	if a[1] != 0 {
		t.Errorf("input 1 matched in iteration 2; accept pointer = %d, want 0", a[1])
	}
}

// TestWavefrontRotatesPriority pins that the starting diagonal rotates:
// with two inputs contending for one output, consecutive phases serve
// different inputs.
func TestWavefrontRotatesPriority(t *testing.T) {
	const n = 2
	s := NewWavefront(n)
	req := reqMatrix(n, [][2]int{{0, 0}, {1, 0}})
	match := make([]int, n)
	winners := make(map[int]int)
	for c := 0; c < 4; c++ {
		s.Schedule(req, nil, match)
		for in, o := range match {
			if o == 0 {
				winners[in]++
			}
		}
	}
	if winners[0] != 2 || winners[1] != 2 {
		t.Fatalf("wavefront winners over 4 phases = %v, want 2 each", winners)
	}
}

// TestScheduleZeroAllocs pins the hot loops at 0 allocs/op for radix 64
// and 128 (acceptance criterion, as in the PR 4 kernel pins).
func TestScheduleZeroAllocs(t *testing.T) {
	src := prng.New(11)
	for _, n := range []int{64, 128} {
		req := newMatrix(n)
		qlen := make([]int32, n*n)
		match := make([]int, n)
		randomReq(src, req, qlen, n, 0.3)
		for name, s := range allSchedulers(n) {
			s := s
			if avg := testing.AllocsPerRun(10, func() {
				s.Schedule(req, qlen, match)
			}); avg != 0 {
				t.Errorf("%s n=%d: %.1f allocs/op, want 0", name, n, avg)
			}
		}
	}
}
