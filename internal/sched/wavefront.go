package sched

import (
	"fmt"
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// Wavefront is a rotating-priority wavefront allocator: the n diagonals
// of the request matrix are swept in order, and within a diagonal every
// cell touches a distinct input and a distinct output, so all requests
// on it can be matched without conflict (in hardware, in one combinational
// wave). Sweeping all n diagonals examines every request exactly once,
// which makes the matching maximal by construction; rotating the
// starting diagonal each phase removes the static bias toward the
// first-swept cells.
type Wavefront struct {
	n int
	p int // starting diagonal, rotated every Schedule call

	freeIn  bitvec.Vec
	freeOut bitvec.Vec
}

// NewWavefront returns a wavefront allocator over n ports.
func NewWavefront(n int) *Wavefront {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid wavefront shape n=%d", n))
	}
	return &Wavefront{n: n, freeIn: bitvec.New(n), freeOut: bitvec.New(n)}
}

// N implements Scheduler.
func (s *Wavefront) N() int { return s.n }

// Schedule implements Scheduler. qlen is ignored (the wavefront is
// weight-blind).
func (s *Wavefront) Schedule(req []bitvec.Vec, _ []int32, match []int) int {
	n := s.n
	for in := 0; in < n; in++ {
		match[in] = -1
	}
	s.freeIn.SetFirstN(n)
	s.freeOut.SetFirstN(n)
	matched := 0
	for wave := 0; wave < n && matched < n; wave++ {
		d := s.p + wave
		if d >= n {
			d -= n
		}
		// Diagonal d holds the cells (i, (i+d) mod n).
		for w, word := range s.freeIn {
			for word != 0 {
				i := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				j := i + d
				if j >= n {
					j -= n
				}
				if s.freeOut.Get(j) && req[i].Get(j) {
					match[i] = j
					matched++
					s.freeIn.Clear(i)
					s.freeOut.Clear(j)
				}
			}
		}
	}
	if s.p++; s.p == n {
		s.p = 0
	}
	return matched
}
