package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/experiments"
	"github.com/reprolab/hirise/internal/sim"
	"github.com/reprolab/hirise/internal/store"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// Request is the body of POST /jobs: either a registered paper
// experiment or an ad-hoc load sweep, mirroring the knobs of
// cmd/hirise-bench and cmd/hirise-sim respectively. Zero-valued fields
// take the same defaults the CLIs use, and the normalized form — not
// the raw body — is what gets hashed into the result key, so
// spelling-level differences between equivalent submissions still hit
// the same cache entry.
type Request struct {
	// Kind selects the computation: "experiment" or "loadsweep".
	Kind string `json:"kind"`

	// Experiment fields (Kind "experiment").

	// Experiment is a registered experiment ID (see hirise-bench -list).
	Experiment string `json:"experiment,omitempty"`
	// Quick selects the reduced smoke-run fidelity.
	Quick bool `json:"quick,omitempty"`
	// Format renders the result as "text", "csv", or "json" (default
	// "text").
	Format string `json:"format,omitempty"`

	// Load-sweep fields (Kind "loadsweep").

	// Design is "2d", "folded", or "hirise" (default "hirise").
	Design string `json:"design,omitempty"`
	// Radix, Layers, Channels, Classes, Scheme, Alloc mirror the
	// hirise-sim flags (defaults: 64, 4, 4, 3, "clrg", "input").
	Radix    int    `json:"radix,omitempty"`
	Layers   int    `json:"layers,omitempty"`
	Channels int    `json:"channels,omitempty"`
	Classes  int    `json:"classes,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	Alloc    string `json:"alloc,omitempty"`
	// Traffic is the pattern name (default "uniform"); Target and Burst
	// parameterize hotspot and bursty traffic.
	Traffic string  `json:"traffic,omitempty"`
	Target  int     `json:"target,omitempty"`
	Burst   float64 `json:"burst,omitempty"`
	// Loads lists the sweep's offered loads explicitly; alternatively
	// Lo/Hi/Step describe an inclusive range. Exactly one form must be
	// given.
	Loads []float64 `json:"loads,omitempty"`
	Lo    float64   `json:"lo,omitempty"`
	Hi    float64   `json:"hi,omitempty"`
	Step  float64   `json:"step,omitempty"`
	// VCs and Flits mirror -vcs and -flits (defaults 4 and 4).
	VCs   int `json:"vcs,omitempty"`
	Flits int `json:"flits,omitempty"`

	// Shared fidelity overrides (0 keeps the kind's default).

	Seed    uint64 `json:"seed,omitempty"`
	Warmup  int64  `json:"warmup,omitempty"`
	Measure int64  `json:"measure,omitempty"`
}

// normalize validates the request and fills defaults in place, so the
// struct afterwards is the canonical identity of the computation.
func (r *Request) normalize() error {
	switch r.Kind {
	case "experiment":
		if _, err := experiments.Get(r.Experiment); err != nil {
			return err
		}
		switch r.Format {
		case "":
			r.Format = "text"
		case "text", "csv", "json":
		default:
			return fmt.Errorf("serve: unknown format %q (want text, csv, or json)", r.Format)
		}
		return nil
	case "loadsweep":
		if r.Design == "" {
			r.Design = "hirise"
		}
		r.Design = strings.ToLower(r.Design)
		if r.Radix == 0 {
			r.Radix = 64
		}
		if r.Layers == 0 {
			r.Layers = 4
		}
		if r.Channels == 0 {
			r.Channels = 4
		}
		if r.Classes == 0 {
			r.Classes = 3
		}
		if r.Scheme == "" {
			r.Scheme = "clrg"
		}
		r.Scheme = strings.ToLower(r.Scheme)
		if r.Alloc == "" {
			r.Alloc = "input"
		}
		r.Alloc = strings.ToLower(r.Alloc)
		if r.Traffic == "" {
			r.Traffic = "uniform"
		}
		r.Traffic = strings.ToLower(r.Traffic)
		if r.VCs == 0 {
			r.VCs = 4
		}
		if r.Flits == 0 {
			r.Flits = 4
		}
		if r.Seed == 0 {
			r.Seed = 1
		}
		if r.Warmup == 0 {
			r.Warmup = 10000
		}
		if r.Measure == 0 {
			r.Measure = 50000
		}
		if len(r.Loads) == 0 {
			if r.Step <= 0 || r.Hi < r.Lo {
				return fmt.Errorf("serve: loadsweep needs loads[] or lo/hi/step with step > 0 and hi >= lo")
			}
			for l := r.Lo; l <= r.Hi+1e-12; l += r.Step {
				r.Loads = append(r.Loads, l)
			}
			r.Lo, r.Hi, r.Step = 0, 0, 0 // folded into Loads for the key
		} else if r.Step != 0 || r.Lo != 0 || r.Hi != 0 {
			return fmt.Errorf("serve: give loads[] or lo/hi/step, not both")
		}
		// Building the factories validates design/scheme/alloc/traffic.
		if _, _, err := r.sweepFactories(); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown kind %q (want experiment or loadsweep)", r.Kind)
	}
}

// switchConfig assembles the topo.Config a loadsweep request describes.
func (r *Request) switchConfig() (topo.Config, error) {
	cfg := topo.Config{Radix: r.Radix, Layers: r.Layers, Channels: r.Channels, Classes: r.Classes}
	switch r.Scheme {
	case "l2l", "lrg":
		cfg.Scheme = topo.L2LLRG
	case "wlrg":
		cfg.Scheme = topo.WLRG
	case "clrg":
		cfg.Scheme = topo.CLRG
	default:
		return cfg, fmt.Errorf("serve: unknown scheme %q", r.Scheme)
	}
	switch r.Alloc {
	case "input":
		cfg.Alloc = topo.InputBinned
	case "output":
		cfg.Alloc = topo.OutputBinned
	case "priority":
		cfg.Alloc = topo.PriorityBased
	default:
		return cfg, fmt.Errorf("serve: unknown allocation %q", r.Alloc)
	}
	return cfg, nil
}

// sweepFactories returns pure switch and traffic factories for a
// loadsweep request, validating every enum along the way.
func (r *Request) sweepFactories() (func() sim.Switch, func() sim.Traffic, error) {
	cfg, err := r.switchConfig()
	if err != nil {
		return nil, nil, err
	}
	var mkSwitch func() sim.Switch
	switch r.Design {
	case "2d":
		mkSwitch = func() sim.Switch { return crossbar.New(r.Radix) }
	case "folded":
		mkSwitch = func() sim.Switch { return crossbar.NewFolded(r.Radix, r.Layers) }
	case "hirise":
		if _, err := core.New(cfg); err != nil {
			return nil, nil, err
		}
		mkSwitch = func() sim.Switch {
			sw, err := core.New(cfg)
			if err != nil {
				panic(err) // validated above
			}
			return sw
		}
	default:
		return nil, nil, fmt.Errorf("serve: unknown design %q", r.Design)
	}

	var mkTraffic func() sim.Traffic
	switch r.Traffic {
	case "uniform":
		mkTraffic = func() sim.Traffic { return traffic.Uniform{Radix: r.Radix} }
	case "hotspot":
		mkTraffic = func() sim.Traffic { return traffic.Hotspot{Target: r.Target} }
	case "adversarial":
		mkTraffic = func() sim.Traffic { return traffic.Adversarial() }
	case "bursty":
		burst := r.Burst
		if burst == 0 {
			burst = 8
		}
		mkTraffic = func() sim.Traffic { return traffic.NewBursty(r.Radix, burst) }
	case "permutation":
		mkTraffic = func() sim.Traffic { return traffic.NewRandomPermutation(r.Radix, r.Seed) }
	case "bitrev":
		mkTraffic = func() sim.Traffic { return traffic.BitReverse{Radix: r.Radix} }
	case "interlayer":
		mkTraffic = func() sim.Traffic { return traffic.InterLayerWorstCase{Cfg: cfg} }
	case "layerlocal":
		mkTraffic = func() sim.Traffic { return traffic.LayerLocal{Cfg: cfg} }
	case "binadv":
		mkTraffic = func() sim.Traffic { return traffic.BinAdversarial{Cfg: cfg} }
	default:
		return nil, nil, fmt.Errorf("serve: unknown traffic %q", r.Traffic)
	}
	return mkSwitch, mkTraffic, nil
}

// keyPayload is what the store hashes for a job, alongside the kind and
// the model-version fingerprint: the normalized request plus everything
// CacheKey folds in for experiments (publication-fidelity windows, the
// technology constants). Worker counts are deliberately absent — output
// is byte-identical at any parallelism.
type keyPayload struct {
	Request Request              `json:"request"`
	Opts    experiments.CacheKey `json:"opts,omitempty"`
}

// experimentOpts assembles the experiment options a request selects.
func (r Request) experimentOpts() experiments.Opts {
	o := experiments.DefaultOpts()
	if r.Quick {
		o = experiments.QuickOpts()
	}
	if r.Seed != 0 {
		o.Seed = r.Seed
	}
	if r.Warmup != 0 {
		o.Warmup = r.Warmup
	}
	if r.Measure != 0 {
		o.Measure = r.Measure
	}
	return o
}

// keyOf derives the job's content address from the normalized request.
func (s *Server) keyOf(r Request) (store.Key, error) {
	p := keyPayload{Request: r}
	if r.Kind == "experiment" {
		p.Opts = r.experimentOpts().CacheKey()
	}
	return s.store.KeyOf(r.Kind, p)
}

// SweepPoint is one row of a loadsweep result body.
type SweepPoint struct {
	Load   float64    `json:"load"`
	Result sim.Result `json:"result"`
}

// compute runs the job's computation under ctx — the store's
// singleflight context, live while any client still wants the result —
// and returns the result body. It is only called on a cache miss.
func (s *Server) compute(ctx context.Context, j *job) ([]byte, error) {
	switch j.req.Kind {
	case "experiment":
		opts := j.req.experimentOpts()
		opts.Workers = s.cfg.SimWorkers
		opts.Progress = func() { j.progress.Add(1) }
		t, err := experiments.RunCtx(ctx, j.req.Experiment, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		switch j.req.Format {
		case "csv":
			err = t.WriteCSV(&buf)
		case "json":
			err = t.WriteJSON(&buf)
		default:
			t.Fprint(&buf)
		}
		if err != nil {
			return nil, err
		}
		return buf.Bytes(), nil

	case "loadsweep":
		mkSwitch, mkTraffic, err := j.req.sweepFactories()
		if err != nil {
			return nil, err
		}
		counted := func() sim.Switch {
			j.progress.Add(1)
			return mkSwitch()
		}
		base := sim.Config{
			PacketFlits: j.req.Flits, VCs: j.req.VCs,
			Warmup: j.req.Warmup, Measure: j.req.Measure,
			Seed: j.req.Seed, Ctx: ctx,
		}
		results, err := sim.LoadSweep(base, counted, mkTraffic, j.req.Loads, s.cfg.SimWorkers)
		if err != nil {
			return nil, err
		}
		points := make([]SweepPoint, len(results))
		for i, res := range results {
			points[i] = SweepPoint{Load: j.req.Loads[i], Result: res}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("serve: unknown kind %q", j.req.Kind)
}

// contentType returns the Content-Type of a job's result body.
func contentType(r Request) string {
	if r.Kind == "loadsweep" || r.Format == "json" {
		return "application/json"
	}
	if r.Format == "csv" {
		return "text/csv; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}
