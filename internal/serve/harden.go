package serve

import (
	"net/http"
	"time"
)

// HTTPTimeouts are the edge-protection knobs NewHTTPServer applies.
// Zero fields select the defaults; tests shrink ReadHeaderTimeout to
// exercise the slow-loris path quickly.
type HTTPTimeouts struct {
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers (default 5s). This is the slow-loris defence: a
	// client holding a connection open with one header byte per minute
	// is cut off here, before it ever occupies a handler.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the entire request, body included
	// (default 30s — submissions are small JSON documents).
	ReadTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// between requests (default 120s).
	IdleTimeout time.Duration
	// MaxHeaderBytes bounds the request header size (default 64 KiB).
	MaxHeaderBytes int
}

func (t HTTPTimeouts) withDefaults() HTTPTimeouts {
	if t.ReadHeaderTimeout == 0 {
		t.ReadHeaderTimeout = 5 * time.Second
	}
	if t.ReadTimeout == 0 {
		t.ReadTimeout = 30 * time.Second
	}
	if t.IdleTimeout == 0 {
		t.IdleTimeout = 120 * time.Second
	}
	if t.MaxHeaderBytes == 0 {
		t.MaxHeaderBytes = 64 << 10
	}
	return t
}

// NewHTTPServer wraps the service handler in an http.Server with the
// edge protections every internet-adjacent daemon needs: header, read,
// and idle timeouts plus a header-size cap. WriteTimeout is deliberately
// left unset — GET /jobs/{id}/events is a legitimately long-lived
// response stream, and heartbeats (Config.HeartbeatInterval) already
// detect dead clients there.
func NewHTTPServer(addr string, handler http.Handler, t HTTPTimeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeaderTimeout,
		ReadTimeout:       t.ReadTimeout,
		IdleTimeout:       t.IdleTimeout,
		MaxHeaderBytes:    t.MaxHeaderBytes,
	}
}
