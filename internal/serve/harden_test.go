package serve_test

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/serve"
)

// TestSlowLorisConnectionCutOff: a client that dribbles request headers
// without finishing them is disconnected once ReadHeaderTimeout
// elapses, instead of holding a connection slot forever. This is the
// regression test for the hardened http.Server configuration.
func TestSlowLorisConnectionCutOff(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := serve.NewHTTPServer("", mux, serve.HTTPTimeouts{ReadHeaderTimeout: 200 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	addr := ln.Addr().String()

	// Sanity: a well-formed request is served normally.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	// The attack: open a connection, send a partial header block, never
	// finish it. The server must hang up on its own.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Dribble: s")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server closed the connection (or sent 408 then closed)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow-loris connection survived %v, want cutoff near the 200ms header timeout", elapsed)
	}
}

// TestHTTPTimeoutDefaults: the production defaults are wired in, and
// WriteTimeout stays unset so the NDJSON events stream can live
// indefinitely.
func TestHTTPTimeoutDefaults(t *testing.T) {
	srv := serve.NewHTTPServer(":0", http.NotFoundHandler(), serve.HTTPTimeouts{})
	if srv.ReadHeaderTimeout != 5*time.Second || srv.ReadTimeout != 30*time.Second ||
		srv.IdleTimeout != 120*time.Second || srv.MaxHeaderBytes != 64<<10 {
		t.Errorf("defaults = %v/%v/%v/%d", srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout, srv.MaxHeaderBytes)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (events streams are long-lived)", srv.WriteTimeout)
	}
}
