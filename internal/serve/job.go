package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/hirise/internal/store"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle: Queued -> Running -> one of Done / Failed / Cancelled /
// Timeout. A queued job that is cancelled skips Running entirely; Timeout
// is reached only from Running, when the job outlives Config.JobTimeout.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
	Timeout   State = "timeout"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled || s == Timeout
}

// Event is one entry of a job's NDJSON progress stream.
type Event struct {
	// Seq orders events within one job, starting at 0.
	Seq int `json:"seq"`
	// Event names the transition or observation: "queued", "started",
	// "progress", "done", "failed", "cancelled", "timeout".
	Event string `json:"event"`
	// Time is the wall-clock timestamp (RFC3339, UTC).
	Time string `json:"time"`
	// Completed and Total report sweep progress on "progress" events
	// (Total is 0 when the experiment's task count is not known up
	// front).
	Completed int64 `json:"completed,omitempty"`
	Total     int   `json:"total,omitempty"`
	// CacheHit is set on "done": true when the result was served from
	// the store without re-simulation.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error carries the failure message on "failed".
	Error string `json:"error,omitempty"`
	// Windows and Telemetry surface the job's live time-series sampler
	// on "progress" events: the closed-window count and the most recent
	// window's value per series. Absent until the first window closes
	// or when telemetry is disabled.
	Windows   int                `json:"windows,omitempty"`
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// job is one submitted computation.
type job struct {
	id  string
	req Request
	key store.Key

	// ctx is cancelled by DELETE /jobs/{id} or server drain-timeout;
	// the simulation layers poll it between cycles.
	ctx    context.Context
	cancel context.CancelFunc

	// progress counts completed simulation tasks (atomic; written from
	// pool worker goroutines via Opts.Progress).
	progress atomic.Int64
	total    int // known task count (sweep point count), 0 if unknown

	mu       sync.Mutex
	state    State
	events   []Event
	changed  chan struct{} // closed and replaced on every update
	result   []byte
	cacheHit bool
	// source records where a cluster-enabled node got the result:
	// "peer:<id>" or "computed". Empty when clustering is off (keeping
	// single-daemon Status JSON unchanged) and on cache hits.
	source string
	err    error
	// tele is the job's live progress sampler, attached when the job
	// starts running (nil while queued or when telemetry is disabled).
	tele *jobTelemetry

	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, req Request, key store.Key, parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id:      id,
		req:     req,
		key:     key,
		ctx:     ctx,
		cancel:  cancel,
		state:   Queued,
		changed: make(chan struct{}),
		created: time.Now(),
	}
	j.appendEventLocked(Event{Event: "queued"})
	return j
}

// appendEventLocked stamps and appends an event and wakes streamers.
// Callers must hold j.mu — except the newJob constructor, which owns the
// job exclusively.
func (j *job) appendEventLocked(e Event) {
	e.Seq = len(j.events)
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	j.events = append(j.events, e)
	close(j.changed)
	j.changed = make(chan struct{})
}

// transition moves the job to a new state with its lifecycle event.
// Transitions out of a terminal state are ignored (e.g. a worker
// finishing a job that was already marked cancelled).
func (j *job) transition(state State, e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	switch state {
	case Running:
		j.started = time.Now()
	case Done, Failed, Cancelled, Timeout:
		j.finished = time.Now()
	}
	j.appendEventLocked(e)
}

// finish records a terminal result. cancelled wins over timedOut: a
// client DELETE that races the deadline reports what the client asked
// for.
func (j *job) finish(result []byte, cacheHit bool, err error, cancelled, timedOut bool) {
	j.mu.Lock()
	terminal := j.state.Terminal()
	if !terminal {
		j.result, j.cacheHit, j.err = result, cacheHit, err
	}
	j.mu.Unlock()
	if terminal {
		return
	}
	switch {
	case cancelled:
		j.transition(Cancelled, Event{Event: "cancelled"})
	case timedOut:
		j.transition(Timeout, Event{Event: "timeout", Error: err.Error()})
	case err != nil:
		j.transition(Failed, Event{Event: "failed", Error: err.Error()})
	default:
		j.transition(Done, Event{Event: "done", CacheHit: cacheHit})
	}
}

// setSource records the result's provenance; called from inside the
// store's compute closure, before finish.
func (j *job) setSource(src string) {
	j.mu.Lock()
	j.source = src
	j.mu.Unlock()
}

// telemetry returns the job's sampler, nil until the job starts (or
// forever, when telemetry is disabled).
func (j *job) telemetry() *jobTelemetry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tele
}

// snapshot returns the state, the events at or after fromSeq, and the
// change channel to wait on for more.
func (j *job) snapshot(fromSeq int) (State, []Event, chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var tail []Event
	if fromSeq < len(j.events) {
		tail = append(tail, j.events[fromSeq:]...)
	}
	return j.state, tail, j.changed
}

// Status is the JSON shape of GET /jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Experiment echoes the experiment ID for experiment jobs.
	Experiment string `json:"experiment,omitempty"`
	// Key is the content address of the job's result in the store.
	Key string `json:"key"`
	// CacheHit reports whether a finished job was served from the
	// store without re-simulation.
	CacheHit bool `json:"cache_hit"`
	// Source reports, on cluster-enabled nodes, where a computed (i.e.
	// non-cache-hit) result came from: "peer:<id>" or "computed".
	// Absent on single-daemon deployments and on cache hits.
	Source string `json:"source,omitempty"`
	// Progress counts completed simulation tasks; Total is 0 when the
	// task count is not known up front.
	Progress int64  `json:"progress"`
	Total    int    `json:"total,omitempty"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		Kind:       j.req.Kind,
		State:      j.state,
		Experiment: j.req.Experiment,
		Key:        j.key.String(),
		CacheHit:   j.cacheHit,
		Source:     j.source,
		Progress:   j.progress.Load(),
		Total:      j.total,
		Created:    j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}
