package serve_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/cluster"
	"github.com/reprolab/hirise/internal/leakcheck"
	"github.com/reprolab/hirise/internal/serve"
)

// clusteredPair stands up node A (plain) and node B clustered with A,
// each over its own store.
func clusteredPair(t *testing.T, cfgB serve.Config) (tsA, tsB *httptest.Server) {
	t.Helper()
	leakcheck.Check(t)
	_, tsA = startTestServer(t, serve.Config{SimWorkers: 1})
	cl, err := cluster.New(cluster.Config{
		Self:          "b",
		Peers:         []cluster.Peer{{ID: "a", URL: tsA.URL}, {ID: "b"}},
		ProbeInterval: -1,
		HedgeDelay:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	cfgB.SimWorkers = 1
	cfgB.Cluster = cl
	_, tsB = startTestServer(t, cfgB)
	return tsA, tsB
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestClusterPeerFetchOnMiss is the tentpole path: a job computed on
// node A is served to node B through the peer layer — byte-identical,
// no recomputation, provenance recorded.
func TestClusterPeerFetchOnMiss(t *testing.T) {
	tsA, tsB := clusteredPair(t, serve.Config{})
	req := quickSweep()

	stA := submit(t, tsA, req)
	stA = waitState(t, tsA, stA.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	if stA.Source != "" {
		t.Errorf("single-daemon node reported source %q, want empty", stA.Source)
	}
	bodyA, _ := getResult(t, tsA, stA.ID)

	// B's store is cold: the result must arrive via the peer fetch, not
	// a local simulation and not a local cache hit.
	stB := submit(t, tsB, req)
	stB = waitState(t, tsB, stB.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	if stB.CacheHit {
		t.Error("cold clustered node reported a local cache hit")
	}
	if stB.Source != "peer:a" {
		t.Errorf("source = %q, want peer:a", stB.Source)
	}
	if stB.Key != stA.Key {
		t.Errorf("store keys differ across nodes: %s vs %s", stB.Key, stA.Key)
	}
	bodyB, _ := getResult(t, tsB, stB.ID)
	if string(bodyA) != string(bodyB) {
		t.Error("peer-fetched result is not byte-identical to the computed one")
	}

	m := scrape(t, tsB)
	for _, want := range []string{"serve_jobs_peer 1", "serve_jobs_computed 0", "cluster_peer_hits 1", "cluster_breaker_state_a 0"} {
		if !strings.Contains(m, want) {
			t.Errorf("node B /metrics missing %q", want)
		}
	}

	// A job B already holds (via the fetch) is a plain cache hit on
	// resubmission — the cluster is not consulted again.
	stB2 := submit(t, tsB, req)
	stB2 = waitState(t, tsB, stB2.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	if !stB2.CacheHit || stB2.Source != "" {
		t.Errorf("resubmission = (hit=%v, source=%q), want a sourceless cache hit", stB2.CacheHit, stB2.Source)
	}
}

// TestStoreEndpoint: GET /store/{key} serves raw cached payloads (the
// peer-fetch wire format) and never computes.
func TestStoreEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{SimWorkers: 1})
	st := submit(t, ts, quickSweep())
	waitState(t, ts, st.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	body, _ := getResult(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/store/" + st.Key)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(raw) != string(body) {
		t.Fatalf("GET /store/{key}: HTTP %d, %d bytes; want 200 with the result payload", resp.StatusCode, len(raw))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("store content type = %q", ct)
	}

	for path, want := range map[string]int{
		"/store/not-hex":                    http.StatusBadRequest,
		"/store/" + strings.Repeat("0", 64): http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: HTTP %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestClusterEndpoint: GET /cluster exposes the peer snapshot on
// clustered nodes and 404s on plain ones.
func TestClusterEndpoint(t *testing.T) {
	tsA, tsB := clusteredPair(t, serve.Config{})

	resp, err := http.Get(tsA.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /cluster on a plain node: HTTP %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(tsB.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Self != "b" || len(snap.Peers) != 1 || snap.Peers[0].ID != "a" || snap.Peers[0].State != "closed" {
		t.Errorf("GET /cluster = %+v, want self b with peer a closed", snap.Snapshot)
	}
}

// TestHeartbeatEvents: an events stream with nothing to say still emits
// periodic heartbeats, so proxies keep it open and dead clients surface
// as write errors. The job under watch sits queued behind a
// long-running one, the quietest stream there is.
func TestHeartbeatEvents(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Workers: 1, SimWorkers: 1, HeartbeatInterval: 40 * time.Millisecond,
	})

	blocker := submit(t, ts, longSweep())
	queued := submit(t, ts, serve.Request{
		Kind: "loadsweep", Design: "2d", Radix: 8,
		Loads: []float64{0.15}, Warmup: 100, Measure: 2_000_000_000,
	})

	resp, err := http.Get(ts.URL + "/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	for sc.Scan() && len(kinds) < 3 {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, e.Event)
	}
	if len(kinds) != 3 || kinds[0] != "queued" || kinds[1] != "heartbeat" || kinds[2] != "heartbeat" {
		t.Fatalf("events = %v, want queued then heartbeats", kinds)
	}

	// Cancel both jobs; the stream must terminate with the lifecycle
	// event, heartbeats notwithstanding.
	for _, id := range []string{queued.ID, blocker.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
	}
	last := ""
	for sc.Scan() {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		last = e.Event
	}
	if last != "cancelled" {
		t.Fatalf("stream ended with %q, want cancelled", last)
	}
}
