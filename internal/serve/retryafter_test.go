package serve

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

// TestRetryAfterSeconds pins the 429 Retry-After estimate: expected
// queue drain time (average job duration × depth ÷ workers, 1s/job
// before any job has completed), clamped to [1, 60], plus deterministic
// seeded jitter of up to half the base. The golden values fix the
// formula AND the jitter stream — any change to either is a visible
// client-facing behaviour change and must update this table.
func TestRetryAfterSeconds(t *testing.T) {
	jitter := prng.New(42)
	for i, tc := range []struct {
		depth, workers int
		avg            float64
		want           int
	}{
		{0, 1, 0, 1},     // empty queue: come back in about a second
		{64, 1, 0, 90},   // full default queue, no history: 60s base + jitter
		{64, 1, 0, 63},   // same inputs, next jitter draw differs
		{64, 4, 0, 21},   // more workers drain faster
		{64, 1, 4.0, 76}, // slow jobs: clamped to the 60s cap + jitter
		{64, 1, 4.0, 60}, // jitter can also be zero
		{10, 2, 0.5, 3},  // moderate load: ~2.5s drain estimate
		{3, 1, 0.01, 2},  // sub-50ms jobs clamp to the 0.05s floor
	} {
		if got := retryAfterSeconds(tc.depth, tc.workers, tc.avg, jitter); got != tc.want {
			t.Errorf("case %d: retryAfterSeconds(%d, %d, %v) = %d, want %d",
				i, tc.depth, tc.workers, tc.avg, got, tc.want)
		}
	}

	// Determinism: an identically-seeded server replays the identical
	// hint sequence — chaos runs are reproducible.
	a, b := prng.New(7), prng.New(7)
	for i := 0; i < 50; i++ {
		if x, y := retryAfterSeconds(64, 1, 0, a), retryAfterSeconds(64, 1, 0, b); x != y {
			t.Fatalf("draw %d: %d != %d with equal seeds", i, x, y)
		}
	}

	// Bounds: the hint never falls below 1s and never exceeds base +
	// window regardless of inputs.
	j := prng.New(9)
	for i := 0; i < 200; i++ {
		got := retryAfterSeconds(i%100, 1+i%8, float64(i%30), j)
		if got < 1 || got > 90 {
			t.Fatalf("retryAfterSeconds out of range: %d", got)
		}
	}
}
