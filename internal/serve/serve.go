// Package serve is the experiment job service: a long-running HTTP API
// over the deterministic simulation engine, backed by the
// content-addressed result store. It turns the repository's CLIs'
// one-shot runs into shared, cacheable, cancellable jobs:
//
//	POST   /jobs              submit an experiment or load sweep (429 under backpressure)
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status (state, cache_hit, progress, result key)
//	GET    /jobs/{id}/result  the result body once done
//	GET    /jobs/{id}/events  NDJSON lifecycle + progress stream, live until terminal
//	GET    /jobs/{id}/telemetry  windowed progress time series of a started job
//	DELETE /jobs/{id}         cancel: pending jobs are dropped, running jobs abort
//	                          at the simulators' next cycle-level ctx check
//	GET    /healthz           liveness + queue depth
//	GET    /metrics           Prometheus text exposition of server counters
//
// Identical submissions share one computation (store singleflight) and
// later ones are served byte-identical from cache; a DELETE or a
// server-wide drain timeout cancels the job's context, which the pool /
// sim / noc layers poll cooperatively, so cancelled work actually
// releases its workers instead of simulating into the void.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/hirise/internal/cluster"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/store"
	"github.com/reprolab/hirise/internal/tele"
)

// Config parameterizes a Server.
type Config struct {
	// Store holds results; required. A memory-only store (dir "") works
	// but loses the cache on restart.
	Store *store.Store
	// QueueDepth bounds the number of accepted-but-not-finished jobs;
	// submissions beyond it get 429 (default 64).
	QueueDepth int
	// Workers is the number of jobs executed concurrently (default 1 —
	// each job already parallelizes internally via SimWorkers).
	Workers int
	// SimWorkers bounds the per-job simulation parallelism, like the
	// CLIs' -parallel flag (0 selects all CPUs).
	SimWorkers int
	// JobTimeout bounds each job's wall-clock run time (0 = unlimited).
	// A job that outlives it is cancelled at the simulators' next
	// cycle-level check and settles in the distinct "timeout" terminal
	// state, so stuck or oversized submissions cannot pin a worker
	// forever.
	JobTimeout time.Duration
	// TelemetryWindow is the wall-clock sampling cadence for per-job
	// live telemetry (progress time series surfaced through the events
	// stream and GET /jobs/{id}/telemetry). 0 selects the 250ms
	// default; a negative value disables job telemetry entirely.
	TelemetryWindow time.Duration
	// Cluster is the optional peer layer: on a store miss the job's
	// result is fetched from the key's home node and ring siblings
	// before being computed locally. Nil keeps single-daemon behaviour
	// byte-identical — the cluster can only avoid work, never add
	// failure modes (every peer problem degrades to local compute).
	// The Server uses but does not own the Cluster; the caller closes
	// it after Drain.
	Cluster *cluster.Cluster
	// HeartbeatInterval is how often an otherwise-idle NDJSON events
	// stream emits a "heartbeat" event, keeping proxies from timing
	// the stream out and surfacing dead clients to the handler
	// (default 10s; negative disables heartbeats).
	HeartbeatInterval time.Duration
	// RetryJitterSeed seeds the deterministic jitter added to 429
	// Retry-After hints so synchronized clients spread out instead of
	// retrying in lockstep (default 1).
	RetryJitterSeed uint64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.TelemetryWindow == 0 {
		c.TelemetryWindow = 250 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 10 * time.Second
	}
	if c.RetryJitterSeed == 0 {
		c.RetryJitterSeed = 1
	}
	return c
}

// Server is the job service. Create with New, expose via Handler, stop
// with Drain.
type Server struct {
	cfg   Config
	store *store.Store

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for GET /jobs
	queue    chan *job
	draining bool
	seq      int

	running atomic.Int64
	workers sync.WaitGroup

	submitted, rejected, completed, failed, cancelled, timedout atomic.Int64
	// computedLocal counts jobs whose result came from running the
	// simulator here; peerFetched the ones served by a cluster peer.
	// Their sum plus cache hits accounts for every done job, which is
	// what the chaos tests audit to prove nothing is computed twice.
	computedLocal, peerFetched atomic.Int64

	// retryJitter drives the deterministic Retry-After jitter; guarded
	// by mu (the 429 path already holds it).
	retryJitter *prng.Source

	// clusterTele samples the cluster's windowed fetch/breaker tracks
	// on the TelemetryWindow cadence for GET /cluster; nil when
	// clustering or telemetry is off.
	clusterTele     *jobTelemetry
	stopClusterTele func()

	// jobStats is the persistent cross-job registry (the job-duration
	// histogram). obs registries are single-writer by contract, so both
	// the per-job Observe and the per-scrape Merge hold statsMu.
	statsMu  sync.Mutex
	jobStats *obs.Registry
}

// New starts a Server's worker pool and returns it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("serve: Config.Store is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		store:       cfg.Store,
		baseCtx:     ctx,
		cancelBase:  cancel,
		jobs:        map[string]*job{},
		queue:       make(chan *job, cfg.QueueDepth),
		jobStats:    obs.NewRegistry(),
		retryJitter: prng.New(cfg.RetryJitterSeed),
	}
	if cfg.Cluster != nil && cfg.TelemetryWindow > 0 {
		s.startClusterTelemetry()
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// worker executes queued jobs until the queue is closed by Drain.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job through the store.
func (s *Server) run(j *job) {
	if j.ctx.Err() != nil {
		// Cancelled while queued.
		j.finish(nil, false, j.ctx.Err(), true, false)
		s.cancelled.Add(1)
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	j.transition(Running, Event{Event: "started"})
	stopTele := s.startTelemetry(j)
	start := time.Now()

	// The wall-clock budget starts when the job starts running, not when
	// it was queued: a long queue must not eat a job's timeout.
	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	// The peer fetch lives inside the compute closure so the store's
	// singleflight covers it too: concurrent submissions of one key make
	// one cluster round-trip, not one per caller.
	data, hit, err := s.store.GetOrCompute(ctx, j.key, func(cctx context.Context) ([]byte, error) {
		if cl := s.cfg.Cluster; cl != nil {
			if data, from, ok := cl.Fetch(cctx, j.key); ok {
				s.peerFetched.Add(1)
				j.setSource("peer:" + from)
				return data, nil
			}
			j.setSource("computed")
		}
		s.computedLocal.Add(1)
		return s.compute(cctx, j)
	})
	stopTele()
	s.statsMu.Lock()
	s.jobStats.Histogram("serve.job.duration.seconds", 0.5, 40).Observe(time.Since(start).Seconds())
	s.statsMu.Unlock()
	cancelled := j.ctx.Err() != nil && errors.Is(err, context.Canceled)
	// Timeout: the per-job deadline fired and the run errored, but the
	// job itself was never cancelled by a client or a drain.
	timedOut := err != nil && ctx.Err() != nil && j.ctx.Err() == nil
	j.finish(data, hit, err, cancelled, timedOut)
	switch {
	case cancelled:
		s.cancelled.Add(1)
	case timedOut:
		s.timedout.Add(1)
	case err != nil:
		s.failed.Add(1)
	default:
		s.completed.Add(1)
	}
}

// Drain stops the server gracefully: new submissions are rejected
// immediately, queued and running jobs keep going, and Drain returns
// when all of them have finished. If ctx expires first, every remaining
// job is cancelled (they unwind at their next cycle-level check) and
// Drain waits for the workers to exit before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase() // cancels every job ctx
		<-done
	}
	s.cancelBase()
	if s.stopClusterTele != nil {
		s.stopClusterTele()
	}
	return err
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /store/{key}", s.handleStore)
	mux.HandleFunc("GET /cluster", s.handleCluster)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := s.keyOf(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%06d", s.seq), req, key, s.baseCtx)
	if req.Kind == "loadsweep" {
		j.total = len(req.Loads)
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	default:
		s.seq-- // job was never admitted
		retryAfter := s.retryAfterLocked()
		s.mu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeError(w, http.StatusTooManyRequests, "job queue full (%d)", s.cfg.QueueDepth)
		return
	}
	s.mu.Unlock()
	s.submitted.Add(1)
	writeJSON(w, http.StatusAccepted, j.status())
}

// retryAfterLocked computes the Retry-After hint for a 429 from the
// live queue depth and the observed job-duration mean. Caller holds
// s.mu (the jitter source is guarded by it).
func (s *Server) retryAfterLocked() int {
	s.statsMu.Lock()
	avg := s.jobStats.Histogram("serve.job.duration.seconds", 0.5, 40).Mean()
	s.statsMu.Unlock()
	return retryAfterSeconds(len(s.queue), s.cfg.Workers, avg, s.retryJitter)
}

// retryAfterSeconds estimates how long a rejected client should wait
// before resubmitting: the queue's expected drain time (average job
// duration × depth ÷ workers, defaulting to 1s/job before any job has
// finished), clamped to [1s, 60s], plus deterministic jitter of up to
// half the base so synchronized clients spread out instead of returning
// in lockstep. Pure given the jitter source's state, which is what the
// pinning test relies on.
func retryAfterSeconds(depth, workers int, avgSeconds float64, jitter *prng.Source) int {
	if avgSeconds <= 0 {
		avgSeconds = 1.0
	} else if avgSeconds < 0.05 {
		avgSeconds = 0.05
	}
	base := int(math.Ceil(avgSeconds * float64(depth) / float64(workers)))
	if base < 1 {
		base = 1
	}
	if base > 60 {
		base = 60
	}
	window := base/2 + 1
	if window < 2 {
		window = 2
	}
	return base + int(jitter.Uint64()%uint64(window))
}

// handleStore serves GET /store/{key}: the raw cached payload for a
// content address, 404 when this node does not hold it. This is the
// endpoint cluster peers fetch from — it never computes, so a fetch
// storm cannot amplify into a compute storm.
func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, ok := s.store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "key %s not in store", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// ClusterStatus is the JSON shape of GET /cluster: the peer layer's
// snapshot plus, when telemetry is enabled, its windowed time series.
type ClusterStatus struct {
	cluster.Snapshot
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cl := s.cfg.Cluster
	if cl == nil {
		writeError(w, http.StatusNotFound, "clustering is not enabled")
		return
	}
	out := ClusterStatus{Snapshot: cl.Snapshot()}
	if s.clusterTele != nil {
		snap := s.clusterTele.snapshot(cl.Self(), "")
		out.Telemetry = &snap
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, result := j.state, j.result
	j.mu.Unlock()
	if state != Done {
		writeError(w, http.StatusConflict, "job %s is %s, result available once done", j.id, state)
		return
	}
	w.Header().Set("Content-Type", contentType(j.req))
	w.Header().Set("Content-Length", strconv.Itoa(len(result)))
	w.Write(result)
}

// handleEvents streams the job's events as NDJSON: everything recorded
// so far immediately, then live updates (including periodic progress
// snapshots while the job runs) until the job reaches a terminal state
// or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	lastEmit := time.Now()
	emit := func(e Event) bool {
		if err := enc.Encode(e); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		lastEmit = time.Now()
		return true
	}

	next := 0
	lastProgress := int64(-1)
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		state, events, changed := j.snapshot(next)
		for _, e := range events {
			if !emit(e) {
				return
			}
			next++
		}
		if state.Terminal() {
			return
		}
		if p := j.progress.Load(); state == Running && p != lastProgress {
			lastProgress = p
			// Progress snapshots are observations, not recorded events;
			// they carry no sequence number of their own.
			e := Event{Seq: next, Event: "progress", Time: time.Now().UTC().Format(time.RFC3339Nano), Completed: p, Total: j.total}
			e.Windows, e.Telemetry = j.telemetry().latest()
			if !emit(e) {
				return
			}
		}
		// Heartbeats keep an otherwise-silent stream (a long-queued job,
		// a sweep between progress updates) alive through idle-timeout
		// proxies, and make a dead client visible to this handler as a
		// write error instead of a goroutine parked forever.
		if s.cfg.HeartbeatInterval > 0 && time.Since(lastEmit) >= s.cfg.HeartbeatInterval {
			e := Event{Seq: next, Event: "heartbeat", Time: time.Now().UTC().Format(time.RFC3339Nano)}
			if !emit(e) {
				return
			}
		}
		select {
		case <-changed:
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	queued := j.state == Queued
	j.mu.Unlock()
	if terminal {
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	j.cancel()
	if queued {
		// The worker may not reach this job for a while; settle its
		// state now so clients see the cancellation immediately. run()
		// still observes the cancelled ctx and skips it.
		j.finish(nil, false, context.Canceled, true, false)
		s.cancelled.Add(1)
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued := len(s.queue)
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":  state,
		"queued":  queued,
		"running": s.running.Load(),
	})
}

// handleMetrics renders the server's counters in the Prometheus text
// exposition format (version 0.0.4) through an obs metrics registry —
// the same registry machinery the simulators use, so families sort
// deterministically. The scrape registry is rebuilt per request: obs
// registries are single-writer by contract, so sharing one across
// request goroutines would race. The persistent cross-job state (the
// job-duration histogram) is merged in under statsMu.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.NewRegistry()
	reg.Counter("serve.jobs.submitted").Add(s.submitted.Load())
	reg.Counter("serve.jobs.rejected").Add(s.rejected.Load())
	reg.Counter("serve.jobs.completed").Add(s.completed.Load())
	reg.Counter("serve.jobs.failed").Add(s.failed.Load())
	reg.Counter("serve.jobs.cancelled").Add(s.cancelled.Load())
	reg.Counter("serve.jobs.timeout").Add(s.timedout.Load())
	reg.Counter("serve.jobs.computed").Add(s.computedLocal.Load())
	reg.Counter("serve.jobs.peer").Add(s.peerFetched.Load())
	st := s.store.Stats()
	reg.Counter("store.hits.memory").Add(st.MemHits)
	reg.Counter("store.hits.disk").Add(st.DiskHits)
	reg.Counter("store.misses").Add(st.Misses)
	reg.Counter("store.inflight.shared").Add(st.Shared)
	reg.Counter("store.corrupt").Add(st.Corrupt)
	reg.Counter("store.write.errors").Add(st.WriteErrors)
	s.mu.Lock()
	reg.Gauge("serve.queue.depth").Set(float64(len(s.queue)))
	s.mu.Unlock()
	reg.Gauge("serve.jobs.running").Set(float64(s.running.Load()))
	s.statsMu.Lock()
	reg.Merge(s.jobStats)
	s.statsMu.Unlock()
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.Describe(reg)
	}

	w.Header().Set("Content-Type", obs.PrometheusContentType)
	reg.WritePrometheus(w)
}

// startClusterTelemetry attaches a windowed sampler to the cluster's
// counters and starts its ticker goroutine on the TelemetryWindow
// cadence. Stopped by Drain.
func (s *Server) startClusterTelemetry() {
	jt := &jobTelemetry{interval: s.cfg.TelemetryWindow, samp: tele.NewSampler(1, tele.DefaultMaxWindows)}
	s.cfg.Cluster.Sample(jt.samp)
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(jt.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				jt.tick()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	s.clusterTele = jt
	s.stopClusterTele = func() {
		once.Do(func() {
			close(done)
			<-stopped
		})
	}
}
