package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/leakcheck"
	"github.com/reprolab/hirise/internal/serve"
	"github.com/reprolab/hirise/internal/store"
)

// newTestServer stands up a job server over a fresh store and registers
// cleanups so every test drains its workers (and, via leakcheck,
// proves they exited).
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	leakcheck.Check(t)
	return startTestServer(t, cfg)
}

// startTestServer is newTestServer without the leak check, for tests
// that stand up several servers: leakcheck must snapshot once BEFORE
// the first server exists, or a goroutine created between two checks
// can be misclassified (its stack signature changes once it is
// scheduled).
func startTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	// LIFO: close the HTTP server, drain workers, then leakcheck runs.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

// quickSweep is a loadsweep that finishes in well under a second.
func quickSweep() serve.Request {
	return serve.Request{
		Kind: "loadsweep", Design: "2d", Radix: 8,
		Loads: []float64{0.1, 0.2}, Warmup: 200, Measure: 500,
	}
}

// longSweep is a loadsweep that runs for minutes unless cancelled.
func longSweep() serve.Request {
	return serve.Request{
		Kind: "loadsweep", Design: "2d", Radix: 8,
		Loads: []float64{0.1}, Warmup: 100, Measure: 2_000_000_000,
	}
}

func submit(t *testing.T, ts *httptest.Server, req serve.Request) serve.Status {
	t.Helper()
	st, code := submitCode(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: got HTTP %d, want %d", code, http.StatusAccepted)
	}
	return st
}

func submitCode(t *testing.T, ts *httptest.Server, req serve.Request) (serve.Status, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) serve.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job satisfies pred or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id string, what string, pred func(serve.Status) bool) serve.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (last: %+v)", id, what, getStatus(t, ts, id))
	return serve.Status{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("Content-Type")
}

// TestIdenticalJobServedFromCache is the tentpole acceptance check:
// submitting the same job twice computes once, and the second run is a
// cache hit with a byte-identical body.
func TestIdenticalJobServedFromCache(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2, SimWorkers: 2})

	first := submit(t, ts, quickSweep())
	done1 := waitState(t, ts, first.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	if done1.CacheHit {
		t.Fatalf("first run reported cache_hit=true")
	}
	body1, ctype := getResult(t, ts, first.ID)
	if ctype != "application/json" {
		t.Fatalf("loadsweep content type = %q, want application/json", ctype)
	}

	second := submit(t, ts, quickSweep())
	if second.ID == first.ID {
		t.Fatalf("second submission reused job ID %s", first.ID)
	}
	if second.Key != first.Key {
		t.Fatalf("identical requests keyed differently: %s vs %s", first.Key, second.Key)
	}
	done2 := waitState(t, ts, second.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	if !done2.CacheHit {
		t.Fatalf("second identical run was not a cache hit")
	}
	body2, _ := getResult(t, ts, second.ID)
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs from computed body:\n%s\nvs\n%s", body1, body2)
	}
}

// TestEquivalentRequestsShareKey: a lo/hi/step range and its expanded
// loads list normalize to the same content address.
func TestEquivalentRequestsShareKey(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	ranged := quickSweep()
	ranged.Loads = nil
	ranged.Lo, ranged.Hi, ranged.Step = 0.1, 0.2, 0.1
	a := submit(t, ts, ranged)
	b := submit(t, ts, quickSweep())
	if a.Key != b.Key {
		t.Fatalf("range form keyed %s, explicit form %s", a.Key, b.Key)
	}
}

// TestCancelRunningJob: DELETE on an in-flight job stops the simulation
// promptly and the job lands in the cancelled state. The leakcheck in
// newTestServer proves the worker goroutines are actually released.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1})

	st := submit(t, ts, longSweep())
	waitState(t, ts, st.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}

	final := waitState(t, ts, st.ID, "cancelled", func(s serve.Status) bool { return s.State.Terminal() })
	if final.State != serve.Cancelled {
		t.Fatalf("cancelled job ended in state %s (err %q)", final.State, final.Error)
	}

	// The worker must now be free: a quick job still completes.
	quick := submit(t, ts, quickSweep())
	waitState(t, ts, quick.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
}

// TestCancelQueuedJob: cancelling a job that has not started settles it
// immediately and the worker skips it.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1, QueueDepth: 4})

	blocker := submit(t, ts, longSweep())
	waitState(t, ts, blocker.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })

	queued := submit(t, ts, quickSweep())
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitState(t, ts, queued.ID, "cancelled", func(s serve.Status) bool { return s.State.Terminal() })
	if final.State != serve.Cancelled {
		t.Fatalf("queued job ended in state %s", final.State)
	}

	// Unblock the worker for drain.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+blocker.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, blocker.ID, "cancelled", func(s serve.Status) bool { return s.State.Terminal() })
}

// TestBackpressure: once the queue is full, submissions get 429 with a
// Retry-After hint instead of queueing unboundedly.
func TestBackpressure(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1, QueueDepth: 1})

	running := submit(t, ts, longSweep())
	waitState(t, ts, running.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })

	queued := submit(t, ts, quickSweep()) // fills the depth-1 queue

	body, _ := json.Marshal(quickSweep())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 response missing Retry-After")
	}

	// Free the worker so drain is fast.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running.ID, nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	waitState(t, ts, queued.ID, "done", func(s serve.Status) bool { return s.State.Terminal() })
}

// TestBadRequests: malformed bodies and invalid enums are rejected with
// 400 before anything is queued.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for _, body := range []string{
		`{`,
		`{"kind":"nope"}`,
		`{"kind":"loadsweep","design":"tesseract","loads":[0.1]}`,
		`{"kind":"loadsweep"}`, // neither loads nor lo/hi/step
		`{"kind":"loadsweep","loads":[0.1],"lo":0.1,"hi":0.2,"step":0.1}`,
		`{"kind":"experiment","experiment":"no-such-experiment"}`,
		`{"kind":"experiment","experiment":"table1","format":"yaml"}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestEventStream: the NDJSON stream carries the job's lifecycle in
// order and terminates once the job is done.
func TestEventStream(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1})

	st := submit(t, ts, quickSweep())
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Event != "progress" {
			kinds = append(kinds, e.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"queued", "started", "done"}
	if len(kinds) != len(want) {
		t.Fatalf("lifecycle events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("lifecycle events = %v, want %v", kinds, want)
		}
	}
}

// TestDrainRejectsNewWork: after Drain starts, submissions get 503 and
// in-flight jobs still finish.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1})

	st := submit(t, ts, quickSweep())
	waitState(t, ts, st.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	_, code := submitCode(t, ts, quickSweep())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: HTTP %d, want 503", code)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestDrainTimeoutCancelsJobs: a drain whose context expires cancels
// the remaining jobs rather than waiting forever.
func TestDrainTimeoutCancelsJobs(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1})

	st := submit(t, ts, longSweep())
	waitState(t, ts, st.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatalf("drain of a long job returned before its deadline with no error")
	}
	final := getStatus(t, ts, st.ID)
	if final.State != serve.Cancelled {
		t.Fatalf("job after drain timeout is %s, want cancelled", final.State)
	}
}

// TestMetricsAndHealth: the counters surface through /metrics in the
// Prometheus text exposition format, including the cross-job duration
// histogram with its _bucket/_sum/_count family.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1})

	st := submit(t, ts, quickSweep())
	waitState(t, ts, st.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	st2 := submit(t, ts, quickSweep())
	waitState(t, ts, st2.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q, want Prometheus text exposition", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_jobs_submitted counter",
		"serve_jobs_submitted 2",
		"serve_jobs_completed 2",
		"store_misses", "store_hits_memory",
		"# TYPE serve_job_duration_seconds histogram",
		`serve_job_duration_seconds_bucket{le="+Inf"} 2`,
		"serve_job_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz status = %v", health["status"])
	}
}

// TestJobTelemetry: a running job's progress time series is live on
// GET /jobs/{id}/telemetry, keeps its final state after the job ends,
// and the sampler goroutine shuts down cleanly (leakcheck).
func TestJobTelemetry(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Workers: 1, SimWorkers: 1, TelemetryWindow: 2 * time.Millisecond,
	})

	st := submit(t, ts, longSweep())
	waitState(t, ts, st.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })

	getTele := func() (serve.TelemetrySnapshot, int) {
		resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/telemetry")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap serve.TelemetrySnapshot
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return snap, resp.StatusCode
	}

	// Windows accumulate while the job runs.
	var snap serve.TelemetrySnapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		var code int
		snap, code = getTele()
		if code == http.StatusOK && snap.Windows >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("telemetry never accumulated windows (last: HTTP %d, %+v)", code, snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.IntervalMS != 2 || snap.WindowTicks < 1 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	for _, series := range []string{"serve.job.tasks.completed", "serve.job.progress"} {
		vals, ok := snap.Series[series]
		if !ok {
			t.Fatalf("snapshot missing series %q: %+v", series, snap)
		}
		if len(vals) != snap.Windows {
			t.Fatalf("series %q has %d values, want %d windows", series, len(vals), snap.Windows)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, st.ID, "cancelled", func(s serve.Status) bool { return s.State.Terminal() })

	// Telemetry survives the job for post-mortem queries.
	final, code := getTele()
	if code != http.StatusOK || final.Windows < snap.Windows {
		t.Fatalf("post-mortem telemetry: HTTP %d, %+v", code, final)
	}
}

// TestJobTelemetryQueuedAndDisabled: a queued job answers 409 (it has
// not run), and a server with telemetry disabled answers 409 even for
// finished jobs.
func TestJobTelemetryQueuedAndDisabled(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1, QueueDepth: 4})
	blocker := submit(t, ts, longSweep())
	waitState(t, ts, blocker.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })
	queued := submit(t, ts, quickSweep())
	resp, err := http.Get(ts.URL + "/jobs/" + queued.ID + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("telemetry of queued job: HTTP %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+blocker.ID, nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	waitState(t, ts, queued.ID, "done", func(s serve.Status) bool { return s.State.Terminal() })

	_, ts2 := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1, TelemetryWindow: -1})
	st := submit(t, ts2, quickSweep())
	waitState(t, ts2, st.ID, "done", func(s serve.Status) bool { return s.State == serve.Done })
	resp, err = http.Get(ts2.URL + "/jobs/" + st.ID + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("telemetry when disabled: HTTP %d, want 409", resp.StatusCode)
	}
}

// TestUnknownJob: status, result, events, and cancel all 404 on an
// unknown ID.
func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/jobs/nope"},
		{http.MethodGet, "/jobs/nope/result"},
		{http.MethodGet, "/jobs/nope/events"},
		{http.MethodGet, "/jobs/nope/telemetry"},
		{http.MethodDelete, "/jobs/nope"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: HTTP %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestResultBeforeDone: asking for the result of an unfinished job is a
// conflict, not an empty body.
func TestResultBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 1})
	st := submit(t, ts, longSweep())
	waitState(t, ts, st.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of running job: HTTP %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	waitState(t, ts, st.ID, "cancelled", func(s serve.Status) bool { return s.State.Terminal() })
}

// TestExperimentJob: a registered paper experiment runs end to end
// through the service and renders in the requested format.
func TestExperimentJob(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment jobs simulate full sweeps")
	}
	_, ts := newTestServer(t, serve.Config{Workers: 1, SimWorkers: 0})

	req := serve.Request{Kind: "experiment", Experiment: "table1", Quick: true, Format: "csv"}
	st := submit(t, ts, req)
	done := waitState(t, ts, st.ID, "done", func(s serve.Status) bool { return s.State.Terminal() })
	if done.State != serve.Done {
		t.Fatalf("experiment job ended %s: %s", done.State, done.Error)
	}
	if done.Progress == 0 {
		t.Fatalf("experiment job reported no progress")
	}
	body, ctype := getResult(t, ts, st.ID)
	if ctype != "text/csv; charset=utf-8" {
		t.Fatalf("csv content type = %q", ctype)
	}
	if !strings.Contains(string(body), ",") {
		t.Fatalf("csv body looks wrong:\n%s", body)
	}
}

// TestJobTimeout: a job that outlives Config.JobTimeout settles in the
// distinct "timeout" terminal state (not "cancelled", not "failed"),
// its events stream says so, the worker is released for the next job,
// and client cancellation still reports "cancelled".
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Workers: 1, SimWorkers: 1, JobTimeout: 400 * time.Millisecond,
	})

	st := submit(t, ts, longSweep())
	final := waitState(t, ts, st.ID, "timeout", func(s serve.Status) bool { return s.State.Terminal() })
	if final.State != serve.Timeout {
		t.Fatalf("overlong job ended %s (%s), want %s", final.State, final.Error, serve.Timeout)
	}
	if final.Error == "" {
		t.Fatal("timeout status carries no error message")
	}

	// The events stream records the distinct terminal event.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var last serve.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		last = e
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.Event != "timeout" {
		t.Fatalf("final event = %q, want \"timeout\"", last.Event)
	}

	// The result endpoint refuses, naming the state.
	rresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of timed-out job: HTTP %d, want 409", rresp.StatusCode)
	}

	// The worker survived the timeout: short jobs still complete.
	quick := submit(t, ts, quickSweep())
	qdone := waitState(t, ts, quick.ID, "done", func(s serve.Status) bool { return s.State.Terminal() })
	if qdone.State != serve.Done {
		t.Fatalf("job after a timeout ended %s: %s", qdone.State, qdone.Error)
	}

	// An explicit DELETE still reports "cancelled", even with a timeout
	// configured: the client's intent wins.
	running := submit(t, ts, longSweep())
	waitState(t, ts, running.ID, "running", func(s serve.Status) bool { return s.State == serve.Running })
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+running.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	cfinal := waitState(t, ts, running.ID, "cancelled", func(s serve.Status) bool { return s.State.Terminal() })
	if cfinal.State != serve.Cancelled {
		t.Fatalf("deleted job ended %s, want %s", cfinal.State, serve.Cancelled)
	}
}
