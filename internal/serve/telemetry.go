package serve

import (
	"net/http"
	"sync"
	"time"

	"github.com/reprolab/hirise/internal/tele"
)

// jobTelemetry samples a running job's progress into a tele.Sampler at
// a fixed wall-clock cadence. Simulator samplers are single-writer per
// run; here the writer is the job's ticker goroutine while HTTP
// handlers read concurrently, so every access goes through mu. Each
// ticker fire closes one window (window length 1 tick), and the
// sampler's decimation bounds memory for arbitrarily long jobs.
type jobTelemetry struct {
	interval time.Duration

	mu    sync.Mutex
	samp  *tele.Sampler
	ticks int64
}

// newJobTelemetry builds the sampler for one job with its two standard
// tracks: the per-window task-completion delta (counter) and the
// cumulative progress snapshot (gauge).
func newJobTelemetry(j *job, interval time.Duration) *jobTelemetry {
	jt := &jobTelemetry{interval: interval, samp: tele.NewSampler(1, tele.DefaultMaxWindows)}
	jt.samp.CounterFunc("serve.job.tasks.completed", func() int64 { return j.progress.Load() })
	jt.samp.GaugeFunc("serve.job.progress", func() float64 { return float64(j.progress.Load()) })
	return jt
}

// tick closes one sampling window.
func (t *jobTelemetry) tick() {
	t.mu.Lock()
	t.ticks++
	t.samp.Tick(t.ticks)
	t.mu.Unlock()
}

// latest returns the closed-window count and the most recent window's
// value per series; (0, nil) before the first window closes. Nil-safe,
// like the sampler it wraps.
func (t *jobTelemetry) latest() (int, map[string]float64) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.samp.Windows()
	if n == 0 {
		return 0, nil
	}
	m := make(map[string]float64)
	for _, s := range t.samp.Series() {
		if len(s.Values) > 0 {
			m[s.Name] = s.Values[len(s.Values)-1]
		}
	}
	return n, m
}

// TelemetrySnapshot is the JSON shape of GET /jobs/{id}/telemetry.
type TelemetrySnapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// IntervalMS is the sampling cadence in milliseconds.
	IntervalMS int64 `json:"interval_ms"`
	// WindowTicks is the number of ticks each value covers; it starts
	// at 1 and doubles every decimation.
	WindowTicks int64 `json:"window_ticks"`
	// Windows is the number of closed windows currently stored.
	Windows int `json:"windows"`
	// Decimations counts how many times the series were halved to stay
	// within the memory bound.
	Decimations int `json:"decimations"`
	// Series maps each track name to its windowed values, oldest first.
	Series map[string][]float64 `json:"series"`
}

// snapshot copies the sampler state into the wire shape.
func (t *jobTelemetry) snapshot(id string, state State) TelemetrySnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TelemetrySnapshot{
		ID:          id,
		State:       state,
		IntervalMS:  t.interval.Milliseconds(),
		WindowTicks: t.samp.Window(),
		Windows:     t.samp.Windows(),
		Decimations: t.samp.Decimations(),
		Series:      map[string][]float64{},
	}
	for _, s := range t.samp.Series() {
		snap.Series[s.Name] = append([]float64(nil), s.Values...)
	}
	return snap
}

// startTelemetry attaches a sampler to the job and starts its ticker
// goroutine. The returned stop function halts the ticker and waits for
// the goroutine to exit (so Drain + leakcheck see it gone); the sampler
// itself stays readable after stop for post-mortem queries.
func (s *Server) startTelemetry(j *job) (stop func()) {
	if s.cfg.TelemetryWindow < 0 {
		return func() {}
	}
	jt := newJobTelemetry(j, s.cfg.TelemetryWindow)
	j.mu.Lock()
	j.tele = jt
	j.mu.Unlock()
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(jt.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				jt.tick()
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}

// handleTelemetry serves GET /jobs/{id}/telemetry: the job's live (or
// final) progress time series. 409 until the job has started, since
// telemetry only exists for jobs that ran.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	jt, state := j.tele, j.state
	j.mu.Unlock()
	if jt == nil {
		writeError(w, http.StatusConflict,
			"job %s has no telemetry: job is %s or telemetry is disabled", j.id, state)
		return
	}
	writeJSON(w, http.StatusOK, jt.snapshot(j.id, state))
}
