package sim

import (
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// TestRunSteadyStateAllocs pins the hot-loop property the simulator's
// throughput depends on: with Obs disabled, every allocation happens
// during setup (ports, VC buffers, the source-queue rings, histogram),
// so simulating four times as many cycles must allocate no more than
// simulating the baseline count. Checked for both switch models, which
// also covers their own arbitration scratch reuse end to end.
func TestRunSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Switch
	}{
		{"2D64", func() Switch { return crossbar.New(64) }},
		{"HiRiseCLRG", func() Switch { return hirise(t, 4, topo.CLRG) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			allocs := func(cycles int64) float64 {
				return testing.AllocsPerRun(3, func() {
					if _, err := Run(Config{
						Switch:  tc.mk(),
						Traffic: traffic.Uniform{Radix: 64},
						Load:    0.3, Warmup: 500, Measure: cycles, Seed: 7,
					}); err != nil {
						t.Fatal(err)
					}
				})
			}
			short, long := allocs(2000), allocs(8000)
			// Both runs pay identical setup; a small slack absorbs
			// runtime-internal noise without masking a per-cycle leak,
			// which would show up as thousands of extra allocations.
			if long > short+2 {
				t.Errorf("6000 extra cycles allocated %.0f extra times (%.0f -> %.0f); hot loop no longer allocation-free",
					long-short, short, long)
			}
		})
	}
}
