// Lockstep replica batching: run R replicas of one configuration
// simultaneously, cycle by cycle, sharing every lookup table and all
// per-cycle scratch. Experiment campaigns burn thousands of runs that
// differ only in seed (table4-ci alone is 5 replicates per design); the
// batch engine amortizes setup across them, keeps the per-replica state
// in struct-of-arrays slabs with the replica loop innermost (so each
// simulation phase is one pass over warm memory), and recycles the whole
// arena between runs so a warmed Batch executes with zero allocations.
//
// Correctness contract: a Batch run is byte-identical to R sequential
// Run calls with the same seeds. The engine preserves each replica's
// PRNG stream order exactly (the root Source splits per port in port
// order, and the traffic draw happens for every port every cycle, full
// source queue or not), its per-cycle phase order, and its measurement
// order (deliveries hit the histogram in ascending port order within a
// cycle, as in Run). Differential tests in batch_test.go enforce the
// equivalence at several widths, seeds, and loads for every switch
// model.
//
// Two arbitration backends sit behind the shared cycle loop:
//
//   - generic: one switch instance per replica (reused across runs via
//     Reset when the model supports it), driven through
//     Switch.Arbitrate exactly like Run;
//   - fused: when the factory produces a stock LRG crossbar
//     (crossbar.Switch.PlainLRG), the engine skips switch instances
//     entirely and arbitrates in-place over per-replica column bitsets.
//     LRG priority is kept as a (last-grant stamp, initial index) key
//     per input instead of an order list: the minimum key over a
//     column's requestors is exactly the list-LRG winner (all stamps
//     start equal, and an update gives the winner a stamp strictly
//     greater than every other, i.e. moves it to the end of the order
//     without disturbing the rest), and the O(n) list splice on every
//     grant becomes an O(1) stamp write.
//
// The lean loop supports only configurations whose hooks are all
// disabled (no Obs, no Faults, no Check, no ConvergeStop); anything
// else falls back to sequential Run calls, so Batch is always safe to
// use.
package sim

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/traffic"
)

// Batch runs replicas of one switch configuration in lockstep. A Batch
// retains its switches and arena between Run calls; reusing one Batch
// across the points of a campaign is what makes the warmed steady state
// allocation-free. A Batch is not safe for concurrent use — give each
// worker its own (the experiment drivers do).
type Batch struct {
	newSwitch  func() Switch
	newTraffic func() Traffic

	probe Switch   // first factory product: radix + fast-path detection
	sws   []Switch // generic-path replicas; sws[0] == probe
	a     arena
}

// NewBatch returns a batch runner over switches from newSwitch.
// newTraffic, when non-nil, supplies each replica its own traffic
// pattern per run; it must be non-nil for stateful patterns (e.g.
// traffic.Bursty), which can be shared neither between lockstepped
// replicas nor across sequential runs — the same contract as LoadSweep.
// When newTraffic is nil, every replica shares Config.Traffic.
func NewBatch(newSwitch func() Switch, newTraffic func() Traffic) *Batch {
	if newSwitch == nil {
		panic("sim: NewBatch needs a switch factory")
	}
	return &Batch{newSwitch: newSwitch, newTraffic: newTraffic}
}

// BatchRun is the one-shot convenience form of NewBatch(...).Run(...):
// it executes len(seeds) replicas of base and returns their results in
// seed order. Callers running many points should hold a Batch instead,
// which reuses the arena across points.
func BatchRun(base Config, newSwitch func() Switch, newTraffic func() Traffic, seeds []uint64) ([]Result, error) {
	return NewBatch(newSwitch, newTraffic).Run(base, seeds)
}

// Run executes len(seeds) replicas of base, replica k seeded with
// seeds[k], and returns their results in seed order — each byte-
// identical to Run(base) with Switch from the factory and Seed
// seeds[k]. base.Switch and base.Seed are ignored (the factory and the
// seed lattice replace them), as is base.Traffic when the Batch has a
// traffic factory.
//
// Result slices (PerInputLatency, PerInputPackets) and the returned
// slice itself are arena-backed: they stay valid until the next Run on
// this Batch, which recycles them. Copy what must outlive the batch.
//
// Configurations with any hook attached (Obs, Faults, Check,
// ConvergeStop) or more than 32 VCs take the sequential fallback:
// correct and identical, just not batched.
func (b *Batch) Run(base Config, seeds []uint64) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: batch run needs at least one seed")
	}
	cfg := base
	cfg.Defaults()
	if b.probe == nil {
		b.probe = b.newSwitch()
		if b.probe == nil {
			return nil, fmt.Errorf("sim: switch factory returned nil")
		}
	}
	cfg.Switch = b.probe
	if b.newTraffic != nil {
		cfg.Traffic = b.newTraffic()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Obs != nil || !cfg.Faults.Empty() || cfg.Check || cfg.ConvergeStop || cfg.VCs > 32 {
		return b.runSequential(cfg, seeds)
	}
	return b.runLean(cfg, seeds)
}

// runSequential is the hook-compatible fallback: fresh switch and
// traffic per replica, one plain Run each.
func (b *Batch) runSequential(cfg Config, seeds []uint64) ([]Result, error) {
	out := make([]Result, len(seeds))
	for k, seed := range seeds {
		c := cfg
		if k > 0 || c.Switch == nil {
			c.Switch = b.newSwitch()
		}
		if b.newTraffic != nil && k > 0 {
			c.Traffic = b.newTraffic()
		}
		c.Seed = seed
		var err error
		if out[k], err = Run(c); err != nil {
			return nil, fmt.Errorf("sim: batch replica %d: %w", k, err)
		}
	}
	// The probe ran a replica; replace it so the next Run starts fresh.
	b.probe, b.sws = nil, b.sws[:0]
	return out, nil
}

// batchCount holds one replica's measurement-window counters.
type batchCount struct {
	injected, delivered, dropped, flits int64
}

// bport is the lean engine's per-(input, replica) state: the port
// struct of Run squeezed into exactly one cache line (64 bytes), so the
// per-cycle sweep pulls one line per port instead of two. The VC
// occupancy flags are packed into one bitmask (candidate selection and
// refill become a rotate and a trailing-zeros scan instead of a
// bool-slice walk), the VC ring and source queue live at fixed offsets
// in the arena slabs (no slice headers here), and Run's connected flag
// is folded into remaining: a port is connected iff remaining > 0,
// since a grant always sets remaining to the full packet length ≥ 1.
type bport struct {
	rng       prng.Source // 32 bytes
	occ       uint32      // bit v set ⇔ VC v holds a packet (Run's vcOk)
	rr        int32
	connVC    int32
	remaining int32 // flits left on the active connection; 0 ⇔ idle
	qhead     int32 // source-queue ring cursor into qSlab
	qn        int32 // source-queue occupancy
	_         [8]byte
}

// bpacket is the lean engine's in-flight packet: Run's packet stripped
// to the fields the hook-free path reads (latency needs birth, routing
// needs dest). Run's seq and retries exist for the invariant checker
// and lossy links, which force the sequential fallback — dropping them
// halves the VC and source-queue slab footprint, which the sweep
// streams through every cycle.
type bpacket struct {
	birth int64
	dest  int32
	_     int32
}

// arena is the Batch's recycled backing store: every slab spans all
// replicas and is resized only when the configuration shape changes.
type arena struct {
	r, n, vcs, qcap int
	fast            bool // fused-crossbar slabs allocated

	ports  []bport   // [in*r + k]
	vcSlab []bpacket // VC slots, vcs per port, indexed [(in*r+k)*vcs + v]
	qSlab  []bpacket // source-queue rings, qcap per port

	req []int // generic path: request vectors, [k*n + in]

	// Fused-crossbar state, one stock LRG crossbar per replica without
	// the crossbar.Switch objects. Column request bitsets are zeroed
	// lazily via the per-replica dirty-column sets, as in
	// crossbar.Arbitrate.
	xheld  []int32  // [k*n + in]: output held by input, or -1
	xoutIn []int32  // [k*n + out]: input holding output, or -1
	xstamp []int64  // [(k*n + out)*n + in]: last-grant stamp
	xclock []int64  // [k*n + out]: per-column stamp clock
	xmask  []uint64 // [(k*n + out)*words]: column request bitsets
	xdirty []uint64 // [k*words]: columns with requests this cycle

	relIn []int32 // flat release list: input ports…
	relR  []int32 // …and their replicas
	relN  int

	hist   []*stats.Histogram
	perLat []*stats.PerPort
	perPkt []int64 // [k*n + in]
	cnt    []batchCount
	trs    []Traffic

	results []Result
	latOut  []float64 // [k*n + in]: Result.PerInputLatency backing
	pktOut  []float64 // [k*n + in]: Result.PerInputPackets backing

	root prng.Source // reseeded per replica to derive the port streams
}

func (a *arena) ensure(r, n, vcs, qcap int, fast bool) {
	if a.r == r && a.n == n && a.vcs == vcs && a.qcap == qcap && (!fast || a.fast) {
		return
	}
	a.r, a.n, a.vcs, a.qcap = r, n, vcs, qcap
	a.fast = a.fast || fast
	rn := r * n
	a.ports = make([]bport, rn)
	a.vcSlab = make([]bpacket, rn*vcs)
	a.qSlab = make([]bpacket, rn*qcap)
	a.req = make([]int, rn)
	a.relIn = make([]int32, rn)
	a.relR = make([]int32, rn)
	a.hist = make([]*stats.Histogram, r)
	a.perLat = make([]*stats.PerPort, r)
	for k := range a.hist {
		a.hist[k] = stats.NewHistogram(4, 4096)
		a.perLat[k] = stats.NewPerPort(n)
	}
	a.perPkt = make([]int64, rn)
	a.cnt = make([]batchCount, r)
	a.trs = make([]Traffic, r)
	a.results = make([]Result, r)
	a.latOut = make([]float64, rn)
	a.pktOut = make([]float64, rn)
	if a.fast {
		words := bitvec.WordsFor(n)
		a.xheld = make([]int32, rn)
		a.xoutIn = make([]int32, rn)
		a.xstamp = make([]int64, rn*n)
		a.xclock = make([]int64, rn)
		a.xmask = make([]uint64, rn*words)
		a.xdirty = make([]uint64, r*words)
	}
}

func (a *arena) reset() {
	for i := range a.ports {
		p := &a.ports[i]
		*p = bport{rng: p.rng}
	}
	for k := range a.hist {
		a.hist[k].Reset()
		a.perLat[k].Reset()
	}
	for i := range a.perPkt {
		a.perPkt[i] = 0
	}
	for k := range a.cnt {
		a.cnt[k] = batchCount{}
	}
	for i := range a.xheld {
		a.xheld[i] = -1
		a.xoutIn[i] = -1
		a.xclock[i] = 0
	}
	for i := range a.xstamp {
		a.xstamp[i] = 0
	}
	for i := range a.xmask {
		a.xmask[i] = 0
	}
	for i := range a.xdirty {
		a.xdirty[i] = 0
	}
	a.relN = 0
}

// ensureSwitches prepares one switch per replica for the generic path,
// reusing prior instances through their Reset method; a model without
// Reset is rebuilt from the factory each run.
func (b *Batch) ensureSwitches(r, n int) error {
	if len(b.sws) == 0 {
		b.sws = append(b.sws, b.probe)
	}
	for len(b.sws) < r {
		b.sws = append(b.sws, b.newSwitch())
	}
	for k := 0; k < r; k++ {
		if rs, ok := b.sws[k].(interface{ Reset() }); ok {
			rs.Reset()
		} else {
			b.sws[k] = b.newSwitch()
		}
		if b.sws[k].Radix() != n {
			return fmt.Errorf("sim: batch switch %d has radix %d, want %d", k, b.sws[k].Radix(), n)
		}
	}
	return nil
}

// runLean is the lockstep engine. The cycle structure is Run's, with
// the hook-free phases fused: pass A advances transmissions and builds
// requests (phases 1+2), arbitration forms connections (phase 3),
// releases free this cycle's finished connections (phase 4), and pass B
// injects and refills VCs (phase 5). The fusions are sound because the
// phases they merge touch disjoint state per port (see batch_test.go's
// differential coverage).
func (b *Batch) runLean(cfg Config, seeds []uint64) ([]Result, error) {
	r, n := len(seeds), b.probe.Radix()

	// Fast path: stock LRG crossbars are arbitrated in-place, without
	// switch instances.
	xb, ok := b.probe.(*crossbar.Switch)
	fast := ok && xb.PlainLRG()
	if !fast {
		if err := b.ensureSwitches(r, n); err != nil {
			return nil, err
		}
	}

	a := &b.a
	a.ensure(r, n, cfg.VCs, cfg.SourceQueueCap, fast)
	a.reset()

	for k := 0; k < r; k++ {
		if b.newTraffic != nil {
			a.trs[k] = b.newTraffic()
		} else {
			a.trs[k] = cfg.Traffic
		}
		seed := seeds[k]
		if seed == 0 {
			seed = 1 // Run's Defaults remaps seed 0; match it
		}
		a.root.Reseed(seed)
		for in := 0; in < n; in++ {
			a.root.SplitTo(&a.ports[in*r+k].rng)
		}
	}

	// Devirtualize uniform traffic: when every replica draws the same
	// stateless traffic.Uniform, inline its two PRNG draws instead of
	// calling through the interface n times per cycle per replica. The
	// Bernoulli acceptance becomes an integer compare on the raw 53-bit
	// draw: Float64() < p  ⇔  (Uint64()>>11)·2⁻⁵³ < p  ⇔  Uint64()>>11 <
	// ⌈p·2⁵³⌉ — every step exact (2⁻⁵³ scaling and p·2⁵³ are pure
	// exponent shifts), so acceptance is bit-identical to Run's.
	uni, uniOK := a.trs[0].(traffic.Uniform)
	for k := 1; uniOK && k < r; k++ {
		u2, ok := a.trs[k].(traffic.Uniform)
		uniOK = ok && u2 == uni
	}
	var uniThresh uint64
	uniAlways, uniNever := false, false
	if uniOK {
		switch {
		case cfg.Load <= 0:
			uniNever = true // Bernoulli shortcut: no draw at all
		case cfg.Load >= 1:
			uniAlways = true // ditto
		default:
			uniThresh = uint64(math.Ceil(cfg.Load * (1 << 53)))
		}
	}
	// Power-of-two radix collapses the destination draw to a shift:
	// Lemire's Intn(2^b) computes hi = x·2^b / 2^64 = x >> (64-b) and its
	// rejection threshold 2^64 mod 2^b is zero, so the loop never runs —
	// one draw, exactly Intn's stream and value.
	uniPow2 := uniOK && uni.Radix > 0 && uni.Radix&(uni.Radix-1) == 0
	uniShift := uint(64 - bits.Len(uint(uni.Radix)-1))

	F := int32(cfg.PacketFlits)
	vcs := int32(cfg.VCs)
	vcsN := cfg.VCs
	vcMask := uint32(1)<<uint(vcs) - 1
	qcap := a.qcap
	qc := int32(qcap)
	load := cfg.Load
	words := bitvec.WordsFor(n)
	total := cfg.Warmup + cfg.Measure

	// Hoist every slab into a local: inside the loop the compiler cannot
	// prove stores through these slices leave *a itself unchanged, so
	// field-based access would reload each slice header after every
	// store.
	ports := a.ports
	qSlab, vcSlab := a.qSlab, a.vcSlab
	req := a.req
	xheld, xoutIn := a.xheld, a.xoutIn
	xstamp, xclock := a.xstamp, a.xclock
	xmask, xdirty := a.xmask, a.xdirty
	relIn, relR := a.relIn, a.relR
	hist, perLat := a.hist, a.perLat
	perPkt := a.perPkt
	cnt := a.cnt
	trs := a.trs

	for cycle := int64(0); cycle < total; cycle++ {
		if cfg.Ctx != nil && cycle%ctxCheckInterval == 0 && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("sim: batch run cancelled at cycle %d: %w", cycle, cfg.Ctx.Err())
		}
		measuring := cycle >= cfg.Warmup

		// Main sweep, one pass over every (input, replica): first the
		// injection/refill step of the PREVIOUS cycle (Run's phase 5 —
		// deferrable to here because between one cycle's phase 5 and the
		// next cycle's phase 1 no other phase touches port state, and
		// each port draws from its own private PRNG stream), then this
		// cycle's transmission advance and request build (phases 1+2).
		// Folding the phases means each port's one-line state is pulled
		// through the cache once per cycle instead of twice.
		inj := cycle > 0
		injCycle := cycle - 1
		injMeasuring := injCycle >= cfg.Warmup
		relN := 0
		for in := 0; in < n; in++ {
			// Strength-reduce the slab offsets: pi walks in*r+k, piV/piQ its
			// rows in the VC and queue slabs, kn walks k*n — all by
			// increments, so the sweep's address math is add-only.
			pi := in * r
			piV := pi * vcsN
			piQ := pi * qcap
			kn := 0
			for k := 0; k < r; k, pi, piV, piQ, kn = k+1, pi+1, piV+vcsN, piQ+qcap, kn+n {
				p := &ports[pi]
				if inj {
					var dest int
					var inject bool
					if uniOK {
						if uniAlways || (!uniNever && p.rng.Uint64()>>11 < uniThresh) {
							inject = true
							if uniPow2 {
								dest = int(p.rng.Uint64() >> uniShift)
							} else {
								dest = p.rng.Intn(uni.Radix)
							}
						}
					} else {
						dest, inject = trs[k].Next(in, injCycle, load, &p.rng)
					}
					if inject {
						if p.qn == qc {
							if injMeasuring {
								cnt[k].dropped++
							}
						} else {
							i := p.qhead + p.qn
							if i >= qc {
								i -= qc
							}
							qSlab[piQ+int(i)] = bpacket{birth: injCycle, dest: int32(dest)}
							p.qn++
							if injMeasuring {
								cnt[k].injected++
							}
						}
					}
					if p.qn > 0 {
						// Ascending free VCs, Run's refill order.
						for free := ^p.occ & vcMask; free != 0 && p.qn > 0; {
							v := bits.TrailingZeros32(free)
							free &= free - 1
							vcSlab[piV+v] = qSlab[piQ+int(p.qhead)]
							if p.qhead++; p.qhead == qc {
								p.qhead = 0
							}
							p.qn--
							p.occ |= 1 << uint(v)
						}
					}
				}
				rel := uint64(0)
				if p.remaining > 0 {
					p.remaining--
					if p.remaining > 0 {
						if !fast {
							req[kn+in] = -1
						}
						continue
					}
					pkt := &vcSlab[piV+int(p.connVC)]
					if measuring {
						lat := float64(cycle - pkt.birth)
						hist[k].Add(lat)
						perLat[k].Add(in, lat)
						perPkt[kn+in]++
						c := &cnt[k]
						c.delivered++
						c.flits += int64(F)
					}
					p.occ &^= 1 << uint(p.connVC)
					rel = 1
					relIn[relN] = int32(in)
					relR[relN] = int32(k)
					relN++
					// No continue: like Run's phase 2, a port that just
					// delivered still builds a request (advancing its VC
					// round-robin) even though it cannot win this cycle —
					// its output releases only after arbitration.
				}
				if p.occ == 0 {
					if !fast {
						req[kn+in] = -1
					}
					continue
				}
				// First occupied VC at or after rr — Run's k-scan as a
				// rotate + trailing zeros.
				rot := (p.occ>>uint32(p.rr) | p.occ<<uint32(vcs-p.rr)) & vcMask
				v := p.rr + int32(bits.TrailingZeros32(rot))
				if v >= vcs {
					v -= vcs
				}
				if p.rr = v + 1; p.rr == vcs {
					p.rr = 0
				}
				p.connVC = v
				dest := int(vcSlab[piV+int(v)].dest)
				if fast {
					// The crossbar's input-loop gate, applied at build
					// time: inputs still holding (a delivery this cycle
					// releases only after arbitration — exactly the
					// rel-flag case, since any other unconnected port's
					// held entry is already clear) and busy outputs do
					// not participate. The gate is branchless — its
					// direction is data-random, so as a branch it would
					// mispredict constantly; instead the eligibility bit
					// (output free, port not releasing) multiplies into
					// the mask ORs, making the ineligible case an OR of
					// zero.
					bit := uint64(uint32(xoutIn[kn+dest])>>31) &^ rel
					xmask[(kn+dest)*words+in>>6] |= bit << (uint(in) & 63)
					xdirty[k*words+dest>>6] |= bit << (uint(dest) & 63)
				} else {
					req[kn+in] = dest
				}
			}
		}

		// Arbitrate and start new connections.
		if fast && words == 1 {
			// Single-word columns (radix <= 64): the same consume-on-scan
			// min-key arbitration as the generic branch below, on bare
			// words — no per-column subslice setup on the hottest radix.
			for k := 0; k < r; k++ {
				word := xdirty[k]
				if word == 0 {
					continue
				}
				xdirty[k] = 0
				held := xheld[k*n : (k+1)*n]
				outIn := xoutIn[k*n : (k+1)*n]
				clocks := xclock[k*n : (k+1)*n]
				sbase := k * n * n
				mbase := k * n
				for word != 0 {
					out := bits.TrailingZeros64(word)
					word &= word - 1
					cword := xmask[mbase+out]
					xmask[mbase+out] = 0
					stBase := sbase + out*n
					win, best := -1, int64(1)<<62
					for cword != 0 {
						in := bits.TrailingZeros64(cword)
						cword &= cword - 1
						if key := xstamp[stBase+in]<<32 | int64(in); key < best {
							best, win = key, in
						}
					}
					clocks[out]++
					xstamp[stBase+win] = clocks[out]
					held[win] = int32(out)
					outIn[out] = int32(win)
					ports[win*r+k].remaining = F
				}
			}
		} else if fast {
			for k := 0; k < r; k++ {
				dirty := xdirty[k*words : (k+1)*words]
				held := xheld[k*n : (k+1)*n]
				outIn := xoutIn[k*n : (k+1)*n]
				clocks := xclock[k*n : (k+1)*n]
				sbase := k * n * n
				mbase := k * n * words
				for w, word := range dirty {
					for word != 0 {
						out := w<<6 | bits.TrailingZeros64(word)
						word &= word - 1
						// Min-key scan: the requestor with the smallest
						// (stamp, index) is the list-LRG winner. The scan
						// consumes the column — masks and dirty sets are
						// zeroed here, on data already in cache, so the
						// next cycle starts clean without a separate
						// zeroing pass over the same columns.
						st := xstamp[sbase+out*n : sbase+(out+1)*n]
						col := xmask[mbase+out*words : mbase+(out+1)*words]
						win, best := -1, int64(1)<<62
						for cw, cword := range col {
							for cword != 0 {
								in := cw<<6 | bits.TrailingZeros64(cword)
								cword &= cword - 1
								if key := st[in]<<32 | int64(in); key < best {
									best, win = key, in
								}
							}
							col[cw] = 0
						}
						clocks[out]++
						st[win] = clocks[out]
						held[win] = int32(out)
						outIn[out] = int32(win)
						ports[win*r+k].remaining = F
					}
					dirty[w] = 0
				}
			}
		} else {
			for k := 0; k < r; k++ {
				for _, g := range b.sws[k].Arbitrate(req[k*n : (k+1)*n]) {
					ports[g.In*r+k].remaining = F
				}
			}
		}

		// Release the connections that finished this cycle.
		for i := 0; i < relN; i++ {
			in, k := int(relIn[i]), int(relR[i])
			if fast {
				out := xheld[k*n+in]
				xheld[k*n+in] = -1
				xoutIn[k*n+int(out)] = -1
			} else {
				b.sws[k].Release(in)
			}
		}

	}

	// The final cycle's injection step (deferred by the fused sweep):
	// its packets can never be delivered, but injection and drop counts
	// during the measurement window include it in Run, so it runs here
	// for the counters and to finish the traffic/PRNG draw sequence.
	for in := 0; in < n; in++ {
		for k := 0; k < r; k++ {
			p := &ports[in*r+k]
			var dest int
			var inject bool
			if uniOK {
				if uniAlways || (!uniNever && p.rng.Uint64()>>11 < uniThresh) {
					inject = true
					if uniPow2 {
						dest = int(p.rng.Uint64() >> uniShift)
					} else {
						dest = p.rng.Intn(uni.Radix)
					}
				}
			} else {
				dest, inject = trs[k].Next(in, total-1, load, &p.rng)
			}
			if inject {
				if p.qn == qc {
					cnt[k].dropped++
				} else {
					i := p.qhead + p.qn
					if i >= qc {
						i -= qc
					}
					qSlab[(in*r+k)*qcap+int(i)] = bpacket{birth: total - 1, dest: int32(dest)}
					p.qn++
					cnt[k].injected++
				}
			}
		}
	}

	measured := float64(cfg.Measure)
	for k := 0; k < r; k++ {
		lat := a.latOut[k*n : (k+1)*n : (k+1)*n]
		pkt := a.pktOut[k*n : (k+1)*n : (k+1)*n]
		perLat[k].MeansInto(lat)
		for i := 0; i < n; i++ {
			pkt[i] = float64(perPkt[k*n+i]) / measured
		}
		c := cnt[k]
		a.results[k] = Result{
			OfferedLoad:       cfg.Load,
			AcceptedFlits:     float64(c.flits) / measured,
			AcceptedPackets:   float64(c.delivered) / measured,
			AvgLatency:        hist[k].Mean(),
			P50Latency:        hist[k].Quantile(0.5),
			P99Latency:        hist[k].Quantile(0.99),
			PerInputLatency:   lat,
			PerInputPackets:   pkt,
			Injected:          c.injected,
			Delivered:         c.delivered,
			DroppedInjections: c.dropped,
		}
	}
	return a.results[:r], nil
}
