package sim

import (
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/arb"
	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// seqResults runs the reference path: one plain Run per seed, fresh
// switch and traffic each, exactly what BatchRun must reproduce.
func seqResults(t *testing.T, base Config, newSwitch func() Switch, newTraffic func() Traffic, seeds []uint64) []Result {
	t.Helper()
	out := make([]Result, len(seeds))
	for k, seed := range seeds {
		c := base
		c.Switch = newSwitch()
		if newTraffic != nil {
			c.Traffic = newTraffic()
		}
		c.Seed = seed
		r, err := Run(c)
		if err != nil {
			t.Fatalf("sequential replica %d: %v", k, err)
		}
		out[k] = r
	}
	return out
}

func copyResults(rs []Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = r
		out[i].PerInputLatency = append([]float64(nil), r.PerInputLatency...)
		out[i].PerInputPackets = append([]float64(nil), r.PerInputPackets...)
	}
	return out
}

func seedLattice(base uint64, r int) []uint64 {
	seeds := make([]uint64, r)
	for i := range seeds {
		seeds[i] = pool.SeedFor(base, uint64(i))
	}
	return seeds
}

// TestBatchRunMatchesSequential is the tentpole's equivalence pin: at
// every batch width, BatchRun must be byte-identical to R sequential
// Run calls over the same seed lattice — for the fused fast path (stock
// LRG crossbar, flat and folded), the generic lockstep path (HiRise,
// non-LRG crossbar), and at loads from near-idle to saturation.
func TestBatchRunMatchesSequential(t *testing.T) {
	cases := []struct {
		name       string
		newSwitch  func() Switch
		newTraffic func() Traffic
		loads      []float64
		radix      int // 0 = 64
	}{
		{
			name:      "crossbar-fast",
			newSwitch: func() Switch { return crossbar.New(64) },
			loads:     []float64{0.05, 0.3, 1.0},
		},
		{
			// Radix past one 64-bit mask word and not a power of two:
			// exercises the fast path's multi-word column arbitration and
			// the general (Lemire) destination draw, which radix-64 cases
			// skip via the single-word and shift specializations.
			name:      "crossbar-fast-multiword",
			newSwitch: func() Switch { return crossbar.New(96) },
			loads:     []float64{0.3, 1.0},
			radix:     96,
		},
		{
			name:      "folded-fast",
			newSwitch: func() Switch { return crossbar.NewFolded(64, 4) },
			loads:     []float64{0.3},
		},
		{
			name: "crossbar-roundrobin-generic",
			newSwitch: func() Switch {
				arbs := make([]arb.Arbiter, 64)
				for i := range arbs {
					arbs[i] = arb.NewRoundRobin(64)
				}
				s, err := crossbar.NewWithArbiters(64, arbs)
				if err != nil {
					panic(err)
				}
				return s
			},
			loads: []float64{0.3, 1.0},
		},
		{
			name: "hirise-clrg-generic",
			newSwitch: func() Switch {
				s, err := core.New(topo.Config{
					Radix: 64, Layers: 4, Channels: 4,
					Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3,
				})
				if err != nil {
					panic(err)
				}
				return s
			},
			loads: []float64{0.3, 0.9},
		},
		{
			name:       "crossbar-bursty-stateful",
			newSwitch:  func() Switch { return crossbar.New(64) },
			newTraffic: func() Traffic { return traffic.NewBursty(64, 6) },
			loads:      []float64{0.4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			radix := tc.radix
			if radix == 0 {
				radix = 64
			}
			for _, load := range tc.loads {
				base := Config{
					Traffic: traffic.Uniform{Radix: radix},
					Load:    load,
					Warmup:  300, Measure: 1200,
				}
				for _, width := range []int{1, 2, 4, 8} {
					seeds := seedLattice(uint64(17*width)+uint64(load*1000), width)
					want := seqResults(t, base, tc.newSwitch, tc.newTraffic, seeds)
					got, err := BatchRun(base, tc.newSwitch, tc.newTraffic, seeds)
					if err != nil {
						t.Fatalf("load %.2f width %d: %v", load, width, err)
					}
					for k := range want {
						if !reflect.DeepEqual(got[k], want[k]) {
							t.Fatalf("load %.2f width %d replica %d diverged:\nbatch: %+v\nseq:   %+v",
								load, width, k, got[k], want[k])
						}
					}
				}
			}
		})
	}
}

// TestBatchReuseAcrossRuns pins the arena recycling contract: the same
// Batch, run repeatedly (including across different loads and widths),
// keeps producing results identical to fresh sequential runs — i.e.
// every piece of recycled state is restored to its as-constructed value
// between runs.
func TestBatchReuseAcrossRuns(t *testing.T) {
	mk := func() Switch { return crossbar.New(32) }
	b := NewBatch(mk, nil)
	points := []struct {
		load  float64
		width int
	}{
		{0.2, 4}, {0.8, 4}, {0.2, 4}, {0.5, 2}, {0.2, 8},
	}
	for i, pt := range points {
		base := Config{
			Traffic: traffic.Uniform{Radix: 32},
			Load:    pt.load,
			Warmup:  200, Measure: 800,
		}
		seeds := seedLattice(99, pt.width)
		got, err := b.Run(base, seeds)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		got = copyResults(got) // arena-backed; next Run recycles them
		want := seqResults(t, base, mk, nil, seeds)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("point %d (load %.2f width %d): reused batch diverged from sequential",
				i, pt.load, pt.width)
		}
	}
}

// TestBatchSequentialFallback: configurations with hooks attached must
// still produce correct per-replica results through the fallback path.
func TestBatchSequentialFallback(t *testing.T) {
	mk := func() Switch { return crossbar.New(32) }
	base := Config{
		Traffic: traffic.Uniform{Radix: 32},
		Load:    0.3,
		Warmup:  200, Measure: 800,
		Check: true, // forces the sequential fallback
	}
	seeds := seedLattice(7, 3)
	got, err := BatchRun(base, mk, nil, seeds)
	if err != nil {
		t.Fatal(err)
	}
	want := seqResults(t, base, mk, nil, seeds)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback path diverged from sequential runs")
	}
	// A fallback run must not poison a later lean run on the same Batch.
	b := NewBatch(mk, nil)
	if _, err := b.Run(base, seeds); err != nil {
		t.Fatal(err)
	}
	lean := base
	lean.Check = false
	got2, err := b.Run(lean, seeds)
	if err != nil {
		t.Fatal(err)
	}
	want2 := seqResults(t, lean, mk, nil, seeds)
	if !reflect.DeepEqual(copyResults(got2), want2) {
		t.Fatal("lean run after fallback diverged from sequential runs")
	}
}

func TestBatchRunErrors(t *testing.T) {
	mk := func() Switch { return crossbar.New(8) }
	if _, err := BatchRun(Config{Traffic: traffic.Uniform{Radix: 8}, Load: 0.1}, mk, nil, nil); err == nil {
		t.Error("empty seed slice: want error")
	}
	bad := Config{Traffic: traffic.Uniform{Radix: 8}, Load: -1}
	if _, err := BatchRun(bad, mk, nil, []uint64{1}); err == nil {
		t.Error("invalid config: want error")
	}
}

// TestBatchSteadyStateAllocs is the batched-mode allocation pin: a
// warmed Batch must execute entire runs — all replicas, every cycle —
// without a single heap allocation, on both the fused crossbar path and
// the generic (HiRise) path.
func TestBatchSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement needs full runs")
	}
	cases := []struct {
		name string
		mk   func() Switch
	}{
		{"crossbar-fast", func() Switch { return crossbar.New(64) }},
		{"hirise-clrg-generic", func() Switch {
			s, err := core.New(topo.Config{
				Radix: 64, Layers: 4, Channels: 4,
				Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3,
			})
			if err != nil {
				panic(err)
			}
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBatch(tc.mk, nil)
			base := Config{
				Traffic: traffic.Uniform{Radix: 64},
				Load:    0.3,
				Warmup:  200, Measure: 800,
			}
			seeds := seedLattice(5, 4)
			if _, err := b.Run(base, seeds); err != nil { // warm the arena
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(2, func() {
				if _, err := b.Run(base, seeds); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("warmed batch run allocated %.1f objects/run, want 0", allocs)
			}
		})
	}
}
