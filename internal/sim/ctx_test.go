package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/traffic"
)

func cancellableCfg(measure int64) Config {
	return Config{
		Switch:  crossbar.New(8),
		Traffic: traffic.Uniform{Radix: 8},
		Load:    0.1, Warmup: 100, Measure: measure, Seed: 1,
	}
}

// TestRunCancelledContextAborts: a run whose ctx is cancelled stops at
// the next cycle-level check and reports the cancellation instead of
// simulating the remaining cycles.
func TestRunCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := cancellableCfg(2_000_000_000) // minutes of simulation if not aborted
	cfg.Ctx = ctx
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	_, err := Run(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled run took %v to abort", d)
	}
}

// TestRunNilContextIsByteIdentical: adding the ctx hook must not
// perturb results — a nil-Ctx run and a background-Ctx run of the same
// config are identical.
func TestRunNilContextIsByteIdentical(t *testing.T) {
	a, err := Run(cancellableCfg(5000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cancellableCfg(5000)
	cfg.Ctx = context.Background()
	cfg.Switch = crossbar.New(8) // fresh switch; the first run mutated its arbiters
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected || a.Delivered != b.Delivered ||
		a.AvgLatency != b.AvgLatency || a.AcceptedFlits != b.AcceptedFlits {
		t.Fatalf("ctx-carrying run diverged: %+v vs %+v", a, b)
	}
}

// TestLoadSweepCancelledContext: a cancelled ctx stops the sweep —
// pending points are skipped and the ctx error is returned.
func TestLoadSweepCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := cancellableCfg(5000)
	base.Switch, base.Traffic = nil, nil
	base.Ctx = ctx
	loads := []float64{0.05, 0.1, 0.15, 0.2}
	_, err := LoadSweep(base,
		func() Switch { return crossbar.New(8) },
		func() Traffic { return traffic.Uniform{Radix: 8} },
		loads, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
