package sim

import (
	"fmt"
)

// Optional switch capabilities the fault-aware simulator probes for.
// core.Switch implements all three; crossbar.Switch implements the
// introspection and path interfaces (it has no channels). A switch
// without a capability simply skips the corresponding behaviour.
type (
	// faultIntrospect exposes port fault state for the invariant checker.
	faultIntrospect interface {
		InputFailed(in int) bool
		OutputFailed(out int) bool
	}
	// xpIntrospect exposes crosspoint fault state (crossbar.Switch).
	xpIntrospect interface {
		CrosspointFailed(in, out int) bool
	}
	// channelHolder maps a connected input to the L2LC it crosses; the
	// lossy-link model drops the flits of connections crossing a channel
	// during an outage.
	channelHolder interface {
		HeldChannel(in int) int
		ChannelFailed(cid int) bool
	}
	// pathBlocker reports severed input→output paths for dead-flow
	// retirement.
	pathBlocker interface {
		PathBlocked(in, out int) bool
	}
)

// FaultStats aggregates the fault plane's activity over one whole run,
// warmup included (like the obs sinks, it observes the simulation, not
// the measurement window).
type FaultStats struct {
	// FailEvents and RepairEvents count fault onsets and repairs the
	// injector applied; SkippedEvents counts the ones the switch could
	// not apply (missing capability or refused call).
	FailEvents, RepairEvents, SkippedEvents int64
	// FlitsDropped counts flits lost crossing lossy channel outages.
	FlitsDropped int64
	// Retransmissions counts source-side packet retransmissions.
	Retransmissions int64
	// RetryExhausted counts packets abandoned after the retry budget.
	RetryExhausted int64
	// DeadFlows counts queued packets retired because every path to
	// their destination had failed.
	DeadFlows int64
}

// checker is the self-checking invariant layer (Config.Check): it
// verifies online that no grant lands on a failed resource and no
// packet is delivered twice, and at end of run that every injected
// packet is accounted for. It observes the simulation without changing
// it.
type checker struct {
	intro  faultIntrospect
	xp     xpIntrospect
	holder channelHolder
	seen   []map[int64]struct{} // per input: delivered sequence numbers
	// injected and delivered count packets over the whole run (warmup
	// included), unlike the Result counters, so conservation closes.
	injected, delivered int64
}

func newChecker(sw Switch, n int) *checker {
	c := &checker{seen: make([]map[int64]struct{}, n)}
	c.intro, _ = sw.(faultIntrospect)
	c.xp, _ = sw.(xpIntrospect)
	c.holder, _ = sw.(channelHolder)
	for i := range c.seen {
		c.seen[i] = make(map[int64]struct{})
	}
	return c
}

// checkGrant verifies a freshly formed connection touches no failed
// resource. The injector advances before arbitration, so any resource
// failed at this cycle is already masked — a grant that lands on one is
// an arbitration bug, not a race.
func (c *checker) checkGrant(cycle int64, in, out int) error {
	if c.intro != nil {
		if c.intro.InputFailed(in) {
			return fmt.Errorf("sim: invariant violation at cycle %d: grant landed on failed input %d", cycle, in)
		}
		if c.intro.OutputFailed(out) {
			return fmt.Errorf("sim: invariant violation at cycle %d: grant landed on failed output %d", cycle, out)
		}
	}
	if c.xp != nil && c.xp.CrosspointFailed(in, out) {
		return fmt.Errorf("sim: invariant violation at cycle %d: grant crossed failed crosspoint (%d,%d)", cycle, in, out)
	}
	if c.holder != nil {
		if cid := c.holder.HeldChannel(in); cid >= 0 && c.holder.ChannelFailed(cid) {
			return fmt.Errorf("sim: invariant violation at cycle %d: grant %d->%d crossed failed channel %d", cycle, in, out, cid)
		}
	}
	return nil
}

// recordDelivery verifies per-input sequence numbers are delivered at
// most once (no duplication by the retransmission protocol).
func (c *checker) recordDelivery(cycle int64, in int, seq int64) error {
	if _, dup := c.seen[in][seq]; dup {
		return fmt.Errorf("sim: invariant violation at cycle %d: input %d packet #%d delivered twice", cycle, in, seq)
	}
	c.seen[in][seq] = struct{}{}
	c.delivered++
	return nil
}

// conservation closes the flit-accounting ledger at end of run: every
// packet that entered a source queue was delivered, is still queued or
// in flight, or was dropped with its drop counted.
func (c *checker) conservation(inFlight int64, fs FaultStats) error {
	accounted := c.delivered + inFlight + fs.RetryExhausted + fs.DeadFlows
	if c.injected != accounted {
		return fmt.Errorf("sim: conservation violation: injected %d != delivered %d + in-flight %d + retry-exhausted %d + dead flows %d",
			c.injected, c.delivered, inFlight, fs.RetryExhausted, fs.DeadFlows)
	}
	return nil
}
